module threadcluster

go 1.22
