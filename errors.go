package threadcluster

// Sentinel errors returned (wrapped) by the library. Classify failures
// with errors.Is rather than matching message text:
//
//	if _, err := machine.AddThread(th); errors.Is(err, threadcluster.ErrDuplicateThread) {
//		// thread ID already installed on this machine
//	}

import "threadcluster/internal/errs"

var (
	// ErrDuplicateThread reports an AddThread with an ID already installed.
	ErrDuplicateThread = errs.ErrDuplicateThread
	// ErrUnknownThread reports an operation on a thread ID the scheduler
	// has never seen (or has already removed).
	ErrUnknownThread = errs.ErrUnknownThread
	// ErrThreadRunning reports a RemoveThread of a thread currently on a
	// CPU; stop it (let its quantum expire) first.
	ErrThreadRunning = errs.ErrThreadRunning
	// ErrBadConfig reports an invalid configuration value: a non-power-of-2
	// cache geometry, an out-of-range CPU, a nil generator, a missing
	// partition hint for hand-optimized placement, and so on.
	ErrBadConfig = errs.ErrBadConfig
	// ErrAlreadyInstalled reports a second Engine.Install on one machine.
	ErrAlreadyInstalled = errs.ErrAlreadyInstalled
)
