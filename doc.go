// Package threadcluster is a library-scale reproduction of "Thread
// Clustering: Sharing-Aware Scheduling on SMP-CMP-SMT Multiprocessors"
// (Tam, Azimi, Stumm — EuroSys 2007).
//
// The paper's scheme detects which software threads share data — online,
// using only the data-sampling features of a Power5-style hardware
// performance monitoring unit — clusters them by sharing pattern, and
// migrates each cluster onto one chip so that sharing happens through
// fast on-chip caches instead of the cross-chip interconnect.
//
// Because the original system is a modified Linux kernel on IBM Power5
// hardware, this repository reproduces it over a simulated machine:
//
//   - internal/topology, internal/cache: an SMP-CMP-SMT machine with a
//     coherent L1/L2/victim-L3 hierarchy and the paper's latency ladder;
//   - internal/pmu: hardware performance counters with overflow
//     exceptions, a continuous data-address sampling register and counter
//     multiplexing;
//   - internal/sched, internal/sim: run queues, the four placement
//     policies of the evaluation, and the execution engine;
//   - internal/clustering, internal/core: shMaps, the shMap filter, the
//     similarity metric and the four-phase thread-clustering engine —
//     the paper's contribution;
//   - internal/workloads: the scoreboard microbenchmark, VolanoMark,
//     SPECjbb and RUBiS analogues;
//   - internal/metrics: a registry of counters, gauges and histograms
//     with labeled series; every machine exposes one, and snapshots
//     diff (Delta), combine across machines (Merge) and export as
//     byte-stable JSON/CSV;
//   - internal/sweep: a worker pool that fans N independent machine
//     configurations across GOMAXPROCS workers with deterministic
//     per-run seeding — results are identical for any worker count;
//   - internal/experiments: one harness per table/figure of the paper,
//     multi-workload harnesses running on the sweep pool.
//
// Long simulations are cancellable — Machine.Run and
// Machine.RunRoundsCtx take a context checked at scheduling-round
// boundaries — and failures wrap the exported sentinel errors
// (ErrDuplicateThread, ErrUnknownThread, ErrThreadRunning,
// ErrBadConfig, ErrAlreadyInstalled) for errors.Is classification.
//
// Simulations also checkpoint: Machine.Snapshot captures the complete
// machine state (caches, coherence directory, PMUs, scheduler, RNG
// streams, generator cursors, the clustering engine) as a
// MachineSnapshot whose canonical encoding is byte-identical across
// engines and GOMAXPROCS, and RestoreMachine resumes a run that is
// indistinguishable from one that never stopped. See the api.go session
// example and DESIGN.md §9.
//
// See README.md for a walkthrough, DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results. The benchmarks in
// bench_test.go regenerate every table and figure.
package threadcluster
