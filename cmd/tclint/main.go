// Command tclint runs the project's static-analysis suite: six
// analyzers (detrand, wallclock, maporder, errwrap, ctxplumb,
// nodeprecated) that enforce the determinism, error-wrapping, context
// and deprecation-hygiene contracts the simulator's differential tests
// check dynamically. See DESIGN.md §6 for the contract each analyzer
// guards.
//
// Two modes:
//
//	tclint ./...                        # standalone, like staticcheck
//	go vet -vettool=$(which tclint) ./...   # unitchecker protocol
//
// Standalone mode exits 0 when clean, 1 on diagnostics or failure. The
// vettool mode follows go vet's per-package .cfg protocol, including
// the -V=full fingerprint handshake.
//
// Suppress a finding with a trailing or preceding comment:
//
//	//tclint:allow wallclock -- operator progress output, not simulated time
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"threadcluster/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// go vet's handshake probes with -V=full (build-cache fingerprint)
	// and -flags (supported flags as JSON) before any real work.
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			lint.PrintVersion(os.Stdout)
			return 0
		case "-flags", "--flags":
			lint.PrintFlags(os.Stdout)
			return 0
		}
	}

	fs := flag.NewFlagSet("tclint", flag.ContinueOnError)
	wallclockAllow := fs.String("wallclock.allow", "",
		"comma-separated package path prefixes where wall-clock time is allowed wholesale")
	listOnly := fs.Bool("list", false, "list the analyzers and their docs, then exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: tclint [flags] [packages]\n       go vet -vettool=$(which tclint) [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *wallclockAllow != "" {
		lint.WallclockAllowlist = strings.Split(*wallclockAllow, ",")
	}

	analyzers := lint.All()
	if *listOnly {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	// A single *.cfg argument means go vet is driving us.
	if rest := fs.Args(); len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return lint.Unitchecker(rest[0], analyzers, os.Stderr)
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := lint.Run(".", patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tclint: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "tclint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
