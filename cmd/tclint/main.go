// Command tclint runs the project's static-analysis suite: eight
// analyzers (detrand, wallclock, maporder, errwrap, ctxplumb,
// nodeprecated, seedflow, snapfields) that enforce the determinism,
// error-wrapping, context, deprecation-hygiene, seed-provenance and
// snapshot-coverage contracts the simulator's differential tests check
// dynamically. See DESIGN.md §6 for the contract each analyzer guards.
//
// Two modes:
//
//	tclint ./...                        # standalone, like staticcheck
//	go vet -vettool=$(which tclint) ./...   # unitchecker protocol
//
// Standalone mode exits 0 when clean, 1 on diagnostics or failure. The
// vettool mode follows go vet's per-package .cfg protocol, including
// the -V=full fingerprint handshake; the interprocedural analyzers'
// facts ride go vet's vetx files there, and an in-memory store in
// standalone mode — identical findings either way.
//
// -json emits the diagnostics as a sorted JSON array (stable field
// order) on stdout instead of text, for CI annotation tooling.
//
// Suppress a finding with a trailing or preceding comment:
//
//	//tclint:allow wallclock -- operator progress output, not simulated time
//
// The reason after "--" is mandatory in both drivers: a suppression
// without one is itself a finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"threadcluster/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// jsonDiagnostic is the -json output shape. Field order is part of the
// output contract — CI annotation scripts parse it.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string) int {
	// go vet's handshake probes with -V=full (build-cache fingerprint)
	// and -flags (supported flags as JSON) before any real work.
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			lint.PrintVersion(os.Stdout)
			return 0
		case "-flags", "--flags":
			lint.PrintFlags(os.Stdout)
			return 0
		}
	}

	fs := flag.NewFlagSet("tclint", flag.ContinueOnError)
	wallclockAllow := fs.String("wallclock.allow", "",
		"comma-separated package path prefixes where wall-clock time is allowed wholesale")
	listOnly := fs.Bool("list", false, "list the analyzers and their docs, then exit")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array on stdout (standalone mode)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: tclint [flags] [packages]\n       go vet -vettool=$(which tclint) [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *wallclockAllow != "" {
		lint.WallclockAllowlist = strings.Split(*wallclockAllow, ",")
	}
	// The repo tree must justify every suppression; only the golden-test
	// harness runs with bare allows permitted.
	lint.RequireAllowReason = true

	analyzers := lint.All()
	if *listOnly {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	// A single *.cfg argument means go vet is driving us.
	if rest := fs.Args(); len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return lint.Unitchecker(rest[0], analyzers, os.Stderr)
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := lint.Run(".", patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tclint: %v\n", err)
		return 1
	}
	if *jsonOut {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		sort.Slice(out, func(i, j int) bool {
			a, b := out[i], out[j]
			if a.File != b.File {
				return a.File < b.File
			}
			if a.Line != b.Line {
				return a.Line < b.Line
			}
			if a.Column != b.Column {
				return a.Column < b.Column
			}
			return a.Analyzer < b.Analyzer
		})
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "tclint: %v\n", err)
			return 1
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "tclint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
