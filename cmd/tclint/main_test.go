package main

import (
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"threadcluster/internal/lint"
)

// TestSelfClean is the suite's acceptance gate: tclint must exit clean
// on the repository that defines it. Any new violation of the
// determinism/error/context contracts fails this test (and `make lint`)
// until fixed or annotated with a justified //tclint:allow. The cmd/
// tree is on the wallclock allowlist — operator-facing progress timing
// and the daemon's system clock live there, mirroring `make lint`'s
// -wallclock.allow=threadcluster/cmd.
func TestSelfClean(t *testing.T) {
	defer func(prev []string) { lint.WallclockAllowlist = prev }(lint.WallclockAllowlist)
	defer func(prev bool) { lint.RequireAllowReason = prev }(lint.RequireAllowReason)
	lint.WallclockAllowlist = []string{"threadcluster/cmd"}
	lint.RequireAllowReason = true
	diags, err := lint.Run("../..", []string{"./..."}, lint.All())
	if err != nil {
		t.Fatalf("tclint: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

// buildTclint compiles the tclint binary once per test process.
func buildTclint(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "tclint")
		if buildErr != nil {
			return
		}
		cmd := exec.Command("go", "build", "-o", filepath.Join(buildDir, "tclint"), ".")
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = err
			buildDir = string(out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building tclint: %v\n%s", buildErr, buildDir)
	}
	return filepath.Join(buildDir, "tclint")
}

// TestVersionHandshake checks the -V=full fingerprint protocol go vet
// uses to identify vettools for its build cache.
func TestVersionHandshake(t *testing.T) {
	out, err := exec.Command(buildTclint(t), "-V=full").Output()
	if err != nil {
		t.Fatalf("tclint -V=full: %v", err)
	}
	got := string(out)
	if !strings.HasPrefix(got, "tclint version ") {
		t.Fatalf("tclint -V=full = %q, want a 'tclint version ...' line", got)
	}
}

// TestVettoolProtocol drives the binary exactly as `go vet -vettool=`
// does, against a scratch module that reuses our module path so the
// scoping rules apply: a clean package passes, a seeded wallclock +
// detrand violation fails with our diagnostics.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a scratch module and shells out to go vet")
	}
	bin := buildTclint(t)

	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		full := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(full), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module threadcluster\n\ngo 1.22\n")
	write("internal/clean/clean.go", `package clean

func Add(a, b int) int { return a + b }
`)
	write("internal/sim/dirty.go", `package sim

import (
	"math/rand"
	"time"
)

func Jitter() time.Time {
	_ = rand.Intn(3)
	return time.Now()
}
`)

	vet := func(pkg string) (string, error) {
		cmd := exec.Command("go", "vet", "-vettool="+bin, pkg)
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		return string(out), err
	}

	if out, err := vet("./internal/clean"); err != nil {
		t.Fatalf("go vet -vettool on a clean package failed: %v\n%s", err, out)
	}
	out, err := vet("./internal/sim")
	if err == nil {
		t.Fatalf("go vet -vettool on a dirty package passed; output:\n%s", out)
	}
	for _, wantFragment := range []string{
		"rand.Intn uses the process-global source",
		"time.Now reads the wall clock",
	} {
		if !strings.Contains(out, wantFragment) {
			t.Errorf("go vet output missing %q; got:\n%s", wantFragment, out)
		}
	}
}

// TestVettoolFacts proves facts survive the real vetx round-trip: the
// seed obligation on seedlib.NewGen is computed while go vet analyzes
// the library package, serialized into its vetx file, and read back
// when the dependent package is checked — the constant-seed diagnostic
// in the caller is only possible if that file carried the fact.
func TestVettoolFacts(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a scratch module and shells out to go vet")
	}
	bin := buildTclint(t)

	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		full := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(full), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module threadcluster\n\ngo 1.22\n")
	write("internal/seedlib/seedlib.go", `package seedlib

import "math/rand"

// NewGen picks up a seed obligation on its parameter: callers must
// pass something traceable to a run seed.
func NewGen(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
`)
	write("internal/sim/use.go", `package sim

import "threadcluster/internal/seedlib"

type Config struct {
	Seed int64
}

func Fine(cfg Config) {
	_ = seedlib.NewGen(cfg.Seed)
}

func Broken() {
	_ = seedlib.NewGen(42)
}
`)

	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet passed despite a constant seed crossing a package boundary; output:\n%s", out)
	}
	got := string(out)
	if !strings.Contains(got, "seedlib.NewGen is seeded with a constant") {
		t.Errorf("missing cross-package seedflow diagnostic; got:\n%s", got)
	}
	if strings.Contains(got, "cfg.Seed") || strings.Contains(got, "Fine") {
		t.Errorf("traceable call site reported; got:\n%s", got)
	}
}

// TestJSONOutput pins the -json contract: a clean tree emits a literal
// empty array, a dirty one emits position-sorted objects with the
// documented field order, and the exit codes match text mode.
func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("builds scratch modules")
	}
	bin := buildTclint(t)

	mkmod := func(src string) string {
		t.Helper()
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module threadcluster\n\ngo 1.22\n"), 0o666); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "root.go"), []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	clean := mkmod("package threadcluster\n\nfunc Add(a, b int) int { return a + b }\n")
	cmd := exec.Command(bin, "-json", "./...")
	cmd.Dir = clean
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("tclint -json on a clean module: %v\n%s", err, out)
	}
	if got := strings.TrimSpace(string(out)); got != "[]" {
		t.Errorf("clean -json output = %q, want []", got)
	}

	dirty := mkmod(`package threadcluster

import (
	"math/rand"
	"time"
)

func Pick() int { return rand.Intn(5) }

func Stamp() int64 { return time.Now().UnixNano() }
`)
	cmd = exec.Command(bin, "-json", "./...")
	cmd.Dir = dirty
	out, err = cmd.Output()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 1 {
		t.Fatalf("tclint -json on a dirty module: err = %v, want exit code 1", err)
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out, &diags); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2:\n%s", len(diags), out)
	}
	for i := 1; i < len(diags); i++ {
		if diags[i-1].File > diags[i].File ||
			(diags[i-1].File == diags[i].File && diags[i-1].Line > diags[i].Line) {
			t.Errorf("diagnostics not position-sorted:\n%s", out)
		}
	}
	wantAnalyzers := map[string]string{
		"detrand":   "rand.Intn uses the process-global source",
		"wallclock": "time.Now reads the wall clock",
	}
	for _, d := range diags {
		frag, ok := wantAnalyzers[d.Analyzer]
		if !ok {
			t.Errorf("unexpected analyzer %q in:\n%s", d.Analyzer, out)
			continue
		}
		delete(wantAnalyzers, d.Analyzer)
		if !strings.Contains(d.Message, frag) {
			t.Errorf("analyzer %s message = %q, want fragment %q", d.Analyzer, d.Message, frag)
		}
		if d.File == "" || d.Line == 0 || d.Column == 0 {
			t.Errorf("diagnostic missing position data: %+v", d)
		}
	}
	for name := range wantAnalyzers {
		t.Errorf("no %s diagnostic in:\n%s", name, out)
	}
}

// TestStandaloneOnDirtyModule runs standalone mode against the same
// scratch-module shape to pin the exit-code contract.
func TestStandaloneOnDirtyModule(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a scratch module")
	}
	bin := buildTclint(t)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module threadcluster\n\ngo 1.22\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	src := `package threadcluster

import "math/rand"

func Pick() int { return rand.Intn(5) }
`
	if err := os.WriteFile(filepath.Join(dir, "root.go"), []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("tclint on a dirty module exited 0; output:\n%s", out)
	}
	if !strings.Contains(string(out), "rand.Intn uses the process-global source") {
		t.Errorf("missing detrand diagnostic; got:\n%s", out)
	}
}
