package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"threadcluster/internal/lint"
)

// TestSelfClean is the suite's acceptance gate: tclint must exit clean
// on the repository that defines it. Any new violation of the
// determinism/error/context contracts fails this test (and `make lint`)
// until fixed or annotated with a justified //tclint:allow. The cmd/
// tree is on the wallclock allowlist — operator-facing progress timing
// and the daemon's system clock live there, mirroring `make lint`'s
// -wallclock.allow=threadcluster/cmd.
func TestSelfClean(t *testing.T) {
	defer func(prev []string) { lint.WallclockAllowlist = prev }(lint.WallclockAllowlist)
	lint.WallclockAllowlist = []string{"threadcluster/cmd"}
	diags, err := lint.Run("../..", []string{"./..."}, lint.All())
	if err != nil {
		t.Fatalf("tclint: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

// buildTclint compiles the tclint binary once per test process.
func buildTclint(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "tclint")
		if buildErr != nil {
			return
		}
		cmd := exec.Command("go", "build", "-o", filepath.Join(buildDir, "tclint"), ".")
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = err
			buildDir = string(out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building tclint: %v\n%s", buildErr, buildDir)
	}
	return filepath.Join(buildDir, "tclint")
}

// TestVersionHandshake checks the -V=full fingerprint protocol go vet
// uses to identify vettools for its build cache.
func TestVersionHandshake(t *testing.T) {
	out, err := exec.Command(buildTclint(t), "-V=full").Output()
	if err != nil {
		t.Fatalf("tclint -V=full: %v", err)
	}
	got := string(out)
	if !strings.HasPrefix(got, "tclint version ") {
		t.Fatalf("tclint -V=full = %q, want a 'tclint version ...' line", got)
	}
}

// TestVettoolProtocol drives the binary exactly as `go vet -vettool=`
// does, against a scratch module that reuses our module path so the
// scoping rules apply: a clean package passes, a seeded wallclock +
// detrand violation fails with our diagnostics.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a scratch module and shells out to go vet")
	}
	bin := buildTclint(t)

	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		full := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(full), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module threadcluster\n\ngo 1.22\n")
	write("internal/clean/clean.go", `package clean

func Add(a, b int) int { return a + b }
`)
	write("internal/sim/dirty.go", `package sim

import (
	"math/rand"
	"time"
)

func Jitter() time.Time {
	_ = rand.Intn(3)
	return time.Now()
}
`)

	vet := func(pkg string) (string, error) {
		cmd := exec.Command("go", "vet", "-vettool="+bin, pkg)
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		return string(out), err
	}

	if out, err := vet("./internal/clean"); err != nil {
		t.Fatalf("go vet -vettool on a clean package failed: %v\n%s", err, out)
	}
	out, err := vet("./internal/sim")
	if err == nil {
		t.Fatalf("go vet -vettool on a dirty package passed; output:\n%s", out)
	}
	for _, wantFragment := range []string{
		"rand.Intn uses the process-global source",
		"time.Now reads the wall clock",
	} {
		if !strings.Contains(out, wantFragment) {
			t.Errorf("go vet output missing %q; got:\n%s", wantFragment, out)
		}
	}
}

// TestStandaloneOnDirtyModule runs standalone mode against the same
// scratch-module shape to pin the exit-code contract.
func TestStandaloneOnDirtyModule(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a scratch module")
	}
	bin := buildTclint(t)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module threadcluster\n\ngo 1.22\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	src := `package threadcluster

import "math/rand"

func Pick() int { return rand.Intn(5) }
`
	if err := os.WriteFile(filepath.Join(dir, "root.go"), []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("tclint on a dirty module exited 0; output:\n%s", out)
	}
	if !strings.Contains(string(out), "rand.Intn uses the process-global source") {
		t.Errorf("missing detrand diagnostic; got:\n%s", out)
	}
}
