package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// startCPUProfile begins a CPU profile to the given path (no-op for "")
// and returns the stop function. Used by both the experiment runner and
// the sweep subcommand, so simulator hot paths (the chip-parallel engine,
// the access fast path) can be profiled straight from the CLI.
func startCPUProfile(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("tcsim: create cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("tcsim: start cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// writeMemProfile dumps an allocation profile to the given path (no-op
// for ""), after a final GC so the numbers reflect live state.
func writeMemProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("tcsim: create mem profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("tcsim: write mem profile: %w", err)
	}
	return nil
}
