package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runSnapshotOut runs the snapshot subcommand with a tiny round budget
// and returns the digest it prints on stdout.
func runSnapshotOut(t *testing.T, extra ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := runSnapshot(extra, &out, io.Discard); err != nil {
		t.Fatalf("runSnapshot %v: %v", extra, err)
	}
	return strings.TrimSpace(out.String())
}

// TestSnapshotSplitRunIdentity is the subcommand-level differential pin:
// running N+M rounds in one go and as a snapshot/resume pair produces
// byte-identical snapshot files and the same digest.
func TestSnapshotSplitRunIdentity(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.snap")
	half := filepath.Join(dir, "half.snap")
	resumed := filepath.Join(dir, "resumed.snap")

	fullDigest := runSnapshotOut(t, "-rounds", "50", "-out", full)
	runSnapshotOut(t, "-rounds", "30", "-out", half)
	resumedDigest := runSnapshotOut(t, "-resume", half, "-rounds", "20", "-out", resumed)

	if fullDigest != resumedDigest {
		t.Errorf("digest mismatch: full %s, resumed %s", fullDigest, resumedDigest)
	}
	a, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("snapshot files differ: full %d bytes, resumed %d bytes", len(a), len(b))
	}
}

// TestSnapshotEngineIndependence: the digest is an engine- and
// policy-independent function of the simulated state, so seq and
// parallel engines agree even with the clustering engine attached.
func TestSnapshotEngineIndependence(t *testing.T) {
	seq := runSnapshotOut(t, "-policy", "clustered", "-simengine", "seq", "-rounds", "40")
	par := runSnapshotOut(t, "-policy", "clustered", "-simengine", "parallel", "-rounds", "40")
	if seq != par {
		t.Errorf("digest differs across engines: seq %s, parallel %s", seq, par)
	}
}

// TestSnapshotRejectsBadFlags covers the argument-validation surface:
// unknown names, negative rounds and unconfined workloads all error
// before any simulation runs.
func TestSnapshotRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-rounds", "-1"},
		{"-policy", "bogus"},
		{"-topo", "bogus"},
		{"-workload", "bogus"},
		{"-coherence", "bogus"},
		{"-simengine", "bogus"},
		{"-resume", filepath.Join(t.TempDir(), "missing.snap")},
	}
	for _, args := range cases {
		if err := runSnapshot(args, io.Discard, io.Discard); err == nil {
			t.Errorf("runSnapshot %v: want error, got nil", args)
		}
	}
}

// TestSnapshotUnconfinedWorkload: specjbb keeps shared scoreboards that
// a snapshot cannot carry, so snapshotting it must fail loudly instead
// of persisting a half-truth.
func TestSnapshotUnconfinedWorkload(t *testing.T) {
	err := runSnapshot([]string{"-workload", "specjbb", "-rounds", "5"}, io.Discard, io.Discard)
	if err == nil {
		t.Fatal("snapshotting an unconfined workload should error")
	}
}
