// Command tcsim runs the paper's experiments on the simulated
// SMP-CMP-SMT machine and prints the tables, figures and sweeps of the
// evaluation section.
//
// Usage:
//
//	tcsim -exp all                 # everything (several minutes)
//	tcsim -exp fig6                # one experiment
//	tcsim -exp fig3 -workload rubis
//	tcsim -exp fig5 -seed 7
//
// Paper experiments: table1, fig1, fig3, fig5, fig6, fig7, fig8,
// spatial, scale32, sdar. Extension studies: ablation, threshold,
// pagevspmu, numa, phase, contention, migration, multiprog, smt, mux,
// probe, staged, churn, streaming. Use -exp all for everything and
// -markdown for GitHub-flavored tables. The -cluster flag swaps the
// engine's per-detection batch pass for the incremental clusterer
// (dense vectors or fixed-size sketches); results are differentially
// tested to match batch.
//
// The sweep subcommand fans a configuration grid (policy x topology x
// workload) across a worker pool and emits a metrics table:
//
//	tcsim sweep                               # 4 workloads x 2 policies
//	tcsim sweep -policies default,clustered -workers 4
//	tcsim sweep -format json -merged          # machine-wide snapshot
//	tcsim sweep -digest                       # canonical payload digest only
//
// Per-configuration results are byte-identical for any -workers value.
//
// The submit subcommand runs the same grid on a tcsimd job server and
// prints the canonical result payload, byte-identical to the offline
// sweep of the same spec (compare with `tcsim sweep -digest`):
//
//	tcsim submit -addr http://127.0.0.1:8321 -policies default,clustered
//	tcsim submit -spec job.json -events       # stream NDJSON progress
//
// The snapshot subcommand persists a machine's complete state after N
// rounds and resumes it later; split runs produce byte-identical
// snapshots to unbroken ones:
//
//	tcsim snapshot -rounds 250 -out half.snap
//	tcsim snapshot -resume half.snap -rounds 150 -out full.snap
//
// The bench-sweep subcommand runs the saturation sweep: a grid of
// machine shapes (chips x cores-per-chip, 2 SMT contexts) and coherence
// intensities, each cell timed under the sequential and the chip-parallel
// engine, with knee points (where parallel speedup or coherence cost
// saturates) extracted by internal/satbench:
//
//	tcsim bench-sweep                          # 4x2x3 grid, table output
//	tcsim bench-sweep -chips 1,2 -rounds 10 -format json
//	tcsim bench-sweep -record BENCH_sim.json   # refresh the "sweep" key
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"threadcluster/internal/cache"
	"threadcluster/internal/experiments"
	"threadcluster/internal/sim"
	"threadcluster/internal/stats"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "sweep":
			if err := runSweep(os.Args[2:], os.Stdout, os.Stderr); err != nil {
				fmt.Fprintln(os.Stderr, "tcsim:", err)
				os.Exit(1)
			}
			return
		case "submit":
			if err := runSubmit(os.Args[2:], os.Stdout, os.Stderr); err != nil {
				fmt.Fprintln(os.Stderr, "tcsim:", err)
				os.Exit(1)
			}
			return
		case "snapshot":
			if err := runSnapshot(os.Args[2:], os.Stdout, os.Stderr); err != nil {
				fmt.Fprintln(os.Stderr, "tcsim:", err)
				os.Exit(1)
			}
			return
		case "bench-sweep":
			if err := runBenchSweep(os.Args[2:], os.Stdout, os.Stderr); err != nil {
				fmt.Fprintln(os.Stderr, "tcsim:", err)
				os.Exit(1)
			}
			return
		}
	}
	var (
		exp       = flag.String("exp", "all", "experiment to run: table1|fig1|fig3|fig5|fig6|fig7|fig8|spatial|scale32|sdar|ablation|pagevspmu|threshold|numa|phase|contention|migration|multiprog|smt|mux|probe|staged|churn|streaming|all")
		workload  = flag.String("workload", experiments.Volano, "workload for fig3: microbenchmark|volano|specjbb|rubis")
		seed      = flag.Int64("seed", 1, "simulation seed")
		warm      = flag.Int("warm", 0, "override warm-up rounds (0 = default)")
		measure   = flag.Int("measure", 0, "override measured rounds (0 = default)")
		markdown  = flag.Bool("markdown", false, "emit tables as GitHub-flavored Markdown")
		coherence = flag.String("coherence", "directory", "cache-coherence implementation: directory|broadcast (results are identical; directory is faster)")
		engine    = flag.String("engine", "parallel", "execution engine for eligible multi-chip rounds: seq|parallel (results are byte-identical)")
		cluster   = flag.String("cluster", "batch", "clustering path: batch (from-scratch per detection)|dense|sketch (incremental)")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof   = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	opt := experiments.DefaultOptions()
	opt.Seed = *seed
	if *warm > 0 {
		opt.WarmRounds = *warm
	}
	if *measure > 0 {
		opt.MeasureRounds = *measure
	}
	mode, err := cache.ParseCoherenceMode(*coherence)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcsim:", err)
		os.Exit(2)
	}
	opt.Coherence = mode
	eng, err := sim.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcsim:", err)
		os.Exit(2)
	}
	opt.Engine = eng
	if *cluster != "batch" {
		opt.ClusterMode = *cluster
		if _, err := experiments.EngineConfigFor(opt); err != nil {
			fmt.Fprintln(os.Stderr, "tcsim:", err)
			os.Exit(2)
		}
	}

	stopCPU, err := startCPUProfile(*cpuprof)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	runErr := run(context.Background(), *exp, *workload, opt, *markdown)
	stopCPU()
	if err := writeMemProfile(*memprof); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "tcsim:", runErr)
		os.Exit(1)
	}
}

func run(ctx context.Context, exp, workload string, opt experiments.Options, markdown bool) error {
	emit := func(t *stats.Table) {
		if markdown {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t)
		}
	}
	all := exp == "all"
	ran := false
	show := func(name string) bool {
		if all || exp == name {
			ran = true
			return true
		}
		return false
	}

	if show("table1") {
		emit(experiments.Table1())
	}
	if show("fig1") {
		t, err := experiments.Figure1(opt)
		if err != nil {
			return err
		}
		emit(t)
	}
	if show("fig3") {
		names := []string{workload}
		if all {
			names = experiments.AllWorkloads()
		}
		for _, n := range names {
			t, _, err := experiments.Figure3(ctx, n, opt)
			if err != nil {
				return err
			}
			emit(t)
		}
	}
	if show("fig5") {
		results, err := experiments.Figure5(ctx, opt)
		if err != nil {
			return err
		}
		for _, r := range results {
			fmt.Println(r)
		}
	}
	if show("fig6") {
		t, _, err := experiments.Figure6(ctx, opt)
		if err != nil {
			return err
		}
		emit(t)
	}
	if show("fig7") {
		t, _, err := experiments.Figure7(ctx, opt)
		if err != nil {
			return err
		}
		emit(t)
	}
	if show("fig8") {
		_, t, err := experiments.Figure8(ctx, opt)
		if err != nil {
			return err
		}
		emit(t)
	}
	if show("spatial") {
		_, t, err := experiments.SpatialSensitivity(ctx, opt)
		if err != nil {
			return err
		}
		emit(t)
	}
	if show("scale32") {
		res, err := experiments.Scale32(ctx, opt)
		if err != nil {
			return err
		}
		emit(res.Table())
	}
	if show("sdar") {
		res, err := experiments.SDARPurity(ctx, opt)
		if err != nil {
			return err
		}
		emit(res.Table())
	}
	if show("ablation") {
		_, t, err := experiments.Ablation(ctx, opt)
		if err != nil {
			return err
		}
		emit(t)
	}
	if show("threshold") {
		_, t, err := experiments.ThresholdSensitivity(ctx, opt)
		if err != nil {
			return err
		}
		emit(t)
	}
	if show("pagevspmu") {
		_, t, err := experiments.PageVsPMU(ctx, opt)
		if err != nil {
			return err
		}
		emit(t)
	}
	if show("numa") {
		_, t, err := experiments.NUMA(ctx, opt)
		if err != nil {
			return err
		}
		emit(t)
	}
	if show("phase") {
		res, err := experiments.PhaseChange(ctx, opt)
		if err != nil {
			return err
		}
		emit(res.Table())
		fmt.Println(res.Timeline.String())
		fmt.Println()
	}
	if show("contention") {
		_, t, err := experiments.Contention(ctx, opt)
		if err != nil {
			return err
		}
		emit(t)
	}
	if show("migration") {
		res, err := experiments.MigrationCost(ctx, opt)
		if err != nil {
			return err
		}
		emit(res.Table())
	}
	if show("multiprog") {
		_, t, err := experiments.Multiprogrammed(ctx, opt)
		if err != nil {
			return err
		}
		emit(t)
	}
	if show("smt") {
		_, t, err := experiments.SMTPlacement(ctx, opt)
		if err != nil {
			return err
		}
		emit(t)
	}
	if show("mux") {
		_, t, err := experiments.MuxValidation(ctx, opt)
		if err != nil {
			return err
		}
		emit(t)
	}
	if show("probe") {
		_, t, err := experiments.CacheProbe(ctx, opt)
		if err != nil {
			return err
		}
		emit(t)
	}
	if show("staged") {
		_, t, err := experiments.Staged(ctx, opt)
		if err != nil {
			return err
		}
		emit(t)
	}
	if show("churn") {
		_, t, err := experiments.Churn(ctx, opt)
		if err != nil {
			return err
		}
		emit(t)
	}
	if show("streaming") {
		_, t, err := experiments.Streaming(ctx, opt)
		if err != nil {
			return err
		}
		emit(t)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
