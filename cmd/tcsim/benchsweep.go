package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"threadcluster/internal/cache"
	"threadcluster/internal/memory"
	"threadcluster/internal/satbench"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
	"threadcluster/internal/topology"
	"threadcluster/internal/workloads"
)

// runBenchSweep implements the `tcsim bench-sweep` subcommand: a
// saturation sweep over machine shape and coherence intensity. Every grid
// cell builds the scoreboard microbenchmark on a (chips x cores-per-chip
// x 2 SMT) machine at the given shared-access fraction, runs identical
// rounds under the sequential and the chip-parallel engine, and records
// host wall-clock nanoseconds per simulated memory reference for each.
// The pure analysis — canonical ordering, Kneedle knee extraction along
// both the chips axis (parallel saturation) and the intensity axis
// (coherence-cost saturation) — lives in internal/satbench, so the
// committed report is a deterministic function of the measured cells.
//
// -record merges the analyzed report into a benchcmp baseline file
// (BENCH_sim.json) under its "sweep" key, leaving every other key
// untouched; benchcmp -update round-trips the section verbatim.
func runBenchSweep(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("bench-sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		chipsFlag = fs.String("chips", "1,2,4,8", "comma-separated chip counts")
		coresFlag = fs.String("cores", "1,2", "comma-separated cores-per-chip counts")
		intFlag   = fs.String("intensity", "0.1,0.4,0.7", "comma-separated shared-access fractions in [0, 1]")
		rounds    = fs.Int("rounds", 30, "measured scheduling rounds per cell")
		warm      = fs.Int("warm", 6, "warm-up rounds per cell (tables, mailboxes, caches)")
		seed      = fs.Int64("seed", 1, "base seed; per-cell seeds derive from it deterministically")
		format    = fs.String("format", "table", "output: table|json")
		record    = fs.String("record", "", "merge the report into this benchcmp baseline's \"sweep\" key (e.g. BENCH_sim.json)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	chips, err := parseInts(*chipsFlag)
	if err != nil {
		return fmt.Errorf("bench-sweep: -chips: %w", err)
	}
	cores, err := parseInts(*coresFlag)
	if err != nil {
		return fmt.Errorf("bench-sweep: -cores: %w", err)
	}
	intensities, err := parseFloats(*intFlag)
	if err != nil {
		return fmt.Errorf("bench-sweep: -intensity: %w", err)
	}
	if *rounds <= 0 {
		return fmt.Errorf("bench-sweep: -rounds must be positive")
	}

	var cells []satbench.Cell
	for _, cc := range cores {
		for _, in := range intensities {
			for _, ch := range chips {
				cell, err := measureCell(ch, cc, in, *seed, *warm, *rounds)
				if err != nil {
					return err
				}
				cells = append(cells, cell)
				fmt.Fprintf(stderr, "bench-sweep: %dx%dx2 @ %.2f  seq %.1f ns/ref  par %.1f ns/ref  (%.2fx)\n",
					ch, cc, in, cell.SeqNsPerRef, cell.ParNsPerRef, cell.Speedup())
			}
		}
	}

	host := satbench.Host{Cores: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0)}
	note := fmt.Sprintf("tcsim bench-sweep: scoreboard microbenchmark at 2x CPU oversubscription, %d rounds/cell after %d warm; ns/ref is host wall clock, so absolute values are host-dependent — the committed knees are the shape, not a gate",
		*rounds, *warm)
	report, err := satbench.BuildReport(note, host, cells)
	if err != nil {
		return err
	}

	switch *format {
	case "table":
		writeSweepTable(stdout, report)
	case "json":
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
	default:
		return fmt.Errorf("bench-sweep: unknown format %q", *format)
	}

	if *record != "" {
		if err := recordSweep(*record, report); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "bench-sweep: wrote sweep section of %s (%d cells, %d knees)\n",
			*record, len(report.Cells), len(report.Knees))
	}
	return nil
}

// measureCell times one grid cell under both engines. Identical machines
// and workloads are built per engine — the engines are differentially
// tested to produce byte-identical simulation results, so the only
// difference the wall clock sees is the execution strategy.
func measureCell(chips, coresPerChip int, intensity float64, seed int64, warm, rounds int) (satbench.Cell, error) {
	seqNs, err := timeEngine(chips, coresPerChip, intensity, seed, warm, rounds, sim.EngineSeq)
	if err != nil {
		return satbench.Cell{}, err
	}
	parNs, err := timeEngine(chips, coresPerChip, intensity, seed, warm, rounds, sim.EngineParallel)
	if err != nil {
		return satbench.Cell{}, err
	}
	return satbench.Cell{
		Chips:        chips,
		CoresPerChip: coresPerChip,
		Intensity:    intensity,
		SeqNsPerRef:  seqNs,
		ParNsPerRef:  parNs,
	}, nil
}

// instsPerRef is the instruction count the synthetic scoreboard worker
// attaches to every memory reference (workloads.syntheticWorker.Next
// always reports Insts: 10), which turns the machine's retired-
// instruction counter into an exact reference count.
const instsPerRef = 10

func timeEngine(chips, coresPerChip int, intensity float64, seed int64, warm, rounds int, engine sim.Engine) (float64, error) {
	topo := topology.Topology{Chips: chips, CoresPerChip: coresPerChip, ContextsPerCore: 2}
	cfg := sim.Config{
		Topo:             topo,
		Lat:              topology.DefaultLatencies(),
		Caches:           cache.SmallConfig(),
		QuantumCycles:    20_000,
		InterleaveSlices: 4,
		Seed:             seed,
		Policy:           sched.PolicyRoundRobin,
		Engine:           engine,
	}
	m, err := sim.NewMachine(cfg)
	if err != nil {
		return 0, fmt.Errorf("bench-sweep: %dx%dx2 machine: %w", chips, coresPerChip, err)
	}
	// 2x oversubscription saturates every context; one sharing group per
	// chip-half keeps round-robin placement scattering sharers across
	// chips, which is the traffic the sweep is probing.
	scfg := workloads.SyntheticConfig{
		Scoreboards:     2 * chips,
		ThreadsPerBoard: coresPerChip * 2,
		ScoreboardBytes: 16 * memory.LineSize,
		PrivateBytes:    64 << 10,
		SharedRatio:     intensity,
		WriteRatio:      0.5,
		Seed:            seed*7919 + int64(chips*100+coresPerChip),
	}
	spec, err := workloads.NewSynthetic(memory.NewDefaultArena(), scfg)
	if err != nil {
		return 0, err
	}
	if err := spec.Install(m); err != nil {
		return 0, err
	}
	ctx := context.Background()
	if err := m.RunRoundsCtx(ctx, warm); err != nil {
		return 0, err
	}
	insts0 := m.Breakdown().Insts
	start := time.Now()
	if err := m.RunRoundsCtx(ctx, rounds); err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	refs := (m.Breakdown().Insts - insts0) / instsPerRef
	if refs == 0 {
		return 0, fmt.Errorf("bench-sweep: %dx%dx2 @ %v retired no references in %d rounds", chips, coresPerChip, intensity, rounds)
	}
	// Round to 0.01 ns so the committed report doesn't churn in digits
	// below any real signal.
	return float64(elapsed.Nanoseconds()*100/int64(refs)) / 100, nil
}

func writeSweepTable(w io.Writer, r satbench.Report) {
	fmt.Fprintf(w, "host: %d cores, GOMAXPROCS %d\n", r.Host.Cores, r.Host.GoMaxProcs)
	fmt.Fprintf(w, "%-6s %-6s %-10s %14s %14s %9s\n", "chips", "cores", "intensity", "seq ns/ref", "par ns/ref", "speedup")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%-6d %-6d %-10.2f %14.1f %14.1f %8.2fx\n",
			c.Chips, c.CoresPerChip, c.Intensity, c.SeqNsPerRef, c.ParNsPerRef, c.Speedup())
	}
	if len(r.Knees) == 0 {
		fmt.Fprintln(w, "knees: none detected (every curve is linear, convex, or degrading)")
		return
	}
	fmt.Fprintln(w, "knees:")
	for _, k := range r.Knees {
		switch k.Axis {
		case satbench.AxisChips:
			fmt.Fprintf(w, "  parallel speedup saturates at %.0f chips (%.2fx) for cores=%d intensity=%.2f\n",
				k.At, k.Value, k.CoresPerChip, k.Intensity)
		case satbench.AxisIntensity:
			fmt.Fprintf(w, "  seq cost saturates at intensity %.2f (%.1f ns/ref) for chips=%d cores=%d\n",
				k.At, k.Value, k.Chips, k.CoresPerChip)
		}
	}
}

// baselineFile mirrors cmd/benchcmp's Baseline shape with raw passthrough
// for the sections bench-sweep does not own, so -record rewrites only the
// "sweep" key and keeps the benchcmp-managed keys byte-for-byte (field
// order matches benchcmp's struct, so both tools emit the same layout).
type baselineFile struct {
	GeneratedWith string           `json:"generated_with"`
	NsPerOp       json.RawMessage  `json:"ns_per_op"`
	Speedups      json.RawMessage  `json:"speedups"`
	Sweep         *satbench.Report `json:"sweep,omitempty"`
}

func recordSweep(path string, report satbench.Report) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bench-sweep: read baseline: %w", err)
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("bench-sweep: parse baseline %s: %w", path, err)
	}
	base.Sweep = &report
	enc, err := json.MarshalIndent(&base, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(enc, '\n'), 0o644)
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, fmt.Errorf("value %d must be positive", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func parseFloats(csv string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, err
		}
		if v < 0 || v > 1 {
			return nil, fmt.Errorf("intensity %v outside [0, 1]", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
