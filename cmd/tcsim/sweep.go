package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"time"

	"threadcluster/internal/cache"
	"threadcluster/internal/experiments"
	"threadcluster/internal/sched"
	"threadcluster/internal/server"
	"threadcluster/internal/sim"
	"threadcluster/internal/sweep"
)

// runSweep implements the `tcsim sweep` subcommand: fan a configuration
// grid (policy x topology x workload) across a worker pool and emit a
// metrics table. Per-configuration results are byte-identical for any
// -workers value — seeds are fixed by the grid, not by scheduling — so
// `-workers 1` is the reference run and higher counts only change
// wall-clock (reported on stderr to keep stdout comparable).
func runSweep(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workloadsFlag = fs.String("workloads", "microbenchmark,volano,specjbb,rubis",
			"comma-separated workloads")
		policiesFlag = fs.String("policies", "default,clustered",
			"comma-separated policies: default|round-robin|hand-optimized|clustered")
		toposFlag = fs.String("topos", experiments.TopoOpenPower720,
			"comma-separated topologies: open720|power5-32")
		workers   = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		seed      = fs.Int64("seed", 1, "base seed; per-config seeds derive from it deterministically")
		warm      = fs.Int("warm", 0, "override warm-up rounds (0 = default)")
		engine    = fs.Int("engine", 0, "override engine rounds (0 = default)")
		measure   = fs.Int("measure", 0, "override measured rounds (0 = default)")
		format    = fs.String("format", "table", "output: table|markdown|csv|json")
		merged    = fs.Bool("merged", false, "also emit the merged machine-wide snapshot (csv/json formats)")
		digest    = fs.Bool("digest", false, "print only the canonical result-payload digest (matches a tcsimd job's digest for the same grid)")
		timeout   = fs.Duration("timeout", 0, "cancel the sweep after this duration (0 = none)")
		coherence = fs.String("coherence", "directory", "cache-coherence implementation: directory|broadcast")
		// -engine was taken by clustering-engine rounds long before the
		// execution engine existed, hence -simengine here (plain tcsim
		// spells it -engine).
		simengine = fs.String("simengine", "parallel", "execution engine for eligible multi-chip rounds: seq|parallel (results are byte-identical)")
		cpuprof   = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprof   = fs.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	stopCPU, err := startCPUProfile(*cpuprof)
	if err != nil {
		return err
	}
	defer stopCPU()

	opt := experiments.DefaultOptions()
	if *warm > 0 {
		opt.WarmRounds = *warm
	}
	if *engine > 0 {
		opt.EngineRounds = *engine
	}
	if *measure > 0 {
		opt.MeasureRounds = *measure
	}
	mode, err := cache.ParseCoherenceMode(*coherence)
	if err != nil {
		return err
	}
	opt.Coherence = mode
	eng, err := sim.ParseEngine(*simengine)
	if err != nil {
		return err
	}
	opt.Engine = eng

	var policies []sched.Policy
	for _, name := range experiments.SplitList(*policiesFlag) {
		p, err := experiments.ParsePolicy(name)
		if err != nil {
			return err
		}
		policies = append(policies, p)
	}
	grid := experiments.GridSpec{
		Workloads: experiments.SplitList(*workloadsFlag),
		Policies:  policies,
		Topos:     experiments.SplitList(*toposFlag),
		BaseSeed:  *seed,
		Opt:       opt,
	}
	if len(grid.Workloads) == 0 || len(grid.Policies) == 0 || len(grid.Topos) == 0 {
		return fmt.Errorf("sweep: empty grid (need at least one workload, policy and topology)")
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	start := time.Now()
	cells, results, mergedSnap, err := experiments.RunGrid(ctx, grid, *workers)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	if *digest {
		d, err := server.Digest(cells, results, mergedSnap)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, d)
		fmt.Fprintf(stderr, "sweep: %d configurations on %d workers in %s\n",
			len(cells), sweep.Workers(*workers), elapsed.Round(time.Millisecond))
		return writeMemProfile(*memprof)
	}

	switch *format {
	case "table":
		fmt.Fprintln(stdout, experiments.GridTable(cells, results))
	case "markdown":
		fmt.Fprintln(stdout, experiments.GridTable(cells, results).Markdown())
	case "csv":
		for i, r := range results {
			fmt.Fprintf(stdout, "# %s seed=%d\n", cells[i].Name(), cells[i].Seed)
			if err := r.Metrics.WriteCSV(stdout); err != nil {
				return err
			}
		}
		if *merged {
			fmt.Fprintln(stdout, "# merged")
			if err := mergedSnap.WriteCSV(stdout); err != nil {
				return err
			}
		}
	case "json":
		if *merged {
			if err := mergedSnap.WriteJSON(stdout); err != nil {
				return err
			}
			break
		}
		for i, r := range results {
			fmt.Fprintf(stdout, "// %s seed=%d\n", cells[i].Name(), cells[i].Seed)
			if err := r.Metrics.WriteJSON(stdout); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("sweep: unknown format %q", *format)
	}
	fmt.Fprintf(stderr, "sweep: %d configurations on %d workers in %s\n",
		len(cells), sweep.Workers(*workers), elapsed.Round(time.Millisecond))
	return writeMemProfile(*memprof)
}
