package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// sweepArgs keeps the grid tiny so the test stays fast; stdout is the
// comparison surface, stderr (wall-clock) is discarded.
func runSweepOut(t *testing.T, extra ...string) string {
	t.Helper()
	warm, engine, measure := "30", "50", "30"
	if testing.Short() {
		// The sweep tests check determinism and output formats, not
		// result shapes; -short shrinks the simulated rounds further.
		warm, engine, measure = "10", "20", "10"
	}
	args := append([]string{
		"-workloads", "microbenchmark,volano",
		"-policies", "default,clustered",
		"-warm", warm, "-engine", engine, "-measure", measure,
	}, extra...)
	var out bytes.Buffer
	if err := runSweep(args, &out, io.Discard); err != nil {
		t.Fatalf("runSweep %v: %v", args, err)
	}
	return out.String()
}

// TestSweepDeterministicAcrossWorkers is the subcommand-level determinism
// check: per-configuration output is byte-identical for any -workers value.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	ref := runSweepOut(t, "-workers", "1", "-format", "csv")
	for _, w := range []string{"2", "4"} {
		if got := runSweepOut(t, "-workers", w, "-format", "csv"); got != ref {
			t.Errorf("-workers=%s output differs from -workers=1", w)
		}
	}
}

func TestSweepTableOutput(t *testing.T) {
	out := runSweepOut(t, "-format", "table")
	for _, want := range []string{
		"Sweep: policy x topology x workload",
		"microbenchmark/default/open720",
		"volano/clustered/open720",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestSweepJSONMerged(t *testing.T) {
	out := runSweepOut(t, "-format", "json", "-merged")
	if !strings.Contains(out, "\"samples\"") {
		t.Errorf("merged json missing samples array:\n%s", out)
	}
}

func TestSweepRejectsUnknowns(t *testing.T) {
	var out bytes.Buffer
	if err := runSweep([]string{"-policies", "bogus"}, &out, io.Discard); err == nil {
		t.Error("unknown policy should error")
	}
	if err := runSweep([]string{"-workloads", "bogus"}, &out, io.Discard); err == nil {
		t.Error("unknown workload should error")
	}
	if err := runSweep([]string{"-format", "bogus", "-workloads", "microbenchmark",
		"-policies", "default", "-warm", "5", "-engine", "5", "-measure", "5"},
		&out, io.Discard); err == nil {
		t.Error("unknown format should error")
	}
}
