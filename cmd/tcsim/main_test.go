package main

import (
	"context"
	"testing"

	"threadcluster/internal/experiments"
)

// fastOptions keeps CLI tests quick. These tests exercise dispatch and
// output plumbing, not result shapes, so -short can cut the rounds
// further without weakening anything.
func fastOptions() experiments.Options {
	opt := experiments.DefaultOptions()
	opt.WarmRounds = 30
	opt.EngineRounds = 50
	opt.MeasureRounds = 30
	if testing.Short() {
		opt.WarmRounds = 10
		opt.EngineRounds = 20
		opt.MeasureRounds = 10
	}
	return opt
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(context.Background(), "nonsense", experiments.Volano, fastOptions(), false); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRunTable1AndFig1(t *testing.T) {
	if err := run(context.Background(), "table1", experiments.Volano, fastOptions(), true); err != nil {
		t.Errorf("table1: %v", err)
	}
	if err := run(context.Background(), "fig1", experiments.Volano, fastOptions(), false); err != nil {
		t.Errorf("fig1: %v", err)
	}
}

func TestRunFig3SingleWorkload(t *testing.T) {
	if err := run(context.Background(), "fig3", experiments.Microbenchmark, fastOptions(), false); err != nil {
		t.Errorf("fig3: %v", err)
	}
}
