package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"threadcluster/internal/client"
	"threadcluster/internal/experiments"
	"threadcluster/internal/server"
)

// runSubmit implements the `tcsim submit` subcommand: submit a sweep
// grid to a running tcsimd, follow its progress, and print the canonical
// result payload — byte-identical to what `tcsim sweep` computes offline
// for the same grid, which is what makes remote execution trustworthy.
func runSubmit(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("submit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr          = fs.String("addr", "http://127.0.0.1:8321", "tcsimd base URL")
		specFile      = fs.String("spec", "", "JSON JobSpec file to submit (overrides the grid flags; '-' = stdin)")
		id            = fs.String("id", "", "job ID (server assigns one when empty)")
		workloadsFlag = fs.String("workloads", "microbenchmark,volano,specjbb,rubis",
			"comma-separated workloads")
		policiesFlag = fs.String("policies", "default,clustered",
			"comma-separated policies: default|round-robin|hand-optimized|clustered")
		toposFlag = fs.String("topos", experiments.TopoOpenPower720,
			"comma-separated topologies: open720|power5-32")
		seed      = fs.Int64("seed", 1, "base seed; per-config seeds derive from it deterministically")
		warm      = fs.Int("warm", 0, "override warm-up rounds (0 = default)")
		engine    = fs.Int("engine", 0, "override engine rounds (0 = default)")
		measure   = fs.Int("measure", 0, "override measured rounds (0 = default)")
		coherence = fs.String("coherence", "", "cache-coherence implementation: directory|broadcast (empty = server default)")
		simengine = fs.String("simengine", "", "execution engine: seq|parallel (empty = server default)")
		workers   = fs.Int("workers", 0, "per-job sweep pool size (0 = server default)")
		priority  = fs.Int("priority", 0, "admission priority (higher runs earlier)")
		wait      = fs.Bool("wait", true, "follow the job and print its result payload (false: print the admission status and return)")
		events    = fs.Bool("events", false, "echo progress events to stderr while waiting")
		digest    = fs.Bool("digest", false, "print only the result digest instead of the payload")
		retries   = fs.Int("retries", 5, "re-submissions after a 429 rejection, honoring Retry-After with deterministic seed-derived jitter (0 = fail fast)")
		timeout   = fs.Duration("timeout", 0, "give up after this duration (0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var spec server.JobSpec
	if *specFile != "" {
		var data []byte
		var err error
		if *specFile == "-" {
			data, err = io.ReadAll(os.Stdin)
		} else {
			data, err = os.ReadFile(*specFile)
		}
		if err != nil {
			return fmt.Errorf("submit: reading spec: %w", err)
		}
		if err := json.Unmarshal(data, &spec); err != nil {
			return fmt.Errorf("submit: parsing spec: %w", err)
		}
	} else {
		spec = server.JobSpec{
			Workloads:     experiments.SplitList(*workloadsFlag),
			Policies:      experiments.SplitList(*policiesFlag),
			Topos:         experiments.SplitList(*toposFlag),
			Seed:          *seed,
			WarmRounds:    *warm,
			EngineRounds:  *engine,
			MeasureRounds: *measure,
			Coherence:     *coherence,
			Engine:        *simengine,
			Workers:       *workers,
			Priority:      *priority,
		}
	}
	if *id != "" {
		spec.ID = *id
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cl := client.New(*addr, nil).WithBackoff(client.Backoff{Retries: *retries, Seed: spec.Seed})
	st, err := cl.Submit(ctx, spec)
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	fmt.Fprintf(stderr, "submit: job %s admitted (cost %d)\n", st.ID, st.Cost)
	if !*wait {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(st)
	}

	onEvent := func(server.Event) error { return nil }
	if *events {
		enc := json.NewEncoder(stderr)
		onEvent = func(ev server.Event) error { return enc.Encode(ev) }
	}
	if err := cl.Events(ctx, st.ID, onEvent); err != nil {
		return fmt.Errorf("submit: following job %s: %w", st.ID, err)
	}
	final, err := cl.Status(ctx, st.ID)
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	if final.State != server.StateDone {
		return fmt.Errorf("submit: job %s ended %s: %s", st.ID, final.State, final.Error)
	}
	if *digest {
		fmt.Fprintln(stdout, final.Digest)
		return nil
	}
	payload, err := cl.Result(ctx, st.ID)
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	_, err = stdout.Write(payload)
	return err
}
