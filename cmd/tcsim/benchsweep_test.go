package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// benchSweepArgs is a minimal fast grid: two machine shapes, one
// intensity, a handful of rounds.
func benchSweepArgs(extra ...string) []string {
	args := []string{"-chips", "1,2", "-cores", "1", "-intensity", "0.3", "-rounds", "3", "-warm", "1"}
	return append(args, extra...)
}

func TestBenchSweepTable(t *testing.T) {
	var out, errb bytes.Buffer
	if err := runBenchSweep(benchSweepArgs(), &out, &errb); err != nil {
		t.Fatalf("bench-sweep: %v\nstderr: %s", err, errb.String())
	}
	for _, want := range []string{"chips", "seq ns/ref", "host:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("table output missing %q:\n%s", want, out.String())
		}
	}
}

func TestBenchSweepJSONShape(t *testing.T) {
	var out, errb bytes.Buffer
	if err := runBenchSweep(benchSweepArgs("-format", "json"), &out, &errb); err != nil {
		t.Fatalf("bench-sweep: %v\nstderr: %s", err, errb.String())
	}
	var report struct {
		Note  string `json:"note"`
		Host  struct{ Cores, Gomaxprocs int }
		Cells []struct {
			Chips       int     `json:"chips"`
			SeqNsPerRef float64 `json:"seq_ns_per_ref"`
			ParNsPerRef float64 `json:"par_ns_per_ref"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("output is not the report JSON: %v\n%s", err, out.String())
	}
	if len(report.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(report.Cells))
	}
	for _, c := range report.Cells {
		if c.SeqNsPerRef <= 0 || c.ParNsPerRef <= 0 {
			t.Errorf("cell %+v has non-positive timing", c)
		}
	}
	if report.Note == "" {
		t.Error("report should carry the methodology note")
	}
}

// TestBenchSweepRecordMergesSweepKey pins the read-modify-write contract
// of -record: only the "sweep" key changes; the benchcmp-owned keys stay
// semantically intact (same generated_with, same ns_per_op, same
// speedups including gates).
func TestBenchSweepRecordMergesSweepKey(t *testing.T) {
	const baseline = `{
  "generated_with": "make bench-baseline on host X",
  "ns_per_op": {"BenchmarkMachineRound32WaySeq": 123.0},
  "speedups": [
    {"name": "parallel-vs-seq-32way", "slow": "a", "fast": "b",
     "min_ratio": 2, "recorded_ratio": 0.9, "min_cores": 4}
  ]
}`
	path := filepath.Join(t.TempDir(), "BENCH_sim.json")
	if err := os.WriteFile(path, []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if err := runBenchSweep(benchSweepArgs("-record", path), &out, &errb); err != nil {
		t.Fatalf("bench-sweep -record: %v\nstderr: %s", err, errb.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]json.RawMessage
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("recorded file is not JSON: %v\n%s", err, raw)
	}
	if _, ok := got["sweep"]; !ok {
		t.Fatalf("recorded file missing sweep key:\n%s", raw)
	}
	for key, want := range map[string]string{
		"generated_with": "host X",
		"ns_per_op":      "BenchmarkMachineRound32WaySeq",
		"speedups":       `"min_cores": 4`,
	} {
		if !strings.Contains(string(got[key]), want) {
			t.Errorf("key %s lost content %q:\n%s", key, want, got[key])
		}
	}
	// Re-recording must be idempotent modulo fresh timings: still valid
	// JSON with all four keys.
	if err := runBenchSweep(benchSweepArgs("-record", path), &out, &errb); err != nil {
		t.Fatalf("second -record: %v", err)
	}
	raw2, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw2, &got); err != nil {
		t.Fatalf("second recorded file is not JSON: %v", err)
	}
	if len(got) != 4 {
		t.Fatalf("recorded file has %d top-level keys, want 4", len(got))
	}
}

func TestBenchSweepRejectsBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if err := runBenchSweep([]string{"-chips", "0"}, &out, &errb); err == nil {
		t.Error("zero chips should be rejected")
	}
	if err := runBenchSweep([]string{"-intensity", "1.5"}, &out, &errb); err == nil {
		t.Error("intensity above 1 should be rejected")
	}
	if err := runBenchSweep(benchSweepArgs("-format", "xml"), &out, &errb); err == nil {
		t.Error("unknown format should be rejected")
	}
}
