package main

import (
	"bytes"
	"context"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"threadcluster/internal/server"
)

// startJobServer boots an in-process job server behind httptest for the
// submit subcommand to talk to.
func startJobServer(t *testing.T) string {
	t.Helper()
	s, err := server.New(server.Options{
		Clock: server.NewFakeClock(time.Unix(1_700_000_000, 0).UTC()),
	})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	if err := s.Start(ctx); err != nil {
		t.Fatalf("server.Start: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		sctx, scancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer scancel()
		_ = s.Shutdown(sctx)
	})
	return ts.URL
}

// TestSubmitMatchesOfflineSweepDigest is the CLI-level differential
// check the CI server-smoke job scripts: `tcsim submit -digest` against
// a live server equals `tcsim sweep -digest` computed offline.
func TestSubmitMatchesOfflineSweepDigest(t *testing.T) {
	addr := startJobServer(t)
	grid := []string{
		"-workloads", "microbenchmark,volano",
		"-policies", "default,clustered",
		"-warm", "10", "-engine", "20", "-measure", "10",
		"-seed", "5",
	}

	var offline bytes.Buffer
	if err := runSweep(append([]string{"-digest"}, grid...), &offline, io.Discard); err != nil {
		t.Fatalf("runSweep -digest: %v", err)
	}

	var remote bytes.Buffer
	args := append([]string{"-addr", addr, "-id", "cli", "-digest"}, grid...)
	if err := runSubmit(args, &remote, io.Discard); err != nil {
		t.Fatalf("runSubmit: %v", err)
	}

	off, rem := strings.TrimSpace(offline.String()), strings.TrimSpace(remote.String())
	if off == "" || !strings.HasPrefix(off, "sha256:") {
		t.Fatalf("offline digest %q is not a sha256 digest", off)
	}
	if rem != off {
		t.Fatalf("server digest %q != offline digest %q", rem, off)
	}
}

// TestSubmitPrintsPayload checks the default mode: the canonical payload
// lands on stdout and embeds its digest.
func TestSubmitPrintsPayload(t *testing.T) {
	addr := startJobServer(t)
	args := []string{
		"-addr", addr, "-id", "pay",
		"-workloads", "microbenchmark",
		"-policies", "default",
		"-warm", "2", "-engine", "4", "-measure", "4",
	}
	var out bytes.Buffer
	if err := runSubmit(args, &out, io.Discard); err != nil {
		t.Fatalf("runSubmit: %v", err)
	}
	for _, want := range []string{`"tasks"`, `"merged"`, `"digest": "sha256:`} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("payload output lacks %s:\n%s", want, out.String())
		}
	}
}

// TestSubmitReportsServerErrors maps a rejected spec onto a CLI error.
func TestSubmitReportsServerErrors(t *testing.T) {
	addr := startJobServer(t)
	args := []string{"-addr", addr, "-workloads", "no-such-workload"}
	err := runSubmit(args, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "bad_config") {
		t.Fatalf("runSubmit with bad workload = %v, want bad_config error", err)
	}
}
