package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"threadcluster/internal/cache"
	"threadcluster/internal/core"
	"threadcluster/internal/experiments"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
)

// runSnapshot implements the `tcsim snapshot` subcommand: run one
// configuration for -rounds and persist the machine's complete state as
// a versioned snapshot, or restore a snapshot with -resume and continue
// it. The snapshot encoding is canonical — its digest (printed on
// stdout) is stable across execution engines and GOMAXPROCS — so
// splitting a run at any quiescent point changes nothing:
//
//	tcsim snapshot -rounds 400 -out full.snap
//	tcsim snapshot -rounds 250 -out half.snap
//	tcsim snapshot -resume half.snap -rounds 150 -out resumed.snap
//	cmp full.snap resumed.snap   # byte-identical
//
// The build flags (-workload, -policy, -topo, -seed, -coherence) must
// match between the snapshotting run and the resuming run: generators
// and PMU programming are rebuilt from them, then validated against the
// snapshot during restore. Only workloads with confined generators
// (microbenchmark, volano) can snapshot; specjbb and rubis touch shared
// scoreboards mid-quantum and are rejected with a bad-configuration
// error.
func runSnapshot(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("snapshot", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workload = fs.String("workload", experiments.Microbenchmark,
			"workload: microbenchmark|volano (confined generators only)")
		policyFlag = fs.String("policy", "default",
			"placement policy: default|round-robin|hand-optimized|clustered (clustered attaches the engine)")
		topoFlag  = fs.String("topo", experiments.TopoOpenPower720, "topology: open720|power5-32")
		seed      = fs.Int64("seed", 1, "simulation seed; must match the snapshot when resuming")
		rounds    = fs.Int("rounds", 200, "scheduling rounds to run before snapshotting")
		out       = fs.String("out", "", "write the machine snapshot to this file")
		resume    = fs.String("resume", "", "restore the machine from this snapshot file, then run -rounds more")
		coherence = fs.String("coherence", "directory", "cache-coherence implementation: directory|broadcast")
		simengine = fs.String("simengine", "parallel", "execution engine: seq|parallel (snapshot digests are identical)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rounds < 0 {
		return fmt.Errorf("snapshot: negative -rounds")
	}

	policy, err := experiments.ParsePolicy(*policyFlag)
	if err != nil {
		return err
	}
	topo, err := experiments.ParseTopo(*topoFlag)
	if err != nil {
		return err
	}
	mode, err := cache.ParseCoherenceMode(*coherence)
	if err != nil {
		return err
	}
	eng, err := sim.ParseEngine(*simengine)
	if err != nil {
		return err
	}

	mcfg := sim.DefaultConfig()
	mcfg.Engine = eng
	mcfg.Topo = topo
	mcfg.Policy = policy
	mcfg.Seed = *seed
	mcfg.QuantumCycles = experiments.DefaultOptions().QuantumCycles
	mcfg.Caches.Coherence = mode

	// install rebuilds everything a snapshot cannot carry — generator
	// closures, PMU programming, the clustering engine's handlers — from
	// the same flags that produced the original machine.
	install := func(m *sim.Machine) error {
		spec, err := experiments.BuildWorkload(*workload, *seed)
		if err != nil {
			return err
		}
		if err := spec.Install(m); err != nil {
			return err
		}
		if policy == sched.PolicyClustered {
			e, err := core.New(m, experiments.ScaledEngineConfig(*seed))
			if err != nil {
				return err
			}
			return e.Install()
		}
		return nil
	}

	ctx := context.Background()
	var m *sim.Machine
	if *resume != "" {
		data, err := os.ReadFile(*resume)
		if err != nil {
			return fmt.Errorf("snapshot: reading %s: %w", *resume, err)
		}
		snap, err := sim.DecodeSnapshot(data)
		if err != nil {
			return fmt.Errorf("snapshot: decoding %s: %w", *resume, err)
		}
		m, err = sim.RestoreMachine(mcfg, snap, install)
		if err != nil {
			return fmt.Errorf("snapshot: restoring %s: %w", *resume, err)
		}
	} else {
		m, err = sim.NewMachine(mcfg)
		if err != nil {
			return err
		}
		if err := install(m); err != nil {
			return err
		}
	}

	if err := m.RunRoundsCtx(ctx, *rounds); err != nil {
		return err
	}
	snap, err := m.Snapshot(ctx)
	if err != nil {
		return err
	}
	if *out != "" {
		if err := os.WriteFile(*out, snap.Encode(), 0o666); err != nil {
			return fmt.Errorf("snapshot: writing %s: %w", *out, err)
		}
	}
	fmt.Fprintln(stdout, snap.Digest())
	b := m.Breakdown()
	fmt.Fprintf(stderr, "snapshot: %s/%s/%s seed %d: +%d rounds, %d cycles, %d insts, %d ops\n",
		*workload, policy, *topoFlag, *seed, *rounds, b.Cycles, b.Insts, m.TotalOps())
	return nil
}
