package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRecordInfoReplayPipeline(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "t.tctr")
	if err := record([]string{"-workload", "microbenchmark", "-rounds", "30", "-maxrefs", "2000", "-o", file}); err != nil {
		t.Fatalf("record: %v", err)
	}
	if st, err := os.Stat(file); err != nil || st.Size() == 0 {
		t.Fatalf("trace file missing or empty: %v", err)
	}
	if err := info([]string{file}); err != nil {
		t.Fatalf("info: %v", err)
	}
	if err := replay([]string{"-rounds", "30", file}); err != nil {
		t.Fatalf("replay: %v", err)
	}
}

func TestInfoMissingFile(t *testing.T) {
	if err := info([]string{}); err == nil {
		t.Error("missing file argument should error")
	}
	if err := info([]string{"/nonexistent/file.tctr"}); err == nil {
		t.Error("nonexistent file should error")
	}
}

func TestRecordUnknownWorkload(t *testing.T) {
	if err := record([]string{"-workload", "nope", "-o", filepath.Join(t.TempDir(), "x")}); err == nil {
		t.Error("unknown workload should error")
	}
}
