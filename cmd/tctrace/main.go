// Command tctrace records, inspects and replays memory-reference traces.
//
//	tctrace record -workload volano -rounds 200 -o volano.tctr
//	tctrace info volano.tctr
//	tctrace replay volano.tctr            # compare placement policies
//
// A trace is a portable, deterministic capture of a workload's reference
// streams; replaying the same trace under every placement policy isolates
// scheduling effects from workload randomness completely.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"threadcluster/internal/experiments"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
	"threadcluster/internal/stats"
	"threadcluster/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = record(os.Args[2:])
	case "info":
		err = info(os.Args[2:])
	case "replay":
		err = replay(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tctrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tctrace record|info|replay [flags] [file]")
	os.Exit(2)
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	workload := fs.String("workload", experiments.Volano, "microbenchmark|volano|specjbb|rubis")
	rounds := fs.Int("rounds", 200, "scheduling rounds to capture")
	maxRefs := fs.Int("maxrefs", 0, "per-thread reference cap (0 = unlimited)")
	seed := fs.Int64("seed", 1, "simulation seed")
	out := fs.String("o", "workload.tctr", "output file")
	compress := fs.Bool("gzip", false, "gzip-compress the trace (Load auto-detects)")
	_ = fs.Parse(args)

	spec, err := experiments.BuildWorkload(*workload, *seed)
	if err != nil {
		return err
	}
	rec := trace.NewRecorder(*maxRefs)
	for _, th := range spec.Threads {
		rec.Wrap(th)
	}
	mcfg := sim.DefaultConfig()
	mcfg.Seed = *seed
	mcfg.QuantumCycles = 20_000
	m, err := sim.NewMachine(mcfg)
	if err != nil {
		return err
	}
	if err := spec.Install(m); err != nil {
		return err
	}
	m.RunRoundsCtx(context.Background(), *rounds)

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if *compress {
		err = rec.Snapshot().SaveCompressed(f)
	} else {
		err = rec.Save(f)
	}
	if err != nil {
		return err
	}
	fmt.Printf("recorded %d references from %d threads to %s\n",
		rec.Captured(), len(spec.Threads), *out)
	return nil
}

func loadFile(args []string) (*trace.Trace, error) {
	if len(args) < 1 {
		return nil, fmt.Errorf("trace file required")
	}
	f, err := os.Open(args[len(args)-1])
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Load(f)
}

func info(args []string) error {
	tr, err := loadFile(args)
	if err != nil {
		return err
	}
	t := stats.NewTable("Trace summary", "Quantity", "Value")
	t.AddRowf("threads", len(tr.Threads))
	t.AddRowf("references", tr.Refs())
	t.AddRowf("distinct lines", tr.Footprint())
	t.AddRowf("lines shared by >1 thread", tr.SharedLines())
	fmt.Println(t)
	parts := map[int]int{}
	for _, th := range tr.Threads {
		parts[th.Partition]++
	}
	fmt.Printf("partitions: %v\n", parts)
	return nil
}

func replay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	rounds := fs.Int("rounds", 300, "rounds to replay per policy")
	seed := fs.Int64("seed", 1, "machine seed")
	_ = fs.Parse(args)
	tr, err := loadFile(fs.Args())
	if err != nil {
		return err
	}

	t := stats.NewTable("Replay under each placement policy",
		"Policy", "Remote stalls", "IPC")
	for _, pol := range []sched.Policy{
		sched.PolicyDefault, sched.PolicyRoundRobin, sched.PolicyHandOptimized,
	} {
		threads, err := tr.ThreadsForReplay()
		if err != nil {
			return err
		}
		mcfg := sim.DefaultConfig()
		mcfg.Policy = pol
		mcfg.Seed = *seed
		mcfg.QuantumCycles = 20_000
		m, err := sim.NewMachine(mcfg)
		if err != nil {
			return err
		}
		if pol == sched.PolicyHandOptimized {
			byID := make(map[sched.ThreadID]int)
			for _, th := range tr.Threads {
				byID[th.ID] = th.Partition
			}
			m.Scheduler().SetPartitionHint(func(id sched.ThreadID) int { return byID[id] })
		}
		for _, th := range threads {
			if err := m.AddThread(th); err != nil {
				return err
			}
		}
		m.RunRoundsCtx(context.Background(), *rounds)
		b := m.Breakdown()
		ipc := 0.0
		if b.CPI() > 0 {
			ipc = 1 / b.CPI()
		}
		t.AddRow(pol.String(), stats.Pct(b.RemoteFraction()), fmt.Sprintf("%.3f", ipc))
	}
	fmt.Println(t)
	return nil
}
