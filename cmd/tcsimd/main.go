// Command tcsimd is the simulation-job daemon: it serves the
// internal/server HTTP API, executing policy x topology x workload sweep
// jobs on the deterministic sweep pool and exposing Prometheus metrics.
//
// Usage:
//
//	tcsimd                                  # serve on 127.0.0.1:8321
//	tcsimd -addr :9000 -job-workers 4
//	tcsimd -spool /var/lib/tcsimd/spool     # persist queued jobs across restarts
//
// Endpoints (see internal/server.Handler): POST /v1/jobs submits a
// JobSpec, GET /v1/jobs/{id}/events streams NDJSON progress, GET
// /v1/jobs/{id}/result returns the canonical payload — byte-identical to
// an offline `tcsim sweep` of the same grid — and GET /metrics serves
// the Prometheus text exposition. Overload is rejected with 429 +
// Retry-After rather than queued unboundedly.
//
// On SIGINT/SIGTERM the daemon stops admission, drains in-flight jobs
// for -grace, spools still-queued specs to -spool (re-admitted on the
// next start), then exits. Jobs cut by the drain deadline — and, with
// -checkpoint-every N, jobs killed without a drain — leave completed-
// cell checkpoints beside the spool; a restarted daemon resumes them to
// the same result digest an uninterrupted run produces. Corrupt spool
// or checkpoint files are quarantined (renamed *.quarantine) and
// reported, never fatal.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"threadcluster/internal/server"
)

// systemClock feeds real wall time to the server; cmd/ is the wallclock
// allowlist boundary, so the time.Now calls live here, not in the
// library (DESIGN.md §6).
type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "tcsimd:", err)
		os.Exit(1)
	}
}

// run parses flags, serves until the stop signal (or the stop channel in
// tests) fires, then drains. It prints the bound address on stdout once
// listening, so scripts binding ":0" can discover the port.
func run(args []string, stdout, stderr io.Writer, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("tcsimd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "127.0.0.1:8321", "listen address (use :0 for an ephemeral port)")
		jobWorkers  = fs.Int("job-workers", 1, "concurrently executing jobs (results are byte-identical for any value)")
		taskWorkers = fs.Int("task-workers", 0, "default per-job sweep pool size (0 = GOMAXPROCS)")
		queueDepth  = fs.Int("queue-depth", 64, "max queued (not yet running) jobs before 429")
		maxJobCost  = fs.Int64("max-job-cost", 0, "per-job token budget, grid cells x rounds (0 = default)")
		maxQueued   = fs.Int64("max-queued-cost", 0, "outstanding token pool before 429 (0 = 8x per-job budget)")
		eventBuffer = fs.Int("event-buffer", 0, "per-job event ring capacity (0 = default)")
		spoolDir    = fs.String("spool", "", "directory for queued-job specs and running-job checkpoints across restarts (empty = no spool)")
		ckptEvery   = fs.Int("checkpoint-every", 0, "flush a running job's checkpoint beside the spool every N completed grid cells (0 = only when a drain cuts it; requires -spool)")
		grace       = fs.Duration("grace", 30*time.Second, "drain deadline for in-flight jobs at shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	s, err := server.New(server.Options{
		Clock:           systemClock{},
		QueueDepth:      *queueDepth,
		MaxJobCost:      *maxJobCost,
		MaxQueuedCost:   *maxQueued,
		JobWorkers:      *jobWorkers,
		TaskWorkers:     *taskWorkers,
		EventBuffer:     *eventBuffer,
		SpoolDir:        *spoolDir,
		CheckpointEvery: *ckptEvery,
	})
	if err != nil {
		return err
	}

	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()
	// The workers outlive the signal: Shutdown drains them gracefully.
	// Only a second signal (ctx here is already done) aborts hard.
	if err := s.Start(context.WithoutCancel(ctx)); err != nil {
		return err
	}
	// Quarantined spool/checkpoint files are warnings, not startup
	// failures: report them and serve.
	for _, w := range s.SpoolWarnings() {
		fmt.Fprintf(stderr, "tcsimd: spool: %v\n", w)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("tcsimd: listening on %s: %w", *addr, err)
	}
	fmt.Fprintf(stdout, "tcsimd: listening on http://%s\n", ln.Addr())

	httpSrv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case <-ctx.Done():
	case <-stop:
	case err := <-serveErr:
		return fmt.Errorf("tcsimd: serving: %w", err)
	}

	fmt.Fprintf(stderr, "tcsimd: draining (grace %s)\n", *grace)
	gctx, gcancel := context.WithTimeout(context.WithoutCancel(ctx), *grace)
	defer gcancel()
	drainErr := s.Shutdown(gctx) // ends admission, drains jobs, closes event streams
	if err := httpSrv.Shutdown(gctx); err != nil && drainErr == nil {
		drainErr = fmt.Errorf("tcsimd: closing http server: %w", err)
	}
	if errors.Is(drainErr, context.DeadlineExceeded) {
		fmt.Fprintln(stderr, "tcsimd: drain deadline struck; running jobs were canceled")
		return nil
	}
	return drainErr
}
