package main

import (
	"context"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"threadcluster/internal/client"
	"threadcluster/internal/metrics"
	"threadcluster/internal/server"
)

// lineBuffer hands the first stdout line (the listen banner) to the test.
type lineBuffer struct {
	mu    sync.Mutex
	lines chan string
	rest  strings.Builder
	sent  bool
}

func newLineBuffer() *lineBuffer { return &lineBuffer{lines: make(chan string, 1)} }

func (b *lineBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.rest.Write(p)
	if !b.sent {
		if text := b.rest.String(); strings.Contains(text, "\n") {
			b.sent = true
			b.lines <- strings.SplitN(text, "\n", 2)[0]
		}
	}
	return len(p), nil
}

// TestDaemonServesAndDrains boots the daemon on an ephemeral port, runs
// one job through the typed client, and stops it via the test stop
// channel — the whole lifecycle a systemd unit would see, minus signals.
func TestDaemonServesAndDrains(t *testing.T) {
	stdout := newLineBuffer()
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-grace", "30s"}, stdout, io.Discard, stop)
	}()

	var base string
	select {
	case banner := <-stdout.lines:
		base = strings.TrimPrefix(banner, "tcsimd: listening on ")
	case err := <-done:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never printed its listen banner")
	}

	cl := client.New(base, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := cl.Ready(ctx); err != nil {
		t.Fatalf("Ready: %v", err)
	}
	spec := server.JobSpec{
		ID:            "boot",
		Workloads:     []string{"microbenchmark"},
		Policies:      []string{"default"},
		Topos:         []string{"open720"},
		Seed:          3,
		WarmRounds:    2,
		EngineRounds:  4,
		MeasureRounds: 4,
	}
	if _, err := cl.Submit(ctx, spec); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st, err := cl.Wait(ctx, "boot")
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if st.State != server.StateDone {
		t.Fatalf("state %s (err %q), want done", st.State, st.Error)
	}
	text, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if err := metrics.CheckPrometheusText(text); err != nil {
		t.Fatalf("daemon exposition invalid: %v", err)
	}

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon drain: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not drain after stop")
	}
}
