// Command shmapviz renders Figure 5: each thread's shMap sharing
// signature as an ASCII gray-scale row, rows grouped by detected cluster,
// globally shared entries removed. Darker characters mean more sampled
// remote cache accesses on that shMap entry; a vertical dark band shared
// by a group of rows is a thread cluster.
//
// Usage:
//
//	shmapviz                      # all four workloads
//	shmapviz -workload specjbb
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"threadcluster/internal/experiments"
	"threadcluster/internal/stats"
)

func main() {
	var (
		workload = flag.String("workload", "", "restrict to one workload: microbenchmark|volano|specjbb|rubis (default: all)")
		seed     = flag.Int64("seed", 1, "simulation seed")
		pngDir   = flag.String("png", "", "also write shmap-<workload>.png files into this directory")
	)
	flag.Parse()

	opt := experiments.DefaultOptions()
	opt.Seed = *seed
	results, err := experiments.Figure5(context.Background(), opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shmapviz:", err)
		os.Exit(1)
	}
	shown := false
	for _, r := range results {
		if *workload != "" && r.Workload != *workload {
			continue
		}
		fmt.Println(r)
		shown = true
		if *pngDir != "" {
			path := filepath.Join(*pngDir, "shmap-"+r.Workload+".png")
			if err := writePNG(path, r); err != nil {
				fmt.Fprintln(os.Stderr, "shmapviz:", err)
				os.Exit(1)
			}
			fmt.Println("wrote", path)
		}
	}
	if !shown {
		fmt.Fprintf(os.Stderr, "shmapviz: unknown workload %q\n", *workload)
		os.Exit(1)
	}
}

func writePNG(path string, r experiments.Figure5Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return stats.HeatmapPNG(f, r.Rows, r.RowGroups, 3, 6)
}
