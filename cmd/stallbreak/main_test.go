package main

import (
	"testing"

	"threadcluster/internal/sched"
)

func TestParsePolicy(t *testing.T) {
	cases := map[string]sched.Policy{
		"default":        sched.PolicyDefault,
		"round-robin":    sched.PolicyRoundRobin,
		"rr":             sched.PolicyRoundRobin,
		"hand-optimized": sched.PolicyHandOptimized,
		"hand":           sched.PolicyHandOptimized,
		"clustered":      sched.PolicyClustered,
	}
	for in, want := range cases {
		got, err := parsePolicy(in)
		if err != nil || got != want {
			t.Errorf("parsePolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parsePolicy("bogus"); err == nil {
		t.Error("bogus policy should error")
	}
}
