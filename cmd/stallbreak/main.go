// Command stallbreak prints the Figure 3 CPI stall breakdown for one
// workload under a chosen placement policy — the view the paper's
// monitoring phase uses to decide whether cross-chip communication is
// performance-limiting.
//
// Usage:
//
//	stallbreak -workload volano -policy default
//	stallbreak -workload specjbb -policy round-robin -rounds 500
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"threadcluster/internal/experiments"
	"threadcluster/internal/pmu"
	"threadcluster/internal/sched"
	"threadcluster/internal/stats"
)

func parsePolicy(s string) (sched.Policy, error) {
	switch s {
	case "default":
		return sched.PolicyDefault, nil
	case "round-robin", "rr":
		return sched.PolicyRoundRobin, nil
	case "hand-optimized", "hand":
		return sched.PolicyHandOptimized, nil
	case "clustered":
		return sched.PolicyClustered, nil
	}
	return 0, fmt.Errorf("unknown policy %q", s)
}

func main() {
	var (
		workload = flag.String("workload", experiments.Volano, "microbenchmark|volano|specjbb|rubis")
		policy   = flag.String("policy", "default", "default|round-robin|hand-optimized|clustered")
		seed     = flag.Int64("seed", 1, "simulation seed")
		rounds   = flag.Int("rounds", 0, "override measured rounds (0 = default)")
	)
	flag.Parse()

	pol, err := parsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stallbreak:", err)
		os.Exit(1)
	}
	opt := experiments.DefaultOptions()
	opt.Seed = *seed
	if *rounds > 0 {
		opt.MeasureRounds = *rounds
	}
	withEngine := pol == sched.PolicyClustered
	res, _, err := experiments.RunWorkload(context.Background(), *workload, pol, withEngine, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stallbreak:", err)
		os.Exit(1)
	}
	b := res.Breakdown
	t := stats.NewTable(
		fmt.Sprintf("Stall breakdown: %s under %s scheduling (CPI %.3f)", *workload, pol, b.CPI()),
		"Component", "Share of cycles")
	t.AddRow("completion", stats.Pct(stats.Ratio(float64(b.Completion), float64(b.Cycles))))
	for _, ev := range pmu.StallEvents() {
		t.AddRow(ev.String(), stats.Pct(b.Fraction(ev)))
	}
	t.AddRow("remote-total", stats.Pct(b.RemoteFraction()))
	fmt.Println(t)
	fmt.Printf("throughput: %.1f ops per million cycles (%d ops)\n", res.OpsPerMCycle, res.Ops)
	if res.Engine != nil {
		fmt.Printf("engine: %d activations, %d migrations, %d clusters\n",
			res.Engine.Activations, res.Engine.Migrations, res.Engine.Clusters)
	}
}
