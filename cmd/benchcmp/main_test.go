package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
BenchmarkCoherenceBroadcast32Way-16   	 1000000	       700.0 ns/op	       0 B/op
BenchmarkCoherenceDirectory32Way-16   	 2000000	       350.0 ns/op	       0 B/op
PASS
`

const sampleBaseline = `{
  "ns_per_op": {
    "BenchmarkCoherenceBroadcast32Way": 710.0,
    "BenchmarkCoherenceDirectory32Way": 340.0
  },
  "speedups": [
    {"name": "directory-vs-broadcast-32way",
     "slow": "BenchmarkCoherenceBroadcast32Way",
     "fast": "BenchmarkCoherenceDirectory32Way",
     "min_ratio": 1.5, "recorded_ratio": 2.09}
  ]
}`

func writeBaseline(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareOK(t *testing.T) {
	path := writeBaseline(t, sampleBaseline)
	var out, errb bytes.Buffer
	err := run([]string{"-baseline", path}, strings.NewReader(sampleBench), &out, &errb)
	if err != nil {
		t.Fatalf("compare failed: %v\nstderr: %s", err, errb.String())
	}
	if !strings.Contains(out.String(), "2.00x") {
		t.Errorf("output missing computed speedup:\n%s", out.String())
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	slow := strings.Replace(sampleBench, "700.0 ns/op", "2000.0 ns/op", 1)
	path := writeBaseline(t, sampleBaseline)
	var out, errb bytes.Buffer
	if err := run([]string{"-baseline", path}, strings.NewReader(slow), &out, &errb); err == nil {
		t.Fatal("a 2.8x slowdown should fail the comparison")
	}
}

func TestCompareDetectsSpeedupBelowMinimum(t *testing.T) {
	// Directory barely faster than broadcast: ratio 700/650 < 1.5.
	weak := strings.Replace(sampleBench, "350.0 ns/op", "650.0 ns/op", 1)
	path := writeBaseline(t, sampleBaseline)
	var out, errb bytes.Buffer
	err := run([]string{"-baseline", path, "-tolerance", "2.0"}, strings.NewReader(weak), &out, &errb)
	if err == nil {
		t.Fatal("speedup below min_ratio should fail")
	}
	if !strings.Contains(errb.String(), "BELOW") && !strings.Contains(errb.String(), "required") {
		t.Errorf("stderr should name the failed speedup:\n%s", errb.String())
	}
}

func TestUpdateRewritesBaseline(t *testing.T) {
	path := writeBaseline(t, sampleBaseline)
	var out, errb bytes.Buffer
	if err := run([]string{"-baseline", path, "-update"}, strings.NewReader(sampleBench), &out, &errb); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "700") || !strings.Contains(string(raw), `"recorded_ratio": 2`) {
		t.Errorf("updated baseline missing new values:\n%s", raw)
	}
}

func TestParseBenchRejectsEmpty(t *testing.T) {
	if _, err := parseBench(strings.NewReader("no benchmarks here\n")); err == nil {
		t.Error("empty input should error")
	}
}

const gatedBaseline = `{
  "ns_per_op": {
    "BenchmarkCoherenceBroadcast32Way": 710.0,
    "BenchmarkCoherenceDirectory32Way": 340.0
  },
  "speedups": [
    {"name": "parallel-vs-seq",
     "slow": "BenchmarkCoherenceBroadcast32Way",
     "fast": "BenchmarkCoherenceDirectory32Way",
     "min_ratio": 99.0, "recorded_ratio": 2.0, "min_cores": 4}
  ]
}`

func TestMinCoresGatesSpeedup(t *testing.T) {
	path := writeBaseline(t, gatedBaseline)
	// Host below the core floor: the impossible 99x requirement is skipped.
	var out, errb bytes.Buffer
	if err := run([]string{"-baseline", path, "-cores", "2"}, strings.NewReader(sampleBench), &out, &errb); err != nil {
		t.Fatalf("gated speedup should be skipped on a 2-core host: %v\nstderr: %s", err, errb.String())
	}
	if !strings.Contains(out.String(), "skipped") {
		t.Errorf("output should say the gate was skipped:\n%s", out.String())
	}
	// Host at the floor: the requirement applies and fails.
	out.Reset()
	errb.Reset()
	if err := run([]string{"-baseline", path, "-cores", "4"}, strings.NewReader(sampleBench), &out, &errb); err == nil {
		t.Fatal("99x requirement should fail on a 4-core host")
	}
}

const ceilingBaseline = `{
  "ns_per_op": {
    "BenchmarkCoherenceBroadcast32Way": 710.0,
    "BenchmarkCoherenceDirectory32Way": 340.0
  },
  "speedups": [
    {"name": "sublinear-scaling",
     "slow": "BenchmarkCoherenceBroadcast32Way",
     "fast": "BenchmarkCoherenceDirectory32Way",
     "min_ratio": 0, "max_ratio": 8.0, "recorded_ratio": 2.0}
  ]
}`

func TestMaxRatioCeiling(t *testing.T) {
	path := writeBaseline(t, ceilingBaseline)
	// Ratio 700/350 = 2.0 <= 8.0: passes (min_ratio 0 never binds).
	var out, errb bytes.Buffer
	if err := run([]string{"-baseline", path}, strings.NewReader(sampleBench), &out, &errb); err != nil {
		t.Fatalf("ratio under the ceiling should pass: %v\nstderr: %s", err, errb.String())
	}
	if !strings.Contains(out.String(), "<= 8.00x") {
		t.Errorf("output should show the ceiling:\n%s", out.String())
	}
	// Slow side blows up: 7000/350 = 20x > 8x ceiling. Tolerance is widened
	// so the failure is attributable to the ceiling alone.
	blown := strings.Replace(sampleBench, "700.0 ns/op", "7000.0 ns/op", 1)
	out.Reset()
	errb.Reset()
	err := run([]string{"-baseline", path, "-tolerance", "100"}, strings.NewReader(blown), &out, &errb)
	if err == nil {
		t.Fatal("ratio above max_ratio should fail")
	}
	if !strings.Contains(errb.String(), "allowed") {
		t.Errorf("stderr should name the exceeded ceiling:\n%s", errb.String())
	}
}

func TestUpdatePreservesMaxRatio(t *testing.T) {
	path := writeBaseline(t, ceilingBaseline)
	var out, errb bytes.Buffer
	if err := run([]string{"-baseline", path, "-update"}, strings.NewReader(sampleBench), &out, &errb); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"max_ratio": 8`) {
		t.Errorf("update must keep the max_ratio ceiling:\n%s", raw)
	}
}

func TestReportModeNeverFails(t *testing.T) {
	slow := strings.Replace(sampleBench, "700.0 ns/op", "2000.0 ns/op", 1)
	path := writeBaseline(t, sampleBaseline)
	var out, errb bytes.Buffer
	if err := run([]string{"-baseline", path, "-report"}, strings.NewReader(slow), &out, &errb); err != nil {
		t.Fatalf("report mode must not fail: %v", err)
	}
	if !strings.Contains(out.String(), "report mode") {
		t.Errorf("output should note report mode:\n%s", out.String())
	}
}

const sweepBaseline = `{
  "generated_with": "make bench-baseline [host: 64 cores, GOMAXPROCS 64]",
  "ns_per_op": {
    "BenchmarkCoherenceBroadcast32Way": 710.0,
    "BenchmarkCoherenceDirectory32Way": 340.0
  },
  "speedups": [],
  "sweep": {
    "host": {"cores": 1, "gomaxprocs": 1},
    "cells": [{"chips": 2, "cores_per_chip": 1, "intensity": 0.4,
               "seq_ns_per_ref": 500.0, "par_ns_per_ref": 480.0}],
    "knees": []
  }
}`

// TestUpdatePreservesSweepSection pins the passthrough contract with
// `tcsim bench-sweep -record`: benchcmp -update owns generated_with,
// ns_per_op and speedups, and must carry the sweep section through
// untouched.
func TestUpdatePreservesSweepSection(t *testing.T) {
	path := writeBaseline(t, sweepBaseline)
	var out, errb bytes.Buffer
	if err := run([]string{"-baseline", path, "-update"}, strings.NewReader(sampleBench), &out, &errb); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"sweep"`, `"seq_ns_per_ref": 500`, `"chips": 2`} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("update dropped sweep content %q:\n%s", want, raw)
		}
	}
}

// TestUpdateStampsHostFacts pins the generated_with host annotation: each
// -update replaces any previous "[host: ...]" suffix with the measuring
// host's core count and GOMAXPROCS, never stacking copies.
func TestUpdateStampsHostFacts(t *testing.T) {
	path := writeBaseline(t, sweepBaseline)
	var out, errb bytes.Buffer
	if err := run([]string{"-baseline", path, "-update", "-cores", "12"}, strings.NewReader(sampleBench), &out, &errb); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "[host: 12 cores, GOMAXPROCS ") {
		t.Errorf("generated_with missing fresh host facts:\n%s", raw)
	}
	if strings.Contains(string(raw), "[host: 64 cores") {
		t.Errorf("stale host facts must be replaced, not stacked:\n%s", raw)
	}
	if !strings.Contains(string(raw), "make bench-baseline [host:") {
		t.Errorf("the human part of generated_with must survive:\n%s", raw)
	}
}

func TestUpdatePreservesMinCores(t *testing.T) {
	path := writeBaseline(t, gatedBaseline)
	var out, errb bytes.Buffer
	if err := run([]string{"-baseline", path, "-update"}, strings.NewReader(sampleBench), &out, &errb); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"min_cores": 4`) {
		t.Errorf("update must keep the min_cores gate:\n%s", raw)
	}
}
