package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
BenchmarkCoherenceBroadcast32Way-16   	 1000000	       700.0 ns/op	       0 B/op
BenchmarkCoherenceDirectory32Way-16   	 2000000	       350.0 ns/op	       0 B/op
PASS
`

const sampleBaseline = `{
  "ns_per_op": {
    "BenchmarkCoherenceBroadcast32Way": 710.0,
    "BenchmarkCoherenceDirectory32Way": 340.0
  },
  "speedups": [
    {"name": "directory-vs-broadcast-32way",
     "slow": "BenchmarkCoherenceBroadcast32Way",
     "fast": "BenchmarkCoherenceDirectory32Way",
     "min_ratio": 1.5, "recorded_ratio": 2.09}
  ]
}`

func writeBaseline(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareOK(t *testing.T) {
	path := writeBaseline(t, sampleBaseline)
	var out, errb bytes.Buffer
	err := run([]string{"-baseline", path}, strings.NewReader(sampleBench), &out, &errb)
	if err != nil {
		t.Fatalf("compare failed: %v\nstderr: %s", err, errb.String())
	}
	if !strings.Contains(out.String(), "2.00x") {
		t.Errorf("output missing computed speedup:\n%s", out.String())
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	slow := strings.Replace(sampleBench, "700.0 ns/op", "2000.0 ns/op", 1)
	path := writeBaseline(t, sampleBaseline)
	var out, errb bytes.Buffer
	if err := run([]string{"-baseline", path}, strings.NewReader(slow), &out, &errb); err == nil {
		t.Fatal("a 2.8x slowdown should fail the comparison")
	}
}

func TestCompareDetectsSpeedupBelowMinimum(t *testing.T) {
	// Directory barely faster than broadcast: ratio 700/650 < 1.5.
	weak := strings.Replace(sampleBench, "350.0 ns/op", "650.0 ns/op", 1)
	path := writeBaseline(t, sampleBaseline)
	var out, errb bytes.Buffer
	err := run([]string{"-baseline", path, "-tolerance", "2.0"}, strings.NewReader(weak), &out, &errb)
	if err == nil {
		t.Fatal("speedup below min_ratio should fail")
	}
	if !strings.Contains(errb.String(), "BELOW") && !strings.Contains(errb.String(), "required") {
		t.Errorf("stderr should name the failed speedup:\n%s", errb.String())
	}
}

func TestUpdateRewritesBaseline(t *testing.T) {
	path := writeBaseline(t, sampleBaseline)
	var out, errb bytes.Buffer
	if err := run([]string{"-baseline", path, "-update"}, strings.NewReader(sampleBench), &out, &errb); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "700") || !strings.Contains(string(raw), `"recorded_ratio": 2`) {
		t.Errorf("updated baseline missing new values:\n%s", raw)
	}
}

func TestParseBenchRejectsEmpty(t *testing.T) {
	if _, err := parseBench(strings.NewReader("no benchmarks here\n")); err == nil {
		t.Error("empty input should error")
	}
}
