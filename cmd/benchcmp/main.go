// Command benchcmp guards the coherence benchmarks against regression. It
// reads `go test -bench` output on stdin, extracts ns/op per benchmark,
// and compares the run against a committed baseline JSON:
//
//	go test -run '^$' -bench BenchmarkCoherence ./internal/cache | \
//	    go run ./cmd/benchcmp -baseline BENCH_coherence.json
//
// The comparison fails (exit 1) when a benchmark slows down by more than
// -tolerance relative to its baseline ns/op, when a recorded speedup
// pair (e.g. directory vs broadcast on the 32-way machine) drops below its
// required minimum ratio, or when a pair with a max_ratio ceiling exceeds
// it (the scaling guards: a 100x-larger input may cost at most max_ratio
// more per operation). -update rewrites the baseline from the current
// run instead of comparing, preserving each pair's required bounds and
// the "sweep" section `tcsim bench-sweep -record` maintains, and stamps
// the measuring host's core count and GOMAXPROCS into generated_with.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
)

// Baseline is the committed benchmark reference.
type Baseline struct {
	// GeneratedWith documents how to refresh the file.
	GeneratedWith string `json:"generated_with"`
	// NsPerOp maps benchmark name (no -procs suffix) to baseline ns/op.
	NsPerOp map[string]float64 `json:"ns_per_op"`
	// Speedups are required ratios between benchmark pairs.
	Speedups []Speedup `json:"speedups"`
	// Sweep is the saturation-sweep report `tcsim bench-sweep -record`
	// maintains. benchcmp never interprets it; the raw passthrough keeps
	// the section intact across -update rewrites.
	Sweep json.RawMessage `json:"sweep,omitempty"`
}

// Speedup requires benchmark `Fast` to run at least MinRatio times faster
// than benchmark `Slow` — and, when MaxRatio is set, at most MaxRatio
// times faster. A MaxRatio with MinRatio 0 turns the pair into a pure
// ceiling: the scaling guards use it to require that a 100x-larger input
// costs at most MaxRatio times more per operation (sublinear scaling).
type Speedup struct {
	Name          string  `json:"name"`
	Slow          string  `json:"slow"`
	Fast          string  `json:"fast"`
	MinRatio      float64 `json:"min_ratio"`
	MaxRatio      float64 `json:"max_ratio,omitempty"`
	RecordedRatio float64 `json:"recorded_ratio"`
	// MinCores, when non-zero, gates MinRatio enforcement on host
	// parallelism: the ratio is only required when the host has at least
	// this many CPU cores. Pairs whose speedup comes from running on
	// multiple cores (the chip-parallel engine) cannot be expected to hold
	// on a one-core CI runner; below the floor the ratio is reported but
	// not enforced.
	MinCores int `json:"min_cores,omitempty"`
}

// benchLine matches e.g. "BenchmarkFoo-16   1234   56.7 ns/op   0 B/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func parseBench(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchcmp: bad ns/op in %q: %w", sc.Text(), err)
		}
		out[m[1]] = ns
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchcmp: no benchmark lines on stdin")
	}
	return out, sc.Err()
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchcmp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "BENCH_coherence.json", "baseline JSON file")
	tolerance := fs.Float64("tolerance", 0.5, "allowed fractional slowdown vs baseline ns/op (0.5 = 50%)")
	update := fs.Bool("update", false, "rewrite the baseline from this run instead of comparing")
	report := fs.Bool("report", false, "report-only mode: print every comparison but never fail")
	cores := fs.Int("cores", runtime.NumCPU(), "host core count used for min_cores gating (overridable for tests)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	current, err := parseBench(stdin)
	if err != nil {
		return err
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		return fmt.Errorf("benchcmp: read baseline: %w", err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("benchcmp: parse baseline %s: %w", *baselinePath, err)
	}

	if *update {
		base.NsPerOp = current
		base.GeneratedWith = withHostFacts(base.GeneratedWith, *cores, runtime.GOMAXPROCS(0))
		for i := range base.Speedups {
			s := &base.Speedups[i]
			slow, okS := current[s.Slow]
			fast, okF := current[s.Fast]
			if !okS || !okF {
				return fmt.Errorf("benchcmp: speedup %q: run is missing %s or %s", s.Name, s.Slow, s.Fast)
			}
			s.RecordedRatio = round2(slow / fast)
		}
		enc, err := json.MarshalIndent(&base, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*baselinePath, append(enc, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "benchcmp: wrote %s (%d benchmarks)\n", *baselinePath, len(current))
		return nil
	}

	var failures []string
	names := make([]string, 0, len(base.NsPerOp))
	for name := range base.NsPerOp {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := base.NsPerOp[name]
		got, ok := current[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from this run", name))
			continue
		}
		change := (got - want) / want
		status := "ok"
		if change > *tolerance {
			status = "REGRESSED"
			failures = append(failures, fmt.Sprintf("%s: %.1f ns/op vs baseline %.1f (+%.0f%% > %.0f%% tolerance)",
				name, got, want, change*100, *tolerance*100))
		}
		fmt.Fprintf(stdout, "%-40s %10.1f ns/op  baseline %10.1f  %+6.1f%%  %s\n",
			name, got, want, change*100, status)
	}
	for _, s := range base.Speedups {
		slow, okS := current[s.Slow]
		fast, okF := current[s.Fast]
		if !okS || !okF {
			failures = append(failures, fmt.Sprintf("speedup %s: missing %s or %s", s.Name, s.Slow, s.Fast))
			continue
		}
		ratio := slow / fast
		status := "ok"
		switch {
		case s.MinCores > 0 && *cores < s.MinCores:
			status = fmt.Sprintf("skipped (host has %d cores, gate needs >= %d)", *cores, s.MinCores)
		case ratio < s.MinRatio:
			status = "BELOW MINIMUM"
			failures = append(failures, fmt.Sprintf("speedup %s: %.2fx < required %.2fx (baseline recorded %.2fx)",
				s.Name, ratio, s.MinRatio, s.RecordedRatio))
		case s.MaxRatio > 0 && ratio > s.MaxRatio:
			status = "ABOVE MAXIMUM"
			failures = append(failures, fmt.Sprintf("speedup %s: %.2fx > allowed %.2fx (baseline recorded %.2fx)",
				s.Name, ratio, s.MaxRatio, s.RecordedRatio))
		}
		bounds := fmt.Sprintf("required >= %.2fx", s.MinRatio)
		if s.MaxRatio > 0 {
			bounds += fmt.Sprintf(", <= %.2fx", s.MaxRatio)
		}
		fmt.Fprintf(stdout, "speedup %-32s %6.2fx  (%s, baseline %.2fx)  %s\n",
			s.Name, ratio, bounds, s.RecordedRatio, status)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(stderr, "benchcmp:", f)
		}
		if *report {
			fmt.Fprintf(stdout, "benchcmp: report mode, ignoring %d failure(s)\n", len(failures))
			return nil
		}
		return fmt.Errorf("benchcmp: %d failure(s)", len(failures))
	}
	return nil
}

func round2(v float64) float64 { return float64(int(v*100+0.5)) / 100 }

// hostFacts matches the bracketed host annotation withHostFacts appends,
// so repeated -update runs replace it instead of stacking copies.
var hostFacts = regexp.MustCompile(`\s*\[host: \d+ cores?, GOMAXPROCS \d+\]`)

// withHostFacts records where a baseline's numbers were measured: the
// min_cores gates and any cross-host comparison of the committed ns/op
// need the core count and GOMAXPROCS of the measuring machine on file.
func withHostFacts(generatedWith string, cores, procs int) string {
	return fmt.Sprintf("%s [host: %d cores, GOMAXPROCS %d]",
		hostFacts.ReplaceAllString(generatedWith, ""), cores, procs)
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
