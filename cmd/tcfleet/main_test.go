package main

import (
	"bytes"
	"context"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"threadcluster/internal/experiments"
	"threadcluster/internal/server"
)

// startWorker boots a real job server behind httptest and returns its
// base URL — an in-process tcsimd.
func startWorker(t *testing.T) string {
	t.Helper()
	s, err := server.New(server.Options{
		Clock:      server.NewFakeClock(time.Unix(1_700_000_000, 0).UTC()),
		JobWorkers: 2,
	})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	if err := s.Start(context.Background()); err != nil {
		t.Fatalf("server.Start: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return ts.URL
}

// offlineDigest computes the ground-truth digest for the grid flags
// the test passes to tcfleet.
func offlineDigest(t *testing.T, spec server.JobSpec) string {
	t.Helper()
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	grid, err := norm.Grid()
	if err != nil {
		t.Fatalf("Grid: %v", err)
	}
	cells, results, merged, err := experiments.RunGrid(context.Background(), grid, 2)
	if err != nil {
		t.Fatalf("RunGrid: %v", err)
	}
	digest, err := server.Digest(cells, results, merged)
	if err != nil {
		t.Fatalf("Digest: %v", err)
	}
	return digest
}

// TestFleetCLIDigestMatchesOffline drives the whole binary path: two
// in-process workers, grid flags, -digest output equal to the offline
// computation, NDJSON events on disk.
func TestFleetCLIDigestMatchesOffline(t *testing.T) {
	w1, w2 := startWorker(t), startWorker(t)
	eventsPath := filepath.Join(t.TempDir(), "events.ndjson")

	spec := server.JobSpec{
		Workloads:     []string{"microbenchmark", "volano"},
		Policies:      []string{"default", "clustered"},
		Topos:         []string{"open720"},
		Seed:          23,
		WarmRounds:    2,
		EngineRounds:  6,
		MeasureRounds: 4,
	}
	want := offlineDigest(t, spec)

	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-workers", w1 + "," + w2,
		"-workloads", "microbenchmark,volano",
		"-policies", "default,clustered",
		"-topos", "open720",
		"-seed", "23", "-warm", "2", "-engine", "6", "-measure", "4",
		"-poll", "2ms",
		"-events", eventsPath,
		"-digest",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("tcfleet run: %v\nstderr: %s", err, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != want {
		t.Fatalf("tcfleet digest %q, want %q", got, want)
	}
	events, err := os.ReadFile(eventsPath)
	if err != nil {
		t.Fatalf("reading events: %v", err)
	}
	for _, typ := range []string{`"shard_leased"`, `"shard_done"`, `"done"`} {
		if !bytes.Contains(events, []byte(typ)) {
			t.Errorf("event stream missing %s:\n%s", typ, events)
		}
	}
}

// TestFleetCLISpecFilePayload: -spec file input, full payload output,
// byte-identical across two invocations (one worker, then two).
func TestFleetCLISpecFilePayload(t *testing.T) {
	w1 := startWorker(t)
	specPath := filepath.Join(t.TempDir(), "spec.json")
	specJSON := `{
  "workloads": ["microbenchmark"],
  "policies": ["default", "clustered"],
  "topos": ["open720"],
  "seed": 9,
  "warm_rounds": 2,
  "engine_rounds": 6,
  "measure_rounds": 4
}`
	if err := os.WriteFile(specPath, []byte(specJSON), 0o666); err != nil {
		t.Fatal(err)
	}

	runOnce := func(workers string) string {
		var stdout bytes.Buffer
		err := run([]string{
			"-workers", workers, "-spec", specPath, "-poll", "2ms",
		}, &stdout, io.Discard)
		if err != nil {
			t.Fatalf("tcfleet run: %v", err)
		}
		return stdout.String()
	}
	one := runOnce(w1)
	two := runOnce(w1 + "," + startWorker(t))
	if one != two {
		t.Fatalf("payload differs between 1-worker and 2-worker fleets")
	}
	if !strings.Contains(one, `"digest": "sha256:`) {
		t.Fatalf("payload has no digest:\n%s", one)
	}
}
