// Command tcfleet coordinates one sweep grid across a fleet of tcsimd
// workers and prints the merged canonical result payload — byte-
// identical to an offline `tcsim sweep` (and to a single tcsimd run)
// of the same spec, for any fleet size, worker failure pattern or
// coordinator crash/resume.
//
// Usage:
//
//	tcfleet -workers http://127.0.0.1:8321
//	tcfleet -workers http://h1:8321,http://h2:8321,http://h3:8321 \
//	        -workloads volano -policies default,clustered -digest
//	tcfleet -workers ... -spool /var/lib/tcfleet -id nightly-7 \
//	        -events events.ndjson -metrics metrics.prom
//
// The grid's cells are hashed onto a fixed virtual-shard ring (a
// property of the job, not the fleet) and dispatched as shard-scoped
// jobs carrying full-grid cell indices, so every cell keeps the seed
// the whole grid derives. Failed shards retry with deterministic
// backoff, dead workers' leases expire back into the pool, idle
// workers steal duplicates of stragglers, and with -spool a killed
// coordinator resumes from its checkpoint to the uninterrupted digest.
// See DESIGN.md §11.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"threadcluster/internal/client"
	"threadcluster/internal/errs"
	"threadcluster/internal/experiments"
	"threadcluster/internal/fleet"
	"threadcluster/internal/server"
)

// systemClock feeds real wall time to the coordinator; cmd/ is the
// wallclock allowlist boundary, so the time.Now calls live here, not
// in internal/fleet (DESIGN.md §6).
type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tcfleet:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tcfleet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workersFlag = fs.String("workers", "http://127.0.0.1:8321",
			"comma-separated tcsimd base URLs; worker names are w0, w1, ... in flag order")
		specFile      = fs.String("spec", "", "JSON JobSpec file to run (overrides the grid flags; '-' = stdin)")
		id            = fs.String("id", "", "job ID (empty = deterministic spec-derived ID, so reruns resume their own checkpoint)")
		workloadsFlag = fs.String("workloads", "microbenchmark,volano,specjbb,rubis", "comma-separated workloads")
		policiesFlag  = fs.String("policies", "default,clustered",
			"comma-separated policies: default|round-robin|hand-optimized|clustered")
		toposFlag = fs.String("topos", experiments.TopoOpenPower720,
			"comma-separated topologies: open720|power5-32")
		seed          = fs.Int64("seed", 1, "base seed; per-config seeds derive from it deterministically")
		warm          = fs.Int("warm", 0, "override warm-up rounds (0 = default)")
		engineRounds  = fs.Int("engine", 0, "override engine rounds (0 = default)")
		measure       = fs.Int("measure", 0, "override measured rounds (0 = default)")
		coherence     = fs.String("coherence", "", "cache-coherence implementation: directory|broadcast (empty = worker default)")
		simengine     = fs.String("simengine", "", "execution engine: seq|parallel (empty = worker default)")
		taskWorkers   = fs.Int("task-workers", 0, "per-shard sweep pool size on each worker (0 = worker default)")
		virtualShards = fs.Int("virtual-shards", 0, "virtual-shard ring size (0 = default 64)")
		maxAttempts   = fs.Int("max-attempts", 0, "failed attempts per shard before the job fails (0 = default 4)")
		workerSlots   = fs.Int("worker-slots", 0, "concurrent shards per worker (0 = default 1)")
		lease         = fs.Duration("lease", 0, "shard lease before re-pooling (0 = default 2m)")
		stealAfter    = fs.Duration("steal-after", 0, "runtime before an idle worker may duplicate a shard (0 = default 30s)")
		poll          = fs.Duration("poll", 0, "orchestrator idle tick (0 = default 200ms)")
		retries       = fs.Int("retries", 5, "per-submit 429 retries on each worker (0 = fail fast)")
		spoolDir      = fs.String("spool", "", "directory for the job's resume checkpoint (empty = no crash resume)")
		eventsFile    = fs.String("events", "", "write the NDJSON event stream here ('-' = stderr, empty = off)")
		metricsFile   = fs.String("metrics", "", "write the final fleet metrics exposition here ('-' = stderr, empty = off)")
		digest        = fs.Bool("digest", false, "print only the result digest instead of the payload")
		timeout       = fs.Duration("timeout", 0, "give up after this duration (0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	spec, err := loadSpec(*specFile, func() server.JobSpec {
		return server.JobSpec{
			Workloads:     experiments.SplitList(*workloadsFlag),
			Policies:      experiments.SplitList(*policiesFlag),
			Topos:         experiments.SplitList(*toposFlag),
			Seed:          *seed,
			WarmRounds:    *warm,
			EngineRounds:  *engineRounds,
			MeasureRounds: *measure,
			Coherence:     *coherence,
			Engine:        *simengine,
			Workers:       *taskWorkers,
		}
	})
	if err != nil {
		return err
	}
	if *id != "" {
		spec.ID = *id
	}

	urls := experiments.SplitList(*workersFlag)
	if len(urls) == 0 {
		return fmt.Errorf("tcfleet: %w: -workers lists no worker URLs", errs.ErrBadConfig)
	}
	workers := make([]fleet.Worker, 0, len(urls))
	for i, u := range urls {
		backoff := client.Backoff{Retries: *retries, Seed: spec.Seed + int64(i)}
		workers = append(workers, fleet.NewHTTPWorker(fmt.Sprintf("w%d", i), u, nil, backoff))
	}

	var eventsOut io.Writer
	switch *eventsFile {
	case "":
	case "-":
		eventsOut = stderr
	default:
		f, err := os.Create(*eventsFile)
		if err != nil {
			return fmt.Errorf("tcfleet: creating events file: %w", err)
		}
		defer f.Close()
		eventsOut = f
	}

	coord, err := fleet.New(workers, fleet.Options{
		Clock:         systemClock{},
		VirtualShards: *virtualShards,
		MaxAttempts:   *maxAttempts,
		WorkerSlots:   *workerSlots,
		Lease:         *lease,
		StealAfter:    *stealAfter,
		Poll:          *poll,
		SpoolDir:      *spoolDir,
		Events:        eventsOut,
	})
	if err != nil {
		return err
	}

	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()
	if *timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, *timeout)
		defer tcancel()
	}

	payload, data, runErr := coord.Run(ctx, spec)
	for _, w := range coord.Warnings() {
		fmt.Fprintf(stderr, "tcfleet: warning: %v\n", w)
	}
	if *metricsFile != "" {
		if err := writeMetrics(coord, *metricsFile, stderr); err != nil {
			fmt.Fprintf(stderr, "tcfleet: warning: %v\n", err)
		}
	}
	if runErr != nil {
		return runErr
	}

	if *digest {
		fmt.Fprintln(stdout, payload.Digest)
		return nil
	}
	_, err = stdout.Write(data)
	return err
}

// loadSpec reads a spec file ('-' = stdin) or falls back to the grid
// flags.
func loadSpec(path string, fromFlags func() server.JobSpec) (server.JobSpec, error) {
	if path == "" {
		return fromFlags(), nil
	}
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return server.JobSpec{}, fmt.Errorf("tcfleet: reading spec: %w", err)
	}
	var spec server.JobSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return server.JobSpec{}, fmt.Errorf("tcfleet: parsing spec: %w", err)
	}
	return spec, nil
}

// writeMetrics dumps the coordinator's Prometheus exposition.
func writeMetrics(coord *fleet.Coordinator, path string, stderr io.Writer) error {
	var w io.Writer = stderr
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("creating metrics file: %w", err)
		}
		defer f.Close()
		w = f
	}
	return coord.Registry().WritePrometheus(w)
}
