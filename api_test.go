package threadcluster_test

import (
	"context"
	"fmt"
	"testing"

	"threadcluster"
)

// Example is the library quickstart: scatter a sharing workload, attach
// the engine, and watch the clusters form.
func Example() {
	mcfg := threadcluster.DefaultMachineConfig()
	mcfg.Policy = threadcluster.PolicyRoundRobin // worst-case scatter
	mcfg.QuantumCycles = 20_000
	machine, err := threadcluster.NewMachine(mcfg)
	if err != nil {
		panic(err)
	}

	arena := threadcluster.NewArena()
	spec, err := threadcluster.NewSyntheticWorkload(arena, threadcluster.DefaultSyntheticConfig())
	if err != nil {
		panic(err)
	}
	if err := spec.Install(machine); err != nil {
		panic(err)
	}

	ecfg := threadcluster.DefaultEngineConfig()
	ecfg.MonitorWindow = 200_000 // scaled to simulation time
	ecfg.ActivationFraction = 0.05
	ecfg.TargetSamples = 30_000
	ecfg.SamplingInterval = 5
	engine, err := threadcluster.NewEngine(machine, ecfg)
	if err != nil {
		panic(err)
	}
	if err := engine.Install(); err != nil {
		panic(err)
	}

	machine.RunRoundsCtx(context.Background(), 3000)
	big := 0
	for _, c := range engine.Clusters() {
		if c.Size() >= 4 {
			big++
		}
	}
	fmt.Printf("detected %d scoreboard clusters\n", big)
	// Output: detected 4 scoreboard clusters
}

func TestPublicAPIEndToEnd(t *testing.T) {
	machine, err := threadcluster.NewMachine(threadcluster.DefaultMachineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if machine.Topology() != threadcluster.OpenPower720() {
		t.Error("default machine should be the OpenPower 720")
	}
	arena := threadcluster.NewArena()
	spec, err := threadcluster.NewVolanoWorkload(arena, threadcluster.DefaultVolanoConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := threadcluster.NewTraceRecorder(100)
	for _, th := range spec.Threads {
		rec.Wrap(th)
	}
	if err := spec.Install(machine); err != nil {
		t.Fatal(err)
	}
	machine.RunRoundsCtx(context.Background(), 10)
	if machine.TotalOps() == 0 {
		t.Error("workload made no progress through the public API")
	}
	if rec.Captured() == 0 {
		t.Error("trace recorder captured nothing")
	}
	if threadcluster.LineSize != 128 {
		t.Error("public line size should be 128 bytes")
	}
	if lat := threadcluster.DefaultLatencies(); lat.RemoteL2 < 120 {
		t.Error("public latencies should carry the Figure 1 cliff")
	}
}
