package threadcluster_test

import (
	"context"
	"fmt"
	"testing"

	"threadcluster"
)

// Example is the library quickstart: scatter a sharing workload, attach
// the engine, and watch the clusters form.
func Example() {
	mcfg := threadcluster.DefaultMachineConfig()
	mcfg.Policy = threadcluster.PolicyRoundRobin // worst-case scatter
	mcfg.QuantumCycles = 20_000
	machine, err := threadcluster.NewMachine(mcfg)
	if err != nil {
		panic(err)
	}

	arena := threadcluster.NewArena()
	spec, err := threadcluster.NewSyntheticWorkload(arena, threadcluster.DefaultSyntheticConfig())
	if err != nil {
		panic(err)
	}
	if err := spec.Install(machine); err != nil {
		panic(err)
	}

	ecfg := threadcluster.DefaultEngineConfig()
	ecfg.MonitorWindow = 200_000 // scaled to simulation time
	ecfg.ActivationFraction = 0.05
	ecfg.TargetSamples = 30_000
	ecfg.SamplingInterval = 5
	engine, err := threadcluster.NewEngine(machine, ecfg)
	if err != nil {
		panic(err)
	}
	if err := engine.Install(); err != nil {
		panic(err)
	}

	machine.RunRoundsCtx(context.Background(), 3000)
	big := 0
	for _, c := range engine.Clusters() {
		if c.Size() >= 4 {
			big++
		}
	}
	fmt.Printf("detected %d scoreboard clusters\n", big)
	// Output: detected 4 scoreboard clusters
}

// TestPublicSnapshotRoundTrip is the doc-comment session run for real:
// build → run → snapshot → restore → resume must be indistinguishable
// from an uninterrupted run, through the public API only.
func TestPublicSnapshotRoundTrip(t *testing.T) {
	ctx := context.Background()
	mcfg := threadcluster.DefaultMachineConfig()
	mcfg.Policy = threadcluster.PolicyClustered
	mcfg.QuantumCycles = 20_000
	install := func(m *threadcluster.Machine) error {
		arena := threadcluster.NewArena()
		spec, err := threadcluster.NewSyntheticWorkload(arena, threadcluster.DefaultSyntheticConfig())
		if err != nil {
			return err
		}
		if err := spec.Install(m); err != nil {
			return err
		}
		ecfg := threadcluster.DefaultEngineConfig()
		ecfg.MonitorWindow = 200_000
		ecfg.ActivationFraction = 0.05
		ecfg.TargetSamples = 30_000
		ecfg.SamplingInterval = 5
		engine, err := threadcluster.NewEngine(m, ecfg)
		if err != nil {
			return err
		}
		return engine.Install()
	}
	build := func() *threadcluster.Machine {
		m, err := threadcluster.NewMachine(mcfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := install(m); err != nil {
			t.Fatal(err)
		}
		return m
	}

	ref := build()
	if err := ref.RunRoundsCtx(ctx, 400); err != nil {
		t.Fatal(err)
	}
	refSnap, err := ref.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}

	half := build()
	if err := half.RunRoundsCtx(ctx, 200); err != nil {
		t.Fatal(err)
	}
	snap, err := half.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := threadcluster.DecodeSnapshot(snap.Encode())
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := threadcluster.RestoreMachine(mcfg, decoded, install)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.RunRoundsCtx(ctx, 200); err != nil {
		t.Fatal(err)
	}
	got, err := resumed.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest() != refSnap.Digest() {
		t.Fatal("resumed run is not byte-identical to the uninterrupted run")
	}
}

func TestPublicAPIEndToEnd(t *testing.T) {
	machine, err := threadcluster.NewMachine(threadcluster.DefaultMachineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if machine.Topology() != threadcluster.OpenPower720() {
		t.Error("default machine should be the OpenPower 720")
	}
	arena := threadcluster.NewArena()
	spec, err := threadcluster.NewVolanoWorkload(arena, threadcluster.DefaultVolanoConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := threadcluster.NewTraceRecorder(100)
	for _, th := range spec.Threads {
		rec.Wrap(th)
	}
	if err := spec.Install(machine); err != nil {
		t.Fatal(err)
	}
	machine.RunRoundsCtx(context.Background(), 10)
	if machine.TotalOps() == 0 {
		t.Error("workload made no progress through the public API")
	}
	if rec.Captured() == 0 {
		t.Error("trace recorder captured nothing")
	}
	if threadcluster.LineSize != 128 {
		t.Error("public line size should be 128 bytes")
	}
	if lat := threadcluster.DefaultLatencies(); lat.RemoteL2 < 120 {
		t.Error("public latencies should carry the Figure 1 cliff")
	}
}
