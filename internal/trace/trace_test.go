package trace

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"threadcluster/internal/memory"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
	"threadcluster/internal/workloads"
)

func randomTrace(rng *rand.Rand, nThreads, nRefs int) *Trace {
	t := &Trace{}
	for i := 0; i < nThreads; i++ {
		th := ThreadTrace{ID: sched.ThreadID(i * 3), Partition: i % 4}
		for j := 0; j < nRefs; j++ {
			th.Refs = append(th.Refs, sim.MemRef{
				Addr:        memory.Addr(rng.Uint64() >> 8),
				Write:       rng.Intn(2) == 0,
				Insts:       uint64(rng.Intn(100)),
				BranchStall: uint64(rng.Intn(8)),
				OtherStall:  uint64(rng.Intn(8)),
				Ops:         uint64(rng.Intn(3)),
			})
		}
		t.Threads = append(t.Threads, th)
	}
	return t
}

func tracesEqual(a, b *Trace) bool {
	if len(a.Threads) != len(b.Threads) {
		return false
	}
	for i := range a.Threads {
		ta, tb := a.Threads[i], b.Threads[i]
		if ta.ID != tb.ID || ta.Partition != tb.Partition || len(ta.Refs) != len(tb.Refs) {
			return false
		}
		for j := range ta.Refs {
			if ta.Refs[j] != tb.Refs[j] {
				return false
			}
		}
	}
	return true
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	orig := randomTrace(rng, 4, 200)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !tracesEqual(orig, loaded) {
		t.Fatal("round trip mangled the trace")
	}
}

// Property: arbitrary traces survive serialization bit-exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, threadsRaw, refsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		orig := randomTrace(rng, int(threadsRaw%5)+1, int(refsRaw%50)+1)
		var buf bytes.Buffer
		if err := orig.Save(&buf); err != nil {
			return false
		}
		loaded, err := Load(&buf)
		if err != nil {
			return false
		}
		return tracesEqual(orig, loaded)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressedRoundTrip(t *testing.T) {
	orig := randomTrace(rand.New(rand.NewSource(5)), 3, 500)
	var plain, compressed bytes.Buffer
	if err := orig.Save(&plain); err != nil {
		t.Fatal(err)
	}
	if err := orig.SaveCompressed(&compressed); err != nil {
		t.Fatal(err)
	}
	if compressed.Len() >= plain.Len() {
		t.Errorf("compressed %d bytes >= plain %d bytes", compressed.Len(), plain.Len())
	}
	loaded, err := Load(&compressed)
	if err != nil {
		t.Fatal(err)
	}
	if !tracesEqual(orig, loaded) {
		t.Fatal("compressed round trip mangled the trace")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := Load(bytes.NewReader([]byte("NOPE00000000"))); err == nil {
		t.Error("bad magic should fail")
	}
	// Right magic, wrong version.
	var buf bytes.Buffer
	buf.WriteString("TCTR")
	buf.Write([]byte{99, 0, 0, 0, 1, 0, 0, 0})
	if _, err := Load(&buf); err == nil {
		t.Error("bad version should fail")
	}
	// Truncated body.
	buf.Reset()
	orig := randomTrace(rand.New(rand.NewSource(2)), 2, 10)
	_ = orig.Save(&buf)
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Load(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated trace should fail")
	}
}

func TestReplayLoops(t *testing.T) {
	tr := &Trace{Threads: []ThreadTrace{{
		ID: 5, Partition: 1,
		Refs: []sim.MemRef{{Addr: 1, Insts: 1}, {Addr: 2, Insts: 2}},
	}}}
	threads, err := tr.ThreadsForReplay()
	if err != nil {
		t.Fatal(err)
	}
	g := threads[0].Gen
	seq := []memory.Addr{g.Next().Addr, g.Next().Addr, g.Next().Addr, g.Next().Addr}
	want := []memory.Addr{1, 2, 1, 2}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("replay sequence %v, want %v", seq, want)
		}
	}
	if threads[0].ID != 5 || threads[0].Partition != 1 {
		t.Error("replay thread metadata lost")
	}
}

func TestReplayRejectsEmptyThread(t *testing.T) {
	tr := &Trace{Threads: []ThreadTrace{{ID: 1}}}
	if _, err := tr.ThreadsForReplay(); err == nil {
		t.Error("empty thread stream should fail")
	}
}

func TestRecorderCapturesAndCaps(t *testing.T) {
	arena := memory.NewDefaultArena()
	cfg := workloads.DefaultSyntheticConfig()
	spec, err := workloads.NewSynthetic(arena, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(50)
	for _, th := range spec.Threads {
		rec.Wrap(th)
	}
	mcfg := sim.DefaultConfig()
	mcfg.QuantumCycles = 10_000
	m, _ := sim.NewMachine(mcfg)
	if err := spec.Install(m); err != nil {
		t.Fatal(err)
	}
	m.RunRoundsCtx(context.Background(), 20)
	if rec.Captured() == 0 {
		t.Fatal("nothing captured")
	}
	snap := rec.Snapshot()
	for _, th := range snap.Threads {
		if len(th.Refs) > 50 {
			t.Errorf("thread %d captured %d refs, cap is 50", th.ID, len(th.Refs))
		}
	}
	if snap.Footprint() == 0 {
		t.Error("trace should touch lines")
	}
	if snap.SharedLines() == 0 {
		t.Error("scoreboard workload should have shared lines")
	}
}

func TestRecordedTraceReplaysFaithfully(t *testing.T) {
	// Record a run, replay it, and check the replay produces the same
	// sharing behaviour (remote fraction in the same ballpark under the
	// same scatter placement).
	build := func() *sim.Machine {
		mcfg := sim.DefaultConfig()
		mcfg.Policy = sched.PolicyRoundRobin
		mcfg.QuantumCycles = 20_000
		m, _ := sim.NewMachine(mcfg)
		return m
	}
	arena := memory.NewDefaultArena()
	spec, _ := workloads.NewSynthetic(arena, workloads.DefaultSyntheticConfig())
	rec := NewRecorder(0)
	for _, th := range spec.Threads {
		rec.Wrap(th)
	}
	m1 := build()
	if err := spec.Install(m1); err != nil {
		t.Fatal(err)
	}
	m1.RunRoundsCtx(context.Background(), 100)
	f1 := m1.Breakdown().RemoteFraction()

	var buf bytes.Buffer
	if err := rec.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	threads, err := loaded.ThreadsForReplay()
	if err != nil {
		t.Fatal(err)
	}
	m2 := build()
	for _, th := range threads {
		if err := m2.AddThread(th); err != nil {
			t.Fatal(err)
		}
	}
	m2.RunRoundsCtx(context.Background(), 100)
	f2 := m2.Breakdown().RemoteFraction()
	if f1 <= 0 {
		t.Fatal("capture run produced no sharing")
	}
	if f2 < f1*0.5 || f2 > f1*1.5 {
		t.Errorf("replay remote fraction %.4f far from capture %.4f", f2, f1)
	}
}
