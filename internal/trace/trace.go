// Package trace records and replays memory-reference streams. A Recorder
// wraps the generators of live threads and captures every MemRef they
// produce; the capture serializes to a compact binary format and loads
// back as replayable generators. This turns any workload run into a
// portable, deterministic artifact: the same trace can be replayed under
// every placement policy, shared between machines, or produced by an
// external tool and fed to the simulator.
package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"

	"threadcluster/internal/memory"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
)

// magic identifies the trace file format; version gates decoding.
const (
	magic   = "TCTR"
	version = 1
)

// ThreadTrace is one thread's captured reference stream.
type ThreadTrace struct {
	// ID is the thread id at capture time.
	ID sched.ThreadID
	// Partition is the thread's ground-truth partition at capture time.
	Partition int
	// Refs is the captured stream, in order.
	Refs []sim.MemRef
}

// Trace is a whole captured workload.
type Trace struct {
	Threads []ThreadTrace
}

// Recorder captures reference streams from live generators.
type Recorder struct {
	threads []*recordingGen
	// MaxRefsPerThread bounds capture (0 = unlimited). Recording stops
	// silently at the cap; replay loops, so bounded captures stay useful.
	MaxRefsPerThread int
}

// NewRecorder returns a recorder with the given per-thread cap.
func NewRecorder(maxRefsPerThread int) *Recorder {
	return &Recorder{MaxRefsPerThread: maxRefsPerThread}
}

type recordingGen struct {
	inner     sim.Generator
	id        sched.ThreadID
	partition int
	refs      []sim.MemRef
	cap       int
}

func (g *recordingGen) Next() sim.MemRef {
	ref := g.inner.Next()
	if g.cap == 0 || len(g.refs) < g.cap {
		g.refs = append(g.refs, ref)
	}
	return ref
}

// Wrap replaces the thread's generator with a recording wrapper. Call it
// before installing the thread on a machine.
func (r *Recorder) Wrap(t *sim.Thread) {
	g := &recordingGen{inner: t.Gen, id: t.ID, partition: t.Partition, cap: r.MaxRefsPerThread}
	t.Gen = g
	r.threads = append(r.threads, g)
}

// Captured returns how many references have been captured in total.
func (r *Recorder) Captured() int {
	n := 0
	for _, g := range r.threads {
		n += len(g.refs)
	}
	return n
}

// Snapshot assembles the capture into a Trace.
func (r *Recorder) Snapshot() *Trace {
	t := &Trace{}
	for _, g := range r.threads {
		refs := make([]sim.MemRef, len(g.refs))
		copy(refs, g.refs)
		t.Threads = append(t.Threads, ThreadTrace{ID: g.id, Partition: g.partition, Refs: refs})
	}
	return t
}

// Save writes the capture in the binary trace format.
func (r *Recorder) Save(w io.Writer) error { return r.Snapshot().Save(w) }

// Save serializes the trace. Layout (all little-endian):
//
//	magic[4] version:u32 threads:u32
//	per thread: id:i64 partition:i64 refs:u64
//	            per ref: addr:u64 insts:u32 flagsOps:u32
//	                     branch:u32 other:u32
//
// where flagsOps packs the write bit (bit 31) and the ops count.
func (t *Trace) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	hdr := []uint32{version, uint32(len(t.Threads))}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return err
	}
	for _, th := range t.Threads {
		meta := []int64{int64(th.ID), int64(th.Partition)}
		if err := binary.Write(bw, binary.LittleEndian, meta); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint64(len(th.Refs))); err != nil {
			return err
		}
		for _, ref := range th.Refs {
			flagsOps := uint32(ref.Ops)
			if ref.Ops > 1<<30 {
				return fmt.Errorf("trace: ops count %d unencodable", ref.Ops)
			}
			if ref.Write {
				flagsOps |= 1 << 31
			}
			rec := []uint32{uint32(ref.Insts), flagsOps, uint32(ref.BranchStall), uint32(ref.OtherStall)}
			if err := binary.Write(bw, binary.LittleEndian, uint64(ref.Addr)); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, rec); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// SaveCompressed writes the trace gzip-compressed. Load transparently
// detects and decompresses such files.
func (t *Trace) SaveCompressed(w io.Writer) error {
	zw := gzip.NewWriter(w)
	if err := t.Save(zw); err != nil {
		return err
	}
	return zw.Close()
}

// Load parses a trace file, transparently handling gzip compression.
func Load(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	// Sniff for the gzip magic (0x1f 0x8b).
	if head, err := br.Peek(2); err == nil && head[0] == 0x1f && head[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("trace: opening gzip stream: %w", err)
		}
		defer zr.Close()
		br = bufio.NewReader(zr)
	}
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(m[:]) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", m)
	}
	var hdr [2]uint32
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if hdr[0] != version {
		return nil, fmt.Errorf("trace: unsupported version %d", hdr[0])
	}
	nThreads := int(hdr[1])
	if nThreads < 0 || nThreads > 1<<20 {
		return nil, fmt.Errorf("trace: implausible thread count %d", nThreads)
	}
	t := &Trace{}
	for i := 0; i < nThreads; i++ {
		var meta [2]int64
		if err := binary.Read(br, binary.LittleEndian, &meta); err != nil {
			return nil, fmt.Errorf("trace: thread %d metadata: %w", i, err)
		}
		var nRefs uint64
		if err := binary.Read(br, binary.LittleEndian, &nRefs); err != nil {
			return nil, fmt.Errorf("trace: thread %d ref count: %w", i, err)
		}
		if nRefs > 1<<32 {
			return nil, fmt.Errorf("trace: implausible ref count %d", nRefs)
		}
		th := ThreadTrace{ID: sched.ThreadID(meta[0]), Partition: int(meta[1])}
		th.Refs = make([]sim.MemRef, nRefs)
		for j := range th.Refs {
			var addr uint64
			var rec [4]uint32
			if err := binary.Read(br, binary.LittleEndian, &addr); err != nil {
				return nil, fmt.Errorf("trace: thread %d ref %d: %w", i, j, err)
			}
			if err := binary.Read(br, binary.LittleEndian, &rec); err != nil {
				return nil, fmt.Errorf("trace: thread %d ref %d: %w", i, j, err)
			}
			th.Refs[j] = sim.MemRef{
				Addr:        memory.Addr(addr),
				Insts:       uint64(rec[0]),
				Write:       rec[1]&(1<<31) != 0,
				Ops:         uint64(rec[1] &^ (1 << 31)),
				BranchStall: uint64(rec[2]),
				OtherStall:  uint64(rec[3]),
			}
		}
		t.Threads = append(t.Threads, th)
	}
	return t, nil
}

// replayGen replays one thread's stream, looping at the end.
type replayGen struct {
	refs []sim.MemRef
	pos  int
}

func (g *replayGen) Next() sim.MemRef {
	ref := g.refs[g.pos]
	g.pos++
	if g.pos == len(g.refs) {
		g.pos = 0
	}
	return ref
}

// Threads materializes replay threads for a machine. The streams loop
// endlessly, so the replay can run longer than the capture.
func (t *Trace) ThreadsForReplay() ([]*sim.Thread, error) {
	var out []*sim.Thread
	for _, th := range t.Threads {
		if len(th.Refs) == 0 {
			return nil, fmt.Errorf("trace: thread %d has no references", th.ID)
		}
		refs := make([]sim.MemRef, len(th.Refs))
		copy(refs, th.Refs)
		out = append(out, &sim.Thread{
			ID:        th.ID,
			Gen:       &replayGen{refs: refs},
			Partition: th.Partition,
		})
	}
	return out, nil
}

// Refs returns the total reference count.
func (t *Trace) Refs() int {
	n := 0
	for _, th := range t.Threads {
		n += len(th.Refs)
	}
	return n
}

// Footprint returns the number of distinct cache lines the trace touches.
func (t *Trace) Footprint() int {
	lines := make(map[memory.Addr]struct{})
	for _, th := range t.Threads {
		for _, ref := range th.Refs {
			lines[memory.LineOf(ref.Addr)] = struct{}{}
		}
	}
	return len(lines)
}

// SharedLines returns how many distinct lines are touched by more than
// one thread — a quick sharing census of a trace.
func (t *Trace) SharedLines() int {
	owner := make(map[memory.Addr]sched.ThreadID)
	shared := make(map[memory.Addr]struct{})
	for _, th := range t.Threads {
		for _, ref := range th.Refs {
			line := memory.LineOf(ref.Addr)
			if prev, ok := owner[line]; ok {
				if prev != th.ID {
					shared[line] = struct{}{}
				}
				continue
			}
			owner[line] = th.ID
		}
	}
	return len(shared)
}
