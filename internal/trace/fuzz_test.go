package trace

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzLoad feeds arbitrary bytes to the trace parser: it must reject them
// with an error or parse them, but never panic or over-allocate.
func FuzzLoad(f *testing.F) {
	// Seed corpus: a valid trace, plus truncations and corruptions of it.
	valid := func() []byte {
		var buf bytes.Buffer
		_ = randomTrace(rand.New(rand.NewSource(1)), 2, 8).Save(&buf)
		return buf.Bytes()
	}()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("TCTR"))
	f.Add([]byte{})
	corrupted := append([]byte{}, valid...)
	for i := 8; i < len(corrupted); i += 7 {
		corrupted[i] ^= 0xFF
	}
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Load(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine
		}
		// Anything accepted must round-trip.
		var buf bytes.Buffer
		if err := tr.Save(&buf); err != nil {
			t.Fatalf("accepted trace failed to save: %v", err)
		}
		tr2, err := Load(&buf)
		if err != nil {
			t.Fatalf("re-load of saved trace failed: %v", err)
		}
		if !tracesEqual(tr, tr2) {
			t.Fatal("accepted trace did not round-trip")
		}
	})
}
