package sim

import (
	"context"
	"math/rand"
	"testing"

	"threadcluster/internal/memory"
	"threadcluster/internal/pmu"
	"threadcluster/internal/sched"
	"threadcluster/internal/topology"
)

// Conservation laws: everything the machine charges must be accounted for
// exactly once — per-thread totals, per-CPU PMU totals and the CPI stack
// must all agree.
func TestCycleConservation(t *testing.T) {
	cfg := testConfig(sched.PolicyDefault)
	cfg.SMTContentionPct = 25 // exercise the SMT path too
	m, _ := NewMachine(cfg)
	arena := memory.NewDefaultArena()
	shared := arena.MustAlloc(4096, 0)
	for i := 0; i < 12; i++ {
		g := &sharer{
			rng:     rand.New(rand.NewSource(int64(i))),
			private: arena.MustAlloc(32<<10, 0),
			shared:  shared,
			ratio:   0.3,
		}
		_ = m.AddThread(&Thread{ID: sched.ThreadID(i), Gen: g})
	}
	m.RunRoundsCtx(context.Background(), 50)

	b := m.Breakdown()
	// 1. Per-thread cycles sum to the machine-wide cycle count.
	var threadCycles, threadInsts uint64
	for _, th := range m.Threads() {
		threadCycles += th.Cycles
		threadInsts += th.Insts
	}
	if threadCycles != b.Cycles {
		t.Errorf("thread cycles %d != PMU cycles %d", threadCycles, b.Cycles)
	}
	if threadInsts != b.Insts {
		t.Errorf("thread insts %d != PMU insts %d", threadInsts, b.Insts)
	}
	// 2. The CPI stack is complete: completion + all stalls == cycles.
	if got := b.Completion + b.StallTotal(); got != b.Cycles {
		t.Errorf("CPI stack covers %d of %d cycles", got, b.Cycles)
	}
	// 3. Per-source miss counts: every L1 miss has exactly one source.
	var missSum uint64
	for _, ev := range []pmu.Event{
		pmu.EvMissL2, pmu.EvMissL3, pmu.EvMissRemoteL2,
		pmu.EvMissRemoteL3, pmu.EvMissMemory, pmu.EvMissRemoteMemory,
	} {
		for c := 0; c < m.Topology().NumCPUs(); c++ {
			missSum += m.PMU(topology.CPUID(c)).Count(ev)
		}
	}
	var l1Misses uint64
	for c := 0; c < m.Topology().NumCPUs(); c++ {
		l1Misses += m.PMU(topology.CPUID(c)).Count(pmu.EvL1DMiss)
	}
	if missSum != l1Misses {
		t.Errorf("per-source misses %d != L1 misses %d", missSum, l1Misses)
	}
	// 4. Remote-access event equals the two remote miss sources.
	var remote, rl2, rl3 uint64
	for c := 0; c < m.Topology().NumCPUs(); c++ {
		p := m.PMU(topology.CPUID(c))
		remote += p.Count(pmu.EvRemoteAccess)
		rl2 += p.Count(pmu.EvMissRemoteL2)
		rl3 += p.Count(pmu.EvMissRemoteL3)
	}
	if remote != rl2+rl3 {
		t.Errorf("remote-access count %d != remote L2+L3 misses %d", remote, rl2+rl3)
	}
}
