package sim

import (
	"fmt"

	"threadcluster/internal/cache"
	"threadcluster/internal/metrics"
	"threadcluster/internal/pmu"
	"threadcluster/internal/topology"
)

// Metric names exported by a Machine's registry. One snapshot of the
// registry answers "what did this run do" across every layer — caches,
// scheduler, PMUs and the execution engine — without parsing report
// strings.
const (
	// MetricRounds counts completed scheduling rounds.
	MetricRounds = "sim_rounds_total"
	// MetricClock is machine time in cycles.
	MetricClock = "sim_clock_cycles"
	// MetricUtilization is the dispatched fraction of CPU-quanta.
	MetricUtilization = "sim_utilization"
	// MetricThreads is the number of installed threads.
	MetricThreads = "sim_threads"
	// MetricOps counts application-level operations completed.
	MetricOps = "sim_ops_total"
	// MetricOverhead counts cycles burned in PMU overflow handlers and
	// access observers (the engine's runtime overhead).
	MetricOverhead = "sim_overhead_cycles_total"
	// MetricRunqueueDepth is a histogram of the machine-wide runqueue
	// depth observed at every round boundary.
	MetricRunqueueDepth = "sim_runqueue_depth"

	// MetricCacheAccesses counts accesses per satisfying source
	// (label "source": L1, L2, L3, remote-L2, remote-L3, memory,
	// remote-memory) — the per-source miss attribution.
	MetricCacheAccesses = "cache_accesses_total"
	// MetricCacheAccessCycles is the latency charged per source.
	MetricCacheAccessCycles = "cache_access_cycles_total"
	// MetricCacheInvalidations counts coherence invalidations sent.
	MetricCacheInvalidations = "cache_invalidations_total"
	// MetricCacheUpgrades counts Shared->Modified write upgrades.
	MetricCacheUpgrades = "cache_upgrades_total"
	// MetricCacheWritebacks counts dirty last-level evictions.
	MetricCacheWritebacks = "cache_writebacks_total"
	// MetricCacheDirectoryLines is the coherence directory's occupancy:
	// how many cache lines it currently tracks (0 in broadcast mode).
	MetricCacheDirectoryLines = "cache_directory_lines"
	// MetricCacheDirectoryPeak is the directory's peak occupancy.
	MetricCacheDirectoryPeak = "cache_directory_peak_lines"
	// MetricCacheSnoopProbesAvoided counts cache probes the directory
	// answered from presence bits instead of broadcast scanning — the
	// snoop-savings counter.
	MetricCacheSnoopProbesAvoided = "cache_snoop_probes_avoided_total"

	// MetricSchedMigrations counts thread migrations.
	MetricSchedMigrations = "sched_migrations_total"
	// MetricSchedSteals counts reactive-balance steals.
	MetricSchedSteals = "sched_steals_total"
	// MetricSchedQueued is the current machine-wide runqueue depth.
	MetricSchedQueued = "sched_runqueue_depth"

	// MetricPMUCycles / MetricPMUInsts / MetricPMUStalls expose the
	// machine-wide CPI stack (label "event" on the stall series).
	MetricPMUCycles = "pmu_cycles_total"
	MetricPMUInsts  = "pmu_insts_total"
	MetricPMUStalls = "pmu_stall_cycles_total"

	// MetricMuxRotations counts PMU-multiplexer group rotations per CPU
	// (label "cpu"), registered when a multiplexer is attached.
	MetricMuxRotations = "pmu_mux_rotations_total"
)

// Metrics returns the machine's metrics registry. Components attached to
// the machine (the clustering engine, experiment harnesses) register
// their own series here so one snapshot covers the whole system.
func (m *Machine) Metrics() *metrics.Registry { return m.metrics }

// SnapshotMetrics captures every registered series. Collector functions
// are evaluated against the machine's current state; call it only
// between rounds (like any other machine inspection).
func (m *Machine) SnapshotMetrics() metrics.Snapshot { return m.metrics.Snapshot() }

// Rounds returns how many scheduling rounds have completed.
func (m *Machine) Rounds() uint64 { return m.rounds }

// registerMetrics wires the machine's components into its registry.
// Everything is a collector function over state the simulator already
// maintains, so the single-goroutine hot path stays untouched; the only
// direct instrument is the per-round runqueue-depth histogram.
func (m *Machine) registerMetrics() {
	r := metrics.NewRegistry()
	m.metrics = r

	r.RegisterCounterFunc(MetricRounds, nil, func() uint64 { return m.rounds })
	r.RegisterGaugeFunc(MetricClock, nil, func() float64 { return float64(m.clock) })
	r.RegisterGaugeFunc(MetricUtilization, nil, m.Utilization)
	r.RegisterGaugeFunc(MetricThreads, nil, func() float64 { return float64(len(m.threads)) })
	r.RegisterCounterFunc(MetricOps, nil, m.TotalOps)
	r.RegisterCounterFunc(MetricOverhead, nil, func() uint64 { return m.overhead })
	m.depthHist = r.Histogram(MetricRunqueueDepth, nil,
		[]uint64{0, 1, 2, 4, 8, 16, 32, 64, 128})

	// Per-source cache attribution.
	for s := 0; s < cache.NumSources; s++ {
		src := cache.Source(s)
		labels := metrics.Labels{"source": src.String()}
		r.RegisterCounterFunc(MetricCacheAccesses, labels, func() uint64 {
			return m.hier.SourceCounts()[src]
		})
		r.RegisterCounterFunc(MetricCacheAccessCycles, labels, func() uint64 {
			return m.hier.SourceCycles()[src]
		})
	}
	r.RegisterCounterFunc(MetricCacheInvalidations, nil, m.hier.InvalidationsSent)
	r.RegisterCounterFunc(MetricCacheUpgrades, nil, m.hier.Upgrades)
	r.RegisterCounterFunc(MetricCacheWritebacks, nil, m.hier.Writebacks)
	mode := metrics.Labels{"mode": m.hier.Coherence().String()}
	r.RegisterGaugeFunc(MetricCacheDirectoryLines, mode, func() float64 {
		return float64(m.hier.DirectoryLines())
	})
	r.RegisterGaugeFunc(MetricCacheDirectoryPeak, mode, func() float64 {
		return float64(m.hier.DirectoryPeakLines())
	})
	r.RegisterCounterFunc(MetricCacheSnoopProbesAvoided, mode, m.hier.SnoopProbesAvoided)

	// Scheduler.
	r.RegisterCounterFunc(MetricSchedMigrations, nil, m.sch.Migrations)
	r.RegisterCounterFunc(MetricSchedSteals, nil, m.sch.Steals)
	r.RegisterGaugeFunc(MetricSchedQueued, nil, func() float64 { return float64(m.sch.TotalQueued()) })

	// Machine-wide CPI stack from the exact PMU counts.
	sumCounts := func(ev pmu.Event) uint64 {
		var t uint64
		for _, p := range m.pmus {
			t += p.Count(ev)
		}
		return t
	}
	r.RegisterCounterFunc(MetricPMUCycles, nil, func() uint64 { return sumCounts(pmu.EvCycles) })
	r.RegisterCounterFunc(MetricPMUInsts, nil, func() uint64 { return sumCounts(pmu.EvInstCompleted) })
	for _, ev := range pmu.StallEvents() {
		ev := ev
		r.RegisterCounterFunc(MetricPMUStalls, metrics.Labels{"event": ev.String()},
			func() uint64 { return sumCounts(ev) })
	}
}

// registerMuxMetrics exposes a CPU's multiplexer rotation count; called
// by AttachMux.
func (m *Machine) registerMuxMetrics(cpu topology.CPUID, mux *pmu.Multiplexer) {
	m.metrics.RegisterCounterFunc(MetricMuxRotations,
		metrics.Labels{"cpu": fmt.Sprintf("%d", int(cpu))}, mux.Rotations)
}
