package sim

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"threadcluster/internal/cache"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite the testdata golden snapshots and trajectory digests from the current implementation")

// goldenScenario pins one machine composition whose snapshot bytes are
// committed under testdata/. The golden is captured after warm rounds;
// the digest file additionally pins the snapshot digest after extra more
// rounds, so a restore must not only decode the old bytes but continue
// the simulation on the exact same trajectory.
type goldenScenario struct {
	name   string
	sc     diffTopo
	caches cache.HierarchyConfig
	seed   int64
	warm   int
	extra  int
}

func goldenScenarios() []goldenScenario {
	small := cache.SmallConfig()
	small.Coherence = cache.CoherenceDirectory
	power5 := cache.Power5Config() // non-power-of-two L2 sets: pins the modulo set mapping
	power5.Coherence = cache.CoherenceDirectory
	return []goldenScenario{
		{name: "small-32way", sc: diffTopo{name: "power5-32way", topo: diffTopologies()[1].topo},
			caches: small, seed: 42, warm: 24, extra: 16},
		{name: "power5-720", sc: diffTopo{name: "open720", topo: diffTopologies()[0].topo},
			caches: power5, seed: 7, warm: 16, extra: 12},
	}
}

func buildGoldenMachine(t testing.TB, g goldenScenario) *Machine {
	t.Helper()
	cfg := diffConfig(g.sc, EngineSeq, g.seed)
	cfg.Caches = g.caches
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := diffInstall(g.sc, g.seed)(m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestGoldenSnapshotCompat restores the committed pre-rewrite golden
// snapshots and requires (a) the live machine to accept them, (b) an
// immediate re-snapshot to reproduce the committed bytes exactly — the
// encoder must emit the historical canonical form from whatever internal
// layout it now uses — and (c) the simulation to continue from the
// restore onto the committed trajectory digest. Regenerate with
// `go test ./internal/sim -run TestGoldenSnapshotCompat -update-golden`
// only when an intentional SnapshotVersion bump invalidates the format.
func TestGoldenSnapshotCompat(t *testing.T) {
	for _, g := range goldenScenarios() {
		g := g
		t.Run(g.name, func(t *testing.T) {
			snapPath := filepath.Join("testdata", "golden_"+g.name+".snap")
			digPath := filepath.Join("testdata", "golden_"+g.name+".digest")
			ctx := context.Background()

			if *updateGolden {
				m := buildGoldenMachine(t, g)
				if err := m.RunRoundsCtx(ctx, g.warm); err != nil {
					t.Fatal(err)
				}
				snap, err := m.Snapshot(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(snapPath, snap.Encode(), 0o644); err != nil {
					t.Fatal(err)
				}
				if err := m.RunRoundsCtx(ctx, g.extra); err != nil {
					t.Fatal(err)
				}
				after, err := m.Snapshot(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(digPath, []byte(after.Digest()+"\n"), 0o644); err != nil {
					t.Fatal(err)
				}
			}

			raw, err := os.ReadFile(snapPath)
			if err != nil {
				t.Fatalf("missing golden (regenerate with -update-golden): %v", err)
			}
			wantDig, err := os.ReadFile(digPath)
			if err != nil {
				t.Fatalf("missing golden digest (regenerate with -update-golden): %v", err)
			}
			snap, err := DecodeSnapshot(raw)
			if err != nil {
				t.Fatalf("decode golden: %v", err)
			}
			cfg := diffConfig(g.sc, EngineSeq, g.seed)
			cfg.Caches = g.caches
			m, err := RestoreMachine(cfg, snap, diffInstall(g.sc, g.seed))
			if err != nil {
				t.Fatalf("restore golden: %v", err)
			}
			resnap, err := m.Snapshot(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(resnap.Encode(), raw) {
				t.Fatalf("re-snapshot after restore is not byte-identical to the committed golden (%d vs %d bytes); the encoder no longer emits the canonical pre-rewrite form", len(resnap.Encode()), len(raw))
			}
			if err := m.RunRoundsCtx(ctx, g.extra); err != nil {
				t.Fatal(err)
			}
			after, err := m.Snapshot(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := after.Digest(), strings.TrimSpace(string(wantDig)); got != want {
				t.Fatalf("trajectory diverged after restoring the golden: digest %s, want %s", got, want)
			}
		})
	}
}
