package sim

import (
	"fmt"
	"sync"

	"threadcluster/internal/cache"
	"threadcluster/internal/topology"
)

// Engine selects how the machine drives the hardware contexts through a
// round's interleave slices.
//
// Both engines execute the *same* simulation semantics, so they produce
// byte-identical results; the knob only chooses the driver. When a round
// is eligible for deferred coherence (multi-chip directory machine, no
// access observer, no armed PMU overflow handler, every running thread's
// generator confined — see deferredRound), each chip's CPUs run their
// slice against chip-local cache state through a cache.Lane, and
// cross-chip coherence drains at a deterministic slice barrier in
// canonical chip order. EngineParallel runs those chip slices on worker
// goroutines; EngineSeq runs them one chip at a time on the calling
// goroutine. Ineligible rounds fall back to the serial
// immediate-coherence loop under either engine.
type Engine int

const (
	// EngineParallel (the default) runs eligible rounds chip-parallel,
	// one worker goroutine per chip per slice. Results are reproducible
	// byte-for-byte for any GOMAXPROCS and identical to EngineSeq.
	EngineParallel Engine = iota
	// EngineSeq drives every round from the calling goroutine. Useful for
	// debugging, profiling a single-threaded view, and as the reference
	// half of the engine differential tests.
	EngineSeq
)

func (e Engine) String() string {
	switch e {
	case EngineParallel:
		return "parallel"
	case EngineSeq:
		return "seq"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// ParseEngine maps a CLI/config string to an engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "parallel":
		return EngineParallel, nil
	case "seq":
		return EngineSeq, nil
	}
	return 0, fmt.Errorf("sim: unknown engine %q (want seq or parallel)", s)
}

// ConfinedGenerator marks a Generator whose Next method touches only
// state owned by its own thread (its own RNG, immutable shared regions).
// Generators that mutate shared structures at generation time — e.g. the
// SPECjbb/RUBiS workloads, whose transactions insert into a B-tree shared
// by the warehouse's threads — must not be marked: running them from
// concurrent chip workers would race. Rounds with any unconfined running
// generator fall back to the serial immediate-coherence loop, which is
// also what keeps their results identical to previous releases.
type ConfinedGenerator interface {
	Generator
	// Confined is a marker; implementations do nothing.
	Confined()
	// SnapshotState returns the generator's cursor — everything its Next
	// stream depends on beyond construction-time configuration (RNG
	// position, reference counts, phase switches) — as an opaque blob the
	// same implementation's RestoreState accepts. Machine snapshots embed
	// these blobs; a machine with any non-confined generator cannot be
	// snapshotted.
	SnapshotState() []byte
	// RestoreState overwrites the generator's cursor with a state
	// returned by SnapshotState on an identically constructed generator.
	RestoreState(state []byte) error
}

// deferredRound reports whether the upcoming round can run under the
// deferred slice-barrier coherence model. Every input is simulation
// state, so the answer — and therefore the simulated result — never
// depends on the host (GOMAXPROCS, core count, scheduling).
//
//   - Multi-chip directory mode: broadcast coherence must probe other
//     chips' caches synchronously and cannot defer; a single chip has no
//     cross-chip traffic worth deferring.
//   - No access observer: observers are arbitrary user callbacks invoked
//     per reference and may touch shared state.
//   - No armed PMU overflow handler on a dispatched CPU: handlers can
//     reprogram counters and inspect machine state mid-slice, which
//     requires the serial immediate view. (Parked handlers with a zero
//     threshold cannot fire and don't disqualify.)
//   - Every running thread's generator is a ConfinedGenerator.
func (m *Machine) deferredRound() bool {
	if m.topo.Chips <= 1 || m.observer != nil || m.hier.Coherence() != cache.CoherenceDirectory {
		return false
	}
	for c, id := range m.running {
		if id < 0 {
			continue
		}
		if !m.byID[id].confined || m.pmus[c].HasArmedHandler() {
			return false
		}
	}
	return true
}

// runSlicesDeferred is the sequential driver of the deferred model: each
// slice visits the chips in canonical order on the calling goroutine,
// then drains the coherence mailboxes.
func (m *Machine) runSlicesDeferred(sliceBudget uint64) {
	for s := 0; s < m.cfg.InterleaveSlices; s++ {
		for chip := 0; chip < m.topo.Chips; chip++ {
			m.runChipSlice(chip, sliceBudget)
		}
		m.hier.SliceBarrier()
	}
}

// runSlicesParallel is the chip-parallel driver: every slice runs all
// chips concurrently, one goroutine per chip, with the slice barrier
// applied serially once they all finish. A chip's worker touches only
// chip-local state (its cores' threads, generators and PMUs, plus the
// chip's cache.Lane), so workers never contend; determinism follows from
// the lanes' frozen-snapshot reads plus the canonical barrier order (see
// DESIGN.md §7). Goroutines are spawned per slice rather than kept in a
// pool: a Machine has no Close hook, and sweeps build thousands of
// machines — parked pools would pile up, while a goroutine spawn is
// trivial next to a slice's work.
func (m *Machine) runSlicesParallel(sliceBudget uint64) {
	m.parallelRounds++
	var wg sync.WaitGroup
	for s := 0; s < m.cfg.InterleaveSlices; s++ {
		wg.Add(m.topo.Chips)
		for chip := 0; chip < m.topo.Chips; chip++ {
			go m.runChipSliceWG(&wg, chip, sliceBudget)
		}
		wg.Wait()
		m.hier.SliceBarrier()
	}
}

// runChipSliceWG adapts runChipSlice for the worker pool without
// allocating a closure per spawn.
func (m *Machine) runChipSliceWG(wg *sync.WaitGroup, chip int, sliceBudget uint64) {
	defer wg.Done()
	m.runChipSlice(chip, sliceBudget)
}

// runChipSlice runs one slice for every dispatched CPU of one chip, in
// CPU-id order, through the chip's lane. CPU ids are chip-major, so this
// is exactly the serial loop's visit order restricted to the chip.
func (m *Machine) runChipSlice(chip int, sliceBudget uint64) {
	lane := m.hier.Lane(chip)
	perChip := m.topo.CoresPerChip * m.topo.ContextsPerCore
	for c := chip * perChip; c < (chip+1)*perChip; c++ {
		if m.running[c] < 0 {
			continue
		}
		cpu := topology.CPUID(c)
		m.runSlice(cpu, m.byID[m.running[c]], sliceBudget, m.smtBusy(cpu), lane)
	}
}
