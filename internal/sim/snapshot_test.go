package sim

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"

	"threadcluster/internal/clustering"
	"threadcluster/internal/errs"
	"threadcluster/internal/snapbin"
)

// TestSnapshotDifferential is the snapshot pin: running N+M rounds in
// one piece must be byte-identical to running N rounds, snapshotting,
// encoding, decoding, restoring into a freshly built machine and running
// M more — access streams, PMU counters, coherence counters, per-thread
// accounting and metrics snapshots all included — on every topology,
// both engines, and GOMAXPROCS 1/2/NumCPU. The snapshot digest must also
// be identical across engines and GOMAXPROCS: the encoding is canonical.
func TestSnapshotDifferential(t *testing.T) {
	const seed = 99
	const preRounds, postRounds = 24, 16
	ctx := context.Background()
	for _, sc := range diffTopologies() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			digests := make(map[string]string)
			for _, engine := range []Engine{EngineSeq, EngineParallel} {
				engine := engine
				t.Run(engine.String(), func(t *testing.T) {
					for _, procs := range gomaxprocsLevels() {
						procs := procs
						t.Run(fmt.Sprintf("gomaxprocs=%d", procs), func(t *testing.T) {
							old := runtime.GOMAXPROCS(procs)
							defer runtime.GOMAXPROCS(old)

							ref := buildDiffMachine(t, sc, engine, seed)
							enableCapture(ref)
							if err := ref.RunRoundsCtx(ctx, preRounds+postRounds); err != nil {
								t.Fatal(err)
							}
							want := captureState(t, ref)

							split := buildDiffMachine(t, sc, engine, seed)
							enableCapture(split)
							if err := split.RunRoundsCtx(ctx, preRounds); err != nil {
								t.Fatal(err)
							}
							snap, err := split.Snapshot(ctx)
							if err != nil {
								t.Fatal(err)
							}
							enc := snap.Encode()
							key := fmt.Sprintf("%s/gomaxprocs=%d", engine, procs)
							digests[key] = snap.Digest()

							decoded, err := DecodeSnapshot(enc)
							if err != nil {
								t.Fatal(err)
							}
							restored, err := RestoreMachine(diffConfig(sc, engine, seed), decoded, diffInstall(sc, seed))
							if err != nil {
								t.Fatal(err)
							}
							// The restored machine must re-snapshot to the
							// exact bytes it was restored from.
							resnap, err := restored.Snapshot(ctx)
							if err != nil {
								t.Fatal(err)
							}
							if !bytes.Equal(resnap.Encode(), enc) {
								t.Fatal("snapshot of the restored machine diverges from the snapshot it was restored from")
							}
							enableCapture(restored)
							if err := restored.RunRoundsCtx(ctx, postRounds); err != nil {
								t.Fatal(err)
							}
							got := captureState(t, restored)
							// The pre-snapshot and post-restore access
							// streams concatenate into the uninterrupted run.
							for c := range got.capture {
								got.capture[c] = append(split.capture[c], got.capture[c]...)
							}
							diffStates(t, want, got)
						})
					}
				})
			}
			first := ""
			for key, dig := range digests {
				if first == "" {
					first = dig
				}
				if dig != first {
					t.Fatalf("snapshot digest differs at %s: %s vs %s (encoding is not canonical)", key, dig, first)
				}
			}
		})
	}
}

// sketchDriverVector builds the deterministic shMap the sketch-provider
// driver feeds for thread key at event number n: a banded pattern (four
// key groups, sixteen entries each) whose counts vary with n.
func sketchDriverVector(key clustering.ThreadKey, n uint64) *clustering.ShMap {
	sm := clustering.NewShMap(64)
	base := (int(key) % 4) * 16
	for i := 0; i < 12; i++ {
		reps := 1 + int((n+uint64(i))%3)
		for r := 0; r < reps; r++ {
			sm.Increment(base + i)
		}
	}
	return sm
}

// sketchProviderInstall is diffInstall plus a sketch-mode incremental
// clusterer registered as an extra state provider and a per-tick churn
// driver. The driver derives every event purely from the clusterer's own
// event counter, so after a restore the continuation is a pure function
// of snapshotted state — no driver-private bookkeeping to lose.
func sketchProviderInstall(sc diffTopo, seed int64) func(*Machine) error {
	base := diffInstall(sc, seed)
	return func(m *Machine) error {
		if err := base(m); err != nil {
			return err
		}
		cfg := clustering.DefaultEngineConfig()
		cfg.Mode = clustering.ModeSketch
		eng, err := clustering.NewEngine(cfg)
		if err != nil {
			return err
		}
		if err := m.RegisterStateProvider("test.sketch", StateProvider{
			Save:    func(enc *snapbin.Enc) error { eng.SaveState(enc); return nil },
			Restore: eng.RestoreState,
		}); err != nil {
			return err
		}
		m.OnTick(func(*Machine) {
			n := eng.Events()
			key := clustering.ThreadKey(n % 48)
			var err error
			switch {
			case n%7 == 3 && eng.Has(key):
				err = eng.ApplyChurn(clustering.ChurnEvent{Departed: []clustering.ThreadKey{key}})
			case eng.Has(key):
				err = eng.ApplyMigration(key, sketchDriverVector(key, n))
			default:
				err = eng.ApplyChurn(clustering.ChurnEvent{
					Arrived: map[clustering.ThreadKey]*clustering.ShMap{key: sketchDriverVector(key, n)},
				})
			}
			if err != nil {
				panic(fmt.Sprintf("sketch driver event %d: %v", n, err))
			}
		})
		return nil
	}
}

// TestSnapshotDifferentialSketchProvider extends the snapshot pin to the
// clustering engine's sketch state: a machine carrying a sketch-mode
// incremental clusterer (fed churn by a deterministic per-tick driver)
// must survive snapshot/restore byte-exactly, and the restored run must
// end in the same digest as the uninterrupted one.
func TestSnapshotDifferentialSketchProvider(t *testing.T) {
	const seed = 77
	const preRounds, postRounds = 24, 16
	ctx := context.Background()
	sc := diffTopologies()[0]
	for _, engine := range []Engine{EngineSeq, EngineParallel} {
		engine := engine
		t.Run(engine.String(), func(t *testing.T) {
			build := func() *Machine {
				m, err := NewMachine(diffConfig(sc, engine, seed))
				if err != nil {
					t.Fatal(err)
				}
				if err := sketchProviderInstall(sc, seed)(m); err != nil {
					t.Fatal(err)
				}
				return m
			}

			ref := build()
			if err := ref.RunRoundsCtx(ctx, preRounds+postRounds); err != nil {
				t.Fatal(err)
			}
			refSnap, err := ref.Snapshot(ctx)
			if err != nil {
				t.Fatal(err)
			}

			split := build()
			if err := split.RunRoundsCtx(ctx, preRounds); err != nil {
				t.Fatal(err)
			}
			snap, err := split.Snapshot(ctx)
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, name := range snap.Sections() {
				if name == "test.sketch" {
					found = true
				}
			}
			if !found {
				t.Fatalf("snapshot sections %v lack the sketch provider", snap.Sections())
			}
			decoded, err := DecodeSnapshot(snap.Encode())
			if err != nil {
				t.Fatal(err)
			}
			restored, err := RestoreMachine(diffConfig(sc, engine, seed), decoded, sketchProviderInstall(sc, seed))
			if err != nil {
				t.Fatal(err)
			}
			resnap, err := restored.Snapshot(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(resnap.Encode(), snap.Encode()) {
				t.Fatal("snapshot of the restored machine diverges from the snapshot it was restored from")
			}
			if err := restored.RunRoundsCtx(ctx, postRounds); err != nil {
				t.Fatal(err)
			}
			gotSnap, err := restored.Snapshot(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := gotSnap.Digest(), refSnap.Digest(); got != want {
				t.Fatalf("restored run diverges from uninterrupted run:\nrestored:      %s\nuninterrupted: %s", got, want)
			}
		})
	}
}

// TestSnapshotErrors pins the refusal paths: snapshotting a machine with
// an unconfined generator, restoring onto a machine missing a thread,
// and decoding damaged bytes.
func TestSnapshotErrors(t *testing.T) {
	ctx := context.Background()
	sc := diffTopo{name: "open720", topo: diffTopologies()[0].topo}

	t.Run("unconfined generator", func(t *testing.T) {
		m := buildDiffMachine(t, sc, EngineSeq, 5)
		th := m.Threads()[0]
		id, gen := th.ID, th.Gen
		if err := m.RemoveThread(id); err != nil {
			t.Fatal(err)
		}
		if err := m.AddThread(&Thread{ID: id, Gen: unconfined{gen}}); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Snapshot(ctx); !errors.Is(err, errs.ErrBadConfig) {
			t.Fatalf("snapshot with unconfined generator: %v, want ErrBadConfig", err)
		}
	})

	t.Run("thread set mismatch", func(t *testing.T) {
		m := buildDiffMachine(t, sc, EngineSeq, 5)
		snap, err := m.Snapshot(ctx)
		if err != nil {
			t.Fatal(err)
		}
		other := buildDiffMachine(t, sc, EngineSeq, 5)
		if err := other.RemoveThread(other.Threads()[0].ID); err != nil {
			t.Fatal(err)
		}
		if err := other.RestoreSnapshot(snap); !errors.Is(err, errs.ErrBadConfig) {
			t.Fatalf("restore with missing thread: %v, want ErrBadConfig", err)
		}
	})

	t.Run("damaged bytes", func(t *testing.T) {
		m := buildDiffMachine(t, sc, EngineSeq, 5)
		snap, err := m.Snapshot(ctx)
		if err != nil {
			t.Fatal(err)
		}
		enc := snap.Encode()
		if _, err := DecodeSnapshot(enc[:len(enc)/2]); !errors.Is(err, snapbin.ErrCorrupt) {
			t.Fatalf("truncated snapshot: %v, want ErrCorrupt", err)
		}
		flipped := append([]byte(nil), enc...)
		flipped[len(flipped)/3] ^= 0x40
		if _, err := DecodeSnapshot(flipped); !errors.Is(err, snapbin.ErrCorrupt) {
			t.Fatalf("bit-flipped snapshot: %v, want ErrCorrupt", err)
		}
		if _, err := DecodeSnapshot(nil); !errors.Is(err, snapbin.ErrCorrupt) {
			t.Fatalf("empty snapshot: %v, want ErrCorrupt", err)
		}
	})

	t.Run("mid-quantum refusal", func(t *testing.T) {
		m := buildDiffMachine(t, sc, EngineSeq, 5)
		m.running[0] = m.Threads()[0].ID
		if _, err := m.Snapshot(ctx); !errors.Is(err, errs.ErrThreadRunning) {
			t.Fatalf("mid-quantum snapshot: %v, want ErrThreadRunning", err)
		}
		m.running[0] = -1
	})

	t.Run("provider name rules", func(t *testing.T) {
		m := buildDiffMachine(t, sc, EngineSeq, 5)
		p := StateProvider{
			Save:    func(*snapbin.Enc) error { return nil },
			Restore: func(*snapbin.Dec) error { return nil },
		}
		if err := m.RegisterStateProvider("cache", p); !errors.Is(err, errs.ErrBadConfig) {
			t.Fatalf("reserved name: %v, want ErrBadConfig", err)
		}
		if err := m.RegisterStateProvider("x", p); err != nil {
			t.Fatal(err)
		}
		if err := m.RegisterStateProvider("x", p); !errors.Is(err, errs.ErrAlreadyInstalled) {
			t.Fatalf("duplicate name: %v, want ErrAlreadyInstalled", err)
		}
	})
}

// FuzzSnapshotDecode pins two properties of the decoder: arbitrary bytes
// never panic it, and any input it accepts re-encodes to the exact bytes
// it was decoded from.
func FuzzSnapshotDecode(f *testing.F) {
	sc := diffTopologies()[0]
	m, err := NewMachine(diffConfig(sc, EngineSeq, 17))
	if err != nil {
		f.Fatal(err)
	}
	if err := diffInstall(sc, 17)(m); err != nil {
		f.Fatal(err)
	}
	if err := m.RunRoundsCtx(context.Background(), 4); err != nil {
		f.Fatal(err)
	}
	snap, err := m.Snapshot(context.Background())
	if err != nil {
		f.Fatal(err)
	}
	valid := snap.Encode()
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		if !bytes.Equal(got.Encode(), data) {
			t.Fatalf("accepted snapshot does not re-encode to its input (%d bytes)", len(data))
		}
	})
}
