package sim

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"threadcluster/internal/cache"
	"threadcluster/internal/memory"
	"threadcluster/internal/pmu"
	"threadcluster/internal/rng"
	"threadcluster/internal/sched"
	"threadcluster/internal/snapbin"
	"threadcluster/internal/topology"
)

// diffGen is the differential harness's randomized workload: a mix of
// private churn, group-shared read/write traffic and occasional global
// touches, all driven by a per-thread RNG. It is confined (own RNG, own
// counters, immutable Region descriptors), so machines running it are
// eligible for the deferred chip-parallel engine.
type diffGen struct {
	rng     *rng.Rand
	private memory.Region
	shared  memory.Region
	global  memory.Region
	step    int
}

// Confined marks the generator parallel-safe for the engine differential.
func (g *diffGen) Confined() {}

// SnapshotState returns the generator's cursor (RNG position and step).
func (g *diffGen) SnapshotState() []byte {
	e := &snapbin.Enc{}
	st := g.rng.State()
	e.I64(st.Seed)
	e.U64(st.Draws)
	e.I64(int64(g.step))
	return e.Bytes()
}

// RestoreState overwrites the generator's cursor.
func (g *diffGen) RestoreState(state []byte) error {
	d := snapbin.NewDec(state)
	seed := d.I64()
	draws := d.U64()
	step := d.I64()
	if err := d.Close(); err != nil {
		return err
	}
	g.rng.Restore(rng.State{Seed: seed, Draws: draws})
	g.step = int(step)
	return nil
}

func (g *diffGen) Next() MemRef {
	g.step++
	ref := MemRef{Insts: 10}
	switch {
	case g.step%5 == 0: // group-shared line, half writes
		ref.Addr = lineIn(g.rng.Rand, g.shared)
		ref.Write = g.rng.Intn(2) == 0
		ref.Ops = 1
	case g.step%17 == 0: // global state, occasional update
		ref.Addr = lineIn(g.rng.Rand, g.global)
		ref.Write = g.rng.Intn(8) == 0
	default: // private working set
		ref.Addr = lineIn(g.rng.Rand, g.private)
		ref.Write = g.rng.Intn(3) == 0
		ref.BranchStall = uint64(g.rng.Intn(3))
		ref.OtherStall = uint64(g.rng.Intn(5))
	}
	return ref
}

func lineIn(rng *rand.Rand, r memory.Region) memory.Addr {
	off := uint64(rng.Intn(int(r.Size/memory.LineSize))) * memory.LineSize
	return r.At(off)
}

// diffTopo describes one differential scenario.
type diffTopo struct {
	name string
	topo topology.Topology
	numa bool
}

func diffTopologies() []diffTopo {
	return []diffTopo{
		{name: "open720", topo: topology.OpenPower720()},
		{name: "power5-32way", topo: topology.Power5_32Way()},
		{name: "open720-numa", topo: topology.OpenPower720(), numa: true},
	}
}

// diffConfig is the differential scenario's machine configuration.
func diffConfig(sc diffTopo, engine Engine, seed int64) Config {
	cfg := DefaultConfig()
	cfg.Topo = sc.topo
	cfg.Engine = engine
	cfg.Seed = seed
	// SmallConfig keeps working sets colliding (evictions, L3 traffic)
	// without gigantic regions, and its set counts are powers of two.
	cfg.Caches = cache.SmallConfig()
	cfg.Caches.Coherence = cache.CoherenceDirectory
	if sc.numa {
		cfg.Lat = topology.NUMALatencies()
	}
	return cfg
}

// diffInstall builds the scenario's randomized workload onto a fresh
// machine, deterministically from seed. Thread count oversubscribes the
// machine 2:1 so scheduling stays busy, and sharing groups span chips so
// cross-chip coherence traffic actually flows. Splitting the installer
// from the config is what lets the snapshot tests rebuild an identical
// machine through RestoreMachine.
func diffInstall(sc diffTopo, seed int64) func(*Machine) error {
	return func(m *Machine) error {
		const stripe = 1 << 32
		nodes := memory.StripedNodes{N: sc.topo.Chips, Stripe: stripe}
		arenas := []*memory.Arena{memory.NewDefaultArena()}
		if sc.numa {
			var err error
			if arenas, err = memory.NodeArenas(nodes); err != nil {
				return err
			}
			m.Hierarchy().SetNUMA(nodes)
		}
		arena := func(i int) *memory.Arena { return arenas[i%len(arenas)] }

		seeder := rand.New(rand.NewSource(seed))
		nThreads := 2 * sc.topo.NumCPUs()
		nGroups := sc.topo.Chips // groups interleave across chips below
		shared := make([]memory.Region, nGroups)
		for i := range shared {
			shared[i] = arena(i).MustAlloc(8*memory.LineSize, memory.LineSize)
		}
		global := arena(0).MustAlloc(4*memory.LineSize, memory.LineSize)
		for i := 0; i < nThreads; i++ {
			g := &diffGen{
				rng:     rng.New(seeder.Int63()),
				private: arena(i).MustAlloc(16<<10, memory.LineSize),
				shared:  shared[i%nGroups],
				global:  global,
			}
			if err := m.AddThread(&Thread{ID: sched.ThreadID(i), Gen: g, Partition: i % nGroups}); err != nil {
				return err
			}
		}
		return nil
	}
}

// buildDiffMachine constructs a machine plus its randomized workload.
func buildDiffMachine(t testing.TB, sc diffTopo, engine Engine, seed int64) *Machine {
	t.Helper()
	m, err := NewMachine(diffConfig(sc, engine, seed))
	if err != nil {
		t.Fatal(err)
	}
	if err := diffInstall(sc, seed)(m); err != nil {
		t.Fatal(err)
	}
	return m
}

// enableCapture turns on per-CPU AccessResult recording (test-only; the
// benchmarks share buildDiffMachine and must stay allocation-free).
func enableCapture(m *Machine) {
	m.capture = make([][]cache.AccessResult, m.topo.NumCPUs())
}

// diffState flattens everything the differential compares: per-CPU access
// streams, per-CPU PMU counts, hierarchy counters, per-thread accounting
// and the full metrics snapshot (as its canonical JSON bytes).
type diffState struct {
	capture  [][]cache.AccessResult
	pmu      [][pmu.NumEvents]uint64
	srcN     [cache.NumSources]uint64
	srcCyc   [cache.NumSources]uint64
	inval    uint64
	upgrades uint64
	wbacks   uint64
	snoops   uint64
	dirLines int
	dirPeak  int
	threads  map[sched.ThreadID][4]uint64
	snapshot []byte
}

func captureState(t *testing.T, m *Machine) diffState {
	t.Helper()
	h := m.Hierarchy()
	st := diffState{
		capture:  m.capture,
		srcN:     h.SourceCounts(),
		srcCyc:   h.SourceCycles(),
		inval:    h.InvalidationsSent(),
		upgrades: h.Upgrades(),
		wbacks:   h.Writebacks(),
		snoops:   h.SnoopProbesAvoided(),
		dirLines: h.DirectoryLines(),
		dirPeak:  h.DirectoryPeakLines(),
		threads:  make(map[sched.ThreadID][4]uint64),
	}
	for c := 0; c < m.topo.NumCPUs(); c++ {
		var ev [pmu.NumEvents]uint64
		for e := 0; e < pmu.NumEvents; e++ {
			ev[e] = m.PMU(topology.CPUID(c)).Count(pmu.Event(e))
		}
		st.pmu = append(st.pmu, ev)
	}
	for _, th := range m.Threads() {
		st.threads[th.ID] = [4]uint64{th.Cycles, th.Insts, th.Ops, th.RemoteMisses}
	}
	var buf bytes.Buffer
	if err := m.SnapshotMetrics().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	st.snapshot = buf.Bytes()
	return st
}

// diffStates fails the test with the first divergence between the
// reference (seq) and candidate (parallel) states.
func diffStates(t *testing.T, ref, got diffState) {
	t.Helper()
	for c := range ref.capture {
		if len(ref.capture[c]) != len(got.capture[c]) {
			t.Fatalf("cpu %d: access stream length %d vs %d", c, len(ref.capture[c]), len(got.capture[c]))
		}
		for i := range ref.capture[c] {
			if ref.capture[c][i] != got.capture[c][i] {
				t.Fatalf("cpu %d access %d: %+v vs %+v", c, i, ref.capture[c][i], got.capture[c][i])
			}
		}
	}
	for c := range ref.pmu {
		if ref.pmu[c] != got.pmu[c] {
			t.Fatalf("cpu %d PMU counts diverge:\nseq:      %v\nparallel: %v", c, ref.pmu[c], got.pmu[c])
		}
	}
	if ref.srcN != got.srcN || ref.srcCyc != got.srcCyc {
		t.Fatalf("source attribution diverges:\nseq:      %v / %v\nparallel: %v / %v",
			ref.srcN, ref.srcCyc, got.srcN, got.srcCyc)
	}
	if ref.inval != got.inval || ref.upgrades != got.upgrades || ref.wbacks != got.wbacks ||
		ref.snoops != got.snoops || ref.dirLines != got.dirLines || ref.dirPeak != got.dirPeak {
		t.Fatalf("coherence counters diverge:\nseq:      inval=%d upg=%d wb=%d snoop=%d dir=%d/%d\nparallel: inval=%d upg=%d wb=%d snoop=%d dir=%d/%d",
			ref.inval, ref.upgrades, ref.wbacks, ref.snoops, ref.dirLines, ref.dirPeak,
			got.inval, got.upgrades, got.wbacks, got.snoops, got.dirLines, got.dirPeak)
	}
	for id, want := range ref.threads {
		if got.threads[id] != want {
			t.Fatalf("thread %d accounting diverges: %v vs %v", id, want, got.threads[id])
		}
	}
	if !bytes.Equal(ref.snapshot, got.snapshot) {
		t.Fatalf("metrics snapshots diverge:\nseq:      %s\nparallel: %s", ref.snapshot, got.snapshot)
	}
}

// TestEngineDifferential replays the same randomized multi-chip workload
// through the sequential and parallel engines and requires byte-identical
// results — access streams, PMU counters, coherence counters, per-thread
// accounting and metrics snapshots — for every GOMAXPROCS in {1, 2,
// NumCPU}. This is the tentpole's determinism proof; it must also pass
// under -race (see the race CI job).
func TestEngineDifferential(t *testing.T) {
	const seed = 42
	const rounds = 40
	ctx := context.Background()
	for _, sc := range diffTopologies() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			seq := buildDiffMachine(t, sc, EngineSeq, seed)
			enableCapture(seq)
			if err := seq.RunRoundsCtx(ctx, rounds); err != nil {
				t.Fatal(err)
			}
			if seq.parallelRounds != 0 {
				t.Fatalf("seq engine ran %d parallel rounds", seq.parallelRounds)
			}
			if err := seq.Hierarchy().CheckDirectory(); err != nil {
				t.Fatalf("seq directory check: %v", err)
			}
			ref := captureState(t, seq)

			for _, procs := range gomaxprocsLevels() {
				procs := procs
				t.Run(fmt.Sprintf("gomaxprocs=%d", procs), func(t *testing.T) {
					old := runtime.GOMAXPROCS(procs)
					defer runtime.GOMAXPROCS(old)
					par := buildDiffMachine(t, sc, EngineParallel, seed)
					enableCapture(par)
					if err := par.RunRoundsCtx(ctx, rounds); err != nil {
						t.Fatal(err)
					}
					if par.parallelRounds == 0 {
						t.Fatal("parallel engine never took the chip-parallel path")
					}
					if err := par.Hierarchy().CheckDirectory(); err != nil {
						t.Fatalf("parallel directory check: %v", err)
					}
					diffStates(t, ref, captureState(t, par))
				})
			}
		})
	}
}

func gomaxprocsLevels() []int {
	levels := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		levels = append(levels, n)
	}
	return levels
}

// TestEngineFallbackIdentical runs the same workload with an unconfined
// generator wrapper, forcing the legacy serial immediate-coherence loop,
// and checks the parallel engine still drives it correctly (it must simply
// never take the deferred path).
func TestEngineFallbackUnconfined(t *testing.T) {
	sc := diffTopo{name: "open720", topo: topology.OpenPower720()}
	m := buildDiffMachine(t, sc, EngineParallel, 7)
	// Re-wrap every generator so no running thread is confined; eligibility
	// is per round over the *running* threads, so a single unconfined
	// thread only blocks the rounds it is dispatched in.
	for _, th := range m.Threads() {
		id, gen := th.ID, th.Gen
		if err := m.RemoveThread(id); err != nil {
			t.Fatal(err)
		}
		if err := m.AddThread(&Thread{ID: id, Gen: unconfined{gen}}); err != nil {
			t.Fatal(err)
		}
	}
	m.RunRoundsCtx(context.Background(), 10)
	if m.parallelRounds != 0 {
		t.Fatalf("unconfined workload took the parallel path %d times", m.parallelRounds)
	}
	if m.Clock() == 0 {
		t.Fatal("machine did not run")
	}
}

type unconfined struct{ g Generator }

func (u unconfined) Next() MemRef { return u.g.Next() }

// TestRunSliceZeroAlloc pins the engine's allocation-free hot path: after
// warm-up, driving a full deferred slice sweep — every chip's CPUs through
// runSlice plus the slice barrier, exactly what one parallel worker set
// executes — must not allocate. (The parallel driver itself additionally
// spawns its per-slice goroutines; the per-access and per-slice work they
// run is what this guards.)
func TestRunSliceZeroAlloc(t *testing.T) {
	sc := diffTopo{name: "power5-32way", topo: topology.Power5_32Way()}
	m := buildDiffMachine(t, sc, EngineSeq, 3)
	if err := m.RunRoundsCtx(context.Background(), 20); err != nil {
		t.Fatal(err)
	}
	if !m.deferredRound() {
		t.Fatal("bench workload should be eligible for the deferred model")
	}
	budget := m.cfg.QuantumCycles / uint64(m.cfg.InterleaveSlices)
	sweep := func() {
		for chip := 0; chip < m.topo.Chips; chip++ {
			m.runChipSlice(chip, budget)
		}
		m.hier.SliceBarrier()
	}
	for i := 0; i < 50; i++ {
		sweep()
	}
	if avg := testing.AllocsPerRun(100, sweep); avg != 0 {
		t.Fatalf("deferred slice sweep allocates %v allocs/run, want 0", avg)
	}
}

// TestEngineSingleChipFallsBack checks the eligibility gate: a one-chip
// machine has no cross-chip traffic to defer and must use the serial loop
// even under the parallel engine.
func TestEngineSingleChipFallsBack(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topo = topology.NiagaraLike()
	cfg.Caches = cache.SmallConfig()
	cfg.Caches.Coherence = cache.CoherenceDirectory
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	arena := memory.NewDefaultArena()
	g := &diffGen{
		rng:     rng.New(1),
		private: arena.MustAlloc(16<<10, memory.LineSize),
		shared:  arena.MustAlloc(8*memory.LineSize, memory.LineSize),
		global:  arena.MustAlloc(4*memory.LineSize, memory.LineSize),
	}
	if err := m.AddThread(&Thread{ID: 1, Gen: g}); err != nil {
		t.Fatal(err)
	}
	m.RunRoundsCtx(context.Background(), 5)
	if m.parallelRounds != 0 {
		t.Fatalf("single-chip machine took the parallel path %d times", m.parallelRounds)
	}
}
