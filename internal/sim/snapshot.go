package sim

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"threadcluster/internal/errs"
	"threadcluster/internal/rng"
	"threadcluster/internal/sched"
	"threadcluster/internal/snapbin"
)

// SnapshotVersion is the current encoding version of MachineSnapshot.
// Decoders reject snapshots from a different version outright: the
// encoding is a direct image of internal component state, which does not
// migrate across versions.
const SnapshotVersion = 1

// snapshotMagic opens every encoded snapshot ("TCSNAP\0\0" little-endian).
const snapshotMagic uint64 = 0x0000_50414E534354

// Names of the fixed sections every snapshot carries, in encoding order.
// Additional sections follow, one per registered state provider, sorted
// by provider name.
const (
	sectionMachine = "machine"
	sectionSched   = "sched"
	sectionCache   = "cache"
	sectionPMU     = "pmu"
)

// MachineSnapshot is a versioned, deterministic serialization of a
// machine's complete mutable state, captured between scheduling rounds:
// the cache hierarchy with its coherence directory, every PMU and
// multiplexer, the scheduler, the machine clock and counters, per-thread
// metrics and generator cursors, and one opaque section per registered
// state provider (e.g. the thread-clustering engine).
//
// The encoding is canonical — identical logical state yields identical
// bytes regardless of the engine or GOMAXPROCS that produced it — so the
// Digest is a stable fingerprint of simulation state. Configuration
// (topology, latencies, workload construction) is deliberately absent:
// RestoreMachine rebuilds it and the restore validates the snapshot
// against the rebuilt machine.
type MachineSnapshot struct {
	// Version is the encoding version the snapshot was captured with.
	Version uint16

	sections []snapSection
}

type snapSection struct {
	name    string
	payload []byte
}

// Sections returns the snapshot's section names in encoding order.
func (s *MachineSnapshot) Sections() []string {
	names := make([]string, len(s.sections))
	for i, sec := range s.sections {
		names[i] = sec.name
	}
	return names
}

func (s *MachineSnapshot) section(name string) ([]byte, bool) {
	for _, sec := range s.sections {
		if sec.name == name {
			return sec.payload, true
		}
	}
	return nil, false
}

// Encode renders the snapshot in the canonical binary form: magic,
// version, the sections, and a trailing SHA-256 digest of everything
// before it.
func (s *MachineSnapshot) Encode() []byte {
	e := &snapbin.Enc{}
	e.U64(snapshotMagic)
	e.U16(s.Version)
	e.U32(uint32(len(s.sections)))
	for _, sec := range s.sections {
		e.Str(sec.name)
		e.Blob(sec.payload)
	}
	sum := sha256.Sum256(e.Bytes())
	return append(e.Bytes(), sum[:]...)
}

// Digest returns the hex SHA-256 of the canonical encoding — a stable
// fingerprint of the captured machine state.
func (s *MachineSnapshot) Digest() string {
	enc := s.Encode()
	sum := sha256.Sum256(enc)
	return hex.EncodeToString(sum[:])
}

// DecodeSnapshot parses a canonical encoding produced by Encode. It
// survives arbitrary input: framing, lengths and the integrity digest
// are validated before any section is trusted, and a snapshot from a
// different encoding version is rejected.
func DecodeSnapshot(b []byte) (*MachineSnapshot, error) {
	if len(b) < sha256.Size {
		return nil, fmt.Errorf("sim: snapshot shorter than its digest: %w", snapbin.ErrCorrupt)
	}
	body, trailer := b[:len(b)-sha256.Size], b[len(b)-sha256.Size:]
	if sum := sha256.Sum256(body); string(sum[:]) != string(trailer) {
		return nil, fmt.Errorf("sim: snapshot integrity digest mismatch: %w", snapbin.ErrCorrupt)
	}
	d := snapbin.NewDec(body)
	if magic := d.U64(); d.Err() == nil && magic != snapshotMagic {
		return nil, fmt.Errorf("sim: snapshot magic %#x: %w", magic, snapbin.ErrCorrupt)
	}
	version := d.U16()
	if d.Err() == nil && version != SnapshotVersion {
		return nil, fmt.Errorf("sim: snapshot version %d, this build reads %d: %w",
			version, SnapshotVersion, errs.ErrBadConfig)
	}
	n := d.Count(8) // name prefix + payload prefix at minimum
	snap := &MachineSnapshot{Version: version}
	seen := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		name := d.Str()
		payload := append([]byte(nil), d.Blob()...)
		if d.Err() != nil {
			return nil, d.Err()
		}
		if name == "" || seen[name] {
			return nil, fmt.Errorf("sim: snapshot section %q duplicated or empty: %w", name, snapbin.ErrCorrupt)
		}
		seen[name] = true
		snap.sections = append(snap.sections, snapSection{name: name, payload: payload})
	}
	if err := d.Close(); err != nil {
		return nil, err
	}
	return snap, nil
}

// StateProvider lets a component attached to the machine (the clustering
// engine, custom experiment harnesses) ride along in machine snapshots
// as an opaque named section. Save appends the component's state to the
// encoder; Restore overwrites the component's state from a decoder
// positioned at its section (the decoder's Close is called by the
// machine). Closures inside the component are never serialized — the
// restoring caller reconstructs the component identically first, and
// Restore overlays the mutable state.
type StateProvider struct {
	Save    func(*snapbin.Enc) error
	Restore func(*snapbin.Dec) error
}

// RegisterStateProvider attaches a named state provider to the machine.
// Names must be unique, non-empty and distinct from the fixed section
// names; providers are encoded sorted by name.
func (m *Machine) RegisterStateProvider(name string, p StateProvider) error {
	switch name {
	case "", sectionMachine, sectionSched, sectionCache, sectionPMU:
		return fmt.Errorf("sim: state provider name %q is reserved: %w", name, errs.ErrBadConfig)
	}
	if p.Save == nil || p.Restore == nil {
		return fmt.Errorf("sim: state provider %q needs both Save and Restore: %w", name, errs.ErrBadConfig)
	}
	if _, ok := m.providers[name]; ok {
		return fmt.Errorf("sim: state provider %q: %w", name, errs.ErrAlreadyInstalled)
	}
	if m.providers == nil {
		m.providers = make(map[string]StateProvider)
	}
	m.providers[name] = p
	return nil
}

func (m *Machine) providerNames() []string {
	names := make([]string, 0, len(m.providers))
	for name := range m.providers {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Snapshot captures the machine's complete mutable state. The machine
// must be quiesced between scheduling rounds (no thread dispatched), and
// every thread's generator must be a ConfinedGenerator — generators that
// mutate shared structures at generation time have no serializable
// cursor, and snapshotting them is refused.
func (m *Machine) Snapshot(ctx context.Context) (*MachineSnapshot, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for c, id := range m.running {
		if id >= 0 {
			return nil, fmt.Errorf("sim: CPU %d still runs thread %d mid-quantum: %w", c, id, errs.ErrThreadRunning)
		}
	}
	snap := &MachineSnapshot{Version: SnapshotVersion}
	add := func(name string, build func(*snapbin.Enc) error) error {
		e := &snapbin.Enc{}
		if err := build(e); err != nil {
			return fmt.Errorf("sim: snapshot section %q: %w", name, err)
		}
		snap.sections = append(snap.sections, snapSection{name: name, payload: e.Bytes()})
		return nil
	}
	if err := add(sectionMachine, m.saveMachineState); err != nil {
		return nil, err
	}
	if err := add(sectionSched, m.sch.SaveState); err != nil {
		return nil, err
	}
	if err := add(sectionCache, m.hier.SaveState); err != nil {
		return nil, err
	}
	if err := add(sectionPMU, func(e *snapbin.Enc) error { m.savePMUState(e); return nil }); err != nil {
		return nil, err
	}
	for _, name := range m.providerNames() {
		if err := add(name, m.providers[name].Save); err != nil {
			return nil, err
		}
	}
	return snap, nil
}

// saveMachineState encodes the machine-level section: clock, counters,
// the machine RNG, the runqueue-depth histogram, and every thread's
// metrics and generator cursor in installation order.
func (m *Machine) saveMachineState(e *snapbin.Enc) error {
	e.U64(m.clock)
	e.U64(m.rounds)
	st := m.rng.State()
	e.I64(st.Seed)
	e.U64(st.Draws)
	e.U64(m.overhead)
	e.U64(m.dispatchSlots)
	e.U64(m.dispatchBusy)
	counts := m.depthHist.BucketCounts()
	e.U32(uint32(len(counts)))
	for _, c := range counts {
		e.U64(c)
	}
	e.U64(m.depthHist.Sum())
	e.U64(m.depthHist.Count())
	e.U32(uint32(len(m.order)))
	for _, id := range m.order {
		t := m.threads[id]
		g, ok := t.Gen.(ConfinedGenerator)
		if !ok {
			return fmt.Errorf("sim: thread %d generator %T is not confined and has no serializable cursor: %w",
				id, t.Gen, errs.ErrBadConfig)
		}
		e.I64(int64(id))
		e.U64(t.Cycles)
		e.U64(t.Insts)
		e.U64(t.Ops)
		e.U64(t.RemoteMisses)
		e.Blob(g.SnapshotState())
	}
	return nil
}

// savePMUState encodes every CPU's PMU and (optional) multiplexer.
func (m *Machine) savePMUState(e *snapbin.Enc) {
	e.U32(uint32(len(m.pmus)))
	for c, p := range m.pmus {
		p.SaveState(e)
		e.Bool(m.muxes[c] != nil)
		if m.muxes[c] != nil {
			m.muxes[c].SaveState(e)
		}
	}
}

// RestoreSnapshot overwrites the machine's mutable state with a
// snapshot. The machine must have been rebuilt identically first — same
// configuration, same threads added in the same order, same PMU
// programming, multiplexers and state providers — and must be quiesced;
// the restore validates all of that and refuses mismatches, leaving the
// machine unusable only if a section was partially applied (callers
// should discard the machine on error).
func (m *Machine) RestoreSnapshot(snap *MachineSnapshot) error {
	if snap == nil {
		return fmt.Errorf("sim: nil snapshot: %w", errs.ErrBadConfig)
	}
	if snap.Version != SnapshotVersion {
		return fmt.Errorf("sim: snapshot version %d, this build reads %d: %w",
			snap.Version, SnapshotVersion, errs.ErrBadConfig)
	}
	for c, id := range m.running {
		if id >= 0 {
			return fmt.Errorf("sim: CPU %d still runs thread %d mid-quantum: %w", c, id, errs.ErrThreadRunning)
		}
	}
	want := append([]string{sectionMachine, sectionSched, sectionCache, sectionPMU}, m.providerNames()...)
	got := snap.Sections()
	if len(got) != len(want) {
		return fmt.Errorf("sim: snapshot has sections %v, machine expects %v: %w", got, want, errs.ErrBadConfig)
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("sim: snapshot section %q where machine expects %q: %w", got[i], want[i], errs.ErrBadConfig)
		}
	}
	restore := func(name string, apply func(*snapbin.Dec) error) error {
		payload, _ := snap.section(name)
		d := snapbin.NewDec(payload)
		if err := apply(d); err != nil {
			return fmt.Errorf("sim: restore section %q: %w", name, err)
		}
		if err := d.Close(); err != nil {
			return fmt.Errorf("sim: restore section %q: %w", name, err)
		}
		return nil
	}
	if err := restore(sectionMachine, m.restoreMachineState); err != nil {
		return err
	}
	if err := restore(sectionSched, m.sch.RestoreState); err != nil {
		return err
	}
	if err := restore(sectionCache, m.hier.RestoreState); err != nil {
		return err
	}
	if err := restore(sectionPMU, m.restorePMUState); err != nil {
		return err
	}
	for _, name := range m.providerNames() {
		if err := restore(name, m.providers[name].Restore); err != nil {
			return err
		}
	}
	return nil
}

// restoreMachineState decodes and applies the machine-level section.
func (m *Machine) restoreMachineState(d *snapbin.Dec) error {
	clock := d.U64()
	rounds := d.U64()
	rngSeed := d.I64()
	rngDraws := d.U64()
	overhead := d.U64()
	dispatchSlots := d.U64()
	dispatchBusy := d.U64()
	nbuckets := d.Count(8)
	histCounts := make([]uint64, nbuckets)
	for i := range histCounts {
		histCounts[i] = d.U64()
	}
	histSum := d.U64()
	histN := d.U64()
	nthreads := d.Count(40)
	if d.Err() == nil && nthreads != len(m.order) {
		return fmt.Errorf("sim: snapshot has %d threads, machine has %d: %w", nthreads, len(m.order), errs.ErrBadConfig)
	}
	type threadState struct {
		cycles, insts, ops, remote uint64
		gen                        []byte
	}
	states := make([]threadState, 0, nthreads)
	for i := 0; i < nthreads && d.Err() == nil; i++ {
		id := sched.ThreadID(d.I64())
		if d.Err() == nil && id != m.order[i] {
			return fmt.Errorf("sim: snapshot thread %d at position %d, machine has %d (threads must be re-added in the original order): %w",
				id, i, m.order[i], errs.ErrBadConfig)
		}
		states = append(states, threadState{
			cycles: d.U64(),
			insts:  d.U64(),
			ops:    d.U64(),
			remote: d.U64(),
			gen:    d.Blob(),
		})
	}
	if err := d.Err(); err != nil {
		return err
	}
	if err := m.depthHist.RestoreState(histCounts, histSum, histN); err != nil {
		return fmt.Errorf("%s: %w", err, errs.ErrBadConfig)
	}
	for i, id := range m.order {
		t := m.threads[id]
		g, ok := t.Gen.(ConfinedGenerator)
		if !ok {
			return fmt.Errorf("sim: thread %d generator %T is not confined: %w", id, t.Gen, errs.ErrBadConfig)
		}
		if err := g.RestoreState(states[i].gen); err != nil {
			return fmt.Errorf("sim: thread %d generator: %w", id, err)
		}
		t.Cycles = states[i].cycles
		t.Insts = states[i].insts
		t.Ops = states[i].ops
		t.RemoteMisses = states[i].remote
	}
	m.clock = clock
	m.rounds = rounds
	m.rng.Restore(rng.State{Seed: rngSeed, Draws: rngDraws})
	m.overhead = overhead
	m.dispatchSlots = dispatchSlots
	m.dispatchBusy = dispatchBusy
	return nil
}

// restorePMUState decodes and applies every CPU's PMU and multiplexer.
func (m *Machine) restorePMUState(d *snapbin.Dec) error {
	if n := int(d.U32()); d.Err() == nil && n != len(m.pmus) {
		return fmt.Errorf("sim: snapshot has %d PMUs, machine has %d: %w", n, len(m.pmus), errs.ErrBadConfig)
	}
	for c, p := range m.pmus {
		if err := p.RestoreState(d); err != nil {
			return fmt.Errorf("sim: CPU %d PMU: %w", c, err)
		}
		hasMux := d.Bool()
		if d.Err() != nil {
			return d.Err()
		}
		if hasMux != (m.muxes[c] != nil) {
			return fmt.Errorf("sim: CPU %d multiplexer presence mismatch (snapshot %v, machine %v): %w",
				c, hasMux, m.muxes[c] != nil, errs.ErrBadConfig)
		}
		if hasMux {
			if err := m.muxes[c].RestoreState(d); err != nil {
				return fmt.Errorf("sim: CPU %d multiplexer: %w", c, err)
			}
		}
	}
	return d.Err()
}

// RestoreMachine rebuilds a machine from its configuration and a
// snapshot: it constructs a fresh machine, runs install — which must
// recreate the snapshotted machine's composition exactly (threads in the
// same order with identically constructed generators, PMU programming,
// multiplexers, engines/state providers) — and then overlays the
// snapshot's state. Generators and handlers are live closures a snapshot
// cannot carry, which is why the caller supplies install rather than the
// snapshot reconstructing the workload itself.
func RestoreMachine(cfg Config, snap *MachineSnapshot, install func(*Machine) error) (*Machine, error) {
	m, err := NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	if install != nil {
		if err := install(m); err != nil {
			return nil, err
		}
	}
	if err := m.RestoreSnapshot(snap); err != nil {
		return nil, err
	}
	return m, nil
}
