package sim

import (
	"context"
	"errors"
	"testing"

	"threadcluster/internal/errs"
	"threadcluster/internal/memory"
	"threadcluster/internal/sched"
)

func newLoadedMachine(t *testing.T, threads int) *Machine {
	t.Helper()
	m, err := NewMachine(testConfig(sched.PolicyDefault))
	if err != nil {
		t.Fatal(err)
	}
	arena := memory.NewDefaultArena()
	for i := 0; i < threads; i++ {
		g := &stride{region: arena.MustAlloc(8<<10, 0), step: memory.LineSize}
		if err := m.AddThread(&Thread{ID: sched.ThreadID(i), Gen: g}); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestRunHonorsContextCancellation(t *testing.T) {
	m := newLoadedMachine(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := m.Clock()
	if err := m.Run(ctx, 10_000_000); !errors.Is(err, context.Canceled) {
		t.Errorf("Run err = %v, want context.Canceled", err)
	}
	if m.Clock() != before {
		t.Error("a pre-cancelled context should not advance the clock")
	}
}

func TestRunRoundsCtxStopsAtRoundBoundary(t *testing.T) {
	m := newLoadedMachine(t, 4)
	// Run a few rounds, then cancel: the machine should stop between
	// rounds, not mid-quantum, so the clock lands on a round boundary.
	if err := m.RunRoundsCtx(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	rounds := m.Rounds()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := m.RunRoundsCtx(ctx, 50); !errors.Is(err, context.Canceled) {
		t.Errorf("RunRoundsCtx err = %v, want context.Canceled", err)
	}
	if m.Rounds() != rounds {
		t.Errorf("rounds advanced after cancel: %d -> %d", rounds, m.Rounds())
	}
}

func TestSentinelErrors(t *testing.T) {
	m := newLoadedMachine(t, 2)
	arena := memory.NewDefaultArena()
	g := &stride{region: arena.MustAlloc(4096, 0), step: memory.LineSize}

	if err := m.AddThread(&Thread{ID: 0, Gen: g}); !errors.Is(err, errs.ErrDuplicateThread) {
		t.Errorf("duplicate AddThread err = %v, want ErrDuplicateThread", err)
	}
	if err := m.AddThread(&Thread{ID: 99}); !errors.Is(err, errs.ErrBadConfig) {
		t.Errorf("nil-generator AddThread err = %v, want ErrBadConfig", err)
	}
	if err := m.RemoveThread(12345); !errors.Is(err, errs.ErrUnknownThread) {
		t.Errorf("RemoveThread unknown err = %v, want ErrUnknownThread", err)
	}
}

func TestMachineMetricsSnapshot(t *testing.T) {
	m := newLoadedMachine(t, 4)
	m.RunRoundsCtx(context.Background(), 10)
	s := m.SnapshotMetrics()
	if got := s.Counter(MetricRounds, nil); got != 10 {
		t.Errorf("%s = %d, want 10", MetricRounds, got)
	}
	if s.Gauge(MetricClock, nil) == 0 {
		t.Errorf("%s should be nonzero after running", MetricClock)
	}
	if s.Counter(MetricOps, nil) == 0 {
		t.Errorf("%s should be nonzero after running", MetricOps)
	}
	// Per-source cache attribution: the sources seen must sum to the
	// total access count.
	var total uint64
	for _, sample := range s.Samples {
		if sample.Name == MetricCacheAccesses {
			total += sample.Count
		}
	}
	if total == 0 {
		t.Error("cache access metrics missing")
	}
	// Runqueue depth histogram observes once per round.
	h, ok := s.Get(MetricRunqueueDepth, nil)
	if !ok || h.Count != 10 {
		t.Errorf("%s count = %d, want 10", MetricRunqueueDepth, h.Count)
	}
}
