package sim

import (
	"context"
	"math/rand"
	"testing"

	"threadcluster/internal/cache"
	"threadcluster/internal/memory"
	"threadcluster/internal/sched"
	"threadcluster/internal/topology"
)

// BenchmarkMachineRound measures whole-simulator throughput: one
// scheduling round of the 8-way machine with 16 sharing threads.
func BenchmarkMachineRound(b *testing.B) {
	benchMachineRound(b, DefaultConfig())
}

// The broadcast/directory pair measures what the coherence fast path buys
// at the whole-machine level on the §7.4 32-way topology.
func BenchmarkMachineRound32WayBroadcast(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Topo = topology.Power5_32Way()
	cfg.Caches.Coherence = cache.CoherenceBroadcast
	benchMachineRound(b, cfg)
}

func BenchmarkMachineRound32WayDirectory(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Topo = topology.Power5_32Way()
	cfg.Caches.Coherence = cache.CoherenceDirectory
	benchMachineRound(b, cfg)
}

func benchMachineRound(b *testing.B, cfg Config) {
	cfg.Policy = sched.PolicyRoundRobin
	cfg.QuantumCycles = 20_000
	m, err := NewMachine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	arena := memory.NewDefaultArena()
	shared := []memory.Region{arena.MustAlloc(4096, 0), arena.MustAlloc(4096, 0)}
	for i := 0; i < 16; i++ {
		g := &sharer{
			rng:     rand.New(rand.NewSource(int64(i))),
			private: arena.MustAlloc(64<<10, 0),
			shared:  shared[i%2],
			ratio:   0.3,
		}
		if err := m.AddThread(&Thread{ID: sched.ThreadID(i), Gen: g}); err != nil {
			b.Fatal(err)
		}
	}
	runBenchRounds(b, m)
}

func runBenchRounds(b *testing.B, m *Machine) {
	b.Helper()
	ctx := context.Background()
	if err := m.RunRoundsCtx(ctx, 10); err != nil { // warm
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.RunRoundsCtx(ctx, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.Breakdown().Insts)/float64(b.Elapsed().Seconds())/1e6, "Minsts/s")
}

// benchEngineMachine builds the 32-way machine with the confined
// differential workload, so rounds are eligible for the deferred
// chip-parallel model under either engine.
func benchEngineMachine(b *testing.B, engine Engine) *Machine {
	b.Helper()
	sc := diffTopo{name: "power5-32way", topo: topology.Power5_32Way()}
	return buildDiffMachine(b, sc, engine, 1)
}

// The seq/parallel pair is the tentpole's speedup guard: `make
// bench-compare` checks the parallel engine against BENCH_sim.json and —
// on hosts with enough cores (min_cores in the baseline) — requires the
// committed speedup ratio to hold.
func BenchmarkMachineRound32WaySeq(b *testing.B) {
	runBenchRounds(b, benchEngineMachine(b, EngineSeq))
}

func BenchmarkMachineRound32WayParallel(b *testing.B) {
	runBenchRounds(b, benchEngineMachine(b, EngineParallel))
}
