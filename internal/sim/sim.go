// Package sim is the execution engine that ties the simulated machine
// together: software threads — modelled as memory-reference generators —
// run on hardware contexts in scheduling quanta, each data access flows
// through the coherent cache hierarchy, and every micro-architectural
// outcome is fed to the per-CPU performance monitoring units.
//
// Time is advanced in quanta. To preserve the coherence interleavings that
// drive remote cache accesses, each quantum is split into several
// interleave slices and the hardware contexts take turns running their
// current thread one slice at a time. That models cross-thread
// invalidation traffic at a fraction of per-cycle simulation cost.
package sim

import (
	"context"
	"fmt"

	"threadcluster/internal/cache"
	"threadcluster/internal/errs"
	"threadcluster/internal/memory"
	"threadcluster/internal/metrics"
	"threadcluster/internal/pmu"
	"threadcluster/internal/rng"
	"threadcluster/internal/sched"
	"threadcluster/internal/topology"
)

// MemRef is one unit of simulated work: some instructions of computation
// followed by a data access, with optional extra stall cycles and an
// application-level operation completion marker.
type MemRef struct {
	// Addr is the data address accessed.
	Addr memory.Addr
	// Write marks the access as a store.
	Write bool
	// Insts is the number of instructions retired by the computation
	// leading up to (and including) the access.
	Insts uint64
	// BranchStall is extra stall cycles charged to branch misprediction.
	BranchStall uint64
	// OtherStall is extra stall cycles charged to remaining causes.
	OtherStall uint64
	// Ops, when nonzero, reports that the thread completed that many
	// application-level operations (messages, transactions, ...) — the
	// workload's own performance metric (Figure 7).
	Ops uint64
}

// Generator produces a thread's memory-reference stream. Implementations
// own their randomness so a thread's stream is identical across placement
// policies.
type Generator interface {
	Next() MemRef
}

// Thread is one software thread.
type Thread struct {
	// ID is the scheduler handle.
	ID sched.ThreadID
	// Gen produces the thread's access stream.
	Gen Generator
	// Partition is the ground-truth application partition (scoreboard,
	// room, warehouse, database instance) used by the hand-optimized
	// policy and by cluster-quality validation. The automatic engine never
	// reads it.
	Partition int

	// Accumulated per-thread metrics.
	Cycles uint64
	Insts  uint64
	Ops    uint64
	// RemoteMisses counts this thread's accesses satisfied remotely
	// (ground truth, for validation plots).
	RemoteMisses uint64

	// confined caches whether Gen implements ConfinedGenerator; computed
	// once at AddThread (swapping Gen afterwards is not supported).
	confined bool
}

// Config assembles a machine.
type Config struct {
	Topo   topology.Topology
	Lat    topology.Latencies
	Caches cache.HierarchyConfig
	// QuantumCycles is the scheduling quantum (default 100k cycles).
	QuantumCycles uint64
	// InterleaveSlices divides each quantum for cross-CPU interleaving
	// (default 4).
	InterleaveSlices int
	// SMTContentionPct is the completion-cycle penalty, in percent, a
	// hardware context pays when its SMT sibling is also running a thread
	// in the same round: the two contexts share the core's fetch/issue
	// bandwidth. 0 disables; 25 means co-running threads retire
	// instructions 25% slower, charged as EvStallSMT cycles.
	SMTContentionPct int
	// Seed drives all machine-level randomness.
	Seed int64
	// Policy selects the placement strategy.
	Policy sched.Policy
	// Engine picks the round driver: EngineParallel (zero value; eligible
	// rounds run chip-parallel) or EngineSeq. Both produce byte-identical
	// results — see the Engine type.
	Engine Engine
}

// DefaultConfig returns the paper's platform with sensible simulation
// parameters: OpenPower 720 topology, Figure 1 latencies, Table 1 caches.
func DefaultConfig() Config {
	return Config{
		Topo:             topology.OpenPower720(),
		Lat:              topology.DefaultLatencies(),
		Caches:           cache.Power5Config(),
		QuantumCycles:    100_000,
		InterleaveSlices: 4,
		Seed:             1,
		Policy:           sched.PolicyDefault,
	}
}

// TickFunc observes the machine after each completed scheduling round.
type TickFunc func(m *Machine)

// Machine is the whole simulated system.
type Machine struct {
	cfg     Config
	topo    topology.Topology
	hier    *cache.Hierarchy
	pmus    []*pmu.PMU
	muxes   []*pmu.Multiplexer // optional, per CPU; advanced with time
	sch     *sched.Scheduler
	threads map[sched.ThreadID]*Thread
	byID    []*Thread        // dense thread lookup for the dispatch path
	order   []sched.ThreadID // insertion order, for deterministic iteration

	clock    uint64 // machine time in cycles
	rounds   uint64 // completed scheduling rounds
	rng      *rng.Rand
	ticks    []TickFunc
	running  []sched.ThreadID // per CPU; -1 = idle
	overhead uint64           // cycles burned in PMU overflow handlers

	dispatchSlots uint64 // CPU-quanta elapsed
	dispatchBusy  uint64 // CPU-quanta with a thread dispatched

	metrics   *metrics.Registry
	depthHist *metrics.Histogram // runqueue depth observed each round

	// observer, when set, sees every memory reference before it executes
	// and returns extra cycles to charge (e.g. a simulated page-protection
	// fault). Used by software-based sharing detectors.
	observer AccessObserver

	// parallelRounds counts rounds the chip-parallel driver executed.
	// Deliberately not a metric: metrics snapshots must be identical
	// across engines, and this is the one number that is not. Tests use
	// it to prove the parallel driver actually ran.
	parallelRounds uint64

	// capture, when non-nil, records every AccessResult per CPU (set by
	// the engine differential tests; a chip worker appends only to its
	// own CPUs' logs, so capture is race-free under the parallel driver).
	capture [][]cache.AccessResult

	// providers holds the named opaque snapshot sections registered by
	// attached components (see RegisterStateProvider).
	providers map[string]StateProvider
}

// AccessObserver intercepts memory references. It returns extra stall
// cycles to charge to the accessing CPU — the cost of whatever software
// mechanism (page fault, instrumentation) the observer models.
type AccessObserver func(cpu topology.CPUID, t *Thread, ref MemRef) (extraCycles uint64)

// NewMachine builds the machine.
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.QuantumCycles == 0 {
		cfg.QuantumCycles = 100_000
	}
	if cfg.InterleaveSlices <= 0 {
		cfg.InterleaveSlices = 4
	}
	hier, err := cache.NewHierarchy(cfg.Topo, cfg.Lat, cfg.Caches)
	if err != nil {
		return nil, err
	}
	sch, err := sched.New(cfg.Topo, cfg.Policy, cfg.Seed)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:     cfg,
		topo:    cfg.Topo,
		hier:    hier,
		sch:     sch,
		threads: make(map[sched.ThreadID]*Thread),
		rng:     rng.New(cfg.Seed),
		running: make([]sched.ThreadID, cfg.Topo.NumCPUs()),
	}
	for i := 0; i < cfg.Topo.NumCPUs(); i++ {
		m.pmus = append(m.pmus, pmu.New())
		m.muxes = append(m.muxes, nil)
		m.running[i] = -1
	}
	m.registerMetrics()
	return m, nil
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Topology returns the machine shape.
func (m *Machine) Topology() topology.Topology { return m.topo }

// Hierarchy exposes the cache system (stats, tests).
func (m *Machine) Hierarchy() *cache.Hierarchy { return m.hier }

// Scheduler exposes the scheduling layer.
func (m *Machine) Scheduler() *sched.Scheduler { return m.sch }

// PMU returns the performance monitoring unit of a hardware context.
func (m *Machine) PMU(cpu topology.CPUID) *pmu.PMU { return m.pmus[cpu] }

// AttachMux wires a multiplexer to a CPU's PMU; the machine advances it as
// simulated time passes on that CPU.
func (m *Machine) AttachMux(cpu topology.CPUID, mux *pmu.Multiplexer) {
	m.muxes[cpu] = mux
	m.pmus[cpu].AttachMultiplexer(mux)
	m.registerMuxMetrics(cpu, mux)
}

// Clock returns machine time in cycles.
func (m *Machine) Clock() uint64 { return m.clock }

// OverheadCycles returns cycles burned in PMU overflow handlers so far.
func (m *Machine) OverheadCycles() uint64 { return m.overhead }

// AddThread registers and places a thread.
func (m *Machine) AddThread(t *Thread) error {
	if t == nil || t.Gen == nil {
		return fmt.Errorf("sim: thread must have a generator: %w", errs.ErrBadConfig)
	}
	if t.ID < 0 {
		return fmt.Errorf("sim: thread id %d must be non-negative: %w", t.ID, errs.ErrBadConfig)
	}
	if _, ok := m.threads[t.ID]; ok {
		return fmt.Errorf("sim: thread %d: %w", t.ID, errs.ErrDuplicateThread)
	}
	if err := m.sch.AddThread(t.ID); err != nil {
		return err
	}
	_, t.confined = t.Gen.(ConfinedGenerator)
	m.threads[t.ID] = t
	for int(t.ID) >= len(m.byID) {
		m.byID = append(m.byID, nil)
	}
	m.byID[t.ID] = t
	m.order = append(m.order, t.ID)
	return nil
}

// Thread returns a registered thread.
func (m *Machine) Thread(id sched.ThreadID) *Thread {
	if id < 0 || int(id) >= len(m.byID) {
		return nil
	}
	return m.byID[id]
}

// RemoveThread withdraws a thread from the machine (a connection closing,
// a worker exiting). It must be called between scheduling rounds — i.e.
// from an OnTick observer or outside RunRoundsCtx — never from inside a
// generator or PMU handler.
func (m *Machine) RemoveThread(id sched.ThreadID) error {
	if _, ok := m.threads[id]; !ok {
		return fmt.Errorf("sim: thread %d: %w", id, errs.ErrUnknownThread)
	}
	for _, running := range m.running {
		if running == id {
			return fmt.Errorf("sim: thread %d is mid-quantum; remove threads between rounds: %w",
				id, errs.ErrThreadRunning)
		}
	}
	m.sch.RemoveThread(id)
	delete(m.threads, id)
	m.byID[id] = nil
	for i, oid := range m.order {
		if oid == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	return nil
}

// Threads returns all threads in insertion order.
func (m *Machine) Threads() []*Thread {
	out := make([]*Thread, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.threads[id])
	}
	return out
}

// RunningThread returns the thread currently executing on the CPU, or nil.
// PMU overflow handlers use this to attribute samples to the interrupted
// thread, exactly as a kernel interrupt handler attributes samples to
// `current`.
func (m *Machine) RunningThread(cpu topology.CPUID) *Thread {
	id := m.running[cpu]
	if id < 0 {
		return nil
	}
	return m.byID[id]
}

// OnTick registers an observer called after every scheduling round.
func (m *Machine) OnTick(f TickFunc) { m.ticks = append(m.ticks, f) }

// SetAccessObserver installs (or clears, with nil) the per-reference
// observer. Only one observer is supported; software sharing detectors
// use it to model page-protection faults.
func (m *Machine) SetAccessObserver(o AccessObserver) { m.observer = o }

// Run advances the machine by (at least) the given number of cycles, in
// whole scheduling rounds, checking ctx at every round boundary. It
// returns ctx's error if the context is cancelled before the cycles
// elapse, leaving the machine in a consistent between-rounds state.
func (m *Machine) Run(ctx context.Context, cycles uint64) error {
	end := m.clock + cycles
	for m.clock < end {
		if err := ctx.Err(); err != nil {
			return err
		}
		m.runRound()
	}
	return nil
}

// RunRoundsCtx advances the machine by n scheduling rounds, checking ctx
// at every round boundary. It returns ctx's error on cancellation,
// leaving the machine in a consistent between-rounds state.
func (m *Machine) RunRoundsCtx(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		m.runRound()
	}
	return nil
}

// runRound executes one scheduling quantum on every hardware context,
// interleaved in slices, then performs periodic balancing and fires tick
// observers.
func (m *Machine) runRound() {
	ncpu := m.topo.NumCPUs()
	// Quantum dispatch: each CPU picks its thread for the round.
	for c := 0; c < ncpu; c++ {
		m.dispatchSlots++
		if id, ok := m.sch.PickNext(topology.CPUID(c)); ok {
			m.running[c] = id
			m.dispatchBusy++
		} else {
			m.running[c] = -1
		}
	}
	sliceBudget := m.cfg.QuantumCycles / uint64(m.cfg.InterleaveSlices)
	if sliceBudget == 0 {
		sliceBudget = 1
	}
	switch {
	case !m.deferredRound():
		// Serial immediate-coherence loop: every coherence effect is
		// visible to the very next access, machine-wide.
		for s := 0; s < m.cfg.InterleaveSlices; s++ {
			for c := 0; c < ncpu; c++ {
				if m.running[c] < 0 {
					continue
				}
				m.runSlice(topology.CPUID(c), m.byID[m.running[c]], sliceBudget, m.smtBusy(topology.CPUID(c)), nil)
			}
		}
	case m.cfg.Engine == EngineParallel:
		m.runSlicesParallel(sliceBudget)
	default:
		m.runSlicesDeferred(sliceBudget)
	}
	// Quantum end: requeue and balance.
	for c := 0; c < ncpu; c++ {
		if m.running[c] >= 0 {
			m.sch.Requeue(m.running[c])
			m.running[c] = -1
		}
	}
	m.sch.ProactiveBalance()
	m.clock += m.cfg.QuantumCycles
	m.rounds++
	m.depthHist.Observe(uint64(m.sch.TotalQueued()))
	for c := 0; c < ncpu; c++ {
		if m.muxes[c] != nil {
			m.muxes[c].Advance(m.cfg.QuantumCycles)
		}
	}
	for _, f := range m.ticks {
		f(m)
	}
}

// smtBusy reports whether any SMT sibling of the CPU is running a thread
// this round.
func (m *Machine) smtBusy(cpu topology.CPUID) bool {
	if m.cfg.SMTContentionPct <= 0 {
		return false
	}
	for _, sib := range m.topo.CPUsOfCore(m.topo.CoreOf(cpu)) {
		if sib != cpu && m.running[sib] >= 0 {
			return true
		}
	}
	return false
}

// runSlice runs one thread on one CPU for (at least) budget cycles.
//
// lane, when non-nil, routes accesses through the CPU's chip lane under
// deferred coherence (the caller owns the slice barrier); nil uses the
// hierarchy's immediate-coherence Access.
//
// This is the simulator's hot loop and must not allocate: PMU deltas
// accumulate in a stack batch flushed once per slice (whenever no armed
// overflow handler needs the per-reference Observe timing), the lane/
// hierarchy fast paths are allocation-free, and the loop introduces no
// closures or interface conversions of its own.
func (m *Machine) runSlice(cpu topology.CPUID, t *Thread, budget uint64, smtBusy bool, lane *cache.Lane) {
	p := m.pmus[cpu]
	// Batched observation is count-equivalent to per-reference Observe
	// calls except for the firing points of armed overflow handlers (and
	// an observer may arm one mid-slice), so those keep the exact path.
	batched := m.observer == nil && !p.HasArmedHandler()
	var batch pmu.Batch
	var used uint64
	for used < budget {
		ref := t.Gen.Next()
		var observerCycles uint64
		if m.observer != nil {
			observerCycles = m.observer(cpu, t, ref)
		}
		var res cache.AccessResult
		if lane != nil {
			res = lane.Access(cpu, ref.Addr, ref.Write)
		} else {
			res = m.hier.Access(cpu, ref.Addr, ref.Write)
		}

		completion := ref.Insts + 1 // the access instruction retires too
		// An L1 hit is overlapped by the pipeline and causes no stall;
		// everything slower stalls for its latency minus the overlapped
		// first cycle.
		var stall uint64
		stallEv, hasStall := pmu.StallEvent(res.Source)
		if hasStall && res.Cycles > 1 {
			stall = res.Cycles - 1
		}
		var smtStall uint64
		if smtBusy {
			// The sibling context competes for issue bandwidth: retiring
			// the same instructions takes extra cycles.
			smtStall = completion * uint64(m.cfg.SMTContentionPct) / 100
		}
		total := completion + stall + smtStall + ref.BranchStall + ref.OtherStall
		if observerCycles > 0 {
			total += observerCycles
			m.overhead += observerCycles
		}

		if batched {
			batch.Add(pmu.EvCycles, total)
			batch.Add(pmu.EvInstCompleted, completion)
			batch.Add(pmu.EvCompletionCycles, completion)
			if hasStall && stall > 0 {
				batch.Add(stallEv, stall)
			}
			if smtStall > 0 {
				batch.Add(pmu.EvStallSMT, smtStall)
			}
			batch.Add(pmu.EvStallBranch, ref.BranchStall)
			batch.Add(pmu.EvStallOther, ref.OtherStall)
		} else {
			p.Observe(pmu.EvCycles, total)
			p.Observe(pmu.EvInstCompleted, completion)
			p.Observe(pmu.EvCompletionCycles, completion)
			if hasStall && stall > 0 {
				p.Observe(stallEv, stall)
			}
			if smtStall > 0 {
				p.Observe(pmu.EvStallSMT, smtStall)
			}
			if ref.BranchStall > 0 {
				p.Observe(pmu.EvStallBranch, ref.BranchStall)
			}
			if ref.OtherStall > 0 {
				p.Observe(pmu.EvStallOther, ref.OtherStall)
			}
			if observerCycles > 0 {
				p.Observe(pmu.EvStallOther, observerCycles)
			}
		}
		if res.L1Miss {
			// RecordMiss updates the sampling register and may fire the
			// remote-access overflow handler synchronously. It stays
			// per-reference even when batching: the sampling register
			// must always hold the *last* miss.
			p.RecordMiss(res.Line, res.Source)
		}
		if res.Source.Remote() {
			t.RemoteMisses++
		}

		// Charge any overflow-handler time to this CPU and account it as
		// cycles: the detection phase's runtime overhead (Figure 8). With
		// no armed handler (the batched case) there is nothing to drain.
		if !batched {
			if ic := p.DrainInterruptCycles(); ic > 0 {
				p.Observe(pmu.EvCycles, ic)
				p.Observe(pmu.EvStallOther, ic)
				m.overhead += ic
				total += ic
			}
		}

		if m.capture != nil {
			m.capture[cpu] = append(m.capture[cpu], res)
		}
		used += total
		t.Cycles += total
		t.Insts += completion
		t.Ops += ref.Ops
	}
	if batched {
		p.ObserveBatch(&batch)
	}
}

// Utilization returns the fraction of CPU-quanta that had a thread
// dispatched, since the machine started (1.0 = every hardware context
// busy every round).
func (m *Machine) Utilization() float64 {
	if m.dispatchSlots == 0 {
		return 0
	}
	return float64(m.dispatchBusy) / float64(m.dispatchSlots)
}

// TotalOps sums application-level operations completed by all threads.
func (m *Machine) TotalOps() uint64 {
	var ops uint64
	for _, t := range m.threads {
		ops += t.Ops
	}
	return ops
}

// Breakdown aggregates the exact stall breakdown across every CPU.
func (m *Machine) Breakdown() pmu.Breakdown {
	var b pmu.Breakdown
	for _, p := range m.pmus {
		b.Add(pmu.BreakdownFrom(p))
	}
	return b
}

// ResetMetrics clears PMU counts, per-thread metrics and overhead
// accounting, keeping caches warm and placement intact. Experiments use it
// to discard warm-up transients before the measured interval.
func (m *Machine) ResetMetrics() {
	for _, p := range m.pmus {
		p.Reset()
	}
	for _, t := range m.threads {
		t.Cycles, t.Insts, t.Ops, t.RemoteMisses = 0, 0, 0, 0
	}
	m.overhead = 0
}
