package sim

import (
	"context"
	"math/rand"
	"testing"

	"threadcluster/internal/memory"
	"threadcluster/internal/pmu"
	"threadcluster/internal/sched"
	"threadcluster/internal/topology"
)

// stride generates a fixed-stride access pattern over a private region.
type stride struct {
	region memory.Region
	off    uint64
	step   uint64
	write  bool
}

func (s *stride) Next() MemRef {
	a := s.region.At(s.off)
	s.off = (s.off + s.step) % s.region.Size
	return MemRef{Addr: a, Write: s.write, Insts: 10, Ops: 1}
}

// sharer alternates between a private region and a shared line.
type sharer struct {
	rng     *rand.Rand
	private memory.Region
	shared  memory.Region
	ratio   float64 // fraction of accesses to the shared region
}

func (s *sharer) Next() MemRef {
	if s.rng.Float64() < s.ratio {
		off := uint64(s.rng.Intn(int(s.shared.Size/memory.LineSize))) * memory.LineSize
		return MemRef{Addr: s.shared.At(off), Write: s.rng.Intn(2) == 0, Insts: 10, Ops: 1}
	}
	off := uint64(s.rng.Intn(int(s.private.Size/memory.LineSize))) * memory.LineSize
	return MemRef{Addr: s.private.At(off), Write: false, Insts: 10, Ops: 1}
}

func testConfig(policy sched.Policy) Config {
	cfg := DefaultConfig()
	cfg.Policy = policy
	cfg.QuantumCycles = 20_000
	return cfg
}

func TestNewMachineDefaults(t *testing.T) {
	m, err := NewMachine(Config{Topo: topology.OpenPower720(), Lat: topology.DefaultLatencies(),
		Caches: DefaultConfig().Caches})
	if err != nil {
		t.Fatal(err)
	}
	if m.Config().QuantumCycles == 0 || m.Config().InterleaveSlices == 0 {
		t.Error("defaults should be filled in")
	}
}

func TestAddThreadValidation(t *testing.T) {
	m, _ := NewMachine(testConfig(sched.PolicyDefault))
	if err := m.AddThread(nil); err == nil {
		t.Error("nil thread should fail")
	}
	if err := m.AddThread(&Thread{ID: 1}); err == nil {
		t.Error("thread without generator should fail")
	}
	arena := memory.NewDefaultArena()
	g := &stride{region: arena.MustAlloc(4096, 0), step: memory.LineSize}
	if err := m.AddThread(&Thread{ID: 1, Gen: g}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddThread(&Thread{ID: 1, Gen: g}); err == nil {
		t.Error("duplicate thread id should fail")
	}
}

func TestClockAdvances(t *testing.T) {
	m, _ := NewMachine(testConfig(sched.PolicyDefault))
	arena := memory.NewDefaultArena()
	for i := 0; i < 4; i++ {
		g := &stride{region: arena.MustAlloc(64<<10, 0), step: memory.LineSize}
		if err := m.AddThread(&Thread{ID: sched.ThreadID(i), Gen: g}); err != nil {
			t.Fatal(err)
		}
	}
	m.Run(context.Background(), 100_000)
	if m.Clock() < 100_000 {
		t.Errorf("clock = %d, want >= 100000", m.Clock())
	}
	b := m.Breakdown()
	if b.Cycles == 0 || b.Insts == 0 {
		t.Error("running threads should produce cycles and instructions")
	}
}

func TestThreadsMakeProgressAndOpsCount(t *testing.T) {
	m, _ := NewMachine(testConfig(sched.PolicyDefault))
	arena := memory.NewDefaultArena()
	for i := 0; i < 8; i++ {
		g := &stride{region: arena.MustAlloc(8<<10, 0), step: memory.LineSize}
		_ = m.AddThread(&Thread{ID: sched.ThreadID(i), Gen: g})
	}
	m.RunRoundsCtx(context.Background(), 20)
	if m.TotalOps() == 0 {
		t.Fatal("no application ops completed")
	}
	for _, th := range m.Threads() {
		if th.Cycles == 0 {
			t.Errorf("thread %d never ran", th.ID)
		}
	}
}

func TestPrivateWorkloadHasNoRemoteStalls(t *testing.T) {
	m, _ := NewMachine(testConfig(sched.PolicyDefault))
	arena := memory.NewDefaultArena()
	for i := 0; i < 8; i++ {
		g := &stride{region: arena.MustAlloc(8<<10, 0), step: memory.LineSize}
		_ = m.AddThread(&Thread{ID: sched.ThreadID(i), Gen: g})
	}
	m.RunRoundsCtx(context.Background(), 50)
	b := m.Breakdown()
	if b.RemoteStalls() != 0 {
		t.Errorf("private-only workload reported %d remote stall cycles", b.RemoteStalls())
	}
	for _, th := range m.Threads() {
		if th.RemoteMisses != 0 {
			t.Errorf("thread %d saw %d remote misses on private data", th.ID, th.RemoteMisses)
		}
	}
}

func TestCrossChipSharersProduceRemoteStalls(t *testing.T) {
	// Round-robin spreads threads across chips; heavy write-sharing on one
	// region must produce remote stalls.
	m, _ := NewMachine(testConfig(sched.PolicyRoundRobin))
	arena := memory.NewDefaultArena()
	shared := arena.MustAlloc(4096, 0)
	for i := 0; i < 8; i++ {
		g := &sharer{
			rng:     rand.New(rand.NewSource(int64(i))),
			private: arena.MustAlloc(8<<10, 0),
			shared:  shared,
			ratio:   0.5,
		}
		_ = m.AddThread(&Thread{ID: sched.ThreadID(i), Gen: g})
	}
	m.RunRoundsCtx(context.Background(), 50)
	b := m.Breakdown()
	if b.RemoteStalls() == 0 {
		t.Fatal("cross-chip write sharing produced no remote stalls")
	}
	if b.RemoteFraction() <= 0 {
		t.Fatal("remote fraction should be positive")
	}
}

func TestRunningThreadDuringExecution(t *testing.T) {
	m, _ := NewMachine(testConfig(sched.PolicyDefault))
	arena := memory.NewDefaultArena()
	g := &stride{region: arena.MustAlloc(8<<10, 0), step: memory.LineSize}
	_ = m.AddThread(&Thread{ID: 42, Gen: g})

	// Program an overflow handler that checks attribution mid-run.
	sawThread := false
	for c := 0; c < m.Topology().NumCPUs(); c++ {
		cpu := topology.CPUID(c)
		_ = m.PMU(cpu).Program(0, pmu.EvL1DMiss, 5, func(p *pmu.PMU) uint64 {
			if th := m.RunningThread(cpu); th != nil && th.ID == 42 {
				sawThread = true
			}
			return 0
		})
	}
	m.RunRoundsCtx(context.Background(), 5)
	if !sawThread {
		t.Error("overflow handler never observed the running thread")
	}
	if m.RunningThread(0) != nil {
		t.Error("no thread should be 'running' between rounds")
	}
}

func TestOverheadChargedForHandlers(t *testing.T) {
	m, _ := NewMachine(testConfig(sched.PolicyDefault))
	arena := memory.NewDefaultArena()
	// Working set larger than L1 to force misses.
	g := &stride{region: arena.MustAlloc(256<<10, 0), step: memory.LineSize}
	_ = m.AddThread(&Thread{ID: 1, Gen: g})
	_ = m.PMU(0).Program(0, pmu.EvL1DMiss, 1, func(p *pmu.PMU) uint64 { return 500 })
	m.RunRoundsCtx(context.Background(), 5)
	if m.OverheadCycles() == 0 {
		t.Error("handler cycles should be charged as overhead")
	}
	b := m.Breakdown()
	if b.Stalls[pmu.EvStallOther] == 0 {
		t.Error("overhead should surface as other-stall cycles")
	}
}

func TestTickObserver(t *testing.T) {
	m, _ := NewMachine(testConfig(sched.PolicyDefault))
	arena := memory.NewDefaultArena()
	g := &stride{region: arena.MustAlloc(8<<10, 0), step: memory.LineSize}
	_ = m.AddThread(&Thread{ID: 1, Gen: g})
	ticks := 0
	m.OnTick(func(*Machine) { ticks++ })
	m.RunRoundsCtx(context.Background(), 7)
	if ticks != 7 {
		t.Errorf("ticks = %d, want 7", ticks)
	}
}

func TestResetMetrics(t *testing.T) {
	m, _ := NewMachine(testConfig(sched.PolicyDefault))
	arena := memory.NewDefaultArena()
	g := &stride{region: arena.MustAlloc(8<<10, 0), step: memory.LineSize}
	_ = m.AddThread(&Thread{ID: 1, Gen: g})
	m.RunRoundsCtx(context.Background(), 5)
	m.ResetMetrics()
	b := m.Breakdown()
	if b.Cycles != 0 || m.TotalOps() != 0 || m.OverheadCycles() != 0 {
		t.Error("ResetMetrics should clear counters")
	}
	th := m.Thread(1)
	if th.Cycles != 0 || th.Ops != 0 {
		t.Error("ResetMetrics should clear per-thread metrics")
	}
}

func TestUtilization(t *testing.T) {
	// 4 threads on 8 CPUs: at most half the dispatch slots can be busy.
	m, _ := NewMachine(testConfig(sched.PolicyRoundRobin))
	arena := memory.NewDefaultArena()
	for i := 0; i < 4; i++ {
		g := &stride{region: arena.MustAlloc(8<<10, 0), step: memory.LineSize}
		_ = m.AddThread(&Thread{ID: sched.ThreadID(i), Gen: g})
	}
	m.RunRoundsCtx(context.Background(), 20)
	if u := m.Utilization(); u != 0.5 {
		t.Errorf("utilization = %.2f, want 0.50 (4 pinned threads on 8 CPUs)", u)
	}
	// 16 threads saturate the machine.
	m2, _ := NewMachine(testConfig(sched.PolicyRoundRobin))
	for i := 0; i < 16; i++ {
		g := &stride{region: arena.MustAlloc(8<<10, 0), step: memory.LineSize}
		_ = m2.AddThread(&Thread{ID: sched.ThreadID(i), Gen: g})
	}
	m2.RunRoundsCtx(context.Background(), 20)
	if u := m2.Utilization(); u != 1.0 {
		t.Errorf("utilization = %.2f, want 1.00", u)
	}
}

func TestSchedulingFairness(t *testing.T) {
	// 16 identical always-runnable threads on 8 CPUs: over many rounds
	// every thread must receive roughly the same CPU time.
	m, _ := NewMachine(testConfig(sched.PolicyDefault))
	arena := memory.NewDefaultArena()
	for i := 0; i < 16; i++ {
		g := &stride{region: arena.MustAlloc(8<<10, 0), step: memory.LineSize}
		_ = m.AddThread(&Thread{ID: sched.ThreadID(i), Gen: g})
	}
	m.RunRoundsCtx(context.Background(), 200)
	var min, max uint64 = ^uint64(0), 0
	for _, th := range m.Threads() {
		if th.Cycles < min {
			min = th.Cycles
		}
		if th.Cycles > max {
			max = th.Cycles
		}
	}
	if min == 0 {
		t.Fatal("a thread never ran")
	}
	if float64(max)/float64(min) > 1.3 {
		t.Errorf("unfair scheduling: cycles range %d..%d (ratio %.2f)", min, max, float64(max)/float64(min))
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		m, _ := NewMachine(testConfig(sched.PolicyDefault))
		arena := memory.NewDefaultArena()
		shared := arena.MustAlloc(4096, 0)
		for i := 0; i < 8; i++ {
			g := &sharer{
				rng:     rand.New(rand.NewSource(int64(i))),
				private: arena.MustAlloc(8<<10, 0),
				shared:  shared,
				ratio:   0.3,
			}
			_ = m.AddThread(&Thread{ID: sched.ThreadID(i), Gen: g})
		}
		m.RunRoundsCtx(context.Background(), 30)
		b := m.Breakdown()
		return b.Cycles, b.RemoteStalls()
	}
	c1, r1 := run()
	c2, r2 := run()
	if c1 != c2 || r1 != r2 {
		t.Errorf("simulation not deterministic: (%d,%d) vs (%d,%d)", c1, r1, c2, r2)
	}
}

func TestSMTContentionChargesSiblings(t *testing.T) {
	// Two threads: co-running on one core's SMT contexts must cost SMT
	// stall cycles; the same threads on separate cores must not.
	run := func(cpuA, cpuB topology.CPUID) (uint64, uint64) {
		cfg := testConfig(sched.PolicyRoundRobin)
		cfg.SMTContentionPct = 30
		m, _ := NewMachine(cfg)
		arena := memory.NewDefaultArena()
		for i, id := range []sched.ThreadID{1, 2} {
			g := &stride{region: arena.MustAlloc(8<<10, 0), step: memory.LineSize}
			_ = m.AddThread(&Thread{ID: id, Gen: g})
			_ = i
		}
		_ = m.Scheduler().Migrate(1, cpuA)
		_ = m.Scheduler().Migrate(2, cpuB)
		m.RunRoundsCtx(context.Background(), 20)
		b := m.Breakdown()
		return b.Stalls[pmu.EvStallSMT], b.Insts
	}
	smtSame, _ := run(0, 1)  // SMT siblings of core 0
	smtApart, _ := run(0, 2) // separate cores
	if smtSame == 0 {
		t.Error("co-running SMT siblings should pay contention stalls")
	}
	if smtApart != 0 {
		t.Errorf("threads on separate cores paid %d SMT stall cycles", smtApart)
	}
}

func TestSMTContentionDisabledByDefault(t *testing.T) {
	m, _ := NewMachine(testConfig(sched.PolicyRoundRobin))
	arena := memory.NewDefaultArena()
	for _, id := range []sched.ThreadID{1, 2} {
		g := &stride{region: arena.MustAlloc(8<<10, 0), step: memory.LineSize}
		_ = m.AddThread(&Thread{ID: id, Gen: g})
	}
	_ = m.Scheduler().Migrate(1, 0)
	_ = m.Scheduler().Migrate(2, 1)
	m.RunRoundsCtx(context.Background(), 10)
	if got := m.Breakdown().Stalls[pmu.EvStallSMT]; got != 0 {
		t.Errorf("SMT stalls = %d with the model disabled, want 0", got)
	}
}

func TestClusteredPlacementReducesRemoteStalls(t *testing.T) {
	// End-to-end sanity for the whole substrate: two groups of four
	// threads each share a group region. Scattering the groups across
	// chips (round-robin interleaves them) must produce more remote
	// stalls than pinning each group to its own chip via migration.
	build := func(policy sched.Policy) *Machine {
		m, _ := NewMachine(testConfig(policy))
		arena := memory.NewDefaultArena()
		groups := []memory.Region{arena.MustAlloc(8192, 0), arena.MustAlloc(8192, 0)}
		for i := 0; i < 8; i++ {
			g := &sharer{
				rng:     rand.New(rand.NewSource(int64(i))),
				private: arena.MustAlloc(8<<10, 0),
				shared:  groups[i%2], // interleaved so round-robin scatters each group
				ratio:   0.5,
			}
			_ = m.AddThread(&Thread{ID: sched.ThreadID(i), Gen: g, Partition: i % 2})
		}
		return m
	}

	scattered := build(sched.PolicyRoundRobin)
	scattered.RunRoundsCtx(context.Background(), 100)
	sFrac := scattered.Breakdown().RemoteFraction()

	clustered := build(sched.PolicyRoundRobin)
	// Manually migrate group 0 to chip 0, group 1 to chip 1.
	for i := 0; i < 8; i++ {
		chip := i % 2
		cpu := clustered.Topology().CPUsOfChip(chip)[(i/2)%4]
		if err := clustered.Scheduler().Migrate(sched.ThreadID(i), cpu); err != nil {
			t.Fatal(err)
		}
	}
	clustered.RunRoundsCtx(context.Background(), 100)
	cFrac := clustered.Breakdown().RemoteFraction()

	if sFrac == 0 {
		t.Fatal("scattered run produced no remote stalls; workload too weak")
	}
	if cFrac >= sFrac*0.5 {
		t.Errorf("clustered placement should cut remote stalls by >2x: scattered=%.4f clustered=%.4f", sFrac, cFrac)
	}
}
