package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"threadcluster/internal/errs"
	"threadcluster/internal/experiments"
	"threadcluster/internal/metrics"
	"threadcluster/internal/server"
)

// Fleet checkpoint format: one JSON checkpointFile per in-flight fleet
// job, "<job id>.fleetckpt" in Options.SpoolDir. It records the
// normalized spec plus every cell whose shard has completed, exactly
// like tcsimd's per-job checkpoints — cells are independent machines
// with spec-derived seeds, so a restarted coordinator restores the
// recorded cells, re-partitions the identical ring, and re-runs only
// shards with missing cells, converging on the byte-identical payload
// an uninterrupted run produces. The file is flushed after every shard
// completion and deleted when the job settles. Files that fail to
// parse or disagree with the spec's grid are quarantined
// ("<name>.quarantine", errs.ErrSpoolCorrupt warning) and the job
// starts from scratch; a corrupt checkpoint costs resumability, never
// correctness.

const (
	fleetCheckpointSuffix = ".fleetckpt"
	quarantineSuffix      = ".quarantine"
)

// checkpointFile is the on-disk form of a fleet job's progress.
type checkpointFile struct {
	Spec  server.JobSpec   `json:"spec"`
	Cells []checkpointCell `json:"cells"`
}

// checkpointCell is one completed grid cell.
type checkpointCell struct {
	Index   int              `json:"index"`
	Name    string           `json:"name"`
	Seed    int64            `json:"seed"`
	Metrics metrics.Snapshot `json:"metrics"`
}

// checkpointPath names the job's checkpoint file; "" when spooling is
// disabled.
func (c *Coordinator) checkpointPath(id string) string {
	if c.opt.SpoolDir == "" {
		return ""
	}
	return filepath.Join(c.opt.SpoolDir, id+fleetCheckpointSuffix)
}

// loadCheckpoint restores a prior run's completed cells, keyed by
// full-grid index. Missing file means a fresh start. A file that
// parses but belongs to a different spec (same ID reused) or whose
// cells contradict the grid is quarantined — resuming from it would
// poison the digest.
func (c *Coordinator) loadCheckpoint(norm server.JobSpec, cells []experiments.GridCell) map[int]checkpointCell {
	path := c.checkpointPath(norm.ID)
	if path == "" {
		return nil
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		c.warn(fmt.Errorf("fleet: %w: reading checkpoint %s: %v", errs.ErrSpoolCorrupt, path, err))
		return nil
	}
	completed, err := parseCheckpoint(data, norm, cells)
	if err != nil {
		c.quarantine(path, err)
		return nil
	}
	return completed
}

// parseCheckpoint validates checkpoint bytes against the normalized
// spec and its grid.
func parseCheckpoint(data []byte, norm server.JobSpec, cells []experiments.GridCell) (map[int]checkpointCell, error) {
	var cf checkpointFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return nil, fmt.Errorf("parsing checkpoint: %w", err)
	}
	ckptNorm, err := cf.Spec.Normalize()
	if err != nil {
		return nil, fmt.Errorf("validating checkpointed spec: %w", err)
	}
	want, err := json.Marshal(norm)
	if err != nil {
		return nil, fmt.Errorf("encoding spec: %w", err)
	}
	got, err := json.Marshal(ckptNorm)
	if err != nil {
		return nil, fmt.Errorf("encoding checkpointed spec: %w", err)
	}
	if !bytes.Equal(want, got) {
		return nil, fmt.Errorf("checkpoint spec differs from submitted spec (job ID %q reused?)", norm.ID)
	}
	completed := make(map[int]checkpointCell, len(cf.Cells))
	for _, cc := range cf.Cells {
		if cc.Index < 0 || cc.Index >= len(cells) {
			return nil, fmt.Errorf("cell index %d outside grid of %d cells", cc.Index, len(cells))
		}
		if _, dup := completed[cc.Index]; dup {
			return nil, fmt.Errorf("duplicate cell index %d", cc.Index)
		}
		want := cells[cc.Index]
		if cc.Name != want.Name() || cc.Seed != want.Seed {
			return nil, fmt.Errorf("cell %d is %q seed %d, grid says %q seed %d",
				cc.Index, cc.Name, cc.Seed, want.Name(), want.Seed)
		}
		completed[cc.Index] = cc
	}
	return completed, nil
}

// writeCheckpoint atomically persists the completed-cell set (temp
// file + rename, so a crash mid-write never corrupts a valid
// checkpoint). Failures are warnings, not job failures.
func (c *Coordinator) writeCheckpoint(norm server.JobSpec, completed map[int]checkpointCell) {
	path := c.checkpointPath(norm.ID)
	if path == "" {
		return
	}
	if err := os.MkdirAll(c.opt.SpoolDir, 0o777); err != nil {
		c.warn(fmt.Errorf("fleet: creating spool dir for checkpoint %q: %w", norm.ID, err))
		return
	}
	cells := make([]checkpointCell, 0, len(completed))
	for _, cc := range completed {
		cells = append(cells, cc)
	}
	sort.Slice(cells, func(i, k int) bool { return cells[i].Index < cells[k].Index })
	data, err := json.MarshalIndent(checkpointFile{Spec: norm, Cells: cells}, "", "  ")
	if err != nil {
		c.warn(fmt.Errorf("fleet: marshaling checkpoint %q: %w", norm.ID, err))
		return
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o666); err != nil {
		c.warn(fmt.Errorf("fleet: writing checkpoint %q: %w", norm.ID, err))
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		c.warn(fmt.Errorf("fleet: installing checkpoint %q: %w", norm.ID, err))
	}
}

// removeCheckpoint deletes a settled job's checkpoint, if any.
func (c *Coordinator) removeCheckpoint(id string) {
	path := c.checkpointPath(id)
	if path == "" {
		return
	}
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		c.warn(fmt.Errorf("fleet: removing checkpoint %q: %w", id, err))
	}
}

// quarantine renames a bad checkpoint aside and records the warning.
func (c *Coordinator) quarantine(path string, cause error) {
	werr := fmt.Errorf("fleet: %w: %s: %v", errs.ErrSpoolCorrupt, filepath.Base(path), cause)
	if err := os.Rename(path, path+quarantineSuffix); err != nil {
		werr = fmt.Errorf("%w (quarantine rename failed: %v)", werr, err)
	}
	c.warn(werr)
}
