package fleet

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"threadcluster/internal/server"
)

// Event types the coordinator emits on its NDJSON stream, one JSON
// object per line. The stream is operational output: timestamps come
// from the injected Clock and nothing in it feeds the result payload.
const (
	// EventPhase marks a phase transition: plan -> run -> merge.
	EventPhase = "phase"
	// EventShardLeased: a shard was dispatched to a worker.
	EventShardLeased = "shard_leased"
	// EventShardDone: a shard's payload was accepted and scattered.
	EventShardDone = "shard_done"
	// EventShardRetry: an attempt failed; the shard will be re-leased.
	EventShardRetry = "shard_retry"
	// EventShardSteal: an idle worker was given a duplicate of a
	// straggling shard (first completion wins).
	EventShardSteal = "shard_steal"
	// EventLeaseExpired: a lease ran out; the shard re-enters the
	// pending pool while the stale attempt keeps running (its result,
	// if it ever lands first, is still valid — shard results are pure).
	EventLeaseExpired = "lease_expired"
	// EventWorkerDown / EventWorkerUp track health transitions.
	EventWorkerDown = "worker_down"
	EventWorkerUp   = "worker_up"
	// EventProgress reports cell/shard completion, decile-filtered:
	// only emitted when overall cell progress crosses a 10% boundary,
	// so a 10k-cell sweep logs 10 progress lines, not 10k.
	EventProgress = "progress"
	// EventDone / EventFailed are terminal.
	EventDone   = "done"
	EventFailed = "failed"
)

// Event is one line of the coordinator's NDJSON stream.
type Event struct {
	Time time.Time `json:"time"`
	Type string    `json:"type"`
	Job  string    `json:"job"`
	// Phase is the coordinator phase the event belongs to.
	Phase string `json:"phase,omitempty"`
	// Shard names the virtual-ring slot, "s<slot>" (a string so slot 0
	// survives omitempty).
	Shard string `json:"shard,omitempty"`
	// Worker is the worker the event concerns.
	Worker string `json:"worker,omitempty"`
	// Attempt is the shard's dispatch count, 1-based.
	Attempt int `json:"attempt,omitempty"`
	// CellsDone/CellsTotal and ShardsDone/ShardsTotal carry progress.
	CellsDone   int `json:"cells_done,omitempty"`
	CellsTotal  int `json:"cells_total,omitempty"`
	ShardsDone  int `json:"shards_done,omitempty"`
	ShardsTotal int `json:"shards_total,omitempty"`
	// Error carries the cause on retry/failure events.
	Error string `json:"error,omitempty"`
	// Digest is the payload digest on the done event.
	Digest string `json:"digest,omitempty"`
}

// eventSink serializes events onto one writer. Write errors are
// swallowed: the stream is observability, and a full disk must not
// fail a job whose results are fine.
type eventSink struct {
	mu         sync.Mutex
	enc        *json.Encoder
	clock      server.Clock
	job        string
	phase      string
	lastDecile int
}

func newEventSink(w io.Writer, clock server.Clock, job string) *eventSink {
	s := &eventSink{clock: clock, job: job, lastDecile: -1}
	if w != nil {
		s.enc = json.NewEncoder(w)
	}
	return s
}

// setPhase records the current phase and emits the transition.
func (s *eventSink) setPhase(phase string) {
	s.mu.Lock()
	s.phase = phase
	s.mu.Unlock()
	s.emit(Event{Type: EventPhase})
}

// emit stamps and writes one event. Nil-writer sinks still track phase
// state so the coordinator code never branches on "events enabled".
func (s *eventSink) emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.enc == nil {
		return
	}
	ev.Time = s.clock.Now().UTC()
	ev.Job = s.job
	if ev.Phase == "" {
		ev.Phase = s.phase
	}
	_ = s.enc.Encode(ev)
}

// progress emits a progress event only when overall cell completion
// crossed into a new decile — the significance filter that keeps the
// stream proportional to the job, not to the grid.
func (s *eventSink) progress(cellsDone, cellsTotal, shardsDone, shardsTotal int) {
	if cellsTotal <= 0 {
		return
	}
	decile := cellsDone * 10 / cellsTotal
	s.mu.Lock()
	crossed := decile > s.lastDecile
	if crossed {
		s.lastDecile = decile
	}
	s.mu.Unlock()
	if !crossed {
		return
	}
	s.emit(Event{
		Type:        EventProgress,
		CellsDone:   cellsDone,
		CellsTotal:  cellsTotal,
		ShardsDone:  shardsDone,
		ShardsTotal: shardsTotal,
	})
}
