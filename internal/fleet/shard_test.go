package fleet

import (
	"reflect"
	"testing"

	"threadcluster/internal/experiments"
	"threadcluster/internal/server"
)

func gridCells(t *testing.T, spec server.JobSpec) []experiments.GridCell {
	t.Helper()
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	grid, err := norm.Grid()
	if err != nil {
		t.Fatalf("Grid: %v", err)
	}
	return grid.Cells()
}

// TestPartitionDeterministicDisjointCover: the ring partition is a
// pure function of the cells, every cell lands in exactly one shard,
// and indices stay ascending within each shard.
func TestPartitionDeterministicDisjointCover(t *testing.T) {
	cells := gridCells(t, testSpec("partition"))
	for _, ring := range []int{1, 8, 64, 257} {
		a := Partition(cells, ring)
		b := Partition(cells, ring)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("ring %d: two partitions of the same cells differ", ring)
		}
		seen := make(map[int]bool, len(cells))
		prevSlot := -1
		for _, sh := range a {
			if sh.Slot <= prevSlot || sh.Slot >= ring {
				t.Fatalf("ring %d: slot %d out of order or range", ring, sh.Slot)
			}
			prevSlot = sh.Slot
			for i, idx := range sh.Indices {
				if i > 0 && idx <= sh.Indices[i-1] {
					t.Fatalf("ring %d slot %d: indices not ascending: %v", ring, sh.Slot, sh.Indices)
				}
				if seen[idx] {
					t.Fatalf("ring %d: cell %d in two shards", ring, idx)
				}
				seen[idx] = true
			}
		}
		if len(seen) != len(cells) {
			t.Fatalf("ring %d: %d of %d cells covered", ring, len(seen), len(cells))
		}
	}
}

// TestPartitionIndependentOfFleet: the shard layout depends only on
// the spec and ring size — there is no worker input to Partition at
// all, so two coordinators with different fleets compute the same
// shards. This is the structural half of the digest argument.
func TestPartitionIndependentOfFleet(t *testing.T) {
	specA := testSpec("ring-a")
	specB := testSpec("ring-b") // different job ID, same grid
	a := Partition(gridCells(t, specA), 64)
	b := Partition(gridCells(t, specB), 64)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("shard layout depends on something beyond the grid: %v vs %v", a, b)
	}
}

// TestRendezvousMinimalDisruption: removing one worker from the
// candidate set only reassigns the slots that worker owned; every
// other slot keeps its assignment.
func TestRendezvousMinimalDisruption(t *testing.T) {
	pick := func(slot int, names []string) string {
		bestName := ""
		var bestScore uint64
		for _, n := range names {
			if s := rendezvousScore(slot, n); bestName == "" || s > bestScore {
				bestName, bestScore = n, s
			}
		}
		return bestName
	}
	all := []string{"w0", "w1", "w2"}
	without2 := []string{"w0", "w1"}
	moved, owned := 0, 0
	for slot := 0; slot < 64; slot++ {
		before := pick(slot, all)
		after := pick(slot, without2)
		if before == "w2" {
			owned++
			continue
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d slots not owned by the removed worker still moved", moved)
	}
	if owned == 0 {
		t.Fatalf("removed worker owned no slots; test is vacuous")
	}
}

// TestCellKeyIsFullGridIdentity: the hash key carries the cell's name
// and seed, so a shard-scoped job that preserved full-grid identities
// hashes onto the same slots the coordinator planned.
func TestCellKeyIsFullGridIdentity(t *testing.T) {
	cells := gridCells(t, testSpec("key"))
	if cellKey(cells[0]) == cellKey(cells[1]) {
		t.Fatalf("distinct cells share a key: %q", cellKey(cells[0]))
	}
	got := cellKey(experiments.GridCell{Workload: "w", Policy: 0, Topo: "t", Seed: 42})
	if got != "w/default/t#42" {
		t.Fatalf("cellKey = %q, want w/default/t#42", got)
	}
}
