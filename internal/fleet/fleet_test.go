package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"threadcluster/internal/errs"
	"threadcluster/internal/experiments"
	"threadcluster/internal/metrics"
	"threadcluster/internal/server"
	"threadcluster/internal/sweep"
)

// systemClock: tests may read wall time (the lint suite exempts
// _test.go files); the library under test still only sees the
// injected Clock.
type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

// testSpec is a 6-cell grid (2 workloads x 3 policies) small enough to
// run many times per test binary.
func testSpec(id string) server.JobSpec {
	return server.JobSpec{
		ID:            id,
		Workloads:     []string{"microbenchmark", "volano"},
		Policies:      []string{"default", "round-robin", "clustered"},
		Topos:         []string{"open720"},
		Seed:          42,
		WarmRounds:    2,
		EngineRounds:  8,
		MeasureRounds: 6,
	}
}

// offlinePayload runs the spec on the offline `tcsim sweep` path: the
// byte-level ground truth every fleet configuration must reproduce.
func offlinePayload(t *testing.T, spec server.JobSpec) ([]byte, string) {
	t.Helper()
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	grid, err := norm.Grid()
	if err != nil {
		t.Fatalf("Grid: %v", err)
	}
	cells, results, merged, err := experiments.RunGrid(context.Background(), grid, 2)
	if err != nil {
		t.Fatalf("RunGrid: %v", err)
	}
	payload, err := server.BuildResultPayload(cells, results, merged)
	if err != nil {
		t.Fatalf("BuildResultPayload: %v", err)
	}
	data, err := payload.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	return data, payload.Digest
}

// runShardOffline executes a shard-scoped spec in-process, exactly the
// way a tcsimd worker would: compile the subset with full-grid
// identities, run it, build the canonical payload.
func runShardOffline(ctx context.Context, spec server.JobSpec) (server.ResultPayload, error) {
	norm, err := spec.Normalize()
	if err != nil {
		return server.ResultPayload{}, err
	}
	grid, err := norm.Grid()
	if err != nil {
		return server.ResultPayload{}, err
	}
	cells, tasks, err := grid.SubsetTasks(norm.Cells)
	if err != nil {
		return server.ResultPayload{}, err
	}
	results, err := sweep.Run(ctx, tasks, 1)
	if err != nil {
		return server.ResultPayload{}, err
	}
	return server.BuildResultPayload(cells, results, sweep.Merged(results))
}

// fakeWorker is an in-process Worker with failure-injection hooks.
type fakeWorker struct {
	name string
	// pingErr, when set, keeps the worker marked down.
	pingErr atomic.Value // error
	// failNext counts attempts to fail before running normally.
	failNext atomic.Int64
	// hangFirst blocks the worker's first RunShard until ctx cancels.
	hangFirst atomic.Bool
	// cellsRun counts grid cells this worker actually executed.
	cellsRun atomic.Int64
	// shardsRun counts RunShard calls that ran to completion.
	shardsRun atomic.Int64
}

func newFakeWorker(name string) *fakeWorker { return &fakeWorker{name: name} }

func (w *fakeWorker) Name() string { return w.name }

func (w *fakeWorker) Ping(ctx context.Context) error {
	if err, _ := w.pingErr.Load().(error); err != nil {
		return err
	}
	return nil
}

func (w *fakeWorker) RunShard(ctx context.Context, spec server.JobSpec) (server.ResultPayload, error) {
	if w.hangFirst.CompareAndSwap(true, false) {
		<-ctx.Done()
		return server.ResultPayload{}, ctx.Err()
	}
	if w.failNext.Add(-1) >= 0 {
		return server.ResultPayload{}, fmt.Errorf("fake worker %s: injected failure", w.name)
	}
	w.failNext.Add(1) // undo the decrement below zero
	p, err := runShardOffline(ctx, spec)
	if err == nil {
		w.cellsRun.Add(int64(len(p.Tasks)))
		w.shardsRun.Add(1)
	}
	return p, err
}

// fastOptions are coordinator knobs tuned for test latency.
func fastOptions() Options {
	return Options{
		Clock:         systemClock{},
		VirtualShards: 8,
		Poll:          time.Millisecond,
		RetryBase:     time.Millisecond,
		PingTimeout:   100 * time.Millisecond,
		Lease:         time.Minute,
		StealAfter:    time.Minute,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]Worker{newFakeWorker("a")}, Options{}); !errors.Is(err, errs.ErrBadConfig) {
		t.Errorf("missing clock: got %v, want ErrBadConfig", err)
	}
	if _, err := New(nil, fastOptions()); !errors.Is(err, errs.ErrBadConfig) {
		t.Errorf("no workers: got %v, want ErrBadConfig", err)
	}
	dup := []Worker{newFakeWorker("a"), newFakeWorker("a")}
	if _, err := New(dup, fastOptions()); !errors.Is(err, errs.ErrBadConfig) {
		t.Errorf("duplicate names: got %v, want ErrBadConfig", err)
	}
}

func TestRunRejectsShardScopedSpec(t *testing.T) {
	c, err := New([]Worker{newFakeWorker("a")}, fastOptions())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	spec := testSpec("pre-sharded")
	spec.Cells = []int{0, 1}
	if _, _, err := c.Run(context.Background(), spec); !errors.Is(err, errs.ErrBadConfig) {
		t.Fatalf("shard-scoped spec: got %v, want ErrBadConfig", err)
	}
}

// TestFleetRetriesFailedShards: a worker that fails its first attempts
// recovers via the deterministic retry path and still produces the
// offline bytes.
func TestFleetRetriesFailedShards(t *testing.T) {
	w := newFakeWorker("flaky")
	w.failNext.Store(2)
	opt := fastOptions()
	opt.MaxAttempts = 8
	var events bytes.Buffer
	opt.Events = &events
	c, err := New([]Worker{w}, opt)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	want, _ := offlinePayload(t, testSpec("retry-job"))
	_, got, err := c.Run(context.Background(), testSpec("retry-job"))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fleet payload differs from offline after retries")
	}
	if !strings.Contains(events.String(), `"shard_retry"`) {
		t.Fatalf("no shard_retry event in stream:\n%s", events.String())
	}
}

// TestFleetFailsWhenAllWorkersDead: with every worker refusing pings
// and failing attempts, the job fails unavailable instead of spinning.
func TestFleetFailsWhenAllWorkersDead(t *testing.T) {
	w := newFakeWorker("corpse")
	w.failNext.Store(1 << 30)
	w.pingErr.Store(errors.New("no route to host"))
	opt := fastOptions()
	opt.MaxAttempts = 1 << 30 // force the starvation path, not the attempt budget
	c, err := New([]Worker{w}, opt)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	_, _, err = c.Run(context.Background(), testSpec("doomed"))
	if !errors.Is(err, errs.ErrUnavailable) {
		t.Fatalf("all workers dead: got %v, want ErrUnavailable", err)
	}
}

// TestFleetStealsStragglers: one worker wedges on its first shard; an
// idle peer is handed a duplicate and the job finishes with the
// offline bytes. Duplicate completions are safe because shard results
// are pure functions of the spec.
func TestFleetStealsStragglers(t *testing.T) {
	slow := newFakeWorker("slow")
	slow.hangFirst.Store(true)
	fast := newFakeWorker("fast")
	opt := fastOptions()
	opt.StealAfter = 5 * time.Millisecond
	opt.Lease = time.Hour // recovery must come from theft, not lease expiry
	var events bytes.Buffer
	opt.Events = &events
	reg := metrics.NewRegistry()
	opt.Registry = reg
	c, err := New([]Worker{slow, fast}, opt)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	want, _ := offlinePayload(t, testSpec("steal-job"))
	_, got, err := c.Run(context.Background(), testSpec("steal-job"))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fleet payload differs from offline after steal")
	}
	if !strings.Contains(events.String(), `"shard_steal"`) {
		t.Fatalf("no shard_steal event in stream:\n%s", events.String())
	}
	var expo bytes.Buffer
	if err := reg.WritePrometheus(&expo); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if !strings.Contains(expo.String(), `fleet_shards_stolen_total{worker="fast"} 1`) {
		t.Fatalf("steal not counted:\n%s", expo.String())
	}
}

// TestFleetLeaseExpiry: a wedged primary's lease runs out, the shard
// re-enters the pool and a peer completes it.
func TestFleetLeaseExpiry(t *testing.T) {
	slow := newFakeWorker("wedged")
	slow.hangFirst.Store(true)
	fast := newFakeWorker("healthy")
	opt := fastOptions()
	opt.Lease = 5 * time.Millisecond
	opt.StealAfter = time.Hour // recovery must come from the lease, not theft
	var events bytes.Buffer
	opt.Events = &events
	c, err := New([]Worker{slow, fast}, opt)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	want, _ := offlinePayload(t, testSpec("lease-job"))
	_, got, err := c.Run(context.Background(), testSpec("lease-job"))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fleet payload differs from offline after lease expiry")
	}
	if !strings.Contains(events.String(), `"lease_expired"`) {
		t.Fatalf("no lease_expired event in stream:\n%s", events.String())
	}
}

// cancelAfterDone cancels a context once n shard_done events passed
// through the stream — a deterministic stand-in for kill -9 on the
// coordinator.
type cancelAfterDone struct {
	n      int
	cancel context.CancelFunc
}

func (c *cancelAfterDone) Write(p []byte) (int, error) {
	if bytes.Contains(p, []byte(`"type":"shard_done"`)) {
		c.n--
		if c.n == 0 {
			c.cancel()
		}
	}
	return len(p), nil
}

// TestFleetCheckpointResume: a coordinator killed mid-sweep leaves a
// checkpoint; a fresh coordinator over the same spool resumes, runs
// only the missing cells, and converges on the uninterrupted digest.
func TestFleetCheckpointResume(t *testing.T) {
	spool := t.TempDir()
	spec := testSpec("") // empty ID: exercises the deterministic derived ID
	want, wantDigest := offlinePayload(t, spec)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt := fastOptions()
	opt.SpoolDir = spool
	opt.Events = &cancelAfterDone{n: 1, cancel: cancel}
	w1 := newFakeWorker("a")
	c1, err := New([]Worker{w1}, opt)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, _, err := c1.Run(ctx, spec); err == nil {
		t.Fatalf("interrupted run unexpectedly succeeded")
	}

	ckpts, err := filepath.Glob(filepath.Join(spool, "*"+fleetCheckpointSuffix))
	if err != nil || len(ckpts) != 1 {
		t.Fatalf("expected one checkpoint in %s, got %v (err %v)", spool, ckpts, err)
	}

	opt2 := fastOptions()
	opt2.SpoolDir = spool
	w2 := newFakeWorker("a")
	c2, err := New([]Worker{w2}, opt2)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	payload, got, err := c2.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed payload differs from offline")
	}
	if payload.Digest != wantDigest {
		t.Fatalf("resumed digest %s, want %s", payload.Digest, wantDigest)
	}
	total := int64(len(spec.Workloads) * len(spec.Policies) * len(spec.Topos))
	if ran := w2.cellsRun.Load(); ran >= total {
		t.Fatalf("resume re-ran %d of %d cells; checkpoint was not used", ran, total)
	}
	if _, err := os.Stat(ckpts[0]); !os.IsNotExist(err) {
		t.Fatalf("checkpoint %s not removed after settle (err %v)", ckpts[0], err)
	}
	if warns := c2.Warnings(); len(warns) != 0 {
		t.Fatalf("resume produced warnings: %v", warns)
	}
}

// TestFleetQuarantinesCorruptCheckpoint: garbage where a checkpoint
// should be is quarantined with a structured warning, and the run
// starts clean.
func TestFleetQuarantinesCorruptCheckpoint(t *testing.T) {
	spool := t.TempDir()
	spec := testSpec("corrupt-ckpt")
	path := filepath.Join(spool, spec.ID+fleetCheckpointSuffix)
	if err := os.WriteFile(path, []byte("{not json"), 0o666); err != nil {
		t.Fatalf("planting corrupt checkpoint: %v", err)
	}
	opt := fastOptions()
	opt.SpoolDir = spool
	c, err := New([]Worker{newFakeWorker("a")}, opt)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	want, _ := offlinePayload(t, spec)
	_, got, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("payload differs from offline after quarantine")
	}
	warns := c.Warnings()
	if len(warns) != 1 || !errors.Is(warns[0], errs.ErrSpoolCorrupt) {
		t.Fatalf("want one ErrSpoolCorrupt warning, got %v", warns)
	}
	if _, err := os.Stat(path + quarantineSuffix); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
}

// TestFleetMetricsExposition: the fleet gauges and counters render a
// valid Prometheus exposition with per-worker series.
func TestFleetMetricsExposition(t *testing.T) {
	reg := metrics.NewRegistry()
	opt := fastOptions()
	opt.Registry = reg
	c, err := New([]Worker{newFakeWorker("a"), newFakeWorker("b")}, opt)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, _, err := c.Run(context.Background(), testSpec("metrics-job")); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := buf.String()
	if err := metrics.CheckPrometheusText(text); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, text)
	}
	for _, want := range []string{
		`fleet_worker_up{worker="a"} 1`,
		`fleet_worker_up{worker="b"} 1`,
		`fleet_worker_inflight{worker="a"} 0`,
		`fleet_workers_live 2`,
		`fleet_shards_completed_total{worker=`,
		`fleet_shards_leased_total{worker=`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}
