// Package fleet coordinates one simulation grid across many tcsimd
// workers without giving up the repo's byte-identical determinism
// contract. The coordinator normalizes a server.JobSpec through the
// exact Validate path tcsimd uses, hashes the grid's cells onto a
// fixed virtual-shard ring (a property of the job, not of the fleet),
// dispatches shard-scoped jobs — full-grid cell indices riding in
// JobSpec.Cells, so every cell keeps the name and seed the whole grid
// would assign — and scatters completed shards back into full-grid
// positions. The merged payload and its sha256 digest equal an offline
// experiments.RunGrid run of the same spec for any fleet size, worker
// arrival order, retry schedule, lease expiry, steal or crash pattern,
// because every mechanism only ever changes *where and when* a pure
// function is evaluated, never *what* it evaluates (DESIGN.md §11).
//
// Robustness is first-class rather than bolted on: failed attempts
// retry with a deterministic seed-derived backoff, leases expire so a
// hung worker's shards re-enter the pool, idle workers steal duplicate
// attempts of stragglers (first completion wins; duplicates are safe
// because shard results are pure), and a spool checkpoint lets a
// killed coordinator resume to the uninterrupted digest.
package fleet

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"threadcluster/internal/errs"
	"threadcluster/internal/metrics"
	"threadcluster/internal/server"
)

// Options configures a Coordinator. The zero value of every field but
// Clock is usable; Clock is required (cmd/tcfleet passes the system
// clock, tests a server.FakeClock — internal/fleet itself stays
// wallclock-clean per DESIGN.md §6).
type Options struct {
	// Clock is the coordinator's only source of wall time: leases,
	// steal timers and event timestamps. Required.
	Clock server.Clock

	// Registry receives the fleet_* operational metrics; nil allocates
	// a private one (Registry() exposes it either way).
	Registry *metrics.Registry

	// VirtualShards is the ring size cells are hashed onto — the unit
	// of dispatch, retry and theft. Default 64. Must not change
	// between a crash and a resume of the same job (the checkpoint is
	// per-cell, so even that only costs re-execution, not
	// correctness).
	VirtualShards int

	// MaxAttempts bounds failed attempts per shard before the job
	// fails. Default 4.
	MaxAttempts int

	// WorkerSlots is how many shards one worker runs concurrently.
	// Default 1.
	WorkerSlots int

	// Lease is how long a dispatched shard may run before the
	// coordinator re-pools it (the stale attempt keeps running; its
	// completion, if it lands first, still counts). Default 2m.
	Lease time.Duration

	// StealAfter is how long a shard must be running before an idle
	// worker may be handed a duplicate attempt. Default 30s.
	StealAfter time.Duration

	// Poll is the orchestrator loop's idle tick. Default 200ms.
	Poll time.Duration

	// RetryBase seeds the per-shard retry backoff (exponential,
	// deterministically jittered from the job seed). Default 250ms.
	RetryBase time.Duration

	// PingTimeout bounds one health probe of a down worker. Default 2s.
	PingTimeout time.Duration

	// SpoolDir holds "<job id>.fleetckpt" checkpoints; "" disables
	// crash resume.
	SpoolDir string

	// Events receives the NDJSON event stream; nil discards it.
	Events io.Writer

	// Sleep waits out one poll tick or retry delay; nil uses a
	// ctx-aware timer. Tests inject it to drive a FakeClock instead of
	// sleeping.
	Sleep func(ctx context.Context, d time.Duration) error
}

// withDefaults resolves the zero-value knobs.
func (o Options) withDefaults() Options {
	if o.Registry == nil {
		o.Registry = metrics.NewRegistry()
	}
	if o.VirtualShards <= 0 {
		o.VirtualShards = 64
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.WorkerSlots <= 0 {
		o.WorkerSlots = 1
	}
	if o.Lease <= 0 {
		o.Lease = 2 * time.Minute
	}
	if o.StealAfter <= 0 {
		o.StealAfter = 30 * time.Second
	}
	if o.Poll <= 0 {
		o.Poll = 200 * time.Millisecond
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 250 * time.Millisecond
	}
	if o.PingTimeout <= 0 {
		o.PingTimeout = 2 * time.Second
	}
	return o
}

// Coordinator shards grid jobs across a fixed set of workers. One
// job runs at a time (Run serializes); the worker set is fixed at
// construction, though workers may die and return freely during a run.
type Coordinator struct {
	opt     Options
	workers []Worker

	runGate sync.Mutex // serializes Run

	mu       sync.Mutex
	live     map[string]bool // gauge-visible health, by worker name
	inflight map[string]int  // gauge-visible dispatch count, by worker name
	warnings []error

	// per-worker counters, created up front so every worker exports a
	// full series set from the first scrape
	mLeased    map[string]*metrics.Counter
	mStolen    map[string]*metrics.Counter
	mRetried   map[string]*metrics.Counter
	mCompleted map[string]*metrics.Counter
	mExpired   map[string]*metrics.Counter
}

// New builds a coordinator over the given workers. Worker names must
// be unique (rendezvous assignment and the metrics series key on
// them) and at least one worker is required.
func New(workers []Worker, opt Options) (*Coordinator, error) {
	if opt.Clock == nil {
		return nil, fmt.Errorf("fleet: %w: Options.Clock is required", errs.ErrBadConfig)
	}
	if len(workers) == 0 {
		return nil, fmt.Errorf("fleet: %w: at least one worker required", errs.ErrBadConfig)
	}
	c := &Coordinator{
		opt:        opt.withDefaults(),
		workers:    workers,
		live:       make(map[string]bool, len(workers)),
		inflight:   make(map[string]int, len(workers)),
		mLeased:    make(map[string]*metrics.Counter, len(workers)),
		mStolen:    make(map[string]*metrics.Counter, len(workers)),
		mRetried:   make(map[string]*metrics.Counter, len(workers)),
		mCompleted: make(map[string]*metrics.Counter, len(workers)),
		mExpired:   make(map[string]*metrics.Counter, len(workers)),
	}
	reg := c.opt.Registry
	for _, w := range workers {
		name := w.Name()
		if name == "" {
			return nil, fmt.Errorf("fleet: %w: worker with empty name", errs.ErrBadConfig)
		}
		if _, dup := c.live[name]; dup {
			return nil, fmt.Errorf("fleet: %w: duplicate worker name %q", errs.ErrBadConfig, name)
		}
		c.live[name] = true // optimistic until a probe or failure says otherwise
		labels := metrics.Labels{"worker": name}
		c.mLeased[name] = reg.Counter("fleet_shards_leased_total", labels)
		c.mStolen[name] = reg.Counter("fleet_shards_stolen_total", labels)
		c.mRetried[name] = reg.Counter("fleet_shard_retries_total", labels)
		c.mCompleted[name] = reg.Counter("fleet_shards_completed_total", labels)
		c.mExpired[name] = reg.Counter("fleet_leases_expired_total", labels)
		reg.RegisterGaugeFunc("fleet_worker_up", labels, func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			if c.live[name] {
				return 1
			}
			return 0
		})
		reg.RegisterGaugeFunc("fleet_worker_inflight", labels, func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(c.inflight[name])
		})
	}
	reg.RegisterGaugeFunc("fleet_workers_live", nil, func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		n := 0
		for _, up := range c.live {
			if up {
				n++
			}
		}
		return float64(n)
	})
	return c, nil
}

// Registry exposes the coordinator's metrics registry (the configured
// one, or the private default) for cmd/tcfleet's exposition dump.
func (c *Coordinator) Registry() *metrics.Registry { return c.opt.Registry }

// Warnings returns the non-fatal problems accumulated so far —
// checkpoint quarantines and write failures — in occurrence order.
func (c *Coordinator) Warnings() []error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]error(nil), c.warnings...)
}

func (c *Coordinator) warn(err error) {
	c.mu.Lock()
	c.warnings = append(c.warnings, err)
	c.mu.Unlock()
}

// setLive flips a worker's gauge-visible health bit; returns true when
// the state changed.
func (c *Coordinator) setLive(name string, up bool) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.live[name] == up {
		return false
	}
	c.live[name] = up
	return true
}

func (c *Coordinator) isLive(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.live[name]
}

func (c *Coordinator) addInflight(name string, delta int) {
	c.mu.Lock()
	c.inflight[name] += delta
	c.mu.Unlock()
}

func (c *Coordinator) inflightOf(name string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inflight[name]
}

// sleep waits out d via the injected Sleep or a ctx-aware timer.
// time.NewTimer (not time.Now) keeps this inside the wallclock
// contract: durations are scheduling, not timestamps.
func (c *Coordinator) sleep(ctx context.Context, d time.Duration) error {
	if c.opt.Sleep != nil {
		return c.opt.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
