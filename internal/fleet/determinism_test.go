package fleet

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"threadcluster/internal/client"
	"threadcluster/internal/server"
	"threadcluster/internal/sweep"
)

// killableWorker is a real internal/server instance behind httptest
// with a kill switch: once killed it drops every open connection and
// answers further requests 503, which is what a SIGKILLed tcsimd looks
// like to the coordinator (transport errors, then refused probes).
type killableWorker struct {
	name string
	srv  *server.Server
	ts   *httptest.Server
	dead atomic.Bool
}

func startKillableWorker(t *testing.T, name string) *killableWorker {
	t.Helper()
	srv, err := server.New(server.Options{
		Clock:      server.NewFakeClock(time.Unix(1_700_000_000, 0).UTC()),
		JobWorkers: 2,
	})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	if err := srv.Start(context.Background()); err != nil {
		t.Fatalf("server.Start: %v", err)
	}
	kw := &killableWorker{name: name, srv: srv}
	h := srv.Handler()
	kw.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if kw.dead.Load() {
			http.Error(w, "killed", http.StatusServiceUnavailable)
			return
		}
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		kw.ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return kw
}

// kill simulates SIGKILL: in-flight streams break mid-read and the
// endpoint turns into a 503 wall.
func (kw *killableWorker) kill() {
	kw.dead.Store(true)
	kw.ts.CloseClientConnections()
}

// killOnDone triggers kill functions when the Nth shard_done event
// crosses the stream — a deterministic schedule expressed in units of
// job progress rather than wall time.
type killOnDone struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	count int
	kills map[int]func()
}

func (k *killOnDone) Write(p []byte) (int, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.buf.Write(p)
	if bytes.Contains(p, []byte(`"type":"shard_done"`)) {
		k.count++
		if fn := k.kills[k.count]; fn != nil {
			fn()
		}
	}
	return len(p), nil
}

func (k *killOnDone) String() string {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.buf.String()
}

// TestFleetDigestMatchesOffline is the tentpole's differential test:
// the same spec coordinated over fleets of 1, 2 and 5 real workers —
// with seed-derived worker-kill schedules striking mid-sweep on the
// multi-worker fleets — produces payload bytes and digest identical
// to the offline single-node run. Runs under -race in CI.
func TestFleetDigestMatchesOffline(t *testing.T) {
	if testing.Short() {
		t.Skip("differential determinism test runs full grids")
	}
	spec := testSpec("") // derived ID keeps runs independent per size via fresh spools
	want, wantDigest := offlinePayload(t, spec)

	for _, size := range []int{1, 2, 5} {
		size := size
		t.Run(fmt.Sprintf("fleet-%d", size), func(t *testing.T) {
			workers := make([]Worker, 0, size)
			kws := make([]*killableWorker, 0, size)
			for i := 0; i < size; i++ {
				kw := startKillableWorker(t, fmt.Sprintf("w%d", i))
				kws = append(kws, kw)
				backoff := client.Backoff{Retries: 3, Seed: spec.Seed + int64(i), Base: time.Millisecond}
				workers = append(workers, NewHTTPWorker(kw.name, kw.ts.URL, nil, backoff))
			}

			// Kill schedule: a pure function of (seed, fleet size).
			// Worker 0 always survives so the job can finish.
			killer := &killOnDone{kills: map[int]func(){}}
			if size > 1 {
				r := uint64(sweep.DeriveSeed(spec.Seed, size))
				victims := 1 + int(r%2) // 1 or 2 kills
				for i := 0; i < victims && i < size-1; i++ {
					v := 1 + int(uint64(sweep.DeriveSeed(spec.Seed, size*10+i))%uint64(size-1))
					kw := kws[v]
					killer.kills[i+1] = func() { kw.kill() }
				}
			}

			opt := fastOptions()
			opt.MaxAttempts = 10
			opt.Events = killer
			c, err := New(workers, opt)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			payload, got, err := c.Run(context.Background(), spec)
			if err != nil {
				t.Fatalf("Run (fleet %d): %v\nevents:\n%s", size, err, killer.String())
			}
			if payload.Digest != wantDigest {
				t.Fatalf("fleet %d digest %s, want %s", size, payload.Digest, wantDigest)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("fleet %d payload bytes differ from offline", size)
			}
		})
	}
}
