package fleet

import (
	"strconv"

	"threadcluster/internal/experiments"
)

// Shard is one unit of fleet dispatch: the grid cells whose canonical
// keys hash onto one slot of the fixed virtual-shard ring. The ring
// size is a property of the job (Options.VirtualShards), never of the
// fleet, so the same spec always partitions into the same shards no
// matter how many workers are registered, which workers are alive, or
// in what order results arrive — the first half of the digest argument
// (DESIGN.md §11).
type Shard struct {
	// Slot is the shard's position on the virtual ring.
	Slot int
	// Indices are the full-grid cell indices hashed onto the slot,
	// ascending.
	Indices []int
}

// Partition hashes every cell onto the virtual ring and returns the
// non-empty shards in slot order. Cells keep their full-grid indices;
// a shard-scoped JobSpec carries exactly these indices so the worker
// derives the same per-cell names and seeds the whole grid would.
func Partition(cells []experiments.GridCell, virtualShards int) []Shard {
	slots := make([][]int, virtualShards)
	for i, cell := range cells {
		s := int(hash64(cellKey(cell)) % uint64(virtualShards))
		slots[s] = append(slots[s], i)
	}
	shards := make([]Shard, 0, len(slots))
	for slot, idx := range slots {
		if len(idx) > 0 {
			shards = append(shards, Shard{Slot: slot, Indices: idx})
		}
	}
	return shards
}

// cellKey is the canonical identity a cell is hashed by: its grid name
// plus its derived seed. Both are pure functions of the normalized
// spec, so the key — and therefore the shard layout — is too.
func cellKey(c experiments.GridCell) string {
	return c.Name() + "#" + strconv.FormatInt(c.Seed, 10)
}

// hash64 is FNV-1a: stable across processes and Go versions (unlike
// maphash), cheap, and good enough to spread cells over the ring.
func hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// rendezvousScore ranks worker name for shard slot: the coordinator
// leases a slot to the live worker with the highest score (highest
// random weight), so assignment is stable under fleet resizes — only
// slots whose top-ranked worker changed move, the classic
// rendezvous-hashing property.
func rendezvousScore(slot int, name string) uint64 {
	return hash64(strconv.Itoa(slot) + "|" + name)
}
