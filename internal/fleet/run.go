package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"threadcluster/internal/errs"
	"threadcluster/internal/experiments"
	"threadcluster/internal/server"
	"threadcluster/internal/sweep"
)

// starveRounds is how many consecutive loop ticks with work pending,
// nothing in flight and no live worker the coordinator tolerates
// (probing every tick) before declaring the fleet gone.
const starveRounds = 10

// shardState tracks one shard through the dispatch loop.
type shardState int

const (
	shardPending shardState = iota
	shardRunning
	shardDone
)

// shardRun is the coordinator-side state of one virtual-ring shard.
type shardRun struct {
	shard     Shard
	remaining []int // cells still to compute (checkpoint-filtered)

	state      shardState
	attempts   int // dispatches, lifetime
	failures   int // failed completions, lifetime
	inFlight   int // outstanding attempts (primary + steals)
	stolen     bool
	worker     string // primary lessee while running
	leaseStart time.Time
	leaseUntil time.Time
	notBefore  time.Time      // retry backoff gate while pending
	tried      map[string]int // failures/expiries per worker, for placement
}

func (sh *shardRun) name() string { return fmt.Sprintf("s%d", sh.shard.Slot) }

// completion is one attempt's outcome, delivered on the run's channel.
type completion struct {
	slot    int
	worker  string
	steal   bool
	payload server.ResultPayload
	err     error
}

// runState is the per-job mutable state of one Run call. Only the
// orchestrator goroutine touches it; attempt goroutines communicate
// exclusively through the completions channel.
type runState struct {
	c         *Coordinator
	ctx       context.Context // cancelled when Run returns; bounds every attempt
	norm      server.JobSpec
	cells     []experiments.GridCell
	results   []sweep.Result
	completed map[int]checkpointCell
	runs      []*shardRun
	bySlot    map[int]*shardRun
	comps     chan completion
	sink      *eventSink

	doneShards int
	cellsDone  int
}

// Run executes one grid job across the fleet and returns the merged
// payload, its canonical bytes (exactly what tcsimd's result endpoint
// would serve) and any error. The payload and digest are byte-identical
// to an offline experiments.RunGrid of the same spec regardless of
// fleet size, worker deaths, retries, lease expiries, steals or a
// previous coordinator crash resumed from the spool checkpoint.
//
// The spec must not be shard-scoped already (Cells set) — sharding is
// the coordinator's job. An empty ID gets a deterministic spec-derived
// one, so re-running the same spec resumes its own checkpoint.
func (c *Coordinator) Run(ctx context.Context, spec server.JobSpec) (server.ResultPayload, []byte, error) {
	c.runGate.Lock()
	defer c.runGate.Unlock()

	norm, err := spec.Normalize()
	if err != nil {
		return server.ResultPayload{}, nil, err
	}
	if len(norm.Cells) > 0 {
		return server.ResultPayload{}, nil, fmt.Errorf(
			"fleet: %w: spec is already shard-scoped (cells set); submit the whole grid", errs.ErrBadConfig)
	}
	if norm.ID == "" {
		norm.ID = deriveJobID(norm)
	}
	grid, err := norm.Grid()
	if err != nil {
		return server.ResultPayload{}, nil, err
	}
	cells := grid.Cells()

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	st := &runState{
		c:       c,
		ctx:     runCtx,
		norm:    norm,
		cells:   cells,
		results: make([]sweep.Result, len(cells)),
		bySlot:  make(map[int]*shardRun),
		sink:    newEventSink(c.opt.Events, c.opt.Clock, norm.ID),
	}

	// Resume: restore checkpointed cells into their grid positions.
	st.completed = c.loadCheckpoint(norm, cells)
	if st.completed == nil {
		st.completed = make(map[int]checkpointCell)
	}
	indices := make([]int, 0, len(st.completed))
	for idx := range st.completed {
		indices = append(indices, idx)
	}
	sort.Ints(indices)
	for _, idx := range indices {
		cc := st.completed[idx]
		st.results[idx] = sweep.Result{Name: cc.Name, Seed: cc.Seed, Metrics: cc.Metrics}
	}
	st.cellsDone = len(indices)

	// Plan: the ring partition, minus already-checkpointed cells.
	for _, sh := range Partition(cells, c.opt.VirtualShards) {
		r := &shardRun{shard: sh, tried: make(map[string]int)}
		for _, idx := range sh.Indices {
			if _, ok := st.completed[idx]; !ok {
				r.remaining = append(r.remaining, idx)
			}
		}
		if len(r.remaining) == 0 {
			r.state = shardDone
			st.doneShards++
		}
		st.runs = append(st.runs, r)
		st.bySlot[sh.Slot] = r
	}
	st.comps = make(chan completion, 2*len(st.runs)+len(c.workers))

	st.sink.setPhase("plan")
	st.sink.emit(Event{
		Type:        EventProgress,
		CellsDone:   st.cellsDone,
		CellsTotal:  len(cells),
		ShardsDone:  st.doneShards,
		ShardsTotal: len(st.runs),
	})

	fail := func(err error) (server.ResultPayload, []byte, error) {
		// The checkpoint survives a failure: a later run of the same
		// spec resumes from the cells already banked.
		st.sink.emit(Event{Type: EventFailed, Error: err.Error()})
		return server.ResultPayload{}, nil, err
	}

	st.sink.setPhase("run")
	barren := 0
	for st.doneShards < len(st.runs) {
		if err := ctx.Err(); err != nil {
			return fail(fmt.Errorf("fleet: job %q interrupted: %w", norm.ID, err))
		}
		// Drain everything that finished since the last tick.
		for drained := true; drained; {
			select {
			case comp := <-st.comps:
				if err := st.handle(comp, c.opt.Clock.Now()); err != nil {
					return fail(err)
				}
			default:
				drained = false
			}
		}
		if st.doneShards == len(st.runs) {
			break
		}
		now := c.opt.Clock.Now()
		st.expireLeases(now)
		st.probeDown(ctx)
		st.dispatchPending(now)
		st.stealStragglers(now)

		if st.anyInFlight() || st.anyLive() {
			barren = 0
		} else {
			barren++
			if barren >= starveRounds {
				return fail(fmt.Errorf("fleet: %w: no live workers after %d probe rounds (%d/%d shards done)",
					errs.ErrUnavailable, barren, st.doneShards, len(st.runs)))
			}
		}

		// Sleep out the tick, but wake immediately on a completion.
		tick := make(chan struct{})
		go func() {
			_ = c.sleep(runCtx, c.opt.Poll)
			close(tick)
		}()
		select {
		case comp := <-st.comps:
			if err := st.handle(comp, c.opt.Clock.Now()); err != nil {
				return fail(err)
			}
		case <-tick:
		case <-ctx.Done():
		}
	}

	st.sink.setPhase("merge")
	payload, err := server.BuildResultPayload(st.cells, st.results, sweep.Merged(st.results))
	if err != nil {
		return fail(err)
	}
	data, err := payload.Marshal()
	if err != nil {
		return fail(err)
	}
	c.removeCheckpoint(norm.ID)
	st.sink.emit(Event{
		Type:        EventDone,
		Digest:      payload.Digest,
		CellsDone:   len(cells),
		CellsTotal:  len(cells),
		ShardsDone:  len(st.runs),
		ShardsTotal: len(st.runs),
	})
	return payload, data, nil
}

// handle folds one attempt outcome into the run state. A returned
// error fails the whole job.
func (st *runState) handle(comp completion, now time.Time) error {
	sh := st.bySlot[comp.slot]
	sh.inFlight--
	st.c.addInflight(comp.worker, -1)

	if comp.err != nil {
		if sh.state == shardDone || st.ctx.Err() != nil {
			return nil // stale duplicate losing the race, or shutdown unwind
		}
		st.c.mRetried[comp.worker].Inc()
		sh.failures++
		sh.tried[comp.worker]++
		if workerDown(comp.err) && st.c.setLive(comp.worker, false) {
			st.sink.emit(Event{Type: EventWorkerDown, Worker: comp.worker, Error: comp.err.Error()})
		}
		if errors.Is(comp.err, errs.ErrBadConfig) {
			// The worker rejected the shard spec itself; every retry
			// would be rejected identically (version skew, usually).
			return fmt.Errorf("fleet: shard %s rejected by %s: %w", sh.name(), comp.worker, comp.err)
		}
		if sh.failures >= st.c.opt.MaxAttempts {
			return fmt.Errorf("fleet: shard %s failed %d times, giving up: %w", sh.name(), sh.failures, comp.err)
		}
		if sh.inFlight == 0 {
			// No surviving duplicate: back off, then re-pool.
			sh.state = shardPending
			sh.notBefore = now.Add(retryDelay(st.c.opt.RetryBase, st.norm.Seed, sh.shard.Slot, sh.failures))
		}
		st.sink.emit(Event{
			Type: EventShardRetry, Shard: sh.name(), Worker: comp.worker,
			Attempt: sh.attempts, Error: comp.err.Error(),
		})
		return nil
	}

	if sh.state == shardDone {
		return nil // a duplicate already won; results are pure, discard
	}
	if err := st.accept(sh, comp.payload); err != nil {
		return err
	}
	sh.state = shardDone
	st.doneShards++
	st.cellsDone += len(sh.remaining)
	st.c.mCompleted[comp.worker].Inc()
	st.c.writeCheckpoint(st.norm, st.completed)
	st.sink.emit(Event{Type: EventShardDone, Shard: sh.name(), Worker: comp.worker, Attempt: sh.attempts})
	st.sink.progress(st.cellsDone, len(st.cells), st.doneShards, len(st.runs))
	return nil
}

// accept validates a shard payload against the grid and scatters its
// cells into full-grid positions. Any mismatch is a determinism
// violation — the worker computed something other than what the grid
// defines — and fails the job rather than corrupting the digest.
func (st *runState) accept(sh *shardRun, p server.ResultPayload) error {
	if len(p.Tasks) != len(sh.remaining) {
		return fmt.Errorf("fleet: shard %s returned %d cells, expected %d",
			sh.name(), len(p.Tasks), len(sh.remaining))
	}
	for i, idx := range sh.remaining {
		tr := p.Tasks[i]
		want := st.cells[idx]
		if tr.Name != want.Name() || tr.Seed != want.Seed {
			return fmt.Errorf("fleet: shard %s cell %d is %q seed %d, grid says %q seed %d",
				sh.name(), idx, tr.Name, tr.Seed, want.Name(), want.Seed)
		}
		r := sweep.Result{Name: tr.Name, Seed: tr.Seed, Metrics: tr.Metrics}
		if tr.Error != "" {
			// Scatter the failure faithfully — an offline run of this
			// spec fails the same cell the same way, so the digest
			// still matches. Errored cells are never checkpointed;
			// a resume re-runs them (deterministically, to the same
			// error).
			r.Err = errors.New(tr.Error)
			st.results[idx] = r
			continue
		}
		st.results[idx] = r
		st.completed[idx] = checkpointCell{Index: idx, Name: tr.Name, Seed: tr.Seed, Metrics: tr.Metrics}
	}
	return nil
}

// dispatch launches one attempt of sh on w.
func (st *runState) dispatch(sh *shardRun, w Worker, steal bool, now time.Time) {
	sh.attempts++
	attempt := sh.attempts
	name := w.Name()
	sub := st.norm
	sub.Cells = append([]int(nil), sh.remaining...)
	// Attempt-scoped IDs keep duplicate attempts (retries, steals,
	// post-crash re-dispatches) from colliding on a worker that still
	// holds an earlier twin.
	sub.ID = fmt.Sprintf("%s-%s-a%d", st.norm.ID, sh.name(), attempt)

	sh.inFlight++
	st.c.addInflight(name, 1)
	if steal {
		sh.stolen = true
		st.c.mStolen[name].Inc()
		st.sink.emit(Event{Type: EventShardSteal, Shard: sh.name(), Worker: name, Attempt: attempt})
	} else {
		sh.state = shardRunning
		sh.worker = name
		sh.leaseStart = now
		sh.leaseUntil = now.Add(st.c.opt.Lease)
		st.c.mLeased[name].Inc()
		st.sink.emit(Event{Type: EventShardLeased, Shard: sh.name(), Worker: name, Attempt: attempt})
	}
	go func() {
		p, err := w.RunShard(st.ctx, sub)
		select {
		case st.comps <- completion{slot: sh.shard.Slot, worker: name, steal: steal, payload: p, err: err}:
		case <-st.ctx.Done():
		}
	}()
}

// expireLeases re-pools running shards whose lease ran out. The stale
// attempt keeps running — if it lands first it still wins, because
// shard results are pure — but the shard no longer waits for it.
func (st *runState) expireLeases(now time.Time) {
	for _, sh := range st.runs {
		if sh.state != shardRunning || !now.After(sh.leaseUntil) {
			continue
		}
		st.c.mExpired[sh.worker].Inc()
		st.sink.emit(Event{Type: EventLeaseExpired, Shard: sh.name(), Worker: sh.worker, Attempt: sh.attempts})
		sh.tried[sh.worker]++
		sh.state = shardPending
		sh.notBefore = now
	}
}

// probeDown pings workers currently marked down; a successful probe
// returns them to the rendezvous pool.
func (st *runState) probeDown(ctx context.Context) {
	for _, w := range st.c.workers {
		name := w.Name()
		if st.c.isLive(name) {
			continue
		}
		pctx, cancel := context.WithTimeout(ctx, st.c.opt.PingTimeout)
		err := w.Ping(pctx)
		cancel()
		if err == nil && st.c.setLive(name, true) {
			st.sink.emit(Event{Type: EventWorkerUp, Worker: name})
		}
	}
}

// dispatchPending leases every ready pending shard to its
// rendezvous-chosen worker, capacity permitting.
func (st *runState) dispatchPending(now time.Time) {
	for _, sh := range st.runs {
		if sh.state != shardPending || now.Before(sh.notBefore) {
			continue
		}
		if w := st.pickWorker(sh); w != nil {
			st.dispatch(sh, w, false, now)
		}
	}
}

// pickWorker chooses the live, non-saturated worker with the highest
// rendezvous score for the shard's slot, preferring workers that have
// not already failed this shard. Deterministic given worker health —
// which is all it needs to be, since placement never affects results.
func (st *runState) pickWorker(sh *shardRun) Worker {
	var best, bestUntried Worker
	var bestScore, bestUntriedScore uint64
	for _, w := range st.c.workers {
		name := w.Name()
		if !st.c.isLive(name) || st.c.inflightOf(name) >= st.c.opt.WorkerSlots {
			continue
		}
		score := rendezvousScore(sh.shard.Slot, name)
		if best == nil || score > bestScore {
			best, bestScore = w, score
		}
		if sh.tried[name] == 0 && (bestUntried == nil || score > bestUntriedScore) {
			bestUntried, bestUntriedScore = w, score
		}
	}
	if bestUntried != nil {
		return bestUntried
	}
	return best
}

// stealStragglers hands idle capacity a duplicate attempt of the
// longest-running unstolen shard. First completion wins; the loser is
// discarded on arrival. Stealing only happens when nothing is pending
// — pending work always outranks duplicating running work.
func (st *runState) stealStragglers(now time.Time) {
	for _, sh := range st.runs {
		if sh.state == shardPending && !now.Before(sh.notBefore) {
			return // capacity was short this tick; don't spend it on duplicates
		}
	}
	for _, w := range st.c.workers {
		name := w.Name()
		if !st.c.isLive(name) || st.c.inflightOf(name) >= st.c.opt.WorkerSlots {
			continue
		}
		var victim *shardRun
		for _, sh := range st.runs {
			if sh.state != shardRunning || sh.stolen || sh.inFlight != 1 {
				continue
			}
			if sh.worker == name || sh.tried[name] > 0 {
				continue
			}
			if !now.After(sh.leaseStart.Add(st.c.opt.StealAfter)) {
				continue
			}
			if victim == nil || sh.leaseStart.Before(victim.leaseStart) {
				victim = sh
			}
		}
		if victim != nil {
			st.dispatch(victim, w, true, now)
		}
	}
}

func (st *runState) anyInFlight() bool {
	for _, sh := range st.runs {
		if sh.inFlight > 0 {
			return true
		}
	}
	return false
}

func (st *runState) anyLive() bool {
	for _, w := range st.c.workers {
		if st.c.isLive(w.Name()) {
			return true
		}
	}
	return false
}

// retryDelay is the deterministic backoff before re-pooling a failed
// shard: exponential in the failure count, jittered by a pure function
// of (job seed, slot, failure) so identical runs back off identically
// while distinct shards decorrelate.
func retryDelay(base time.Duration, seed int64, slot, failures int) time.Duration {
	d := base
	for i := 1; i < failures && d < 30*time.Second; i++ {
		d *= 2
	}
	j := uint64(sweep.DeriveSeed(seed, slot*97+failures)) % 1024
	d += time.Duration(uint64(d) * j / 2048)
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// deriveJobID names an anonymous fleet job by its normalized spec, so
// re-running the same spec finds (and resumes) its own checkpoint.
func deriveJobID(norm server.JobSpec) string {
	data, err := json.Marshal(norm)
	if err != nil {
		return "fleet-job"
	}
	return fmt.Sprintf("fleet-%016x", hash64(string(data)))
}
