package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"threadcluster/internal/client"
	"threadcluster/internal/errs"
	"threadcluster/internal/server"
)

// Worker is one execution backend the coordinator leases shards to.
// Implementations must be safe for concurrent use: the coordinator
// pings and dispatches from different goroutines.
type Worker interface {
	// Name identifies the worker in events, metrics and rendezvous
	// hashing. Names must be unique within a fleet and stable across
	// coordinator restarts (rendezvous assignment hashes them).
	Name() string
	// Ping probes health; a non-nil error marks the worker down until
	// a later probe succeeds.
	Ping(ctx context.Context) error
	// RunShard executes one shard-scoped JobSpec to completion and
	// returns its decoded result payload. The spec's Cells field
	// carries full-grid indices, so the payload's per-cell names and
	// seeds are exactly what the whole grid would assign.
	RunShard(ctx context.Context, spec server.JobSpec) (server.ResultPayload, error)
}

// HTTPWorker drives one tcsimd daemon through the typed client:
// submit, follow the event stream to the end, fetch the result.
type HTTPWorker struct {
	name string
	cl   *client.Client
}

// NewHTTPWorker builds a worker for one tcsimd base URL. hc may be nil
// (but must not carry a response timeout: RunShard holds an event
// stream open for the whole shard). backoff configures the submit
// overload retry; pass a zero Backoff to fail fast on 429.
func NewHTTPWorker(name, base string, hc *http.Client, backoff client.Backoff) *HTTPWorker {
	return &HTTPWorker{name: name, cl: client.New(base, hc).WithBackoff(backoff)}
}

// Name returns the worker's fleet-unique name.
func (w *HTTPWorker) Name() string { return w.name }

// Ping probes GET /v1/worker. A draining daemon is reported down: it
// answers HTTP but won't admit new shards, which for leasing purposes
// is the same thing as dead.
func (w *HTTPWorker) Ping(ctx context.Context) error {
	h, err := w.cl.WorkerHealth(ctx)
	if err != nil {
		return err
	}
	if h.Draining {
		return fmt.Errorf("fleet: worker %s: %w: draining", w.name, errs.ErrUnavailable)
	}
	return nil
}

// RunShard submits the shard job and waits it out. A conflict on
// submit means this exact attempt ID is already on the worker — the
// coordinator resumed after a crash — so the job is simply re-attached
// rather than resubmitted; shard results are pure functions of the
// spec, so attaching to the in-flight twin is indistinguishable from
// having submitted it.
func (w *HTTPWorker) RunShard(ctx context.Context, spec server.JobSpec) (server.ResultPayload, error) {
	if _, err := w.cl.Submit(ctx, spec); err != nil && !errors.Is(err, errs.ErrJobExists) {
		return server.ResultPayload{}, err
	}
	st, err := w.cl.Wait(ctx, spec.ID)
	if err != nil {
		return server.ResultPayload{}, err
	}
	if st.State != server.StateDone {
		return server.ResultPayload{}, fmt.Errorf("fleet: shard job %q ended %s on %s: %s",
			spec.ID, st.State, w.name, st.Error)
	}
	return w.cl.ResultPayload(ctx, spec.ID)
}

// workerDown classifies a shard failure as a worker-health signal.
// Transport errors (connection refused, reset, EOF mid-stream) and
// 5xx responses mean the worker itself is suspect; structured 4xx
// rejections mean the worker is healthy and the request was the
// problem. Context cancellation is the coordinator shutting down, not
// a verdict on the worker.
func workerDown(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var ae *client.APIError
	if errors.As(err, &ae) {
		return ae.Status >= 500
	}
	return true
}
