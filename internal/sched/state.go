package sched

import (
	"fmt"
	"sort"

	"threadcluster/internal/errs"
	"threadcluster/internal/rng"
	"threadcluster/internal/snapbin"
	"threadcluster/internal/topology"
)

// SaveState appends the scheduler's complete mutable state — run queues,
// thread-to-CPU map, round-robin cursor, RNG position, migration/steal
// counters and pin set — to the encoder in canonical order. The
// scheduler must be quiesced: every thread requeued (between rounds).
// The partition-hint function is deliberately absent; it is workload
// configuration the restoring caller reinstalls.
func (s *Scheduler) SaveState(e *snapbin.Enc) error {
	if len(s.running) != 0 {
		return fmt.Errorf("sched: %d threads still dispatched mid-quantum: %w", len(s.running), errs.ErrThreadRunning)
	}
	e.U32(uint32(len(s.queues)))
	for _, q := range s.queues {
		e.U32(uint32(len(q)))
		for _, id := range q {
			e.I64(int64(id))
		}
	}
	ids := s.Threads() // ascending
	e.U32(uint32(len(ids)))
	for _, id := range ids {
		e.I64(int64(id))
		e.U32(uint32(s.cpuOf[id]))
	}
	e.I64(int64(s.rrNext))
	st := s.rng.State()
	e.I64(st.Seed)
	e.U64(st.Draws)
	e.U64(s.migrations)
	e.U64(s.steals)
	pinned := make([]ThreadID, 0, len(s.pinned))
	for id := range s.pinned {
		pinned = append(pinned, id)
	}
	sort.Slice(pinned, func(i, j int) bool { return pinned[i] < pinned[j] })
	e.U32(uint32(len(pinned)))
	for _, id := range pinned {
		e.I64(int64(id))
	}
	return nil
}

// RestoreState overwrites the scheduler's mutable state with a state
// saved by SaveState. The scheduler must already manage exactly the
// threads present in the saved state (the caller re-adds the workload
// before restoring); placement is then overwritten wholesale and the
// result is checked against the scheduler invariants.
func (s *Scheduler) RestoreState(d *snapbin.Dec) error {
	ncpu := int(d.U32())
	if d.Err() == nil && ncpu != len(s.queues) {
		return fmt.Errorf("sched: restoring state for %d CPUs onto %d: %w", ncpu, len(s.queues), errs.ErrBadConfig)
	}
	queues := make([][]ThreadID, 0, len(s.queues))
	for c := 0; c < ncpu && d.Err() == nil; c++ {
		n := d.Count(8)
		q := make([]ThreadID, 0, n)
		for i := 0; i < n; i++ {
			q = append(q, ThreadID(d.I64()))
		}
		queues = append(queues, q)
	}
	nthreads := d.Count(12)
	cpuOf := make(map[ThreadID]topology.CPUID, nthreads)
	for i := 0; i < nthreads && d.Err() == nil; i++ {
		id := ThreadID(d.I64())
		cpu := topology.CPUID(d.U32())
		if int(cpu) >= len(s.queues) {
			return fmt.Errorf("sched: restored thread %d on CPU %d out of range: %w", id, int(cpu), errs.ErrBadConfig)
		}
		cpuOf[id] = cpu
	}
	rrNext := int(d.I64())
	rngSeed := d.I64()
	rngDraws := d.U64()
	migrations := d.U64()
	steals := d.U64()
	npinned := d.Count(8)
	pinned := make(map[ThreadID]bool, npinned)
	for i := 0; i < npinned && d.Err() == nil; i++ {
		pinned[ThreadID(d.I64())] = true
	}
	if err := d.Err(); err != nil {
		return err
	}

	if len(cpuOf) != len(s.cpuOf) {
		return fmt.Errorf("sched: restoring %d threads onto a scheduler managing %d: %w", len(cpuOf), len(s.cpuOf), errs.ErrBadConfig)
	}
	for id := range cpuOf {
		if _, ok := s.cpuOf[id]; !ok {
			return fmt.Errorf("sched: restored thread %d: %w", id, errs.ErrUnknownThread)
		}
	}
	for id := range pinned {
		if _, ok := cpuOf[id]; !ok {
			return fmt.Errorf("sched: pinned thread %d: %w", id, errs.ErrUnknownThread)
		}
	}

	s.queues = queues
	s.cpuOf = cpuOf
	s.running = make(map[ThreadID]bool)
	s.rrNext = rrNext
	s.rng.Restore(rng.State{Seed: rngSeed, Draws: rngDraws})
	s.migrations = migrations
	s.steals = steals
	s.pinned = pinned
	return s.CheckInvariants()
}
