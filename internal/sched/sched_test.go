package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"threadcluster/internal/topology"
)

func newSched(t *testing.T, policy Policy) *Scheduler {
	t.Helper()
	s, err := New(topology.OpenPower720(), policy, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDefaultPlacementLeastLoaded(t *testing.T) {
	s := newSched(t, PolicyDefault)
	for i := 0; i < 8; i++ {
		if err := s.AddThread(ThreadID(i)); err != nil {
			t.Fatal(err)
		}
	}
	// 8 threads over 8 CPUs: every queue should have exactly one.
	for c := 0; c < 8; c++ {
		if got := s.QueueLen(topology.CPUID(c)); got != 1 {
			t.Errorf("queue %d length = %d, want 1", c, got)
		}
	}
}

func TestRoundRobinPlacement(t *testing.T) {
	s := newSched(t, PolicyRoundRobin)
	for i := 0; i < 16; i++ {
		if err := s.AddThread(ThreadID(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 16; i++ {
		cpu, ok := s.CPUOf(ThreadID(i))
		if !ok || int(cpu) != i%8 {
			t.Errorf("thread %d on CPU %d, want %d", i, cpu, i%8)
		}
	}
}

func TestHandOptimizedPlacement(t *testing.T) {
	s := newSched(t, PolicyHandOptimized)
	// Partition: even threads -> chip 0, odd -> chip 1.
	s.SetPartitionHint(func(id ThreadID) int { return int(id) % 2 })
	for i := 0; i < 16; i++ {
		if err := s.AddThread(ThreadID(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 16; i++ {
		chip, ok := s.ChipOf(ThreadID(i))
		if !ok || chip != i%2 {
			t.Errorf("thread %d on chip %d, want %d", i, chip, i%2)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestHandOptimizedRequiresHint(t *testing.T) {
	s := newSched(t, PolicyHandOptimized)
	if err := s.AddThread(1); err == nil {
		t.Error("hand-optimized without a hint should fail")
	}
}

func TestAddThreadDuplicate(t *testing.T) {
	s := newSched(t, PolicyDefault)
	if err := s.AddThread(1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddThread(1); err == nil {
		t.Error("duplicate AddThread should fail")
	}
}

func TestPickNextRequeueCycle(t *testing.T) {
	s := newSched(t, PolicyRoundRobin)
	_ = s.AddThread(1)
	_ = s.AddThread(9) // also CPU 1? no: rr 0->cpu0, 9->cpu1. Use same-CPU pair instead.
	s2 := newSched(t, PolicyRoundRobin)
	for i := 0; i < 16; i++ {
		_ = s2.AddThread(ThreadID(i))
	}
	// CPU 0 hosts threads 0 and 8; they must alternate.
	a, ok := s2.PickNext(0)
	if !ok {
		t.Fatal("expected a runnable thread")
	}
	s2.Requeue(a)
	b, _ := s2.PickNext(0)
	s2.Requeue(b)
	c, _ := s2.PickNext(0)
	s2.Requeue(c)
	if a == b || a != c {
		t.Errorf("round-robin within queue broken: got %d,%d,%d", a, b, c)
	}
	if err := s2.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestPickNextEmptyStaticPolicy(t *testing.T) {
	s := newSched(t, PolicyRoundRobin)
	_ = s.AddThread(1) // on CPU 0
	if _, ok := s.PickNext(5); ok {
		t.Error("static policy must not steal; CPU 5 should be idle")
	}
}

func TestReactiveStealUnderDefault(t *testing.T) {
	s := newSched(t, PolicyDefault)
	// Load all 8 threads onto the machine, then drain CPU 0's queue and
	// pile extra threads on CPU 1 by migration.
	for i := 0; i < 4; i++ {
		_ = s.AddThread(ThreadID(i))
	}
	for i := 0; i < 4; i++ {
		_ = s.Migrate(ThreadID(i), 1)
	}
	if _, ok := s.PickNext(0); !ok {
		t.Fatal("idle CPU 0 should have stolen a thread from CPU 1")
	}
	if s.Steals() == 0 {
		t.Error("steal counter should have incremented")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestMigrate(t *testing.T) {
	s := newSched(t, PolicyDefault)
	_ = s.AddThread(1)
	if err := s.Migrate(1, 7); err != nil {
		t.Fatal(err)
	}
	cpu, _ := s.CPUOf(1)
	if cpu != 7 {
		t.Errorf("after migrate CPU = %d, want 7", cpu)
	}
	if got, _ := s.PickNext(7); got != 1 {
		t.Error("migrated thread should be runnable on CPU 7")
	}
	if err := s.Migrate(99, 0); err == nil {
		t.Error("migrating unknown thread should fail")
	}
	if err := s.Migrate(1, 100); err == nil {
		t.Error("migrating to bogus CPU should fail")
	}
}

func TestMigrateWhileRunning(t *testing.T) {
	s := newSched(t, PolicyDefault)
	_ = s.AddThread(1)
	id, ok := s.PickNext(0)
	if !ok || id != 1 {
		t.Fatal("setup failed")
	}
	if err := s.Migrate(1, 4); err != nil {
		t.Fatal(err)
	}
	s.Requeue(1)
	if got, _ := s.PickNext(4); got != 1 {
		t.Error("thread migrated while running should requeue on the new CPU")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRemoveThread(t *testing.T) {
	s := newSched(t, PolicyDefault)
	_ = s.AddThread(1)
	_ = s.AddThread(2)
	s.RemoveThread(1)
	if _, ok := s.CPUOf(1); ok {
		t.Error("removed thread should be unknown")
	}
	if s.NumThreads() != 1 {
		t.Errorf("NumThreads = %d, want 1", s.NumThreads())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
	// Removing a running thread must also work.
	id, _ := s.PickNext(func() topology.CPUID { c, _ := s.CPUOf(2); return c }())
	if id != 2 {
		t.Fatal("setup: expected to run thread 2")
	}
	s.RemoveThread(2)
	s.Requeue(2) // must be a no-op
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestProactiveBalanceDefault(t *testing.T) {
	s := newSched(t, PolicyDefault)
	for i := 0; i < 16; i++ {
		_ = s.AddThread(ThreadID(i))
	}
	// Pile everything on CPU 0.
	for i := 0; i < 16; i++ {
		_ = s.Migrate(ThreadID(i), 0)
	}
	s.ProactiveBalance()
	max, min := 0, 1<<30
	for c := 0; c < 8; c++ {
		n := s.QueueLen(topology.CPUID(c))
		if n > max {
			max = n
		}
		if n < min {
			min = n
		}
	}
	if max-min > 1 {
		t.Errorf("after balance queue spread = %d..%d, want within 1", min, max)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestProactiveBalanceRespectsPins(t *testing.T) {
	s, err := New(topology.OpenPower720(), PolicyClustered, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		_ = s.AddThread(ThreadID(i))
	}
	// Engine placed everything on chip 0 and pinned it.
	for i := 0; i < 8; i++ {
		_ = s.Migrate(ThreadID(i), topology.CPUID(i%4))
		s.Pin(ThreadID(i))
	}
	s.ProactiveBalance()
	for i := 0; i < 8; i++ {
		chip, _ := s.ChipOf(ThreadID(i))
		if chip != 0 {
			t.Errorf("pinned thread %d moved to chip %d", i, chip)
		}
	}
	// But intra-chip balancing still happened: chip-0 queues within 1.
	lens := []int{}
	for _, cpu := range topology.OpenPower720().CPUsOfChip(0) {
		lens = append(lens, s.QueueLen(cpu))
	}
	for _, n := range lens {
		if n < 1 || n > 3 {
			t.Errorf("intra-chip balance left queue length %d (all: %v)", n, lens)
		}
	}
}

func TestStaticPoliciesNeverBalance(t *testing.T) {
	for _, pol := range []Policy{PolicyRoundRobin, PolicyHandOptimized} {
		s, _ := New(topology.OpenPower720(), pol, 1)
		s.SetPartitionHint(func(ThreadID) int { return 0 })
		for i := 0; i < 8; i++ {
			_ = s.AddThread(ThreadID(i))
		}
		for i := 0; i < 8; i++ {
			_ = s.Migrate(ThreadID(i), 3)
		}
		s.ProactiveBalance()
		if got := s.QueueLen(3); got != 8 {
			t.Errorf("%v: balance moved threads (queue 3 = %d, want 8)", pol, got)
		}
	}
}

func TestChipLoad(t *testing.T) {
	s := newSched(t, PolicyRoundRobin)
	for i := 0; i < 6; i++ {
		_ = s.AddThread(ThreadID(i))
	}
	load := s.ChipLoad()
	if load[0]+load[1] != 6 {
		t.Errorf("chip loads %v should sum to 6", load)
	}
}

func TestLeastSMTLoadedCPUOnChip(t *testing.T) {
	s := newSched(t, PolicyDefault)
	// Place one thread on CPU 0 (core 0 of chip 0). The next placement on
	// chip 0 must go to core 1.
	_ = s.AddThread(1)
	_ = s.Migrate(1, 0)
	cpu := s.LeastSMTLoadedCPUOnChip(0)
	if s.Topology().CoreOf(cpu) != 1 {
		t.Errorf("picked core %d, want the empty core 1", s.Topology().CoreOf(cpu))
	}
	// Fill core 1 too; now both cores have one thread and the choice must
	// be an unloaded context.
	_ = s.AddThread(2)
	_ = s.Migrate(2, cpu)
	cpu2 := s.LeastSMTLoadedCPUOnChip(0)
	if cpu2 == 0 || cpu2 == cpu {
		t.Errorf("picked occupied context %d", cpu2)
	}
	if s.Topology().ChipOf(cpu2) != 0 {
		t.Error("placement left the chip")
	}
}

func TestRandomCPUOnChip(t *testing.T) {
	s := newSched(t, PolicyDefault)
	for i := 0; i < 100; i++ {
		cpu := s.RandomCPUOnChip(1)
		if s.Topology().ChipOf(cpu) != 1 {
			t.Fatalf("RandomCPUOnChip(1) returned CPU %d on chip %d", cpu, s.Topology().ChipOf(cpu))
		}
	}
}

func TestPolicyStrings(t *testing.T) {
	for pol, want := range map[Policy]string{
		PolicyDefault: "default", PolicyRoundRobin: "round-robin",
		PolicyHandOptimized: "hand-optimized", PolicyClustered: "clustered",
	} {
		if pol.String() != want {
			t.Errorf("%d.String() = %q, want %q", pol, pol.String(), want)
		}
	}
}

// Property: a random storm of add/pick/requeue/migrate/balance operations
// never breaks scheduler invariants and never loses a thread.
func TestSchedulerInvariantsUnderStress(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		s, err := New(topology.OpenPower720(), PolicyDefault, seed)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		next := 0
		var runningSet []ThreadID
		for _, op := range ops {
			switch op % 6 {
			case 0, 1: // add
				_ = s.AddThread(ThreadID(next))
				next++
			case 2: // pick
				cpu := topology.CPUID(rng.Intn(8))
				if id, ok := s.PickNext(cpu); ok {
					runningSet = append(runningSet, id)
				}
			case 3: // requeue one running thread
				if len(runningSet) > 0 {
					s.Requeue(runningSet[0])
					runningSet = runningSet[1:]
				}
			case 4: // migrate random thread
				if next > 0 {
					_ = s.Migrate(ThreadID(rng.Intn(next)), topology.CPUID(rng.Intn(8)))
				}
			case 5: // balance
				s.ProactiveBalance()
			}
			if err := s.CheckInvariants(); err != nil {
				t.Logf("invariant violated: %v", err)
				return false
			}
		}
		// Drain: requeue all running, then total threads must match.
		for _, id := range runningSet {
			s.Requeue(id)
		}
		total := 0
		for c := 0; c < 8; c++ {
			total += s.QueueLen(topology.CPUID(c))
		}
		return total == next && s.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
