// Package sched implements the OS scheduling layer of the simulated
// machine: per-CPU run queues, the four thread-placement strategies the
// paper evaluates in Section 5.4 (default Linux, round-robin,
// hand-optimized, and automatic clustering), Linux-style reactive and
// pro-active load balancing, and the migration primitive the clustering
// engine uses to co-locate sharing threads on a chip.
package sched

import (
	"fmt"
	"sort"

	"threadcluster/internal/errs"
	"threadcluster/internal/rng"
	"threadcluster/internal/topology"
)

// ThreadID identifies a software thread managed by the scheduler.
type ThreadID int

// Policy selects a thread-placement strategy (Section 5.4).
type Policy int

const (
	// PolicyDefault mimics default Linux: initial placement on the least
	// loaded CPU, plus reactive (idle-steal) and pro-active (queue-length)
	// load balancing. It is sharing-oblivious.
	PolicyDefault Policy = iota
	// PolicyRoundRobin statically places threads round-robin across CPUs
	// with dynamic balancing disabled — the paper's worst-case scenario
	// where sharing threads are scattered across chips.
	PolicyRoundRobin
	// PolicyHandOptimized places each thread on the chip matching its
	// application partition (room, warehouse, database instance), with
	// dynamic balancing disabled. Requires a partition hint function.
	PolicyHandOptimized
	// PolicyClustered starts like PolicyDefault but leaves placement under
	// the control of the thread-clustering engine: cross-chip balancing is
	// disabled once the engine has migrated threads, and only intra-chip
	// balancing remains (Section 4.5).
	PolicyClustered
)

func (p Policy) String() string {
	switch p {
	case PolicyDefault:
		return "default"
	case PolicyRoundRobin:
		return "round-robin"
	case PolicyHandOptimized:
		return "hand-optimized"
	case PolicyClustered:
		return "clustered"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Scheduler owns the run queues of every hardware context. It is
// deliberately simple — FIFO round-robin within each queue — because the
// paper's contribution is *placement*, not time-slicing.
//
// Scheduler is not safe for concurrent use; the simulator is
// single-goroutine.
type Scheduler struct {
	topo    topology.Topology //tclint:allow snapfields -- construction config; RestoreMachine rebuilds the scheduler with it
	policy  Policy            //tclint:allow snapfields -- construction config; policies are stateless placement logic
	queues  [][]ThreadID
	cpuOf   map[ThreadID]topology.CPUID
	running map[ThreadID]bool // dequeued by PickNext, not yet requeued

	partition func(ThreadID) int
	rrNext    int
	rng       *rng.Rand

	migrations uint64
	steals     uint64
	// pinned marks threads the clustering engine has placed; pro-active
	// balancing will not move them across chips.
	pinned map[ThreadID]bool
}

// New creates a scheduler for the topology under the given policy. The
// seed drives tie-breaking randomness (e.g. random intra-chip placement,
// Section 4.5).
func New(topo topology.Topology, policy Policy, seed int64) (*Scheduler, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	s := &Scheduler{
		topo:    topo,
		policy:  policy,
		queues:  make([][]ThreadID, topo.NumCPUs()),
		cpuOf:   make(map[ThreadID]topology.CPUID),
		running: make(map[ThreadID]bool),
		pinned:  make(map[ThreadID]bool),
		rng:     rng.New(seed),
	}
	return s, nil
}

// Policy returns the placement policy in force.
func (s *Scheduler) Policy() Policy { return s.policy }

// Topology returns the machine shape.
func (s *Scheduler) Topology() topology.Topology { return s.topo }

// SetPartitionHint supplies the application-knowledge partition function
// used by PolicyHandOptimized (which chip a thread's room / warehouse /
// database instance belongs on).
func (s *Scheduler) SetPartitionHint(f func(ThreadID) int) { s.partition = f }

// AddThread places a new thread according to the policy and enqueues it.
func (s *Scheduler) AddThread(id ThreadID) error {
	if _, ok := s.cpuOf[id]; ok {
		return fmt.Errorf("sched: thread %d: %w", id, errs.ErrDuplicateThread)
	}
	var cpu topology.CPUID
	switch s.policy {
	case PolicyRoundRobin:
		cpu = topology.CPUID(s.rrNext % s.topo.NumCPUs())
		s.rrNext++
	case PolicyHandOptimized:
		if s.partition == nil {
			return fmt.Errorf("sched: hand-optimized policy requires a partition hint: %w", errs.ErrBadConfig)
		}
		chip := s.partition(id) % s.topo.Chips
		if chip < 0 {
			chip += s.topo.Chips
		}
		cpu = s.leastLoadedOnChip(chip)
	default: // PolicyDefault, PolicyClustered
		cpu = s.leastLoaded()
	}
	s.cpuOf[id] = cpu
	s.queues[cpu] = append(s.queues[cpu], id)
	return nil
}

// RemoveThread withdraws a thread from scheduling entirely.
func (s *Scheduler) RemoveThread(id ThreadID) {
	cpu, ok := s.cpuOf[id]
	if !ok {
		return
	}
	delete(s.cpuOf, id)
	delete(s.running, id)
	delete(s.pinned, id)
	s.queues[cpu] = remove(s.queues[cpu], id)
}

// PickNext dequeues the next runnable thread for the CPU, or reports false
// when the queue is empty. Under PolicyDefault (and PolicyClustered before
// pinning) an empty queue triggers reactive balancing: the idle CPU steals
// a thread from the machine's busiest queue (same-chip queues preferred).
func (s *Scheduler) PickNext(cpu topology.CPUID) (ThreadID, bool) {
	if len(s.queues[cpu]) == 0 && s.reactiveEnabled() {
		s.stealInto(cpu)
	}
	q := s.queues[cpu]
	if len(q) == 0 {
		return 0, false
	}
	id := q[0]
	s.queues[cpu] = q[1:]
	s.running[id] = true
	return id, true
}

// Requeue returns a thread picked by PickNext to the tail of its current
// CPU's queue (which may have changed if the thread was migrated while
// running).
func (s *Scheduler) Requeue(id ThreadID) {
	cpu, ok := s.cpuOf[id]
	if !ok {
		return // removed while running
	}
	if !s.running[id] {
		return
	}
	delete(s.running, id)
	s.queues[cpu] = append(s.queues[cpu], id)
}

// Migrate moves a thread to a specific CPU. If the thread is currently
// queued it moves queues immediately; if it is running it will be requeued
// on the new CPU at the end of its quantum.
func (s *Scheduler) Migrate(id ThreadID, cpu topology.CPUID) error {
	old, ok := s.cpuOf[id]
	if !ok {
		return fmt.Errorf("sched: thread %d: %w", id, errs.ErrUnknownThread)
	}
	if int(cpu) < 0 || int(cpu) >= s.topo.NumCPUs() {
		return fmt.Errorf("sched: CPU %d out of range: %w", int(cpu), errs.ErrBadConfig)
	}
	if old == cpu {
		return nil
	}
	s.cpuOf[id] = cpu
	if !s.running[id] {
		s.queues[old] = remove(s.queues[old], id)
		s.queues[cpu] = append(s.queues[cpu], id)
	}
	s.migrations++
	return nil
}

// Pin marks a thread as placed by the clustering engine so pro-active
// balancing will not undo the placement by moving it across chips.
func (s *Scheduler) Pin(id ThreadID) { s.pinned[id] = true }

// Unpin releases an engine placement (e.g. before re-clustering).
func (s *Scheduler) Unpin(id ThreadID) { delete(s.pinned, id) }

// CPUOf returns the CPU a thread is assigned to.
func (s *Scheduler) CPUOf(id ThreadID) (topology.CPUID, bool) {
	cpu, ok := s.cpuOf[id]
	return cpu, ok
}

// ChipOf returns the chip a thread is assigned to.
func (s *Scheduler) ChipOf(id ThreadID) (int, bool) {
	cpu, ok := s.cpuOf[id]
	if !ok {
		return 0, false
	}
	return s.topo.ChipOf(cpu), true
}

// Threads returns every managed thread id in ascending order. The order
// matters: the clustering engine iterates this slice when computing
// filler placements, so it must not leak map iteration order into
// migration decisions.
func (s *Scheduler) Threads() []ThreadID {
	ids := make([]ThreadID, 0, len(s.cpuOf))
	for id := range s.cpuOf {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// NumThreads returns the number of managed threads.
func (s *Scheduler) NumThreads() int { return len(s.cpuOf) }

// QueueLen returns the current length of a CPU's run queue (excluding a
// thread currently running on it).
func (s *Scheduler) QueueLen(cpu topology.CPUID) int { return len(s.queues[cpu]) }

// TotalQueued returns how many threads are sitting in run queues right
// now (dispatched threads excluded) — the machine-wide runqueue depth.
func (s *Scheduler) TotalQueued() int {
	total := 0
	for _, q := range s.queues {
		total += len(q)
	}
	return total
}

// ChipLoad returns the number of threads assigned to each chip.
func (s *Scheduler) ChipLoad() []int {
	load := make([]int, s.topo.Chips)
	for _, cpu := range s.cpuOf {
		load[s.topo.ChipOf(cpu)]++
	}
	return load
}

// Migrations returns how many migrations have been performed.
func (s *Scheduler) Migrations() uint64 { return s.migrations }

// Steals returns how many reactive-balance steals occurred.
func (s *Scheduler) Steals() uint64 { return s.steals }

// RandomCPUOnChip returns a uniformly random hardware context of a chip —
// the paper's intra-chip placement rule (Section 4.5: "load balance within
// each chip is addressed by uniformly and randomly assigning threads to
// the cores and the different hardware contexts").
func (s *Scheduler) RandomCPUOnChip(chip int) topology.CPUID {
	cpus := s.topo.CPUsOfChip(chip)
	return cpus[s.rng.Intn(len(cpus))]
}

// LeastSMTLoadedCPUOnChip returns a hardware context of the chip on the
// core with the fewest assigned threads (ties broken by the less loaded
// context). Cores-first placement keeps SMT siblings free while whole
// cores are idle — the SMT-aware alternative to the paper's random
// intra-chip rule, in the spirit of the Section 2 co-scheduling work
// (Bulpin & Pratt, Fedorova et al.).
func (s *Scheduler) LeastSMTLoadedCPUOnChip(chip int) topology.CPUID {
	perCPU := make(map[topology.CPUID]int)
	for _, cpu := range s.cpuOf {
		perCPU[cpu]++
	}
	bestCPU := topology.CPUID(-1)
	bestCore, bestCtx := 1<<30, 1<<30
	for core := chip * s.topo.CoresPerChip; core < (chip+1)*s.topo.CoresPerChip; core++ {
		coreLoad := 0
		for _, cpu := range s.topo.CPUsOfCore(core) {
			coreLoad += perCPU[cpu]
		}
		for _, cpu := range s.topo.CPUsOfCore(core) {
			if coreLoad < bestCore || (coreLoad == bestCore && perCPU[cpu] < bestCtx) {
				bestCPU, bestCore, bestCtx = cpu, coreLoad, perCPU[cpu]
			}
		}
	}
	return bestCPU
}

func (s *Scheduler) reactiveEnabled() bool {
	return s.policy == PolicyDefault || s.policy == PolicyClustered
}

// stealInto implements reactive balancing: move one thread from the
// busiest queue to the idle CPU. Queues on the idle CPU's own chip are
// preferred so a steal does not break chip affinity unnecessarily, and
// pinned threads are never stolen across chips.
func (s *Scheduler) stealInto(idle topology.CPUID) {
	idleChip := s.topo.ChipOf(idle)
	best := topology.CPUID(-1)
	bestLen, bestSameChip := 0, false
	for c := range s.queues {
		cpu := topology.CPUID(c)
		if cpu == idle {
			continue
		}
		n := len(s.queues[c])
		if n == 0 {
			continue
		}
		sameChip := s.topo.ChipOf(cpu) == idleChip
		better := n > bestLen || (n == bestLen && sameChip && !bestSameChip)
		if better {
			best, bestLen, bestSameChip = cpu, n, sameChip
		}
	}
	if best < 0 {
		return
	}
	// Find a stealable thread from the tail (coldest cache footprint).
	q := s.queues[best]
	for i := len(q) - 1; i >= 0; i-- {
		id := q[i]
		if s.pinned[id] && s.topo.ChipOf(best) != idleChip {
			continue
		}
		s.queues[best] = append(append([]ThreadID{}, q[:i]...), q[i+1:]...)
		s.cpuOf[id] = idle
		s.queues[idle] = append(s.queues[idle], id)
		s.steals++
		return
	}
}

// ProactiveBalance evens out run-queue lengths, mimicking Linux's periodic
// balancer. Under PolicyDefault it balances machine-wide; under
// PolicyClustered it balances only within each chip so engine placements
// survive; under the static policies it does nothing.
func (s *Scheduler) ProactiveBalance() {
	switch s.policy {
	case PolicyDefault:
		s.balanceAcross(allCPUs(s.topo))
	case PolicyClustered:
		for chip := 0; chip < s.topo.Chips; chip++ {
			s.balanceAcross(s.topo.CPUsOfChip(chip))
		}
	}
}

// balanceAcross repeatedly moves one queued, unpinned-or-same-chip thread
// from the longest to the shortest queue in the set until the lengths
// differ by at most one.
func (s *Scheduler) balanceAcross(cpus []topology.CPUID) {
	for iter := 0; iter < 4*len(cpus); iter++ {
		lo, hi := cpus[0], cpus[0]
		for _, c := range cpus {
			if len(s.queues[c]) < len(s.queues[lo]) {
				lo = c
			}
			if len(s.queues[c]) > len(s.queues[hi]) {
				hi = c
			}
		}
		if len(s.queues[hi])-len(s.queues[lo]) <= 1 {
			return
		}
		q := s.queues[hi]
		moved := false
		for i := len(q) - 1; i >= 0; i-- {
			id := q[i]
			if s.pinned[id] && s.topo.ChipOf(hi) != s.topo.ChipOf(lo) {
				continue
			}
			s.queues[hi] = append(append([]ThreadID{}, q[:i]...), q[i+1:]...)
			s.cpuOf[id] = lo
			s.queues[lo] = append(s.queues[lo], id)
			moved = true
			break
		}
		if !moved {
			return
		}
	}
}

// CheckInvariants verifies internal consistency: every managed thread is
// either running or queued exactly once, on the queue its cpuOf entry
// names. Tests call this after stress sequences.
func (s *Scheduler) CheckInvariants() error {
	seen := make(map[ThreadID]topology.CPUID)
	for c, q := range s.queues {
		for _, id := range q {
			if prev, dup := seen[id]; dup {
				return fmt.Errorf("sched: thread %d queued on both CPU %d and CPU %d", id, prev, c)
			}
			seen[id] = topology.CPUID(c)
			if s.running[id] {
				return fmt.Errorf("sched: thread %d both running and queued", id)
			}
			if s.cpuOf[id] != topology.CPUID(c) {
				return fmt.Errorf("sched: thread %d queued on CPU %d but mapped to %d", id, c, s.cpuOf[id])
			}
		}
	}
	for id := range s.cpuOf {
		if _, queued := seen[id]; !queued && !s.running[id] {
			return fmt.Errorf("sched: thread %d neither queued nor running", id)
		}
	}
	for id := range s.running {
		if _, ok := s.cpuOf[id]; !ok {
			return fmt.Errorf("sched: running thread %d not managed", id)
		}
	}
	return nil
}

// leastLoaded picks the CPU with the shortest queue, breaking ties
// uniformly at random the way Linux's wake-up placement is effectively
// arbitrary with respect to data sharing. The randomness is what keeps
// "default" placement from degenerating into the engineered worst case
// that round-robin placement represents.
func (s *Scheduler) leastLoaded() topology.CPUID {
	best := len(s.queues[0])
	for c := range s.queues {
		if len(s.queues[c]) < best {
			best = len(s.queues[c])
		}
	}
	ties := make([]topology.CPUID, 0, len(s.queues))
	for c := range s.queues {
		if len(s.queues[c]) == best {
			ties = append(ties, topology.CPUID(c))
		}
	}
	return ties[s.rng.Intn(len(ties))]
}

func (s *Scheduler) leastLoadedOnChip(chip int) topology.CPUID {
	cpus := s.topo.CPUsOfChip(chip)
	best := cpus[0]
	for _, c := range cpus {
		if len(s.queues[c]) < len(s.queues[best]) {
			best = c
		}
	}
	return best
}

func allCPUs(t topology.Topology) []topology.CPUID {
	cpus := make([]topology.CPUID, t.NumCPUs())
	for i := range cpus {
		cpus[i] = topology.CPUID(i)
	}
	return cpus
}

func remove(q []ThreadID, id ThreadID) []ThreadID {
	for i, v := range q {
		if v == id {
			return append(q[:i], q[i+1:]...)
		}
	}
	return q
}
