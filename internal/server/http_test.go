package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"threadcluster/internal/metrics"
	"threadcluster/internal/server"
)

// httpFixture is a started server behind an httptest listener.
type httpFixture struct {
	srv *server.Server
	ts  *httptest.Server
}

func newHTTPFixture(t *testing.T, opt server.Options) *httpFixture {
	t.Helper()
	if opt.Clock == nil {
		opt.Clock = server.NewFakeClock(time.Unix(1_700_000_000, 0).UTC())
	}
	s, err := server.New(opt)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	if err := s.Start(ctx); err != nil {
		t.Fatalf("Start: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer scancel()
		_ = s.Shutdown(sctx)
	})
	return &httpFixture{srv: s, ts: ts}
}

func (f *httpFixture) do(t *testing.T, method, path string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshaling request: %v", err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, f.ts.URL+path, rd)
	if err != nil {
		t.Fatalf("building request: %v", err)
	}
	resp, err := f.ts.Client().Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp, data
}

func httpSpec(id string) server.JobSpec {
	return server.JobSpec{
		ID:            id,
		Workloads:     []string{"microbenchmark"},
		Policies:      []string{"default"},
		Topos:         []string{"open720"},
		Seed:          7,
		WarmRounds:    2,
		EngineRounds:  4,
		MeasureRounds: 4,
	}
}

func decodeError(t *testing.T, data []byte) server.ErrorDetail {
	t.Helper()
	var body server.ErrorBody
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatalf("error body %q is not structured JSON: %v", data, err)
	}
	if body.Error.Code == "" {
		t.Fatalf("error body %q has no code", data)
	}
	return body.Error
}

func waitDoneHTTP(t *testing.T, f *httpFixture, id string) server.JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, data := f.do(t, http.MethodGet, "/v1/jobs/"+id, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET job %s: %d %s", id, resp.StatusCode, data)
		}
		var st server.JobStatus
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("decoding status: %v", err)
		}
		if st.State.Final() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestHTTPLifecycle(t *testing.T) {
	f := newHTTPFixture(t, server.Options{})

	resp, data := f.do(t, http.MethodPost, "/v1/jobs", httpSpec("web"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST = %d %s, want 202", resp.StatusCode, data)
	}
	var st server.JobStatus
	if err := json.Unmarshal(data, &st); err != nil || st.ID != "web" {
		t.Fatalf("POST body %s (err %v), want job status for web", data, err)
	}

	final := waitDoneHTTP(t, f, "web")
	if final.State != server.StateDone {
		t.Fatalf("state = %s (err %q), want done", final.State, final.Error)
	}

	resp, payload1 := f.do(t, http.MethodGet, "/v1/jobs/web/result", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result = %d, want 200", resp.StatusCode)
	}
	_, payload2 := f.do(t, http.MethodGet, "/v1/jobs/web/result", nil)
	if !bytes.Equal(payload1, payload2) {
		t.Fatal("result endpoint is not byte-stable across reads")
	}
	var decoded server.ResultPayload
	if err := json.Unmarshal(payload1, &decoded); err != nil {
		t.Fatalf("result payload does not decode: %v", err)
	}
	if decoded.Digest != final.Digest {
		t.Fatalf("payload digest %s != status digest %s", decoded.Digest, final.Digest)
	}

	resp, data = f.do(t, http.MethodGet, "/v1/jobs", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET jobs = %d, want 200", resp.StatusCode)
	}
	var list []server.JobStatus
	if err := json.Unmarshal(data, &list); err != nil || len(list) != 1 {
		t.Fatalf("job list %s (err %v), want one entry", data, err)
	}
}

func TestHTTPErrors(t *testing.T) {
	// The holder job's cost nearly fills the token pool, and its run is
	// long enough to still be in flight through the whole error matrix;
	// the cleanup cancels it (the engine checks ctx every round).
	holder := httpSpec("holder")
	holder.EngineRounds = 50_000_000
	holderCost := holder.Cost()
	f := newHTTPFixture(t, server.Options{JobWorkers: 1,
		MaxJobCost: holderCost, MaxQueuedCost: holderCost + 4})
	t.Cleanup(func() {
		req, err := http.NewRequest(http.MethodDelete, f.ts.URL+"/v1/jobs/holder", nil)
		if err != nil {
			return
		}
		if r, err := f.ts.Client().Do(req); err == nil {
			r.Body.Close()
		}
	})
	resp, _ := f.do(t, http.MethodPost, "/v1/jobs", holder)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST holder = %d, want 202", resp.StatusCode)
	}

	cases := []struct {
		name     string
		method   string
		path     string
		body     any
		status   int
		code     string
		wantWait bool
	}{
		{"malformed json", http.MethodPost, "/v1/jobs", "not a spec", http.StatusBadRequest, "bad_config", false},
		{"invalid spec", http.MethodPost, "/v1/jobs", server.JobSpec{ID: "e"}, http.StatusBadRequest, "bad_config", false},
		{"duplicate id", http.MethodPost, "/v1/jobs", httpSpec("holder"), http.StatusConflict, "job_exists", false},
		{"overloaded", http.MethodPost, "/v1/jobs", httpSpec("extra"), http.StatusTooManyRequests, "overloaded", true},
		{"unknown job", http.MethodGet, "/v1/jobs/ghost", nil, http.StatusNotFound, "job_not_found", false},
		{"unknown events", http.MethodGet, "/v1/jobs/ghost/events", nil, http.StatusNotFound, "job_not_found", false},
		{"unready result", http.MethodGet, "/v1/jobs/holder/result", nil, http.StatusConflict, "job_not_done", false},
		{"cancel unknown", http.MethodDelete, "/v1/jobs/ghost", nil, http.StatusNotFound, "job_not_found", false},
	}
	for _, tc := range cases {
		resp, data := f.do(t, tc.method, tc.path, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d %s, want %d", tc.name, resp.StatusCode, data, tc.status)
			continue
		}
		detail := decodeError(t, data)
		if detail.Code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.name, detail.Code, tc.code)
		}
		if tc.wantWait {
			ra := resp.Header.Get("Retry-After")
			secs, err := strconv.Atoi(ra)
			if err != nil || secs < 1 {
				t.Errorf("%s: Retry-After %q is not a positive integer", tc.name, ra)
			}
			if detail.RetryAfterSeconds != secs {
				t.Errorf("%s: body retry_after_seconds %d != header %d", tc.name, detail.RetryAfterSeconds, secs)
			}
		}
	}
}

func TestHTTPEventsStreamNDJSON(t *testing.T) {
	f := newHTTPFixture(t, server.Options{})
	if resp, data := f.do(t, http.MethodPost, "/v1/jobs", httpSpec("st")); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST = %d %s", resp.StatusCode, data)
	}
	waitDoneHTTP(t, f, "st")

	resp, err := f.ts.Client().Get(f.ts.URL + "/v1/jobs/st/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q, want application/x-ndjson", ct)
	}
	var types []string
	var last server.Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev server.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %q is not a JSON event: %v", sc.Text(), err)
		}
		types = append(types, ev.Type)
		last = ev
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	if len(types) < 3 || types[0] != server.EventQueued || types[1] != server.EventRunning {
		t.Fatalf("event types %v, want queued, running, ..., done", types)
	}
	if last.Type != server.EventDone || last.Digest == "" {
		t.Fatalf("terminal event %+v, want done with digest", last)
	}
	if last.TasksDone != 1 || last.TasksTotal != 1 {
		t.Fatalf("terminal progress %d/%d, want 1/1", last.TasksDone, last.TasksTotal)
	}
}

func TestHTTPMetricsEndpoint(t *testing.T) {
	f := newHTTPFixture(t, server.Options{})
	if resp, data := f.do(t, http.MethodPost, "/v1/jobs", httpSpec("m")); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST = %d %s", resp.StatusCode, data)
	}
	waitDoneHTTP(t, f, "m")

	resp, data := f.do(t, http.MethodGet, "/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("Content-Type %q, want text/plain exposition", ct)
	}
	text := string(data)
	if err := metrics.CheckPrometheusText(text); err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, text)
	}
	for _, series := range []string{
		"server_queue_depth",
		`server_jobs{state="done"}`,
		"server_http_request_ms_bucket",
		"server_jobs_admitted_total 1",
		"sim_ops_total", // sim series from the completed job's snapshot
	} {
		if !strings.Contains(text, series) {
			t.Errorf("exposition lacks %q:\n%s", series, text)
		}
	}
}

func TestHTTPHealthAndReadiness(t *testing.T) {
	f := newHTTPFixture(t, server.Options{})
	if resp, _ := f.do(t, http.MethodGet, "/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
	if resp, _ := f.do(t, http.MethodGet, "/readyz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d, want 200", resp.StatusCode)
	}
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := f.srv.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	resp, data := f.do(t, http.MethodGet, "/readyz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain = %d, want 503", resp.StatusCode)
	}
	if detail := decodeError(t, data); detail.Code != "unavailable" {
		t.Fatalf("readyz code %q, want unavailable", detail.Code)
	}
	// healthz stays 200: the process is alive, just not admitting.
	if resp, _ := f.do(t, http.MethodGet, "/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after drain = %d, want 200", resp.StatusCode)
	}
}

func TestHTTPSubmitBodyTooLarge(t *testing.T) {
	f := newHTTPFixture(t, server.Options{})
	spec := httpSpec("big")
	for i := 0; i < 1<<17; i++ {
		spec.Workloads = append(spec.Workloads, "microbenchmark")
	}
	resp, data := f.do(t, http.MethodPost, "/v1/jobs", spec)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized POST = %d %s, want 400", resp.StatusCode, truncate(data))
	}
}

func truncate(b []byte) string {
	if len(b) > 200 {
		b = b[:200]
	}
	return string(b)
}

func ExampleJobSpec() {
	spec := server.JobSpec{
		Workloads: []string{"volano"},
		Policies:  []string{"default", "clustered"},
		Topos:     []string{"open720"},
		Seed:      1,
	}
	fmt.Println(spec.Cost() > 0)
	// Output: true
}
