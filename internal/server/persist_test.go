package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"threadcluster/internal/errs"
)

// writeSpoolFile drops raw bytes into a spool directory under name.
func writeSpoolFile(t *testing.T, dir, name string, data string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(data), 0o666); err != nil {
		t.Fatal(err)
	}
}

// TestSpoolQuarantine: corrupt spool and checkpoint files must be
// renamed aside with a structured ErrSpoolCorrupt warning while valid
// neighbors re-admit — a damaged file costs one job, never the daemon.
func TestSpoolQuarantine(t *testing.T) {
	spool := t.TempDir()
	valid, err := json.Marshal(smallSpec("survivor"))
	if err != nil {
		t.Fatal(err)
	}
	writeSpoolFile(t, spool, "00000000-truncated.json", `{"id": "trunc", "workloads": ["micro`)
	writeSpoolFile(t, spool, "00000001-survivor.json", string(valid))
	writeSpoolFile(t, spool, "00000002-badspec.json", `{"id": "nogrid", "workloads": [], "policies": [], "topos": []}`)
	writeSpoolFile(t, spool, "garbage.ckpt", "not json at all")
	// Structurally valid checkpoint whose cell disagrees with its grid.
	ckpt, err := json.Marshal(checkpointFile{
		Spec:  mustNormalize(t, smallSpec("liar")),
		Cells: []checkpointCell{{Index: 0, Name: "wrong/cell/name", Seed: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	writeSpoolFile(t, spool, "liar.ckpt", string(ckpt))

	s := startServer(t, Options{SpoolDir: spool}, nil)

	if st := waitTerminal(t, s, "survivor"); st.State != StateDone {
		t.Fatalf("survivor state = %s (err %q), want done", st.State, st.Error)
	}
	warnings := s.SpoolWarnings()
	if len(warnings) != 4 {
		t.Fatalf("SpoolWarnings() = %d warnings %v, want 4", len(warnings), warnings)
	}
	for _, w := range warnings {
		if !errors.Is(w, errs.ErrSpoolCorrupt) {
			t.Errorf("warning %v does not wrap ErrSpoolCorrupt", w)
		}
	}
	entries, err := listSpool(spool)
	if err != nil {
		t.Fatal(err)
	}
	var quarantined []string
	for _, name := range entries {
		if strings.HasSuffix(name, quarantineSuffix) {
			quarantined = append(quarantined, name)
		} else {
			t.Errorf("unexpected non-quarantined spool entry %q", name)
		}
	}
	if len(quarantined) != 4 {
		t.Fatalf("quarantined files = %v, want 4", quarantined)
	}
	if got := s.reg.Counter("server_spool_quarantined_total", nil).Value(); got != 4 {
		t.Fatalf("server_spool_quarantined_total = %d, want 4", got)
	}
}

func mustNormalize(t *testing.T, spec JobSpec) JobSpec {
	t.Helper()
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	return norm
}

// TestCheckpointResumeDigest is the kill-mid-run regression pin: a job
// cut down by a drain after completing exactly one grid cell leaves a
// checkpoint, and a restarted server — driven over HTTP like a real
// client — resumes it to the byte-identical payload the offline sweep
// (and hence an uninterrupted server run) produces.
func TestCheckpointResumeDigest(t *testing.T) {
	spool := t.TempDir()
	spec := diffSpec("resume-me")
	spec.Workers = 1 // cells run serially: the cut point is exact

	firstCell := make(chan struct{}, 1)
	release := make(chan struct{})
	s1 := startServer(t, Options{JobWorkers: 1, SpoolDir: spool, CheckpointEvery: 1}, func(s *Server) {
		s.afterTask = func(*job, int) {
			select {
			case firstCell <- struct{}{}:
				<-release // hold the worker until the drain deadline cuts the job
			default:
			}
		}
	})
	if _, err := s1.Submit(context.Background(), spec); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-firstCell

	cut, cancel := context.WithCancel(context.Background())
	cancel() // deadline already struck: the drain cuts immediately
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s1.Shutdown(cut) }()
	// Shutdown cancels the running job's context, then the held worker
	// resumes, fails the remaining cells and settles the job as cut.
	close(release)
	if err := <-shutdownDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("Shutdown err = %v, want context.Canceled (cut drain)", err)
	}
	if st, _ := s1.Status("resume-me"); st.State != StateCanceled {
		t.Fatalf("state after cut = %s, want canceled", st.State)
	}

	// The checkpoint on disk records exactly the one completed cell.
	data, err := os.ReadFile(filepath.Join(spool, "resume-me"+checkpointSuffix))
	if err != nil {
		t.Fatalf("reading checkpoint: %v", err)
	}
	var cf checkpointFile
	if err := json.Unmarshal(data, &cf); err != nil {
		t.Fatalf("parsing checkpoint: %v", err)
	}
	if len(cf.Cells) != 1 {
		t.Fatalf("checkpoint holds %d cells, want 1 (cut after the first)", len(cf.Cells))
	}

	// Restart onto the same spool and drive the resumed job over HTTP.
	s2 := startServer(t, Options{SpoolDir: spool}, nil)
	ts := httptest.NewServer(s2.Handler())
	defer ts.Close()

	if st := waitTerminal(t, s2, "resume-me"); st.State != StateDone {
		t.Fatalf("resumed state = %s (err %q), want done", st.State, st.Error)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/resume-me/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d, want 200", resp.StatusCode)
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading result body: %v", err)
	}
	want := offlinePayload(t, spec, 1)
	if string(got) != string(want) {
		t.Fatalf("resumed payload differs from offline payload:\nresumed %d bytes\noffline %d bytes", len(got), len(want))
	}

	// The resumed job settled cleanly: its checkpoint is retired.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(filepath.Join(spool, "resume-me"+checkpointSuffix)); os.IsNotExist(err) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("checkpoint file still present after the resumed job settled")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCheckpointPeriodicFlush: with CheckpointEvery=1 every completed
// cell lands on disk, so even a kill with no drain (simulated by
// reading the file mid-run) resumes from the last flush.
func TestCheckpointPeriodicFlush(t *testing.T) {
	spool := t.TempDir()
	spec := diffSpec("flush-watch")
	spec.Workers = 1

	type flushState struct {
		cells int
		err   error
	}
	observed := make(chan flushState, 16)
	s := startServer(t, Options{JobWorkers: 1, SpoolDir: spool, CheckpointEvery: 1}, func(s *Server) {
		s.afterTask = func(j *job, _ int) {
			data, err := os.ReadFile(filepath.Join(spool, j.spec.ID+checkpointSuffix))
			if err != nil {
				observed <- flushState{err: err}
				return
			}
			var cf checkpointFile
			if err := json.Unmarshal(data, &cf); err != nil {
				observed <- flushState{err: err}
				return
			}
			observed <- flushState{cells: len(cf.Cells)}
		}
	})
	if _, err := s.Submit(context.Background(), spec); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st := waitTerminal(t, s, "flush-watch"); st.State != StateDone {
		t.Fatalf("state = %s (err %q), want done", st.State, st.Error)
	}
	for i := 1; i <= 4; i++ {
		fs := <-observed
		if fs.err != nil {
			t.Fatalf("after cell %d: reading checkpoint: %v", i, fs.err)
		}
		if fs.cells != i {
			t.Fatalf("after cell %d the checkpoint holds %d cells, want %d", i, fs.cells, i)
		}
	}
}
