package server

import (
	"context"
	"sync"
	"time"

	"threadcluster/internal/metrics"
)

// Event types emitted on a job's NDJSON stream, in lifecycle order:
// queued, running, one task event per grid cell as it completes, then
// exactly one terminal event (done, failed, canceled, or shutdown when
// the server drains out from under the stream).
const (
	EventQueued   = "queued"
	EventRunning  = "running"
	EventTask     = "task"
	EventDone     = "done"
	EventFailed   = "failed"
	EventCanceled = "canceled"
	EventShutdown = "shutdown"
)

// Event is one line of a job's progress stream. Timestamps come from the
// server Clock and are operational only: nothing on this stream is part
// of the deterministic result payload, and task events may arrive in any
// completion order under a concurrent sweep pool (the payload re-orders
// results into grid order).
type Event struct {
	// Seq numbers events per job from 0; gaps mean the ring dropped
	// events before this subscriber attached (see Dropped).
	Seq int `json:"seq"`
	// Time is the server's wall-clock timestamp for the event.
	Time time.Time `json:"time"`
	// Type is one of the Event* constants.
	Type string `json:"type"`
	// Job is the owning job's ID.
	Job string `json:"job"`

	// Task names the completed grid cell on task events.
	Task string `json:"task,omitempty"`
	// TasksDone / TasksTotal track progress on task and terminal events.
	TasksDone  int `json:"tasks_done,omitempty"`
	TasksTotal int `json:"tasks_total,omitempty"`
	// Cycles, Insts and Ops are the completed cell's headline metric
	// deltas (that task's snapshot counters).
	Cycles uint64 `json:"cycles,omitempty"`
	Insts  uint64 `json:"insts,omitempty"`
	Ops    uint64 `json:"ops,omitempty"`
	// Error carries the cause on failed/canceled events.
	Error string `json:"error,omitempty"`
	// Digest is the result payload digest on done events.
	Digest string `json:"digest,omitempty"`
}

// eventLog is a per-job bounded event history plus broadcast: appends
// retain the last cap events (older ones are dropped and counted), and
// every append wakes all blocked subscribers by closing the current
// update channel. A subscriber replays whatever is retained from the
// earliest event on, then follows live; after close it drains and ends.
type eventLog struct {
	mu       sync.Mutex
	capacity int
	events   []Event // events[i].Seq == firstSeq+i
	firstSeq int
	nextSeq  int
	dropped  int
	closed   bool
	updated  chan struct{}

	droppedTotal *metrics.Counter // server-wide drop counter (may be nil)
}

func newEventLog(capacity int, droppedTotal *metrics.Counter) *eventLog {
	if capacity < 1 {
		capacity = 1
	}
	return &eventLog{
		capacity:     capacity,
		updated:      make(chan struct{}),
		droppedTotal: droppedTotal,
	}
}

// append stamps ev with the next sequence number and publishes it. After
// close, appends are dropped silently (the terminal event is final).
func (l *eventLog) append(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	ev.Seq = l.nextSeq
	l.nextSeq++
	l.events = append(l.events, ev)
	if len(l.events) > l.capacity {
		over := len(l.events) - l.capacity
		l.events = append([]Event(nil), l.events[over:]...)
		l.firstSeq += over
		l.dropped += over
		if l.droppedTotal != nil {
			l.droppedTotal.Add(uint64(over))
		}
	}
	close(l.updated)
	l.updated = make(chan struct{})
}

// closeLog marks the stream complete and wakes subscribers so they can
// drain and finish. Idempotent.
func (l *eventLog) closeLog() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	close(l.updated)
	l.updated = make(chan struct{})
}

// snapshotFrom returns the retained events with Seq >= cursor, the
// channel that will signal the next append, and whether the log is
// closed.
func (l *eventLog) snapshotFrom(cursor int) ([]Event, <-chan struct{}, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	start := cursor - l.firstSeq
	if start < 0 {
		start = 0 // events before firstSeq were dropped; resume at the oldest retained
	}
	var out []Event
	if start < len(l.events) {
		out = append(out, l.events[start:]...)
	}
	return out, l.updated, l.closed
}

// subscribe streams events to fn from the earliest retained event until
// the log closes, ctx is cancelled, or fn errors. fn runs without the
// log lock held.
func (l *eventLog) subscribe(ctx context.Context, fn func(Event) error) error {
	cursor := 0
	for {
		evs, updated, closed := l.snapshotFrom(cursor)
		for _, ev := range evs {
			if err := fn(ev); err != nil {
				return err
			}
			cursor = ev.Seq + 1
		}
		if closed {
			return nil
		}
		select {
		case <-updated:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Dropped reports how many early events the ring discarded.
func (l *eventLog) Dropped() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}
