package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"threadcluster/internal/errs"
)

// Spool format: one JSON JobSpec per file, named
// "<zero-padded seq>-<job id>.json" so lexical directory order is
// admission order. The files are plain specs — replayable by hand with
// `tcsim submit -spec file.json` as well as by a restarting server —
// and because a job's result is a pure function of its spec, a re-run
// after restart produces the byte-identical payload the original
// admission would have.

// spool persists queued-but-unstarted jobs (in admission order) to
// Options.SpoolDir. A nil SpoolDir drops them (the jobs were never
// started; their specs are the client's to resubmit).
func (s *Server) spool(queued []*job) error {
	if s.opt.SpoolDir == "" || len(queued) == 0 {
		return nil
	}
	if err := os.MkdirAll(s.opt.SpoolDir, 0o777); err != nil {
		return fmt.Errorf("server: creating spool dir: %w", err)
	}
	for i, j := range queued {
		data, err := json.MarshalIndent(j.spec, "", "  ")
		if err != nil {
			return fmt.Errorf("server: spooling job %q: %w", j.spec.ID, err)
		}
		name := fmt.Sprintf("%08d-%s.json", i, j.spec.ID)
		if err := os.WriteFile(filepath.Join(s.opt.SpoolDir, name), append(data, '\n'), 0o666); err != nil {
			return fmt.Errorf("server: spooling job %q: %w", j.spec.ID, err)
		}
		s.mJobsSpooled.Inc()
	}
	return nil
}

// loadSpool re-admits every spec file found in SpoolDir, in lexical
// (= original admission) order, deleting each file once its job is back
// in the queue. Specs that no longer fit (queue depth, token pool)
// remain on disk for the next start; specs that fail to parse or
// validate are left in place and reported.
func (s *Server) loadSpool() error {
	if s.opt.SpoolDir == "" {
		return nil
	}
	entries, err := os.ReadDir(s.opt.SpoolDir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("server: reading spool dir: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(s.opt.SpoolDir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("server: reading spooled spec %s: %w", name, err)
		}
		var spec JobSpec
		if err := json.Unmarshal(data, &spec); err != nil {
			return fmt.Errorf("server: parsing spooled spec %s: %w", name, err)
		}
		if _, err := s.Submit(s.baseCtx, spec); err != nil {
			if errors.Is(err, errs.ErrOverloaded) {
				return nil // no room this start; the rest stays spooled
			}
			return fmt.Errorf("server: re-admitting spooled spec %s: %w", name, err)
		}
		s.mJobsReadmitted.Inc()
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("server: removing spooled spec %s: %w", name, err)
		}
	}
	return nil
}
