package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"threadcluster/internal/errs"
	"threadcluster/internal/metrics"
)

// Spool format: one JSON JobSpec per file, named
// "<zero-padded seq>-<job id>.json" so lexical directory order is
// admission order. The files are plain specs — replayable by hand with
// `tcsim submit -spec file.json` as well as by a restarting server —
// and because a job's result is a pure function of its spec, a re-run
// after restart produces the byte-identical payload the original
// admission would have.
//
// Checkpoint format: one JSON checkpointFile per running job, named
// "<job id>.ckpt" beside the spool specs. A checkpoint carries the
// normalized spec plus every completed grid cell's metrics snapshot;
// grid cells are independent machines with spec-derived seeds
// (sweep.DeriveSeed), so a resumed job restores the recorded cells and
// re-runs only the missing ones, producing the byte-identical payload
// an uninterrupted run yields. Checkpoints are flushed every
// Options.CheckpointEvery completed cells and when a graceful drain
// cuts a running job; a job that settles normally deletes its file.
//
// Files that fail to parse or validate at re-admission are quarantined:
// renamed to "<name>.quarantine", recorded as an errs.ErrSpoolCorrupt
// warning (SpoolWarnings), counted in server_spool_quarantined_total —
// and the daemon keeps starting.

const (
	checkpointSuffix = ".ckpt"
	spoolSuffix      = ".json"
	quarantineSuffix = ".quarantine"
)

// checkpointFile is the on-disk form of a running job's progress.
type checkpointFile struct {
	// Spec is the job's normalized spec; the grid (and every cell seed)
	// derives from it.
	Spec JobSpec `json:"spec"`
	// Cells lists the completed grid cells in grid-index order.
	Cells []checkpointCell `json:"cells"`
}

// checkpointCell is one completed grid cell: its position, identity and
// the metrics snapshot the re-assembled payload will carry for it.
type checkpointCell struct {
	Index   int              `json:"index"`
	Name    string           `json:"name"`
	Seed    int64            `json:"seed"`
	Metrics metrics.Snapshot `json:"metrics"`
}

// spool persists queued-but-unstarted jobs (in admission order) to
// Options.SpoolDir. A nil SpoolDir drops them (the jobs were never
// started; their specs are the client's to resubmit).
func (s *Server) spool(queued []*job) error {
	if s.opt.SpoolDir == "" || len(queued) == 0 {
		return nil
	}
	if err := os.MkdirAll(s.opt.SpoolDir, 0o777); err != nil {
		return fmt.Errorf("server: creating spool dir: %w", err)
	}
	for i, j := range queued {
		data, err := json.MarshalIndent(j.spec, "", "  ")
		if err != nil {
			return fmt.Errorf("server: spooling job %q: %w", j.spec.ID, err)
		}
		name := fmt.Sprintf("%08d-%s%s", i, j.spec.ID, spoolSuffix)
		if err := os.WriteFile(filepath.Join(s.opt.SpoolDir, name), append(data, '\n'), 0o666); err != nil {
			return fmt.Errorf("server: spooling job %q: %w", j.spec.ID, err)
		}
		s.mJobsSpooled.Inc()
	}
	return nil
}

// loadSpool re-admits persisted work found in SpoolDir: checkpoints of
// cut-down running jobs first (they were admitted before anything that
// was still queued at shutdown), then spooled specs, each group in
// lexical (= original admission) order. Spec files are deleted once
// their job is back in the queue; checkpoint files stay until the
// resumed job settles, so a crash between re-admission and completion
// still resumes. Jobs that no longer fit (queue depth, token pool)
// remain on disk for the next start. Files that fail to parse or
// validate are quarantined and reported through SpoolWarnings — a
// corrupt file never stops the daemon from starting.
func (s *Server) loadSpool() error {
	if s.opt.SpoolDir == "" {
		return nil
	}
	entries, err := os.ReadDir(s.opt.SpoolDir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("server: reading spool dir: %w", err)
	}
	var ckpts, specs []string
	for _, e := range entries {
		switch {
		case e.IsDir():
		case strings.HasSuffix(e.Name(), checkpointSuffix):
			ckpts = append(ckpts, e.Name())
		case strings.HasSuffix(e.Name(), spoolSuffix):
			specs = append(specs, e.Name())
		}
	}
	sort.Strings(ckpts)
	sort.Strings(specs)

	for _, name := range ckpts {
		full, err := s.readmitCheckpoint(name)
		if err != nil {
			s.quarantine(name, err)
			continue
		}
		if full {
			return nil // no room this start; the rest stays on disk
		}
	}
	for _, name := range specs {
		path := filepath.Join(s.opt.SpoolDir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("server: reading spooled spec %s: %w", name, err)
		}
		var spec JobSpec
		if err := json.Unmarshal(data, &spec); err != nil {
			s.quarantine(name, fmt.Errorf("parsing spec: %w", err))
			continue
		}
		full, err := s.readmit(spec, nil)
		if err != nil {
			s.quarantine(name, err)
			continue
		}
		if full {
			return nil
		}
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("server: removing spooled spec %s: %w", name, err)
		}
	}
	return nil
}

// readmitCheckpoint loads, validates and re-admits one checkpoint file.
// Returns full=true when the queue had no room (the file stays for the
// next start); any error means the file is corrupt or no longer
// admissible and should be quarantined.
func (s *Server) readmitCheckpoint(name string) (full bool, err error) {
	data, readErr := os.ReadFile(filepath.Join(s.opt.SpoolDir, name))
	if readErr != nil {
		return false, fmt.Errorf("reading checkpoint: %w", readErr)
	}
	var cf checkpointFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return false, fmt.Errorf("parsing checkpoint: %w", err)
	}
	completed, err := cf.validate()
	if err != nil {
		return false, err
	}
	return s.readmit(cf.Spec, completed)
}

// validate checks a checkpoint's cells against the grid its spec
// derives, returning the completed-cell map a resumed job starts from.
func (cf checkpointFile) validate() (map[int]checkpointCell, error) {
	norm, err := cf.Spec.Normalize()
	if err != nil {
		return nil, fmt.Errorf("validating checkpointed spec: %w", err)
	}
	if norm.ID == "" {
		return nil, fmt.Errorf("checkpointed spec has no job ID")
	}
	cells, _, err := norm.compile()
	if err != nil {
		return nil, fmt.Errorf("compiling checkpointed grid: %w", err)
	}
	completed := make(map[int]checkpointCell, len(cf.Cells))
	for _, cc := range cf.Cells {
		if cc.Index < 0 || cc.Index >= len(cells) {
			return nil, fmt.Errorf("cell index %d outside grid of %d cells", cc.Index, len(cells))
		}
		if _, dup := completed[cc.Index]; dup {
			return nil, fmt.Errorf("duplicate cell index %d", cc.Index)
		}
		want := cells[cc.Index]
		if cc.Name != want.Name() || cc.Seed != want.Seed {
			return nil, fmt.Errorf("cell %d is %q seed %d, grid says %q seed %d",
				cc.Index, cc.Name, cc.Seed, want.Name(), want.Seed)
		}
		completed[cc.Index] = cc
	}
	return completed, nil
}

// readmit normalizes and admits one persisted spec, seeding the job with
// any checkpointed cells. full=true means the queue rejected it with
// backpressure (leave the file; stop re-admitting); an error means the
// spec itself is unusable (quarantine it).
func (s *Server) readmit(spec JobSpec, completed map[int]checkpointCell) (full bool, err error) {
	norm, err := spec.Normalize()
	if err != nil {
		return false, fmt.Errorf("validating spec: %w", err)
	}
	// A spool carrying the same job ID twice (a checkpoint plus a stale
	// spec, or an operator-copied file) must not double-queue the job:
	// the second file is a bad config, quarantined like any other
	// invalid spec, and the first admission stands.
	if norm.ID != "" {
		s.mu.Lock()
		_, dup := s.jobs[norm.ID]
		s.mu.Unlock()
		if dup {
			return false, fmt.Errorf("%w: duplicate job ID %q in spool (already re-admitted this start)", errs.ErrBadConfig, norm.ID)
		}
	}
	cost := norm.Cost()
	if cost > s.opt.MaxJobCost {
		return false, fmt.Errorf("cost %d exceeds per-job budget %d", cost, s.opt.MaxJobCost)
	}
	if _, err := s.admit(norm, cost, completed); err != nil {
		if errors.Is(err, errs.ErrOverloaded) {
			return true, nil
		}
		return false, fmt.Errorf("re-admitting: %w", err)
	}
	s.mJobsReadmitted.Inc()
	return false, nil
}

// quarantine renames a bad spool/checkpoint file aside and records the
// structured warning. The daemon keeps starting: a corrupt file costs
// one job, not the whole service.
func (s *Server) quarantine(name string, cause error) {
	werr := fmt.Errorf("server: %w: %s: %v", errs.ErrSpoolCorrupt, name, cause)
	path := filepath.Join(s.opt.SpoolDir, name)
	if err := os.Rename(path, path+quarantineSuffix); err != nil {
		werr = fmt.Errorf("%w (quarantine rename failed: %v)", werr, err)
	}
	s.mSpoolQuarantined.Inc()
	s.mu.Lock()
	s.spoolWarnings = append(s.spoolWarnings, werr)
	s.mu.Unlock()
}

// SpoolWarnings returns the structured warnings Start accumulated while
// re-admitting persisted work: one errs.ErrSpoolCorrupt-wrapping error
// per quarantined file plus any checkpoint-write failures, in
// occurrence order. Empty on a clean start.
func (s *Server) SpoolWarnings() []error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]error(nil), s.spoolWarnings...)
}

// checkpointCells snapshots a job's completed cells in grid order.
// Caller holds the server mutex.
func checkpointCells(j *job) []checkpointCell {
	cells := make([]checkpointCell, 0, len(j.completed))
	for _, cc := range j.completed {
		cells = append(cells, cc)
	}
	sort.Slice(cells, func(i, k int) bool { return cells[i].Index < cells[k].Index })
	return cells
}

// writeCheckpoint atomically persists a job's checkpoint file (write to
// a temp name, rename into place), so a crash mid-write never leaves a
// truncated checkpoint where a valid one stood. Failures are recorded
// as warnings, not job failures: losing a checkpoint costs resumability,
// not correctness.
func (s *Server) writeCheckpoint(spec JobSpec, cells []checkpointCell) {
	record := func(err error) {
		s.mu.Lock()
		s.spoolWarnings = append(s.spoolWarnings, err)
		s.mu.Unlock()
	}
	if err := os.MkdirAll(s.opt.SpoolDir, 0o777); err != nil {
		record(fmt.Errorf("server: creating spool dir for checkpoint %q: %w", spec.ID, err))
		return
	}
	data, err := json.MarshalIndent(checkpointFile{Spec: spec, Cells: cells}, "", "  ")
	if err != nil {
		record(fmt.Errorf("server: marshaling checkpoint %q: %w", spec.ID, err))
		return
	}
	path := filepath.Join(s.opt.SpoolDir, spec.ID+checkpointSuffix)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o666); err != nil {
		record(fmt.Errorf("server: writing checkpoint %q: %w", spec.ID, err))
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		record(fmt.Errorf("server: installing checkpoint %q: %w", spec.ID, err))
		return
	}
	s.mCheckpoints.Inc()
}

// removeCheckpoint deletes a settled job's checkpoint file, if any.
func (s *Server) removeCheckpoint(id string) {
	err := os.Remove(filepath.Join(s.opt.SpoolDir, id+checkpointSuffix))
	if err != nil && !os.IsNotExist(err) {
		s.mu.Lock()
		s.spoolWarnings = append(s.spoolWarnings, fmt.Errorf("server: removing checkpoint %q: %w", id, err))
		s.mu.Unlock()
	}
}
