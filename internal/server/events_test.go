package server

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func logEvent(i int) Event {
	return Event{Type: EventTask, Job: "j", Task: fmt.Sprintf("t%d", i)}
}

func TestEventLogReplay(t *testing.T) {
	l := newEventLog(16, nil)
	for i := 0; i < 3; i++ {
		l.append(logEvent(i))
	}
	l.closeLog()
	var got []Event
	if err := l.subscribe(context.Background(), func(ev Event) error {
		got = append(got, ev)
		return nil
	}); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("replayed %d events, want 3", len(got))
	}
	for i, ev := range got {
		if ev.Seq != i || ev.Task != fmt.Sprintf("t%d", i) {
			t.Fatalf("event %d = %+v, want seq %d task t%d", i, ev, i, i)
		}
	}
}

func TestEventLogOverflowKeepsTail(t *testing.T) {
	l := newEventLog(4, nil)
	for i := 0; i < 10; i++ {
		l.append(logEvent(i))
	}
	l.closeLog()
	var got []Event
	if err := l.subscribe(context.Background(), func(ev Event) error {
		got = append(got, ev)
		return nil
	}); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	if len(got) != 4 {
		t.Fatalf("retained %d events, want 4", len(got))
	}
	if got[0].Seq != 6 || got[3].Seq != 9 {
		t.Fatalf("retained seqs %d..%d, want 6..9", got[0].Seq, got[3].Seq)
	}
	if l.Dropped() != 6 {
		t.Fatalf("Dropped() = %d, want 6", l.Dropped())
	}
}

func TestEventLogLiveFollow(t *testing.T) {
	l := newEventLog(16, nil)
	l.append(logEvent(0))

	got := make(chan Event, 16)
	done := make(chan error, 1)
	go func() {
		done <- l.subscribe(context.Background(), func(ev Event) error {
			got <- ev
			return nil
		})
	}()
	read := func() Event {
		select {
		case ev := <-got:
			return ev
		case <-time.After(10 * time.Second):
			t.Fatal("timed out waiting for event")
			return Event{}
		}
	}
	if ev := read(); ev.Seq != 0 {
		t.Fatalf("first event seq %d, want 0 (replay)", ev.Seq)
	}
	l.append(logEvent(1))
	if ev := read(); ev.Seq != 1 {
		t.Fatalf("live event seq %d, want 1", ev.Seq)
	}
	l.closeLog()
	if err := <-done; err != nil {
		t.Fatalf("subscribe after close: %v", err)
	}
}

func TestEventLogSubscribeHonorsContext(t *testing.T) {
	l := newEventLog(16, nil)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- l.subscribe(ctx, func(Event) error { return nil })
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("subscribe err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("subscriber did not unblock on ctx cancel")
	}
}

func TestEventLogCallbackErrorStops(t *testing.T) {
	l := newEventLog(16, nil)
	l.append(logEvent(0))
	l.append(logEvent(1))
	boom := errors.New("boom")
	n := 0
	err := l.subscribe(context.Background(), func(Event) error {
		n++
		return boom
	})
	if !errors.Is(err, boom) || n != 1 {
		t.Fatalf("subscribe = (%v, %d calls), want boom after 1 call", err, n)
	}
}
