package server

import (
	"context"
	"fmt"
	"testing"

	"threadcluster/internal/experiments"
)

// diffSpec is a 4-cell grid (2 workloads x 2 policies) exercising the
// clustered policy alongside the default one.
func diffSpec(id string) JobSpec {
	return JobSpec{
		ID:            id,
		Workloads:     []string{"microbenchmark", "volano"},
		Policies:      []string{"default", "clustered"},
		Topos:         []string{"open720"},
		Seed:          42,
		WarmRounds:    2,
		EngineRounds:  30,
		MeasureRounds: 10,
	}
}

// offlinePayload runs the spec's grid on the offline sweep path (the
// `tcsim sweep` code path) and returns the canonical payload bytes.
func offlinePayload(t *testing.T, spec JobSpec, workers int) []byte {
	t.Helper()
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	grid, err := norm.Grid()
	if err != nil {
		t.Fatalf("Grid: %v", err)
	}
	cells, results, merged, err := experiments.RunGrid(context.Background(), grid, workers)
	if err != nil {
		t.Fatalf("RunGrid: %v", err)
	}
	payload, err := BuildResultPayload(cells, results, merged)
	if err != nil {
		t.Fatalf("BuildResultPayload: %v", err)
	}
	data, err := payload.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	return data
}

// TestServerPayloadMatchesOffline is the differential determinism test
// the package contract promises: the same spec executed (a) offline with
// one worker, (b) offline with many workers, (c) on a serial server and
// (d) concurrently on a loaded parallel server yields byte-identical
// result payloads.
func TestServerPayloadMatchesOffline(t *testing.T) {
	if testing.Short() {
		t.Skip("differential determinism test runs full grids")
	}
	want := offlinePayload(t, diffSpec("x"), 1)
	if got := offlinePayload(t, diffSpec("x"), 4); string(got) != string(want) {
		t.Fatal("offline payload differs between 1 and 4 sweep workers")
	}

	serial := startServer(t, Options{JobWorkers: 1, TaskWorkers: 1}, nil)
	if _, err := serial.Submit(context.Background(), diffSpec("serial")); err != nil {
		t.Fatalf("Submit serial: %v", err)
	}
	if st := waitTerminal(t, serial, "serial"); st.State != StateDone {
		t.Fatalf("serial state = %s (err %q), want done", st.State, st.Error)
	}
	got, err := serial.Result("serial")
	if err != nil {
		t.Fatalf("Result serial: %v", err)
	}
	if string(got) != string(want) {
		t.Fatal("serial server payload differs from offline payload")
	}

	// A loaded concurrent server: three copies of the same grid racing
	// across three job workers, each with a parallel sweep pool.
	loaded := startServer(t, Options{JobWorkers: 3, TaskWorkers: 4}, nil)
	ids := []string{"c-0", "c-1", "c-2"}
	for _, id := range ids {
		if _, err := loaded.Submit(context.Background(), diffSpec(id)); err != nil {
			t.Fatalf("Submit %s: %v", id, err)
		}
	}
	for _, id := range ids {
		if st := waitTerminal(t, loaded, id); st.State != StateDone {
			t.Fatalf("%s state = %s (err %q), want done", id, st.State, st.Error)
		}
		got, err := loaded.Result(id)
		if err != nil {
			t.Fatalf("Result %s: %v", id, err)
		}
		if string(got) != string(want) {
			t.Fatalf("%s: concurrent server payload differs from offline payload", id)
		}
	}
}

// TestDigestMatchesOfflineDigest checks the digest equivalence the CI
// smoke test relies on: server-side job digest == offline Digest().
func TestDigestMatchesOfflineDigest(t *testing.T) {
	spec := smallSpec("dig")
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	grid, err := norm.Grid()
	if err != nil {
		t.Fatalf("Grid: %v", err)
	}
	cells, results, merged, err := experiments.RunGrid(context.Background(), grid, 1)
	if err != nil {
		t.Fatalf("RunGrid: %v", err)
	}
	offline, err := Digest(cells, results, merged)
	if err != nil {
		t.Fatalf("Digest: %v", err)
	}

	s := startServer(t, Options{}, nil)
	if _, err := s.Submit(context.Background(), spec); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st := waitTerminal(t, s, "dig")
	if st.State != StateDone {
		t.Fatalf("state = %s, want done", st.State)
	}
	if st.Digest != offline {
		t.Fatalf("server digest %s != offline digest %s", st.Digest, offline)
	}
}

// TestPayloadIndependentOfSpecID pins the property that makes replicas
// interchangeable: the payload depends on the grid, not the job's name.
func TestPayloadIndependentOfSpecID(t *testing.T) {
	s := startServer(t, Options{}, nil)
	var payloads []string
	for i := 0; i < 2; i++ {
		id := fmt.Sprintf("name-%d", i)
		if _, err := s.Submit(context.Background(), smallSpec(id)); err != nil {
			t.Fatalf("Submit %s: %v", id, err)
		}
		if st := waitTerminal(t, s, id); st.State != StateDone {
			t.Fatalf("%s state = %s, want done", id, st.State)
		}
		data, err := s.Result(id)
		if err != nil {
			t.Fatalf("Result %s: %v", id, err)
		}
		payloads = append(payloads, string(data))
	}
	if payloads[0] != payloads[1] {
		t.Fatal("payloads differ across job names for the same grid")
	}
}
