package server

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"threadcluster/internal/errs"
)

// jobQueue is the admission-controlled run queue: bounded depth, a
// bounded outstanding-token pool, priority ordering with FIFO within a
// priority level. Admission is non-blocking — a full queue or an
// exhausted pool rejects with errs.ErrOverloaded (the HTTP layer turns
// that into 429 + Retry-After) instead of queueing unboundedly, which is
// what keeps server memory bounded under overload.
//
// Tokens are reserved at admission and released when the job leaves the
// system (terminal state or spooled at shutdown), not at dequeue, so the
// pool bounds queued *plus* running work.
type jobQueue struct {
	mu        sync.Mutex
	depth     int   // max queued jobs
	maxTokens int64 // max outstanding (queued + running) cost
	tokens    int64 // current outstanding cost
	items     []*job
	wake      chan struct{} // capacity 1; pokes one idle worker
	stop      chan struct{} // closed on queue close
	closed    bool
}

func newJobQueue(depth int, maxTokens int64) *jobQueue {
	return &jobQueue{
		depth:     depth,
		maxTokens: maxTokens,
		wake:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
	}
}

// push admits j or rejects it with a reason the metrics distinguish.
// The job's cost must already be set.
func (q *jobQueue) push(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return fmt.Errorf("server: %w: admission stopped", errs.ErrUnavailable)
	}
	if len(q.items) >= q.depth {
		return fmt.Errorf("server: %w: queue full (%d jobs)", errs.ErrOverloaded, q.depth)
	}
	if q.tokens+j.cost > q.maxTokens {
		return fmt.Errorf("server: %w: token pool exhausted (%d outstanding + %d requested > %d)",
			errs.ErrOverloaded, q.tokens, j.cost, q.maxTokens)
	}
	q.tokens += j.cost
	q.items = append(q.items, j)
	q.signal()
	return nil
}

// pop blocks until a job is available, the queue closes (nil), or ctx is
// done (nil). Jobs come out highest priority first, admission order
// within a priority.
func (q *jobQueue) pop(ctx context.Context) *job {
	for {
		q.mu.Lock()
		if len(q.items) > 0 {
			best := 0
			for i, it := range q.items[1:] {
				if it.spec.Priority > q.items[best].spec.Priority ||
					(it.spec.Priority == q.items[best].spec.Priority && it.seq < q.items[best].seq) {
					best = i + 1
				}
			}
			j := q.items[best]
			q.items = append(q.items[:best], q.items[best+1:]...)
			if len(q.items) > 0 {
				q.signal() // more work: poke the next idle worker
			}
			q.mu.Unlock()
			return j
		}
		q.mu.Unlock()
		select {
		case <-q.wake:
		case <-q.stop:
			return nil
		case <-ctx.Done():
			return nil
		}
	}
}

// remove takes a queued job out of the queue (cancellation of a job that
// has not started). Reports whether it was present. Does not release
// tokens — the caller settles the job and releases.
func (q *jobQueue) remove(j *job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, it := range q.items {
		if it == j {
			q.items = append(q.items[:i], q.items[i+1:]...)
			return true
		}
	}
	return false
}

// drain closes admission and returns every job still queued, in
// admission order, for spooling. Workers blocked in pop return nil.
func (q *jobQueue) drain() []*job {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.closed {
		q.closed = true
		close(q.stop)
	}
	out := q.items
	q.items = nil
	sort.Slice(out, func(i, k int) bool { return out[i].seq < out[k].seq })
	return out
}

// release returns a settled job's tokens to the pool.
func (q *jobQueue) release(cost int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.tokens -= cost
	if q.tokens < 0 {
		q.tokens = 0
	}
}

// stats reports (queued jobs, outstanding tokens) for gauges and the
// Retry-After estimator.
func (q *jobQueue) stats() (int, int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items), q.tokens
}

func (q *jobQueue) signal() {
	select {
	case q.wake <- struct{}{}:
	default:
	}
}
