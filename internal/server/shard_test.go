package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"threadcluster/internal/errs"
)

// shardSpec is a 4-cell grid (2 workloads x 2 policies) light enough
// to run several times per test.
func shardSpec(id string) JobSpec {
	return JobSpec{
		ID:            id,
		Workloads:     []string{"microbenchmark", "volano"},
		Policies:      []string{"default", "clustered"},
		Topos:         []string{"open720"},
		Seed:          11,
		WarmRounds:    2,
		EngineRounds:  6,
		MeasureRounds: 4,
	}
}

// TestSubsetCellsValidation: Cells must be strictly increasing and in
// range, and a shard's cost is denominated in selected cells only.
func TestSubsetCellsValidation(t *testing.T) {
	base := shardSpec("subset")
	for _, tc := range []struct {
		name  string
		cells []int
	}{
		{"out of range", []int{0, 4}},
		{"negative", []int{-1}},
		{"duplicate", []int{1, 1}},
		{"unsorted", []int{2, 1}},
	} {
		spec := base
		spec.Cells = tc.cells
		if _, err := spec.Normalize(); !errors.Is(err, errs.ErrBadConfig) {
			t.Errorf("%s: Normalize = %v, want ErrBadConfig", tc.name, err)
		}
	}

	spec := base
	spec.Cells = []int{0, 2}
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatalf("valid subset rejected: %v", err)
	}
	full := base
	fullNorm, err := full.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Cost()*2 != fullNorm.Cost() {
		t.Errorf("2-of-4-cell shard cost = %d, full grid = %d; want half", norm.Cost(), fullNorm.Cost())
	}
}

// TestShardedCellsMatchFullGrid: two shard-scoped jobs covering the
// grid produce, cell for cell, the identical task results a full-grid
// job produces at those positions — names, seeds and metrics bytes.
// This is the server-side half of the fleet digest argument: shards
// preserve full-grid identities, so reassembly is pure bookkeeping.
func TestShardedCellsMatchFullGrid(t *testing.T) {
	want := decodePayload(t, offlinePayload(t, shardSpec("full"), 2))

	s := startServer(t, Options{JobWorkers: 2}, nil)
	for _, shard := range []struct {
		id    string
		cells []int
	}{
		{"shard-a", []int{0, 3}},
		{"shard-b", []int{1, 2}},
	} {
		spec := shardSpec(shard.id)
		spec.Cells = shard.cells
		if _, err := s.Submit(context.Background(), spec); err != nil {
			t.Fatalf("Submit(%s): %v", shard.id, err)
		}
		if st := waitTerminal(t, s, shard.id); st.State != StateDone {
			t.Fatalf("%s state = %s (err %q)", shard.id, st.State, st.Error)
		}
		data, err := s.Result(shard.id)
		if err != nil {
			t.Fatalf("Result(%s): %v", shard.id, err)
		}
		got := decodePayload(t, data)
		if len(got.Tasks) != len(shard.cells) {
			t.Fatalf("%s returned %d tasks, want %d", shard.id, len(got.Tasks), len(shard.cells))
		}
		for i, idx := range shard.cells {
			if !sameTask(t, got.Tasks[i], want.Tasks[idx]) {
				t.Errorf("%s cell %d differs from full-grid position %d", shard.id, i, idx)
			}
		}
	}
}

func decodePayload(t *testing.T, data []byte) ResultPayload {
	t.Helper()
	var p ResultPayload
	if err := json.Unmarshal(data, &p); err != nil {
		t.Fatalf("decoding payload: %v", err)
	}
	return p
}

// sameTask compares two task results by their canonical JSON bytes
// (snapshot maps marshal with sorted keys, so this is byte-stable).
func sameTask(t *testing.T, a, b TaskResult) bool {
	t.Helper()
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return string(aj) == string(bj)
}

// TestSpoolDuplicateIDRejected: a spool carrying the same job ID twice
// admits the first file and quarantines the second as a bad config —
// never double-queues. Guards the fleet coordinator's crash-resume
// path, where a checkpoint and a stale operator-copied spec can
// coexist.
func TestSpoolDuplicateIDRejected(t *testing.T) {
	spool := t.TempDir()
	valid, err := json.Marshal(smallSpec("twin"))
	if err != nil {
		t.Fatal(err)
	}
	writeSpoolFile(t, spool, "00000000-twin.json", string(valid))
	writeSpoolFile(t, spool, "00000001-twin.json", string(valid))

	s := startServer(t, Options{SpoolDir: spool}, nil)

	if st := waitTerminal(t, s, "twin"); st.State != StateDone {
		t.Fatalf("twin state = %s (err %q), want done", st.State, st.Error)
	}
	var withID int
	for _, st := range s.Jobs() {
		if st.ID == "twin" {
			withID++
		}
	}
	if withID != 1 {
		t.Fatalf("job twin admitted %d times, want once", withID)
	}
	warnings := s.SpoolWarnings()
	if len(warnings) != 1 || !errors.Is(warnings[0], errs.ErrSpoolCorrupt) {
		t.Fatalf("SpoolWarnings() = %v, want one ErrSpoolCorrupt", warnings)
	}
	if !strings.Contains(warnings[0].Error(), "duplicate job ID") {
		t.Fatalf("warning %v does not name the duplicate ID", warnings[0])
	}
	// The classification itself: a duplicate re-admission is a bad
	// config, not a transient condition.
	if _, err := s.readmit(smallSpec("twin"), nil); !errors.Is(err, errs.ErrBadConfig) {
		t.Fatalf("readmit duplicate = %v, want ErrBadConfig", err)
	}
}

// TestWorkerHealthReport: the /v1/worker probe reports capacity and
// draining state, always with a 200 (the fleet coordinator needs to
// tell "dying" from "dead").
func TestWorkerHealthReport(t *testing.T) {
	s := startServer(t, Options{JobWorkers: 3}, nil)

	h := s.WorkerHealth()
	if h.JobWorkers != 3 || h.Draining || h.Running != 0 || h.Queued != 0 || h.OutstandingCost != 0 {
		t.Fatalf("idle WorkerHealth = %+v", h)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/worker")
	if err != nil {
		t.Fatalf("GET /v1/worker: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/worker = %d, want 200", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var wire WorkerHealth
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatalf("decoding worker health %q: %v", data, err)
	}
	if wire != h {
		t.Fatalf("wire health %+v != direct %+v", wire, h)
	}
}
