package server

import (
	"sync"
	"time"
)

// Clock is the server's only source of wall time — event timestamps,
// request-latency measurement and the Retry-After estimator all read it.
// The simulator's wallclock contract (DESIGN.md §6) bans time.Now in
// library code because wall time in a result path breaks byte-identical
// replay; the server legitimately needs wall time for operational
// output, so it is injected here instead: cmd/tcsimd supplies the system
// clock (cmd/ is on the wallclock allowlist), tests supply a FakeClock,
// and internal/server itself stays wallclock-clean. Nothing a Clock
// returns ever enters a job's result payload.
type Clock interface {
	// Now returns the current wall time.
	Now() time.Time
}

// FakeClock is a manually advanced Clock for tests: time moves only when
// Advance is called, so event timestamps and latency observations are
// reproducible. Safe for concurrent use.
type FakeClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewFakeClock returns a FakeClock pinned at start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now returns the fake's current instant.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the fake clock forward by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}
