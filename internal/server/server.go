// Package server is the simulation-job service: a long-running daemon
// core that accepts policy x topology x workload sweep jobs over an
// HTTP/JSON API, executes them on the existing deterministic sweep
// worker pool, streams progress as NDJSON, and exposes a
// Prometheus-format metrics endpoint.
//
// The package preserves the repository's determinism contract across
// the network boundary: a job's result payload is a pure function of
// its normalized JobSpec. Seeds derive from the spec (sweep.DeriveSeed),
// never from arrival order; task results are reported in grid order
// regardless of completion order; and nothing wall-clock-derived enters
// the payload (wall time is confined to event timestamps and latency
// metrics, read from an injected Clock). A differential test submits the
// same grid at server concurrency 1 and N and requires byte-identical
// payloads, the same guarantee the sweep runner and the parallel engine
// make offline.
//
// Robustness is admission-controlled: a bounded queue plus a bounded
// outstanding-token pool reject overload with 429 + Retry-After instead
// of queueing unboundedly, and graceful shutdown stops admission, drains
// in-flight jobs under the caller's deadline, and persists
// queued-but-unstarted jobs as replayable spec files a restarted server
// re-admits.
package server

import (
	"context"
	"fmt"
	"sync"

	"threadcluster/internal/errs"
	"threadcluster/internal/metrics"
	"threadcluster/internal/sim"
	"threadcluster/internal/sweep"
)

// Options configure a Server. The zero value is not usable: a Clock is
// required (the one wall-time source; see Clock), everything else
// defaults sensibly in New.
type Options struct {
	// Clock supplies wall time for event timestamps, latency metrics and
	// the Retry-After estimator. Required: cmd/tcsimd passes the system
	// clock, tests pass a FakeClock. Never enters result payloads.
	Clock Clock

	// Registry receives the server's operational series; scraping
	// /metrics renders it. Defaults to a fresh registry.
	Registry *metrics.Registry

	// QueueDepth bounds the number of queued (not yet running) jobs.
	// Default 64.
	QueueDepth int

	// MaxJobCost is the per-job token budget: a spec whose Cost exceeds
	// it is rejected as invalid (400). Default 4,000,000 tokens
	// (grid cells x total rounds).
	MaxJobCost int64

	// MaxQueuedCost bounds the outstanding (queued + running) token
	// pool; admissions beyond it are rejected 429. Default 8x MaxJobCost.
	MaxQueuedCost int64

	// JobWorkers is the number of concurrently executing jobs.
	// Default 1. Results are byte-identical for any value.
	JobWorkers int

	// TaskWorkers is the default per-job sweep pool size (a spec's
	// Workers field overrides it). 0 means GOMAXPROCS. Results are
	// byte-identical for any value.
	TaskWorkers int

	// EventBuffer is the per-job event ring capacity; late subscribers
	// replay from the earliest retained event. Default 1024.
	EventBuffer int

	// SpoolDir, when set, receives queued-but-unstarted jobs as
	// replayable spec files at shutdown and running jobs' checkpoints
	// (completed grid cells) beside them; Start re-admits both, in spool
	// order. Corrupt files are quarantined (see SpoolWarnings), never
	// fatal.
	SpoolDir string

	// CheckpointEvery flushes a running job's checkpoint after every N
	// newly completed grid cells, so even an abrupt kill (no graceful
	// drain) resumes from the last flush. 0 checkpoints only when a
	// graceful drain cuts a running job. Requires SpoolDir.
	CheckpointEvery int
}

// Server owns the job table, the admission queue and the worker pool.
// Create with New, start with Start, serve Handler over HTTP, stop with
// Shutdown.
type Server struct {
	opt   Options
	clock Clock
	reg   *metrics.Registry
	queue *jobQueue

	mu        sync.Mutex
	jobs      map[string]*job
	bySeq     []*job
	nextSeq   uint64
	running   int
	draining  bool
	started   bool
	ewmaSec   float64          // smoothed wall seconds per job, for Retry-After
	simTotals metrics.Snapshot // merged sim series of every completed job; /metrics appends it

	baseCtx   context.Context
	stopWork  context.CancelFunc
	wg        sync.WaitGroup
	beforeJob func(*job)      // test hook: runs in the worker before a job executes
	afterTask func(*job, int) // test hook: runs after a grid cell completes

	spoolWarnings []error // quarantined files and checkpoint-write failures

	mJobsAdmitted     *metrics.Counter
	mJobsReadmitted   *metrics.Counter
	mJobsSpooled      *metrics.Counter
	mEventsDropped    *metrics.Counter
	mSpoolQuarantined *metrics.Counter
	mCheckpoints      *metrics.Counter
}

// New validates opt, fills defaults and builds a stopped server; Start
// launches the workers.
func New(opt Options) (*Server, error) {
	if opt.Clock == nil {
		return nil, fmt.Errorf("server: %w: Options.Clock is required (inject the system clock from cmd, a FakeClock from tests)", errs.ErrBadConfig)
	}
	if opt.Registry == nil {
		opt.Registry = metrics.NewRegistry()
	}
	if opt.QueueDepth <= 0 {
		opt.QueueDepth = 64
	}
	if opt.MaxJobCost <= 0 {
		opt.MaxJobCost = 4_000_000
	}
	if opt.MaxQueuedCost <= 0 {
		opt.MaxQueuedCost = 8 * opt.MaxJobCost
	}
	if opt.JobWorkers <= 0 {
		opt.JobWorkers = 1
	}
	if opt.EventBuffer <= 0 {
		opt.EventBuffer = 1024
	}
	if opt.CheckpointEvery < 0 {
		return nil, fmt.Errorf("server: %w: negative CheckpointEvery", errs.ErrBadConfig)
	}
	if opt.CheckpointEvery > 0 && opt.SpoolDir == "" {
		return nil, fmt.Errorf("server: %w: CheckpointEvery requires SpoolDir (checkpoints live beside the spool)", errs.ErrBadConfig)
	}
	s := &Server{
		opt:   opt,
		clock: opt.Clock,
		reg:   opt.Registry,
		queue: newJobQueue(opt.QueueDepth, opt.MaxQueuedCost),
		jobs:  make(map[string]*job),
	}
	s.mJobsAdmitted = s.reg.Counter("server_jobs_admitted_total", nil)
	s.mJobsReadmitted = s.reg.Counter("server_jobs_readmitted_total", nil)
	s.mJobsSpooled = s.reg.Counter("server_jobs_spooled_total", nil)
	s.mEventsDropped = s.reg.Counter("server_events_dropped_total", nil)
	s.mSpoolQuarantined = s.reg.Counter("server_spool_quarantined_total", nil)
	s.mCheckpoints = s.reg.Counter("server_checkpoints_written_total", nil)
	s.reg.RegisterGaugeFunc("server_queue_depth", nil, func() float64 {
		n, _ := s.queue.stats()
		return float64(n)
	})
	s.reg.RegisterGaugeFunc("server_queue_tokens", nil, func() float64 {
		_, tok := s.queue.stats()
		return float64(tok)
	})
	s.reg.RegisterGaugeFunc("server_jobs_running", nil, func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.running)
	})
	for _, st := range []JobState{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled} {
		st := st
		s.reg.RegisterGaugeFunc("server_jobs", metrics.Labels{"state": string(st)}, func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			n := 0
			for _, j := range s.bySeq {
				if j.state == st {
					n++
				}
			}
			return float64(n)
		})
	}
	return s, nil
}

// Start launches the worker pool and re-admits any spooled job specs, in
// spool order. ctx is the server's base context: cancelling it stops the
// workers abruptly (use Shutdown for a graceful drain). Start may be
// called once.
func (s *Server) Start(ctx context.Context) error {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return fmt.Errorf("server: %w: already started", errs.ErrAlreadyInstalled)
	}
	s.started = true
	workCtx, cancel := context.WithCancel(ctx)
	s.baseCtx = workCtx
	s.stopWork = cancel
	s.mu.Unlock()

	if err := s.loadSpool(); err != nil {
		return err
	}
	for i := 0; i < s.opt.JobWorkers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				j := s.queue.pop(workCtx)
				if j == nil {
					return
				}
				s.runJob(workCtx, j)
			}
		}()
	}
	return nil
}

// Submit validates, normalizes and admits spec, returning the queued
// job's status. Rejections: invalid spec or over-budget job (400 via
// errs.ErrBadConfig), duplicate ID (409), draining server (503), full
// queue or exhausted token pool (429).
func (s *Server) Submit(ctx context.Context, spec JobSpec) (JobStatus, error) {
	_ = ctx // admission is non-blocking; ctx is part of the contract (ctx-first API)
	norm, err := spec.Normalize()
	if err != nil {
		s.reject("invalid")
		return JobStatus{}, err
	}
	cost := norm.Cost()
	if cost > s.opt.MaxJobCost {
		s.reject("over_budget")
		return JobStatus{}, fmt.Errorf("server: %w: job cost %d exceeds per-job budget %d (shrink the grid or rounds)",
			errs.ErrBadConfig, cost, s.opt.MaxJobCost)
	}
	return s.admit(norm, cost, nil)
}

// admit queues one validated job, optionally seeded with checkpointed
// cells (the spool-restart path); the completed map must be attached
// before the push so a worker can never observe the job without it.
func (s *Server) admit(norm JobSpec, cost int64, completed map[int]checkpointCell) (JobStatus, error) {
	s.mu.Lock()
	if s.draining || !s.started {
		s.mu.Unlock()
		s.reject("draining")
		return JobStatus{}, fmt.Errorf("server: %w: not accepting jobs", errs.ErrUnavailable)
	}
	seq := s.nextSeq
	if norm.ID == "" {
		norm.ID = fmt.Sprintf("job-%d", seq)
	}
	if _, ok := s.jobs[norm.ID]; ok {
		s.mu.Unlock()
		s.reject("conflict")
		return JobStatus{}, fmt.Errorf("server: %w: %q", errs.ErrJobExists, norm.ID)
	}
	j := &job{
		spec:      norm,
		seq:       seq,
		cost:      cost,
		state:     StateQueued,
		completed: completed,
		events:    newEventLog(s.opt.EventBuffer, s.mEventsDropped),
	}
	s.nextSeq++
	s.jobs[norm.ID] = j
	s.bySeq = append(s.bySeq, j)
	s.mu.Unlock()

	if err := s.queue.push(j); err != nil {
		s.mu.Lock()
		delete(s.jobs, norm.ID)
		for i, it := range s.bySeq {
			if it == j {
				s.bySeq = append(s.bySeq[:i], s.bySeq[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		if hint := s.retryAfterSeconds(); hint > 0 {
			err = &RetryableError{Err: err, RetryAfterSeconds: hint}
		}
		s.reject("overloaded")
		return JobStatus{}, err
	}
	s.mJobsAdmitted.Inc()
	j.events.append(Event{Time: s.clock.Now(), Type: EventQueued, Job: norm.ID})

	s.mu.Lock()
	defer s.mu.Unlock()
	return j.status(), nil
}

// RetryableError decorates an overload rejection with the server's
// backoff hint; the HTTP layer renders it as a Retry-After header.
type RetryableError struct {
	Err               error
	RetryAfterSeconds int
}

func (e *RetryableError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying sentinel chain (errs.ErrOverloaded).
func (e *RetryableError) Unwrap() error { return e.Err }

// retryAfterSeconds estimates when admission is worth retrying: smoothed
// job duration times queue length over worker count, clamped to [1, 600].
// Before any job has finished it falls back to one second per queued job.
func (s *Server) retryAfterSeconds() int {
	queued, _ := s.queue.stats()
	s.mu.Lock()
	ewma := s.ewmaSec
	s.mu.Unlock()
	var est float64
	if ewma > 0 {
		est = ewma * float64(queued+1) / float64(s.opt.JobWorkers)
	} else {
		est = float64(queued + 1)
	}
	switch {
	case est < 1:
		return 1
	case est > 600:
		return 600
	default:
		return int(est)
	}
}

func (s *Server) reject(reason string) {
	s.reg.Counter("server_jobs_rejected_total", metrics.Labels{"reason": reason}).Inc()
}

// Status returns a job's current status.
func (s *Server) Status(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("server: %w: %q", errs.ErrJobNotFound, id)
	}
	return j.status(), nil
}

// Jobs lists every job the server knows, in admission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.bySeq))
	for _, j := range s.bySeq {
		out = append(out, j.status())
	}
	return out
}

// Result returns the completed job's canonical payload bytes — the exact
// bytes every replica would serve for this spec.
func (s *Server) Result(id string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("server: %w: %q", errs.ErrJobNotFound, id)
	}
	if j.state != StateDone {
		return nil, fmt.Errorf("server: %w: %q is %s", errs.ErrJobNotDone, id, j.state)
	}
	return j.payload, nil
}

// Cancel cancels a queued or running job. A queued job settles
// immediately; a running job's context is cancelled and it settles when
// the sweep unwinds. Cancelling a terminal job is a conflict.
func (s *Server) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return JobStatus{}, fmt.Errorf("server: %w: %q", errs.ErrJobNotFound, id)
	}
	if j.state.Final() {
		st := j.status()
		s.mu.Unlock()
		return st, fmt.Errorf("server: %w: %q is %s", errs.ErrJobFinal, id, j.state)
	}
	j.cancelled = true
	cancel := j.cancel
	s.mu.Unlock()

	if s.queue.remove(j) {
		// Still queued: settle here.
		s.settle(j, StateCanceled, fmt.Errorf("server: canceled while queued"))
		return s.Status(id)
	}
	if cancel != nil {
		cancel() // running: the worker settles it
	}
	return s.Status(id)
}

// Subscribe streams a job's events to fn (replaying retained history
// first) until the job reaches a terminal event, ctx ends, or fn errors.
func (s *Server) Subscribe(ctx context.Context, id string, fn func(Event) error) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("server: %w: %q", errs.ErrJobNotFound, id)
	}
	return j.events.subscribe(ctx, fn)
}

// Registry exposes the server's metrics registry (the one /metrics
// renders), so a daemon can register additional collectors.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// SimTotals returns the merged simulation snapshot accumulated across
// every completed job; /metrics renders it after the server registry so
// one scrape carries both the serving series and the sim series.
func (s *Server) SimTotals() metrics.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.simTotals
}

// runJob executes one admitted job on the sweep pool and settles it.
func (s *Server) runJob(ctx context.Context, j *job) {
	if s.beforeJob != nil {
		s.beforeJob(j)
	}

	cells, tasks, err := j.spec.compile()
	if err != nil {
		s.settle(j, StateFailed, fmt.Errorf("server: compiling job %q: %w", j.spec.ID, err))
		return
	}

	jctx, cancel := context.WithCancel(ctx)
	defer cancel()

	s.mu.Lock()
	if j.cancelled { // cancel raced admission-to-start
		s.mu.Unlock()
		s.settle(j, StateCanceled, fmt.Errorf("server: canceled before start"))
		return
	}
	j.state = StateRunning
	j.cancel = cancel
	j.tasksTotal = len(tasks)
	s.running++
	s.mu.Unlock()

	started := s.clock.Now()
	j.events.append(Event{Time: started, Type: EventRunning, Job: j.spec.ID, TasksTotal: len(tasks)})

	// Cells already checkpointed (spool-restart resume) restore their
	// recorded snapshots instead of re-running; cell seeds derive from
	// the spec, so the re-assembled payload is byte-identical to an
	// uninterrupted run's.
	s.mu.Lock()
	resume := make(map[int]checkpointCell, len(j.completed))
	for i, cc := range j.completed {
		resume[i] = cc
	}
	s.mu.Unlock()

	// Wrap each task to emit a progress event at completion. Events fire
	// in completion order (operational stream); the payload below is
	// assembled in grid order (deterministic result).
	wrapped := make([]sweep.Task, len(tasks))
	for i, t := range tasks {
		i, t := i, t
		run := func(tctx context.Context, seed int64) (metrics.Snapshot, error) {
			snap, err := t.Run(tctx, seed)
			if err == nil {
				s.taskDone(j, i, t.Name, t.Seed, snap)
			}
			return snap, err
		}
		if cc, ok := resume[i]; ok {
			run = func(context.Context, int64) (metrics.Snapshot, error) {
				s.taskDone(j, i, t.Name, t.Seed, cc.Metrics)
				return cc.Metrics, nil
			}
		}
		wrapped[i] = sweep.Task{Name: t.Name, Seed: t.Seed, Run: run}
	}

	workers := j.spec.Workers
	if workers == 0 {
		workers = s.opt.TaskWorkers
	}
	results, runErr := sweep.Run(jctx, wrapped, workers)

	s.mu.Lock()
	s.running--
	elapsed := s.clock.Now().Sub(started).Seconds()
	if s.ewmaSec == 0 {
		s.ewmaSec = elapsed
	} else {
		s.ewmaSec = 0.7*s.ewmaSec + 0.3*elapsed
	}
	wasCancelled := j.cancelled
	s.mu.Unlock()

	if runErr != nil {
		if wasCancelled || jctx.Err() != nil {
			s.settle(j, StateCanceled, fmt.Errorf("server: canceled while running: %w", runErr))
		} else {
			s.settle(j, StateFailed, runErr)
		}
		return
	}

	payload, err := BuildResultPayload(cells, results, sweep.Merged(results))
	if err != nil {
		s.settle(j, StateFailed, err)
		return
	}
	data, err := payload.Marshal()
	if err != nil {
		s.settle(j, StateFailed, err)
		return
	}
	s.mu.Lock()
	j.payload = data
	j.digest = payload.Digest
	s.simTotals = s.simTotals.Merge(payload.Merged)
	s.mu.Unlock()
	s.settle(j, StateDone, nil)
}

// taskDone records one completed grid cell, flushes the job's
// checkpoint when enough new cells accumulated, and emits the cell's
// progress event.
func (s *Server) taskDone(j *job, idx int, name string, seed int64, snap metrics.Snapshot) {
	s.mu.Lock()
	j.tasksDone++
	done, total := j.tasksDone, j.tasksTotal
	var flush []checkpointCell
	if s.opt.SpoolDir != "" {
		if j.completed == nil {
			j.completed = make(map[int]checkpointCell)
		}
		if _, ok := j.completed[idx]; !ok {
			j.completed[idx] = checkpointCell{Index: idx, Name: name, Seed: seed, Metrics: snap}
			j.ckptNew++
		}
		if s.opt.CheckpointEvery > 0 && j.ckptNew >= s.opt.CheckpointEvery {
			j.ckptNew = 0
			flush = checkpointCells(j)
		}
	}
	s.mu.Unlock()
	if flush != nil {
		s.writeCheckpoint(j.spec, flush)
	}
	if s.afterTask != nil {
		s.afterTask(j, idx)
	}
	s.reg.Counter("server_tasks_completed_total", nil).Inc()
	j.events.append(Event{
		Time: s.clock.Now(), Type: EventTask, Job: j.spec.ID, Task: name,
		TasksDone: done, TasksTotal: total,
		Cycles: snap.Counter(sim.MetricPMUCycles, nil),
		Insts:  snap.Counter(sim.MetricPMUInsts, nil),
		Ops:    snap.Counter(sim.MetricOps, nil),
	})
}

// settle moves a job to a terminal state, emits the terminal event,
// closes the stream and releases its tokens. Idempotent per job: only
// the first settle wins.
func (s *Server) settle(j *job, state JobState, cause error) {
	s.mu.Lock()
	if j.state.Final() {
		s.mu.Unlock()
		return
	}
	j.state = state
	if state != StateDone {
		j.err = cause
	}
	done, total := j.tasksDone, j.tasksTotal
	digest := j.digest
	// A running job cut down by a graceful drain leaves its checkpoint
	// behind (final flush, even with periodic checkpointing off) so the
	// next start resumes it; any other settlement retires the file.
	var flush []checkpointCell
	removeCkpt := false
	if s.opt.SpoolDir != "" {
		if state == StateCanceled && j.cut {
			flush = checkpointCells(j)
		} else {
			removeCkpt = true
		}
	}
	s.mu.Unlock()

	if flush != nil {
		s.writeCheckpoint(j.spec, flush)
	}
	if removeCkpt {
		s.removeCheckpoint(j.spec.ID)
	}
	s.queue.release(j.cost)
	s.reg.Counter("server_jobs_total", metrics.Labels{"state": string(state)}).Inc()

	ev := Event{Time: s.clock.Now(), Job: j.spec.ID, TasksDone: done, TasksTotal: total}
	switch state {
	case StateDone:
		ev.Type = EventDone
		ev.Digest = digest
	case StateCanceled:
		ev.Type = EventCanceled
	default:
		ev.Type = EventFailed
	}
	if cause != nil && state != StateDone {
		ev.Error = cause.Error()
	}
	j.events.append(ev)
	j.events.closeLog()
}

// Shutdown gracefully stops the server: admission closes (readyz and
// POSTs turn 503), queued-but-unstarted jobs are persisted to the spool
// as replayable specs, and in-flight jobs drain until ctx's deadline, at
// which point they are cancelled. Streams of drained-away jobs end with
// a shutdown event. Returns ctx.Err() when the drain was cut short.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return fmt.Errorf("server: %w: not started", errs.ErrUnavailable)
	}
	alreadyDraining := s.draining
	s.draining = true
	s.mu.Unlock()
	if alreadyDraining {
		return fmt.Errorf("server: %w: already shutting down", errs.ErrUnavailable)
	}

	// Close admission and take the still-queued jobs for the spool.
	queued := s.queue.drain()
	spoolErr := s.spool(queued)
	for _, j := range queued {
		s.mu.Lock()
		j.state = StateQueued // unchanged; the job leaves this process queued
		s.mu.Unlock()
		s.queue.release(j.cost)
		j.events.append(Event{Time: s.clock.Now(), Type: EventShutdown, Job: j.spec.ID})
		j.events.closeLog()
	}

	// Wait for in-flight jobs; cancel them when the deadline strikes.
	workersDone := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(workersDone)
	}()
	var cut error
	select {
	case <-workersDone:
	case <-ctx.Done():
		cut = ctx.Err()
		s.cancelRunning()
		<-workersDone
	}

	// End any streams still open (jobs that settled already closed
	// theirs; this covers subscribers of jobs that never settled).
	s.mu.Lock()
	all := append([]*job(nil), s.bySeq...)
	s.mu.Unlock()
	for _, j := range all {
		j.events.closeLog()
	}
	s.stopWork()
	if spoolErr != nil {
		return spoolErr
	}
	return cut
}

// cancelRunning cancels every running job's context. These jobs are cut
// by the drain deadline, not abandoned by their submitter, so they are
// marked for a final checkpoint: the next start resumes them.
func (s *Server) cancelRunning() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.bySeq {
		if j.state == StateRunning {
			j.cancelled = true
			j.cut = true
			if j.cancel != nil {
				j.cancel()
			}
		}
	}
}

// Draining reports whether admission has been closed by Shutdown.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining || !s.started
}

// WorkerHealth is the wire form of GET /v1/worker: the capacity signal a
// fleet coordinator reads before leasing shards to this daemon. Unlike
// /readyz it always answers 200 — "draining" is data here, not an error —
// so one probe distinguishes a dying worker from a dead one.
type WorkerHealth struct {
	// Draining reports that admission is closed (shutdown in progress
	// or server never started); a coordinator stops leasing to it.
	Draining bool `json:"draining"`
	// Running and Queued count jobs in those states.
	Running int `json:"running"`
	Queued  int `json:"queued"`
	// OutstandingCost is the admission token pool currently reserved
	// (queued + running work).
	OutstandingCost int64 `json:"outstanding_cost"`
	// JobWorkers is the daemon's concurrent-job capacity.
	JobWorkers int `json:"job_workers"`
}

// WorkerHealth snapshots the server's capacity signal.
func (s *Server) WorkerHealth() WorkerHealth {
	queued, tokens := s.queue.stats()
	s.mu.Lock()
	defer s.mu.Unlock()
	return WorkerHealth{
		Draining:        s.draining || !s.started,
		Running:         s.running,
		Queued:          queued,
		OutstandingCost: tokens,
		JobWorkers:      s.opt.JobWorkers,
	}
}
