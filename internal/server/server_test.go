package server

import (
	"context"
	"errors"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"threadcluster/internal/errs"
)

// listSpool returns the spec file names in a spool directory.
func listSpool(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names, nil
}

// testClock returns a FakeClock pinned at a fixed instant so event
// timestamps are reproducible across runs.
func testClock() *FakeClock {
	return NewFakeClock(time.Unix(1_700_000_000, 0).UTC())
}

// smallSpec is a one-cell grid with tiny round counts: cost 10 tokens.
func smallSpec(id string) JobSpec {
	return JobSpec{
		ID:            id,
		Workloads:     []string{"microbenchmark"},
		Policies:      []string{"default"},
		Topos:         []string{"open720"},
		Seed:          7,
		WarmRounds:    2,
		EngineRounds:  4,
		MeasureRounds: 4,
	}
}

// startServer builds and starts a server, wiring cleanup. configure (may
// be nil) runs between New and Start — the window for test hooks.
func startServer(t *testing.T, opt Options, configure func(*Server)) *Server {
	t.Helper()
	if opt.Clock == nil {
		opt.Clock = testClock()
	}
	s, err := New(opt)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if configure != nil {
		configure(s)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	if err := s.Start(ctx); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer scancel()
		_ = s.Shutdown(sctx) // double-shutdown in tests that already drained is fine
	})
	return s
}

// waitTerminal blocks until the job's event stream closes (terminal or
// shutdown event) and returns the final status.
func waitTerminal(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Subscribe(ctx, id, func(Event) error { return nil }); err != nil {
		t.Fatalf("waiting for job %q: %v", id, err)
	}
	st, err := s.Status(id)
	if err != nil {
		t.Fatalf("Status(%q): %v", id, err)
	}
	return st
}

func TestSubmitRunsJobToDone(t *testing.T) {
	s := startServer(t, Options{}, nil)
	st, err := s.Submit(context.Background(), smallSpec("alpha"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.ID != "alpha" || st.Cost != 10 {
		t.Fatalf("unexpected admission status: %+v", st)
	}
	final := waitTerminal(t, s, "alpha")
	if final.State != StateDone {
		t.Fatalf("state = %s (err %q), want done", final.State, final.Error)
	}
	if !strings.HasPrefix(final.Digest, "sha256:") {
		t.Fatalf("digest %q does not look like a sha256 digest", final.Digest)
	}
	data, err := s.Result("alpha")
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if !strings.Contains(string(data), final.Digest) {
		t.Fatalf("payload does not embed its own digest %q", final.Digest)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := startServer(t, Options{}, nil)
	cases := []struct {
		name string
		mut  func(*JobSpec)
	}{
		{"empty grid", func(js *JobSpec) { js.Workloads = nil }},
		{"bad workload", func(js *JobSpec) { js.Workloads = []string{"nope"} }},
		{"bad policy", func(js *JobSpec) { js.Policies = []string{"nope"} }},
		{"bad topo", func(js *JobSpec) { js.Topos = []string{"nope"} }},
		{"bad coherence", func(js *JobSpec) { js.Coherence = "nope" }},
		{"bad engine", func(js *JobSpec) { js.Engine = "nope" }},
		{"negative rounds", func(js *JobSpec) { js.WarmRounds = -1 }},
		{"negative workers", func(js *JobSpec) { js.Workers = -1 }},
		{"separator in id", func(js *JobSpec) { js.ID = "a/b" }},
	}
	for _, tc := range cases {
		spec := smallSpec("v-" + strings.ReplaceAll(tc.name, " ", "-"))
		tc.mut(&spec)
		if _, err := s.Submit(context.Background(), spec); !errors.Is(err, errs.ErrBadConfig) {
			t.Errorf("%s: err = %v, want ErrBadConfig", tc.name, err)
		}
	}
}

func TestSubmitDuplicateAndUnknown(t *testing.T) {
	gate := make(chan struct{})
	s := startServer(t, Options{JobWorkers: 1}, func(s *Server) {
		s.beforeJob = func(*job) { <-gate }
	})
	defer close(gate)
	if _, err := s.Submit(context.Background(), smallSpec("dup")); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := s.Submit(context.Background(), smallSpec("dup")); !errors.Is(err, errs.ErrJobExists) {
		t.Fatalf("duplicate err = %v, want ErrJobExists", err)
	}
	if _, err := s.Status("ghost"); !errors.Is(err, errs.ErrJobNotFound) {
		t.Fatalf("Status(ghost) err = %v, want ErrJobNotFound", err)
	}
	if _, err := s.Cancel("ghost"); !errors.Is(err, errs.ErrJobNotFound) {
		t.Fatalf("Cancel(ghost) err = %v, want ErrJobNotFound", err)
	}
	if _, err := s.Result("dup"); !errors.Is(err, errs.ErrJobNotDone) {
		t.Fatalf("Result(queued) err = %v, want ErrJobNotDone", err)
	}
}

func TestPerJobBudgetRejects(t *testing.T) {
	s := startServer(t, Options{MaxJobCost: 5}, nil) // smallSpec costs 10
	_, err := s.Submit(context.Background(), smallSpec("big"))
	if !errors.Is(err, errs.ErrBadConfig) {
		t.Fatalf("err = %v, want ErrBadConfig (over budget)", err)
	}
	if !strings.Contains(err.Error(), "budget") {
		t.Fatalf("error %q does not mention the budget", err)
	}
}

// TestOverloadBurstBounded floods a one-worker server with a 10x burst:
// the queue admits exactly its depth, everything else is rejected with a
// retryable overload error, memory stays bounded (no queue growth) and no
// goroutines leak after drain.
func TestOverloadBurstBounded(t *testing.T) {
	before := runtime.NumGoroutine()

	gate := make(chan struct{})
	popped := make(chan string, 64)
	s := startServer(t, Options{QueueDepth: 2, JobWorkers: 1}, func(s *Server) {
		s.beforeJob = func(j *job) { popped <- j.spec.ID; <-gate }
	})

	if _, err := s.Submit(context.Background(), smallSpec("run-0")); err != nil {
		t.Fatalf("Submit run-0: %v", err)
	}
	<-popped // run-0 is off the queue and blocked in the worker

	admitted := []string{"run-0"}
	var rejected int
	for i := 1; i <= 20; i++ { // 10x the queue depth
		spec := smallSpec("")
		spec.ID = "run-" + strings.Repeat("i", i) // distinct IDs
		_, err := s.Submit(context.Background(), spec)
		switch {
		case err == nil:
			admitted = append(admitted, spec.ID)
		case errors.Is(err, errs.ErrOverloaded):
			rejected++
			var re *RetryableError
			if !errors.As(err, &re) || re.RetryAfterSeconds < 1 {
				t.Fatalf("overload rejection %v lacks a usable Retry-After hint", err)
			}
		default:
			t.Fatalf("unexpected submit error: %v", err)
		}
	}
	if len(admitted) != 3 { // 1 running + QueueDepth queued
		t.Fatalf("admitted %d jobs (%v), want 3", len(admitted), admitted)
	}
	if rejected != 18 {
		t.Fatalf("rejected %d, want 18", rejected)
	}
	if depth, _ := s.queue.stats(); depth != 2 {
		t.Fatalf("queue depth %d after burst, want 2 (bounded)", depth)
	}

	close(gate)
	for _, id := range admitted {
		if st := waitTerminal(t, s, id); st.State != StateDone {
			t.Fatalf("job %s state %s (err %q), want done", id, st.State, st.Error)
		}
	}

	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// Drained server must not leak goroutines (the worker pool exits).
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after drain", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTokenPoolRejects exhausts the outstanding-token pool while the
// queue still has depth: admission control is cost-based, not just
// count-based.
func TestTokenPoolRejects(t *testing.T) {
	gate := make(chan struct{})
	popped := make(chan string, 8)
	s := startServer(t, Options{QueueDepth: 64, MaxJobCost: 10, MaxQueuedCost: 15, JobWorkers: 1},
		func(s *Server) {
			s.beforeJob = func(j *job) { popped <- j.spec.ID; <-gate }
		})
	defer close(gate)

	if _, err := s.Submit(context.Background(), smallSpec("tok-a")); err != nil {
		t.Fatalf("Submit tok-a: %v", err)
	}
	<-popped // tok-a holds 10 of 15 tokens while running
	_, err := s.Submit(context.Background(), smallSpec("tok-b"))
	if !errors.Is(err, errs.ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded (token pool exhausted)", err)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	gate := make(chan struct{})
	popped := make(chan string, 8)
	s := startServer(t, Options{JobWorkers: 1}, func(s *Server) {
		s.beforeJob = func(j *job) { popped <- j.spec.ID; <-gate }
	})
	defer close(gate)

	if _, err := s.Submit(context.Background(), smallSpec("front")); err != nil {
		t.Fatalf("Submit front: %v", err)
	}
	<-popped
	if _, err := s.Submit(context.Background(), smallSpec("victim")); err != nil {
		t.Fatalf("Submit victim: %v", err)
	}

	st, err := s.Cancel("victim")
	if err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if st.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", st.State)
	}
	if _, err := s.Cancel("victim"); !errors.Is(err, errs.ErrJobFinal) {
		t.Fatalf("second cancel err = %v, want ErrJobFinal", err)
	}
	// The terminal event must be canceled, and the stream must end.
	var last Event
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Subscribe(ctx, "victim", func(ev Event) error { last = ev; return nil }); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if last.Type != EventCanceled {
		t.Fatalf("terminal event %q, want canceled", last.Type)
	}
}

func TestCancelRunningJob(t *testing.T) {
	s := startServer(t, Options{MaxJobCost: 100_000_000}, nil)
	spec := smallSpec("long")
	spec.EngineRounds = 2_000_000 // seconds of work; cancelled well before done
	spec.MeasureRounds = 2_000_000
	if _, err := s.Submit(context.Background(), spec); err != nil {
		t.Fatalf("Submit: %v", err)
	}

	// Wait for the running event, then cancel mid-run.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	errStop := errors.New("saw running")
	err := s.Subscribe(ctx, "long", func(ev Event) error {
		if ev.Type == EventRunning {
			return errStop
		}
		return nil
	})
	if !errors.Is(err, errStop) {
		t.Fatalf("waiting for running event: %v", err)
	}
	if _, err := s.Cancel("long"); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	st := waitTerminal(t, s, "long")
	if st.State != StateCanceled {
		t.Fatalf("state = %s (err %q), want canceled", st.State, st.Error)
	}
	if _, err := s.Result("long"); !errors.Is(err, errs.ErrJobNotDone) {
		t.Fatalf("Result of canceled job err = %v, want ErrJobNotDone", err)
	}
}

// TestShutdownMidStream drains the server while a subscriber is attached
// to a queued job: the stream must end with a shutdown event, and the
// spec must land in the spool.
func TestShutdownMidStream(t *testing.T) {
	spool := t.TempDir()
	gate := make(chan struct{})
	popped := make(chan string, 8)
	s := startServer(t, Options{JobWorkers: 1, SpoolDir: spool}, func(s *Server) {
		s.beforeJob = func(j *job) { popped <- j.spec.ID; <-gate }
	})

	if _, err := s.Submit(context.Background(), smallSpec("inflight")); err != nil {
		t.Fatalf("Submit inflight: %v", err)
	}
	<-popped
	if _, err := s.Submit(context.Background(), smallSpec("parked")); err != nil {
		t.Fatalf("Submit parked: %v", err)
	}

	type subResult struct {
		events []Event
		err    error
	}
	subDone := make(chan subResult, 1)
	go func() {
		var evs []Event
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		err := s.Subscribe(ctx, "parked", func(ev Event) error {
			evs = append(evs, ev)
			return nil
		})
		subDone <- subResult{evs, err}
	}()

	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutDone <- s.Shutdown(ctx)
	}()

	// The queued job's stream ends with a shutdown event while the
	// in-flight job is still blocked in the worker.
	sub := <-subDone
	if sub.err != nil {
		t.Fatalf("subscriber error: %v", sub.err)
	}
	if n := len(sub.events); n != 2 || sub.events[0].Type != EventQueued || sub.events[1].Type != EventShutdown {
		t.Fatalf("parked events = %+v, want [queued shutdown]", sub.events)
	}
	if !s.Draining() {
		t.Fatal("server not draining during shutdown")
	}
	if _, err := s.Submit(context.Background(), smallSpec("late")); !errors.Is(err, errs.ErrUnavailable) {
		t.Fatalf("submit while draining err = %v, want ErrUnavailable", err)
	}

	close(gate) // let the in-flight job finish; the drain completes
	if err := <-shutDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if st, _ := s.Status("inflight"); st.State != StateDone {
		t.Fatalf("inflight state = %s, want done (drained, not cut)", st.State)
	}
}

// TestShutdownDeadlineCancelsRunning forces the drain deadline while a
// job is mid-run: Shutdown must cancel it and report the cut.
func TestShutdownDeadlineCancelsRunning(t *testing.T) {
	s := startServer(t, Options{MaxJobCost: 100_000_000}, nil)
	spec := smallSpec("stuck")
	spec.EngineRounds = 2_000_000
	spec.MeasureRounds = 2_000_000
	if _, err := s.Submit(context.Background(), spec); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	errStop := errors.New("saw running")
	if err := s.Subscribe(ctx, "stuck", func(ev Event) error {
		if ev.Type == EventRunning {
			return errStop
		}
		return nil
	}); !errors.Is(err, errStop) {
		t.Fatalf("waiting for running event: %v", err)
	}

	sctx, scancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer scancel()
	err := s.Shutdown(sctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown err = %v, want DeadlineExceeded (cut drain)", err)
	}
	if st, _ := s.Status("stuck"); st.State != StateCanceled {
		t.Fatalf("stuck state = %s, want canceled", st.State)
	}
}

// TestSpoolRestartDeterministic drains queued jobs to the spool, restarts
// onto the same directory, and requires the re-admitted job to produce
// the byte-identical payload a never-interrupted server produces.
func TestSpoolRestartDeterministic(t *testing.T) {
	spool := t.TempDir()
	gate := make(chan struct{})
	popped := make(chan string, 8)
	s1 := startServer(t, Options{JobWorkers: 1, SpoolDir: spool}, func(s *Server) {
		s.beforeJob = func(j *job) { popped <- j.spec.ID; <-gate }
	})
	if _, err := s1.Submit(context.Background(), smallSpec("block")); err != nil {
		t.Fatalf("Submit block: %v", err)
	}
	<-popped
	for _, id := range []string{"replay-1", "replay-2"} {
		if _, err := s1.Submit(context.Background(), smallSpec(id)); err != nil {
			t.Fatalf("Submit %s: %v", id, err)
		}
	}
	go func() { close(gate) }()
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := s1.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// Restart on the same spool: both specs re-admit under their IDs, in
	// admission order, and run to the same digests a fresh server yields.
	s2 := startServer(t, Options{SpoolDir: spool}, nil)
	jobs := s2.Jobs()
	if len(jobs) != 2 || jobs[0].ID != "replay-1" || jobs[1].ID != "replay-2" {
		t.Fatalf("restart jobs = %+v, want replay-1 then replay-2", jobs)
	}
	fresh := startServer(t, Options{}, nil)
	for _, id := range []string{"replay-1", "replay-2"} {
		if st := waitTerminal(t, s2, id); st.State != StateDone {
			t.Fatalf("%s state = %s (err %q), want done", id, st.State, st.Error)
		}
		if _, err := fresh.Submit(context.Background(), smallSpec(id)); err != nil {
			t.Fatalf("fresh Submit %s: %v", id, err)
		}
		if st := waitTerminal(t, fresh, id); st.State != StateDone {
			t.Fatalf("fresh %s state = %s, want done", id, st.State)
		}
		got, _ := s2.Result(id)
		want, _ := fresh.Result(id)
		if string(got) != string(want) {
			t.Fatalf("%s: restarted payload differs from fresh payload", id)
		}
	}
	// The spool is empty again: every spec was re-admitted and removed.
	if entries, err := listSpool(spool); err != nil || len(entries) != 0 {
		t.Fatalf("spool entries after restart = %v (err %v), want none", entries, err)
	}
}

func TestPriorityOrdersExecution(t *testing.T) {
	gate := make(chan struct{})
	popped := make(chan string, 8)
	s := startServer(t, Options{JobWorkers: 1}, func(s *Server) {
		s.beforeJob = func(j *job) { popped <- j.spec.ID; <-gate }
	})
	if _, err := s.Submit(context.Background(), smallSpec("head")); err != nil {
		t.Fatalf("Submit head: %v", err)
	}
	<-popped // pin the worker so the queue orders the rest

	low1 := smallSpec("low-1")
	low2 := smallSpec("low-2")
	high := smallSpec("high")
	high.Priority = 5
	for _, spec := range []JobSpec{low1, low2, high} {
		if _, err := s.Submit(context.Background(), spec); err != nil {
			t.Fatalf("Submit %s: %v", spec.ID, err)
		}
	}
	close(gate)
	var order []string
	for i := 0; i < 3; i++ {
		order = append(order, <-popped)
	}
	want := []string{"high", "low-1", "low-2"} // priority first, FIFO within
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order = %v, want %v", order, want)
		}
	}
}
