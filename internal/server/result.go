package server

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"

	"threadcluster/internal/experiments"
	"threadcluster/internal/metrics"
	"threadcluster/internal/sweep"
)

// TaskResult is one grid cell's outcome inside a result payload.
type TaskResult struct {
	// Name is the cell ("workload/policy/topo"); Seed its derived seed.
	Name string `json:"name"`
	Seed int64  `json:"seed"`
	// Metrics is the cell's full snapshot (absent on error).
	Metrics metrics.Snapshot `json:"metrics"`
	// Error is the cell's failure, if any.
	Error string `json:"error,omitempty"`
}

// ResultPayload is a completed job's result: per-cell results in grid
// order, the merged machine-wide snapshot, and a content digest. The
// marshaled payload is byte-identical for any server concurrency, queue
// depth, arrival order or per-job worker count — results are keyed to
// grid positions, snapshots are deterministically ordered, and nothing
// wall-clock-derived is present — so `tcsim submit` against a loaded
// server and `tcsim sweep` offline produce the same bytes for the same
// spec.
type ResultPayload struct {
	// Tasks lists every grid cell in grid (not completion) order.
	Tasks []TaskResult `json:"tasks"`
	// Merged is the fold of all successful cells' snapshots.
	Merged metrics.Snapshot `json:"merged"`
	// Digest is "sha256:<hex>" over the payload with Digest itself blank.
	Digest string `json:"digest"`
}

// BuildResultPayload assembles and digests the canonical payload from a
// grid run's cells and results (the shapes experiments.RunGrid returns).
func BuildResultPayload(cells []experiments.GridCell, results []sweep.Result, merged metrics.Snapshot) (ResultPayload, error) {
	p := ResultPayload{
		Tasks:  make([]TaskResult, 0, len(results)),
		Merged: merged,
	}
	for i, r := range results {
		tr := TaskResult{Name: r.Name, Seed: r.Seed, Metrics: r.Metrics}
		if i < len(cells) && tr.Name == "" {
			tr.Name = cells[i].Name()
		}
		if r.Err != nil {
			tr.Error = r.Err.Error()
		}
		p.Tasks = append(p.Tasks, tr)
	}
	digest, err := payloadDigest(p)
	if err != nil {
		return ResultPayload{}, err
	}
	p.Digest = digest
	return p, nil
}

// Digest computes the payload digest for a grid run without building the
// full payload value: the offline `tcsim sweep -digest` path.
func Digest(cells []experiments.GridCell, results []sweep.Result, merged metrics.Snapshot) (string, error) {
	p, err := BuildResultPayload(cells, results, merged)
	if err != nil {
		return "", err
	}
	return p.Digest, nil
}

// payloadDigest hashes the canonical JSON encoding of p with the Digest
// field blanked. json.Marshal is deterministic here: struct fields have
// a fixed order and metrics label maps marshal with sorted keys.
func payloadDigest(p ResultPayload) (string, error) {
	p.Digest = ""
	data, err := json.Marshal(p)
	if err != nil {
		return "", fmt.Errorf("server: digesting payload: %w", err)
	}
	return fmt.Sprintf("sha256:%x", sha256.Sum256(data)), nil
}

// Marshal renders the payload as the exact bytes the result endpoint
// serves (indented JSON with a trailing newline).
func (p ResultPayload) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("server: marshaling payload: %w", err)
	}
	return append(data, '\n'), nil
}
