package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"threadcluster/internal/errs"
	"threadcluster/internal/metrics"
)

// ErrorBody is the structured error every non-2xx response carries.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail names the failure class (stable code strings clients can
// switch on; the client package maps them back onto errs sentinels) and
// carries the human-readable cause.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterSeconds mirrors the Retry-After header on 429/503.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

// errorClasses maps errs sentinels onto HTTP statuses and wire codes, in
// match order. Everything unmatched is a 500 "internal".
var errorClasses = []struct {
	sentinel error
	status   int
	code     string
}{
	{errs.ErrBadConfig, http.StatusBadRequest, "bad_config"},
	{errs.ErrJobNotFound, http.StatusNotFound, "job_not_found"},
	{errs.ErrJobExists, http.StatusConflict, "job_exists"},
	{errs.ErrJobFinal, http.StatusConflict, "job_final"},
	{errs.ErrJobNotDone, http.StatusConflict, "job_not_done"},
	{errs.ErrOverloaded, http.StatusTooManyRequests, "overloaded"},
	{errs.ErrUnavailable, http.StatusServiceUnavailable, "unavailable"},
	{errs.ErrAlreadyInstalled, http.StatusConflict, "conflict"},
}

// classify maps an error onto (status, wire code).
func classify(err error) (int, string) {
	for _, c := range errorClasses {
		if errors.Is(err, c.sentinel) {
			return c.status, c.code
		}
	}
	return http.StatusInternalServerError, "internal"
}

// Handler returns the server's HTTP API:
//
//	POST   /v1/jobs             submit a JobSpec, 202 + JobStatus
//	GET    /v1/jobs             list jobs in admission order
//	GET    /v1/jobs/{id}        one job's status
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/jobs/{id}/events NDJSON progress stream (replays from start)
//	GET    /v1/jobs/{id}/result canonical result payload (byte-stable)
//	GET    /v1/worker           worker health/capacity (fleet coordinator probe)
//	GET    /metrics             Prometheus text exposition
//	GET    /healthz             process liveness
//	GET    /readyz              admission readiness (503 while draining)
//
// Every route is wrapped in request metrics (count by route and status,
// latency histogram) timed against the injected Clock.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(pattern, h))
	}
	route("POST /v1/jobs", s.handleSubmit)
	route("GET /v1/jobs", s.handleList)
	route("GET /v1/jobs/{id}", s.handleStatus)
	route("DELETE /v1/jobs/{id}", s.handleCancel)
	route("GET /v1/jobs/{id}/events", s.handleEvents)
	route("GET /v1/jobs/{id}/result", s.handleResult)
	route("GET /v1/worker", s.handleWorkerHealth)
	route("GET /metrics", s.handleMetrics)
	route("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	route("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			s.writeError(w, fmt.Errorf("server: %w: draining", errs.ErrUnavailable))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ready")
	})
	return mux
}

// statusRecorder captures the response code for the request metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so NDJSON streaming works
// through the instrumentation wrapper.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// latencyBoundsMs buckets request latency; NDJSON streams can sit open
// for the whole job, hence the minutes-scale tail.
var latencyBoundsMs = []uint64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 15_000, 60_000}

// instrument wraps a route with request counting and latency timing.
func (s *Server) instrument(pattern string, h http.HandlerFunc) http.Handler {
	labels := metrics.Labels{"route": pattern}
	hist := s.reg.Histogram("server_http_request_ms", labels, latencyBoundsMs)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := s.clock.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		hist.Observe(uint64(s.clock.Now().Sub(start).Milliseconds()))
		s.reg.Counter("server_http_requests_total",
			metrics.Labels{"route": pattern, "code": strconv.Itoa(rec.code)}).Inc()
	})
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	status, code := classify(err)
	body := ErrorBody{Error: ErrorDetail{Code: code, Message: err.Error()}}
	var re *RetryableError
	switch {
	case errors.As(err, &re):
		body.Error.RetryAfterSeconds = re.RetryAfterSeconds
	case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
		body.Error.RetryAfterSeconds = s.retryAfterSeconds()
	}
	if body.Error.RetryAfterSeconds > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(body.Error.RetryAfterSeconds))
	}
	s.writeJSON(w, status, body)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.writeError(w, fmt.Errorf("server: %w: decoding job spec: %v", errs.ErrBadConfig, err))
		return
	}
	st, err := s.Submit(r.Context(), spec)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	data, err := s.Result(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}

// handleEvents streams the job's progress as NDJSON: one JSON event per
// line, flushed per event, replaying retained history first. The stream
// ends at the job's terminal event (or the server's shutdown event).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	_, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		s.writeError(w, fmt.Errorf("server: %w: %q", errs.ErrJobNotFound, id))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	_ = s.Subscribe(r.Context(), id, func(ev Event) error {
		if err := enc.Encode(ev); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
}

// handleWorkerHealth serves the fleet coordinator's capacity probe.
// Always 200: a draining worker reports draining=true rather than
// erroring, so the coordinator can tell "dying" from "dead".
func (s *Server) handleWorkerHealth(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.WorkerHealth())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// Sim series live in per-run snapshots, not the server registry;
	// append the cumulative merge so one scrape carries both. Families
	// never collide: server series are server_*/..., sim series are
	// sim_*/pmu_*/cache_*/sched_*.
	_ = s.reg.WritePrometheusWith(w, s.SimTotals())
}
