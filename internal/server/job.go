package server

import (
	"context"
	"fmt"
	"strings"

	"threadcluster/internal/cache"
	"threadcluster/internal/errs"
	"threadcluster/internal/experiments"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
	"threadcluster/internal/sweep"
)

// JobSpec is the wire form of one simulation job: a policy x topology x
// workload grid plus run lengths and a base seed — the same shape `tcsim
// sweep` takes on the command line. A job's result payload is a pure
// function of its normalized spec: seeds derive from Seed and grid
// position (sweep.DeriveSeed), never from arrival order, queue depth or
// server concurrency, which is what makes the byte-identical
// determinism contract survive the network boundary.
type JobSpec struct {
	// ID optionally names the job; the server assigns "job-<seq>" when
	// empty. Submitting an ID the server already holds is a conflict.
	ID string `json:"id,omitempty"`

	// Workloads, Policies and Topos span the grid. At least one of each.
	Workloads []string `json:"workloads"`
	Policies  []string `json:"policies"`
	Topos     []string `json:"topos"`

	// Seed is the grid's base seed (default 1). Per-cell seeds derive
	// from it deterministically.
	Seed int64 `json:"seed,omitempty"`

	// WarmRounds, EngineRounds and MeasureRounds override the scaled
	// experiment defaults when positive.
	WarmRounds    int `json:"warm_rounds,omitempty"`
	EngineRounds  int `json:"engine_rounds,omitempty"`
	MeasureRounds int `json:"measure_rounds,omitempty"`

	// Coherence picks the cache-coherence implementation:
	// "directory" (default) or "broadcast".
	Coherence string `json:"coherence,omitempty"`

	// Engine picks the execution engine: "parallel" (default) or "seq".
	// Results are byte-identical either way.
	Engine string `json:"engine,omitempty"`

	// Priority orders admission-to-execution: higher runs earlier, FIFO
	// within a priority level.
	Priority int `json:"priority,omitempty"`

	// Workers is the per-job sweep pool size; 0 uses the server default.
	// Results are byte-identical for any value.
	Workers int `json:"workers,omitempty"`

	// Cells, when non-empty, restricts the job to the listed full-grid
	// cell indices (strictly increasing, 0-based, grid order). The cells
	// keep their full-grid identities — names and seeds are what the
	// whole grid would assign at those positions — so a coordinator can
	// shard one grid across many workers and reassemble per-cell results
	// into the exact payload a single node would produce. Empty means
	// the whole grid, which is what every pre-shard client submits.
	Cells []int `json:"cells,omitempty"`
}

// Normalize fills defaults and validates the spec, returning the
// canonical form the server admits (and persists to the spool). All
// validation failures wrap errs.ErrBadConfig, which the HTTP layer maps
// to 400 with a structured body.
func (js JobSpec) Normalize() (JobSpec, error) {
	out := js
	if out.Seed == 0 {
		out.Seed = 1
	}
	if out.Coherence == "" {
		out.Coherence = cache.CoherenceDirectory.String()
	}
	if out.Engine == "" {
		out.Engine = sim.EngineParallel.String()
	}
	if len(out.Workloads) == 0 || len(out.Policies) == 0 || len(out.Topos) == 0 {
		return JobSpec{}, fmt.Errorf("server: %w: empty grid (need at least one workload, policy and topology)", errs.ErrBadConfig)
	}
	if out.WarmRounds < 0 || out.EngineRounds < 0 || out.MeasureRounds < 0 {
		return JobSpec{}, fmt.Errorf("server: %w: negative round counts", errs.ErrBadConfig)
	}
	if out.Workers < 0 {
		return JobSpec{}, fmt.Errorf("server: %w: negative worker count", errs.ErrBadConfig)
	}
	if strings.ContainsAny(out.ID, "/\\ \t\n") {
		return JobSpec{}, fmt.Errorf("server: %w: job ID %q contains separators or spaces", errs.ErrBadConfig, out.ID)
	}
	if _, err := cache.ParseCoherenceMode(out.Coherence); err != nil {
		return JobSpec{}, fmt.Errorf("server: %w: %v", errs.ErrBadConfig, err)
	}
	if _, err := sim.ParseEngine(out.Engine); err != nil {
		return JobSpec{}, fmt.Errorf("server: %w: %v", errs.ErrBadConfig, err)
	}
	for _, name := range out.Workloads {
		if _, err := experiments.BuildWorkload(name, 1); err != nil {
			return JobSpec{}, fmt.Errorf("server: %w: %v", errs.ErrBadConfig, err)
		}
	}
	for _, name := range out.Policies {
		if _, err := experiments.ParsePolicy(name); err != nil {
			return JobSpec{}, fmt.Errorf("server: %w: %v", errs.ErrBadConfig, err)
		}
	}
	for _, name := range out.Topos {
		if _, err := experiments.ParseTopo(name); err != nil {
			return JobSpec{}, fmt.Errorf("server: %w: %v", errs.ErrBadConfig, err)
		}
	}
	if len(out.Cells) > 0 {
		gridCells := len(out.Workloads) * len(out.Policies) * len(out.Topos)
		if err := experiments.CheckSubset(gridCells, out.Cells); err != nil {
			return JobSpec{}, fmt.Errorf("server: %w: %v", errs.ErrBadConfig, err)
		}
	}
	return out, nil
}

// options resolves the spec's run-length and mode overrides onto the
// scaled experiment defaults, exactly as `tcsim sweep` does, so the
// server and the offline runner compute identical grids.
func (js JobSpec) options() experiments.Options {
	opt := experiments.DefaultOptions()
	if js.WarmRounds > 0 {
		opt.WarmRounds = js.WarmRounds
	}
	if js.EngineRounds > 0 {
		opt.EngineRounds = js.EngineRounds
	}
	if js.MeasureRounds > 0 {
		opt.MeasureRounds = js.MeasureRounds
	}
	mode, _ := cache.ParseCoherenceMode(js.Coherence)
	opt.Coherence = mode
	eng, _ := sim.ParseEngine(js.Engine)
	opt.Engine = eng
	return opt
}

// Grid compiles the normalized spec into the experiments grid the sweep
// runner executes.
func (js JobSpec) Grid() (experiments.GridSpec, error) {
	policies := make([]sched.Policy, 0, len(js.Policies))
	for _, name := range js.Policies {
		p, err := experiments.ParsePolicy(name)
		if err != nil {
			return experiments.GridSpec{}, fmt.Errorf("server: %w: %v", errs.ErrBadConfig, err)
		}
		policies = append(policies, p)
	}
	return experiments.GridSpec{
		Workloads: js.Workloads,
		Policies:  policies,
		Topos:     js.Topos,
		BaseSeed:  js.Seed,
		Opt:       js.options(),
	}, nil
}

// Cost is the job's admission token count: grid cells times total
// simulated rounds per cell (only the selected cells for a shard-scoped
// job). It is the unit the server's per-job budget (Options.MaxJobCost)
// and outstanding pool (Options.MaxQueuedCost) are denominated in.
func (js JobSpec) Cost() int64 {
	opt := js.options()
	cells := int64(len(js.Workloads)) * int64(len(js.Policies)) * int64(len(js.Topos))
	if len(js.Cells) > 0 {
		cells = int64(len(js.Cells))
	}
	rounds := int64(opt.WarmRounds) + int64(opt.EngineRounds) + int64(opt.MeasureRounds)
	return cells * rounds
}

// compile expands the spec into the cells and tasks the job will run:
// the whole grid, or — for a shard-scoped job — the selected subset
// with full-grid names and seeds.
func (js JobSpec) compile() ([]experiments.GridCell, []sweep.Task, error) {
	grid, err := js.Grid()
	if err != nil {
		return nil, nil, err
	}
	if len(js.Cells) > 0 {
		return grid.SubsetTasks(js.Cells)
	}
	return grid.Tasks()
}

// JobState is a job's position in its lifecycle.
type JobState string

// The lifecycle: Queued -> Running -> one of the three terminal states.
// Cancellation can strike in either non-terminal state.
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Final reports whether the state is terminal.
func (s JobState) Final() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobStatus is the wire form of a job's current state.
type JobStatus struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// Seq is the admission sequence number; list order is by Seq.
	Seq uint64 `json:"seq"`
	// Spec echoes the normalized spec.
	Spec JobSpec `json:"spec"`
	// Cost is the spec's admission token count.
	Cost int64 `json:"cost"`
	// TasksDone / TasksTotal track per-cell progress while running.
	TasksDone  int `json:"tasks_done"`
	TasksTotal int `json:"tasks_total"`
	// Error carries the failure or cancellation cause in terminal states.
	Error string `json:"error,omitempty"`
	// Digest is the result payload's content digest once done.
	Digest string `json:"digest,omitempty"`
}

// job is the server-side state of one admitted job. Fields other than
// the immutable spec/seq/events are guarded by the server mutex.
type job struct {
	spec JobSpec
	seq  uint64
	cost int64

	state      JobState
	err        error
	cancel     context.CancelFunc // set while running
	cancelled  bool               // cancel requested (distinguishes cancel from ctx timeout)
	cut        bool               // cancelled by a shutdown drain, not the submitter
	tasksDone  int
	tasksTotal int

	// completed records finished grid cells for checkpointing (and seeds
	// a resumed job at re-admission); ckptNew counts completions since
	// the last checkpoint flush.
	completed map[int]checkpointCell
	ckptNew   int

	events  *eventLog
	payload []byte // canonical result payload bytes (state == done)
	digest  string
}

// status snapshots the job's wire status. Caller holds the server mutex.
func (j *job) status() JobStatus {
	st := JobStatus{
		ID:         j.spec.ID,
		State:      j.state,
		Seq:        j.seq,
		Spec:       j.spec,
		Cost:       j.cost,
		TasksDone:  j.tasksDone,
		TasksTotal: j.tasksTotal,
		Digest:     j.digest,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}
