// Package pagedetect implements the sharing-detection baseline the
// paper's introduction argues against: the software-DSM technique
// (TreadMarks [1]) of using virtual-memory page protection to observe
// which threads touch which data.
//
// The mechanism: pages are write-protected (or fully protected); the
// first access by any thread faults into the kernel, which records
// (thread, page) and unprotects the page; a periodic sweep re-protects
// everything so access patterns keep being observed.
//
// Its two structural drawbacks, quoted from Section 1 of the paper, are
// exactly what this implementation reproduces so the comparison
// experiment can measure them:
//
//  1. "the page-level granularity of detecting sharing is relatively
//     coarse with a high degree of false sharing" — two threads touching
//     unrelated objects that happen to share a 4KB page look like
//     sharers;
//  2. "the overhead of protecting pages results in high overhead with an
//     attendant increase in page-table traversals and TLB flushing" —
//     every observation costs a fault (thousands of cycles), and the
//     re-protection sweep costs TLB shootdowns.
//
// Unlike the PMU path — which squeezes line addresses through a small
// fixed shMap with a collision-discarding filter — the page path tracks
// pages exactly (a DSM keeps a precise per-page copyset, and pages are
// 32x fewer than lines), so its per-thread signatures are sparse
// page->count vectors with no aliasing. Its precision limit is the page
// granularity itself: unrelated objects on one page are
// indistinguishable. The detector ships its own one-pass clusterer over
// the sparse vectors, mirroring the paper's algorithm, so the comparison
// experiment isolates the detection mechanism.
package pagedetect

import (
	"fmt"
	"sort"

	"threadcluster/internal/clustering"
	"threadcluster/internal/memory"
	"threadcluster/internal/sim"
	"threadcluster/internal/topology"
)

// PageSize is the virtual-memory page size (4 KiB), the mechanism's
// granularity — 32x coarser than the PMU path's 128-byte cache line.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// PageOf returns the page base address containing a.
func PageOf(a memory.Addr) memory.Addr { return a &^ (PageSize - 1) }

// Config parameterizes the detector.
type Config struct {
	// FaultCycles is the cost of one protection fault: trap, kernel
	// entry, page-table walk, bookkeeping, unprotect, TLB entry
	// invalidation, return. Thousands of cycles on real hardware.
	FaultCycles uint64
	// SweepInterval is how often (in cycles) every observed page is
	// re-protected so sharing keeps being sampled.
	SweepInterval uint64
	// SweepCostPerPage models the page-table update + TLB shootdown per
	// re-protected page, charged (amortized) to the next faulting access.
	SweepCostPerPage uint64
}

// DefaultConfig uses costs in the range reported for page-protection
// based systems: ~3000 cycles per fault, sweeps every 500k cycles.
func DefaultConfig() Config {
	return Config{
		FaultCycles:      3000,
		SweepInterval:    500_000,
		SweepCostPerPage: 200,
	}
}

// Detector observes every memory reference through the simulator's
// access-observer hook and builds page-granularity signature vectors.
type Detector struct {
	cfg Config

	// protected tracks the pages currently armed to fault. A page absent
	// from the map has never been seen; a page with value true is armed;
	// false means currently unprotected (already faulted this epoch).
	protected map[memory.Addr]bool
	// vectors are exact per-thread page->fault-count signatures.
	vectors map[clustering.ThreadKey]map[memory.Addr]uint32

	lastSweep  uint64
	sweepDebt  uint64 // amortized sweep cost charged on subsequent faults
	faults     uint64
	sweeps     uint64
	pagesSwept uint64
	enabled    bool
}

// New creates a detector.
func New(cfg Config) (*Detector, error) {
	if cfg.FaultCycles == 0 {
		return nil, fmt.Errorf("pagedetect: fault cost must be nonzero")
	}
	if cfg.SweepInterval == 0 {
		return nil, fmt.Errorf("pagedetect: sweep interval must be nonzero")
	}
	return &Detector{
		cfg:       cfg,
		protected: make(map[memory.Addr]bool),
		vectors:   make(map[clustering.ThreadKey]map[memory.Addr]uint32),
	}, nil
}

// Install hooks the detector into the machine and starts detecting.
func (d *Detector) Install(m *sim.Machine) {
	d.enabled = true
	d.lastSweep = m.Clock()
	m.SetAccessObserver(d.observe)
	m.OnTick(d.tick)
}

// Stop detaches the observation (the tick hook stays registered but
// becomes inert).
func (d *Detector) Stop(m *sim.Machine) {
	d.enabled = false
	m.SetAccessObserver(nil)
}

// observe is the page-fault path.
func (d *Detector) observe(cpu topology.CPUID, t *sim.Thread, ref sim.MemRef) uint64 {
	if !d.enabled || t == nil {
		return 0
	}
	page := PageOf(ref.Addr)
	armed, seen := d.protected[page]
	if seen && !armed {
		return 0 // unprotected this epoch: hardware-speed access
	}
	// Fault: record the access and unprotect the page.
	d.protected[page] = false
	d.faults++
	key := clustering.ThreadKey(t.ID)
	v, ok := d.vectors[key]
	if !ok {
		v = make(map[memory.Addr]uint32)
		d.vectors[key] = v
	}
	v[page]++
	cost := d.cfg.FaultCycles
	if d.sweepDebt > 0 {
		// Amortize the last sweep's TLB-shootdown bill over the faults
		// that follow it.
		chunk := d.sweepDebt / 4
		if chunk == 0 {
			chunk = d.sweepDebt
		}
		cost += chunk
		d.sweepDebt -= chunk
	}
	return cost
}

// tick re-protects all observed pages every SweepInterval cycles.
func (d *Detector) tick(m *sim.Machine) {
	if !d.enabled || m.Clock()-d.lastSweep < d.cfg.SweepInterval {
		return
	}
	d.lastSweep = m.Clock()
	d.sweeps++
	for page, armed := range d.protected {
		if !armed {
			d.protected[page] = true
			d.pagesSwept++
			d.sweepDebt += d.cfg.SweepCostPerPage
		}
	}
}

// Vectors returns the exact per-thread page->fault-count signatures.
func (d *Detector) Vectors() map[clustering.ThreadKey]map[memory.Addr]uint32 { return d.vectors }

// Similarity is the paper's dot-product metric evaluated over the exact
// sparse page vectors: only pages both threads faulted on contribute,
// weighted by fault-count product, with the same small-value noise floor.
// Pages in the global set (faulted on by more than half the threads) are
// skipped, mirroring the shMap path's global-sharing mask.
func Similarity(a, b map[memory.Addr]uint32, floor uint32, global map[memory.Addr]bool) float64 {
	var sum float64
	for page, va := range a {
		if va < floor || global[page] {
			continue
		}
		if vb := b[page]; vb >= floor {
			sum += float64(va) * float64(vb)
		}
	}
	return sum
}

// ClusterConfig parameterizes the page-path clusterer, mirroring
// clustering.Config.
type ClusterConfig struct {
	Threshold      float64
	Floor          uint32
	GlobalFraction float64
}

// DefaultClusterConfig scales the threshold to the page path's signal
// range. Because the kernel unprotects a page at the first fault, only
// one thread observes each (page, epoch) pair; per-thread counts are
// bounded by the number of re-protection sweeps divided by the number of
// sharers, far below the PMU path's per-sample counts. This is one more
// structural cost of the technique: intensity information accumulates a
// whole protection epoch at a time.
func DefaultClusterConfig() ClusterConfig {
	return ClusterConfig{Threshold: 30, Floor: 3, GlobalFraction: 0.5}
}

// Cluster runs the paper's one-pass representative clustering over the
// exact page vectors.
func (d *Detector) Cluster(cfg ClusterConfig) []clustering.Cluster {
	keys := make([]clustering.ThreadKey, 0, len(d.vectors))
	for k := range d.vectors {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	// Global-page histogram, as in Section 4.4.2.
	hist := make(map[memory.Addr]int)
	for _, v := range d.vectors {
		for page, n := range v {
			if n > 0 {
				hist[page]++
			}
		}
	}
	global := make(map[memory.Addr]bool)
	limit := cfg.GlobalFraction * float64(len(d.vectors))
	for page, n := range hist {
		if float64(n) > limit {
			global[page] = true
		}
	}

	var clusters []clustering.Cluster
	for _, k := range keys {
		v := d.vectors[k]
		best, bestScore := -1, 0.0
		for ci := range clusters {
			score := Similarity(d.vectors[clusters[ci].Rep], v, cfg.Floor, global)
			if score >= cfg.Threshold && score > bestScore {
				best, bestScore = ci, score
			}
		}
		if best >= 0 {
			clusters[best].Members = append(clusters[best].Members, k)
		} else {
			clusters = append(clusters, clustering.Cluster{Rep: k, Members: []clustering.ThreadKey{k}})
		}
	}
	return clusters
}

// Faults returns how many protection faults fired.
func (d *Detector) Faults() uint64 { return d.faults }

// Sweeps returns how many re-protection sweeps ran.
func (d *Detector) Sweeps() uint64 { return d.sweeps }

// PagesSwept returns the cumulative number of page re-protections.
func (d *Detector) PagesSwept() uint64 { return d.pagesSwept }

// PagesSeen returns how many distinct pages were ever observed.
func (d *Detector) PagesSeen() int { return len(d.protected) }

// Reset clears all observations.
func (d *Detector) Reset() {
	d.protected = make(map[memory.Addr]bool)
	d.vectors = make(map[clustering.ThreadKey]map[memory.Addr]uint32)
	d.faults, d.sweeps, d.pagesSwept, d.sweepDebt = 0, 0, 0, 0
}
