package pagedetect

import (
	"context"
	"testing"
	"testing/quick"

	"threadcluster/internal/clustering"
	"threadcluster/internal/memory"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
	"threadcluster/internal/workloads"
)

func TestPageOf(t *testing.T) {
	tests := []struct{ in, want memory.Addr }{
		{0, 0},
		{4095, 0},
		{4096, 4096},
		{0x12345, 0x12000},
	}
	for _, tc := range tests {
		if got := PageOf(tc.in); got != tc.want {
			t.Errorf("PageOf(%#x) = %#x, want %#x", uint64(tc.in), uint64(got), uint64(tc.want))
		}
	}
}

func TestPageOfProperty(t *testing.T) {
	f := func(a uint64) bool {
		p := PageOf(memory.Addr(a))
		return uint64(p)%PageSize == 0 && a-uint64(p) < PageSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{FaultCycles: 0, SweepInterval: 1}); err == nil {
		t.Error("zero fault cost should fail")
	}
	if _, err := New(Config{FaultCycles: 1, SweepInterval: 0}); err == nil {
		t.Error("zero sweep interval should fail")
	}
	if _, err := New(Config{FaultCycles: 1, SweepInterval: 1}); err != nil {
		t.Error("minimal valid config should work")
	}
}

func TestFaultOncePerEpoch(t *testing.T) {
	d, _ := New(DefaultConfig())
	d.enabled = true
	th := &sim.Thread{ID: 1}
	ref := sim.MemRef{Addr: 0x5000}
	if c := d.observe(0, th, ref); c == 0 {
		t.Fatal("first touch must fault")
	}
	if c := d.observe(0, th, ref); c != 0 {
		t.Fatal("second touch in the same epoch must be free")
	}
	// Same page, different offset: still free.
	if c := d.observe(0, th, sim.MemRef{Addr: 0x5ABC}); c != 0 {
		t.Fatal("same-page access must be free within the epoch")
	}
	// Different page: faults.
	if c := d.observe(0, th, sim.MemRef{Addr: 0x9000}); c == 0 {
		t.Fatal("new page must fault")
	}
	if d.Faults() != 2 {
		t.Errorf("faults = %d, want 2", d.Faults())
	}
	if d.PagesSeen() != 2 {
		t.Errorf("pages seen = %d, want 2", d.PagesSeen())
	}
}

func TestSignatureRecordsThreads(t *testing.T) {
	d, _ := New(DefaultConfig())
	d.enabled = true
	a, b := &sim.Thread{ID: 1}, &sim.Thread{ID: 2}
	d.observe(0, a, sim.MemRef{Addr: 0x5000})
	d.observe(1, b, sim.MemRef{Addr: 0x9000})
	if len(d.Vectors()) != 2 {
		t.Fatalf("vectors = %d, want 2", len(d.Vectors()))
	}
	if d.Vectors()[1][0x5000] != 1 || d.Vectors()[2][0x9000] != 1 {
		t.Error("each thread should have one faulted page")
	}
}

func TestFalseSharingAtPageGranularity(t *testing.T) {
	// Two threads touching different cache lines of the SAME page are
	// indistinguishable — the drawback the paper calls out.
	d, _ := New(DefaultConfig())
	d.enabled = true
	a, b := &sim.Thread{ID: 1}, &sim.Thread{ID: 2}
	d.observe(0, a, sim.MemRef{Addr: 0x5000}) // line 0 of page 0x5000
	// New epoch so b's touch faults too.
	d.protected[0x5000] = true
	d.observe(1, b, sim.MemRef{Addr: 0x5F80}) // last line of the same page
	va, vb := d.Vectors()[1], d.Vectors()[2]
	if va[0x5000] == 0 || vb[0x5000] == 0 {
		t.Error("accesses to distinct lines of one page must land on the same page record (false sharing)")
	}
}

func TestSimilarityFloorAndGlobal(t *testing.T) {
	a := map[memory.Addr]uint32{0x1000: 10, 0x2000: 1, 0x3000: 8}
	b := map[memory.Addr]uint32{0x1000: 5, 0x2000: 9, 0x3000: 7}
	// Floor 3 zeroes a's 0x2000; global masks 0x3000.
	global := map[memory.Addr]bool{0x3000: true}
	got := Similarity(a, b, 3, global)
	if got != 50 {
		t.Errorf("similarity = %v, want 50 (only page 0x1000 counts)", got)
	}
	if Similarity(a, b, 3, global) != Similarity(b, a, 3, global) {
		t.Error("similarity must be symmetric")
	}
}

func TestSweepRearmsPages(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SweepInterval = 1 // re-protect on every tick
	d, _ := New(cfg)

	mcfg := sim.DefaultConfig()
	mcfg.QuantumCycles = 10_000
	m, _ := sim.NewMachine(mcfg)
	arena := memory.NewDefaultArena()
	spec, err := workloads.NewSynthetic(arena, workloads.DefaultSyntheticConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Install(m); err != nil {
		t.Fatal(err)
	}
	d.Install(m)
	m.RunRoundsCtx(context.Background(), 10)
	if d.Sweeps() == 0 {
		t.Error("sweeps should have run")
	}
	if d.PagesSwept() == 0 {
		t.Error("pages should have been re-protected")
	}
	// Faults should far exceed pages seen (pages fault again after sweeps).
	if d.Faults() <= uint64(d.PagesSeen()) {
		t.Errorf("faults %d should exceed distinct pages %d after sweeps", d.Faults(), d.PagesSeen())
	}
}

func TestOverheadChargedToMachine(t *testing.T) {
	d, _ := New(DefaultConfig())
	mcfg := sim.DefaultConfig()
	mcfg.QuantumCycles = 10_000
	m, _ := sim.NewMachine(mcfg)
	arena := memory.NewDefaultArena()
	spec, _ := workloads.NewSynthetic(arena, workloads.DefaultSyntheticConfig())
	_ = spec.Install(m)
	d.Install(m)
	m.RunRoundsCtx(context.Background(), 20)
	if m.OverheadCycles() == 0 {
		t.Error("page faults should cost machine cycles")
	}
	d.Stop(m)
	base := d.Faults()
	m.RunRoundsCtx(context.Background(), 5)
	if d.Faults() != base {
		t.Error("stopped detector must not observe")
	}
}

func TestDetectorClustersPageSegregatedData(t *testing.T) {
	// Positive control: when each sharing group's data occupies its own
	// pages (page-aligned, page-sized scoreboards), the page mechanism
	// does recover the groups. The paper's critique is about what happens
	// in the realistic layouts of the other tests, not that the mechanism
	// never works.
	d, _ := New(DefaultConfig())
	mcfg := sim.DefaultConfig()
	mcfg.QuantumCycles = 20_000
	mcfg.Policy = sched.PolicyRoundRobin
	m, _ := sim.NewMachine(mcfg)
	arena := memory.NewDefaultArena()
	cfg := workloads.DefaultSyntheticConfig()
	cfg.ScoreboardBytes = 2 * PageSize
	cfg.Align = PageSize
	spec, err := workloads.NewSynthetic(arena, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = spec.Install(m)
	d.Install(m)
	m.RunRoundsCtx(context.Background(), 500)

	clusters := d.Cluster(DefaultClusterConfig())
	truth := make(map[clustering.ThreadKey]int)
	for _, th := range spec.Threads {
		truth[clustering.ThreadKey(th.ID)] = th.Partition
	}
	big := 0
	for _, c := range clusters {
		if c.Size() >= 2 {
			big++
		}
	}
	if big == 0 {
		t.Fatalf("page detector found no clusters even with page-segregated data (%d total)", len(clusters))
	}
	if p := clustering.Purity(clusters, truth); p < 0.8 {
		t.Errorf("purity = %.2f, want >= 0.8 for page-segregated groups", p)
	}
}

func TestDetectorConfusedByAllocatorInterleaving(t *testing.T) {
	// SPECjbb's two warehouses keep growing from a single shared
	// allocator, so nodes of both trees interleave on the same 4KB pages.
	// At page granularity the warehouses become inseparable: many pages
	// look process-global and same- vs cross-warehouse similarities
	// converge — the false-sharing drawback of Section 1, emerging from
	// layout alone. The PMU path separates the same workload perfectly
	// (see internal/experiments tests).
	d, _ := New(DefaultConfig())
	mcfg := sim.DefaultConfig()
	mcfg.QuantumCycles = 20_000
	mcfg.Policy = sched.PolicyRoundRobin
	m, _ := sim.NewMachine(mcfg)
	arena := memory.NewDefaultArena()
	cfg := workloads.DefaultJBBConfig()
	cfg.InitialKeys = 1500
	spec, err := workloads.NewJBB(arena, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = spec.Install(m)
	d.Install(m)
	m.RunRoundsCtx(context.Background(), 500)

	clusters := d.Cluster(DefaultClusterConfig())
	truth := make(map[clustering.ThreadKey]int)
	for _, th := range spec.Threads {
		truth[clustering.ThreadKey(th.ID)] = th.Partition
	}
	// The page path must NOT cleanly recover the 2 warehouses.
	twoClean := len(clusters) == 2 && clustering.Purity(clusters, truth) == 1.0
	if twoClean {
		t.Error("page granularity unexpectedly separated interleaved warehouses cleanly")
	}
}

func TestDetectorFailsOnSubPageStructures(t *testing.T) {
	// The microbenchmark's four 2KB scoreboards coalesce onto two 4KB
	// pages; every thread faults on them, the pages look process-global,
	// and the sharing signal vanishes — the granularity pathology of
	// Section 1. The PMU path at 128-byte granularity separates the same
	// groups perfectly (see internal/experiments).
	d, _ := New(DefaultConfig())
	mcfg := sim.DefaultConfig()
	mcfg.QuantumCycles = 20_000
	mcfg.Policy = sched.PolicyRoundRobin
	m, _ := sim.NewMachine(mcfg)
	arena := memory.NewDefaultArena()
	spec, _ := workloads.NewSynthetic(arena, workloads.DefaultSyntheticConfig())
	_ = spec.Install(m)
	d.Install(m)
	m.RunRoundsCtx(context.Background(), 400)

	clusters := d.Cluster(DefaultClusterConfig())
	truth := make(map[clustering.ThreadKey]int)
	for _, th := range spec.Threads {
		truth[clustering.ThreadKey(th.ID)] = th.Partition
	}
	// Either the groups dissolve into singletons (global-mask pathology)
	// or they merge across scoreboards (false sharing); both mean the
	// page path cannot reproduce the 4-cluster ground truth.
	if ri := clustering.RandIndex(clusters, truth); ri > 0.9 {
		fourWay := 0
		for _, c := range clusters {
			if c.Size() == 4 {
				fourWay++
			}
		}
		if fourWay == 4 {
			t.Errorf("page granularity unexpectedly recovered sub-page scoreboard groups (rand=%.2f)", ri)
		}
	}
}

func TestReset(t *testing.T) {
	d, _ := New(DefaultConfig())
	d.enabled = true
	d.observe(0, &sim.Thread{ID: 1}, sim.MemRef{Addr: 0x5000})
	d.Reset()
	if d.Faults() != 0 || d.PagesSeen() != 0 || len(d.Vectors()) != 0 {
		t.Error("Reset should clear everything")
	}
}
