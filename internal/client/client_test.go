package client_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"threadcluster/internal/client"
	"threadcluster/internal/errs"
	"threadcluster/internal/metrics"
	"threadcluster/internal/server"
)

// fixture is a started job server behind httptest plus a client on it.
type fixture struct {
	srv *server.Server
	cl  *client.Client
}

func newFixture(t *testing.T, opt server.Options) *fixture {
	t.Helper()
	if opt.Clock == nil {
		opt.Clock = server.NewFakeClock(time.Unix(1_700_000_000, 0).UTC())
	}
	s, err := server.New(opt)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	if err := s.Start(ctx); err != nil {
		t.Fatalf("Start: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		sctx, scancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer scancel()
		_ = s.Shutdown(sctx)
	})
	return &fixture{srv: s, cl: client.New(ts.URL, ts.Client())}
}

func spec(id string) server.JobSpec {
	return server.JobSpec{
		ID:            id,
		Workloads:     []string{"microbenchmark"},
		Policies:      []string{"default"},
		Topos:         []string{"open720"},
		Seed:          7,
		WarmRounds:    2,
		EngineRounds:  4,
		MeasureRounds: 4,
	}
}

func TestClientRoundTrip(t *testing.T) {
	f := newFixture(t, server.Options{})
	ctx := context.Background()

	st, err := f.cl.Submit(ctx, spec("rt"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.ID != "rt" || st.State != server.StateQueued {
		t.Fatalf("admitted status %+v, want queued rt", st)
	}
	final, err := f.cl.Wait(ctx, "rt")
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != server.StateDone {
		t.Fatalf("state %s (err %q), want done", final.State, final.Error)
	}
	payload, err := f.cl.ResultPayload(ctx, "rt")
	if err != nil {
		t.Fatalf("ResultPayload: %v", err)
	}
	if len(payload.Tasks) != 1 || payload.Digest != final.Digest {
		t.Fatalf("payload %+v inconsistent with status digest %s", payload, final.Digest)
	}
	if payload.Tasks[0].Metrics.Counter("sim_ops_total", nil) == 0 {
		t.Fatal("decoded payload lost its metrics snapshot")
	}
	jobs, err := f.cl.Jobs(ctx)
	if err != nil || len(jobs) != 1 {
		t.Fatalf("Jobs = %v (err %v), want one entry", jobs, err)
	}
	text, err := f.cl.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if err := metrics.CheckPrometheusText(text); err != nil {
		t.Fatalf("metrics exposition invalid: %v", err)
	}
	if err := f.cl.Ready(ctx); err != nil {
		t.Fatalf("Ready: %v", err)
	}
}

// TestClientErrorsCarrySentinels checks the wire round-trip of the error
// taxonomy: errors.Is sees the same sentinel the server classified.
func TestClientErrorsCarrySentinels(t *testing.T) {
	f := newFixture(t, server.Options{})
	ctx := context.Background()

	if _, err := f.cl.Status(ctx, "ghost"); !errors.Is(err, errs.ErrJobNotFound) {
		t.Fatalf("Status(ghost) = %v, want ErrJobNotFound", err)
	}
	bad := spec("bad")
	bad.Workloads = nil
	if _, err := f.cl.Submit(ctx, bad); !errors.Is(err, errs.ErrBadConfig) {
		t.Fatalf("Submit(bad) = %v, want ErrBadConfig", err)
	}
	var apiErr *client.APIError
	if _, err := f.cl.Submit(ctx, bad); !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("Submit(bad) = %v, want APIError with status 400", err)
	}
}

// TestClientSoak is the load harness: many concurrent submitters push
// identical grids through a parallel server, tolerating overload
// rejections, and every job that completes must return the byte-identical
// payload. Exercises admission control, the worker pool, streaming and
// the result path under real HTTP concurrency.
func TestClientSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak harness runs many jobs")
	}
	f := newFixture(t, server.Options{
		QueueDepth: 8,
		JobWorkers: 4,
		// A modest pool so the burst provokes real 429s.
		MaxJobCost:    1_000,
		MaxQueuedCost: 4_000,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	const (
		submitters = 8
		perWorker  = 6
	)
	var (
		mu       sync.Mutex
		payloads = map[string]string{}
		accepted int
		rejected int
	)
	var wg sync.WaitGroup
	for w := 0; w < submitters; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := strings.Join([]string{"soak", string(rune('a' + w)), string(rune('0' + i))}, "-")
				_, err := f.cl.Submit(ctx, spec(id))
				if err != nil {
					var apiErr *client.APIError
					if errors.Is(err, errs.ErrOverloaded) && errors.As(err, &apiErr) {
						if apiErr.RetryAfterSeconds < 1 {
							t.Errorf("%s: overload without Retry-After hint", id)
							return
						}
						mu.Lock()
						rejected++
						mu.Unlock()
						// Back off as instructed, then drop this job: the
						// soak measures robustness, not completion count.
						select {
						case <-time.After(50 * time.Millisecond):
						case <-ctx.Done():
						}
						continue
					}
					t.Errorf("Submit %s: %v", id, err)
					return
				}
				st, err := f.cl.Wait(ctx, id)
				if err != nil {
					t.Errorf("Wait %s: %v", id, err)
					return
				}
				if st.State != server.StateDone {
					t.Errorf("%s state %s (err %q), want done", id, st.State, st.Error)
					return
				}
				data, err := f.cl.Result(ctx, id)
				if err != nil {
					t.Errorf("Result %s: %v", id, err)
					return
				}
				mu.Lock()
				payloads[id] = string(data)
				accepted++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if accepted == 0 {
		t.Fatal("soak accepted no jobs at all")
	}
	var reference string
	for id, p := range payloads {
		if reference == "" {
			reference = p
			continue
		}
		if p != reference {
			t.Fatalf("%s: payload differs under load — determinism broke across the wire", id)
		}
	}
	t.Logf("soak: %d completed, %d overload-rejected", accepted, rejected)
}

// TestClientEventStreamCancel detaches a subscriber via ctx while the
// job is still running; the client must surface ctx.Err.
func TestClientEventStreamCancel(t *testing.T) {
	f := newFixture(t, server.Options{MaxJobCost: 100_000_000})
	long := spec("long")
	long.EngineRounds = 50_000_000
	ctx := context.Background()
	if _, err := f.cl.Submit(ctx, long); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	sctx, scancel := context.WithCancel(ctx)
	errc := make(chan error, 1)
	go func() {
		errc <- f.cl.Events(sctx, "long", func(ev server.Event) error {
			if ev.Type == server.EventRunning {
				scancel()
			}
			return nil
		})
	}()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Events = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("event stream did not unwind on ctx cancel")
	}
	if _, err := f.cl.Cancel(ctx, "long"); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
}
