// Package client is a thin typed client for the tcsimd job service
// (internal/server). It speaks the /v1 JSON API, maps the structured
// error bodies back onto the errs sentinels the server classified them
// from — errors.Is works identically on both sides of the wire — and
// streams NDJSON progress events. Every method is ctx-first. The one
// retry the client performs itself is the one the server explicitly
// invites: a Submit rejected 429 honors the Retry-After hint with a
// deterministic, seed-derived jittered backoff when a Backoff is
// configured (WithBackoff); everything else carries the hint out
// (APIError.RetryAfterSeconds) for the caller's policy.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"threadcluster/internal/errs"
	"threadcluster/internal/server"
	"threadcluster/internal/sweep"
)

// Client talks to one tcsimd base URL, e.g. "http://127.0.0.1:8321".
type Client struct {
	base    string
	hc      *http.Client
	backoff Backoff
}

// New builds a client for base. hc may be nil for http.DefaultClient;
// pass a client without timeouts when streaming events (the stream stays
// open for the whole job — bound it with ctx instead).
func New(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// Backoff configures Submit's overload retry. The delay schedule is a
// pure function of (Seed, attempt) and the server's Retry-After hints —
// no wall clock, no global randomness — so a retried submission is as
// replayable as everything else in the system: two clients with the
// same seed back off identically, while different seeds (the jitter)
// keep a thundering herd from re-converging on the server.
type Backoff struct {
	// Retries is the number of re-submissions after the first 429.
	// 0 disables retrying (the zero Backoff is the old fail-fast client).
	Retries int
	// Seed derives the jitter; callers typically pass the job's seed.
	Seed int64
	// Base is the delay when the server sent no Retry-After hint.
	// Default 1s.
	Base time.Duration
	// Max caps any single delay. Default 60s.
	Max time.Duration
	// Sleep waits out one backoff delay; nil uses a ctx-aware timer.
	// Tests inject it to observe the schedule without sleeping.
	Sleep func(ctx context.Context, d time.Duration) error
}

// WithBackoff returns the client with the Submit overload-retry policy
// installed (chainable: client.New(...).WithBackoff(...)).
func (c *Client) WithBackoff(b Backoff) *Client {
	c.backoff = b
	return c
}

// delay computes the attempt'th backoff: the server's hint (or Base),
// scaled by a deterministic jitter in [1.0, 1.5) derived from the seed
// and attempt index, clamped to Max.
func (b Backoff) delay(attempt, hintSeconds int) time.Duration {
	d := b.Base
	if d <= 0 {
		d = time.Second
	}
	if hintSeconds > 0 {
		d = time.Duration(hintSeconds) * time.Second
	}
	// sweep.DeriveSeed is a SplitMix64 finalizer: uniform enough for
	// jitter and already seed-provenance-clean under the lint suite.
	j := uint64(sweep.DeriveSeed(b.Seed, attempt)) % 1024
	d += time.Duration(uint64(d) * j / 2048)
	max := b.Max
	if max <= 0 {
		max = 60 * time.Second
	}
	if d > max {
		d = max
	}
	return d
}

// sleep waits out d via the injected Sleep, or a ctx-aware timer.
func (b Backoff) sleep(ctx context.Context, d time.Duration) error {
	if b.Sleep != nil {
		return b.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// APIError is a non-2xx response: the HTTP status, the server's stable
// error code and message, and the Retry-After hint on overload. Unwrap
// yields the errs sentinel matching the code, so
// errors.Is(err, errs.ErrOverloaded) works across the wire.
type APIError struct {
	Status            int
	Code              string
	Message           string
	RetryAfterSeconds int
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: server returned %d %s: %s", e.Status, e.Code, e.Message)
}

// codeSentinels inverts the server's error classification.
var codeSentinels = map[string]error{
	"bad_config":    errs.ErrBadConfig,
	"job_not_found": errs.ErrJobNotFound,
	"job_exists":    errs.ErrJobExists,
	"job_final":     errs.ErrJobFinal,
	"job_not_done":  errs.ErrJobNotDone,
	"overloaded":    errs.ErrOverloaded,
	"unavailable":   errs.ErrUnavailable,
}

// Unwrap maps the wire code back onto its errs sentinel.
func (e *APIError) Unwrap() error { return codeSentinels[e.Code] }

// do issues one request and decodes an error body on non-2xx.
func (c *Client) do(ctx context.Context, method, path string, body any) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return nil, fmt.Errorf("client: encoding request: %w", err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, fmt.Errorf("client: building request: %w", err)
	}
	if rd != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return resp, nil
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	apiErr := &APIError{Status: resp.StatusCode, Code: "internal", Message: string(data)}
	var eb server.ErrorBody
	if err := json.Unmarshal(data, &eb); err == nil && eb.Error.Code != "" {
		apiErr.Code = eb.Error.Code
		apiErr.Message = eb.Error.Message
		apiErr.RetryAfterSeconds = eb.Error.RetryAfterSeconds
	}
	return nil, apiErr
}

// decode runs a request and unmarshals the response body into out.
func (c *Client) decode(ctx context.Context, method, path string, body, out any) error {
	resp, err := c.do(ctx, method, path, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// Submit admits spec and returns the queued job's status. When a
// Backoff is configured (WithBackoff), a 429 rejection is retried up to
// Retries times, honoring the server's Retry-After hint with the
// deterministic jittered schedule; a 429 is a pure rejection, so the
// retry can never double-submit. All other errors return immediately.
func (c *Client) Submit(ctx context.Context, spec server.JobSpec) (server.JobStatus, error) {
	for attempt := 0; ; attempt++ {
		var st server.JobStatus
		err := c.decode(ctx, http.MethodPost, "/v1/jobs", spec, &st)
		if err == nil || attempt >= c.backoff.Retries {
			return st, err
		}
		var ae *APIError
		if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests {
			return st, err
		}
		if serr := c.backoff.sleep(ctx, c.backoff.delay(attempt, ae.RetryAfterSeconds)); serr != nil {
			return server.JobStatus{}, fmt.Errorf("client: backing off overloaded submit: %w", serr)
		}
	}
}

// Status fetches one job's status.
func (c *Client) Status(ctx context.Context, id string) (server.JobStatus, error) {
	var st server.JobStatus
	err := c.decode(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Jobs lists every job the server knows, in admission order.
func (c *Client) Jobs(ctx context.Context) ([]server.JobStatus, error) {
	var out []server.JobStatus
	err := c.decode(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// Cancel cancels a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) (server.JobStatus, error) {
	var st server.JobStatus
	err := c.decode(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Result fetches a done job's canonical payload bytes — byte-identical
// across replicas and across offline `tcsim sweep` runs of the same spec.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: reading result: %w", err)
	}
	return data, nil
}

// ResultPayload fetches and decodes a done job's result.
func (c *Client) ResultPayload(ctx context.Context, id string) (server.ResultPayload, error) {
	data, err := c.Result(ctx, id)
	if err != nil {
		return server.ResultPayload{}, err
	}
	var p server.ResultPayload
	if err := json.Unmarshal(data, &p); err != nil {
		return server.ResultPayload{}, fmt.Errorf("client: decoding result payload: %w", err)
	}
	return p, nil
}

// Events streams the job's NDJSON progress events to fn, replaying
// retained history first, until the stream's terminal event, ctx
// cancellation, or an fn error.
func (c *Client) Events(ctx context.Context, id string, fn func(server.Event) error) error {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var ev server.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("client: parsing event line %q: %w", sc.Text(), err)
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		// Surface ctx cancellation as such rather than as a transport error.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return ctxErr
		}
		return fmt.Errorf("client: reading event stream: %w", err)
	}
	return nil
}

// Wait follows the job's event stream to its end and returns the final
// status. A job drained away by a server shutdown is still queued on the
// server (and spooled); Wait reports that as ErrUnavailable.
func (c *Client) Wait(ctx context.Context, id string) (server.JobStatus, error) {
	if err := c.Events(ctx, id, func(server.Event) error { return nil }); err != nil {
		return server.JobStatus{}, err
	}
	st, err := c.Status(ctx, id)
	if err != nil {
		return server.JobStatus{}, err
	}
	if !st.State.Final() {
		return st, fmt.Errorf("client: %w: job %q drained before completing", errs.ErrUnavailable, id)
	}
	return st, nil
}

// Metrics fetches the raw Prometheus exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	resp, err := c.do(ctx, http.MethodGet, "/metrics", nil)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("client: reading metrics: %w", err)
	}
	return string(data), nil
}

// WorkerHealth fetches the worker's capacity signal (GET /v1/worker):
// the probe a fleet coordinator reads before leasing shards here.
func (c *Client) WorkerHealth(ctx context.Context) (server.WorkerHealth, error) {
	var h server.WorkerHealth
	err := c.decode(ctx, http.MethodGet, "/v1/worker", nil, &h)
	return h, err
}

// Ready probes /readyz: nil when the server admits jobs.
func (c *Client) Ready(ctx context.Context) error {
	resp, err := c.do(ctx, http.MethodGet, "/readyz", nil)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}
