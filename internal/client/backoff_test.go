package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"threadcluster/internal/client"
	"threadcluster/internal/errs"
	"threadcluster/internal/server"
)

// overloadedThen202 answers the first n submits 429 with a Retry-After
// hint, then admits.
func overloadedThen202(n int64, hintSeconds int) http.HandlerFunc {
	var count atomic.Int64
	return func(w http.ResponseWriter, r *http.Request) {
		if count.Add(1) <= n {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(server.ErrorBody{Error: server.ErrorDetail{
				Code: "overloaded", Message: "queue full", RetryAfterSeconds: hintSeconds,
			}})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(server.JobStatus{ID: "j1", State: server.StateQueued})
	}
}

// submitRecordingSleeps runs one Submit against a server that rejects
// the first `rejects` attempts, returning the recorded backoff delays.
func submitRecordingSleeps(t *testing.T, rejects int64, hint int, b client.Backoff) ([]time.Duration, error) {
	t.Helper()
	ts := httptest.NewServer(overloadedThen202(rejects, hint))
	defer ts.Close()
	var slept []time.Duration
	b.Sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	cl := client.New(ts.URL, ts.Client()).WithBackoff(b)
	_, err := cl.Submit(context.Background(), server.JobSpec{
		ID: "j1", Workloads: []string{"microbenchmark"},
		Policies: []string{"default"}, Topos: []string{"open720"},
	})
	return slept, err
}

// TestSubmitBackoffDeterministic: the 429 retry schedule is a pure
// function of (seed, attempt, server hints) — two clients with the
// same seed sleep identically; a different seed jitters differently;
// the hint, not the base, anchors the delay.
func TestSubmitBackoffDeterministic(t *testing.T) {
	b := client.Backoff{Retries: 4, Seed: 99}
	first, err := submitRecordingSleeps(t, 3, 2, b)
	if err != nil {
		t.Fatalf("Submit with backoff: %v", err)
	}
	second, err := submitRecordingSleeps(t, 3, 2, b)
	if err != nil {
		t.Fatalf("Submit with backoff (rerun): %v", err)
	}
	if len(first) != 3 {
		t.Fatalf("recorded %d sleeps, want 3: %v", len(first), first)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", first, second)
	}
	for _, d := range first {
		// Hint 2s, jitter in [1.0, 1.5): every delay in [2s, 3s).
		if d < 2*time.Second || d >= 3*time.Second {
			t.Errorf("delay %v outside the hinted jitter window [2s, 3s)", d)
		}
	}

	other, err := submitRecordingSleeps(t, 3, 2, client.Backoff{Retries: 4, Seed: 100})
	if err != nil {
		t.Fatalf("Submit with other seed: %v", err)
	}
	if reflect.DeepEqual(first, other) {
		t.Fatalf("different seeds produced the identical schedule %v (jitter is not seed-derived?)", first)
	}
}

// TestSubmitBackoffExhaustsRetries: more rejections than retries
// surfaces the 429 as ErrOverloaded after the full schedule.
func TestSubmitBackoffExhaustsRetries(t *testing.T) {
	slept, err := submitRecordingSleeps(t, 1<<30, 1, client.Backoff{Retries: 2, Seed: 7})
	if !errors.Is(err, errs.ErrOverloaded) {
		t.Fatalf("exhausted retries = %v, want ErrOverloaded", err)
	}
	if len(slept) != 2 {
		t.Fatalf("recorded %d sleeps, want 2", len(slept))
	}
}

// TestSubmitNoBackoffFailsFast: the zero Backoff is the old client —
// one attempt, immediate ErrOverloaded, no sleeping.
func TestSubmitNoBackoffFailsFast(t *testing.T) {
	slept, err := submitRecordingSleeps(t, 1, 1, client.Backoff{})
	if !errors.Is(err, errs.ErrOverloaded) {
		t.Fatalf("zero backoff = %v, want ErrOverloaded", err)
	}
	if len(slept) != 0 {
		t.Fatalf("zero backoff slept %v, want none", slept)
	}
}

// TestSubmitBackoffOnlyRetries429: a 400 rejection is never retried,
// backoff or not.
func TestSubmitBackoffOnlyRetries429(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		_ = json.NewEncoder(w).Encode(server.ErrorBody{Error: server.ErrorDetail{
			Code: "bad_config", Message: "empty grid",
		}})
	}))
	defer ts.Close()
	cl := client.New(ts.URL, ts.Client()).WithBackoff(client.Backoff{
		Retries: 5, Seed: 1,
		Sleep: func(ctx context.Context, d time.Duration) error { return nil },
	})
	_, err := cl.Submit(context.Background(), server.JobSpec{})
	if !errors.Is(err, errs.ErrBadConfig) {
		t.Fatalf("Submit = %v, want ErrBadConfig", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("400 submit hit the server %d times, want 1", hits.Load())
	}
}

// TestClientWorkerHealth: the coordinator's capacity probe round-trips
// through the typed client.
func TestClientWorkerHealth(t *testing.T) {
	f := newFixture(t, server.Options{JobWorkers: 2})
	h, err := f.cl.WorkerHealth(context.Background())
	if err != nil {
		t.Fatalf("WorkerHealth: %v", err)
	}
	if h.JobWorkers != 2 || h.Draining {
		t.Fatalf("WorkerHealth = %+v, want 2 idle job workers", h)
	}
}
