package pmu

import (
	"fmt"

	"threadcluster/internal/cache"
	"threadcluster/internal/memory"
)

// NumPhysicalCounters is how many programmable HPCs one PMU exposes. The
// Power5 has six programmable counters (plus two fixed ones); monitoring
// more logical events than this requires multiplexing.
const NumPhysicalCounters = 6

// OverflowHandler is invoked synchronously when a programmed counter
// reaches its overflow threshold — the simulated equivalent of a PMU
// overflow exception. The handler runs in "interrupt context": it may read
// the sampling register and reprogram counters, and it returns the number
// of cycles the interrupt + handling cost, which the simulator charges to
// the CPU that fired it (this is what makes the Figure 8 overhead curve
// emerge from the model rather than being asserted).
type OverflowHandler func(p *PMU) (handlerCycles uint64)

// counterSlot is one physical HPC.
type counterSlot struct {
	event      Event
	value      uint64
	overflowAt uint64 // 0 = never overflow
	handler    OverflowHandler
	programmed bool
}

// SampledAddr is the content of the continuous-sampling data-address
// register together with (simulator-internal) provenance used only to
// evaluate the technique's purity, never by the engine itself.
type SampledAddr struct {
	Line  memory.Addr
	Valid bool
	// source is ground truth about the miss that last updated the
	// register. The engine must not look at it; the SDAR purity experiment
	// (Section 5.2.1 validation) does.
	source cache.Source
}

// PMU is the performance monitoring unit of one hardware context.
//
// It keeps two views of events:
//
//   - exact aggregate counts for every event (the measurement harness —
//     what the paper's authors read out after a run);
//   - the constrained programmable-counter interface with overflow
//     exceptions and a last-L1D-miss sampling register (what the online
//     engine uses).
type PMU struct {
	counts [NumEvents]uint64
	slots  [NumPhysicalCounters]counterSlot
	sdar   SampledAddr
	mux    *Multiplexer //tclint:allow snapfields -- optional attachment wiring; the multiplexer snapshots as its own subsection beside the PMU

	// interruptCycles accumulates cycles spent in overflow handlers; the
	// simulator drains it into the running thread's cost.
	interruptCycles uint64
}

// New returns a fresh PMU with no counters programmed.
func New() *PMU { return &PMU{} }

// Program installs an event on a physical counter slot. overflowAt of zero
// counts without interrupting. Programming a slot resets its value.
func (p *PMU) Program(slot int, ev Event, overflowAt uint64, h OverflowHandler) error {
	if slot < 0 || slot >= NumPhysicalCounters {
		return fmt.Errorf("pmu: slot %d out of range [0,%d)", slot, NumPhysicalCounters)
	}
	if ev < 0 || int(ev) >= NumEvents {
		return fmt.Errorf("pmu: unknown event %d", int(ev))
	}
	p.slots[slot] = counterSlot{event: ev, overflowAt: overflowAt, handler: h, programmed: true}
	return nil
}

// Unprogram frees a counter slot.
func (p *PMU) Unprogram(slot int) {
	if slot >= 0 && slot < NumPhysicalCounters {
		p.slots[slot] = counterSlot{}
	}
}

// SetOverflowThreshold retunes the overflow period of a programmed slot
// without resetting its accumulated value. The sharing-detection phase uses
// this to adapt the temporal sampling rate online (Section 4.3.1).
func (p *PMU) SetOverflowThreshold(slot int, overflowAt uint64) error {
	if slot < 0 || slot >= NumPhysicalCounters || !p.slots[slot].programmed {
		return fmt.Errorf("pmu: slot %d not programmed", slot)
	}
	p.slots[slot].overflowAt = overflowAt
	return nil
}

// CounterValue reads the current value of a physical counter slot.
func (p *PMU) CounterValue(slot int) uint64 {
	if slot < 0 || slot >= NumPhysicalCounters {
		return 0
	}
	return p.slots[slot].value
}

// Observe records n occurrences of an event. Exact aggregate counts are
// always maintained; programmed counters and the multiplexer see the event
// too, and counter overflow fires handlers synchronously.
func (p *PMU) Observe(ev Event, n uint64) {
	if n == 0 {
		return
	}
	p.counts[ev] += n
	if p.mux != nil {
		p.mux.observe(ev, n)
	}
	for i := range p.slots {
		s := &p.slots[i]
		if !s.programmed || s.event != ev {
			continue
		}
		s.value += n
		if s.overflowAt != 0 && s.value >= s.overflowAt {
			// Wrap, preserving the residue, like a hardware counter
			// reloaded past its overflow point. A single Observe can
			// cover at most one overflow (events arrive one retirement
			// at a time in the simulator's hot path).
			s.value -= s.overflowAt
			if s.value >= s.overflowAt {
				s.value %= s.overflowAt
			}
			if s.handler != nil {
				p.interruptCycles += s.handler(p)
			}
		}
	}
}

// Batch accumulates per-event deltas so a hot loop can make one
// ObserveBatch call per slice instead of several Observe calls per
// reference. Index by Event.
type Batch [NumEvents]uint64

// Add records n occurrences of an event into the batch.
func (b *Batch) Add(ev Event, n uint64) { b[ev] += n }

// ObserveBatch feeds every nonzero event of the batch through Observe and
// zeroes the batch. Because Observe is additive — aggregate counts,
// multiplexer accumulation and handler-less counter values all sum — a
// batched flush is count-equivalent to per-reference Observe calls for
// every consumer except overflow *handlers*, whose firing points within
// the batch are not reconstructed. Callers must therefore keep the
// per-reference path whenever HasArmedHandler reports true.
func (p *PMU) ObserveBatch(b *Batch) {
	for ev := range b {
		if b[ev] != 0 {
			p.Observe(Event(ev), b[ev])
			b[ev] = 0
		}
	}
}

// HasArmedHandler reports whether any programmed counter can currently
// fire an overflow handler (a handler installed with a nonzero overflow
// threshold). Armed-but-silent programming (handler with overflowAt 0,
// how the clustering engine parks its detection hooks between phases)
// does not count: it cannot fire.
func (p *PMU) HasArmedHandler() bool {
	for i := range p.slots {
		s := &p.slots[i]
		if s.programmed && s.handler != nil && s.overflowAt != 0 {
			return true
		}
	}
	return false
}

// RecordMiss feeds one completed L1D miss into the PMU: it updates the
// continuous-sampling register with the miss's line address (regardless of
// source — that is the Power5 limitation the paper works around), then
// counts the per-source events. Remote sources additionally count
// EvRemoteAccess, which is the overflow trigger of the Section 5.2.1
// composition: because the counting happens *after* the register update,
// an overflow handler that reads the register immediately will almost
// always observe the remote access that caused the overflow.
func (p *PMU) RecordMiss(line memory.Addr, src cache.Source) {
	p.sdar = SampledAddr{Line: line, Valid: true, source: src}
	p.Observe(EvL1DMiss, 1)
	if ev, ok := MissEvent(src); ok {
		p.Observe(ev, 1)
	}
	if src.Remote() {
		p.Observe(EvRemoteAccess, 1)
	}
}

// ReadSDAR returns the continuous-sampling data-address register. The
// register is not consumed by reading; it keeps its value until the next
// L1D miss overwrites it.
func (p *PMU) ReadSDAR() SampledAddr { return p.sdar }

// SDARSourceForValidation exposes the ground-truth source of the sampled
// miss. It exists only for the sample-purity experiment; the clustering
// engine never calls it.
func (s SampledAddr) SDARSourceForValidation() cache.Source { return s.source }

// Count returns the exact aggregate count of an event.
func (p *PMU) Count(ev Event) uint64 { return p.counts[ev] }

// DrainInterruptCycles returns and clears the cycles spent in overflow
// handlers since the last drain.
func (p *PMU) DrainInterruptCycles() uint64 {
	c := p.interruptCycles
	p.interruptCycles = 0
	return c
}

// AttachMultiplexer routes subsequent events into a multiplexer as well.
func (p *PMU) AttachMultiplexer(m *Multiplexer) { p.mux = m }

// Reset clears aggregate counts and counter values but keeps programming.
func (p *PMU) Reset() {
	p.counts = [NumEvents]uint64{}
	for i := range p.slots {
		p.slots[i].value = 0
	}
	p.sdar = SampledAddr{}
	p.interruptCycles = 0
}
