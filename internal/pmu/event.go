// Package pmu simulates a Power5-style performance monitoring unit: a
// small set of programmable hardware performance counters (HPCs) with
// overflow exceptions, a continuous-sampling data-address register that is
// updated on every L1 data-cache miss regardless of the miss's source
// (Section 5.2.1 of the paper), fine-grained counter multiplexing in the
// style of Azimi et al. [2], and a CPI stall-breakdown accumulator
// (Figure 3).
//
// The thread-clustering engine is only allowed to see the machine through
// this interface — counters, overflow interrupts and the sampling register
// — never the simulator's ground truth, so the paper's indirect
// remote-access capture technique is exercised for real.
package pmu

import (
	"fmt"

	"threadcluster/internal/cache"
)

// Event identifies a countable micro-architectural event.
type Event int

const (
	// EvCycles counts elapsed CPU cycles.
	EvCycles Event = iota
	// EvInstCompleted counts retired instructions.
	EvInstCompleted
	// EvCompletionCycles counts cycles in which at least one instruction
	// retired (the "completion" component of the CPI stack).
	EvCompletionCycles
	// EvL1DMiss counts L1 data-cache misses from any source.
	EvL1DMiss
	// EvMissL2 counts L1D misses satisfied by the chip-local L2.
	EvMissL2
	// EvMissL3 counts L1D misses satisfied by the chip-local L3.
	EvMissL3
	// EvMissRemoteL2 counts L1D misses satisfied by a remote chip's L2.
	EvMissRemoteL2
	// EvMissRemoteL3 counts L1D misses satisfied by a remote chip's L3.
	EvMissRemoteL3
	// EvMissMemory counts L1D misses satisfied by local main memory.
	EvMissMemory
	// EvMissRemoteMemory counts L1D misses satisfied by another chip's
	// memory controller (NUMA mode).
	EvMissRemoteMemory
	// EvRemoteAccess counts L1D misses satisfied by any remote cache
	// (remote L2 + remote L3). This is the countable event that the
	// Section 5.2.1 composition sets an overflow exception on.
	EvRemoteAccess
	// EvStallL2 .. EvStallMemory count stall cycles attributed to data
	// cache misses, broken down by the satisfying source.
	EvStallL2
	EvStallL3
	EvStallRemoteL2
	EvStallRemoteL3
	EvStallMemory
	// EvStallRemoteMemory counts stall cycles on remote-memory fills.
	EvStallRemoteMemory
	// EvStallSMT counts cycles lost to the SMT sibling context competing
	// for the core's issue bandwidth.
	EvStallSMT
	// EvStallBranch counts stall cycles from branch mispredictions.
	EvStallBranch
	// EvStallOther counts stall cycles from all remaining causes (fixed
	// point, floating point, instruction fetch, ...).
	EvStallOther
	// NumEvents is the size of the event space.
	NumEvents int = iota
)

var eventNames = [NumEvents]string{
	"cycles", "inst-completed", "completion-cycles", "l1d-miss",
	"miss-l2", "miss-l3", "miss-remote-l2", "miss-remote-l3", "miss-memory",
	"miss-remote-memory",
	"remote-access",
	"stall-l2", "stall-l3", "stall-remote-l2", "stall-remote-l3", "stall-memory",
	"stall-remote-memory", "stall-smt",
	"stall-branch", "stall-other",
}

func (e Event) String() string {
	if e >= 0 && int(e) < NumEvents {
		return eventNames[e]
	}
	return fmt.Sprintf("Event(%d)", int(e))
}

// MissEvent maps a cache source to the per-source miss event. It returns
// false for SrcL1, which is a hit and produces no miss event.
func MissEvent(src cache.Source) (Event, bool) {
	switch src {
	case cache.SrcL2:
		return EvMissL2, true
	case cache.SrcL3:
		return EvMissL3, true
	case cache.SrcRemoteL2:
		return EvMissRemoteL2, true
	case cache.SrcRemoteL3:
		return EvMissRemoteL3, true
	case cache.SrcMemory:
		return EvMissMemory, true
	case cache.SrcRemoteMemory:
		return EvMissRemoteMemory, true
	}
	return 0, false
}

// StallEvent maps a cache source to the per-source stall event. It returns
// false for SrcL1: an L1 hit's couple of cycles are overlapped by the
// pipeline and never show up as a stall.
func StallEvent(src cache.Source) (Event, bool) {
	switch src {
	case cache.SrcL2:
		return EvStallL2, true
	case cache.SrcL3:
		return EvStallL3, true
	case cache.SrcRemoteL2:
		return EvStallRemoteL2, true
	case cache.SrcRemoteL3:
		return EvStallRemoteL3, true
	case cache.SrcMemory:
		return EvStallMemory, true
	case cache.SrcRemoteMemory:
		return EvStallRemoteMemory, true
	}
	return 0, false
}

// StallEvents lists every stall-category event, in display order.
func StallEvents() []Event {
	return []Event{
		EvStallL2, EvStallL3, EvStallRemoteL2, EvStallRemoteL3,
		EvStallMemory, EvStallRemoteMemory, EvStallSMT, EvStallBranch, EvStallOther,
	}
}
