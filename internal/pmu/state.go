package pmu

import (
	"fmt"

	"threadcluster/internal/cache"
	"threadcluster/internal/errs"
	"threadcluster/internal/memory"
	"threadcluster/internal/snapbin"
)

// SaveState appends the PMU's complete mutable state to the encoder:
// exact aggregate counts, per-slot programming metadata and values, the
// sampling register (with its validation-only provenance) and undrained
// interrupt cycles. Overflow handlers are closures and are not
// serialized — restore validates them against a PMU whose owner has
// already re-installed the same programming.
func (p *PMU) SaveState(e *snapbin.Enc) {
	e.U32(uint32(NumEvents))
	for _, c := range p.counts {
		e.U64(c)
	}
	e.U32(uint32(NumPhysicalCounters))
	for i := range p.slots {
		s := &p.slots[i]
		e.Bool(s.programmed)
		e.U32(uint32(s.event))
		e.U64(s.value)
		e.U64(s.overflowAt)
		e.Bool(s.handler != nil)
	}
	e.U64(uint64(p.sdar.Line))
	e.Bool(p.sdar.Valid)
	e.U32(uint32(p.sdar.source))
	e.U64(p.interruptCycles)
}

// RestoreState overwrites the PMU's mutable state with a state saved by
// SaveState. Slot programming (which slots are programmed, with which
// event, and whether a handler is attached) must already match the saved
// state: the caller re-installs the monitoring configuration first, and
// this method then restores counter values and overflow thresholds
// without touching the live handler closures.
func (p *PMU) RestoreState(d *snapbin.Dec) error {
	if n := int(d.U32()); d.Err() == nil && n != NumEvents {
		return fmt.Errorf("pmu: snapshot has %d events, built with %d: %w", n, NumEvents, errs.ErrBadConfig)
	}
	var counts [NumEvents]uint64
	for i := range counts {
		counts[i] = d.U64()
	}
	if n := int(d.U32()); d.Err() == nil && n != NumPhysicalCounters {
		return fmt.Errorf("pmu: snapshot has %d counter slots, built with %d: %w", n, NumPhysicalCounters, errs.ErrBadConfig)
	}
	type slotState struct {
		programmed bool
		event      Event
		value      uint64
		overflowAt uint64
		hasHandler bool
	}
	var slots [NumPhysicalCounters]slotState
	for i := range slots {
		slots[i] = slotState{
			programmed: d.Bool(),
			event:      Event(d.U32()),
			value:      d.U64(),
			overflowAt: d.U64(),
			hasHandler: d.Bool(),
		}
	}
	line := memory.Addr(d.U64())
	valid := d.Bool()
	source := cache.Source(d.U32())
	interruptCycles := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	for i, st := range slots {
		cur := &p.slots[i]
		if st.programmed != cur.programmed ||
			(st.programmed && (st.event != cur.event || st.hasHandler != (cur.handler != nil))) {
			return fmt.Errorf("pmu: slot %d programming mismatch (snapshot %v/%v, machine %v/%v): %w",
				i, st.programmed, st.event, cur.programmed, cur.event, errs.ErrBadConfig)
		}
	}
	p.counts = counts
	for i, st := range slots {
		p.slots[i].value = st.value
		p.slots[i].overflowAt = st.overflowAt
	}
	p.sdar = SampledAddr{Line: line, Valid: valid, source: source}
	p.interruptCycles = interruptCycles
	return nil
}

// SaveState appends the multiplexer's rotation position and accumulated
// observations to the encoder. The group schedule itself is configuration
// the restoring caller rebuilds.
func (m *Multiplexer) SaveState(e *snapbin.Enc) {
	e.U32(uint32(len(m.groups)))
	e.U32(uint32(m.active))
	e.U64(m.sliceLen)
	e.U64(m.sliceLeft)
	e.U32(uint32(NumEvents))
	for _, v := range m.observed {
		e.U64(v)
	}
	for _, v := range m.activeCyc {
		e.U64(v)
	}
	e.U64(m.totalCyc)
	e.U64(m.rotations)
}

// RestoreState overwrites the multiplexer's mutable state with a state
// saved by SaveState. The multiplexer must have been rebuilt with the
// same group schedule and slice length.
func (m *Multiplexer) RestoreState(d *snapbin.Dec) error {
	if n := d.U32(); d.Err() == nil && int(n) != len(m.groups) {
		return fmt.Errorf("pmu: snapshot multiplexer has %d groups, built with %d: %w", n, len(m.groups), errs.ErrBadConfig)
	}
	active := int(d.U32())
	sliceLen := d.U64()
	sliceLeft := d.U64()
	if n := int(d.U32()); d.Err() == nil && n != NumEvents {
		return fmt.Errorf("pmu: snapshot multiplexer has %d events, built with %d: %w", n, NumEvents, errs.ErrBadConfig)
	}
	var observed, activeCyc [NumEvents]uint64
	for i := range observed {
		observed[i] = d.U64()
	}
	for i := range activeCyc {
		activeCyc[i] = d.U64()
	}
	totalCyc := d.U64()
	rotations := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if sliceLen != m.sliceLen {
		return fmt.Errorf("pmu: snapshot multiplexer slice length %d, built with %d: %w", sliceLen, m.sliceLen, errs.ErrBadConfig)
	}
	if active >= len(m.groups) || sliceLeft > sliceLen || sliceLeft == 0 {
		return fmt.Errorf("pmu: snapshot multiplexer position out of range: %w", errs.ErrBadConfig)
	}
	m.active = active
	m.sliceLeft = sliceLeft
	m.observed = observed
	m.activeCyc = activeCyc
	m.totalCyc = totalCyc
	m.rotations = rotations
	return nil
}
