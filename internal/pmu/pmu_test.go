package pmu

import (
	"testing"
	"testing/quick"

	"threadcluster/internal/cache"
	"threadcluster/internal/memory"
)

func TestObserveAggregates(t *testing.T) {
	p := New()
	p.Observe(EvCycles, 100)
	p.Observe(EvCycles, 50)
	p.Observe(EvInstCompleted, 70)
	if got := p.Count(EvCycles); got != 150 {
		t.Errorf("cycles = %d, want 150", got)
	}
	if got := p.Count(EvInstCompleted); got != 70 {
		t.Errorf("insts = %d, want 70", got)
	}
	if got := p.Count(EvL1DMiss); got != 0 {
		t.Errorf("untouched event = %d, want 0", got)
	}
}

func TestProgramValidation(t *testing.T) {
	p := New()
	if err := p.Program(-1, EvCycles, 0, nil); err == nil {
		t.Error("negative slot should fail")
	}
	if err := p.Program(NumPhysicalCounters, EvCycles, 0, nil); err == nil {
		t.Error("slot past the end should fail")
	}
	if err := p.Program(0, Event(NumEvents), 0, nil); err == nil {
		t.Error("unknown event should fail")
	}
	if err := p.Program(0, EvCycles, 0, nil); err != nil {
		t.Errorf("valid Program failed: %v", err)
	}
}

func TestCounterOverflowFiresHandler(t *testing.T) {
	p := New()
	fires := 0
	err := p.Program(0, EvRemoteAccess, 10, func(p *PMU) uint64 {
		fires++
		return 7
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 35; i++ {
		p.Observe(EvRemoteAccess, 1)
	}
	if fires != 3 {
		t.Errorf("handler fired %d times, want 3 (35 events / threshold 10)", fires)
	}
	if got := p.DrainInterruptCycles(); got != 21 {
		t.Errorf("interrupt cycles = %d, want 21 (3 fires x 7 cycles)", got)
	}
	if got := p.DrainInterruptCycles(); got != 0 {
		t.Errorf("drain should clear: got %d", got)
	}
	if got := p.CounterValue(0); got != 5 {
		t.Errorf("counter value after overflows = %d, want 5", got)
	}
}

func TestSetOverflowThreshold(t *testing.T) {
	p := New()
	if err := p.SetOverflowThreshold(0, 5); err == nil {
		t.Error("retuning an unprogrammed slot should fail")
	}
	fires := 0
	_ = p.Program(0, EvRemoteAccess, 100, func(p *PMU) uint64 { fires++; return 0 })
	p.Observe(EvRemoteAccess, 60)
	if err := p.SetOverflowThreshold(0, 50); err != nil {
		t.Fatal(err)
	}
	// Value 60 already exceeds the new threshold at next event.
	p.Observe(EvRemoteAccess, 1)
	if fires != 1 {
		t.Errorf("handler fired %d times, want 1 after retuning", fires)
	}
}

func TestRecordMissUpdatesSDARAndEvents(t *testing.T) {
	p := New()
	l1 := memory.Addr(0x1000)
	l2 := memory.Addr(0x2000)
	p.RecordMiss(l1, cache.SrcL2)
	if s := p.ReadSDAR(); !s.Valid || s.Line != l1 {
		t.Fatalf("SDAR = %+v, want valid %#x", s, uint64(l1))
	}
	if p.Count(EvRemoteAccess) != 0 {
		t.Error("local miss must not count as remote access")
	}
	p.RecordMiss(l2, cache.SrcRemoteL2)
	if s := p.ReadSDAR(); s.Line != l2 {
		t.Fatalf("SDAR not overwritten by newer miss")
	}
	if p.Count(EvRemoteAccess) != 1 {
		t.Errorf("remote accesses = %d, want 1", p.Count(EvRemoteAccess))
	}
	if p.Count(EvL1DMiss) != 2 {
		t.Errorf("L1D misses = %d, want 2", p.Count(EvL1DMiss))
	}
	if p.Count(EvMissL2) != 1 || p.Count(EvMissRemoteL2) != 1 {
		t.Error("per-source miss events miscounted")
	}
}

// The Section 5.2.1 composition: program the overflow on EvRemoteAccess and
// read the SDAR from the handler. Because RecordMiss updates the register
// before counting, the handler must observe the remote line even when local
// misses interleave.
func TestSDARCompositionCapturesRemoteLine(t *testing.T) {
	p := New()
	var sampled []memory.Addr
	_ = p.Program(0, EvRemoteAccess, 2, func(p *PMU) uint64 {
		s := p.ReadSDAR()
		if s.Valid {
			sampled = append(sampled, s.Line)
		}
		return 0
	})
	remote := memory.Addr(0xBEEF00)
	for i := 0; i < 10; i++ {
		// Lots of local noise between remote misses.
		p.RecordMiss(memory.Addr(0x100*uint64(i)), cache.SrcMemory)
		p.RecordMiss(memory.Addr(0x200*uint64(i)), cache.SrcL2)
		p.RecordMiss(remote, cache.SrcRemoteL2)
	}
	if len(sampled) != 5 {
		t.Fatalf("sampled %d addresses, want 5 (10 remote / threshold 2)", len(sampled))
	}
	for _, a := range sampled {
		if memory.LineOf(a) != memory.LineOf(remote) {
			t.Errorf("sampled %#x, want the remote line %#x", uint64(a), uint64(remote))
		}
	}
}

func TestMissEventMapping(t *testing.T) {
	if _, ok := MissEvent(cache.SrcL1); ok {
		t.Error("L1 hit should not map to a miss event")
	}
	if ev, ok := MissEvent(cache.SrcRemoteL3); !ok || ev != EvMissRemoteL3 {
		t.Errorf("MissEvent(remote L3) = %v,%v", ev, ok)
	}
	if _, ok := StallEvent(cache.SrcL1); ok {
		t.Error("L1 hit should not map to a stall event")
	}
	if ev, ok := StallEvent(cache.SrcMemory); !ok || ev != EvStallMemory {
		t.Errorf("StallEvent(memory) = %v,%v", ev, ok)
	}
}

func TestUnprogramStopsCounting(t *testing.T) {
	p := New()
	fires := 0
	_ = p.Program(2, EvCycles, 5, func(p *PMU) uint64 { fires++; return 0 })
	p.Observe(EvCycles, 4)
	p.Unprogram(2)
	p.Observe(EvCycles, 100)
	if fires != 0 {
		t.Errorf("handler fired %d times after unprogram, want 0", fires)
	}
	// Aggregate counts still work.
	if p.Count(EvCycles) != 104 {
		t.Errorf("aggregate cycles = %d, want 104", p.Count(EvCycles))
	}
}

func TestResetClearsCountsKeepsProgramming(t *testing.T) {
	p := New()
	fires := 0
	_ = p.Program(0, EvCycles, 10, func(p *PMU) uint64 { fires++; return 0 })
	p.Observe(EvCycles, 9)
	p.Reset()
	if p.Count(EvCycles) != 0 {
		t.Error("Reset should clear aggregate counts")
	}
	p.Observe(EvCycles, 10)
	if fires != 1 {
		t.Errorf("programming should survive Reset; fires = %d, want 1", fires)
	}
}

// Property: for any observe sequence and threshold, the number of
// overflow firings equals total events divided by the threshold, and the
// residual counter value is total modulo threshold.
func TestOverflowCountProperty(t *testing.T) {
	f := func(amounts []uint8, thrRaw uint8) bool {
		// Keep each increment below the threshold so a lump can cross at
		// most one overflow boundary (as in the simulator's hot path,
		// where events arrive one retirement at a time).
		threshold := uint64(thrRaw%43) + 8
		p := New()
		fires := 0
		_ = p.Program(0, EvCycles, threshold, func(p *PMU) uint64 { fires++; return 0 })
		var total uint64
		for _, a := range amounts {
			n := uint64(a % 8)
			p.Observe(EvCycles, n)
			total += n
		}
		return uint64(fires) == total/threshold && p.CounterValue(0) == total%threshold
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEventStrings(t *testing.T) {
	if EvCycles.String() != "cycles" {
		t.Errorf("EvCycles.String() = %q", EvCycles.String())
	}
	if EvStallRemoteL2.String() != "stall-remote-l2" {
		t.Errorf("EvStallRemoteL2.String() = %q", EvStallRemoteL2.String())
	}
	if Event(999).String() == "" {
		t.Error("unknown event should still render")
	}
}
