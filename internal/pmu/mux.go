package pmu

import "fmt"

// Multiplexer implements fine-grained HPC multiplexing in the style of
// Azimi, Stumm and Wisniewski [2]: more logical events than physical
// counters are monitored by rotating groups of events through the physical
// counters on a fine time slice, and the full-run value of each event is
// estimated by scaling the observed count by the fraction of time its
// group was scheduled.
//
// The stall-breakdown monitor needs seven stall categories plus cycles and
// completion information — more than the six physical counters — so it is
// the natural client.
type Multiplexer struct {
	groups    [][]Event
	active    int
	sliceLen  uint64 // cycles per scheduling slice
	sliceLeft uint64

	observed  [NumEvents]uint64 // counts while the owning group was active
	activeCyc [NumEvents]uint64 // cycles during which the event was active
	totalCyc  uint64
	groupOf   [NumEvents]int //tclint:allow snapfields -- derived from groups at construction, never mutated
	rotations uint64         // completed group switches
}

// NewMultiplexer builds a multiplexer over the given event groups. Each
// group must fit in the physical counters; groups are rotated round-robin
// every sliceLen cycles.
func NewMultiplexer(groups [][]Event, sliceLen uint64) (*Multiplexer, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("pmu: multiplexer needs at least one group")
	}
	if sliceLen == 0 {
		return nil, fmt.Errorf("pmu: multiplexer slice length must be positive")
	}
	m := &Multiplexer{groups: groups, sliceLen: sliceLen, sliceLeft: sliceLen}
	for gi, g := range groups {
		if len(g) > NumPhysicalCounters {
			return nil, fmt.Errorf("pmu: group %d has %d events, only %d counters", gi, len(g), NumPhysicalCounters)
		}
		for _, ev := range g {
			if ev < 0 || int(ev) >= NumEvents {
				return nil, fmt.Errorf("pmu: group %d contains unknown event %d", gi, int(ev))
			}
			if m.groupOf[ev] != 0 {
				return nil, fmt.Errorf("pmu: event %v appears in two groups", ev)
			}
			m.groupOf[ev] = gi + 1
		}
	}
	return m, nil
}

// observe is called by the owning PMU for every event occurrence; only
// events in the currently scheduled group are recorded.
func (m *Multiplexer) observe(ev Event, n uint64) {
	if g := m.groupOf[ev]; g != 0 && g-1 == m.active {
		m.observed[ev] += n
	}
}

// Advance accounts for the passage of cycles and rotates groups at slice
// boundaries. The owning simulator calls it as simulated time advances.
func (m *Multiplexer) Advance(cycles uint64) {
	m.totalCyc += cycles
	for cycles > 0 {
		step := cycles
		if step > m.sliceLeft {
			step = m.sliceLeft
		}
		for _, ev := range m.groups[m.active] {
			m.activeCyc[ev] += step
		}
		m.sliceLeft -= step
		cycles -= step
		if m.sliceLeft == 0 {
			m.active = (m.active + 1) % len(m.groups)
			m.sliceLeft = m.sliceLen
			m.rotations++
		}
	}
}

// Rotations returns how many group switches (multiplexing rounds) have
// completed — the denominator of multiplexing-coverage metrics.
func (m *Multiplexer) Rotations() uint64 { return m.rotations }

// NumGroups returns how many event groups rotate through the counters.
func (m *Multiplexer) NumGroups() int { return len(m.groups) }

// Estimate returns the scaled full-run estimate for an event: the observed
// count divided by the fraction of cycles the event's group was scheduled.
// Events never scheduled (or not monitored) estimate to zero.
func (m *Multiplexer) Estimate(ev Event) uint64 {
	if m.groupOf[ev] == 0 || m.activeCyc[ev] == 0 {
		return 0
	}
	// observed * total/active, ordered to avoid overflow for typical runs.
	return uint64(float64(m.observed[ev]) * float64(m.totalCyc) / float64(m.activeCyc[ev]))
}

// Observed returns the raw (unscaled) count for an event.
func (m *Multiplexer) Observed(ev Event) uint64 { return m.observed[ev] }

// ActiveFraction returns the fraction of cycles the event's group has been
// scheduled so far (0 when never scheduled).
func (m *Multiplexer) ActiveFraction(ev Event) float64 {
	if m.totalCyc == 0 {
		return 0
	}
	return float64(m.activeCyc[ev]) / float64(m.totalCyc)
}

// Reset clears all accumulated observations but keeps the group schedule.
func (m *Multiplexer) Reset() {
	m.observed = [NumEvents]uint64{}
	m.activeCyc = [NumEvents]uint64{}
	m.totalCyc = 0
	m.active = 0
	m.sliceLeft = m.sliceLen
	m.rotations = 0
}
