package pmu

import (
	"math/rand"
	"testing"
)

func TestNewMultiplexerValidation(t *testing.T) {
	if _, err := NewMultiplexer(nil, 100); err == nil {
		t.Error("empty groups should fail")
	}
	if _, err := NewMultiplexer([][]Event{{EvCycles}}, 0); err == nil {
		t.Error("zero slice length should fail")
	}
	big := make([]Event, NumPhysicalCounters+1)
	for i := range big {
		big[i] = Event(i)
	}
	if _, err := NewMultiplexer([][]Event{big}, 100); err == nil {
		t.Error("group exceeding physical counters should fail")
	}
	if _, err := NewMultiplexer([][]Event{{EvCycles}, {EvCycles}}, 100); err == nil {
		t.Error("duplicate event across groups should fail")
	}
	if _, err := NewMultiplexer([][]Event{{Event(NumEvents)}}, 100); err == nil {
		t.Error("unknown event should fail")
	}
}

func TestMuxOnlyActiveGroupCounts(t *testing.T) {
	m, err := NewMultiplexer([][]Event{{EvCycles}, {EvL1DMiss}}, 100)
	if err != nil {
		t.Fatal(err)
	}
	p := New()
	p.AttachMultiplexer(m)
	// Group 0 active: EvCycles counted, EvL1DMiss not.
	p.Observe(EvCycles, 10)
	p.Observe(EvL1DMiss, 10)
	if m.Observed(EvCycles) != 10 || m.Observed(EvL1DMiss) != 0 {
		t.Fatalf("observed = %d/%d, want 10/0", m.Observed(EvCycles), m.Observed(EvL1DMiss))
	}
	m.Advance(100) // rotate to group 1
	p.Observe(EvCycles, 10)
	p.Observe(EvL1DMiss, 10)
	if m.Observed(EvCycles) != 10 || m.Observed(EvL1DMiss) != 10 {
		t.Fatalf("after rotation observed = %d/%d, want 10/10",
			m.Observed(EvCycles), m.Observed(EvL1DMiss))
	}
}

func TestMuxEstimateScaling(t *testing.T) {
	// Two groups, equal slices: each event active half the time; estimates
	// should be ~2x observed.
	m, _ := NewMultiplexer([][]Event{{EvCycles}, {EvL1DMiss}}, 50)
	p := New()
	p.AttachMultiplexer(m)
	for i := 0; i < 100; i++ {
		p.Observe(EvCycles, 1)
		p.Observe(EvL1DMiss, 1)
		m.Advance(1)
	}
	est := m.Estimate(EvCycles)
	if est < 80 || est > 120 {
		t.Errorf("estimate = %d, want ~100 (2x the ~50 observed)", est)
	}
	frac := m.ActiveFraction(EvCycles)
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("active fraction = %.2f, want ~0.5", frac)
	}
}

func TestMuxEstimateUnmonitored(t *testing.T) {
	m, _ := NewMultiplexer([][]Event{{EvCycles}}, 50)
	if m.Estimate(EvL1DMiss) != 0 {
		t.Error("unmonitored event should estimate to 0")
	}
	if m.Estimate(EvCycles) != 0 {
		t.Error("event with no active time should estimate to 0")
	}
}

func TestMuxAdvanceAcrossManySlices(t *testing.T) {
	m, _ := NewMultiplexer([][]Event{{EvCycles}, {EvL1DMiss}, {EvInstCompleted}}, 10)
	m.Advance(1000) // 100 slices: each group active ~1/3 of the time
	for _, ev := range []Event{EvCycles, EvL1DMiss, EvInstCompleted} {
		f := m.ActiveFraction(ev)
		if f < 0.30 || f > 0.37 {
			t.Errorf("%v active fraction = %.3f, want ~1/3", ev, f)
		}
	}
}

func TestMuxReset(t *testing.T) {
	m, _ := NewMultiplexer([][]Event{{EvCycles}}, 10)
	p := New()
	p.AttachMultiplexer(m)
	p.Observe(EvCycles, 5)
	m.Advance(25)
	m.Reset()
	if m.Observed(EvCycles) != 0 || m.Estimate(EvCycles) != 0 || m.ActiveFraction(EvCycles) != 0 {
		t.Error("Reset should clear observations")
	}
}

// Property-style: for a steady event stream, the multiplexed estimate
// converges to the true count within sampling error regardless of slice
// length.
func TestMuxEstimateConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, sliceLen := range []uint64{7, 64, 500} {
		m, _ := NewMultiplexer([][]Event{
			{EvCycles, EvInstCompleted},
			{EvL1DMiss, EvMissL2},
			{EvStallRemoteL2, EvStallRemoteL3},
		}, sliceLen)
		p := New()
		p.AttachMultiplexer(m)
		var trueCount uint64
		for i := 0; i < 30000; i++ {
			n := uint64(rng.Intn(3))
			p.Observe(EvL1DMiss, n)
			trueCount += n
			m.Advance(1)
		}
		est := float64(m.Estimate(EvL1DMiss))
		if est < 0.85*float64(trueCount) || est > 1.15*float64(trueCount) {
			t.Errorf("sliceLen=%d: estimate %v vs true %v outside 15%%", sliceLen, est, trueCount)
		}
	}
}

func TestBreakdownFromPMU(t *testing.T) {
	p := New()
	p.Observe(EvCycles, 1000)
	p.Observe(EvCompletionCycles, 400)
	p.Observe(EvInstCompleted, 400)
	p.Observe(EvStallRemoteL2, 150)
	p.Observe(EvStallRemoteL3, 50)
	p.Observe(EvStallMemory, 200)
	p.Observe(EvStallOther, 200)
	b := BreakdownFrom(p)
	if b.CPI() != 2.5 {
		t.Errorf("CPI = %v, want 2.5", b.CPI())
	}
	if b.RemoteStalls() != 200 {
		t.Errorf("remote stalls = %d, want 200", b.RemoteStalls())
	}
	if got := b.RemoteFraction(); got != 0.2 {
		t.Errorf("remote fraction = %v, want 0.2", got)
	}
	if b.StallTotal() != 600 {
		t.Errorf("stall total = %d, want 600", b.StallTotal())
	}
	if b.Fraction(EvStallMemory) != 0.2 {
		t.Errorf("memory stall fraction = %v, want 0.2", b.Fraction(EvStallMemory))
	}
}

func TestBreakdownAdd(t *testing.T) {
	p1, p2 := New(), New()
	p1.Observe(EvCycles, 100)
	p1.Observe(EvStallRemoteL2, 10)
	p2.Observe(EvCycles, 300)
	p2.Observe(EvStallRemoteL2, 30)
	var b Breakdown
	b.Add(BreakdownFrom(p1))
	b.Add(BreakdownFrom(p2))
	if b.Cycles != 400 || b.RemoteStalls() != 40 {
		t.Errorf("aggregate = %d cycles / %d remote, want 400/40", b.Cycles, b.RemoteStalls())
	}
}

func TestBreakdownZeroSafe(t *testing.T) {
	var b Breakdown
	if b.CPI() != 0 || b.RemoteFraction() != 0 || b.Fraction(EvStallOther) != 0 {
		t.Error("zero breakdown should produce zero ratios, not NaN")
	}
	_ = b.String() // must not panic
}

func TestBreakdownFromMux(t *testing.T) {
	m, _ := NewMultiplexer([][]Event{
		{EvCycles, EvCompletionCycles, EvInstCompleted},
		{EvStallRemoteL2, EvStallRemoteL3, EvStallMemory},
	}, 10)
	p := New()
	p.AttachMultiplexer(m)
	for i := 0; i < 1000; i++ {
		p.Observe(EvCycles, 10)
		p.Observe(EvCompletionCycles, 4)
		p.Observe(EvInstCompleted, 4)
		p.Observe(EvStallRemoteL2, 2)
		m.Advance(10)
	}
	b := BreakdownFromMux(m)
	// True remote fraction is 0.2; multiplexed estimate should be close.
	if f := b.RemoteFraction(); f < 0.15 || f > 0.25 {
		t.Errorf("multiplexed remote fraction = %.3f, want ~0.2", f)
	}
}

func TestSDARSourceForValidation(t *testing.T) {
	p := New()
	p.RecordMiss(0x1000, 3) // cache.SrcRemoteL2 == 3
	s := p.ReadSDAR()
	if got := s.SDARSourceForValidation(); !got.Remote() {
		t.Errorf("validation source = %v, want remote", got)
	}
}
