package pmu

import (
	"fmt"
	"sort"
	"strings"
)

// Breakdown is a CPI stack in the style of Figure 3: total cycles divided
// into completion cycles (cycles in which at least one instruction
// retired) and stall cycles attributed to their causes, with data-cache
// stalls further broken down by the source that eventually satisfied the
// miss.
type Breakdown struct {
	Cycles     uint64
	Completion uint64
	Insts      uint64
	// Stalls maps each stall-category event to its cycle count.
	Stalls map[Event]uint64
}

// BreakdownFrom assembles a Breakdown from a PMU's exact counts.
func BreakdownFrom(p *PMU) Breakdown {
	b := Breakdown{
		Cycles:     p.Count(EvCycles),
		Completion: p.Count(EvCompletionCycles),
		Insts:      p.Count(EvInstCompleted),
		Stalls:     make(map[Event]uint64, len(StallEvents())),
	}
	for _, ev := range StallEvents() {
		b.Stalls[ev] = p.Count(ev)
	}
	return b
}

// BreakdownFromMux assembles a Breakdown from multiplexed estimates — this
// is what the online engine sees, complete with multiplexing noise.
func BreakdownFromMux(m *Multiplexer) Breakdown {
	b := Breakdown{
		Cycles:     m.Estimate(EvCycles),
		Completion: m.Estimate(EvCompletionCycles),
		Insts:      m.Estimate(EvInstCompleted),
		Stalls:     make(map[Event]uint64, len(StallEvents())),
	}
	for _, ev := range StallEvents() {
		b.Stalls[ev] = m.Estimate(ev)
	}
	return b
}

// Add accumulates another breakdown (e.g. across the machine's CPUs).
func (b *Breakdown) Add(o Breakdown) {
	b.Cycles += o.Cycles
	b.Completion += o.Completion
	b.Insts += o.Insts
	if b.Stalls == nil {
		b.Stalls = make(map[Event]uint64, len(StallEvents()))
	}
	for ev, v := range o.Stalls {
		b.Stalls[ev] += v
	}
}

// CPI returns average cycles per instruction (0 when no instructions ran).
func (b Breakdown) CPI() float64 {
	if b.Insts == 0 {
		return 0
	}
	return float64(b.Cycles) / float64(b.Insts)
}

// StallTotal returns the sum of all categorized stall cycles.
func (b Breakdown) StallTotal() uint64 {
	var t uint64
	for _, v := range b.Stalls {
		t += v
	}
	return t
}

// RemoteStalls returns stall cycles caused by remote cache accesses
// (remote L2 + remote L3) — the quantity the activation threshold and
// Figures 6's reductions are defined over.
func (b Breakdown) RemoteStalls() uint64 {
	return b.Stalls[EvStallRemoteL2] + b.Stalls[EvStallRemoteL3]
}

// RemoteMemoryStalls returns stall cycles on remote-memory (NUMA) fills.
func (b Breakdown) RemoteMemoryStalls() uint64 {
	return b.Stalls[EvStallRemoteMemory]
}

// RemoteMemoryFraction returns remote-memory stall cycles as a fraction
// of all cycles.
func (b Breakdown) RemoteMemoryFraction() float64 {
	if b.Cycles == 0 {
		return 0
	}
	return float64(b.RemoteMemoryStalls()) / float64(b.Cycles)
}

// RemoteFraction returns remote-access stall cycles as a fraction of all
// cycles (0 when no cycles elapsed).
func (b Breakdown) RemoteFraction() float64 {
	if b.Cycles == 0 {
		return 0
	}
	return float64(b.RemoteStalls()) / float64(b.Cycles)
}

// Fraction returns one stall category as a fraction of all cycles.
func (b Breakdown) Fraction(ev Event) float64 {
	if b.Cycles == 0 {
		return 0
	}
	return float64(b.Stalls[ev]) / float64(b.Cycles)
}

// String renders the breakdown as a Figure 3-style table, categories
// sorted by descending share.
func (b Breakdown) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cycles=%d insts=%d CPI=%.3f\n", b.Cycles, b.Insts, b.CPI())
	if b.Cycles == 0 {
		return sb.String()
	}
	fmt.Fprintf(&sb, "  %-18s %6.2f%%\n", "completion", 100*float64(b.Completion)/float64(b.Cycles))
	evs := StallEvents()
	sort.Slice(evs, func(i, j int) bool { return b.Stalls[evs[i]] > b.Stalls[evs[j]] })
	for _, ev := range evs {
		fmt.Fprintf(&sb, "  %-18s %6.2f%%\n", ev.String(), 100*b.Fraction(ev))
	}
	return sb.String()
}
