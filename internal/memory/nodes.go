package memory

import "fmt"

// NodeMap assigns every address a home NUMA node. On the machines the
// paper targets, memory controllers are per chip, so node indices
// coincide with chip indices. Section 8 sketches extending thread
// clustering to NUMA by also sampling misses satisfied from remote
// memory; the cache hierarchy consults a NodeMap to classify memory
// fills as local or remote.
type NodeMap interface {
	// NodeOf returns the home node of the address, in [0, Nodes()).
	NodeOf(a Addr) int
	// Nodes returns the node count.
	Nodes() int
}

// InterleavedNodes models the default policy of striping physical memory
// across nodes at a fine granularity (here: per page group). Interleaving
// gives no thread a home-field advantage — the layout NUMA-blind
// allocation produces.
type InterleavedNodes struct {
	// N is the node count.
	N int
	// Granularity is the stripe size in bytes (default 4096).
	Granularity uint64
}

// NodeOf implements NodeMap.
func (in InterleavedNodes) NodeOf(a Addr) int {
	g := in.Granularity
	if g == 0 {
		g = 4096
	}
	return int((uint64(a) / g) % uint64(in.N))
}

// Nodes implements NodeMap.
func (in InterleavedNodes) Nodes() int { return in.N }

// StripedNodes assigns huge contiguous address stripes to nodes:
// addresses in [k*Stripe, (k+1)*Stripe) live on node k%N. Combined with
// one arena per stripe this models node-bound allocation (numactl
// membind, or first-touch by threads pinned to a node): everything a
// component ever allocates stays on its home node.
type StripedNodes struct {
	// N is the node count.
	N int
	// Stripe is the bytes per stripe; must be large enough that each
	// component's arena fits inside one stripe.
	Stripe uint64
}

// NodeOf implements NodeMap.
func (sn StripedNodes) NodeOf(a Addr) int {
	return int((uint64(a) / sn.Stripe) % uint64(sn.N))
}

// Nodes implements NodeMap.
func (sn StripedNodes) Nodes() int { return sn.N }

// NodeArenas builds one arena per node under a StripedNodes map: arena i
// allocates only addresses homed on node i.
func NodeArenas(sn StripedNodes) ([]*Arena, error) {
	if sn.N <= 0 {
		return nil, fmt.Errorf("memory: node count must be positive, got %d", sn.N)
	}
	if sn.Stripe < LineSize {
		return nil, fmt.Errorf("memory: stripe %d smaller than a line", sn.Stripe)
	}
	arenas := make([]*Arena, sn.N)
	for i := range arenas {
		base := Addr(uint64(i)*sn.Stripe + uint64(DefaultArenaBase))
		limit := Addr(uint64(i+1) * sn.Stripe)
		a, err := NewArena(base, limit)
		if err != nil {
			return nil, err
		}
		arenas[i] = a
	}
	return arenas, nil
}
