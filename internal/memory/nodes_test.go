package memory

import (
	"testing"
	"testing/quick"
)

func TestInterleavedNodes(t *testing.T) {
	in := InterleavedNodes{N: 4, Granularity: 4096}
	if in.Nodes() != 4 {
		t.Errorf("Nodes = %d, want 4", in.Nodes())
	}
	if in.NodeOf(0) != 0 || in.NodeOf(4096) != 1 || in.NodeOf(4*4096) != 0 {
		t.Error("interleaving wrong")
	}
	// Default granularity.
	d := InterleavedNodes{N: 2}
	if d.NodeOf(4095) != 0 || d.NodeOf(4096) != 1 {
		t.Error("default granularity should be 4096")
	}
}

func TestInterleavedNodesInRange(t *testing.T) {
	f := func(a uint64, nRaw uint8) bool {
		n := int(nRaw%8) + 1
		node := InterleavedNodes{N: n}.NodeOf(Addr(a))
		return node >= 0 && node < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStripedNodes(t *testing.T) {
	sn := StripedNodes{N: 4, Stripe: 1 << 32}
	if sn.NodeOf(0) != 0 {
		t.Error("first stripe should be node 0")
	}
	if sn.NodeOf(Addr(1<<32)) != 1 || sn.NodeOf(Addr(3<<32)) != 3 {
		t.Error("stripe mapping wrong")
	}
	if sn.NodeOf(Addr(4<<32)) != 0 {
		t.Error("stripes should wrap modulo N")
	}
}

func TestNodeArenas(t *testing.T) {
	sn := StripedNodes{N: 3, Stripe: 1 << 30}
	arenas, err := NodeArenas(sn)
	if err != nil {
		t.Fatal(err)
	}
	if len(arenas) != 3 {
		t.Fatalf("arenas = %d, want 3", len(arenas))
	}
	for i, a := range arenas {
		r := a.MustAlloc(4096, 0)
		if sn.NodeOf(r.Base) != i {
			t.Errorf("arena %d allocated %#x on node %d", i, uint64(r.Base), sn.NodeOf(r.Base))
		}
		if sn.NodeOf(r.End()-1) != i {
			t.Errorf("arena %d allocation spills across stripes", i)
		}
	}
}

func TestNodeArenasValidation(t *testing.T) {
	if _, err := NodeArenas(StripedNodes{N: 0, Stripe: 1 << 30}); err == nil {
		t.Error("zero nodes should fail")
	}
	if _, err := NodeArenas(StripedNodes{N: 2, Stripe: 64}); err == nil {
		t.Error("sub-line stripe should fail")
	}
}

// Property: allocations from distinct node arenas never overlap and stay
// on their node.
func TestNodeArenasDisjoint(t *testing.T) {
	sn := StripedNodes{N: 4, Stripe: 1 << 28}
	arenas, err := NodeArenas(sn)
	if err != nil {
		t.Fatal(err)
	}
	var regions []Region
	for node, a := range arenas {
		for j := 0; j < 20; j++ {
			r := a.MustAlloc(uint64(512+j*128), 0)
			if sn.NodeOf(r.Base) != node {
				t.Fatalf("allocation off its node")
			}
			for _, prev := range regions {
				if r.Overlaps(prev) {
					t.Fatalf("cross-arena overlap")
				}
			}
			regions = append(regions, r)
		}
	}
}
