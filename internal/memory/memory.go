// Package memory models the simulated 64-bit virtual address space that
// workload threads access and that the cache hierarchy caches.
//
// The unit of sharing throughout the system is the L2 cache line: the paper
// uses the Power5's 128-byte line as the shMap region size because it is
// "the largest region size with which no false-positives can occur"
// (Section 4.3.1). All address arithmetic here is in terms of that line
// size.
package memory

import "fmt"

// Addr is a simulated virtual address.
type Addr uint64

// LineSize is the cache-line size in bytes (Power5 L2: 128 bytes).
const LineSize = 128

// LineShift is log2(LineSize).
const LineShift = 7

// LineOf returns the address of the cache line containing a.
func LineOf(a Addr) Addr { return a &^ (LineSize - 1) }

// LineIndex returns the line number of a (address divided by line size).
func LineIndex(a Addr) uint64 { return uint64(a) >> LineShift }

// SameLine reports whether two addresses fall on the same cache line.
func SameLine(a, b Addr) bool { return LineOf(a) == LineOf(b) }

// Region is a contiguous range of the simulated address space.
type Region struct {
	Base Addr
	Size uint64
}

// Contains reports whether a falls inside the region.
func (r Region) Contains(a Addr) bool {
	return a >= r.Base && uint64(a-r.Base) < r.Size
}

// End returns the first address past the region.
func (r Region) End() Addr { return r.Base + Addr(r.Size) }

// Lines returns the number of cache lines the region spans, assuming the
// base is line-aligned.
func (r Region) Lines() uint64 { return (r.Size + LineSize - 1) / LineSize }

// Overlaps reports whether two regions share any byte.
func (r Region) Overlaps(o Region) bool {
	return r.Base < o.End() && o.Base < r.End()
}

// At returns the address at byte offset off into the region. It panics if
// off is out of bounds; regions are fixed-size allocations and indexing
// past the end is a programming error in the workload generator.
func (r Region) At(off uint64) Addr {
	if off >= r.Size {
		panic(fmt.Sprintf("memory: offset %d out of bounds for region of %d bytes", off, r.Size))
	}
	return r.Base + Addr(off)
}

func (r Region) String() string {
	return fmt.Sprintf("[%#x,%#x) %d bytes", uint64(r.Base), uint64(r.End()), r.Size)
}

// Arena is a bump allocator over the simulated address space. Workloads use
// it to lay out their private chunks, shared scoreboards, B-tree nodes,
// database tables and so on, exactly as a process heap would. Allocation
// never reuses addresses, which keeps every allocated region distinct for
// the lifetime of a simulation — the property the shMap filter relies on.
//
// An arena is, in effect, a machine's physical address space: the cache
// hierarchy is physically indexed and has no address-space identifiers.
// Every workload installed on one machine must therefore allocate from
// the same arena (or from arenas with disjoint ranges, as NodeArenas
// builds); two default arenas would alias the same lines and manufacture
// phantom sharing between unrelated workloads.
//
// Arena is not safe for concurrent use; simulations are single-goroutine.
type Arena struct {
	base  Addr
	next  Addr
	limit Addr
}

// DefaultArenaBase is where fresh arenas start allocating. It is nonzero so
// that the zero Addr can never alias a real allocation.
const DefaultArenaBase Addr = 0x10000

// DefaultArenaLimit bounds the address space of a default arena (1 TiB),
// far larger than any simulated workload needs.
const DefaultArenaLimit Addr = 1 << 40

// NewArena returns an arena allocating from base up to limit.
func NewArena(base, limit Addr) (*Arena, error) {
	if base >= limit {
		return nil, fmt.Errorf("memory: arena base %#x must precede limit %#x", uint64(base), uint64(limit))
	}
	return &Arena{base: base, next: base, limit: limit}, nil
}

// NewDefaultArena returns an arena spanning the default address range.
func NewDefaultArena() *Arena {
	a, err := NewArena(DefaultArenaBase, DefaultArenaLimit)
	if err != nil {
		panic(err) // unreachable: constants are valid
	}
	return a
}

// Alloc reserves size bytes aligned to align (which must be a power of
// two; 0 means line-aligned) and returns the region. It returns an error
// when the arena is exhausted.
func (a *Arena) Alloc(size uint64, align uint64) (Region, error) {
	if size == 0 {
		return Region{}, fmt.Errorf("memory: zero-size allocation")
	}
	if align == 0 {
		align = LineSize
	}
	if align&(align-1) != 0 {
		return Region{}, fmt.Errorf("memory: alignment %d is not a power of two", align)
	}
	base := (uint64(a.next) + align - 1) &^ (align - 1)
	if base+size > uint64(a.limit) || base+size < base {
		return Region{}, fmt.Errorf("memory: arena exhausted allocating %d bytes", size)
	}
	a.next = Addr(base + size)
	return Region{Base: Addr(base), Size: size}, nil
}

// MustAlloc is Alloc for workload setup code where exhaustion means the
// experiment configuration itself is broken.
func (a *Arena) MustAlloc(size uint64, align uint64) Region {
	r, err := a.Alloc(size, align)
	if err != nil {
		panic(err)
	}
	return r
}

// AllocLines reserves n cache lines, line-aligned.
func (a *Arena) AllocLines(n uint64) (Region, error) {
	return a.Alloc(n*LineSize, LineSize)
}

// Used returns the number of bytes handed out so far (including alignment
// padding).
func (a *Arena) Used() uint64 { return uint64(a.next) - uint64(a.base) }
