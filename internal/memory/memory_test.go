package memory

import (
	"testing"
	"testing/quick"
)

func TestLineOf(t *testing.T) {
	tests := []struct {
		addr Addr
		want Addr
	}{
		{0, 0},
		{1, 0},
		{127, 0},
		{128, 128},
		{129, 128},
		{0x10037, 0x10000},
	}
	for _, tc := range tests {
		if got := LineOf(tc.addr); got != tc.want {
			t.Errorf("LineOf(%#x) = %#x, want %#x", uint64(tc.addr), uint64(got), uint64(tc.want))
		}
	}
}

func TestSameLine(t *testing.T) {
	if !SameLine(0x1000, 0x107f) {
		t.Error("0x1000 and 0x107f should share a line")
	}
	if SameLine(0x107f, 0x1080) {
		t.Error("0x107f and 0x1080 should not share a line")
	}
}

func TestLineIndexConsistentWithLineOf(t *testing.T) {
	f := func(a uint64) bool {
		addr := Addr(a)
		return LineIndex(addr) == uint64(LineOf(addr))/LineSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegionContains(t *testing.T) {
	r := Region{Base: 0x1000, Size: 256}
	if !r.Contains(0x1000) || !r.Contains(0x10ff) {
		t.Error("region should contain its endpoints-inclusive range")
	}
	if r.Contains(0xfff) || r.Contains(0x1100) {
		t.Error("region should not contain addresses outside it")
	}
	if r.End() != 0x1100 {
		t.Errorf("End = %#x, want 0x1100", uint64(r.End()))
	}
}

func TestRegionLines(t *testing.T) {
	if got := (Region{Base: 0, Size: 128}).Lines(); got != 1 {
		t.Errorf("128-byte region spans %d lines, want 1", got)
	}
	if got := (Region{Base: 0, Size: 129}).Lines(); got != 2 {
		t.Errorf("129-byte region spans %d lines, want 2", got)
	}
	if got := (Region{Base: 0, Size: 4096}).Lines(); got != 32 {
		t.Errorf("4096-byte region spans %d lines, want 32", got)
	}
}

func TestRegionAtPanicsOutOfBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("At past the end should panic")
		}
	}()
	r := Region{Base: 0x1000, Size: 16}
	_ = r.At(16)
}

func TestRegionOverlaps(t *testing.T) {
	a := Region{Base: 0x1000, Size: 0x100}
	b := Region{Base: 0x10ff, Size: 1}
	c := Region{Base: 0x1100, Size: 0x100}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a and b should overlap")
	}
	if a.Overlaps(c) || c.Overlaps(a) {
		t.Error("a and c should not overlap")
	}
}

func TestArenaAllocAligned(t *testing.T) {
	a := NewDefaultArena()
	r, err := a.Alloc(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(r.Base)%LineSize != 0 {
		t.Errorf("default alignment should be line-aligned, got %#x", uint64(r.Base))
	}
	r2, err := a.Alloc(100, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(r2.Base)%4096 != 0 {
		t.Errorf("4096 alignment violated: %#x", uint64(r2.Base))
	}
}

func TestArenaRejectsBadRequests(t *testing.T) {
	a := NewDefaultArena()
	if _, err := a.Alloc(0, 0); err == nil {
		t.Error("zero-size alloc should fail")
	}
	if _, err := a.Alloc(16, 3); err == nil {
		t.Error("non-power-of-two alignment should fail")
	}
}

func TestArenaExhaustion(t *testing.T) {
	a, err := NewArena(0x1000, 0x2000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(0x800, LineSize); err != nil {
		t.Fatalf("first alloc should fit: %v", err)
	}
	if _, err := a.Alloc(0x1000, LineSize); err == nil {
		t.Error("alloc past the limit should fail")
	}
}

func TestNewArenaRejectsInvertedRange(t *testing.T) {
	if _, err := NewArena(0x2000, 0x1000); err == nil {
		t.Error("base >= limit should fail")
	}
}

// Property: allocations never overlap and respect requested alignment.
func TestArenaAllocationsDisjoint(t *testing.T) {
	f := func(sizes []uint16) bool {
		a := NewDefaultArena()
		var regions []Region
		for _, s := range sizes {
			size := uint64(s%4096) + 1
			r, err := a.Alloc(size, 0)
			if err != nil {
				return false
			}
			for _, prev := range regions {
				if r.Overlaps(prev) {
					return false
				}
			}
			regions = append(regions, r)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Used grows monotonically and is at least the sum of sizes.
func TestArenaUsedMonotone(t *testing.T) {
	a := NewDefaultArena()
	var prev, sum uint64
	for i := 0; i < 100; i++ {
		size := uint64(i%512 + 1)
		a.MustAlloc(size, 0)
		sum += size
		used := a.Used()
		if used < prev {
			t.Fatalf("Used went backwards: %d -> %d", prev, used)
		}
		prev = used
	}
	if prev < sum {
		t.Errorf("Used = %d, want >= %d (sum of sizes)", prev, sum)
	}
}
