// Package metrics is the simulator's structured observability layer: a
// lock-cheap registry of named counters, gauges and histograms with
// labeled series. Components obtain a metric handle once (a registry
// lookup under a read lock) and then update it with a single atomic
// operation per event, so instrumentation is safe to leave on in hot
// paths and under concurrent sweep runs.
//
// Registries also accept collector functions (CounterFunc / GaugeFunc):
// closures read at snapshot time. Components that already maintain
// plain counters — the cache hierarchy's per-source totals, the
// scheduler's migration count — register a closure instead of double
// counting, which keeps their single-goroutine hot paths untouched.
//
// A Snapshot is an immutable, deterministically ordered view of every
// series; snapshots subtract (Delta), accumulate (Merge) and export to
// JSON and CSV, so one snapshot answers "what did this run do" and a
// merged snapshot answers the same for a whole parameter sweep.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is one series' label set ("source" -> "remote-L2"). A nil map
// is the unlabeled series of a metric.
type Labels map[string]string

// canonical renders labels as a stable "k=v,k=v" string (keys sorted),
// used as the registry key suffix and for deterministic export order.
func (l Labels) canonical() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(l[k])
	}
	return sb.String()
}

// clone copies the labels so a handle cannot be mutated through the
// caller's map after registration.
func (l Labels) clone() Labels {
	if len(l) == 0 {
		return nil
	}
	out := make(Labels, len(l))
	for k, v := range l {
		out[k] = v
	}
	return out
}

// Counter is a monotonically increasing uint64. Safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable float64. Safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return floatFromBits(g.bits.Load()) }

// Histogram counts uint64 observations into fixed buckets. Bounds are
// inclusive upper edges; observations above the last bound land in the
// implicit +Inf bucket. Safe for concurrent use.
type Histogram struct {
	bounds []uint64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64
	n      atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Bounds returns the configured bucket upper edges.
func (h *Histogram) Bounds() []uint64 { return append([]uint64(nil), h.bounds...) }

// BucketCounts returns per-bucket counts; the extra final element is the
// overflow (+Inf) bucket.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// RestoreState overwrites the histogram's observations with a previously
// captured (BucketCounts, Sum, Count) triple — the machine-snapshot
// restore path. counts must have len(Bounds())+1 elements. Not safe for
// use concurrently with Observe; restore happens on a quiesced machine.
func (h *Histogram) RestoreState(counts []uint64, sum, n uint64) error {
	if len(counts) != len(h.counts) {
		return fmt.Errorf("metrics: histogram restore with %d buckets, want %d", len(counts), len(h.counts))
	}
	for i, c := range counts {
		h.counts[i].Store(c)
	}
	h.sum.Store(sum)
	h.n.Store(n)
	return nil
}

// CounterFunc is a collector returning a monotonic count at read time.
type CounterFunc func() uint64

// GaugeFunc is a collector returning an instantaneous value at read time.
type GaugeFunc func() float64

// series is one registered metric instance.
type series struct {
	name   string
	labels Labels
	kind   Kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	cfunc   CounterFunc
	gfunc   GaugeFunc
}

// Registry holds every registered series. Lookups (get-or-create) take a
// mutex; the returned handles update lock-free. Safe for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	series map[string]*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series)}
}

func seriesKey(name string, labels Labels) string {
	lc := labels.canonical()
	if lc == "" {
		return name
	}
	return name + "{" + lc + "}"
}

// lookup returns the existing series for (name, labels), or registers one
// built by mk. Registering the same key with a different kind panics:
// that is a programming error, like redeclaring a variable.
func (r *Registry) lookup(name string, labels Labels, kind Kind, mk func() *series) *series {
	key := seriesKey(name, labels)
	r.mu.RLock()
	s, ok := r.series[key]
	r.mu.RUnlock()
	if ok {
		if s.kind != kind {
			panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", key, s.kind, kind))
		}
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[key]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", key, s.kind, kind))
		}
		return s
	}
	s = mk()
	r.series[key] = s
	return s
}

// Counter returns (registering if needed) the counter series.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	s := r.lookup(name, labels, KindCounter, func() *series {
		return &series{name: name, labels: labels.clone(), kind: KindCounter, counter: &Counter{}}
	})
	return s.counter
}

// Gauge returns (registering if needed) the gauge series.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	s := r.lookup(name, labels, KindGauge, func() *series {
		return &series{name: name, labels: labels.clone(), kind: KindGauge, gauge: &Gauge{}}
	})
	return s.gauge
}

// Histogram returns (registering if needed) the histogram series. The
// bounds of an existing series win; they must be strictly increasing.
func (r *Registry) Histogram(name string, labels Labels, bounds []uint64) *Histogram {
	s := r.lookup(name, labels, KindHistogram, func() *series {
		b := append([]uint64(nil), bounds...)
		for i := 1; i < len(b); i++ {
			if b[i] <= b[i-1] {
				panic(fmt.Sprintf("metrics: histogram %s bounds not increasing: %v", name, bounds))
			}
		}
		h := &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
		return &series{name: name, labels: labels.clone(), kind: KindHistogram, hist: h}
	})
	return s.hist
}

// RegisterCounterFunc registers a collector read at snapshot time as a
// counter. Re-registering the same key replaces the collector.
func (r *Registry) RegisterCounterFunc(name string, labels Labels, f CounterFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.series[seriesKey(name, labels)] = &series{name: name, labels: labels.clone(), kind: KindCounter, cfunc: f}
}

// RegisterGaugeFunc registers a collector read at snapshot time as a
// gauge. Re-registering the same key replaces the collector.
func (r *Registry) RegisterGaugeFunc(name string, labels Labels, f GaugeFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.series[seriesKey(name, labels)] = &series{name: name, labels: labels.clone(), kind: KindGauge, gfunc: f}
}

// Len returns the number of registered series.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.series)
}
