package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops", nil)
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("temp", nil)
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Errorf("gauge = %v, want 2.5", got)
	}
	h := r.Histogram("depth", nil, []uint64{1, 4, 16})
	for _, v := range []uint64{0, 2, 5, 100} {
		h.Observe(v)
	}
	s := r.Snapshot()
	sample, ok := s.Get("depth", nil)
	if !ok {
		t.Fatal("histogram sample missing")
	}
	if sample.Count != 4 || sample.Sum != 107 {
		t.Errorf("histogram count=%d sum=%d, want 4/107", sample.Count, sample.Sum)
	}
	// Buckets: <=1: {0}, <=4: {2}, <=16: {5}, +Inf: {100}.
	want := []uint64{1, 1, 1, 1}
	for i, b := range sample.Buckets {
		if b != want[i] {
			t.Errorf("bucket[%d] = %d, want %d", i, b, want[i])
		}
	}
}

func TestSameSeriesSameHandle(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x", Labels{"k": "v"})
	b := r.Counter("x", Labels{"k": "v"})
	if a != b {
		t.Error("same name+labels should return the same handle")
	}
	c := r.Counter("x", Labels{"k": "w"})
	if a == c {
		t.Error("different labels should return distinct handles")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", nil)
	defer func() {
		if recover() == nil {
			t.Error("registering m as gauge after counter should panic")
		}
	}()
	r.Gauge("m", nil)
}

func TestCollectorFuncs(t *testing.T) {
	r := NewRegistry()
	n := uint64(7)
	r.RegisterCounterFunc("raw", nil, func() uint64 { return n })
	r.RegisterGaugeFunc("frac", nil, func() float64 { return 0.25 })
	s := r.Snapshot()
	if got := s.Counter("raw", nil); got != 7 {
		t.Errorf("counter func = %d, want 7", got)
	}
	if got := s.Gauge("frac", nil); got != 0.25 {
		t.Errorf("gauge func = %v, want 0.25", got)
	}
	n = 9
	if got := r.Snapshot().Counter("raw", nil); got != 9 {
		t.Errorf("counter func after update = %d, want 9", got)
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz", nil).Inc()
	r.Counter("aa", Labels{"b": "2", "a": "1"}).Inc()
	r.Counter("aa", Labels{"a": "1"}).Inc()
	s1 := r.Snapshot()
	s2 := r.Snapshot()
	var b1, b2 bytes.Buffer
	if err := s1.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := s2.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("snapshots of an unchanged registry should serialize identically")
	}
	for i := 1; i < len(s1.Samples); i++ {
		if s1.Samples[i-1].key() >= s1.Samples[i].key() {
			t.Errorf("samples out of order at %d: %q >= %q", i, s1.Samples[i-1].key(), s1.Samples[i].key())
		}
	}
}

func TestDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops", nil)
	g := r.Gauge("level", nil)
	c.Add(10)
	g.Set(1)
	before := r.Snapshot()
	c.Add(5)
	g.Set(3)
	d := r.Snapshot().Delta(before)
	if got := d.Counter("ops", nil); got != 5 {
		t.Errorf("delta counter = %d, want 5", got)
	}
	if got := d.Gauge("level", nil); got != 3 {
		t.Errorf("delta gauge = %v, want 3 (gauges keep current value)", got)
	}
}

func TestMerge(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("ops", nil).Add(3)
	r1.Histogram("d", nil, []uint64{10}).Observe(4)
	r2 := NewRegistry()
	r2.Counter("ops", nil).Add(4)
	r2.Counter("only2", nil).Inc()
	r2.Histogram("d", nil, []uint64{10}).Observe(40)
	m := MergeAll([]Snapshot{r1.Snapshot(), r2.Snapshot()})
	if got := m.Counter("ops", nil); got != 7 {
		t.Errorf("merged ops = %d, want 7", got)
	}
	if got := m.Counter("only2", nil); got != 1 {
		t.Errorf("merged only2 = %d, want 1", got)
	}
	d, ok := m.Get("d", nil)
	if !ok || d.Count != 2 || d.Sum != 44 {
		t.Errorf("merged histogram = %+v, want count 2 sum 44", d)
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops", Labels{"kind": "read"}).Add(2)
	var b strings.Builder
	if err := r.Snapshot().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "name,labels,kind,count,value,sum\n") {
		t.Errorf("csv missing header: %q", out)
	}
	if !strings.Contains(out, "ops,kind=read,counter,2") {
		t.Errorf("csv missing row: %q", out)
	}
}

// TestConcurrentAccess exercises the registry from many goroutines; run
// with -race to verify the synchronization story.
func TestConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const iters = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			labels := Labels{"worker": string(rune('a' + g))}
			for i := 0; i < iters; i++ {
				r.Counter("shared", nil).Inc()
				r.Counter("per", labels).Inc()
				r.Gauge("level", labels).Set(float64(i))
				r.Histogram("lat", nil, []uint64{8, 64}).Observe(uint64(i))
				if i%128 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counter("shared", nil); got != goroutines*iters {
		t.Errorf("shared = %d, want %d", got, goroutines*iters)
	}
	h, ok := s.Get("lat", nil)
	if !ok || h.Count != goroutines*iters {
		t.Errorf("histogram count = %d, want %d", h.Count, goroutines*iters)
	}
}
