package metrics

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// Kind classifies a series.
type Kind int

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is an instantaneous value.
	KindGauge
	// KindHistogram is a bucketed distribution.
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// MarshalJSON renders the kind as its string name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON parses the string name back into a Kind, so snapshots
// round-trip through their JSON wire form (e.g. the job-server result
// payloads internal/client decodes).
func (k *Kind) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return fmt.Errorf("metrics: parsing kind: %w", err)
	}
	switch name {
	case "counter":
		*k = KindCounter
	case "gauge":
		*k = KindGauge
	case "histogram":
		*k = KindHistogram
	default:
		return fmt.Errorf("metrics: unknown kind %q", name)
	}
	return nil
}

// Sample is one series' value at snapshot time.
type Sample struct {
	// Name is the metric name.
	Name string `json:"name"`
	// Labels is the series' label set (nil for the unlabeled series).
	Labels Labels `json:"labels,omitempty"`
	// Kind classifies the sample.
	Kind Kind `json:"kind"`
	// Count is the counter value, or the histogram observation count.
	Count uint64 `json:"count,omitempty"`
	// Value is the gauge value.
	Value float64 `json:"value,omitempty"`
	// Sum is the histogram's sum of observations.
	Sum uint64 `json:"sum,omitempty"`
	// Bounds and Buckets carry the histogram shape; Buckets has one extra
	// trailing element for the overflow (+Inf) bucket.
	Bounds  []uint64 `json:"bounds,omitempty"`
	Buckets []uint64 `json:"buckets,omitempty"`
}

// key is the sample's deterministic sort/match key.
func (s Sample) key() string { return seriesKey(s.Name, s.Labels) }

// Snapshot is an immutable, deterministically ordered view of a
// registry's series (sorted by name, then canonical labels).
type Snapshot struct {
	Samples []Sample `json:"samples"`
}

// Snapshot reads every series. Collector functions run at this point;
// atomic series are loaded. The result is sorted and detached from the
// registry.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	keys := make([]string, 0, len(r.series))
	for k := range r.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	list := make([]*series, 0, len(keys))
	for _, k := range keys {
		list = append(list, r.series[k])
	}
	r.mu.RUnlock()

	samples := make([]Sample, 0, len(list))
	for _, s := range list {
		smp := Sample{Name: s.name, Labels: s.labels.clone(), Kind: s.kind}
		switch {
		case s.counter != nil:
			smp.Count = s.counter.Value()
		case s.cfunc != nil:
			smp.Count = s.cfunc()
		case s.gauge != nil:
			smp.Value = s.gauge.Value()
		case s.gfunc != nil:
			smp.Value = s.gfunc()
		case s.hist != nil:
			smp.Count = s.hist.Count()
			smp.Sum = s.hist.Sum()
			smp.Bounds = s.hist.Bounds()
			smp.Buckets = s.hist.BucketCounts()
		}
		samples = append(samples, smp)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].key() < samples[j].key() })
	return Snapshot{Samples: samples}
}

// Get returns the sample for (name, labels) and whether it exists.
func (s Snapshot) Get(name string, labels Labels) (Sample, bool) {
	want := seriesKey(name, labels)
	i := sort.Search(len(s.Samples), func(i int) bool { return s.Samples[i].key() >= want })
	if i < len(s.Samples) && s.Samples[i].key() == want {
		return s.Samples[i], true
	}
	return Sample{}, false
}

// Counter returns the count of a counter sample (0 when absent).
func (s Snapshot) Counter(name string, labels Labels) uint64 {
	smp, ok := s.Get(name, labels)
	if !ok {
		return 0
	}
	return smp.Count
}

// Gauge returns the value of a gauge sample (0 when absent).
func (s Snapshot) Gauge(name string, labels Labels) float64 {
	smp, ok := s.Get(name, labels)
	if !ok {
		return 0
	}
	return smp.Value
}

// Delta returns this snapshot minus prev: counters and histograms
// subtract series-wise (series absent from prev pass through unchanged),
// gauges keep their current value. Use it to isolate a measured interval
// from a warm-up prefix.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	prevByKey := make(map[string]Sample, len(prev.Samples))
	for _, p := range prev.Samples {
		prevByKey[p.key()] = p
	}
	out := Snapshot{Samples: make([]Sample, 0, len(s.Samples))}
	for _, cur := range s.Samples {
		d := cur.cloneSample()
		if p, ok := prevByKey[cur.key()]; ok && p.Kind == cur.Kind {
			switch cur.Kind {
			case KindCounter:
				d.Count = sub(cur.Count, p.Count)
			case KindHistogram:
				d.Count = sub(cur.Count, p.Count)
				d.Sum = sub(cur.Sum, p.Sum)
				for i := range d.Buckets {
					if i < len(p.Buckets) {
						d.Buckets[i] = sub(d.Buckets[i], p.Buckets[i])
					}
				}
			}
		}
		out.Samples = append(out.Samples, d)
	}
	return out
}

// Merge returns the series-wise accumulation of the two snapshots:
// counters, histogram counts and gauge values add (a merged gauge is a
// total across machines — divide by run count for a mean). Series present
// in only one snapshot pass through.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	byKey := make(map[string]Sample, len(s.Samples))
	order := make([]string, 0, len(s.Samples)+len(o.Samples))
	for _, smp := range s.Samples {
		byKey[smp.key()] = smp.cloneSample()
		order = append(order, smp.key())
	}
	for _, smp := range o.Samples {
		k := smp.key()
		acc, ok := byKey[k]
		if !ok {
			byKey[k] = smp.cloneSample()
			order = append(order, k)
			continue
		}
		if acc.Kind != smp.Kind {
			continue // conflicting kinds: keep the first
		}
		switch smp.Kind {
		case KindCounter:
			acc.Count += smp.Count
		case KindGauge:
			acc.Value += smp.Value
		case KindHistogram:
			acc.Count += smp.Count
			acc.Sum += smp.Sum
			for i := range smp.Buckets {
				if i < len(acc.Buckets) {
					acc.Buckets[i] += smp.Buckets[i]
				}
			}
		}
		byKey[k] = acc
	}
	sort.Strings(order)
	out := Snapshot{Samples: make([]Sample, 0, len(order))}
	for _, k := range order {
		out.Samples = append(out.Samples, byKey[k])
	}
	return out
}

// MergeAll folds a slice of snapshots into one.
func MergeAll(snaps []Snapshot) Snapshot {
	var out Snapshot
	for i, s := range snaps {
		if i == 0 {
			out = Snapshot{Samples: append([]Sample(nil), s.Samples...)}
			continue
		}
		out = out.Merge(s)
	}
	return out
}

func (s Sample) cloneSample() Sample {
	c := s
	c.Labels = s.Labels.clone()
	c.Bounds = append([]uint64(nil), s.Bounds...)
	c.Buckets = append([]uint64(nil), s.Buckets...)
	return c
}

func sub(a, b uint64) uint64 {
	if b > a {
		return 0
	}
	return a - b
}

// WriteJSON emits the snapshot as indented JSON. Output is byte-stable
// for equal snapshots: samples are sorted and label maps marshal with
// sorted keys.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteCSV emits one row per series: name, labels, kind, count, value,
// sum. Histogram buckets are elided — use JSON for full distributions.
func (s Snapshot) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"name", "labels", "kind", "count", "value", "sum"}); err != nil {
		return err
	}
	for _, smp := range s.Samples {
		row := []string{
			smp.Name,
			smp.Labels.canonical(),
			smp.Kind.String(),
			strconv.FormatUint(smp.Count, 10),
			strconv.FormatFloat(smp.Value, 'g', -1, 64),
			strconv.FormatUint(smp.Sum, 10),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
