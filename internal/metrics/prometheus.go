package metrics

import (
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` line per metric family followed by
// its samples, histograms expanded into cumulative `_bucket{le=...}`
// series plus `_sum` and `_count`. Metric names are sanitized to the
// Prometheus charset ([a-zA-Z0-9_:], leading digits prefixed with '_')
// and label values are escaped per the format's rules, so any registry —
// the simulator's or the server's — scrapes cleanly.
//
// Output is byte-stable for equal snapshots: samples are already in the
// snapshot's deterministic order, and families are emitted in first-seen
// (therefore sorted) order. That makes the endpoint diffable, the same
// property the JSON and CSV exports have.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	typed := make(map[string]bool)
	for _, smp := range s.Samples {
		name := promName(smp.Name)
		if !typed[name] {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, promType(smp.Kind)); err != nil {
				return err
			}
			typed[name] = true
		}
		if err := writePromSample(w, name, smp); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus takes a snapshot of the registry and renders it; the
// offline equivalent of scraping GET /metrics.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}

// WritePrometheusWith renders the registry followed by extra snapshots,
// producing one exposition with multiple sections: the tcsimd /metrics
// endpoint appends its accumulated sim totals to the server registry,
// and tcfleet appends the fleet job's merged sim snapshot to the
// coordinator registry (live workers, leased/stolen/retried shards).
// Callers keep families disjoint across sections (server_*/fleet_*
// versus sim_*/pmu_*/...), so the combined text stays a valid scrape.
func (r *Registry) WritePrometheusWith(w io.Writer, extra ...Snapshot) error {
	if err := r.WritePrometheus(w); err != nil {
		return err
	}
	for _, s := range extra {
		if err := s.WritePrometheus(w); err != nil {
			return err
		}
	}
	return nil
}

func writePromSample(w io.Writer, name string, smp Sample) error {
	switch smp.Kind {
	case KindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, promLabels(smp.Labels, "", 0), smp.Count)
		return err
	case KindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, promLabels(smp.Labels, "", 0), promFloat(smp.Value))
		return err
	case KindHistogram:
		// Exposition buckets are cumulative; the snapshot's are per-bucket.
		var cum uint64
		for i, b := range smp.Bounds {
			if i < len(smp.Buckets) {
				cum += smp.Buckets[i]
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(smp.Labels, "le", float64(b)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabelsInf(smp.Labels), smp.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", name, promLabels(smp.Labels, "", 0), smp.Sum); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(smp.Labels, "", 0), smp.Count)
		return err
	}
	return nil
}

// promType maps a metrics.Kind to its exposition-format type name.
func promType(k Kind) string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// promName maps an arbitrary series name onto the Prometheus metric-name
// charset. The registry's own names are already snake_case; this guards
// against future names with dots or dashes rather than rewriting them.
func promName(name string) string {
	var sb strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			sb.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				sb.WriteByte('_')
			}
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "_"
	}
	return sb.String()
}

// promLabels renders a label set, optionally with one extra (le) pair
// appended; extraKey == "" means no extra. Keys come out sorted because
// Labels.canonical sorts, which keeps the exposition byte-stable.
func promLabels(l Labels, extraKey string, extraVal float64) string {
	if len(l) == 0 && extraKey == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	for _, kv := range labelPairs(l) {
		if !first {
			sb.WriteByte(',')
		}
		first = false
		sb.WriteString(promName(kv[0]))
		sb.WriteString(`="`)
		sb.WriteString(promEscape(kv[1]))
		sb.WriteByte('"')
	}
	if extraKey != "" {
		if !first {
			sb.WriteByte(',')
		}
		sb.WriteString(extraKey)
		sb.WriteString(`="`)
		sb.WriteString(promFloat(extraVal))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// promLabelsInf is promLabels with le="+Inf" (which promFloat cannot
// produce from a float argument).
func promLabelsInf(l Labels) string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	for _, kv := range labelPairs(l) {
		if !first {
			sb.WriteByte(',')
		}
		first = false
		sb.WriteString(promName(kv[0]))
		sb.WriteString(`="`)
		sb.WriteString(promEscape(kv[1]))
		sb.WriteByte('"')
	}
	if !first {
		sb.WriteByte(',')
	}
	sb.WriteString(`le="+Inf"}`)
	return sb.String()
}

// labelPairs returns the label set as [key, value] pairs in the same
// sorted-key order Labels.canonical uses, without round-tripping through
// the canonical string (label values may legally contain ',' or '=').
func labelPairs(l Labels) [][2]string {
	if len(l) == 0 {
		return nil
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][2]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, [2]string{k, l[k]})
	}
	return out
}

// promEscape escapes a label value per the exposition format: backslash,
// double-quote and newline.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// promFloat renders a float the way Prometheus expects (shortest
// round-trip representation; integral values without an exponent).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promSampleRx matches one exposition sample line: a valid metric name,
// an optional well-formed label block, and a numeric value.
var promSampleRx = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_:][a-zA-Z0-9_:]*="(\\.|[^"\\])*"(,[a-zA-Z_:][a-zA-Z0-9_:]*="(\\.|[^"\\])*")*\})? (NaN|[-+]?[0-9.eE+-]+|\+Inf|-Inf)$`)

// promTypeRx matches a `# TYPE` comment line.
var promTypeRx = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram|summary|untyped)$`)

// CheckPrometheusText validates text line-by-line against the exposition
// format grammar (sample lines, `# TYPE`/`# HELP` comments, blanks). The
// exposition tests and the server's /metrics test share this check.
func CheckPrometheusText(text string) error {
	for i, line := range strings.Split(text, "\n") {
		switch {
		case line == "":
		case strings.HasPrefix(line, "# HELP "):
		case strings.HasPrefix(line, "#"):
			if !promTypeRx.MatchString(line) {
				return fmt.Errorf("metrics: exposition line %d is not a valid comment: %q", i+1, line)
			}
		default:
			if !promSampleRx.MatchString(line) {
				return fmt.Errorf("metrics: exposition line %d is not a valid sample: %q", i+1, line)
			}
		}
	}
	return nil
}
