package metrics

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestWritePrometheusExact(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total", Labels{"state": "done"}).Add(3)
	r.Counter("jobs_total", Labels{"state": "failed"}).Add(1)
	r.Gauge("queue_depth", nil).Set(2.5)
	h := r.Histogram("latency_ms", Labels{"route": "submit"}, []uint64{1, 5, 10})
	h.Observe(0)
	h.Observe(4)
	h.Observe(7)
	h.Observe(100)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# TYPE jobs_total counter`,
		`jobs_total{state="done"} 3`,
		`jobs_total{state="failed"} 1`,
		`# TYPE latency_ms histogram`,
		`latency_ms_bucket{route="submit",le="1"} 1`,
		`latency_ms_bucket{route="submit",le="5"} 2`,
		`latency_ms_bucket{route="submit",le="10"} 3`,
		`latency_ms_bucket{route="submit",le="+Inf"} 4`,
		`latency_ms_sum{route="submit"} 111`,
		`latency_ms_count{route="submit"} 4`,
		`# TYPE queue_depth gauge`,
		`queue_depth 2.5`,
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestWritePrometheusParses validates every emitted line against the
// text-format grammar, the same check the server's /metrics test reuses.
func TestWritePrometheusParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", nil).Add(7)
	r.Counter("b_total", Labels{"quote": `say "hi"`, "path": `C:\tmp`, "nl": "a\nb"}).Inc()
	r.Gauge("odd.name-with-1digits", Labels{"k": "v"}).Set(1)
	r.Histogram("h", nil, []uint64{2}).Observe(3)
	r.RegisterGaugeFunc("fn_gauge", nil, func() float64 { return 42 })
	r.RegisterCounterFunc("fn_counter", nil, func() uint64 { return 9 })

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := CheckPrometheusText(buf.String()); err != nil {
		t.Fatalf("%v\nfull output:\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "odd_name_with_1digits") {
		t.Errorf("name not sanitized:\n%s", buf.String())
	}
}

func TestWritePrometheusHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d", nil, []uint64{1, 2, 3})
	for _, v := range []uint64{0, 1, 2, 2, 3, 9} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	wantCounts := map[string]uint64{`le="1"`: 2, `le="2"`: 4, `le="3"`: 5, `le="+Inf"`: 6}
	for le, want := range wantCounts {
		found := false
		for _, line := range strings.Split(buf.String(), "\n") {
			if strings.HasPrefix(line, "d_bucket{"+le+"}") {
				found = true
				f := strings.Fields(line)
				got, err := strconv.ParseUint(f[len(f)-1], 10, 64)
				if err != nil || got != want {
					t.Errorf("%s: got %q, want %d", le, line, want)
				}
			}
		}
		if !found {
			t.Errorf("missing bucket %s in:\n%s", le, buf.String())
		}
	}
}
