package workloads

import (
	"testing"

	"threadcluster/internal/memory"
)

func TestPhaseChangeGeneratorSwitchesBoards(t *testing.T) {
	arena := memory.NewDefaultArena()
	cfg := DefaultSyntheticConfig()
	cfg.SharedRatio = 1.0 // every ref hits the scoreboard: easy to observe
	spec, err := NewSyntheticWithPhaseChange(arena, cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	w := spec.Threads[0].Gen.(*syntheticWorker)
	first := w.scoreboard
	second := w.secondBoard
	if first.Overlaps(second) {
		t.Fatal("phase boards must be distinct regions")
	}
	// First 9 refs in the first board; from ref 10 on, the second.
	for i := 0; i < 9; i++ {
		ref := w.Next()
		if !first.Contains(ref.Addr) {
			t.Fatalf("ref %d at %#x outside first board %v", i, uint64(ref.Addr), first)
		}
	}
	for i := 0; i < 9; i++ {
		ref := w.Next()
		if !second.Contains(ref.Addr) {
			t.Fatalf("post-shift ref %d at %#x outside second board %v", i, uint64(ref.Addr), second)
		}
	}
}

func TestPhaseChangeValidation(t *testing.T) {
	arena := memory.NewDefaultArena()
	if _, err := NewSyntheticWithPhaseChange(arena, DefaultSyntheticConfig(), 0); err == nil {
		t.Error("zero shift point should fail")
	}
}

func TestSecondPhaseTruthRegroups(t *testing.T) {
	cfg := DefaultSyntheticConfig() // 4 boards x 4 threads
	truth := SecondPhaseTruth(cfg)
	if len(truth) != 16 {
		t.Fatalf("truth size = %d, want 16", len(truth))
	}
	// Second phase groups by block: threads 0-3 together.
	if truth[0] != truth[1] || truth[0] != truth[3] {
		t.Error("threads 0-3 should share a second-phase group")
	}
	if truth[3] == truth[4] {
		t.Error("threads 3 and 4 should be in different second-phase groups")
	}
	// And it must differ from the first phase (i % 4).
	same := 0
	for i := 0; i < 16; i++ {
		if truth[i] == i%4 {
			same++
		}
	}
	if same == 16 {
		t.Error("second phase must regroup threads, not repeat the first phase")
	}
}

func TestNewJBBOnNodes(t *testing.T) {
	sn := memory.StripedNodes{N: 2, Stripe: 1 << 32}
	arenas, err := memory.NodeArenas(sn)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultJBBConfig()
	cfg.InitialKeys = 200
	spec, err := NewJBBOnNodes(arenas, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Threads) != 16 {
		t.Fatalf("threads = %d, want 16", len(spec.Threads))
	}
	// Warehouse i's workers touch node i%2 memory: sample some refs from
	// each thread and check the tree/meta/heap addresses' homes.
	for _, th := range spec.Threads {
		wantNode := th.Partition % 2
		for i := 0; i < 50; i++ {
			ref := th.Gen.Next()
			node := sn.NodeOf(ref.Addr)
			// Global state comes from arenas[0]; everything else must be
			// on the warehouse's node.
			if node != wantNode && node != 0 {
				t.Fatalf("thread %d (warehouse %d) touched node %d", th.ID, th.Partition, node)
			}
		}
	}
	if _, err := NewJBBOnNodes(nil, cfg); err == nil {
		t.Error("no arenas should fail")
	}
}

func TestRenumber(t *testing.T) {
	spec, err := NewSynthetic(memory.NewDefaultArena(), DefaultSyntheticConfig())
	if err != nil {
		t.Fatal(err)
	}
	spec.Renumber(500)
	for i, th := range spec.Threads {
		if int(th.ID) != 500+i {
			t.Fatalf("thread %d id = %d, want %d", i, th.ID, 500+i)
		}
	}
	hint := spec.PartitionHint()
	if hint(spec.Threads[0].ID) != spec.Threads[0].Partition {
		t.Error("partition hint must follow renumbered ids")
	}
	truth := spec.Truth()
	if truth[500] != spec.Threads[0].Partition {
		t.Error("truth must be keyed by renumbered ids")
	}
}
