package workloads

import (
	"fmt"
	"math/rand"

	"threadcluster/internal/memory"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
)

// Spec is a fully built workload: the threads to schedule plus the
// ground-truth partition used by the hand-optimized placement policy and
// by cluster-quality validation (the automatic engine never sees it).
type Spec struct {
	// Name identifies the workload ("microbenchmark", "volano", ...).
	Name string
	// Threads are ready to be added to a sim.Machine.
	Threads []*sim.Thread
	// NumPartitions is the number of application-level data partitions
	// (scoreboards, rooms, warehouses, database instances).
	NumPartitions int
}

// PartitionHint adapts the spec's ground truth to the scheduler's
// hand-optimized policy interface.
func (s *Spec) PartitionHint() func(sched.ThreadID) int {
	byID := make(map[sched.ThreadID]int, len(s.Threads))
	for _, t := range s.Threads {
		byID[t.ID] = t.Partition
	}
	return func(id sched.ThreadID) int { return byID[id] }
}

// Truth returns the ground-truth partition map keyed the way the
// clustering validators expect.
func (s *Spec) Truth() map[int]int {
	truth := make(map[int]int, len(s.Threads))
	for _, t := range s.Threads {
		truth[int(t.ID)] = t.Partition
	}
	return truth
}

// Renumber shifts every thread id by offset, so multiple specs can share
// one machine without id collisions (multiprogrammed experiments).
func (s *Spec) Renumber(offset int) {
	for _, t := range s.Threads {
		t.ID += sched.ThreadID(offset)
	}
}

// Install adds every thread to the machine and, when the machine runs the
// hand-optimized policy, wires the partition hint first.
func (s *Spec) Install(m *sim.Machine) error {
	if m.Scheduler().Policy() == sched.PolicyHandOptimized {
		m.Scheduler().SetPartitionHint(s.PartitionHint())
	}
	for _, t := range s.Threads {
		if err := m.AddThread(t); err != nil {
			return fmt.Errorf("workloads: installing %s: %w", s.Name, err)
		}
	}
	return nil
}

// pick returns a uniformly random line-aligned address inside the region.
func pick(rng *rand.Rand, r memory.Region) memory.Addr {
	lines := int(r.Size / memory.LineSize)
	return r.At(uint64(rng.Intn(lines)) * memory.LineSize)
}

// pickHot returns an address from the first hotLines lines of the region
// with probability hotProb, else a uniform pick — a cheap two-tier
// approximation of the skewed accesses real servers exhibit.
func pickHot(rng *rand.Rand, r memory.Region, hotLines int, hotProb float64) memory.Addr {
	if rng.Float64() < hotProb {
		return r.At(uint64(rng.Intn(hotLines)) * memory.LineSize)
	}
	return pick(rng, r)
}

// traceGenerator replays queued address traces (e.g. a B-tree operation's
// touched nodes) as MemRefs, asking a refill function for the next
// operation when the queue drains. The refill's last reference carries the
// op-completion marker.
type traceGenerator struct {
	queue  []sim.MemRef
	refill func() []sim.MemRef
}

func (g *traceGenerator) Next() sim.MemRef {
	for len(g.queue) == 0 {
		g.queue = g.refill()
	}
	ref := g.queue[0]
	g.queue = g.queue[1:]
	return ref
}

// stallNoise returns small random branch/other stall cycles so the CPI
// stack has the non-dcache components visible in Figure 3.
func stallNoise(rng *rand.Rand, branchMax, otherMax uint64) (branch, other uint64) {
	if branchMax > 0 {
		branch = uint64(rng.Int63n(int64(branchMax + 1)))
	}
	if otherMax > 0 {
		other = uint64(rng.Int63n(int64(otherMax + 1)))
	}
	return branch, other
}
