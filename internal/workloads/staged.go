package workloads

import (
	"fmt"

	"threadcluster/internal/errs"
	"threadcluster/internal/memory"
	"threadcluster/internal/rng"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
	"threadcluster/internal/snapbin"
)

// StagedConfig parameterizes a SEDA-style staged server (Welsh et al.,
// cited in the paper's related work): requests flow through a pipeline of
// stages, each stage served by its own thread pool, with shared queues
// between adjacent stages.
//
// The sharing topology is a *chain* rather than the disjoint partitions
// of the other workloads: stage i's threads share queue i with stage i-1
// and queue i+1 with stage i+1. On a multi-chip machine the best
// placement is a minimum cut of the chain — contiguous stage groups per
// chip — which makes this the interesting adversarial input for a
// clustering heuristic built around disjoint sharing groups.
type StagedConfig struct {
	// Stages is the pipeline depth (e.g. parse -> lookup -> execute ->
	// respond).
	Stages int
	// ThreadsPerStage is each stage's thread pool size.
	ThreadsPerStage int
	// QueueBytes sizes each inter-stage queue (small and write-hot).
	QueueBytes uint64
	// StageStateBytes sizes each stage's internal shared state (routing
	// tables, caches), shared only within the stage.
	StageStateBytes uint64
	// ScratchBytes is each thread's private working memory.
	ScratchBytes uint64
	// Seed drives the generators.
	Seed int64
}

// DefaultStagedConfig is a 4-stage pipeline with 4 threads per stage.
func DefaultStagedConfig() StagedConfig {
	return StagedConfig{
		Stages:          4,
		ThreadsPerStage: 4,
		QueueBytes:      16 * memory.LineSize,
		StageStateBytes: 16 * memory.LineSize,
		ScratchBytes:    64 << 10,
		Seed:            1,
	}
}

// stagedWorker processes events: dequeue from the inbound queue, consult
// stage state, work on private scratch, enqueue to the outbound queue.
type stagedWorker struct {
	rng      *rng.Rand
	inbound  memory.Region
	outbound memory.Region
	state    memory.Region
	scratch  memory.Region
	step     int
}

// Confined marks the generator parallel-safe: a stage worker owns its
// RNG and step counter and reads only immutable Region descriptors.
func (w *stagedWorker) Confined() {}

// SnapshotState returns the worker's cursor: RNG position and step.
func (w *stagedWorker) SnapshotState() []byte {
	e := &snapbin.Enc{}
	st := w.rng.State()
	e.I64(st.Seed)
	e.U64(st.Draws)
	e.I64(int64(w.step))
	return e.Bytes()
}

// RestoreState overwrites the worker's cursor with a SnapshotState blob
// from an identically constructed worker.
func (w *stagedWorker) RestoreState(state []byte) error {
	d := snapbin.NewDec(state)
	seed := d.I64()
	draws := d.U64()
	step := d.I64()
	if err := d.Close(); err != nil {
		return fmt.Errorf("workloads: staged cursor: %w", err)
	}
	w.rng.Restore(rng.State{Seed: seed, Draws: draws})
	w.step = int(step)
	return nil
}

func (w *stagedWorker) Next() sim.MemRef {
	w.step++
	branch, other := stallNoise(w.rng.Rand, 2, 4)
	base := sim.MemRef{Insts: 10, BranchStall: branch, OtherStall: other}
	switch w.step % 6 {
	case 0: // dequeue: read + head-pointer update on the inbound queue
		base.Addr = pickHot(w.rng.Rand, w.inbound, 2, 0.6)
		base.Write = w.rng.Intn(2) == 0
	case 1: // enqueue: write into the outbound queue
		base.Addr = pickHot(w.rng.Rand, w.outbound, 2, 0.6)
		base.Write = true
		base.Ops = 1 // one event processed
	case 2: // stage-internal shared state, read-mostly
		base.Addr = pick(w.rng.Rand, w.state)
		base.Write = w.rng.Intn(8) == 0
	default: // private scratch work
		base.Addr = pick(w.rng.Rand, w.scratch)
		base.Write = w.rng.Intn(3) == 0
	}
	return base
}

// NewStaged builds the staged-server workload. Thread IDs interleave
// stages (thread i works stage i % Stages) so naive placement scatters
// every stage; the ground-truth partition is the stage.
func NewStaged(arena *memory.Arena, cfg StagedConfig) (*Spec, error) {
	if cfg.Stages <= 0 || cfg.ThreadsPerStage <= 0 {
		return nil, fmt.Errorf("workloads: staged needs positive stages and threads, got %+v: %w", cfg, errs.ErrBadConfig)
	}
	// Queues 0..Stages: queue[i] feeds stage i; queue[Stages] is the
	// output sink.
	queues := make([]memory.Region, cfg.Stages+1)
	var err error
	for i := range queues {
		if queues[i], err = arena.Alloc(cfg.QueueBytes, memory.LineSize); err != nil {
			return nil, err
		}
	}
	states := make([]memory.Region, cfg.Stages)
	for i := range states {
		if states[i], err = arena.Alloc(cfg.StageStateBytes, memory.LineSize); err != nil {
			return nil, err
		}
	}
	spec := &Spec{Name: "staged", NumPartitions: cfg.Stages}
	total := cfg.Stages * cfg.ThreadsPerStage
	for i := 0; i < total; i++ {
		stage := i % cfg.Stages
		scratch, err := arena.Alloc(cfg.ScratchBytes, memory.LineSize)
		if err != nil {
			return nil, err
		}
		w := &stagedWorker{
			rng:      rng.New(cfg.Seed*86243 + int64(i)),
			inbound:  queues[stage],
			outbound: queues[stage+1],
			state:    states[stage],
			scratch:  scratch,
		}
		spec.Threads = append(spec.Threads, &sim.Thread{
			ID:        sched.ThreadID(i),
			Gen:       w,
			Partition: stage,
		})
	}
	return spec, nil
}
