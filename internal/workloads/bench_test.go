package workloads

import (
	"math/rand"
	"testing"

	"threadcluster/internal/memory"
)

func BenchmarkBTreeInsert(b *testing.B) {
	tr, err := NewBTree(memory.NewDefaultArena())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Insert(uint64(rng.Int63n(1<<40)) + 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBTreeLookup(b *testing.B) {
	tr, _ := NewBTree(memory.NewDefaultArena())
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100_000; i++ {
		_, _ = tr.Insert(uint64(rng.Int63n(1<<30)) + 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(uint64(i%(1<<30)) + 1)
	}
}

func BenchmarkSyntheticGeneratorNext(b *testing.B) {
	spec, err := NewSynthetic(memory.NewDefaultArena(), DefaultSyntheticConfig())
	if err != nil {
		b.Fatal(err)
	}
	g := spec.Threads[0].Gen
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

func BenchmarkJBBGeneratorNext(b *testing.B) {
	spec, err := NewJBB(memory.NewDefaultArena(), DefaultJBBConfig())
	if err != nil {
		b.Fatal(err)
	}
	g := spec.Threads[0].Gen
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

func BenchmarkRubisGeneratorNext(b *testing.B) {
	spec, err := NewRubis(memory.NewDefaultArena(), DefaultRubisConfig())
	if err != nil {
		b.Fatal(err)
	}
	g := spec.Threads[0].Gen
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}
