// Package workloads reproduces the paper's four evaluation workloads as
// memory-reference generators over the simulated address space:
//
//   - the synthetic scoreboard microbenchmark of Section 5.3.1;
//   - VolanoMark, an instant-messaging chat server with two designated
//     threads per connection (Section 5.3.2);
//   - SPECjbb2000, warehouses stored as B-tree variants with a fixed set
//     of threads per warehouse (Section 5.3.3);
//   - RUBiS, an online-auction OLTP database with two instances inside
//     one server process (Section 5.3.4).
//
// What matters for thread clustering is the *pattern* of accesses — which
// threads read and write which cache lines — so each generator allocates
// its data structures (scoreboards, room buffers, B-trees, tables) from a
// shared arena and emits the address streams those structures would
// produce. The SPECjbb and RUBiS workloads walk a real B-tree implemented
// over the simulated address space rather than a hand-waved distribution.
package workloads

import (
	"fmt"

	"threadcluster/internal/errs"
	"threadcluster/internal/memory"
)

// BTreeOrder is the fan-out of the simulated B-tree: each node holds up to
// BTreeOrder-1 keys and BTreeOrder children.
const BTreeOrder = 16

// btreeNodeBytes is the simulated footprint of one node: key array plus
// child pointers, rounded to cache lines. 4 lines = 512 bytes.
const btreeNodeBytes = 4 * memory.LineSize

// BTree is a B-tree laid out in the simulated address space. It stores
// keys only (the workloads don't need values) and reports, for every
// operation, the exact sequence of simulated addresses the operation
// touched, so a workload generator can replay them as memory references.
//
// This is the warehouse structure of SPECjbb ("stored internally as a
// B-tree variant", Section 5.3.3) and the index structure of the RUBiS
// database tables.
type BTree struct {
	arena *memory.Arena
	root  *btreeNode
	size  int
	nodes int
}

type btreeNode struct {
	region   memory.Region
	keys     []uint64
	children []*btreeNode
	leaf     bool
}

// NewBTree creates an empty tree allocating nodes from the arena.
func NewBTree(arena *memory.Arena) (*BTree, error) {
	if arena == nil {
		return nil, fmt.Errorf("workloads: btree needs an arena: %w", errs.ErrBadConfig)
	}
	t := &BTree{arena: arena}
	root, err := t.newNode(true)
	if err != nil {
		return nil, err
	}
	t.root = root
	return t, nil
}

func (t *BTree) newNode(leaf bool) (*btreeNode, error) {
	r, err := t.arena.Alloc(btreeNodeBytes, memory.LineSize)
	if err != nil {
		return nil, err
	}
	t.nodes++
	return &btreeNode{region: r, leaf: leaf}, nil
}

// Size returns the number of keys stored.
func (t *BTree) Size() int { return t.size }

// Nodes returns the number of allocated nodes.
func (t *BTree) Nodes() int { return t.nodes }

// RootLine returns the first line of the root node — the hottest line of
// the whole structure.
func (t *BTree) RootLine() memory.Addr { return t.root.region.Base }

// touchKeys returns the addresses a key scan of the node touches: the
// node header line plus the line holding the scanned key slot.
func (n *btreeNode) touchKeys(slot int) []memory.Addr {
	header := n.region.Base
	// Keys are 8 bytes each, stored after a 16-byte header.
	off := uint64(16 + 8*slot)
	if off >= n.region.Size {
		off = n.region.Size - 8
	}
	keyLine := memory.LineOf(n.region.At(off))
	if keyLine == memory.LineOf(header) {
		return []memory.Addr{header}
	}
	return []memory.Addr{header, keyLine}
}

// Lookup finds a key and returns whether it exists along with the address
// trace of the search path.
func (t *BTree) Lookup(key uint64) (bool, []memory.Addr) {
	var trace []memory.Addr
	n := t.root
	for {
		i := 0
		for i < len(n.keys) && key > n.keys[i] {
			i++
		}
		trace = append(trace, n.touchKeys(i)...)
		if i < len(n.keys) && n.keys[i] == key {
			return true, trace
		}
		if n.leaf {
			return false, trace
		}
		n = n.children[i]
	}
}

// Insert adds a key (duplicates are ignored) and returns the address trace
// of the insertion, with the final leaf write included. The error is
// non-nil only when the arena is exhausted.
func (t *BTree) Insert(key uint64) ([]memory.Addr, error) {
	var trace []memory.Addr
	if len(t.root.keys) == maxKeys() {
		// Split the root: tree grows one level.
		newRoot, err := t.newNode(false)
		if err != nil {
			return trace, err
		}
		newRoot.children = append(newRoot.children, t.root)
		if err := t.splitChild(newRoot, 0, &trace); err != nil {
			return trace, err
		}
		t.root = newRoot
	}
	err := t.insertNonFull(t.root, key, &trace)
	return trace, err
}

func maxKeys() int { return BTreeOrder - 1 }

func (t *BTree) insertNonFull(n *btreeNode, key uint64, trace *[]memory.Addr) error {
	i := 0
	for i < len(n.keys) && key > n.keys[i] {
		i++
	}
	*trace = append(*trace, n.touchKeys(i)...)
	if i < len(n.keys) && n.keys[i] == key {
		return nil // duplicate
	}
	if n.leaf {
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		t.size++
		// The leaf write itself.
		*trace = append(*trace, n.touchKeys(i)...)
		return nil
	}
	if len(n.children[i].keys) == maxKeys() {
		if err := t.splitChild(n, i, trace); err != nil {
			return err
		}
		if key > n.keys[i] {
			i++
		} else if key == n.keys[i] {
			return nil
		}
	}
	return t.insertNonFull(n.children[i], key, trace)
}

// splitChild splits the full child n.children[i], promoting its median key
// into n.
func (t *BTree) splitChild(n *btreeNode, i int, trace *[]memory.Addr) error {
	child := n.children[i]
	mid := len(child.keys) / 2
	midKey := child.keys[mid]

	right, err := t.newNode(child.leaf)
	if err != nil {
		return err
	}
	right.keys = append(right.keys, child.keys[mid+1:]...)
	child.keys = child.keys[:mid]
	if !child.leaf {
		right.children = append(right.children, child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}

	n.keys = append(n.keys, 0)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = midKey
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right

	// Splits touch all three nodes.
	*trace = append(*trace, child.region.Base, right.region.Base, n.region.Base)
	return nil
}

// Height returns the tree height (1 for a lone leaf root).
func (t *BTree) Height() int {
	h, n := 1, t.root
	for !n.leaf {
		h++
		n = n.children[0]
	}
	return h
}

// CheckInvariants verifies B-tree structural invariants: key ordering
// within nodes, separator correctness, node fill bounds, and uniform leaf
// depth. Tests call it after bulk insertions.
func (t *BTree) CheckInvariants() error {
	leafDepth := -1
	var walk func(n *btreeNode, depth int, lo, hi *uint64) error
	walk = func(n *btreeNode, depth int, lo, hi *uint64) error {
		if len(n.keys) > maxKeys() {
			return fmt.Errorf("btree: node has %d keys, max %d", len(n.keys), maxKeys())
		}
		for i := 0; i < len(n.keys); i++ {
			if lo != nil && n.keys[i] <= *lo {
				return fmt.Errorf("btree: key %d not above separator %d", n.keys[i], *lo)
			}
			if hi != nil && n.keys[i] >= *hi {
				return fmt.Errorf("btree: key %d not below separator %d", n.keys[i], *hi)
			}
			if i > 0 && n.keys[i-1] >= n.keys[i] {
				return fmt.Errorf("btree: keys out of order: %d >= %d", n.keys[i-1], n.keys[i])
			}
		}
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("btree: leaves at depths %d and %d", leafDepth, depth)
			}
			return nil
		}
		if len(n.children) != len(n.keys)+1 {
			return fmt.Errorf("btree: %d children for %d keys", len(n.children), len(n.keys))
		}
		for i, c := range n.children {
			clo, chi := lo, hi
			if i > 0 {
				clo = &n.keys[i-1]
			}
			if i < len(n.keys) {
				chi = &n.keys[i]
			}
			if err := walk(c, depth+1, clo, chi); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.root, 0, nil, nil)
}
