package workloads

import (
	"context"
	"testing"

	"threadcluster/internal/memory"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
)

// buildMachine assembles a machine with the given policy and installs the
// spec.
func buildMachine(t *testing.T, spec *Spec, policy sched.Policy) *sim.Machine {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Policy = policy
	cfg.QuantumCycles = 20_000
	m, err := sim.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Install(m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSyntheticShape(t *testing.T) {
	spec, err := NewSynthetic(memory.NewDefaultArena(), DefaultSyntheticConfig())
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "microbenchmark" || spec.NumPartitions != 4 {
		t.Errorf("spec = %s/%d partitions", spec.Name, spec.NumPartitions)
	}
	if len(spec.Threads) != 16 {
		t.Fatalf("threads = %d, want 16", len(spec.Threads))
	}
	// Interleaved partitions: consecutive IDs differ.
	if spec.Threads[0].Partition == spec.Threads[1].Partition {
		t.Error("consecutive threads should belong to different scoreboards")
	}
	// Exactly 4 threads per board.
	count := make(map[int]int)
	for _, th := range spec.Threads {
		count[th.Partition]++
	}
	for b, n := range count {
		if n != 4 {
			t.Errorf("board %d has %d threads, want 4", b, n)
		}
	}
}

func TestSyntheticValidation(t *testing.T) {
	bad := DefaultSyntheticConfig()
	bad.Scoreboards = 0
	if _, err := NewSynthetic(memory.NewDefaultArena(), bad); err == nil {
		t.Error("zero scoreboards should fail")
	}
	bad = DefaultSyntheticConfig()
	bad.PrivateBytes = 8
	if _, err := NewSynthetic(memory.NewDefaultArena(), bad); err == nil {
		t.Error("sub-line private region should fail")
	}
}

func TestVolanoShape(t *testing.T) {
	spec, err := NewVolano(memory.NewDefaultArena(), DefaultVolanoConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 2 rooms x 8 clients x 2 threads per connection = 32 threads.
	if len(spec.Threads) != 32 {
		t.Fatalf("threads = %d, want 32 (two designated threads per connection)", len(spec.Threads))
	}
	if spec.NumPartitions != 2 {
		t.Errorf("partitions = %d, want 2 rooms", spec.NumPartitions)
	}
	count := make(map[int]int)
	for _, th := range spec.Threads {
		count[th.Partition]++
	}
	if count[0] != 16 || count[1] != 16 {
		t.Errorf("per-room thread counts = %v, want 16 each", count)
	}
}

func TestVolanoServerNewConnection(t *testing.T) {
	server, err := NewVolanoServer(memory.NewDefaultArena(), DefaultVolanoConfig())
	if err != nil {
		t.Fatal(err)
	}
	before := len(server.Spec().Threads)
	pair, err := server.NewConnection(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pair) != 2 {
		t.Fatalf("connection minted %d threads, want 2", len(pair))
	}
	if pair[0].Partition != 1 || pair[1].Partition != 1 {
		t.Error("new connection threads should carry the room partition")
	}
	if pair[0].ID == pair[1].ID {
		t.Error("pair must have distinct ids")
	}
	if len(server.Spec().Threads) != before+2 {
		t.Error("spec should track the new threads")
	}
	if _, err := server.NewConnection(99); err == nil {
		t.Error("out-of-range room should fail")
	}
}

func TestMachineRemoveThreadLifecycle(t *testing.T) {
	spec, _ := NewVolano(memory.NewDefaultArena(), DefaultVolanoConfig())
	m := buildMachine(t, spec, sched.PolicyDefault)
	m.RunRoundsCtx(context.Background(), 5)
	id := spec.Threads[0].ID
	if err := m.RemoveThread(id); err != nil {
		t.Fatal(err)
	}
	if m.Thread(id) != nil {
		t.Error("removed thread still visible")
	}
	if err := m.RemoveThread(id); err == nil {
		t.Error("double removal should fail")
	}
	m.RunRoundsCtx(context.Background(), 5) // machine keeps running without the thread
	if err := m.Scheduler().CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestVolanoValidation(t *testing.T) {
	bad := DefaultVolanoConfig()
	bad.Rooms = 0
	if _, err := NewVolano(memory.NewDefaultArena(), bad); err == nil {
		t.Error("zero rooms should fail")
	}
}

func TestJBBShapeAndTreeIntegrity(t *testing.T) {
	cfg := DefaultJBBConfig()
	spec, err := NewJBB(memory.NewDefaultArena(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Threads) != 16 {
		t.Fatalf("threads = %d, want 16", len(spec.Threads))
	}
	// Both warehouses' workers share trees; drive some transactions and
	// verify the shared tree stays structurally sound.
	m := buildMachine(t, spec, sched.PolicyDefault)
	m.RunRoundsCtx(context.Background(), 30)
	worker := spec.Threads[0].Gen.(*traceGenerator)
	_ = worker
	// Reach into a worker's tree via a fresh transaction trace.
	if m.TotalOps() == 0 {
		t.Error("no transactions completed")
	}
}

func TestJBBValidation(t *testing.T) {
	bad := DefaultJBBConfig()
	bad.Warehouses = 0
	if _, err := NewJBB(memory.NewDefaultArena(), bad); err == nil {
		t.Error("zero warehouses should fail")
	}
	bad = DefaultJBBConfig()
	bad.KeySpace = 0
	if _, err := NewJBB(memory.NewDefaultArena(), bad); err == nil {
		t.Error("zero key space should fail")
	}
}

func TestRubisShape(t *testing.T) {
	spec, err := NewRubis(memory.NewDefaultArena(), DefaultRubisConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Threads) != 32 {
		t.Fatalf("threads = %d, want 32 (16 clients x 2 instances)", len(spec.Threads))
	}
	if spec.NumPartitions != 2 {
		t.Errorf("partitions = %d, want 2 instances", spec.NumPartitions)
	}
}

func TestRubisValidation(t *testing.T) {
	bad := DefaultRubisConfig()
	bad.Instances = 0
	if _, err := NewRubis(memory.NewDefaultArena(), bad); err == nil {
		t.Error("zero instances should fail")
	}
}

func TestStagedShape(t *testing.T) {
	spec, err := NewStaged(memory.NewDefaultArena(), DefaultStagedConfig())
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "staged" || spec.NumPartitions != 4 {
		t.Errorf("spec = %s/%d", spec.Name, spec.NumPartitions)
	}
	if len(spec.Threads) != 16 {
		t.Fatalf("threads = %d, want 16", len(spec.Threads))
	}
	count := map[int]int{}
	for _, th := range spec.Threads {
		count[th.Partition]++
	}
	for s, n := range count {
		if n != 4 {
			t.Errorf("stage %d has %d threads, want 4", s, n)
		}
	}
}

func TestStagedValidation(t *testing.T) {
	bad := DefaultStagedConfig()
	bad.Stages = 0
	if _, err := NewStaged(memory.NewDefaultArena(), bad); err == nil {
		t.Error("zero stages should fail")
	}
}

func TestStagedChainSharing(t *testing.T) {
	// Adjacent stages must share a queue; non-adjacent stages must not
	// (other than nothing at all). Verify through the generators' address
	// streams.
	spec, _ := NewStaged(memory.NewDefaultArena(), DefaultStagedConfig())
	touched := make([]map[memory.Addr]bool, 4)
	for s := range touched {
		touched[s] = map[memory.Addr]bool{}
	}
	for _, th := range spec.Threads {
		for i := 0; i < 3000; i++ {
			ref := th.Gen.Next()
			touched[th.Partition][memory.LineOf(ref.Addr)] = true
		}
	}
	overlap := func(a, b int) int {
		n := 0
		for l := range touched[a] {
			if touched[b][l] {
				n++
			}
		}
		return n
	}
	if overlap(0, 1) == 0 || overlap(1, 2) == 0 || overlap(2, 3) == 0 {
		t.Error("adjacent stages must share queue lines")
	}
	if overlap(0, 2) != 0 || overlap(0, 3) != 0 || overlap(1, 3) != 0 {
		t.Error("non-adjacent stages must not share lines")
	}
}

func TestPartitionHintAndTruthAgree(t *testing.T) {
	spec, _ := NewSynthetic(memory.NewDefaultArena(), DefaultSyntheticConfig())
	hint := spec.PartitionHint()
	truth := spec.Truth()
	for _, th := range spec.Threads {
		if hint(th.ID) != th.Partition || truth[int(th.ID)] != th.Partition {
			t.Fatalf("hint/truth disagree for thread %d", th.ID)
		}
	}
}

func TestInstallWiresHandOptimizedHint(t *testing.T) {
	spec, _ := NewSynthetic(memory.NewDefaultArena(), DefaultSyntheticConfig())
	m := buildMachine(t, spec, sched.PolicyHandOptimized)
	// With 4 scoreboards on 2 chips, boards map to chips via modulo: all
	// threads of one board must share a chip.
	s := m.Scheduler()
	for _, th := range spec.Threads {
		chip, ok := s.ChipOf(th.ID)
		if !ok {
			t.Fatalf("thread %d not placed", th.ID)
		}
		if want := th.Partition % 2; chip != want {
			t.Errorf("thread %d (board %d) on chip %d, want %d", th.ID, th.Partition, chip, want)
		}
	}
}

// The central behavioural property for each workload: scattering threads
// across chips (round-robin) produces remote stalls dominated by the
// cluster-shared data, and hand-optimized placement slashes them.
func TestWorkloadsShowSharingSignal(t *testing.T) {
	builders := map[string]func() (*Spec, error){
		"synthetic": func() (*Spec, error) {
			return NewSynthetic(memory.NewDefaultArena(), DefaultSyntheticConfig())
		},
		"volano": func() (*Spec, error) {
			return NewVolano(memory.NewDefaultArena(), DefaultVolanoConfig())
		},
		"jbb": func() (*Spec, error) {
			cfg := DefaultJBBConfig()
			cfg.InitialKeys = 800 // keep the test fast
			return NewJBB(memory.NewDefaultArena(), cfg)
		},
		"rubis": func() (*Spec, error) {
			cfg := DefaultRubisConfig()
			cfg.TableKeys = 600
			return NewRubis(memory.NewDefaultArena(), cfg)
		},
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			specRR, err := build()
			if err != nil {
				t.Fatal(err)
			}
			rr := buildMachine(t, specRR, sched.PolicyRoundRobin)
			rr.RunRoundsCtx(context.Background(), 150)
			rr.ResetMetrics()
			rr.RunRoundsCtx(context.Background(), 150)
			rrFrac := rr.Breakdown().RemoteFraction()
			if rrFrac <= 0.005 {
				t.Fatalf("round-robin remote fraction = %.4f; workload has no sharing signal", rrFrac)
			}

			specHO, err := build()
			if err != nil {
				t.Fatal(err)
			}
			ho := buildMachine(t, specHO, sched.PolicyHandOptimized)
			ho.RunRoundsCtx(context.Background(), 150)
			ho.ResetMetrics()
			ho.RunRoundsCtx(context.Background(), 150)
			hoFrac := ho.Breakdown().RemoteFraction()
			if hoFrac >= rrFrac {
				t.Errorf("hand-optimized (%.4f) should beat round-robin (%.4f)", hoFrac, rrFrac)
			}
			// Throughput should improve too (or at least not regress).
			if ho.TotalOps() < rr.TotalOps() {
				t.Errorf("hand-optimized ops %d < round-robin ops %d", ho.TotalOps(), rr.TotalOps())
			}
		})
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	run := func() uint64 {
		spec, err := NewVolano(memory.NewDefaultArena(), DefaultVolanoConfig())
		if err != nil {
			t.Fatal(err)
		}
		m := buildMachine(t, spec, sched.PolicyRoundRobin)
		m.RunRoundsCtx(context.Background(), 50)
		return m.Breakdown().Cycles ^ m.TotalOps()
	}
	if run() != run() {
		t.Error("workload runs are not deterministic")
	}
}

func TestTraceGeneratorRefills(t *testing.T) {
	calls := 0
	g := &traceGenerator{refill: func() []sim.MemRef {
		calls++
		return []sim.MemRef{{Addr: 1, Insts: 1}, {Addr: 2, Insts: 1, Ops: 1}}
	}}
	for i := 0; i < 5; i++ {
		g.Next()
	}
	if calls != 3 {
		t.Errorf("refill called %d times, want 3 for 5 refs of 2-ref traces", calls)
	}
}
