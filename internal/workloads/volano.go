package workloads

import (
	"fmt"

	"threadcluster/internal/errs"
	"threadcluster/internal/memory"
	"threadcluster/internal/rng"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
	"threadcluster/internal/snapbin"
)

// VolanoConfig parameterizes the VolanoMark-like chat server workload
// (Section 5.3.2): an instant-messaging server where every client
// connection is handled by two designated threads for the connection's
// lifetime, and all connections of a room broadcast into the room's
// shared state.
type VolanoConfig struct {
	// Rooms is the number of chat rooms (paper: 2).
	Rooms int
	// ClientsPerRoom is the number of connections per room (paper: 8).
	ClientsPerRoom int
	// RoomBufferBytes sizes each room's shared message board.
	RoomBufferBytes uint64
	// ConnBufferBytes sizes each connection's private socket/session
	// buffers, shared only by that connection's thread pair.
	ConnBufferBytes uint64
	// GlobalBytes sizes process-wide server state (user registry, room
	// directory, JVM internals) touched by every thread.
	GlobalBytes uint64
	// HeapBytes sizes each thread's private working memory.
	HeapBytes uint64
	// Seed drives the generators.
	Seed int64
}

// DefaultVolanoConfig is the paper's test case: 2 rooms, 8 clients per
// room, zero think time.
func DefaultVolanoConfig() VolanoConfig {
	return VolanoConfig{
		Rooms:           2,
		ClientsPerRoom:  8,
		RoomBufferBytes: 32 * memory.LineSize,
		ConnBufferBytes: 8 * memory.LineSize,
		GlobalBytes:     16 * memory.LineSize,
		HeapBytes:       96 << 10,
		Seed:            1,
	}
}

// volanoThread models one of the two connection threads. A "reader"
// drains the room board into its connection buffer (read room, write conn
// buffer); a "writer" posts the client's messages (read conn buffer,
// write room board). Both occasionally touch global server state.
type volanoThread struct {
	rng    *rng.Rand
	writer bool
	room   memory.Region
	conn   memory.Region
	global memory.Region
	heap   memory.Region
	step   int
}

// Confined marks the generator parallel-safe: a connection thread owns
// its RNG and step counter and reads only immutable Region descriptors.
func (v *volanoThread) Confined() {}

// SnapshotState returns the thread's cursor: RNG position and step.
func (v *volanoThread) SnapshotState() []byte {
	e := &snapbin.Enc{}
	st := v.rng.State()
	e.I64(st.Seed)
	e.U64(st.Draws)
	e.I64(int64(v.step))
	return e.Bytes()
}

// RestoreState overwrites the thread's cursor with a SnapshotState blob
// from an identically constructed thread.
func (v *volanoThread) RestoreState(state []byte) error {
	d := snapbin.NewDec(state)
	seed := d.I64()
	draws := d.U64()
	step := d.I64()
	if err := d.Close(); err != nil {
		return fmt.Errorf("workloads: volano cursor: %w", err)
	}
	v.rng.Restore(rng.State{Seed: seed, Draws: draws})
	v.step = int(step)
	return nil
}

func (v *volanoThread) Next() sim.MemRef {
	v.step++
	branch, other := stallNoise(v.rng.Rand, 3, 6)
	base := sim.MemRef{Insts: 12, BranchStall: branch, OtherStall: other}
	switch v.step % 8 {
	case 0: // message transfer through the room board
		base.Addr = pickHot(v.rng.Rand, v.room, 4, 0.5)
		base.Write = v.writer
		base.Ops = 1 // one message handled
	case 1: // connection buffer (pair-shared)
		base.Addr = pick(v.rng.Rand, v.conn)
		base.Write = !v.writer
	case 2: // global server state, mostly reads with occasional updates
		base.Addr = pick(v.rng.Rand, v.global)
		base.Write = v.rng.Intn(16) == 0
	default: // heap churn: parsing, formatting, GC-ish traffic
		base.Addr = pick(v.rng.Rand, v.heap)
		base.Write = v.rng.Intn(3) == 0
	}
	return base
}

// VolanoServer is the chat server's long-lived state: its rooms and
// global structures. It can mint new connections at runtime, which is how
// the connection-churn studies model clients joining and leaving (the
// behaviour that motivated the paper's persistent-connection modification
// to RUBiS, Section 5.3.4).
type VolanoServer struct {
	cfg    VolanoConfig
	arena  *memory.Arena
	global memory.Region
	rooms  []memory.Region
	spec   *Spec
	nextID int
}

// NewVolanoServer allocates the server structures and the initial
// connections (ClientsPerRoom per room).
func NewVolanoServer(arena *memory.Arena, cfg VolanoConfig) (*VolanoServer, error) {
	if cfg.Rooms <= 0 || cfg.ClientsPerRoom <= 0 {
		return nil, fmt.Errorf("workloads: volano needs positive rooms and clients, got %+v: %w", cfg, errs.ErrBadConfig)
	}
	global, err := arena.Alloc(cfg.GlobalBytes, memory.LineSize)
	if err != nil {
		return nil, err
	}
	s := &VolanoServer{
		cfg:    cfg,
		arena:  arena,
		global: global,
		spec:   &Spec{Name: "volano", NumPartitions: cfg.Rooms},
	}
	s.rooms = make([]memory.Region, cfg.Rooms)
	for i := range s.rooms {
		if s.rooms[i], err = arena.Alloc(cfg.RoomBufferBytes, memory.LineSize); err != nil {
			return nil, err
		}
	}
	for c := 0; c < cfg.ClientsPerRoom; c++ {
		for r := 0; r < cfg.Rooms; r++ {
			if _, err := s.NewConnection(r); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// Spec returns the workload spec (reflecting the initial connections).
func (s *VolanoServer) Spec() *Spec { return s.spec }

// NewConnection mints the two designated threads of a fresh client
// connection in the given room. The threads carry fresh ids; callers add
// them to a machine themselves when creating connections at runtime.
func (s *VolanoServer) NewConnection(room int) ([]*sim.Thread, error) {
	if room < 0 || room >= len(s.rooms) {
		return nil, fmt.Errorf("workloads: room %d out of range", room)
	}
	conn, err := s.arena.Alloc(s.cfg.ConnBufferBytes, memory.LineSize)
	if err != nil {
		return nil, err
	}
	var pair []*sim.Thread
	for _, writer := range []bool{false, true} {
		heap, err := s.arena.Alloc(s.cfg.HeapBytes, memory.LineSize)
		if err != nil {
			return nil, err
		}
		th := &volanoThread{
			rng:    rng.New(s.cfg.Seed*104729 + int64(s.nextID)),
			writer: writer,
			room:   s.rooms[room],
			conn:   conn,
			global: s.global,
			heap:   heap,
		}
		thread := &sim.Thread{
			ID:        sched.ThreadID(s.nextID),
			Gen:       th,
			Partition: room,
		}
		s.spec.Threads = append(s.spec.Threads, thread)
		pair = append(pair, thread)
		s.nextID++
	}
	return pair, nil
}

// NewVolano builds the chat-server workload. Thread IDs interleave rooms
// so naive placement scatters rooms across chips. The ground-truth
// partition is the room.
func NewVolano(arena *memory.Arena, cfg VolanoConfig) (*Spec, error) {
	s, err := NewVolanoServer(arena, cfg)
	if err != nil {
		return nil, err
	}
	return s.Spec(), nil
}
