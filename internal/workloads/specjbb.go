package workloads

import (
	"fmt"
	"math/rand"

	"threadcluster/internal/errs"
	"threadcluster/internal/memory"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
)

// JBBConfig parameterizes the SPECjbb2000-like workload (Section 5.3.3):
// warehouses stored as B-tree variants, each accessed for the experiment's
// lifetime by a fixed set of threads. The paper modifies SPECjbb so
// multiple threads share one warehouse — 2 warehouses with 8 threads each
// in the performance runs, 4 warehouses in the Figure 5 visualization.
type JBBConfig struct {
	// Warehouses is the number of warehouses (paper: 2; Figure 5 uses 4).
	Warehouses int
	// ThreadsPerWarehouse is the fixed thread set per warehouse (paper: 8).
	ThreadsPerWarehouse int
	// InitialKeys populates each warehouse's B-tree before the run.
	InitialKeys int
	// KeySpace is the range transaction keys are drawn from.
	KeySpace uint64
	// UpdateRatio is the fraction of transactions that insert (the rest
	// are lookups).
	UpdateRatio float64
	// MetaBytes sizes each warehouse's metadata block — the district and
	// warehouse records that (as in TPC-C, which SPECjbb models) are read
	// at the start of every transaction and updated by most of them
	// (next-order ids, year-to-date totals). This small write-hot block
	// is the warehouse's strongest sharing signature.
	MetaBytes uint64
	// MetaWriteRatio is the fraction of transactions that update the
	// warehouse metadata.
	MetaWriteRatio float64
	// GlobalBytes sizes JVM/process-global state (allocator metadata,
	// class tables) every thread occasionally writes.
	GlobalBytes uint64
	// HeapBytes is each thread's private allocation arena.
	HeapBytes uint64
	// Seed drives tree population and the generators.
	Seed int64
}

// DefaultJBBConfig is the paper's performance configuration: 2 warehouses,
// 8 threads per warehouse.
func DefaultJBBConfig() JBBConfig {
	return JBBConfig{
		Warehouses:          2,
		ThreadsPerWarehouse: 8,
		InitialKeys:         3000,
		KeySpace:            1 << 20,
		UpdateRatio:         0.25,
		MetaBytes:           8 * memory.LineSize,
		MetaWriteRatio:      0.6,
		GlobalBytes:         16 * memory.LineSize,
		HeapBytes:           64 << 10,
		Seed:                1,
	}
}

// jbbWorker runs warehouse transactions against its warehouse's B-tree,
// replaying the tree's address traces through a traceGenerator.
type jbbWorker struct {
	rng    *rand.Rand
	tree   *BTree
	meta   memory.Region
	cfg    JBBConfig
	global memory.Region
	heap   memory.Region
}

// transaction produces the reference trace of one warehouse operation.
func (w *jbbWorker) transaction() []sim.MemRef {
	var refs []sim.MemRef
	key := uint64(w.rng.Int63n(int64(w.cfg.KeySpace))) + 1
	isUpdate := w.rng.Float64() < w.cfg.UpdateRatio

	// Transaction prologue: read the warehouse/district record.
	refs = append(refs, sim.MemRef{Addr: pick(w.rng, w.meta), Insts: 8})

	var trace []memory.Addr
	if isUpdate {
		trace, _ = w.tree.Insert(key)
	} else {
		_, trace = w.tree.Lookup(key)
	}
	for i, a := range trace {
		branch, other := stallNoise(w.rng, 2, 4)
		refs = append(refs, sim.MemRef{
			Addr:        a,
			Write:       isUpdate && i == len(trace)-1, // the leaf write
			Insts:       8,
			BranchStall: branch,
			OtherStall:  other,
		})
	}
	// Object churn on the private heap between tree operations.
	for i := 0; i < 3; i++ {
		refs = append(refs, sim.MemRef{
			Addr:  pick(w.rng, w.heap),
			Write: i == 0,
			Insts: 12,
		})
	}
	// Occasional JVM-global write (allocation slow path, lock metadata).
	if w.rng.Intn(8) == 0 {
		refs = append(refs, sim.MemRef{
			Addr:  pick(w.rng, w.global),
			Write: w.rng.Intn(4) == 0,
			Insts: 10,
		})
	}
	// Transaction epilogue: most transactions update the district record
	// (next-order id, YTD totals).
	if w.rng.Float64() < w.cfg.MetaWriteRatio {
		refs = append(refs, sim.MemRef{Addr: pick(w.rng, w.meta), Write: true, Insts: 8})
	}
	refs[len(refs)-1].Ops = 1 // one transaction completed
	return refs
}

// NewJBB builds the warehouse workload. Threads interleave warehouses
// (thread i serves warehouse i % Warehouses); the ground-truth partition
// is the warehouse.
func NewJBB(arena *memory.Arena, cfg JBBConfig) (*Spec, error) {
	return newJBB(func(int) *memory.Arena { return arena }, arena, cfg)
}

// NewJBBOnNodes builds the warehouse workload with node-bound memory:
// warehouse i's B-tree, metadata and its threads' heaps all allocate from
// arenas[i % len(arenas)], while process-global state comes from
// arenas[0]. Combined with a memory.StripedNodes map whose stripes match
// the arenas, this models per-node allocation (numactl membind or
// first-touch) for the Section 8 NUMA experiments.
func NewJBBOnNodes(arenas []*memory.Arena, cfg JBBConfig) (*Spec, error) {
	if len(arenas) == 0 {
		return nil, fmt.Errorf("workloads: jbb on nodes needs at least one arena: %w", errs.ErrBadConfig)
	}
	return newJBB(func(wh int) *memory.Arena { return arenas[wh%len(arenas)] }, arenas[0], cfg)
}

func newJBB(arenaFor func(warehouse int) *memory.Arena, globalArena *memory.Arena, cfg JBBConfig) (*Spec, error) {
	if cfg.Warehouses <= 0 || cfg.ThreadsPerWarehouse <= 0 {
		return nil, fmt.Errorf("workloads: jbb needs positive warehouses and threads, got %+v: %w", cfg, errs.ErrBadConfig)
	}
	if cfg.KeySpace == 0 {
		return nil, fmt.Errorf("workloads: jbb needs a key space: %w", errs.ErrBadConfig)
	}
	global, err := globalArena.Alloc(cfg.GlobalBytes, memory.LineSize)
	if err != nil {
		return nil, err
	}
	popRng := rand.New(rand.NewSource(cfg.Seed * 31337))
	trees := make([]*BTree, cfg.Warehouses)
	metas := make([]memory.Region, cfg.Warehouses)
	for i := range trees {
		arena := arenaFor(i)
		t, err := NewBTree(arena)
		if err != nil {
			return nil, err
		}
		for k := 0; k < cfg.InitialKeys; k++ {
			if _, err := t.Insert(uint64(popRng.Int63n(int64(cfg.KeySpace))) + 1); err != nil {
				return nil, err
			}
		}
		trees[i] = t
		if metas[i], err = arena.Alloc(cfg.MetaBytes, memory.LineSize); err != nil {
			return nil, err
		}
	}
	spec := &Spec{Name: "specjbb", NumPartitions: cfg.Warehouses}
	total := cfg.Warehouses * cfg.ThreadsPerWarehouse
	for i := 0; i < total; i++ {
		wh := i % cfg.Warehouses
		heap, err := arenaFor(wh).Alloc(cfg.HeapBytes, memory.LineSize)
		if err != nil {
			return nil, err
		}
		w := &jbbWorker{
			rng:    rand.New(rand.NewSource(cfg.Seed*7331 + int64(i))),
			tree:   trees[wh],
			meta:   metas[wh],
			cfg:    cfg,
			global: global,
			heap:   heap,
		}
		spec.Threads = append(spec.Threads, &sim.Thread{
			ID:        sched.ThreadID(i),
			Gen:       &traceGenerator{refill: w.transaction},
			Partition: wh,
		})
	}
	return spec, nil
}
