package workloads

import (
	"math/rand"
	"testing"
	"testing/quick"

	"threadcluster/internal/memory"
)

func TestBTreeEmpty(t *testing.T) {
	tr, err := NewBTree(memory.NewDefaultArena())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 0 || tr.Nodes() != 1 || tr.Height() != 1 {
		t.Errorf("empty tree: size=%d nodes=%d height=%d", tr.Size(), tr.Nodes(), tr.Height())
	}
	found, trace := tr.Lookup(42)
	if found {
		t.Error("empty tree should not find anything")
	}
	if len(trace) == 0 {
		t.Error("even a failing lookup touches the root")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestBTreeNeedsArena(t *testing.T) {
	if _, err := NewBTree(nil); err == nil {
		t.Error("nil arena should fail")
	}
}

func TestBTreeInsertLookup(t *testing.T) {
	tr, _ := NewBTree(memory.NewDefaultArena())
	keys := []uint64{50, 20, 80, 10, 30, 70, 90, 5, 15, 25, 35}
	for _, k := range keys {
		if _, err := tr.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Size() != len(keys) {
		t.Errorf("size = %d, want %d", tr.Size(), len(keys))
	}
	for _, k := range keys {
		if found, _ := tr.Lookup(k); !found {
			t.Errorf("key %d not found", k)
		}
	}
	if found, _ := tr.Lookup(999); found {
		t.Error("absent key found")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestBTreeDuplicatesIgnored(t *testing.T) {
	tr, _ := NewBTree(memory.NewDefaultArena())
	for i := 0; i < 5; i++ {
		if _, err := tr.Insert(7); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Size() != 1 {
		t.Errorf("size = %d, want 1 (duplicates ignored)", tr.Size())
	}
}

func TestBTreeGrowsAndStaysBalanced(t *testing.T) {
	tr, _ := NewBTree(memory.NewDefaultArena())
	rng := rand.New(rand.NewSource(1))
	inserted := make(map[uint64]bool)
	for i := 0; i < 5000; i++ {
		k := uint64(rng.Int63n(1<<30)) + 1
		if _, err := tr.Insert(k); err != nil {
			t.Fatal(err)
		}
		inserted[k] = true
	}
	if tr.Size() != len(inserted) {
		t.Errorf("size = %d, want %d", tr.Size(), len(inserted))
	}
	if tr.Height() < 3 {
		t.Errorf("5000 keys should grow past height 2, got %d", tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for k := range inserted {
		if found, _ := tr.Lookup(k); !found {
			t.Fatalf("key %d lost", k)
		}
	}
}

func TestBTreeSequentialInsert(t *testing.T) {
	// Sequential insertion is the adversarial case for naive split logic.
	tr, _ := NewBTree(memory.NewDefaultArena())
	for k := uint64(1); k <= 2000; k++ {
		if _, err := tr.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 2000; k++ {
		if found, _ := tr.Lookup(k); !found {
			t.Fatalf("sequential key %d lost", k)
		}
	}
}

func TestBTreeTracesStayInsideNodes(t *testing.T) {
	arena := memory.NewDefaultArena()
	before := arena.Used()
	tr, _ := NewBTree(arena)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		k := uint64(rng.Int63n(1<<20)) + 1
		trace, err := tr.Insert(k)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range trace {
			if uint64(a) < uint64(memory.DefaultArenaBase)+before {
				t.Fatalf("trace address %#x below arena", uint64(a))
			}
		}
	}
	// Lookup traces grow with height and stay modest.
	_, trace := tr.Lookup(12345)
	if len(trace) == 0 || len(trace) > 4*tr.Height() {
		t.Errorf("lookup trace length %d implausible for height %d", len(trace), tr.Height())
	}
}

func TestBTreeRootLineIsHot(t *testing.T) {
	tr, _ := NewBTree(memory.NewDefaultArena())
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		_, _ = tr.Insert(uint64(rng.Int63n(1<<20)) + 1)
	}
	root := tr.RootLine()
	_, trace := tr.Lookup(555)
	if memory.LineOf(trace[0]) != memory.LineOf(root) {
		t.Error("every lookup must start at the root line")
	}
}

// Property: after any sequence of inserts, invariants hold and every
// inserted key is found.
func TestBTreePropertyInsertFind(t *testing.T) {
	f := func(raw []uint16) bool {
		tr, err := NewBTree(memory.NewDefaultArena())
		if err != nil {
			return false
		}
		seen := make(map[uint64]bool)
		for _, r := range raw {
			k := uint64(r) + 1
			if _, err := tr.Insert(k); err != nil {
				return false
			}
			seen[k] = true
		}
		if tr.Size() != len(seen) {
			return false
		}
		if tr.CheckInvariants() != nil {
			return false
		}
		for k := range seen {
			if found, _ := tr.Lookup(k); !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
