package workloads

import (
	"fmt"

	"threadcluster/internal/errs"
	"threadcluster/internal/memory"
	"threadcluster/internal/rng"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
	"threadcluster/internal/snapbin"
)

// SyntheticConfig parameterizes the Section 5.3.1 microbenchmark: "a
// simple multithreaded program in which each worker thread reads and
// modifies a scoreboard. Each scoreboard is shared by several threads, and
// there are several scoreboards. Each thread has a private chunk of data
// to work on which is fairly large so that accessing it often causes data
// cache misses."
type SyntheticConfig struct {
	// Scoreboards is the number of shared scoreboards (= clusters).
	Scoreboards int
	// ThreadsPerBoard is the fixed number of threads sharing each board.
	ThreadsPerBoard int
	// ScoreboardBytes sizes each scoreboard (small and hot).
	ScoreboardBytes uint64
	// PrivateBytes sizes each thread's private chunk (large, so accesses
	// often miss).
	PrivateBytes uint64
	// Align overrides the allocation alignment of scoreboards and private
	// chunks (0 = cache-line aligned). Page-granularity detection studies
	// set it to the page size so regions don't coalesce on pages.
	Align uint64
	// SharedRatio is the fraction of accesses aimed at the scoreboard.
	SharedRatio float64
	// WriteRatio is the fraction of scoreboard accesses that modify it.
	WriteRatio float64
	// Seed drives the generators.
	Seed int64
}

// DefaultSyntheticConfig sizes the microbenchmark for the 8-way machine:
// 4 scoreboards of 4 threads each, as in the Figure 5a plot.
func DefaultSyntheticConfig() SyntheticConfig {
	return SyntheticConfig{
		Scoreboards:     4,
		ThreadsPerBoard: 4,
		ScoreboardBytes: 16 * memory.LineSize,
		PrivateBytes:    128 << 10,
		SharedRatio:     0.4,
		WriteRatio:      0.5,
		Seed:            1,
	}
}

type syntheticWorker struct {
	rng        *rng.Rand
	private    memory.Region
	scoreboard memory.Region
	cfg        SyntheticConfig

	// Phase-change support (Section 4.1: "application phase changes are
	// automatically accounted for by this iterative process"): after
	// phaseAfterRefs references the worker switches from firstBoard to
	// secondBoard.
	firstBoard     memory.Region
	secondBoard    memory.Region
	phaseAfterRefs uint64
	refs           uint64
}

// Confined marks the generator parallel-safe: a worker owns its RNG and
// phase state and reads only immutable Region descriptors.
func (w *syntheticWorker) Confined() {}

// SnapshotState returns the worker's cursor: RNG position and reference
// count (the phase switch is derived from the count on restore).
func (w *syntheticWorker) SnapshotState() []byte {
	e := &snapbin.Enc{}
	st := w.rng.State()
	e.I64(st.Seed)
	e.U64(st.Draws)
	e.U64(w.refs)
	return e.Bytes()
}

// RestoreState overwrites the worker's cursor with a SnapshotState blob
// from an identically constructed worker.
func (w *syntheticWorker) RestoreState(state []byte) error {
	d := snapbin.NewDec(state)
	seed := d.I64()
	draws := d.U64()
	refs := d.U64()
	if err := d.Close(); err != nil {
		return fmt.Errorf("workloads: synthetic cursor: %w", err)
	}
	w.rng.Restore(rng.State{Seed: seed, Draws: draws})
	w.refs = refs
	// Next switches boards exactly when refs hits phaseAfterRefs; the
	// restored cursor decides which side of the switch the worker is on.
	if w.phaseAfterRefs > 0 && w.refs >= w.phaseAfterRefs {
		w.scoreboard = w.secondBoard
	} else {
		w.scoreboard = w.firstBoard
	}
	return nil
}

func (w *syntheticWorker) Next() sim.MemRef {
	w.refs++
	if w.phaseAfterRefs > 0 && w.refs == w.phaseAfterRefs {
		w.scoreboard = w.secondBoard
	}
	branch, other := stallNoise(w.rng.Rand, 2, 4)
	if w.rng.Float64() < w.cfg.SharedRatio {
		// Read-modify the scoreboard: one task completed per touch.
		return sim.MemRef{
			Addr:        pick(w.rng.Rand, w.scoreboard),
			Write:       w.rng.Float64() < w.cfg.WriteRatio,
			Insts:       10,
			BranchStall: branch,
			OtherStall:  other,
			Ops:         1,
		}
	}
	return sim.MemRef{
		Addr:        pick(w.rng.Rand, w.private),
		Write:       w.rng.Intn(4) == 0,
		Insts:       10,
		BranchStall: branch,
		OtherStall:  other,
	}
}

// NewSynthetic builds the scoreboard microbenchmark. Threads are numbered
// so that consecutive IDs belong to different scoreboards (i % boards),
// which means naive round-robin placement scatters every sharing group
// across chips — the worst case the paper engineers.
func NewSynthetic(arena *memory.Arena, cfg SyntheticConfig) (*Spec, error) {
	if cfg.Scoreboards <= 0 || cfg.ThreadsPerBoard <= 0 {
		return nil, fmt.Errorf("workloads: synthetic needs positive scoreboards and threads, got %+v: %w", cfg, errs.ErrBadConfig)
	}
	if cfg.ScoreboardBytes < memory.LineSize || cfg.PrivateBytes < memory.LineSize {
		return nil, fmt.Errorf("workloads: synthetic regions must hold at least one line: %w", errs.ErrBadConfig)
	}
	align := cfg.Align
	if align == 0 {
		align = memory.LineSize
	}
	boards := make([]memory.Region, cfg.Scoreboards)
	for i := range boards {
		r, err := arena.Alloc(cfg.ScoreboardBytes, align)
		if err != nil {
			return nil, err
		}
		boards[i] = r
	}
	spec := &Spec{Name: "microbenchmark", NumPartitions: cfg.Scoreboards}
	total := cfg.Scoreboards * cfg.ThreadsPerBoard
	for i := 0; i < total; i++ {
		board := i % cfg.Scoreboards
		private, err := arena.Alloc(cfg.PrivateBytes, align)
		if err != nil {
			return nil, err
		}
		w := &syntheticWorker{
			rng:        rng.New(cfg.Seed*7919 + int64(i)),
			private:    private,
			scoreboard: boards[board],
			firstBoard: boards[board],
			cfg:        cfg,
		}
		spec.Threads = append(spec.Threads, &sim.Thread{
			ID:        sched.ThreadID(i),
			Gen:       w,
			Partition: board,
		})
	}
	return spec, nil
}

// NewSyntheticWithPhaseChange builds the scoreboard microbenchmark with a
// mid-run sharing phase change: for the first phaseAfterRefs references,
// thread i shares scoreboard i % Scoreboards (the interleaved grouping);
// afterwards it shares scoreboard i / ThreadsPerBoard (a block grouping),
// so every sharing cluster dissolves and reforms with different members.
// The Thread.Partition ground truth describes the FIRST phase.
func NewSyntheticWithPhaseChange(arena *memory.Arena, cfg SyntheticConfig, phaseAfterRefs uint64) (*Spec, error) {
	spec, err := NewSynthetic(arena, cfg)
	if err != nil {
		return nil, err
	}
	if phaseAfterRefs == 0 {
		return nil, fmt.Errorf("workloads: phase change needs a positive reference count: %w", errs.ErrBadConfig)
	}
	// Second-phase scoreboards: a disjoint set of boards so the engine
	// cannot coast on stale placement.
	boards := make([]memory.Region, cfg.Scoreboards)
	for i := range boards {
		r, err := arena.Alloc(cfg.ScoreboardBytes, memory.LineSize)
		if err != nil {
			return nil, err
		}
		boards[i] = r
	}
	for i, th := range spec.Threads {
		w := th.Gen.(*syntheticWorker)
		w.secondBoard = boards[(i/cfg.ThreadsPerBoard)%cfg.Scoreboards]
		w.phaseAfterRefs = phaseAfterRefs
	}
	return spec, nil
}

// SecondPhaseTruth returns the ground-truth partition of the second phase
// of a NewSyntheticWithPhaseChange workload.
func SecondPhaseTruth(cfg SyntheticConfig) map[int]int {
	truth := make(map[int]int)
	total := cfg.Scoreboards * cfg.ThreadsPerBoard
	for i := 0; i < total; i++ {
		truth[i] = (i / cfg.ThreadsPerBoard) % cfg.Scoreboards
	}
	return truth
}
