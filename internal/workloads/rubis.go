package workloads

import (
	"fmt"
	"math/rand"

	"threadcluster/internal/errs"
	"threadcluster/internal/memory"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
)

// RubisConfig parameterizes the RUBiS-like OLTP workload (Section 5.3.4):
// an online-auction database server (MySQL in the paper) running two
// separate database instances inside a single process, with persistent
// connections so each client is served by one long-lived thread. The
// paper uses 16 clients per instance with no think time.
type RubisConfig struct {
	// Instances is the number of database instances (paper: 2).
	Instances int
	// ClientsPerInstance is the number of connection threads per instance
	// (paper: 16).
	ClientsPerInstance int
	// TableKeys populates each instance's item index.
	TableKeys int
	// KeySpace is the key range for transactions.
	KeySpace uint64
	// RowBytes sizes each instance's row storage (buffer pool pages).
	RowBytes uint64
	// LockBytes sizes each instance's lock/latch region — small and
	// write-hot, the strongest intra-instance sharing signal.
	LockBytes uint64
	// GlobalBytes sizes process-wide server state (query cache metadata,
	// thread registry) shared across instances.
	GlobalBytes uint64
	// SessionBytes is each connection thread's private session state.
	SessionBytes uint64
	// BidRatio is the fraction of transactions that write (place a bid);
	// the rest browse.
	BidRatio float64
	// Seed drives population and generators.
	Seed int64
}

// DefaultRubisConfig is the paper's configuration: two database instances
// ("two separate auction sites run by a single large media company") with
// 16 clients each.
func DefaultRubisConfig() RubisConfig {
	return RubisConfig{
		Instances:          2,
		ClientsPerInstance: 16,
		TableKeys:          2000,
		KeySpace:           1 << 18,
		RowBytes:           256 << 10,
		LockBytes:          8 * memory.LineSize,
		GlobalBytes:        16 * memory.LineSize,
		SessionBytes:       48 << 10,
		BidRatio:           0.3,
		Seed:               1,
	}
}

// dbInstance is one database's shared structures.
type dbInstance struct {
	index *BTree        // item index
	rows  memory.Region // buffer-pool pages
	locks memory.Region // lock manager
}

// rubisWorker executes browse/bid transactions against its instance.
type rubisWorker struct {
	rng     *rand.Rand
	inst    *dbInstance
	cfg     RubisConfig
	global  memory.Region
	session memory.Region
}

func (w *rubisWorker) transaction() []sim.MemRef {
	var refs []sim.MemRef
	bid := w.rng.Float64() < w.cfg.BidRatio
	key := uint64(w.rng.Int63n(int64(w.cfg.KeySpace))) + 1

	// 1. Lock acquisition: write-hot, instance-shared.
	refs = append(refs, sim.MemRef{Addr: pick(w.rng, w.inst.locks), Write: true, Insts: 6})

	// 2. Index traversal.
	var trace []memory.Addr
	if bid {
		trace, _ = w.inst.index.Insert(key)
	} else {
		_, trace = w.inst.index.Lookup(key)
	}
	for _, a := range trace {
		branch, other := stallNoise(w.rng, 2, 5)
		refs = append(refs, sim.MemRef{Addr: a, Insts: 9, BranchStall: branch, OtherStall: other})
	}

	// 3. Row access: browse reads several rows, a bid updates one.
	nRows := 3
	if bid {
		nRows = 1
	}
	for i := 0; i < nRows; i++ {
		refs = append(refs, sim.MemRef{
			Addr:  pickHot(w.rng, w.inst.rows, 32, 0.4),
			Write: bid,
			Insts: 10,
		})
	}

	// 4. Lock release.
	refs = append(refs, sim.MemRef{Addr: pick(w.rng, w.inst.locks), Write: true, Insts: 6})

	// 5. Session state (private) and occasional process-global touch.
	refs = append(refs, sim.MemRef{Addr: pick(w.rng, w.session), Write: true, Insts: 12})
	if w.rng.Intn(10) == 0 {
		refs = append(refs, sim.MemRef{
			Addr:  pick(w.rng, w.global),
			Write: w.rng.Intn(5) == 0,
			Insts: 8,
		})
	}
	refs[len(refs)-1].Ops = 1 // one OLTP transaction
	return refs
}

// NewRubis builds the two-instance OLTP workload. Thread IDs interleave
// instances (thread i serves instance i % Instances); the ground truth
// partition is the database instance.
func NewRubis(arena *memory.Arena, cfg RubisConfig) (*Spec, error) {
	if cfg.Instances <= 0 || cfg.ClientsPerInstance <= 0 {
		return nil, fmt.Errorf("workloads: rubis needs positive instances and clients, got %+v: %w", cfg, errs.ErrBadConfig)
	}
	if cfg.KeySpace == 0 {
		return nil, fmt.Errorf("workloads: rubis needs a key space: %w", errs.ErrBadConfig)
	}
	global, err := arena.Alloc(cfg.GlobalBytes, memory.LineSize)
	if err != nil {
		return nil, err
	}
	popRng := rand.New(rand.NewSource(cfg.Seed * 60013))
	insts := make([]*dbInstance, cfg.Instances)
	for i := range insts {
		index, err := NewBTree(arena)
		if err != nil {
			return nil, err
		}
		for k := 0; k < cfg.TableKeys; k++ {
			if _, err := index.Insert(uint64(popRng.Int63n(int64(cfg.KeySpace))) + 1); err != nil {
				return nil, err
			}
		}
		rows, err := arena.Alloc(cfg.RowBytes, memory.LineSize)
		if err != nil {
			return nil, err
		}
		locks, err := arena.Alloc(cfg.LockBytes, memory.LineSize)
		if err != nil {
			return nil, err
		}
		insts[i] = &dbInstance{index: index, rows: rows, locks: locks}
	}
	spec := &Spec{Name: "rubis", NumPartitions: cfg.Instances}
	total := cfg.Instances * cfg.ClientsPerInstance
	for i := 0; i < total; i++ {
		in := i % cfg.Instances
		session, err := arena.Alloc(cfg.SessionBytes, memory.LineSize)
		if err != nil {
			return nil, err
		}
		w := &rubisWorker{
			rng:     rand.New(rand.NewSource(cfg.Seed*50021 + int64(i))),
			inst:    insts[in],
			cfg:     cfg,
			global:  global,
			session: session,
		}
		spec.Threads = append(spec.Threads, &sim.Thread{
			ID:        sched.ThreadID(i),
			Gen:       &traceGenerator{refill: w.transaction},
			Partition: in,
		})
	}
	return spec, nil
}
