package workloads

import (
	"errors"
	"testing"

	"threadcluster/internal/errs"
	"threadcluster/internal/memory"
)

// TestBadConfigsAreSentinels: invalid workload configurations classify
// with errors.Is, not just message text.
func TestBadConfigsAreSentinels(t *testing.T) {
	arena := memory.NewDefaultArena()
	cases := []struct {
		name string
		err  func() error
	}{
		{"synthetic", func() error {
			_, err := NewSynthetic(arena, SyntheticConfig{})
			return err
		}},
		{"volano", func() error {
			_, err := NewVolano(arena, VolanoConfig{})
			return err
		}},
		{"jbb", func() error {
			_, err := NewJBB(arena, JBBConfig{})
			return err
		}},
		{"rubis", func() error {
			_, err := NewRubis(arena, RubisConfig{})
			return err
		}},
		{"staged", func() error {
			_, err := NewStaged(arena, StagedConfig{})
			return err
		}},
		{"btree", func() error {
			_, err := NewBTree(nil)
			return err
		}},
	}
	for _, tc := range cases {
		if err := tc.err(); !errors.Is(err, errs.ErrBadConfig) {
			t.Errorf("%s zero config err = %v, want ErrBadConfig", tc.name, err)
		}
	}
}
