package core

import (
	"context"
	"testing"

	"threadcluster/internal/memory"
	"threadcluster/internal/rng"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
	"threadcluster/internal/snapbin"
)

// confinedSharer is the groupSharer made snapshot-capable: own RNG, own
// cursor, immutable Region descriptors.
type confinedSharer struct {
	rng     *rng.Rand
	private memory.Region
	shared  memory.Region
	ratio   float64
}

func (g *confinedSharer) Confined() {}

func (g *confinedSharer) Next() sim.MemRef {
	if g.rng.Float64() < g.ratio {
		lines := g.shared.Size / memory.LineSize
		off := uint64(g.rng.Intn(int(lines))) * memory.LineSize
		return sim.MemRef{Addr: g.shared.At(off), Write: g.rng.Intn(3) == 0, Insts: 8, Ops: 1}
	}
	lines := g.private.Size / memory.LineSize
	off := uint64(g.rng.Intn(int(lines))) * memory.LineSize
	return sim.MemRef{Addr: g.private.At(off), Write: false, Insts: 8, Ops: 1}
}

func (g *confinedSharer) SnapshotState() []byte {
	e := &snapbin.Enc{}
	st := g.rng.State()
	e.I64(st.Seed)
	e.U64(st.Draws)
	return e.Bytes()
}

func (g *confinedSharer) RestoreState(state []byte) error {
	d := snapbin.NewDec(state)
	seed := d.I64()
	draws := d.U64()
	if err := d.Close(); err != nil {
		return err
	}
	g.rng.Restore(rng.State{Seed: seed, Draws: draws})
	return nil
}

// installConfinedWorkload adds the interleaved sharing groups plus the
// clustering engine to a fresh machine — the install callback the
// snapshot tests hand to sim.RestoreMachine.
func installConfinedWorkload(nGroups, perGroup int, seed int64, ecfg Config) func(*sim.Machine) error {
	return func(m *sim.Machine) error {
		arena := memory.NewDefaultArena()
		shared := make([]memory.Region, nGroups)
		for g := range shared {
			shared[g] = arena.MustAlloc(16*memory.LineSize, 0)
		}
		for i := 0; i < nGroups*perGroup; i++ {
			g := i % nGroups
			gen := &confinedSharer{
				rng:     rng.New(seed*1000 + int64(i)),
				private: arena.MustAlloc(64<<10, 0),
				shared:  shared[g],
				ratio:   0.4,
			}
			if err := m.AddThread(&sim.Thread{ID: sched.ThreadID(i), Gen: gen, Partition: g}); err != nil {
				return err
			}
		}
		e, err := New(m, ecfg)
		if err != nil {
			return err
		}
		return e.Install()
	}
}

// TestEngineStateRoundTrip pins the engine's ride-along in machine
// snapshots: an uninterrupted N+M-round run with the clustering engine
// installed must end in the same machine state — snapshot digest
// included, which covers the engine's own core.engine section — as a run
// that snapshots at round N, rebuilds everything from config, restores,
// and runs M more rounds. The detection machinery is mid-flight at the
// snapshot point (shMaps filling, filters claimed, jitter RNG advanced),
// so the test fails if any of that state is lost or drifts.
func TestEngineStateRoundTrip(t *testing.T) {
	const nGroups, perGroup, seed = 2, 4, 11
	const preRounds, postRounds = 30, 30
	ctx := context.Background()

	mcfg := sim.DefaultConfig()
	mcfg.Policy = sched.PolicyClustered
	mcfg.QuantumCycles = 20_000
	mcfg.Seed = seed
	ecfg := testEngineConfig()
	install := installConfinedWorkload(nGroups, perGroup, seed, ecfg)

	build := func() *sim.Machine {
		m, err := sim.NewMachine(mcfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := install(m); err != nil {
			t.Fatal(err)
		}
		return m
	}

	ref := build()
	if err := ref.RunRoundsCtx(ctx, preRounds+postRounds); err != nil {
		t.Fatal(err)
	}
	refSnap, err := ref.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}

	split := build()
	if err := split.RunRoundsCtx(ctx, preRounds); err != nil {
		t.Fatal(err)
	}
	snap, err := split.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, name := range snap.Sections() {
		if name == StateProviderName {
			found = true
		}
	}
	if !found {
		t.Fatalf("snapshot sections %v lack %q", snap.Sections(), StateProviderName)
	}
	decoded, err := sim.DecodeSnapshot(snap.Encode())
	if err != nil {
		t.Fatal(err)
	}
	restored, err := sim.RestoreMachine(mcfg, decoded, install)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RunRoundsCtx(ctx, postRounds); err != nil {
		t.Fatal(err)
	}
	gotSnap, err := restored.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := gotSnap.Digest(), refSnap.Digest(); got != want {
		t.Fatalf("restored run diverges from uninterrupted run:\nrestored:      %s\nuninterrupted: %s", got, want)
	}
}

// TestEngineStateMidDetection snapshots while the engine is actively
// sampling (detection forced, target not yet reached) and checks phase,
// counters and shMap contents survive the round trip exactly.
func TestEngineStateMidDetection(t *testing.T) {
	const nGroups, perGroup, seed = 2, 4, 23
	ctx := context.Background()

	mcfg := sim.DefaultConfig()
	mcfg.Policy = sched.PolicyClustered
	mcfg.QuantumCycles = 20_000
	mcfg.Seed = seed
	ecfg := testEngineConfig()
	ecfg.TargetSamples = 1 << 30 // never finish: stay mid-detection

	buildWithHandle := func() (*sim.Machine, *Engine) {
		m, err := sim.NewMachine(mcfg)
		if err != nil {
			t.Fatal(err)
		}
		arena := memory.NewDefaultArena()
		shared := make([]memory.Region, nGroups)
		for g := range shared {
			shared[g] = arena.MustAlloc(16*memory.LineSize, 0)
		}
		for i := 0; i < nGroups*perGroup; i++ {
			g := i % nGroups
			gen := &confinedSharer{
				rng:     rng.New(seed*1000 + int64(i)),
				private: arena.MustAlloc(64<<10, 0),
				shared:  shared[g],
				ratio:   0.4,
			}
			if err := m.AddThread(&sim.Thread{ID: sched.ThreadID(i), Gen: gen, Partition: g}); err != nil {
				t.Fatal(err)
			}
		}
		e, err := New(m, ecfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Install(); err != nil {
			t.Fatal(err)
		}
		return m, e
	}

	m, e := buildWithHandle()
	e.ForceDetection()
	if err := m.RunRoundsCtx(ctx, 20); err != nil {
		t.Fatal(err)
	}
	if e.Phase() != PhaseDetecting || e.SamplesRead() == 0 {
		t.Fatalf("test premise broken: phase %v, %d samples", e.Phase(), e.SamplesRead())
	}
	snap, err := m.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}

	m2, e2 := buildWithHandle()
	if err := m2.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if e2.Phase() != e.Phase() {
		t.Fatalf("phase %v, want %v", e2.Phase(), e.Phase())
	}
	if e2.SamplesRead() != e.SamplesRead() || e2.SamplesAdmitted() != e.SamplesAdmitted() {
		t.Fatalf("samples %d/%d, want %d/%d",
			e2.SamplesAdmitted(), e2.SamplesRead(), e.SamplesAdmitted(), e.SamplesRead())
	}
	if e2.Activations() != e.Activations() {
		t.Fatalf("activations %d, want %d", e2.Activations(), e.Activations())
	}
	if len(e2.ShMaps()) != len(e.ShMaps()) {
		t.Fatalf("%d shMaps, want %d", len(e2.ShMaps()), len(e.ShMaps()))
	}
	for key, sm := range e.ShMaps() {
		sm2, ok := e2.ShMaps()[key]
		if !ok {
			t.Fatalf("shMap for thread %d lost", key)
		}
		for i := 0; i < sm.Len(); i++ {
			if sm2.Get(i) != sm.Get(i) {
				t.Fatalf("shMap for thread %d diverges at entry %d: %d, want %d", key, i, sm2.Get(i), sm.Get(i))
			}
		}
	}
	// Both machines now continue and must stay in lockstep.
	if err := m.RunRoundsCtx(ctx, 10); err != nil {
		t.Fatal(err)
	}
	if err := m2.RunRoundsCtx(ctx, 10); err != nil {
		t.Fatal(err)
	}
	s1, err := m.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m2.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Digest() != s2.Digest() {
		t.Fatal("restored machine diverges from original over further rounds")
	}
}
