package core

import (
	"context"
	"math/rand"
	"testing"

	"threadcluster/internal/cache"
	"threadcluster/internal/clustering"
	"threadcluster/internal/memory"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
	"threadcluster/internal/topology"
)

// numaTestMachine builds a 2-chip NUMA machine with striped node arenas
// and two sharing groups, group g's data homed on node g but the threads
// scattered round-robin.
func numaTestMachine(t *testing.T) (*sim.Machine, memory.StripedNodes, []*sim.Thread) {
	t.Helper()
	nodes := memory.StripedNodes{N: 2, Stripe: 1 << 32}
	arenas, err := memory.NodeArenas(nodes)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.Policy = sched.PolicyClustered
	cfg.QuantumCycles = 20_000
	cfg.Lat = topology.NUMALatencies()
	cfg.Caches = cache.SmallConfig() // tiny caches: memory fills dominate
	m, err := sim.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Hierarchy().SetNUMA(nodes)
	sharedRegions := []memory.Region{
		arenas[0].MustAlloc(16*memory.LineSize, 0),
		arenas[1].MustAlloc(16*memory.LineSize, 0),
	}
	var threads []*sim.Thread
	for i := 0; i < 8; i++ {
		g := i % 2
		th := &sim.Thread{
			ID: sched.ThreadID(i),
			Gen: &groupSharer{
				rng:     rand.New(rand.NewSource(int64(100 + i))),
				private: arenas[g].MustAlloc(64<<10, 0),
				shared:  sharedRegions[g],
				ratio:   0.4,
			},
			Partition: g,
		}
		if err := m.AddThread(th); err != nil {
			t.Fatal(err)
		}
		threads = append(threads, th)
	}
	return m, nodes, threads
}

func TestNUMASamplingFeedsShMaps(t *testing.T) {
	m, nodes, _ := numaTestMachine(t)
	cfg := testEngineConfig()
	cfg.NUMA = true
	cfg.NodeOf = func(a memory.Addr) int { return nodes.NodeOf(a) }
	e, err := New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Install(); err != nil {
		t.Fatal(err)
	}
	e.ForceDetection()
	m.RunRoundsCtx(context.Background(), 100)
	if e.SamplesRead() == 0 {
		t.Fatal("NUMA engine read no samples")
	}
	if e.SamplesAdmitted() == 0 {
		t.Fatal("NUMA engine admitted no samples")
	}
}

func TestNUMAPreferredChipFollowsDataHome(t *testing.T) {
	m, nodes, threads := numaTestMachine(t)
	cfg := testEngineConfig()
	cfg.NUMA = true
	cfg.NodeOf = func(a memory.Addr) int { return nodes.NodeOf(a) }
	e, err := New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Install(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4000 && e.MigrationsDone() == 0; r += 20 {
		m.RunRoundsCtx(context.Background(), 20)
	}
	if e.MigrationsDone() == 0 {
		t.Fatalf("engine never migrated (samples %d)", e.SamplesRead())
	}
	// Every clustered thread must sit on the chip its group's data is
	// homed on (group g -> node g).
	misplaced := 0
	for _, th := range threads {
		chip, ok := m.Scheduler().ChipOf(th.ID)
		if !ok {
			t.Fatalf("thread %d unplaced", th.ID)
		}
		if chip != th.Partition {
			misplaced++
		}
	}
	if misplaced > 2 {
		t.Errorf("%d of %d threads off their data's home chip", misplaced, len(threads))
	}
}

func TestPerProcessFiltersIsolateProcesses(t *testing.T) {
	// Two "processes" of 8 threads each; within a process, two sharing
	// groups. ProcessOf splits at id 100.
	cfg := sim.DefaultConfig()
	cfg.Policy = sched.PolicyClustered
	cfg.QuantumCycles = 20_000
	m, err := sim.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	arena := memory.NewDefaultArena()
	addProc := func(base int) {
		shared := []memory.Region{
			arena.MustAlloc(16*memory.LineSize, 0),
			arena.MustAlloc(16*memory.LineSize, 0),
		}
		for i := 0; i < 8; i++ {
			gen := &groupSharer{
				rng:     rand.New(rand.NewSource(int64(base + i))),
				private: arena.MustAlloc(32<<10, 0),
				shared:  shared[i%2],
				ratio:   0.4,
			}
			if err := m.AddThread(&sim.Thread{ID: sched.ThreadID(base + i), Gen: gen, Partition: i % 2}); err != nil {
				t.Fatal(err)
			}
		}
	}
	addProc(0)
	addProc(100)

	ecfg := testEngineConfig()
	ecfg.ProcessOf = func(id sched.ThreadID) int {
		if id >= 100 {
			return 1
		}
		return 0
	}
	e, err := New(m, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Install(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4000 && e.Clusters() == nil; r += 20 {
		m.RunRoundsCtx(context.Background(), 20)
	}
	if e.Clusters() == nil {
		t.Fatalf("detection never completed (samples %d)", e.SamplesRead())
	}
	for ci, c := range e.Clusters() {
		if c.Size() < 2 {
			continue
		}
		procs := map[int]bool{}
		for _, tk := range c.Members {
			procs[ecfg.ProcessOf(sched.ThreadID(tk))] = true
		}
		if len(procs) > 1 {
			t.Errorf("cluster %d mixes processes: %v", ci, c.Members)
		}
	}
	// Both processes must be represented in the clustering result (the
	// live ShMaps may already have been reset by a re-activation).
	seenProc := map[int]bool{}
	for _, c := range e.Clusters() {
		for _, tk := range c.Members {
			seenProc[ecfg.ProcessOf(sched.ThreadID(tk))] = true
		}
	}
	if !seenProc[0] || !seenProc[1] {
		t.Errorf("clustering missing a process: %v", seenProc)
	}
}

func TestStabilityAcrossReclusterings(t *testing.T) {
	// Static sharing pattern: successive re-clusterings must agree.
	m := buildGroupedMachine(t, sched.PolicyClustered, 2, 8, 31)
	cfg := testEngineConfig()
	cfg.TargetSamples = 15_000
	e, _ := New(m, cfg)
	if err := e.Install(); err != nil {
		t.Fatal(err)
	}
	if _, known := e.Stability(); known {
		t.Fatal("stability should be unknown before two clusterings")
	}
	// Force two detections back to back.
	for round := 0; round < 2; round++ {
		e.ForceDetection()
		for r := 0; r < 4000 && e.Phase() == PhaseDetecting; r += 20 {
			m.RunRoundsCtx(context.Background(), 20)
		}
		if e.Phase() == PhaseDetecting {
			t.Fatalf("detection %d never finished", round)
		}
	}
	s, known := e.Stability()
	if !known {
		t.Fatal("stability should be known after two clusterings")
	}
	if s < 0.9 {
		t.Errorf("stability = %.2f on a static workload, want >= 0.9", s)
	}
}

func TestClusteringAgreementFunction(t *testing.T) {
	a := []clustering.Cluster{
		{Rep: 1, Members: []clustering.ThreadKey{1, 2}},
		{Rep: 3, Members: []clustering.ThreadKey{3, 4}},
	}
	if got := clusteringAgreement(a, a, 2); got != 1 {
		t.Errorf("self agreement = %v, want 1", got)
	}
	b := []clustering.Cluster{
		{Rep: 1, Members: []clustering.ThreadKey{1, 3}},
		{Rep: 2, Members: []clustering.ThreadKey{2, 4}},
	}
	if got := clusteringAgreement(a, b, 2); got >= 1 {
		t.Errorf("disagreeing partitions scored %v, want < 1", got)
	}
	// Disjoint thread sets: trivially stable.
	c := []clustering.Cluster{{Rep: 9, Members: []clustering.ThreadKey{9, 10}}}
	if got := clusteringAgreement(a, c, 2); got != 1 {
		t.Errorf("disjoint sets = %v, want 1", got)
	}
	// All-singleton second clustering: vacuous agreement (a successful
	// migration leaves nothing to see).
	singles := []clustering.Cluster{
		{Rep: 1, Members: []clustering.ThreadKey{1}},
		{Rep: 2, Members: []clustering.ThreadKey{2}},
	}
	if got := clusteringAgreement(a, singles, 2); got != 1 {
		t.Errorf("singleton follow-up = %v, want vacuous 1", got)
	}
}

func TestFilterForSharedWithinProcess(t *testing.T) {
	m := buildGroupedMachine(t, sched.PolicyClustered, 2, 2, 11)
	cfg := testEngineConfig()
	cfg.ProcessOf = func(id sched.ThreadID) int { return int(id) % 2 }
	e, err := New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.filterFor(0) != e.filterFor(2) {
		t.Error("threads of one process must share a filter")
	}
	if e.filterFor(0) == e.filterFor(1) {
		t.Error("threads of different processes must have distinct filters")
	}
	// Single-process engines share the one filter.
	e2, _ := New(m, testEngineConfig())
	if e2.filterFor(0) != e2.filterFor(99) {
		t.Error("single-process engine must use one filter for all threads")
	}
}

func TestClusteringThresholdRejectsStrangers(t *testing.T) {
	// A direct check on clusterAll with processes: identical shMap entry
	// indices in different processes must not merge, because each process
	// gets its own clustering pass. Each process has 5 threads: 0 and 1
	// share entry A, 2 and 3 share entry B, 4 is noise — so shared
	// entries stay below the global-mask majority.
	m := buildGroupedMachine(t, sched.PolicyClustered, 2, 2, 12)
	cfg := testEngineConfig()
	cfg.ProcessOf = func(id sched.ThreadID) int { return int(id) / 5 }
	e, _ := New(m, cfg)
	mk := func(entry int) *clustering.ShMap {
		sm := clustering.NewShMap(cfg.ShMapEntries)
		for i := 0; i < 250; i++ {
			sm.Increment(entry)
		}
		return sm
	}
	for proc := 0; proc < 2; proc++ {
		base := clustering.ThreadKey(proc * 5)
		// Both processes use the SAME entry indices.
		e.shmaps[base+0], e.shmaps[base+1] = mk(7), mk(7)
		e.shmaps[base+2], e.shmaps[base+3] = mk(9), mk(9)
		e.shmaps[base+4] = mk(int(40 + base))
	}
	clusters := e.clusterAll()
	for _, c := range clusters {
		for _, tk := range c.Members {
			if cfg.ProcessOf(sched.ThreadID(tk)) != cfg.ProcessOf(sched.ThreadID(c.Rep)) {
				t.Fatalf("cluster %v crosses processes", c.Members)
			}
		}
	}
	big := 0
	for _, c := range clusters {
		if c.Size() == 2 {
			big++
		}
	}
	if big != 4 {
		t.Errorf("2-thread clusters = %d, want 4 (two per process)", big)
	}
}
