package core

import (
	"context"
	"errors"
	"testing"

	"threadcluster/internal/errs"
	"threadcluster/internal/sched"
)

func TestSnapshotTracksPhases(t *testing.T) {
	m := buildGroupedMachine(t, sched.PolicyClustered, 2, 4, 31)
	e, err := New(m, testEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Install(); err != nil {
		t.Fatal(err)
	}

	s := e.Snapshot()
	if s.Phase != PhaseMonitoring {
		t.Errorf("initial phase = %v, want monitoring", s.Phase)
	}
	if s.Clusters != nil {
		t.Error("clusters should be nil before the first detection")
	}

	e.ForceDetection()
	m.RunRoundsCtx(context.Background(), 40)
	s = e.Snapshot()
	if s.Phase != PhaseDetecting {
		t.Errorf("phase = %v, want detecting", s.Phase)
	}
	if s.SamplesRead == 0 {
		t.Error("detecting snapshot should show sampling progress")
	}
	if s.TargetSamples != testEngineConfig().TargetSamples {
		t.Errorf("TargetSamples = %d, want %d", s.TargetSamples, testEngineConfig().TargetSamples)
	}

	for r := 0; r < 4000 && e.Clusters() == nil; r += 20 {
		m.RunRoundsCtx(context.Background(), 20)
	}
	if e.Clusters() == nil {
		t.Fatal("detection never finished")
	}
	s = e.Snapshot()
	if s.Activations == 0 {
		t.Error("activations should count the forced detection")
	}
	if len(s.Clusters) == 0 {
		t.Error("post-detection snapshot should carry clusters")
	}
	total := 0
	for _, c := range s.Clusters {
		if c.Size != len(c.Members) {
			t.Errorf("cluster size %d != member count %d", c.Size, len(c.Members))
		}
		for i := 1; i < len(c.Members); i++ {
			if c.Members[i-1] >= c.Members[i] {
				t.Error("cluster members should be sorted")
			}
		}
		total += c.Size
	}
	if total != 8 {
		t.Errorf("clusters cover %d threads, want 8", total)
	}
}

// TestSnapshotIsValueCopy: mutating the machine after Snapshot must not
// change an already-taken snapshot.
func TestSnapshotIsValueCopy(t *testing.T) {
	m := buildGroupedMachine(t, sched.PolicyClustered, 2, 4, 32)
	e, _ := New(m, testEngineConfig())
	_ = e.Install()
	before := e.Snapshot()
	e.ForceDetection()
	m.RunRoundsCtx(context.Background(), 100)
	if before.Phase != PhaseMonitoring || before.SamplesRead != 0 {
		t.Error("earlier snapshot mutated by later simulation")
	}
}

func TestEngineMetricsOnMachineRegistry(t *testing.T) {
	m := buildGroupedMachine(t, sched.PolicyClustered, 2, 4, 33)
	e, _ := New(m, testEngineConfig())
	_ = e.Install()
	e.ForceDetection()
	for r := 0; r < 4000 && e.Clusters() == nil; r += 20 {
		m.RunRoundsCtx(context.Background(), 20)
	}
	if e.Clusters() == nil {
		t.Fatal("detection never finished")
	}
	s := m.SnapshotMetrics()
	if got := s.Counter(MetricActivations, nil); got == 0 {
		t.Errorf("%s = %d, want > 0", MetricActivations, got)
	}
	if got := s.Counter(MetricClusterings, nil); got == 0 {
		t.Errorf("%s = %d, want > 0", MetricClusterings, got)
	}
	if got := s.Counter(MetricSamplesRead, nil); got == 0 {
		t.Errorf("%s = %d, want > 0", MetricSamplesRead, got)
	}
	if got := s.Gauge(MetricClusters, nil); got == 0 {
		t.Errorf("%s = %v, want > 0", MetricClusters, got)
	}
}

func TestInstallTwiceIsSentinel(t *testing.T) {
	m := buildGroupedMachine(t, sched.PolicyClustered, 2, 2, 34)
	e, _ := New(m, testEngineConfig())
	if err := e.Install(); err != nil {
		t.Fatal(err)
	}
	if err := e.Install(); !errors.Is(err, errs.ErrAlreadyInstalled) {
		t.Errorf("second Install err = %v, want ErrAlreadyInstalled", err)
	}
	if _, err := New(nil, DefaultConfig()); !errors.Is(err, errs.ErrBadConfig) {
		t.Errorf("New(nil) err = %v, want ErrBadConfig", err)
	}
}
