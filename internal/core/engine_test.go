package core

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"threadcluster/internal/clustering"
	"threadcluster/internal/memory"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
	"threadcluster/internal/topology"
)

// groupSharer reads/writes a group-shared scoreboard plus private data.
type groupSharer struct {
	rng     *rand.Rand
	private memory.Region
	shared  memory.Region
	ratio   float64
}

func (g *groupSharer) Next() sim.MemRef {
	if g.rng.Float64() < g.ratio {
		lines := g.shared.Size / memory.LineSize
		off := uint64(g.rng.Intn(int(lines))) * memory.LineSize
		return sim.MemRef{Addr: g.shared.At(off), Write: g.rng.Intn(3) == 0, Insts: 8, Ops: 1}
	}
	lines := g.private.Size / memory.LineSize
	off := uint64(g.rng.Intn(int(lines))) * memory.LineSize
	return sim.MemRef{Addr: g.private.At(off), Write: false, Insts: 8, Ops: 1}
}

// buildGroupedMachine creates nGroups*perGroup threads; thread i belongs to
// group i%nGroups (interleaved so any naive placement scatters groups).
func buildGroupedMachine(t *testing.T, policy sched.Policy, nGroups, perGroup int, seed int64) *sim.Machine {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Policy = policy
	cfg.QuantumCycles = 20_000
	cfg.Seed = seed
	m, err := sim.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	arena := memory.NewDefaultArena()
	shared := make([]memory.Region, nGroups)
	for g := range shared {
		shared[g] = arena.MustAlloc(16*memory.LineSize, 0) // small, hot scoreboard
	}
	for i := 0; i < nGroups*perGroup; i++ {
		g := i % nGroups
		gen := &groupSharer{
			rng:     rand.New(rand.NewSource(seed*1000 + int64(i))),
			private: arena.MustAlloc(64<<10, 0),
			shared:  shared[g],
			ratio:   0.4,
		}
		if err := m.AddThread(&sim.Thread{ID: sched.ThreadID(i), Gen: gen, Partition: g}); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

// testEngineConfig returns paper parameters scaled to fast simulations.
func testEngineConfig() Config {
	cfg := DefaultConfig()
	cfg.MonitorWindow = 200_000
	cfg.ActivationFraction = 0.05
	cfg.TargetSamples = 30_000
	cfg.SamplingInterval = 5
	return cfg
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, DefaultConfig()); err == nil {
		t.Error("nil machine should fail")
	}
	m := buildGroupedMachine(t, sched.PolicyClustered, 2, 2, 1)
	bad := DefaultConfig()
	bad.PMUSlot = 99
	if _, err := New(m, bad); err == nil {
		t.Error("bad PMU slot should fail")
	}
	e, err := New(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Defaults filled in.
	if e.cfg.ShMapEntries != clustering.DefaultEntries || e.cfg.SamplingInterval == 0 {
		t.Error("zero config should get defaults")
	}
}

func TestInstallTwiceFails(t *testing.T) {
	m := buildGroupedMachine(t, sched.PolicyClustered, 2, 2, 1)
	e, _ := New(m, testEngineConfig())
	if err := e.Install(); err != nil {
		t.Fatal(err)
	}
	if err := e.Install(); err == nil {
		t.Error("double install should fail")
	}
}

func TestMonitoringDoesNotActivateOnPrivateWork(t *testing.T) {
	// All threads on private data: no remote stalls, engine must stay in
	// monitoring forever.
	cfg := sim.DefaultConfig()
	cfg.Policy = sched.PolicyClustered
	cfg.QuantumCycles = 20_000
	m, _ := sim.NewMachine(cfg)
	arena := memory.NewDefaultArena()
	for i := 0; i < 8; i++ {
		gen := &groupSharer{
			rng:     rand.New(rand.NewSource(int64(i))),
			private: arena.MustAlloc(64<<10, 0),
			shared:  arena.MustAlloc(16*memory.LineSize, 0), // unique per thread
			ratio:   0,
		}
		_ = m.AddThread(&sim.Thread{ID: sched.ThreadID(i), Gen: gen})
	}
	e, _ := New(m, testEngineConfig())
	if err := e.Install(); err != nil {
		t.Fatal(err)
	}
	m.RunRoundsCtx(context.Background(), 100)
	if e.Activations() != 0 {
		t.Errorf("engine activated %d times on a private workload", e.Activations())
	}
	if e.Phase() != PhaseMonitoring {
		t.Errorf("phase = %v, want monitoring", e.Phase())
	}
}

func TestActivationOnSharingWorkload(t *testing.T) {
	m := buildGroupedMachine(t, sched.PolicyClustered, 2, 8, 3)
	e, _ := New(m, testEngineConfig())
	if err := e.Install(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 400 && e.Activations() == 0; r += 10 {
		m.RunRoundsCtx(context.Background(), 10)
	}
	if e.Activations() == 0 {
		t.Fatalf("engine never activated; remote fraction = %.4f", m.Breakdown().RemoteFraction())
	}
}

func TestFullCycleClustersMatchGroundTruth(t *testing.T) {
	m := buildGroupedMachine(t, sched.PolicyClustered, 2, 8, 4)
	cfg := testEngineConfig()
	e, _ := New(m, cfg)
	if err := e.Install(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3000 && e.Clusters() == nil; r += 20 {
		m.RunRoundsCtx(context.Background(), 20)
	}
	clusters := e.Clusters()
	if clusters == nil {
		t.Fatalf("detection never completed (phase=%v, samples=%d)", e.Phase(), e.SamplesRead())
	}

	truth := make(map[clustering.ThreadKey]int)
	for _, th := range m.Threads() {
		truth[clustering.ThreadKey(th.ID)] = th.Partition
	}
	if p := clustering.Purity(clusters, truth); p < 0.9 {
		t.Errorf("cluster purity = %.3f, want >= 0.9 (clusters: %+v)", p, clusters)
	}
	// The two groups must land in at least two real clusters.
	big := 0
	for _, c := range clusters {
		if c.Size() >= 4 {
			big++
		}
	}
	if big < 2 {
		t.Errorf("found %d substantial clusters, want >= 2", big)
	}
}

func TestMigrationCoLocatesClustersAndBalancesChips(t *testing.T) {
	m := buildGroupedMachine(t, sched.PolicyClustered, 2, 8, 5)
	e, _ := New(m, testEngineConfig())
	_ = e.Install()
	for r := 0; r < 3000 && e.MigrationsDone() == 0; r += 20 {
		m.RunRoundsCtx(context.Background(), 20)
	}
	if e.MigrationsDone() == 0 {
		t.Fatal("no migration happened")
	}
	s := m.Scheduler()
	// Chips balanced: 16 threads, 2 chips -> 8 each.
	load := s.ChipLoad()
	if load[0] != 8 || load[1] != 8 {
		t.Errorf("chip load = %v, want [8 8]", load)
	}
	// Each detected cluster sits on one chip.
	for ci, c := range e.Clusters() {
		if c.Size() < 2 {
			continue
		}
		chips := make(map[int]int)
		for _, tk := range c.Members {
			chip, ok := s.ChipOf(sched.ThreadID(tk))
			if !ok {
				t.Fatalf("cluster member %d unknown to scheduler", tk)
			}
			chips[chip]++
		}
		if len(chips) != 1 {
			t.Errorf("cluster %d spread over chips %v, want one chip", ci, chips)
		}
	}
}

func TestClusteringReducesRemoteStalls(t *testing.T) {
	// The headline effect (Figure 6): with the engine on, remote stalls
	// drop well below the engine-off run under identical workloads.
	if testing.Short() {
		t.Skip("statistical headline test needs full run lengths; covered by the full suite")
	}
	runFrac := func(withEngine bool) float64 {
		m := buildGroupedMachine(t, sched.PolicyClustered, 2, 8, 6)
		var e *Engine
		if withEngine {
			e, _ = New(m, testEngineConfig())
			if err := e.Install(); err != nil {
				t.Fatal(err)
			}
		}
		// Warm up / let the engine do its work.
		m.RunRoundsCtx(context.Background(), 1500)
		if withEngine && e.MigrationsDone() == 0 {
			t.Fatalf("engine made no migrations (phase %v, samples %d)", e.Phase(), e.SamplesRead())
		}
		// Measure a clean interval.
		m.ResetMetrics()
		m.RunRoundsCtx(context.Background(), 500)
		return m.Breakdown().RemoteFraction()
	}
	off := runFrac(false)
	on := runFrac(true)
	if off <= 0 {
		t.Fatal("baseline produced no remote stalls; workload broken")
	}
	if on > off*0.6 {
		t.Errorf("engine should cut remote stalls by >40%%: off=%.4f on=%.4f", off, on)
	}
}

func TestForceDetection(t *testing.T) {
	m := buildGroupedMachine(t, sched.PolicyClustered, 2, 4, 7)
	e, _ := New(m, testEngineConfig())
	_ = e.Install()
	e.ForceDetection()
	if e.Phase() != PhaseDetecting {
		t.Fatalf("phase = %v, want detecting", e.Phase())
	}
	if e.Activations() != 1 {
		t.Errorf("activations = %d, want 1", e.Activations())
	}
	// Idempotent while already detecting.
	e.ForceDetection()
	if e.Activations() != 1 {
		t.Error("ForceDetection while detecting should be a no-op")
	}
}

func TestDetectionCollectsSamplesAndCostsCycles(t *testing.T) {
	m := buildGroupedMachine(t, sched.PolicyClustered, 2, 8, 8)
	cfg := testEngineConfig()
	e, _ := New(m, cfg)
	_ = e.Install()
	e.ForceDetection()
	m.RunRoundsCtx(context.Background(), 200)
	if e.SamplesRead() == 0 {
		t.Fatal("no samples read during detection")
	}
	if e.SamplesAdmitted() == 0 {
		t.Fatal("no samples admitted by the filter")
	}
	if m.OverheadCycles() == 0 {
		t.Error("sampling interrupts should cost cycles")
	}
	if len(e.ShMaps()) == 0 {
		t.Error("shMaps should exist for sampled threads")
	}
}

func TestDetectionEndsAndRecordsTrackingTime(t *testing.T) {
	m := buildGroupedMachine(t, sched.PolicyClustered, 2, 8, 9)
	cfg := testEngineConfig()
	cfg.TargetSamples = 5_000
	e, _ := New(m, cfg)
	_ = e.Install()
	e.ForceDetection()
	for r := 0; r < 2000 && e.Phase() == PhaseDetecting; r += 10 {
		m.RunRoundsCtx(context.Background(), 10)
	}
	if e.Phase() != PhaseMonitoring {
		t.Fatalf("detection never finished (samples=%d)", e.SamplesRead())
	}
	if e.LastDetectionCycles() == 0 {
		t.Error("tracking time should be recorded")
	}
	if e.SamplesRead() < cfg.TargetSamples {
		t.Errorf("finished with %d samples, want >= %d", e.SamplesRead(), cfg.TargetSamples)
	}
}

func TestSamplingRateControlsTrackingTimeAndOverhead(t *testing.T) {
	// Figure 8's trade-off: a higher capture fraction (smaller N) finishes
	// detection sooner but burns more overhead cycles per unit time.
	run := func(interval uint64) (tracking uint64, overheadFrac float64) {
		m := buildGroupedMachine(t, sched.PolicyClustered, 2, 8, 10)
		cfg := testEngineConfig()
		cfg.SamplingInterval = interval
		cfg.SamplingJitter = 0
		cfg.TargetSamples = 4_000
		e, _ := New(m, cfg)
		_ = e.Install()
		e.ForceDetection()
		for r := 0; r < 5000 && e.Phase() == PhaseDetecting; r += 10 {
			m.RunRoundsCtx(context.Background(), 10)
		}
		if e.Phase() == PhaseDetecting {
			t.Fatalf("interval %d: detection did not finish", interval)
		}
		b := m.Breakdown()
		return e.LastDetectionCycles(), float64(m.OverheadCycles()) / float64(b.Cycles)
	}
	fastTrack, fastOver := run(2)  // capture 1 in 2
	slowTrack, slowOver := run(20) // capture 1 in 20
	if fastTrack >= slowTrack {
		t.Errorf("higher rate should finish sooner: N=2 took %d, N=20 took %d", fastTrack, slowTrack)
	}
	if fastOver <= slowOver {
		t.Errorf("higher rate should cost more overhead: N=2 %.5f, N=20 %.5f", fastOver, slowOver)
	}
}

// TestGlobalSharingGroupIsIgnored documents a deliberate design property:
// when ONE structure is shared by every thread, the global-sharing mask
// removes it from every shMap (Section 4.4.2) and the engine refuses to
// form a cluster — global sharing is exactly the case the paper's
// predecessors (Thekkath & Eggers) failed on, and placement cannot help
// it anyway.
func TestGlobalSharingGroupIsIgnored(t *testing.T) {
	m := buildGroupedMachine(t, sched.PolicyClustered, 1, 16, 21)
	cfg := testEngineConfig()
	cfg.TargetSamples = 8_000
	e, _ := New(m, cfg)
	if err := e.Install(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 6000 && e.Activations() < 2; r += 20 {
		m.RunRoundsCtx(context.Background(), 20)
	}
	if e.Clusters() == nil {
		t.Fatalf("first detection never completed (samples %d)", e.SamplesRead())
	}
	for _, c := range e.Clusters() {
		if c.Size() >= e.cfg.MinClusterSize {
			t.Fatalf("globally shared workload produced a cluster of %d threads", c.Size())
		}
	}
	if e.MigrationsDone() != 0 {
		t.Errorf("engine migrated %d threads despite having no actionable clusters", e.MigrationsDone())
	}
}

// TestOversizedClusterIsNeutralized exercises the Section 4.5 capacity
// rule directly on the migration policy: a cluster too big for one chip
// is "neutralized by distributing its threads evenly among the chips".
func TestOversizedClusterIsNeutralized(t *testing.T) {
	m := buildGroupedMachine(t, sched.PolicyClustered, 2, 8, 22)
	e, _ := New(m, testEngineConfig())
	if err := e.Install(); err != nil {
		t.Fatal(err)
	}
	// Hand the migration policy a 12-thread cluster on a 2-chip machine
	// with 16 threads: capacity is 8, so the cluster must be spread.
	big := clustering.Cluster{Rep: 0}
	for i := 0; i < 12; i++ {
		big.Members = append(big.Members, clustering.ThreadKey(i))
	}
	e.migrate([]clustering.Cluster{big})
	if e.MigrationsDone() == 0 {
		t.Fatal("migration did nothing")
	}
	// The cluster's threads must span both chips roughly evenly.
	perChip := map[int]int{}
	for _, tk := range big.Members {
		chip, ok := m.Scheduler().ChipOf(sched.ThreadID(tk))
		if !ok {
			t.Fatalf("member %d unplaced", tk)
		}
		perChip[chip]++
	}
	if len(perChip) != 2 {
		t.Fatalf("oversized cluster was packed onto %d chip(s): %v", len(perChip), perChip)
	}
	diff := perChip[0] - perChip[1]
	if diff < 0 {
		diff = -diff
	}
	// The split adapts to the unclustered threads' pre-existing load;
	// what matters is that it is even-ish, not packed.
	if diff > 4 {
		t.Errorf("cluster spread = %v, want roughly even", perChip)
	}
	// Machine-wide balance holds.
	load := m.Scheduler().ChipLoad()
	if load[0] != 8 || load[1] != 8 {
		t.Errorf("chip load = %v, want [8 8]", load)
	}
}

// TestMonitoringOverheadNegligible verifies the Section 4.2 claim: "the
// overhead of monitoring stall breakdown is negligible since it is mostly
// done by the hardware PMU. As a result, we can afford to continuously
// monitor stall breakdown with no visible effect on system performance."
// In the monitoring phase the engine's overflow counters are disarmed, so
// it must burn zero interrupt cycles.
func TestMonitoringOverheadNegligible(t *testing.T) {
	m := buildGroupedMachine(t, sched.PolicyClustered, 2, 4, 23)
	cfg := testEngineConfig()
	cfg.ActivationFraction = 10 // never activate: stay monitoring forever
	e, _ := New(m, cfg)
	if err := e.Install(); err != nil {
		t.Fatal(err)
	}
	m.RunRoundsCtx(context.Background(), 300)
	if e.Phase() != PhaseMonitoring {
		t.Fatalf("phase = %v, want monitoring", e.Phase())
	}
	if m.OverheadCycles() != 0 {
		t.Errorf("monitoring burned %d overhead cycles, want 0", m.OverheadCycles())
	}
	// Throughput must equal an engine-less run exactly (same seed).
	m2 := buildGroupedMachine(t, sched.PolicyClustered, 2, 4, 23)
	m2.RunRoundsCtx(context.Background(), 300)
	if m.TotalOps() != m2.TotalOps() {
		t.Errorf("monitoring changed throughput: %d vs %d ops", m.TotalOps(), m2.TotalOps())
	}
}

func TestEngineWithNoThreads(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Policy = sched.PolicyClustered
	cfg.QuantumCycles = 20_000
	m, _ := sim.NewMachine(cfg)
	e, _ := New(m, testEngineConfig())
	if err := e.Install(); err != nil {
		t.Fatal(err)
	}
	// Must idle gracefully: no activation, no panic.
	m.RunRoundsCtx(context.Background(), 50)
	e.ForceDetection()
	m.RunRoundsCtx(context.Background(), 50)
	if e.SamplesRead() != 0 {
		t.Error("no threads should mean no samples")
	}
}

func TestReport(t *testing.T) {
	m := buildGroupedMachine(t, sched.PolicyClustered, 2, 4, 24)
	e, _ := New(m, testEngineConfig())
	_ = e.Install()
	r := e.Report()
	if !strings.Contains(r, "phase=monitoring") {
		t.Errorf("report missing phase: %s", r)
	}
	e.ForceDetection()
	m.RunRoundsCtx(context.Background(), 40)
	r = e.Report()
	if !strings.Contains(r, "detection:") {
		t.Errorf("detecting report missing sampling line: %s", r)
	}
	for r := 0; r < 4000 && e.Clusters() == nil; r += 20 {
		m.RunRoundsCtx(context.Background(), 20)
	}
	if e.Clusters() == nil {
		t.Fatal("detection never finished")
	}
	if !strings.Contains(e.Report(), "clusters (") {
		t.Errorf("post-clustering report missing clusters: %s", e.Report())
	}
}

// TestNiagaraSingleChipStaysIdle: on a single-chip machine (the Niagara
// case from the introduction) there are no remote caches, so the engine
// never has a reason to act.
func TestNiagaraSingleChipStaysIdle(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Topo = topology.NiagaraLike()
	cfg.Policy = sched.PolicyClustered
	cfg.QuantumCycles = 20_000
	m, err := sim.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	arena := memory.NewDefaultArena()
	shared := arena.MustAlloc(16*memory.LineSize, 0)
	for i := 0; i < 32; i++ {
		gen := &groupSharer{
			rng:     rand.New(rand.NewSource(int64(i))),
			private: arena.MustAlloc(32<<10, 0),
			shared:  shared,
			ratio:   0.5,
		}
		_ = m.AddThread(&sim.Thread{ID: sched.ThreadID(i), Gen: gen})
	}
	e, _ := New(m, testEngineConfig())
	_ = e.Install()
	m.RunRoundsCtx(context.Background(), 200)
	if e.Activations() != 0 {
		t.Errorf("engine activated %d times on a single-chip machine", e.Activations())
	}
	if got := m.Breakdown().RemoteStalls(); got != 0 {
		t.Errorf("single-chip machine reported %d remote stall cycles", got)
	}
}

func TestPhaseStrings(t *testing.T) {
	if PhaseMonitoring.String() != "monitoring" || PhaseDetecting.String() != "detecting" {
		t.Error("phase strings wrong")
	}
	if Phase(9).String() == "" {
		t.Error("unknown phase should render")
	}
}
