package core

import (
	"fmt"
	"sort"
	"strings"

	"threadcluster/internal/clustering"
	"threadcluster/internal/sched"
)

// Engine metric names, registered on the machine's registry at Install.
// The four-phase pipeline (activation -> sampling -> clustering ->
// migration) is observable as the counter chain: activations, samples
// read/admitted, clusterings, migrations.
const (
	// MetricPhase is the engine's current phase as a gauge
	// (0 = monitoring, 1 = detecting).
	MetricPhase = "engine_phase"
	// MetricActivations counts monitoring->detection transitions.
	MetricActivations = "engine_activations_total"
	// MetricSamplesRead / MetricSamplesAdmitted count overflow samples
	// across all detection phases (cumulative, unlike SamplesRead).
	MetricSamplesRead     = "engine_samples_read_total"
	MetricSamplesAdmitted = "engine_samples_admitted_total"
	// MetricClusterings counts completed clustering passes.
	MetricClusterings = "engine_clusterings_total"
	// MetricMigrations counts threads the engine placed.
	MetricMigrations = "engine_migrations_total"
	// MetricClusters is the size of the latest clustering result.
	MetricClusters = "engine_clusters"
	// MetricDetectionCycles is the duration of the last detection phase.
	MetricDetectionCycles = "engine_detection_cycles"
	// MetricWindowRemoteFraction is the current monitoring-window remote
	// stall share the activation rule evaluates.
	MetricWindowRemoteFraction = "engine_window_remote_fraction"
	// MetricStreamEvents / MetricStreamReclusters / MetricStreamDrift
	// describe the incremental clusterer; registered only when
	// Config.Streaming is set. Reclusters staying far below Clusterings
	// is the streaming path working: most detections are absorbed as
	// deltas, and only sharing-pattern drift pays for a batch pass.
	MetricStreamEvents     = "engine_stream_events_total"
	MetricStreamReclusters = "engine_stream_reclusters_total"
	MetricStreamDrift      = "engine_stream_drift"
)

// ClusterSnapshot is one detected cluster at snapshot time.
type ClusterSnapshot struct {
	// Size is the member count.
	Size int
	// Members are the cluster's threads, sorted.
	Members []clustering.ThreadKey
	// Chips maps chip -> how many members currently run there.
	Chips map[int]int
}

// EngineSnapshot is the engine's structured state: everything Report
// prints, as data. Snapshots are value copies — safe to retain across
// further simulation.
type EngineSnapshot struct {
	// Phase is the current engine phase.
	Phase Phase
	// Activations counts monitoring->detection transitions so far.
	Activations uint64
	// Migrations counts threads placed by the engine so far.
	Migrations uint64

	// SamplesRead and SamplesAdmitted cover the current (or most recent)
	// detection phase; TargetSamples is its completion threshold.
	SamplesRead     int
	SamplesAdmitted int
	TargetSamples   int
	// FilterClaimed / FilterEntries describe the process-wide shMap
	// filter's occupancy.
	FilterClaimed int
	FilterEntries int

	// WindowRemoteFraction is the remote-stall share of the current
	// monitoring window; ActivationFraction is the threshold it is
	// compared against.
	WindowRemoteFraction float64
	ActivationFraction   float64

	// LastDetectionCycles is how long the last completed detection phase
	// took (0 before the first).
	LastDetectionCycles uint64

	// Stability is the Rand-index agreement between the two most recent
	// clusterings; StabilityKnown reports whether two have happened.
	Stability      float64
	StabilityKnown bool

	// MinClusterSize is the threshold below which clusters are treated
	// as unclustered filler.
	MinClusterSize int
	// Clusters is the latest clustering result (nil before the first
	// detection completes), including sub-threshold clusters.
	Clusters []ClusterSnapshot

	// Streaming reports whether the incremental clusterer is attached;
	// the Stream* fields are zero when it is not.
	Streaming bool
	// StreamMode is the incremental representation ("dense" or "sketch").
	StreamMode string
	// StreamEvents counts churn/delta events the clusterer absorbed.
	StreamEvents uint64
	// StreamReclusters counts drift-triggered full batch reclusters.
	StreamReclusters uint64
	// StreamDrift is the current windowed mean centroid displacement.
	StreamDrift float64
}

// Snapshot captures the engine's structured state. Report is rendered
// from exactly this data.
func (e *Engine) Snapshot() EngineSnapshot {
	s := EngineSnapshot{
		Phase:                e.phase,
		Activations:          e.activations,
		Migrations:           e.migrationsDone,
		SamplesRead:          e.samplesRead,
		SamplesAdmitted:      e.samplesAdmitted,
		TargetSamples:        e.cfg.TargetSamples,
		FilterClaimed:        e.filter.Claimed(),
		FilterEntries:        e.filter.Len(),
		WindowRemoteFraction: e.windowRemoteFraction(),
		ActivationFraction:   e.cfg.ActivationFraction,
		LastDetectionCycles:  e.lastDetectTime,
		Stability:            e.lastStability,
		StabilityKnown:       e.stabilityKnown,
		MinClusterSize:       e.cfg.MinClusterSize,
	}
	if e.stream != nil {
		s.Streaming = true
		s.StreamMode = e.stream.Mode().String()
		s.StreamEvents = e.stream.Events()
		s.StreamReclusters = e.stream.Reclusters()
		s.StreamDrift = e.stream.Drift()
	}
	if e.clusters != nil {
		s.Clusters = make([]ClusterSnapshot, 0, len(e.clusters))
		for _, c := range e.clusters {
			cs := ClusterSnapshot{
				Size:    c.Size(),
				Members: append([]clustering.ThreadKey(nil), c.Members...),
				Chips:   make(map[int]int),
			}
			sort.Slice(cs.Members, func(i, j int) bool { return cs.Members[i] < cs.Members[j] })
			for _, tk := range cs.Members {
				if chip, ok := e.m.Scheduler().ChipOf(sched.ThreadID(tk)); ok {
					cs.Chips[chip]++
				}
			}
			s.Clusters = append(s.Clusters, cs)
		}
	}
	return s
}

// Report summarizes the engine's state for operators: phase, activation
// history, sampling progress and the current clustering, with each
// cluster's chip placement. It is a rendering of Snapshot.
func (e *Engine) Report() string {
	s := e.Snapshot()
	var sb strings.Builder
	fmt.Fprintf(&sb, "thread-clustering engine: phase=%s activations=%d migrations=%d\n",
		s.Phase, s.Activations, s.Migrations)
	fmt.Fprintf(&sb, "  window: remote fraction %.2f%% (threshold %.2f%%)\n",
		100*s.WindowRemoteFraction, 100*s.ActivationFraction)
	if s.Phase == PhaseDetecting {
		fmt.Fprintf(&sb, "  detection: %d/%d samples read, %d admitted, filter %d/%d entries claimed\n",
			s.SamplesRead, s.TargetSamples, s.SamplesAdmitted, s.FilterClaimed, s.FilterEntries)
	}
	if s.Streaming {
		fmt.Fprintf(&sb, "  streaming: mode=%s events=%d reclusters=%d drift=%.3f\n",
			s.StreamMode, s.StreamEvents, s.StreamReclusters, s.StreamDrift)
	}
	if s.Clusters != nil {
		fmt.Fprintf(&sb, "  clusters (%d):\n", len(s.Clusters))
		for i, c := range s.Clusters {
			if c.Size < s.MinClusterSize {
				continue
			}
			fmt.Fprintf(&sb, "    #%d: %d threads, chips %v\n", i, c.Size, c.Chips)
		}
	}
	return sb.String()
}

// registerMetrics publishes the engine's series on the machine's
// registry; called once from Install.
func (e *Engine) registerMetrics() {
	r := e.m.Metrics()
	r.RegisterGaugeFunc(MetricPhase, nil, func() float64 { return float64(e.phase) })
	r.RegisterCounterFunc(MetricActivations, nil, func() uint64 { return e.activations })
	r.RegisterCounterFunc(MetricSamplesRead, nil, func() uint64 { return e.cumSamplesRead })
	r.RegisterCounterFunc(MetricSamplesAdmitted, nil, func() uint64 { return e.cumSamplesAdmitted })
	r.RegisterCounterFunc(MetricClusterings, nil, func() uint64 { return e.clusterings })
	r.RegisterCounterFunc(MetricMigrations, nil, func() uint64 { return e.migrationsDone })
	r.RegisterGaugeFunc(MetricClusters, nil, func() float64 { return float64(len(e.clusters)) })
	r.RegisterGaugeFunc(MetricDetectionCycles, nil, func() float64 { return float64(e.lastDetectTime) })
	r.RegisterGaugeFunc(MetricWindowRemoteFraction, nil, e.windowRemoteFraction)
	if e.stream != nil {
		// Closures read e.stream at scrape time: RestoreState swaps in a
		// freshly decoded clusterer, and the series must follow it.
		r.RegisterCounterFunc(MetricStreamEvents, nil, func() uint64 { return e.stream.Events() })
		r.RegisterCounterFunc(MetricStreamReclusters, nil, func() uint64 { return e.stream.Reclusters() })
		r.RegisterGaugeFunc(MetricStreamDrift, nil, func() float64 { return e.stream.Drift() })
	}
}
