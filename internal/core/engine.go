// Package core implements the paper's contribution: the iterative
// four-phase thread-clustering scheme of Section 4.
//
//  1. Monitoring stall breakdown: hardware counters watch what share of
//     CPU cycles is lost to remote cache accesses; the scheme activates
//     only when that share exceeds a threshold per monitoring window
//     (the paper uses 20% per billion cycles).
//  2. Detecting sharing patterns: a PMU overflow exception is programmed
//     on the remote-cache-access event so that one in N remote accesses
//     is sampled (temporal sampling, with a small random readjustment of
//     N); the sampled data address — read from the continuous-sampling
//     register exactly as Section 5.2.1 composes it on the Power5 — is
//     pushed through the process-wide shMap filter (spatial sampling) and
//     recorded in the interrupted thread's shMap.
//  3. Thread clustering: once enough samples are collected, shMaps are
//     compared with the dot-product similarity metric and grouped by the
//     one-pass heuristic of Section 4.4.2.
//  4. Thread migration: clusters are assigned to chips largest-first,
//     keeping the chips load-balanced; threads within a chip are spread
//     uniformly at random over its cores and hardware contexts
//     (Section 4.5).
//
// After migration the engine returns to monitoring, so phase changes in
// the workload re-trigger detection and re-clustering automatically.
package core

import (
	"fmt"
	"sort"

	"threadcluster/internal/clustering"
	"threadcluster/internal/errs"
	"threadcluster/internal/memory"
	"threadcluster/internal/pmu"
	"threadcluster/internal/rng"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
	"threadcluster/internal/topology"
)

// Phase is the engine's state.
type Phase int

const (
	// PhaseMonitoring is the cheap steady state: only the stall breakdown
	// is watched.
	PhaseMonitoring Phase = iota
	// PhaseDetecting is the sampling state: remote-access overflow
	// interrupts are live and shMaps are filling.
	PhaseDetecting
)

func (p Phase) String() string {
	switch p {
	case PhaseMonitoring:
		return "monitoring"
	case PhaseDetecting:
		return "detecting"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// Config parameterizes the engine. The defaults are the paper's values;
// experiments scale the window and sample target to simulated time.
type Config struct {
	// ActivationFraction activates detection when remote-access stalls
	// exceed this fraction of cycles in a monitoring window (paper: 0.20).
	ActivationFraction float64
	// MonitorWindow is the monitoring window length in cycles (paper: one
	// billion).
	MonitorWindow uint64
	// SamplingInterval N records one in N remote cache accesses
	// (temporal sampling; paper's balanced choice is N=10).
	SamplingInterval uint64
	// SamplingJitter constantly readjusts N by a small random value to
	// avoid undesired repeated patterns (Section 4.3.1). Zero disables.
	SamplingJitter uint64
	// TargetSamples ends the detection phase once this many samples have
	// been read (paper: roughly one million).
	TargetSamples int
	// ShMapEntries is the per-thread vector size (paper: 256).
	ShMapEntries int
	// FilterQuota caps the filter entries one thread may claim
	// (Section 4.3.1's starvation limit). Zero means ShMapEntries/4.
	FilterQuota int
	// Clustering carries the similarity threshold, noise floor, global
	// fraction and metric.
	Clustering clustering.Config
	// InterruptCost is the cycles charged per sampling interrupt
	// (exception entry, SDAR read, filter/shMap update, return). This is
	// the source of the Figure 8 overhead curve.
	InterruptCost uint64
	// PMUSlot is the physical counter slot used for the remote-access
	// overflow event.
	PMUSlot int
	// MinClusterSize treats smaller detected clusters as unclustered
	// filler during migration (default 2: singletons carry no sharing
	// signal).
	MinClusterSize int
	// SettleCycles suspends monitoring for this long after a migration so
	// the one-time burst of remote accesses caused by cache and TLB
	// context reloading (Section 7.2) does not immediately re-trigger
	// detection. Zero defaults to one monitoring window.
	SettleCycles uint64
	// NUMA enables the Section 8 extension: misses satisfied from remote
	// memory are sampled alongside remote cache accesses (a second
	// overflow counter on the remote-memory miss event), and the
	// activation rule counts remote-memory stalls too.
	NUMA bool
	// NodeOf, when set in NUMA mode, gives the engine the OS's
	// page-to-node mapping. Migration then prefers placing each cluster
	// on the chip where the majority of its sampled lines are homed, so
	// threads end up next to their data as well as next to each other.
	NodeOf func(memory.Addr) int
	// IntraChipSpread, when true, replaces the paper's uniformly random
	// intra-chip placement (Section 4.5) with SMT-aware cores-first
	// placement: new threads go to the least-loaded core of the chip so
	// SMT siblings stay free while whole cores are idle. An ablation for
	// the intra-chip design choice the paper leaves to the Section 2
	// co-scheduling literature.
	IntraChipSpread bool
	// ProcessOf maps a thread to its process. When set, each process
	// gets its own shMap filter ("all threads of a process use the same
	// shMap filter", Section 4.3.1) and clustering runs within each
	// process — shMap entry indices of different processes name
	// different cache lines and must never be compared. Nil models a
	// single process.
	ProcessOf func(sched.ThreadID) int
	// Streaming, when non-nil, replaces the from-scratch one-pass per
	// detection with the incremental clusterer: each detection's shMaps
	// feed a clustering.Engine as churn/sharing-delta events, and a full
	// batch recluster runs only when its sharing-drift detector fires.
	// The embedded Clustering field is overwritten with this Config's
	// Clustering, so there is one source of truth for the similarity
	// parameters. Incompatible with ProcessOf: the incremental engine
	// keeps one global partition.
	Streaming *clustering.EngineConfig
	// Seed drives sampling jitter.
	Seed int64
}

// DefaultConfig returns the paper's parameter choices.
func DefaultConfig() Config {
	return Config{
		ActivationFraction: 0.20,
		MonitorWindow:      1_000_000_000,
		SamplingInterval:   10,
		SamplingJitter:     3,
		TargetSamples:      1_000_000,
		ShMapEntries:       clustering.DefaultEntries,
		Clustering:         clustering.DefaultConfig(),
		InterruptCost:      250,
		PMUSlot:            pmu.NumPhysicalCounters - 1,
		MinClusterSize:     2,
	}
}

// Engine is the thread-clustering engine attached to one machine.
type Engine struct {
	cfg Config
	m   *sim.Machine //tclint:allow snapfields -- machine attachment; Install re-links it before RestoreSnapshot overlays state

	phase         Phase
	windowStart   uint64
	baseCycles    uint64
	baseRemote    uint64
	baseRemoteMem uint64

	shmaps  map[clustering.ThreadKey]*clustering.ShMap
	filter  *clustering.Filter         //tclint:allow snapfields -- aliases filters[0], whose section carries the data; RestoreState re-links it
	filters map[int]*clustering.Filter // per process, including 0
	rng     *rng.Rand

	stream    *clustering.Engine // incremental clusterer (Config.Streaming)
	streamCfg clustering.EngineConfig

	samplesRead        int
	samplesAdmitted    int
	cumSamplesRead     uint64 // across all detection phases (metrics)
	cumSamplesAdmitted uint64
	clusterings        uint64 // completed clustering passes
	clusters           []clustering.Cluster

	detectStart     uint64
	settleUntil     uint64 // monitoring suspended until this clock value
	lastDetectTime  uint64 // cycles the last detection phase took
	activations     uint64
	migrationsDone  uint64
	installed       bool
	clusterListener func([]clustering.Cluster)
	prevClusters    []clustering.Cluster
	lastStability   float64
	stabilityKnown  bool
}

// New creates an engine for the machine. Call Install to arm it.
func New(m *sim.Machine, cfg Config) (*Engine, error) {
	if m == nil {
		return nil, fmt.Errorf("core: machine is required: %w", errs.ErrBadConfig)
	}
	if cfg.ShMapEntries <= 0 {
		cfg.ShMapEntries = clustering.DefaultEntries
	}
	if cfg.FilterQuota <= 0 {
		cfg.FilterQuota = cfg.ShMapEntries / 4
	}
	if cfg.SamplingInterval == 0 {
		cfg.SamplingInterval = 10
	}
	if cfg.TargetSamples <= 0 {
		cfg.TargetSamples = 1_000_000
	}
	if cfg.MonitorWindow == 0 {
		cfg.MonitorWindow = 1_000_000_000
	}
	if cfg.PMUSlot < 0 || cfg.PMUSlot >= pmu.NumPhysicalCounters {
		return nil, fmt.Errorf("core: PMU slot %d out of range: %w", cfg.PMUSlot, errs.ErrBadConfig)
	}
	if cfg.MinClusterSize <= 0 {
		cfg.MinClusterSize = 2
	}
	filter, err := clustering.NewFilter(cfg.ShMapEntries, cfg.FilterQuota)
	if err != nil {
		return nil, err
	}
	var stream *clustering.Engine
	var streamCfg clustering.EngineConfig
	if cfg.Streaming != nil {
		if cfg.ProcessOf != nil {
			return nil, fmt.Errorf("core: streaming clustering keeps one global partition and cannot honor ProcessOf: %w", errs.ErrBadConfig)
		}
		streamCfg = *cfg.Streaming
		streamCfg.Clustering = cfg.Clustering
		if stream, err = clustering.NewEngine(streamCfg); err != nil {
			return nil, err
		}
	}
	return &Engine{
		cfg:       cfg,
		m:         m,
		phase:     PhaseMonitoring,
		shmaps:    make(map[clustering.ThreadKey]*clustering.ShMap),
		filter:    filter,
		filters:   map[int]*clustering.Filter{0: filter},
		stream:    stream,
		streamCfg: streamCfg,
		rng:       rng.New(cfg.Seed + 0x7C1),
	}, nil
}

// Install programs the PMUs and hooks the machine's scheduler tick. The
// engine starts in the monitoring phase with sampling disarmed.
func (e *Engine) Install() error {
	if e.installed {
		return fmt.Errorf("core: engine: %w", errs.ErrAlreadyInstalled)
	}
	for c := 0; c < e.m.Topology().NumCPUs(); c++ {
		cpu := topology.CPUID(c)
		p := e.m.PMU(cpu)
		// overflowAt 0 = armed but silent until detection starts.
		handler := e.sampleHandler(cpu)
		if err := p.Program(e.cfg.PMUSlot, pmu.EvRemoteAccess, 0, handler); err != nil {
			return err
		}
		if e.cfg.NUMA {
			// Section 8: also sample misses satisfied from remote memory.
			if err := p.Program(e.numaSlot(), pmu.EvMissRemoteMemory, 0, handler); err != nil {
				return err
			}
		}
	}
	e.m.OnTick(e.tick)
	if err := e.m.RegisterStateProvider(StateProviderName, sim.StateProvider{
		Save:    e.SaveState,
		Restore: e.RestoreState,
	}); err != nil {
		return err
	}
	e.windowStart = e.m.Clock()
	e.snapshotWindowBase()
	e.registerMetrics()
	e.installed = true
	return nil
}

// Phase returns the engine's current phase.
func (e *Engine) Phase() Phase { return e.phase }

// Clusters returns the most recent clustering result (nil before the
// first detection completes).
func (e *Engine) Clusters() []clustering.Cluster { return e.clusters }

// ShMaps returns the per-thread sharing signatures of the most recent (or
// in-progress) detection phase. The Figure 5 visualizer renders these.
func (e *Engine) ShMaps() map[clustering.ThreadKey]*clustering.ShMap { return e.shmaps }

// Filter returns the process-wide shMap filter.
func (e *Engine) Filter() *clustering.Filter { return e.filter }

// Activations returns how many times detection was triggered.
func (e *Engine) Activations() uint64 { return e.activations }

// Clusterings returns how many clustering passes have completed.
func (e *Engine) Clusterings() uint64 { return e.clusterings }

// SamplesRead returns overflow samples read in the current/last detection.
func (e *Engine) SamplesRead() int { return e.samplesRead }

// SamplesAdmitted returns samples that passed the shMap filter.
func (e *Engine) SamplesAdmitted() int { return e.samplesAdmitted }

// LastDetectionCycles returns how long the last completed detection phase
// lasted, in cycles (the Figure 8 "tracking time").
func (e *Engine) LastDetectionCycles() uint64 { return e.lastDetectTime }

// MigrationsDone returns how many cluster migrations were executed.
func (e *Engine) MigrationsDone() uint64 { return e.migrationsDone }

// OnClusters registers a listener invoked with each fresh clustering
// result, before migration.
func (e *Engine) OnClusters(f func([]clustering.Cluster)) { e.clusterListener = f }

// ForceDetection enters the detection phase immediately, regardless of the
// activation threshold. Experiments that study the detection machinery in
// isolation (Figures 5 and 8) use it.
func (e *Engine) ForceDetection() {
	if e.phase != PhaseDetecting {
		e.enterDetection()
	}
}

// sampleHandler builds the overflow handler for one CPU: the Section 5.2.1
// composition. It runs synchronously when the remote-access counter
// overflows; it reads the sampling register (which the hardware updates on
// every L1D miss), attributes the line to the interrupted thread, and
// pushes it through the spatial filter.
func (e *Engine) sampleHandler(cpu topology.CPUID) pmu.OverflowHandler {
	return func(p *pmu.PMU) uint64 {
		if e.phase != PhaseDetecting {
			return 0
		}
		e.samplesRead++
		e.cumSamplesRead++
		s := p.ReadSDAR()
		th := e.m.RunningThread(cpu)
		if s.Valid && th != nil {
			key := clustering.ThreadKey(th.ID)
			if idx, ok := e.filterFor(th.ID).Admit(key, s.Line); ok {
				e.shmapFor(key).Increment(idx)
				e.samplesAdmitted++
				e.cumSamplesAdmitted++
			}
		}
		// Temporal sampling: constantly readjust N by a small random
		// value to avoid lockstep with periodic access patterns.
		if e.cfg.SamplingJitter > 0 {
			j := uint64(e.rng.Int63n(int64(2*e.cfg.SamplingJitter + 1)))
			n := e.cfg.SamplingInterval + j
			if n > e.cfg.SamplingJitter {
				n -= e.cfg.SamplingJitter
			}
			if n == 0 {
				n = 1
			}
			_ = p.SetOverflowThreshold(e.cfg.PMUSlot, n)
			if e.cfg.NUMA {
				_ = p.SetOverflowThreshold(e.numaSlot(), n)
			}
		}
		return e.cfg.InterruptCost
	}
}

// numaSlot is the physical counter used for remote-memory sampling in
// NUMA mode: the slot next to the remote-cache one.
func (e *Engine) numaSlot() int {
	if e.cfg.PMUSlot > 0 {
		return e.cfg.PMUSlot - 1
	}
	return e.cfg.PMUSlot + 1
}

// filterFor returns the thread's process-wide shMap filter, creating a
// fresh one the first time a process is seen.
func (e *Engine) filterFor(id sched.ThreadID) *clustering.Filter {
	if e.cfg.ProcessOf == nil {
		return e.filter
	}
	proc := e.cfg.ProcessOf(id)
	f, ok := e.filters[proc]
	if !ok {
		f, _ = clustering.NewFilter(e.cfg.ShMapEntries, e.cfg.FilterQuota)
		e.filters[proc] = f
	}
	return f
}

func (e *Engine) shmapFor(key clustering.ThreadKey) *clustering.ShMap {
	m, ok := e.shmaps[key]
	if !ok {
		m = clustering.NewShMap(e.cfg.ShMapEntries)
		e.shmaps[key] = m
	}
	return m
}

// tick is the engine's per-scheduling-round state machine.
func (e *Engine) tick(m *sim.Machine) {
	switch e.phase {
	case PhaseDetecting:
		if e.samplesRead >= e.cfg.TargetSamples {
			e.finishDetection()
		}
	case PhaseMonitoring:
		if m.Clock() < e.settleUntil {
			// Post-migration settling: let the reload burst pass, then
			// restart the window cleanly.
			e.windowStart = m.Clock()
			e.snapshotWindowBase()
			return
		}
		if m.Clock()-e.windowStart >= e.cfg.MonitorWindow {
			if e.windowRemoteFraction() > e.cfg.ActivationFraction {
				e.enterDetection()
			} else {
				e.windowStart = m.Clock()
				e.snapshotWindowBase()
			}
		}
	}
}

// windowRemoteFraction computes the share of cycles lost to remote cache
// accesses since the window began, machine-wide. In NUMA mode,
// remote-memory stalls count too (Section 8).
func (e *Engine) windowRemoteFraction() float64 {
	b := e.m.Breakdown()
	cycles := b.Cycles - e.baseCycles
	remote := b.RemoteStalls() - e.baseRemote
	if e.cfg.NUMA {
		remote += b.RemoteMemoryStalls() - e.baseRemoteMem
	}
	if cycles == 0 {
		return 0
	}
	return float64(remote) / float64(cycles)
}

func (e *Engine) snapshotWindowBase() {
	b := e.m.Breakdown()
	e.baseCycles = b.Cycles
	e.baseRemote = b.RemoteStalls()
	e.baseRemoteMem = b.RemoteMemoryStalls()
}

// enterDetection arms sampling and clears the previous detection state so
// previously victimized threads get another chance at filter entries.
func (e *Engine) enterDetection() {
	e.phase = PhaseDetecting
	e.activations++
	e.samplesRead = 0
	e.samplesAdmitted = 0
	e.shmaps = make(map[clustering.ThreadKey]*clustering.ShMap)
	for _, f := range e.filters {
		f.Reset()
	}
	e.detectStart = e.m.Clock()
	for c := 0; c < e.m.Topology().NumCPUs(); c++ {
		p := e.m.PMU(topology.CPUID(c))
		_ = p.SetOverflowThreshold(e.cfg.PMUSlot, e.cfg.SamplingInterval)
		if e.cfg.NUMA {
			_ = p.SetOverflowThreshold(e.numaSlot(), e.cfg.SamplingInterval)
		}
	}
}

// finishDetection disarms sampling, clusters the shMaps and migrates the
// clusters, then returns to monitoring.
func (e *Engine) finishDetection() {
	e.lastDetectTime = e.m.Clock() - e.detectStart
	for c := 0; c < e.m.Topology().NumCPUs(); c++ {
		p := e.m.PMU(topology.CPUID(c))
		_ = p.SetOverflowThreshold(e.cfg.PMUSlot, 0)
		if e.cfg.NUMA {
			_ = p.SetOverflowThreshold(e.numaSlot(), 0)
		}
	}
	e.prevClusters = e.clusters
	if e.stream != nil {
		e.clusters = e.streamClusters()
	} else {
		e.clusters = e.clusterAll()
	}
	e.clusterings++
	if e.prevClusters != nil {
		// Stability across re-clusterings: the Rand index between the
		// previous and current partitions, over threads that were in a
		// real cluster both times. A successful migration legitimately
		// leaves the next detection with little to see (co-located
		// threads stop missing remotely), which is agreement, not churn.
		e.lastStability = clusteringAgreement(e.prevClusters, e.clusters, e.cfg.MinClusterSize)
		e.stabilityKnown = true
	}
	if e.clusterListener != nil {
		e.clusterListener(e.clusters)
	}
	e.migrate(e.clusters)
	e.phase = PhaseMonitoring
	settle := e.cfg.SettleCycles
	if settle == 0 {
		settle = e.cfg.MonitorWindow
	}
	e.settleUntil = e.m.Clock() + settle
	e.windowStart = e.m.Clock()
	e.snapshotWindowBase()
}

// Stability returns the Rand-index agreement between the two most recent
// clusterings and whether two clusterings have happened yet. For a
// workload whose sharing pattern is static, successive re-clusterings
// should agree (stability near 1); low stability flags either a workload
// phase change or an unreliable detection configuration.
func (e *Engine) Stability() (float64, bool) { return e.lastStability, e.stabilityKnown }

// clusteringAgreement computes the Rand index between two clusterings
// over the threads that belong to a cluster of at least minSize in both.
func clusteringAgreement(a, b []clustering.Cluster, minSize int) float64 {
	assignA := clustering.Assignment(a)
	assignB := clustering.Assignment(b)
	realMembers := func(cs []clustering.Cluster) map[clustering.ThreadKey]bool {
		out := make(map[clustering.ThreadKey]bool)
		for _, c := range cs {
			if c.Size() >= minSize {
				for _, t := range c.Members {
					out[t] = true
				}
			}
		}
		return out
	}
	realA, realB := realMembers(a), realMembers(b)
	var common []clustering.ThreadKey
	for k := range realA {
		if realB[k] {
			common = append(common, k)
		}
	}
	sort.Slice(common, func(i, j int) bool { return common[i] < common[j] })
	if len(common) < 2 {
		return 1
	}
	agree, pairs := 0, 0
	for i := 0; i < len(common); i++ {
		for j := i + 1; j < len(common); j++ {
			sameA := assignA[common[i]] == assignA[common[j]]
			sameB := assignB[common[i]] == assignB[common[j]]
			if sameA == sameB {
				agree++
			}
			pairs++
		}
	}
	return float64(agree) / float64(pairs)
}

// clusterAll runs the one-pass clusterer. With a single process it runs
// over all shMaps directly; with multiple processes it runs within each
// process (entry indices of different processes name different lines) and
// concatenates the results.
func (e *Engine) clusterAll() []clustering.Cluster {
	if e.cfg.ProcessOf == nil {
		return e.cfg.Clustering.Cluster(e.shmaps)
	}
	byProc := make(map[int]map[clustering.ThreadKey]*clustering.ShMap)
	for key, sm := range e.shmaps {
		proc := e.cfg.ProcessOf(sched.ThreadID(key))
		if byProc[proc] == nil {
			byProc[proc] = make(map[clustering.ThreadKey]*clustering.ShMap)
		}
		byProc[proc][key] = sm
	}
	procs := make([]int, 0, len(byProc))
	for p := range byProc {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	var all []clustering.Cluster
	for _, p := range procs {
		all = append(all, e.cfg.Clustering.Cluster(byProc[p])...)
	}
	return all
}

// Stream returns the incremental clusterer when Config.Streaming is set,
// nil otherwise. Callers may inspect its drift and recluster counters;
// the engine owns event delivery.
func (e *Engine) Stream() *clustering.Engine { return e.stream }

// streamClusters feeds the fresh detection's shMaps to the incremental
// clusterer as events and returns its partition. Threads the clusterer
// tracks but that were silent this detection depart first, so it covers
// exactly the thread set the batch path would cluster; then, in
// ascending key order, known threads become sharing-delta events and
// unknown threads arrivals. The clusterer's drift detector decides when
// the incrementally maintained partition snaps back to the full batch
// result.
func (e *Engine) streamClusters() []clustering.Cluster {
	var departed []clustering.ThreadKey
	for _, key := range e.stream.Threads() {
		if _, ok := e.shmaps[key]; !ok {
			departed = append(departed, key)
		}
	}
	if len(departed) > 0 {
		if err := e.stream.ApplyChurn(clustering.ChurnEvent{Departed: departed}); err != nil {
			// Departures are tracked keys by construction; an error here
			// is a programming error, not a runtime condition.
			panic(fmt.Sprintf("core: streaming departure: %v", err))
		}
	}
	keys := make([]clustering.ThreadKey, 0, len(e.shmaps))
	for k := range e.shmaps {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, key := range keys {
		var err error
		if e.stream.Has(key) {
			err = e.stream.ApplyMigration(key, e.shmaps[key])
		} else {
			err = e.stream.ApplyChurn(clustering.ChurnEvent{
				Arrived: map[clustering.ThreadKey]*clustering.ShMap{key: e.shmaps[key]},
			})
		}
		if err != nil {
			panic(fmt.Sprintf("core: streaming delta for thread %d: %v", int(key), err))
		}
	}
	return e.stream.Clusters()
}

// migrate implements the Section 4.5 cluster-to-chip assignment:
//
//   - sort clusters from largest to smallest;
//   - assign the current largest cluster to the chip with the fewest
//     threads so far;
//   - if that would unbalance the chips, spread the cluster's threads
//     evenly across all chips instead (the cluster is "neutralized");
//   - finally place unclustered threads to balance out the differences;
//   - within a chip, threads go to uniformly random hardware contexts.
func (e *Engine) migrate(clusters []clustering.Cluster) {
	topo := e.m.Topology()
	s := e.m.Scheduler()

	ordered := make([]clustering.Cluster, len(clusters))
	copy(ordered, clusters)
	clustering.SortBySize(ordered)

	// Threads the engine is placing this round: every thread that has a
	// shMap (i.e. took remote misses). Others keep their placement but
	// still count toward chip load.
	total := s.NumThreads()
	if total == 0 {
		return
	}
	capacity := (total + topo.Chips - 1) / topo.Chips

	// Split the detected clusters into real clusters (explicitly placed)
	// and filler (singletons and sub-threshold groups). Filler threads,
	// like threads that never suffered a remote miss at all, carry no
	// sharing signal: they keep their current placement and are only
	// moved at the end if the chips came out unbalanced. This keeps the
	// iterative re-clustering process stable — a thread with good
	// locality is not churned between chips just because it stopped
	// missing remotely.
	clustered := make(map[sched.ThreadID]bool)
	var filler []sched.ThreadID
	for _, c := range ordered {
		if c.Size() < e.cfg.MinClusterSize {
			for _, t := range c.Members {
				filler = append(filler, sched.ThreadID(t))
			}
			continue
		}
		for _, t := range c.Members {
			clustered[sched.ThreadID(t)] = true
		}
	}

	load := make([]int, topo.Chips)
	fillerOn := make([][]sched.ThreadID, topo.Chips)
	for _, id := range s.Threads() {
		if clustered[id] {
			continue
		}
		chip, ok := s.ChipOf(id)
		if !ok {
			continue
		}
		load[chip]++
		if isFiller(filler, id) {
			fillerOn[chip] = append(fillerOn[chip], id)
		}
	}

	place := func(id sched.ThreadID, chip int) {
		var cpu topology.CPUID
		if e.cfg.IntraChipSpread {
			cpu = s.LeastSMTLoadedCPUOnChip(chip)
		} else {
			cpu = s.RandomCPUOnChip(chip)
		}
		if err := s.Migrate(id, cpu); err == nil {
			s.Pin(id)
			e.migrationsDone++
		}
		load[chip]++
	}

	for _, c := range ordered {
		if c.Size() < e.cfg.MinClusterSize {
			continue
		}
		chip := argmin(load)
		// NUMA extension: prefer the chip holding the cluster's data if
		// that does not break the balance budget.
		if pref, ok := e.preferredChip(c); ok && load[pref]+c.Size() <= capacity {
			chip = pref
		}
		if load[chip]+c.Size() > capacity {
			// Would unbalance: neutralize the cluster by spreading its
			// threads evenly (Section 4.5).
			for _, t := range c.Members {
				place(sched.ThreadID(t), argmin(load))
			}
			continue
		}
		for _, t := range c.Members {
			place(sched.ThreadID(t), chip)
		}
	}

	// Rebalance with filler threads only: move them from the most to the
	// least loaded chip until the spread is at most one.
	for iter := 0; iter < total; iter++ {
		lo, hi := argmin(load), argmax(load)
		if load[hi]-load[lo] <= 1 {
			break
		}
		moved := false
		for i, id := range fillerOn[hi] {
			fillerOn[hi] = append(fillerOn[hi][:i], fillerOn[hi][i+1:]...)
			load[hi]--
			place(id, lo)
			fillerOn[lo] = append(fillerOn[lo], id)
			moved = true
			break
		}
		if !moved {
			break // no movable thread on the overloaded chip
		}
	}
}

func isFiller(filler []sched.ThreadID, id sched.ThreadID) bool {
	for _, f := range filler {
		if f == id {
			return true
		}
	}
	return false
}

// preferredChip votes, over the cluster's sampled cache lines, for the
// chip whose memory homes most of the cluster's data (weighted by
// sampling intensity). It reports false when not in NUMA mode or when no
// line carried a vote.
func (e *Engine) preferredChip(c clustering.Cluster) (int, bool) {
	if !e.cfg.NUMA || e.cfg.NodeOf == nil {
		return 0, false
	}
	chips := e.m.Topology().Chips
	votes := make([]uint64, chips)
	var total uint64
	filter := e.filter
	if len(c.Members) > 0 {
		filter = e.filterFor(sched.ThreadID(c.Members[0]))
	}
	for idx := 0; idx < filter.Len(); idx++ {
		line, claimed := filter.EntryLine(idx)
		if !claimed {
			continue
		}
		var weight uint64
		for _, t := range c.Members {
			if sm, ok := e.shmaps[t]; ok && idx < sm.Len() {
				if v := sm.Get(idx); v >= e.cfg.Clustering.Floor {
					weight += uint64(v)
				}
			}
		}
		if weight == 0 {
			continue
		}
		votes[e.cfg.NodeOf(line)%chips] += weight
		total += weight
	}
	if total == 0 {
		return 0, false
	}
	best := 0
	for i := range votes {
		if votes[i] > votes[best] {
			best = i
		}
	}
	return best, true
}

func argmin(v []int) int {
	best := 0
	for i := range v {
		if v[i] < v[best] {
			best = i
		}
	}
	return best
}

func argmax(v []int) int {
	best := 0
	for i := range v {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}
