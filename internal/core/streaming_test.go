package core

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"threadcluster/internal/clustering"
	"threadcluster/internal/errs"
	"threadcluster/internal/memory"
	"threadcluster/internal/rng"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
)

// streamingTestConfig returns the scaled engine config with the
// incremental clusterer attached in the given mode. Short monitoring and
// settle windows keep multiple detection cycles inside a fast test run.
func streamingTestConfig(mode clustering.Mode) Config {
	cfg := testEngineConfig()
	cfg.TargetSamples = 10_000
	cfg.SettleCycles = 100_000
	scfg := clustering.DefaultEngineConfig()
	scfg.Mode = mode
	cfg.Streaming = &scfg
	return cfg
}

// TestStreamingMatchesBatch is the core-level differential: a machine
// whose engine clusters through the incremental path with per-event
// reclustering (drift window 1, negative threshold) must produce exactly
// the clustering sequence of an identical machine on the batch path —
// every detection, not just the first. With a recluster after the last
// applied event, the incremental partition is by construction the batch
// one-pass over the same shMaps, so any divergence means the event
// plumbing fed the clusterer different vectors than clusterAll saw.
func TestStreamingMatchesBatch(t *testing.T) {
	const seed = 31
	run := func(streaming bool) [][]clustering.Cluster {
		m := buildGroupedMachine(t, sched.PolicyClustered, 2, 8, seed)
		cfg := streamingTestConfig(clustering.ModeDense)
		if streaming {
			cfg.Streaming.DriftWindow = 1
			cfg.Streaming.DriftThreshold = -1 // recluster on every event
		} else {
			cfg.Streaming = nil
		}
		e, err := New(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Install(); err != nil {
			t.Fatal(err)
		}
		var history [][]clustering.Cluster
		e.OnClusters(func(cs []clustering.Cluster) {
			history = append(history, append([]clustering.Cluster(nil), cs...))
		})
		for r := 0; r < 3000 && len(history) < 2; r += 20 {
			if err := m.RunRoundsCtx(context.Background(), 20); err != nil {
				t.Fatal(err)
			}
		}
		return history
	}
	batch := run(false)
	stream := run(true)
	if len(batch) < 2 {
		t.Fatalf("batch machine clustered %d times, want >= 2", len(batch))
	}
	if len(stream) != len(batch) {
		t.Fatalf("streaming machine clustered %d times, batch %d", len(stream), len(batch))
	}
	for i := range batch {
		if !reflect.DeepEqual(stream[i], batch[i]) {
			t.Fatalf("clustering %d diverges:\nstreaming: %+v\nbatch:     %+v", i, stream[i], batch[i])
		}
	}
}

// TestStreamingSketchFindsGroups runs the scale path end to end: sampled
// shMaps are folded into sketches, scored with the cosine estimator, and
// the resulting clusters must still recover the workload's sharing
// groups.
func TestStreamingSketchFindsGroups(t *testing.T) {
	const nGroups, perGroup = 2, 8
	m := buildGroupedMachine(t, sched.PolicyClustered, nGroups, perGroup, 33)
	e, err := New(m, streamingTestConfig(clustering.ModeSketch))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Install(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3000 && e.Clusters() == nil; r += 20 {
		if err := m.RunRoundsCtx(context.Background(), 20); err != nil {
			t.Fatal(err)
		}
	}
	clusters := e.Clusters()
	if clusters == nil {
		t.Fatalf("detection never completed (phase=%v, samples=%d)", e.Phase(), e.SamplesRead())
	}
	truth := make(map[clustering.ThreadKey]int)
	for _, th := range m.Threads() {
		truth[clustering.ThreadKey(th.ID)] = th.Partition
	}
	if p := clustering.Purity(clusters, truth); p < 0.9 {
		t.Errorf("sketch-mode purity = %.3f, want >= 0.9 (clusters: %+v)", p, clusters)
	}
	snap := e.Snapshot()
	if !snap.Streaming || snap.StreamMode != "sketch" || snap.StreamEvents == 0 {
		t.Errorf("snapshot misreports streaming: %+v", snap)
	}
	if !strings.Contains(e.Report(), "streaming: mode=sketch") {
		t.Error("Report should show the streaming line")
	}
}

// TestStreamingAbsorbsStableDetections pins the drift detector's
// purpose: on a workload whose sharing pattern never changes, repeated
// detections arrive as sharing-delta events and the windowed drift stays
// below threshold, so the engine never pays for a full batch recluster.
func TestStreamingAbsorbsStableDetections(t *testing.T) {
	m := buildGroupedMachine(t, sched.PolicyClustered, 2, 8, 35)
	cfg := streamingTestConfig(clustering.ModeDense)
	cfg.Streaming.DriftWindow = 16 // one detection's worth of events fills it
	e, err := New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Install(); err != nil {
		t.Fatal(err)
	}
	clusterings := 0
	e.OnClusters(func([]clustering.Cluster) { clusterings++ })
	// Two clusterings already prove the point (the second arrives as
	// absorbed deltas); the third is extra confidence for the full tier.
	target := 3
	if testing.Short() {
		target = 2
	}
	for r := 0; r < 4000 && clusterings < target; r += 20 {
		if err := m.RunRoundsCtx(context.Background(), 20); err != nil {
			t.Fatal(err)
		}
	}
	if clusterings < 2 {
		t.Fatalf("only %d clusterings happened, want >= 2", clusterings)
	}
	stream := e.Stream()
	if stream == nil {
		t.Fatal("Stream() should return the incremental clusterer")
	}
	if stream.Events() == 0 {
		t.Fatal("no events reached the incremental clusterer")
	}
	if got := stream.Reclusters(); got != 0 {
		t.Errorf("stable workload triggered %d drift reclusters (drift %.3f), want 0", got, stream.Drift())
	}
}

// TestStreamingStateRoundTrip pins the streaming section of the engine's
// snapshot ride-along in both modes: snapshot after the first streaming
// clustering, restore into a freshly built machine, and require the
// clusterer's counters and partition — then the continued simulation —
// to match exactly.
func TestStreamingStateRoundTrip(t *testing.T) {
	for _, mode := range []clustering.Mode{clustering.ModeDense, clustering.ModeSketch} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			const nGroups, perGroup, seed = 2, 4, 41
			ctx := context.Background()
			mcfg := sim.DefaultConfig()
			mcfg.Policy = sched.PolicyClustered
			mcfg.QuantumCycles = 20_000
			mcfg.Seed = seed
			ecfg := streamingTestConfig(mode)
			ecfg.TargetSamples = 5_000

			buildWithHandle := func() (*sim.Machine, *Engine) {
				m, err := sim.NewMachine(mcfg)
				if err != nil {
					t.Fatal(err)
				}
				arena := memory.NewDefaultArena()
				shared := make([]memory.Region, nGroups)
				for g := range shared {
					shared[g] = arena.MustAlloc(16*memory.LineSize, 0)
				}
				for i := 0; i < nGroups*perGroup; i++ {
					g := i % nGroups
					gen := &confinedSharer{
						rng:     rng.New(seed*1000 + int64(i)),
						private: arena.MustAlloc(64<<10, 0),
						shared:  shared[g],
						ratio:   0.4,
					}
					if err := m.AddThread(&sim.Thread{ID: sched.ThreadID(i), Gen: gen, Partition: g}); err != nil {
						t.Fatal(err)
					}
				}
				e, err := New(m, ecfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := e.Install(); err != nil {
					t.Fatal(err)
				}
				return m, e
			}

			m, e := buildWithHandle()
			e.ForceDetection()
			for r := 0; r < 2000 && e.Clusters() == nil; r += 10 {
				if err := m.RunRoundsCtx(ctx, 10); err != nil {
					t.Fatal(err)
				}
			}
			if e.Clusters() == nil {
				t.Fatalf("detection never completed (samples=%d)", e.SamplesRead())
			}
			if e.Stream().Events() == 0 {
				t.Fatal("test premise broken: no streaming events before snapshot")
			}
			snap, err := m.Snapshot(ctx)
			if err != nil {
				t.Fatal(err)
			}

			m2, e2 := buildWithHandle()
			if err := m2.RestoreSnapshot(snap); err != nil {
				t.Fatal(err)
			}
			if e2.Stream().Events() != e.Stream().Events() ||
				e2.Stream().Reclusters() != e.Stream().Reclusters() ||
				e2.Stream().Len() != e.Stream().Len() {
				t.Fatalf("restored clusterer counters diverge: events %d/%d reclusters %d/%d threads %d/%d",
					e2.Stream().Events(), e.Stream().Events(),
					e2.Stream().Reclusters(), e.Stream().Reclusters(),
					e2.Stream().Len(), e.Stream().Len())
			}
			if !reflect.DeepEqual(e2.Stream().Clusters(), e.Stream().Clusters()) {
				t.Fatal("restored clusterer partition diverges")
			}
			if err := m.RunRoundsCtx(ctx, 10); err != nil {
				t.Fatal(err)
			}
			if err := m2.RunRoundsCtx(ctx, 10); err != nil {
				t.Fatal(err)
			}
			s1, err := m.Snapshot(ctx)
			if err != nil {
				t.Fatal(err)
			}
			s2, err := m2.Snapshot(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if s1.Digest() != s2.Digest() {
				t.Fatal("restored machine diverges from original over further rounds")
			}
		})
	}
}

// TestStreamingConfigErrors pins the refusal paths of the streaming
// option.
func TestStreamingConfigErrors(t *testing.T) {
	m := buildGroupedMachine(t, sched.PolicyClustered, 2, 2, 1)
	t.Run("ProcessOf", func(t *testing.T) {
		cfg := streamingTestConfig(clustering.ModeDense)
		cfg.ProcessOf = func(sched.ThreadID) int { return 0 }
		if _, err := New(m, cfg); !errors.Is(err, errs.ErrBadConfig) {
			t.Errorf("Streaming+ProcessOf: %v, want ErrBadConfig", err)
		}
	})
	t.Run("bad mode", func(t *testing.T) {
		cfg := streamingTestConfig(clustering.Mode(7))
		if _, err := New(m, cfg); !errors.Is(err, errs.ErrBadConfig) {
			t.Errorf("unknown mode: %v, want ErrBadConfig", err)
		}
	})
}
