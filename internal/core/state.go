package core

import (
	"fmt"
	"sort"

	"threadcluster/internal/clustering"
	"threadcluster/internal/errs"
	"threadcluster/internal/rng"
	"threadcluster/internal/snapbin"
)

// StateProviderName is the machine-snapshot section the engine rides in.
// Install registers the engine under this name, so RestoreMachine's
// install callback must create and Install the engine before the
// snapshot is applied.
const StateProviderName = "core.engine"

// SaveState appends the engine's complete mutable state in canonical
// form: phase, monitoring-window bases, shMaps sorted by thread key,
// filters sorted by process, the jitter RNG, sampling counters, the two
// most recent clusterings, the migration bookkeeping and — when
// Config.Streaming is set — the incremental clusterer. Config and the
// installed closures (overflow handlers, tick hook, cluster listener)
// are not state — the restoring side rebuilds them via Install.
func (e *Engine) SaveState(enc *snapbin.Enc) error {
	enc.U8(uint8(e.phase))
	enc.U64(e.windowStart)
	enc.U64(e.baseCycles)
	enc.U64(e.baseRemote)
	enc.U64(e.baseRemoteMem)

	keys := make([]clustering.ThreadKey, 0, len(e.shmaps))
	for k := range e.shmaps {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	enc.U32(uint32(len(keys)))
	for _, k := range keys {
		enc.I64(int64(k))
		e.shmaps[k].SaveState(enc)
	}

	procs := make([]int, 0, len(e.filters))
	for p := range e.filters {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	enc.U32(uint32(len(procs)))
	for _, p := range procs {
		enc.I64(int64(p))
		e.filters[p].SaveState(enc)
	}

	st := e.rng.State()
	enc.I64(st.Seed)
	enc.U64(st.Draws)

	enc.I64(int64(e.samplesRead))
	enc.I64(int64(e.samplesAdmitted))
	enc.U64(e.cumSamplesRead)
	enc.U64(e.cumSamplesAdmitted)
	enc.U64(e.clusterings)
	saveClusters(enc, e.clusters)
	saveClusters(enc, e.prevClusters)

	enc.U64(e.detectStart)
	enc.U64(e.settleUntil)
	enc.U64(e.lastDetectTime)
	enc.U64(e.activations)
	enc.U64(e.migrationsDone)
	enc.F64(e.lastStability)
	enc.Bool(e.stabilityKnown)
	if e.stream != nil {
		// Present exactly when Config.Streaming is set; the restoring side
		// is built with the same config, so presence always matches.
		e.stream.SaveState(enc)
	}
	return nil
}

func saveClusters(enc *snapbin.Enc, cs []clustering.Cluster) {
	enc.Bool(cs != nil)
	if cs == nil {
		return
	}
	enc.U32(uint32(len(cs)))
	for _, c := range cs {
		enc.I64(int64(c.Rep))
		enc.U32(uint32(len(c.Members)))
		for _, m := range c.Members {
			enc.I64(int64(m))
		}
	}
}

func restoreClusters(d *snapbin.Dec) ([]clustering.Cluster, error) {
	if !d.Bool() {
		return nil, d.Err()
	}
	n := d.Count(12)
	cs := make([]clustering.Cluster, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		c := clustering.Cluster{Rep: clustering.ThreadKey(d.I64())}
		nm := d.Count(8)
		c.Members = make([]clustering.ThreadKey, 0, nm)
		for j := 0; j < nm && d.Err() == nil; j++ {
			c.Members = append(c.Members, clustering.ThreadKey(d.I64()))
		}
		cs = append(cs, c)
	}
	return cs, d.Err()
}

// RestoreState overwrites the engine's mutable state with a state saved
// by SaveState. The engine must have been built with the same config and
// Installed on an equivalent machine; the PMU overflow thresholds that
// accompany a detection phase live in the machine's own pmu section, so
// the handlers — which are live closures kept through restore — resume
// sampling exactly where the snapshot left off.
func (e *Engine) RestoreState(d *snapbin.Dec) error {
	phase := Phase(d.U8())
	if d.Err() == nil && phase != PhaseMonitoring && phase != PhaseDetecting {
		return fmt.Errorf("core: snapshot engine phase %d unknown: %w", int(phase), snapbin.ErrCorrupt)
	}
	windowStart := d.U64()
	baseCycles := d.U64()
	baseRemote := d.U64()
	baseRemoteMem := d.U64()

	nmaps := d.Count(12)
	shmaps := make(map[clustering.ThreadKey]*clustering.ShMap, nmaps)
	prev := int64(-1 << 62)
	for i := 0; i < nmaps && d.Err() == nil; i++ {
		key := d.I64()
		if key <= prev {
			return fmt.Errorf("core: snapshot shMap keys out of order: %w", snapbin.ErrCorrupt)
		}
		prev = key
		sm := clustering.NewShMap(e.cfg.ShMapEntries)
		if err := sm.RestoreState(d); err != nil {
			return fmt.Errorf("core: shMap for thread %d: %w", key, err)
		}
		shmaps[clustering.ThreadKey(key)] = sm
	}

	nfilters := d.Count(24)
	filters := make(map[int]*clustering.Filter, nfilters)
	prev = int64(-1 << 62)
	for i := 0; i < nfilters && d.Err() == nil; i++ {
		proc := d.I64()
		if proc <= prev {
			return fmt.Errorf("core: snapshot filter processes out of order: %w", snapbin.ErrCorrupt)
		}
		prev = proc
		f, err := clustering.NewFilter(e.cfg.ShMapEntries, e.cfg.FilterQuota)
		if err != nil {
			return err
		}
		if err := f.RestoreState(d); err != nil {
			return fmt.Errorf("core: filter for process %d: %w", proc, err)
		}
		filters[int(proc)] = f
	}
	if d.Err() == nil && filters[0] == nil {
		return fmt.Errorf("core: snapshot engine lacks the process-0 filter: %w", snapbin.ErrCorrupt)
	}

	rngSeed := d.I64()
	rngDraws := d.U64()
	samplesRead := d.I64()
	samplesAdmitted := d.I64()
	cumRead := d.U64()
	cumAdmitted := d.U64()
	clusterings := d.U64()
	clusters, err := restoreClusters(d)
	if err != nil {
		return err
	}
	prevClusters, err := restoreClusters(d)
	if err != nil {
		return err
	}
	detectStart := d.U64()
	settleUntil := d.U64()
	lastDetectTime := d.U64()
	activations := d.U64()
	migrationsDone := d.U64()
	lastStability := d.F64()
	stabilityKnown := d.Bool()
	var stream *clustering.Engine
	if e.stream != nil {
		// Decode into a fresh clusterer so a corrupt section cannot leave
		// the live one half-overwritten.
		fresh, err := clustering.NewEngine(e.streamCfg)
		if err != nil {
			return err
		}
		if err := fresh.RestoreState(d); err != nil {
			return fmt.Errorf("core: streaming clusterer: %w", err)
		}
		stream = fresh
	}
	if err := d.Err(); err != nil {
		return err
	}
	if samplesRead < 0 || samplesAdmitted < 0 || samplesAdmitted > samplesRead {
		return fmt.Errorf("core: snapshot sample counters %d/%d inconsistent: %w",
			samplesAdmitted, samplesRead, snapbin.ErrCorrupt)
	}
	if !e.installed {
		return fmt.Errorf("core: engine must be Installed before restore: %w", errs.ErrBadConfig)
	}

	e.phase = phase
	e.windowStart = windowStart
	e.baseCycles = baseCycles
	e.baseRemote = baseRemote
	e.baseRemoteMem = baseRemoteMem
	e.shmaps = shmaps
	e.filters = filters
	e.filter = filters[0]
	e.rng.Restore(rng.State{Seed: rngSeed, Draws: rngDraws})
	e.samplesRead = int(samplesRead)
	e.samplesAdmitted = int(samplesAdmitted)
	e.cumSamplesRead = cumRead
	e.cumSamplesAdmitted = cumAdmitted
	e.clusterings = clusterings
	e.clusters = clusters
	e.prevClusters = prevClusters
	e.detectStart = detectStart
	e.settleUntil = settleUntil
	e.lastDetectTime = lastDetectTime
	e.activations = activations
	e.migrationsDone = migrationsDone
	e.lastStability = lastStability
	e.stabilityKnown = stabilityKnown
	if stream != nil {
		e.stream = stream
	}
	return nil
}
