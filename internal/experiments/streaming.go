package experiments

import (
	"context"
	"fmt"

	"threadcluster/internal/stats"
)

// StreamingRow is one cluster-mode measurement of the streaming study.
type StreamingRow struct {
	// Mode is the cluster mode measured ("batch", "dense" or "sketch").
	Mode string
	// RemoteFraction is the residual remote-stall share under churn.
	RemoteFraction float64
	// Activations / Clusterings count detections and completed clustering
	// passes over the run.
	Activations uint64
	Clusterings uint64
	// Events counts churn/sharing-delta events the incremental clusterer
	// absorbed (0 in batch mode).
	Events uint64
	// Reclusters counts drift-triggered full batch passes inside the
	// incremental clusterer (0 in batch mode). Reclusters well below
	// Clusterings is the streaming path earning its keep.
	Reclusters uint64
}

// Streaming compares the three cluster modes on the fast-churn chat
// workload: the paper's from-scratch batch pass per detection against
// the incremental clusterer with dense vectors and with fixed-size
// sketches. The placement quality (residual remote stalls) must be
// equivalent across modes — the incremental paths are differentially
// tested to match batch — while the incremental modes absorb most
// detections as deltas instead of reclustering.
func Streaming(ctx context.Context, opt Options) ([]StreamingRow, *stats.Table, error) {
	const replaceEvery = 30 // the churn study's fast-churn point
	var rows []StreamingRow
	for _, mode := range []string{"batch", "dense", "sketch"} {
		o := opt
		o.ClusterMode = mode
		p, eng, err := churnRun(ctx, o, replaceEvery)
		if err != nil {
			return nil, nil, err
		}
		row := StreamingRow{
			Mode:           mode,
			RemoteFraction: p.RemoteFraction,
			Activations:    eng.Activations(),
			Clusterings:    eng.Clusterings(),
		}
		if s := eng.Stream(); s != nil {
			row.Events = s.Events()
			row.Reclusters = s.Reclusters()
		}
		rows = append(rows, row)
	}
	t := stats.NewTable("Streaming clustering: incremental re-clustering under churn",
		"Mode", "Residual remote stalls", "Clusterings", "Events", "Full reclusters")
	for _, r := range rows {
		t.AddRow(r.Mode, stats.Pct(r.RemoteFraction),
			fmt.Sprintf("%d", r.Clusterings),
			fmt.Sprintf("%d", r.Events),
			fmt.Sprintf("%d", r.Reclusters))
	}
	return rows, t, nil
}
