package experiments

import (
	"context"
	"encoding/json"
	"testing"

	"threadcluster/internal/sched"
	"threadcluster/internal/sweep"
)

func subsetGrid() GridSpec {
	opt := DefaultOptions()
	opt.WarmRounds, opt.EngineRounds, opt.MeasureRounds = 2, 6, 4
	return GridSpec{
		Workloads: []string{"microbenchmark", "volano"},
		Policies:  []sched.Policy{sched.PolicyDefault, sched.PolicyClustered},
		Topos:     []string{TopoOpenPower720},
		BaseSeed:  17,
		Opt:       opt,
	}
}

func TestCheckSubset(t *testing.T) {
	for _, tc := range []struct {
		name    string
		n       int
		indices []int
		ok      bool
	}{
		{"empty", 4, nil, true},
		{"full", 4, []int{0, 1, 2, 3}, true},
		{"sparse", 4, []int{1, 3}, true},
		{"negative", 4, []int{-1}, false},
		{"beyond", 4, []int{4}, false},
		{"duplicate", 4, []int{2, 2}, false},
		{"descending", 4, []int{3, 1}, false},
	} {
		err := CheckSubset(tc.n, tc.indices)
		if (err == nil) != tc.ok {
			t.Errorf("%s: CheckSubset(%d, %v) = %v, want ok=%v", tc.name, tc.n, tc.indices, err, tc.ok)
		}
	}
}

// TestSubsetTasksPreserveFullGridIdentity: a subset's cells and tasks
// carry the names and seeds the full grid assigns at those positions —
// the property that lets a fleet shard a grid without changing any
// cell's workload stream.
func TestSubsetTasksPreserveFullGridIdentity(t *testing.T) {
	g := subsetGrid()
	fullCells, fullTasks, err := g.Tasks()
	if err != nil {
		t.Fatalf("Tasks: %v", err)
	}
	indices := []int{1, 2}
	cells, tasks, err := g.SubsetTasks(indices)
	if err != nil {
		t.Fatalf("SubsetTasks: %v", err)
	}
	if len(cells) != len(indices) || len(tasks) != len(indices) {
		t.Fatalf("subset sizes %d/%d, want %d", len(cells), len(tasks), len(indices))
	}
	for i, idx := range indices {
		if cells[i] != fullCells[idx] {
			t.Errorf("subset cell %d = %+v, full grid position %d = %+v", i, cells[i], idx, fullCells[idx])
		}
		if tasks[i].Name != fullTasks[idx].Name || tasks[i].Seed != fullTasks[idx].Seed {
			t.Errorf("subset task %d = (%s, %d), want (%s, %d)",
				i, tasks[i].Name, tasks[i].Seed, fullTasks[idx].Name, fullTasks[idx].Seed)
		}
	}
	if _, _, err := g.SubsetTasks([]int{len(fullCells)}); err == nil {
		t.Fatalf("out-of-range subset accepted")
	}
}

// TestSubsetRunMatchesFullGridCells: actually executing a subset
// produces the same per-cell snapshots the full grid run produces at
// those positions, and sweep.Scatter reassembles them in place.
func TestSubsetRunMatchesFullGridCells(t *testing.T) {
	g := subsetGrid()
	_, fullResults, _, err := RunGrid(context.Background(), g, 2)
	if err != nil {
		t.Fatalf("RunGrid: %v", err)
	}
	indices := []int{0, 3}
	_, tasks, err := g.SubsetTasks(indices)
	if err != nil {
		t.Fatalf("SubsetTasks: %v", err)
	}
	sub, err := sweep.Run(context.Background(), tasks, 1)
	if err != nil {
		t.Fatalf("sweep.Run: %v", err)
	}
	scattered := make([]sweep.Result, len(fullResults))
	if err := sweep.Scatter(scattered, indices, sub); err != nil {
		t.Fatalf("Scatter: %v", err)
	}
	for _, idx := range indices {
		got, want := scattered[idx], fullResults[idx]
		if got.Name != want.Name || got.Seed != want.Seed {
			t.Fatalf("cell %d identity (%s, %d), want (%s, %d)", idx, got.Name, got.Seed, want.Name, want.Seed)
		}
		gj, err := json.Marshal(got.Metrics)
		if err != nil {
			t.Fatal(err)
		}
		wj, err := json.Marshal(want.Metrics)
		if err != nil {
			t.Fatal(err)
		}
		if string(gj) != string(wj) {
			t.Errorf("cell %d snapshot differs between subset and full-grid run", idx)
		}
	}
}
