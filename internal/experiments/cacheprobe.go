package experiments

import (
	"context"
	"fmt"

	"threadcluster/internal/memory"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
	"threadcluster/internal/snapbin"
	"threadcluster/internal/stats"
)

// ProbePoint is one working-set size of the latency curve.
type ProbePoint struct {
	WorkingSetBytes uint64
	CyclesPerAccess float64
	// Level is the hierarchy level the working set should fit in.
	Level string
}

// chaseGen walks a working set line by line in a pseudo-random
// permutation, the standard pointer-chasing methodology for measuring
// memory-hierarchy latencies (every access depends on the previous one;
// with no prefetcher in the model a fixed permutation suffices).
type chaseGen struct {
	region memory.Region
	lines  uint64
	pos    uint64
	stride uint64
}

func newChaseGen(region memory.Region) *chaseGen {
	lines := region.Size / memory.LineSize
	// A stride co-prime with the line count visits every line.
	stride := lines/2 + 1
	for gcd(stride, lines) != 1 {
		stride++
	}
	return &chaseGen{region: region, lines: lines, stride: stride}
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Confined marks the generator parallel-safe: the chase walks private
// per-generator state over an immutable Region.
func (g *chaseGen) Confined() {}

// SnapshotState returns the chase cursor (the current position; lines and
// stride are derived from the region at construction).
func (g *chaseGen) SnapshotState() []byte {
	e := &snapbin.Enc{}
	e.U64(g.pos)
	return e.Bytes()
}

// RestoreState overwrites the chase cursor.
func (g *chaseGen) RestoreState(state []byte) error {
	d := snapbin.NewDec(state)
	pos := d.U64()
	if err := d.Close(); err != nil {
		return fmt.Errorf("experiments: chase cursor: %w", err)
	}
	if pos >= g.lines {
		return fmt.Errorf("experiments: chase cursor %d beyond %d lines: %w", pos, g.lines, snapbin.ErrCorrupt)
	}
	g.pos = pos
	return nil
}

func (g *chaseGen) Next() sim.MemRef {
	g.pos = (g.pos + g.stride) % g.lines
	return sim.MemRef{Addr: g.region.At(g.pos * memory.LineSize), Insts: 0}
}

// CacheProbe measures the machine's effective access latency as a
// function of working-set size — the curve an lmbench-style tool draws on
// real hardware, and the methodology behind Figure 1's numbers. The
// cliffs must land at the configured cache capacities (64KB L1, 2MB L2,
// 36MB L3) and the plateau heights at the configured latencies.
func CacheProbe(ctx context.Context, opt Options) ([]ProbePoint, *stats.Table, error) {
	sizes := []struct {
		bytes uint64
		level string
	}{
		{32 << 10, "L1"},
		{48 << 10, "L1"},
		{256 << 10, "L2"},
		{1 << 20, "L2"},
		{8 << 20, "L3"},
		{24 << 20, "L3"},
		{128 << 20, "memory"},
	}
	var points []ProbePoint
	t := stats.NewTable("Latency vs working-set size (pointer chase, one thread)",
		"Working set", "Cycles/access", "Expected level")
	for _, sz := range sizes {
		p, err := probeOne(ctx, opt, sz.bytes)
		if err != nil {
			return nil, nil, err
		}
		p.Level = sz.level
		points = append(points, p)
		t.AddRow(fmtBytes(sz.bytes), fmt.Sprintf("%.1f", p.CyclesPerAccess), sz.level)
	}
	return points, t, nil
}

func probeOne(ctx context.Context, opt Options, bytes uint64) (ProbePoint, error) {
	mcfg := sim.DefaultConfig()
	mcfg.Engine = opt.Engine
	mcfg.Topo = opt.Topo
	mcfg.Policy = sched.PolicyRoundRobin // one thread, pinned to CPU 0
	mcfg.QuantumCycles = opt.QuantumCycles
	mcfg.Seed = opt.Seed
	m, err := sim.NewMachine(mcfg)
	if err != nil {
		return ProbePoint{}, err
	}
	arena := memory.NewDefaultArena()
	gen := newChaseGen(arena.MustAlloc(bytes, 0))
	if err := m.AddThread(&sim.Thread{ID: 1, Gen: gen}); err != nil {
		return ProbePoint{}, err
	}
	// Warm-up must cover at least two full walks of the working set at
	// worst-case (memory) latency, or big sets would be measured during
	// their cold pass.
	lines := bytes / memory.LineSize
	warmRounds := int(2*lines*300/mcfg.QuantumCycles) + opt.WarmRounds
	if err := m.RunRoundsCtx(ctx, warmRounds); err != nil {
		return ProbePoint{}, err
	}
	m.ResetMetrics()
	// Measure at least one further full walk.
	measureRounds := int(lines*300/mcfg.QuantumCycles) + opt.MeasureRounds
	if err := m.RunRoundsCtx(ctx, measureRounds); err != nil {
		return ProbePoint{}, err
	}
	th := m.Thread(1)
	if th.Insts == 0 {
		return ProbePoint{}, fmt.Errorf("probe thread never ran")
	}
	// Each reference retires exactly one instruction, so cycles per
	// access is cycles per instruction.
	return ProbePoint{
		WorkingSetBytes: bytes,
		CyclesPerAccess: float64(th.Cycles) / float64(th.Insts),
	}, nil
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	default:
		return fmt.Sprintf("%dKB", b>>10)
	}
}
