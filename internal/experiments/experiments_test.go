package experiments

import (
	"context"
	"strings"
	"testing"

	"threadcluster/internal/sched"
)

// testOptions shrinks the run lengths; the figure shapes must survive.
// Under -short the rounds shrink further: the tests that still run in
// short mode assert loose shape bands, not tight statistics (anything
// that needs the full lengths skips itself).
func testOptions() Options {
	opt := DefaultOptions()
	opt.WarmRounds = 120
	opt.EngineRounds = 2200
	opt.MeasureRounds = 250
	if testing.Short() {
		opt.WarmRounds = 60
		opt.EngineRounds = 600
		opt.MeasureRounds = 120
	}
	return opt
}

func TestBuildWorkloadNames(t *testing.T) {
	for _, name := range AllWorkloads() {
		spec, err := BuildWorkload(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(spec.Threads) == 0 {
			t.Errorf("%s: no threads", name)
		}
	}
	if _, err := BuildWorkload("nope", 1); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestTable1(t *testing.T) {
	out := Table1().String()
	for _, want := range []string{"Power5", "64KB", "2MB", "36MB", "128B"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure1LatenciesMeasuredMatchConfigured(t *testing.T) {
	tbl, err := Figure1(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	// Configured and measured columns must agree for the probed rows.
	for _, row := range tbl.Rows[:4] {
		if row[1] != row[2] {
			t.Errorf("row %q: configured %s != measured %s", row[0], row[1], row[2])
		}
	}
	if !strings.Contains(out, "Remote L2") {
		t.Error("remote row missing")
	}
}

func TestFigure3VolanoBreakdown(t *testing.T) {
	tbl, b, err := Figure3(context.Background(), Volano, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if b.Cycles == 0 {
		t.Fatal("no cycles measured")
	}
	// Under default scheduling the remote share must be substantial (it is
	// what motivates the whole paper) but far from everything.
	if f := b.RemoteFraction(); f < 0.02 || f > 0.6 {
		t.Errorf("remote fraction = %.3f, want a visible but partial share", f)
	}
	// Completion plus categorized stalls should cover most of the cycles.
	covered := float64(b.Completion+b.StallTotal()) / float64(b.Cycles)
	if covered < 0.95 {
		t.Errorf("CPI stack covers only %.2f of cycles", covered)
	}
	if !strings.Contains(tbl.String(), "completion") {
		t.Error("breakdown table missing completion row")
	}
}

func TestFigure6And7Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison sweep is slow")
	}
	opt := testOptions()
	_, rows, err := Figure6(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 server workloads", len(rows))
	}
	for _, row := range rows {
		ho := row.RelativeStalls[sched.PolicyHandOptimized]
		cl := row.RelativeStalls[sched.PolicyClustered]
		// The paper's headline: hand-optimized and clustered remove a
		// large share of remote-access stalls (up to 70% in the paper).
		if ho > 0.7 {
			t.Errorf("%s: hand-optimized relative stalls = %.2f, want < 0.7", row.Workload, ho)
		}
		if cl > 0.75 {
			t.Errorf("%s: clustered relative stalls = %.2f, want < 0.75", row.Workload, cl)
		}
		// And performance moves the same direction (Figure 7).
		if perf := row.RelativePerf[sched.PolicyClustered]; perf < 1.0 {
			t.Errorf("%s: clustered relative performance = %.3f, want >= 1", row.Workload, perf)
		}
		if perf := row.RelativePerf[sched.PolicyHandOptimized]; perf < 1.0 {
			t.Errorf("%s: hand-optimized relative performance = %.3f, want >= 1", row.Workload, perf)
		}
	}
}

func TestFigure5ClustersAreMeaningful(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 5 detection runs are slow")
	}
	results, err := Figure5(context.Background(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4 workloads", len(results))
	}
	for _, r := range results {
		if r.Heatmap == "" {
			t.Errorf("%s: empty heatmap", r.Workload)
		}
		// The paper: detection matches application logic for three of
		// four workloads; VolanoMark's clusters need not conform to the
		// rooms. We require high purity everywhere except volano, where
		// we only require that clustering found real (>= 2-thread)
		// groups of threads that genuinely share.
		if r.Workload != Volano {
			if r.Purity < 0.85 {
				t.Errorf("%s: purity = %.2f, want >= 0.85", r.Workload, r.Purity)
			}
		}
		big := 0
		for _, c := range r.Clusters {
			if c.Size() >= 2 {
				big++
			}
		}
		if big == 0 {
			t.Errorf("%s: no multi-thread clusters detected", r.Workload)
		}
	}
}

func TestFigure8TradeoffShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 8 sweep is slow")
	}
	points, tbl, err := Figure8(context.Background(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("points = %d, want 5 rates", len(points))
	}
	// Overhead must be monotone non-decreasing and tracking time monotone
	// non-increasing as the capture rate rises — the Figure 8 shape.
	for i := 1; i < len(points); i++ {
		if points[i].RatePercent <= points[i-1].RatePercent {
			t.Fatalf("sweep not ordered by rate: %+v", points)
		}
		if points[i].OverheadPercent < points[i-1].OverheadPercent {
			t.Errorf("overhead not monotone: %.3f%% at %.0f%% vs %.3f%% at %.0f%%",
				points[i].OverheadPercent, points[i].RatePercent,
				points[i-1].OverheadPercent, points[i-1].RatePercent)
		}
		if points[i].TrackingCycles > points[i-1].TrackingCycles {
			t.Errorf("tracking time not monotone: %d at %.0f%% vs %d at %.0f%%",
				points[i].TrackingCycles, points[i].RatePercent,
				points[i-1].TrackingCycles, points[i-1].RatePercent)
		}
	}
	if !strings.Contains(tbl.String(), "1 in 10") {
		t.Error("table missing the paper's balance point row")
	}
}

func TestSpatialSensitivityInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("spatial sweep is slow")
	}
	points, _, err := SpatialSensitivity(context.Background(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d, want 3 sizes", len(points))
	}
	// Section 6.4: cluster identification is largely invariant across
	// 128/256/512 entries.
	for _, p := range points {
		if p.BigClusters != points[0].BigClusters {
			t.Errorf("cluster count varies with shMap size: %+v", points)
			break
		}
	}
	for _, p := range points {
		if p.Purity < 0.85 {
			t.Errorf("entries=%d: purity %.2f, want >= 0.85", p.Entries, p.Purity)
		}
	}
}

func TestSDARPurityNearPerfect(t *testing.T) {
	res, err := SDARPurity(context.Background(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.SamplesRead < 100 {
		t.Fatalf("only %d samples read; workload too quiet", res.SamplesRead)
	}
	// Section 5.2.1: "almost all of the local L1 data cache misses
	// recorded in our trace are indeed satisfied by remote cache accesses".
	if res.Purity < 0.95 {
		t.Errorf("SDAR purity = %.3f, want >= 0.95", res.Purity)
	}
}

func TestAblationAlgorithmsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation detection run is slow")
	}
	rows, tbl, err := Ablation(context.Background(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 algorithms", len(rows))
	}
	for _, r := range rows {
		if r.Purity < 0.8 {
			t.Errorf("%s: purity = %.2f, want >= 0.8", r.Algorithm, r.Purity)
		}
	}
	if !strings.Contains(tbl.String(), "one-pass dot-product") {
		t.Error("table missing the paper's algorithm")
	}
}

func TestPageVsPMUDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("detector comparison is slow")
	}
	rows, tbl, err := PageVsPMU(context.Background(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 (2 workloads x 2 approaches)", len(rows))
	}
	byKey := make(map[string]DetectorComparison)
	for _, r := range rows {
		byKey[r.Workload+"/"+r.Approach] = r
	}
	// The PMU path must be precise on both workloads.
	for _, w := range []string{Microbenchmark, JBB} {
		if p := byKey[w+"/pmu"].Purity; p < 0.9 {
			t.Errorf("%s pmu purity = %.2f, want >= 0.9", w, p)
		}
	}
	// The page path must be strictly worse on cluster quality for the
	// sub-page microbenchmark, and more expensive everywhere.
	micro := byKey[Microbenchmark+"/page"]
	if micro.RandIndex >= byKey[Microbenchmark+"/pmu"].RandIndex {
		t.Errorf("page path rand %.2f should trail pmu rand %.2f on sub-page data",
			micro.RandIndex, byKey[Microbenchmark+"/pmu"].RandIndex)
	}
	for _, w := range []string{Microbenchmark, JBB} {
		if byKey[w+"/page"].OverheadPercent <= byKey[w+"/pmu"].OverheadPercent {
			t.Errorf("%s: page overhead %.2f%% should exceed pmu overhead %.2f%%",
				w, byKey[w+"/page"].OverheadPercent, byKey[w+"/pmu"].OverheadPercent)
		}
	}
	_ = tbl.String()
}

func TestChurnDegradesClustering(t *testing.T) {
	if testing.Short() {
		t.Skip("churn sweep is slow")
	}
	points, _, err := Churn(context.Background(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d, want 3", len(points))
	}
	persistent := points[0]
	if persistent.RemoteFraction > 0.08 {
		t.Errorf("persistent connections should cluster well, residual %.3f", persistent.RemoteFraction)
	}
	for _, p := range points[1:] {
		if p.RemoteFraction < persistent.RemoteFraction*2 {
			t.Errorf("%s: residual %.3f should be at least 2x the persistent %.3f",
				p.Label, p.RemoteFraction, persistent.RemoteFraction)
		}
	}
}

func TestStreamingModesAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("streaming study is slow")
	}
	rows, _, err := Streaming(context.Background(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	batch := rows[0]
	if batch.Events != 0 || batch.Reclusters != 0 {
		t.Errorf("batch mode should report no stream counters: %+v", batch)
	}
	for _, r := range rows[1:] {
		if r.Events == 0 {
			t.Errorf("%s: no events reached the incremental clusterer", r.Mode)
		}
		// Placement quality must be equivalent: the incremental paths are
		// differentially pinned to batch, so the residual remote-stall
		// share may only differ by estimator noise.
		if r.RemoteFraction > batch.RemoteFraction+0.03 {
			t.Errorf("%s: residual %.3f much worse than batch %.3f",
				r.Mode, r.RemoteFraction, batch.RemoteFraction)
		}
	}
}

func TestEngineConfigForModes(t *testing.T) {
	opt := DefaultOptions()
	for _, mode := range []string{"", "batch", "dense", "sketch"} {
		opt.ClusterMode = mode
		cfg, err := EngineConfigFor(opt)
		if err != nil {
			t.Fatalf("%q: %v", mode, err)
		}
		wantStreaming := mode == "dense" || mode == "sketch"
		if (cfg.Streaming != nil) != wantStreaming {
			t.Errorf("%q: Streaming = %v, want set=%v", mode, cfg.Streaming, wantStreaming)
		}
	}
	opt.ClusterMode = "bogus"
	if _, err := EngineConfigFor(opt); err == nil {
		t.Error("unknown cluster mode should fail")
	}
}

func TestStagedPipelineCut(t *testing.T) {
	if testing.Short() {
		t.Skip("staged study is slow")
	}
	res, _, err := Staged(context.Background(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.DefaultRemote < 0.05 {
		t.Fatalf("default remote fraction %.3f too low; chain workload broken", res.DefaultRemote)
	}
	if res.ClusteredRemote >= res.DefaultRemote*0.6 {
		t.Errorf("clustering should cut chain traffic: %.3f vs %.3f",
			res.ClusteredRemote, res.DefaultRemote)
	}
	if res.ClusteredOps <= res.DefaultOps {
		t.Errorf("clustered events %d should exceed default %d", res.ClusteredOps, res.DefaultOps)
	}
	if !res.ContiguousCut {
		t.Errorf("placement %v is not a contiguous cut of the pipeline", res.StageChips)
	}
}

func TestCacheProbeStaircase(t *testing.T) {
	if testing.Short() {
		t.Skip("latency sweep walks large working sets")
	}
	points, _, err := CacheProbe(context.Background(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	expect := map[string][2]float64{
		"L1":     {0.5, 3},
		"L2":     {10, 20},
		"L3":     {70, 110},
		"memory": {200, 350},
	}
	for _, p := range points {
		bounds := expect[p.Level]
		if p.CyclesPerAccess < bounds[0] || p.CyclesPerAccess > bounds[1] {
			t.Errorf("%s working set %d: %.1f cycles/access outside [%g,%g]",
				p.Level, p.WorkingSetBytes, p.CyclesPerAccess, bounds[0], bounds[1])
		}
	}
	// The staircase must be monotone non-decreasing.
	for i := 1; i < len(points); i++ {
		if points[i].CyclesPerAccess < points[i-1].CyclesPerAccess-0.5 {
			t.Errorf("latency curve dipped at %d bytes", points[i].WorkingSetBytes)
		}
	}
}

func TestMuxValidationTracksExactBreakdown(t *testing.T) {
	res, tbl, err := MuxValidation(context.Background(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no comparison rows")
	}
	// Azimi et al. report fine-grained multiplexing tracking within a few
	// percent; require the same here.
	if res.MaxErrorPts > 3.0 {
		t.Errorf("worst multiplexing error = %.2f points, want <= 3:\n%s", res.MaxErrorPts, tbl)
	}
}

func TestSMTPlacementAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep is slow")
	}
	rows, _, err := SMTPlacement(context.Background(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	random, spread := rows[0], rows[1]
	if spread.SMTStallFraction > 0.001 {
		t.Errorf("cores-first placement should eliminate SMT stalls, got %.4f", spread.SMTStallFraction)
	}
	if random.SMTStallFraction <= spread.SMTStallFraction {
		t.Errorf("random placement (%.4f) should average more SMT stalls than cores-first (%.4f)",
			random.SMTStallFraction, spread.SMTStallFraction)
	}
	if spread.OpsPerMCycle <= random.OpsPerMCycle {
		t.Errorf("cores-first throughput %.1f should beat random %.1f",
			spread.OpsPerMCycle, random.OpsPerMCycle)
	}
}

func TestThresholdSensitivityPlateau(t *testing.T) {
	if testing.Short() {
		t.Skip("threshold sweep needs a detection run")
	}
	points, _, err := ThresholdSensitivity(context.Background(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	// There must be a plateau of thresholds achieving a high Rand index,
	// and the extremes must degrade: very high thresholds shatter the
	// clusters into singletons.
	best := 0.0
	plateau := 0
	for _, p := range points {
		if p.RandIndex > best {
			best = p.RandIndex
		}
	}
	for _, p := range points {
		if p.RandIndex >= best-0.05 {
			plateau++
		}
	}
	if best < 0.9 {
		t.Errorf("best rand index = %.2f, want >= 0.9", best)
	}
	if plateau < 3 {
		t.Errorf("only %d thresholds near the best score; expected a robust plateau", plateau)
	}
	last := points[len(points)-1]
	if last.Clusters <= points[0].Clusters {
		t.Errorf("highest threshold should shatter clusters: %d vs %d at the lowest",
			last.Clusters, points[0].Clusters)
	}
}

func TestMultiprogrammed(t *testing.T) {
	if testing.Short() {
		t.Skip("multiprogrammed study is slow")
	}
	res, tbl, err := Multiprogrammed(context.Background(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Threads of different processes never share memory; clusters must
	// never mix processes.
	if res.CrossProcessClusters != 0 {
		t.Errorf("found %d cross-process clusters, want 0", res.CrossProcessClusters)
	}
	// The engine must cut machine-wide remote stalls...
	if res.ClusteredRemoteFraction >= res.DefaultRemoteFraction*0.8 {
		t.Errorf("clustered remote fraction %.3f should be well below default %.3f",
			res.ClusteredRemoteFraction, res.DefaultRemoteFraction)
	}
	// ...without sacrificing either process's throughput.
	for p := 0; p < 2; p++ {
		if res.ClusteredOps[p] < res.DefaultOps[p] {
			t.Errorf("process %d ops fell: %d -> %d", p, res.DefaultOps[p], res.ClusteredOps[p])
		}
	}
	_ = tbl.String()
}

func TestContentionStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("contention study is slow")
	}
	rows, _, err := Contention(context.Background(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	get := func(l3Sub, placement string) ContentionRow {
		for _, r := range rows {
			if r.Placement == placement && len(r.L3) >= len(l3Sub) && r.L3[:len(l3Sub)] == l3Sub {
				return r
			}
		}
		t.Fatalf("row %s/%s missing", l3Sub, placement)
		return ContentionRow{}
	}
	for _, l3 := range []string{"36MB", "1MB"} {
		packed := get(l3, "packed on one chip")
		balanced := get(l3, "engine (balanced)")
		// Packing one oversized group on a chip buys zero remote stalls
		// but loses on local contention + idle capacity.
		if packed.RemoteFraction > 0.01 {
			t.Errorf("%s: packed placement should have ~no remote stalls, got %.3f", l3, packed.RemoteFraction)
		}
		if packed.LocalMissFraction <= balanced.LocalMissFraction {
			t.Errorf("%s: packed local-miss stalls %.3f should exceed balanced %.3f",
				l3, packed.LocalMissFraction, balanced.LocalMissFraction)
		}
		if packed.OpsPerMCycle >= balanced.OpsPerMCycle {
			t.Errorf("%s: packed throughput %.1f should trail balanced %.1f",
				l3, packed.OpsPerMCycle, balanced.OpsPerMCycle)
		}
	}
	// The paper's mitigation claim: the big L3 absorbs most of the
	// contention, so shrinking it must make packing hurt much more.
	bigGap := get("36MB", "engine (balanced)").OpsPerMCycle / get("36MB", "packed on one chip").OpsPerMCycle
	smallGap := get("1MB", "engine (balanced)").OpsPerMCycle / get("1MB", "packed on one chip").OpsPerMCycle
	if smallGap <= bigGap {
		t.Errorf("shrunk L3 should widen the contention gap: big-L3 ratio %.2f, small-L3 ratio %.2f", bigGap, smallGap)
	}
}

func TestMigrationCostTransient(t *testing.T) {
	if testing.Short() {
		t.Skip("migration study is slow")
	}
	res, err := MigrationCost(context.Background(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.SteadyBefore < 0.05 {
		t.Fatalf("scattered steady state %.3f too low; workload broken", res.SteadyBefore)
	}
	// Migration pays off: the settled level is far below scattered.
	if res.SteadyAfter > res.SteadyBefore/4 {
		t.Errorf("settled remote stalls %.3f should be <1/4 of scattered %.3f", res.SteadyAfter, res.SteadyBefore)
	}
	// The reload transient exists but decays within a few windows
	// ("amortized over the long thread execution time").
	if res.FirstWindowAfter <= res.SteadyAfter {
		t.Errorf("first post-migration window %.3f should show a reload burst above settled %.3f",
			res.FirstWindowAfter, res.SteadyAfter)
	}
	if res.SettleWindows > 10 {
		t.Errorf("transient took %d windows to settle, want <= 10", res.SettleWindows)
	}
}

func TestPhaseChangeAdaptation(t *testing.T) {
	if testing.Short() {
		t.Skip("phase-change run is slow")
	}
	res, err := PhaseChange(context.Background(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The engine must have re-entered detection after the shift.
	if res.Activations < 2 {
		t.Errorf("activations = %d, want >= 2 (initial + re-clustering)", res.Activations)
	}
	// The shift must be visible as a remote-stall spike...
	if res.PeakAfterShift < 0.08 {
		t.Errorf("peak after shift = %.3f, want a visible spike", res.PeakAfterShift)
	}
	// ...and the engine must bring it back down.
	if res.FinalFraction > res.PeakAfterShift/2 {
		t.Errorf("final fraction %.3f should be far below the %.3f peak", res.FinalFraction, res.PeakAfterShift)
	}
	// The final clustering must match the SECOND phase's ground truth.
	if res.SecondPhasePurity < 0.9 {
		t.Errorf("second-phase purity = %.2f, want >= 0.9", res.SecondPhasePurity)
	}
}

func TestNUMAExtension(t *testing.T) {
	if testing.Short() {
		t.Skip("NUMA study is slow")
	}
	res, tbl, err := NUMA(context.Background(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Both engines must fix remote-cache stalls.
	if res.Clustered.RemoteCacheFraction >= res.Default.RemoteCacheFraction {
		t.Errorf("blind engine should cut remote-cache stalls: %.3f vs default %.3f",
			res.Clustered.RemoteCacheFraction, res.Default.RemoteCacheFraction)
	}
	// Only the Section 8 extension fixes remote-memory stalls.
	if res.NUMAEngine.RemoteMemoryFraction >= res.Clustered.RemoteMemoryFraction/2 {
		t.Errorf("NUMA engine remote-memory stalls %.3f should be far below blind %.3f",
			res.NUMAEngine.RemoteMemoryFraction, res.Clustered.RemoteMemoryFraction)
	}
	if res.NUMAEngine.RemoteMemoryFraction >= res.Default.RemoteMemoryFraction {
		t.Errorf("NUMA engine remote-memory stalls %.3f should beat default %.3f",
			res.NUMAEngine.RemoteMemoryFraction, res.Default.RemoteMemoryFraction)
	}
	// And it must win on throughput.
	if res.NUMAEngine.OpsPerMCycle <= res.Clustered.OpsPerMCycle {
		t.Errorf("NUMA engine throughput %.1f should beat blind %.1f",
			res.NUMAEngine.OpsPerMCycle, res.Clustered.OpsPerMCycle)
	}
	_ = tbl.String()
}

func TestScale32LargerGain(t *testing.T) {
	if testing.Short() {
		t.Skip("32-way runs are slow")
	}
	res, err := Scale32(context.Background(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Section 7.4: the 8-chip machine shows a greater impact than the
	// 2-chip machine (the paper saw 14% vs 7-8%).
	if res.HandOptGain <= res.SmallMachineHandOptGain {
		t.Errorf("32-way hand-opt gain %.3f should exceed 8-way gain %.3f",
			res.HandOptGain, res.SmallMachineHandOptGain)
	}
	if res.ClusteredGain <= 0 {
		t.Errorf("32-way clustered gain = %.3f, want > 0", res.ClusteredGain)
	}
	_ = res.Table().String()
}
