package experiments

import (
	"context"
	"fmt"

	"threadcluster/internal/core"
	"threadcluster/internal/memory"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
	"threadcluster/internal/stats"
	"threadcluster/internal/workloads"
)

// ChurnPoint is one connection-lifetime configuration.
type ChurnPoint struct {
	// Label describes the churn level.
	Label string
	// ReplaceEveryRounds is how often one connection is torn down and
	// replaced (0 = persistent connections).
	ReplaceEveryRounds int
	// RemoteFraction is the steady remote-stall share under the engine.
	RemoteFraction float64
	// Activations is how many detections the engine needed.
	Activations uint64
}

// Churn studies why the paper modified RUBiS to use persistent database
// connections (Section 5.3.4): with a thread per connection, short-lived
// connections keep replacing the threads the engine has sampled and
// placed, so sharing patterns never hold still. The sweep replaces chat
// connections at increasing rates and measures the residual remote-stall
// share the engine cannot eliminate. Persistent connections (no churn)
// are the baseline the paper's configuration creates.
func Churn(ctx context.Context, opt Options) ([]ChurnPoint, *stats.Table, error) {
	configs := []struct {
		label string
		every int
	}{
		{"persistent (paper's choice)", 0},
		{"slow churn (1 conn / 150 rounds)", 150},
		{"fast churn (1 conn / 30 rounds)", 30},
	}
	var points []ChurnPoint
	t := stats.NewTable("Connection churn: why Section 5.3.4 uses persistent connections",
		"Connections", "Residual remote stalls", "Detections")
	for _, c := range configs {
		p, _, err := churnRun(ctx, opt, c.every)
		if err != nil {
			return nil, nil, err
		}
		p.Label = c.label
		points = append(points, p)
		t.AddRow(p.Label, stats.Pct(p.RemoteFraction), fmt.Sprintf("%d", p.Activations))
	}
	return points, t, nil
}

func churnRun(ctx context.Context, opt Options, replaceEvery int) (ChurnPoint, *core.Engine, error) {
	arena := memory.NewDefaultArena()
	vcfg := workloads.DefaultVolanoConfig()
	vcfg.Seed = opt.Seed
	server, err := workloads.NewVolanoServer(arena, vcfg)
	if err != nil {
		return ChurnPoint{}, nil, err
	}
	mcfg := sim.DefaultConfig()
	mcfg.Engine = opt.Engine
	mcfg.Topo = opt.Topo
	mcfg.Policy = sched.PolicyClustered
	mcfg.QuantumCycles = opt.QuantumCycles
	mcfg.Seed = opt.Seed
	m, err := sim.NewMachine(mcfg)
	if err != nil {
		return ChurnPoint{}, nil, err
	}
	if err := server.Spec().Install(m); err != nil {
		return ChurnPoint{}, nil, err
	}
	eng, err := newScaledEngine(m, opt)
	if err != nil {
		return ChurnPoint{}, nil, err
	}
	if err := eng.Install(); err != nil {
		return ChurnPoint{}, nil, err
	}

	// The churn driver: every replaceEvery rounds, tear down the oldest
	// live connection and open a fresh one in the same room. Runs as a
	// tick observer, i.e. between scheduling rounds.
	if replaceEvery > 0 {
		rounds := 0
		next := 0 // index into the spec's thread list, pairwise
		var churnErr error
		m.OnTick(func(m *sim.Machine) {
			rounds++
			if rounds%replaceEvery != 0 || churnErr != nil {
				return
			}
			threads := server.Spec().Threads
			if next+1 >= len(threads) {
				return // every original connection already replaced once
			}
			old0, old1 := threads[next], threads[next+1]
			room := old0.Partition
			next += 2
			if err := m.RemoveThread(old0.ID); err != nil {
				churnErr = err
				return
			}
			if err := m.RemoveThread(old1.ID); err != nil {
				churnErr = err
				return
			}
			pair, err := server.NewConnection(room)
			if err != nil {
				churnErr = err
				return
			}
			for _, th := range pair {
				if err := m.AddThread(th); err != nil {
					churnErr = err
					return
				}
			}
		})
		defer func() {
			if churnErr != nil {
				panic(churnErr) // driver errors are programming errors
			}
		}()
	}

	if err := m.RunRoundsCtx(ctx, opt.WarmRounds+opt.EngineRounds); err != nil {
		return ChurnPoint{}, nil, err
	}
	m.ResetMetrics()
	if err := m.RunRoundsCtx(ctx, opt.MeasureRounds); err != nil {
		return ChurnPoint{}, nil, err
	}
	return ChurnPoint{
		ReplaceEveryRounds: replaceEvery,
		RemoteFraction:     m.Breakdown().RemoteFraction(),
		Activations:        eng.Activations(),
	}, eng, nil
}
