package experiments

import (
	"context"
	"fmt"
	"time"

	"threadcluster/internal/clustering"
	"threadcluster/internal/stats"
)

// AblationRow scores one clustering algorithm or similarity metric on
// shMaps captured from a real detection run.
type AblationRow struct {
	Algorithm string
	Clusters  int
	Purity    float64
	RandIndex float64
	// Elapsed is wall-clock cost of the clustering pass itself — the
	// dimension that rules the "full-blown" algorithms out of an online
	// engine (Section 4.4.2).
	Elapsed time.Duration
}

// Ablation reproduces the study the paper defers to future work
// (Section 8): compare the light-weight one-pass clusterer against
// K-means and agglomerative hierarchical clustering, and the dot-product
// similarity metric against cosine and Jaccard, on the shMaps captured
// from one SPECjbb detection phase.
func Ablation(ctx context.Context, opt Options) ([]AblationRow, *stats.Table, error) {
	shmaps, truth, spec, err := detectedShMaps(ctx, JBB, opt)
	if err != nil {
		return nil, nil, err
	}

	scaled := ScaledEngineConfig(opt.Seed).Clustering

	run := func(name string, f func() []clustering.Cluster) AblationRow {
		start := time.Now() //tclint:allow wallclock -- AblationRow.Elapsed reports real algorithm cost, not simulated time
		clusters := f()
		elapsed := time.Since(start) //tclint:allow wallclock -- pairs with the start stamp above
		return AblationRow{
			Algorithm: name,
			Clusters:  len(clusters),
			Purity:    clustering.Purity(clusters, truth),
			RandIndex: clustering.RandIndex(clusters, truth),
			Elapsed:   elapsed,
		}
	}

	rows := []AblationRow{
		run("one-pass dot-product (paper)", func() []clustering.Cluster {
			return scaled.Cluster(shmaps)
		}),
		run("one-pass cosine", func() []clustering.Cluster {
			cfg := scaled
			cfg.Metric = clustering.Cosine
			cfg.Threshold = 0.5
			return cfg.Cluster(shmaps)
		}),
		run("one-pass jaccard", func() []clustering.Cluster {
			cfg := scaled
			cfg.Metric = clustering.Jaccard
			cfg.Threshold = 0.3
			return cfg.Cluster(shmaps)
		}),
		run(fmt.Sprintf("k-means (k=%d, oracle)", spec.NumPartitions), func() []clustering.Cluster {
			return clustering.KMeans(shmaps, spec.NumPartitions, scaled.Floor, scaled.GlobalFraction, opt.Seed, 50)
		}),
		run("hierarchical avg-linkage", func() []clustering.Cluster {
			return clustering.Hierarchical(shmaps, scaled)
		}),
	}

	t := stats.NewTable("Ablation: clustering algorithms and similarity metrics (SPECjbb shMaps)",
		"Algorithm", "Clusters", "Purity", "Rand index", "Cost")
	for _, r := range rows {
		t.AddRow(r.Algorithm,
			fmt.Sprintf("%d", r.Clusters),
			fmt.Sprintf("%.3f", r.Purity),
			fmt.Sprintf("%.3f", r.RandIndex),
			r.Elapsed.Round(time.Microsecond).String())
	}
	return rows, t, nil
}

// ThresholdPoint is one sweep point of the similarity-threshold
// sensitivity study.
type ThresholdPoint struct {
	Threshold float64
	Clusters  int
	RandIndex float64
}

// ThresholdSensitivity sweeps the similarity threshold over three orders
// of magnitude on shMaps captured from one SPECjbb detection and reports
// how the clustering responds — the parameter-sensitivity question
// Section 8 leaves open. The expected shape: a wide plateau of correct
// clusterings between "too low" (everything merges) and "too high"
// (everything is a singleton).
func ThresholdSensitivity(ctx context.Context, opt Options) ([]ThresholdPoint, *stats.Table, error) {
	shmaps, truth, _, err := detectedShMaps(ctx, JBB, opt)
	if err != nil {
		return nil, nil, err
	}
	scaled := ScaledEngineConfig(opt.Seed).Clustering
	thresholds := []float64{1, 10, 50, 100, 500, 1_000, 5_000, 20_000, 100_000, 1_000_000}
	var points []ThresholdPoint
	t := stats.NewTable("Similarity-threshold sensitivity (SPECjbb shMaps, dot-product metric)",
		"Threshold", "Clusters", "Rand index")
	for _, th := range thresholds {
		cfg := scaled
		cfg.Threshold = th
		clusters := cfg.Cluster(shmaps)
		p := ThresholdPoint{
			Threshold: th,
			Clusters:  len(clusters),
			RandIndex: clustering.RandIndex(clusters, truth),
		}
		points = append(points, p)
		t.AddRow(fmt.Sprintf("%.0f", th), fmt.Sprintf("%d", p.Clusters), fmt.Sprintf("%.3f", p.RandIndex))
	}
	return points, t, nil
}
