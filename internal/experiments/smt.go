package experiments

import (
	"context"
	"fmt"

	"threadcluster/internal/memory"
	"threadcluster/internal/pmu"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
	"threadcluster/internal/stats"
	"threadcluster/internal/topology"
	"threadcluster/internal/workloads"
)

// SMTRow is one configuration of the intra-chip placement ablation.
type SMTRow struct {
	Placement string
	// SMTStallFraction is the share of cycles lost to SMT sibling
	// contention.
	SMTStallFraction float64
	// RemoteFraction stays for reference: both placements keep cluster
	// chip affinity, so it should be near zero for both.
	RemoteFraction float64
	// OpsPerMCycle is throughput.
	OpsPerMCycle float64
}

// SMTPlacement runs the intra-chip placement ablation: the paper assigns
// threads within a chip "uniformly and randomly ... to the cores and the
// different hardware contexts" (Section 4.5) and defers SMT-awareness to
// the co-scheduling literature of Section 2. With SMT contention modelled
// (co-running sibling contexts share the core's issue bandwidth) and an
// under-committed machine (fewer threads than hardware contexts), the
// cores-first alternative keeps SMT siblings free while whole cores are
// idle. Both placements co-locate each sharing pair on one chip — only
// the within-chip rule differs — and the sweep averages several seeds
// because the random rule's outcome is by construction a lottery.
func SMTPlacement(ctx context.Context, opt Options) ([]SMTRow, *stats.Table, error) {
	const seeds = 6
	rows := []SMTRow{{Placement: "random (paper §4.5)"}, {Placement: "cores-first (SMT-aware)"}}
	for s := int64(0); s < seeds; s++ {
		for i, spread := range []bool{false, true} {
			r, err := smtRun(ctx, opt, opt.Seed+s, spread)
			if err != nil {
				return nil, nil, err
			}
			rows[i].SMTStallFraction += r.SMTStallFraction / seeds
			rows[i].RemoteFraction += r.RemoteFraction / seeds
			rows[i].OpsPerMCycle += r.OpsPerMCycle / seeds
		}
	}
	t := stats.NewTable("Intra-chip placement ablation (SMT contention modelled, 4 threads on 8 contexts)",
		"Placement", "SMT stalls", "Remote stalls", "Throughput (ops/Mcycle)")
	for _, r := range rows {
		t.AddRow(r.Placement, stats.Pct(r.SMTStallFraction), stats.Pct(r.RemoteFraction),
			fmt.Sprintf("%.1f", r.OpsPerMCycle))
	}
	return rows, t, nil
}

func smtRun(ctx context.Context, opt Options, seed int64, spread bool) (SMTRow, error) {
	arena := memory.NewDefaultArena()
	// Two sharing pairs: 4 threads on the 8-context machine.
	wcfg := workloads.SyntheticConfig{
		Scoreboards:     2,
		ThreadsPerBoard: 2,
		ScoreboardBytes: 16 * memory.LineSize,
		PrivateBytes:    64 << 10,
		SharedRatio:     0.4,
		WriteRatio:      0.5,
		Seed:            seed,
	}
	spec, err := workloads.NewSynthetic(arena, wcfg)
	if err != nil {
		return SMTRow{}, err
	}
	mcfg := sim.DefaultConfig()
	mcfg.Engine = opt.Engine
	mcfg.Topo = opt.Topo
	mcfg.Policy = sched.PolicyRoundRobin // static: the experiment places manually
	mcfg.QuantumCycles = opt.QuantumCycles
	mcfg.Seed = seed
	mcfg.SMTContentionPct = 30
	m, err := sim.NewMachine(mcfg)
	if err != nil {
		return SMTRow{}, err
	}
	if err := spec.Install(m); err != nil {
		return SMTRow{}, err
	}

	// Cluster-to-chip assignment as the engine would do it (pair p goes
	// to chip p); the within-chip rule is the ablated choice: uniformly
	// random contexts (the paper) versus one thread per core.
	s := m.Scheduler()
	topo := m.Topology()
	nextCore := make([]int, topo.Chips)
	for _, th := range spec.Threads {
		chip := th.Partition % topo.Chips
		var cpu topology.CPUID
		if spread {
			core := chip*topo.CoresPerChip + nextCore[chip]%topo.CoresPerChip
			cpu = topo.CPUsOfCore(core)[nextCore[chip]/topo.CoresPerChip%topo.ContextsPerCore]
			nextCore[chip]++
		} else {
			cpu = s.RandomCPUOnChip(chip)
		}
		if err := s.Migrate(th.ID, cpu); err != nil {
			return SMTRow{}, err
		}
	}

	if err := m.RunRoundsCtx(ctx, opt.WarmRounds); err != nil {
		return SMTRow{}, err
	}
	m.ResetMetrics()
	if err := m.RunRoundsCtx(ctx, opt.MeasureRounds); err != nil {
		return SMTRow{}, err
	}
	b := m.Breakdown()
	row := SMTRow{
		SMTStallFraction: b.Fraction(pmu.EvStallSMT),
		RemoteFraction:   b.RemoteFraction(),
	}
	if b.Cycles > 0 {
		row.OpsPerMCycle = float64(m.TotalOps()) / (float64(b.Cycles) / 1e6)
	}
	return row, nil
}
