package experiments

import (
	"context"
	"fmt"

	"threadcluster/internal/clustering"
	"threadcluster/internal/core"
	"threadcluster/internal/pmu"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
	"threadcluster/internal/stats"
	"threadcluster/internal/topology"
	"threadcluster/internal/workloads"
)

// Figure8Point is one sweep point of the Figure 8 trade-off.
type Figure8Point struct {
	// RatePercent is the temporal sampling rate: the percentage of remote
	// cache accesses captured (100 / N).
	RatePercent float64
	// OverheadPercent is detection-phase runtime overhead: cycles spent
	// in sampling interrupts as a share of all cycles during detection.
	OverheadPercent float64
	// TrackingCycles is how long the detection phase ran to collect the
	// sample target (the right-hand axis of Figure 8).
	TrackingCycles uint64
}

// Figure8 reproduces Figure 8: the runtime overhead of the sharing
// detection phase and the time needed to collect the sample target, as a
// function of the temporal sampling rate, for SPECjbb. The paper sweeps
// capture rates of 2, 5, 10, 20 and 50 percent (N = 50, 20, 10, 5, 2) and
// finds ~10% to be the balance point.
func Figure8(ctx context.Context, opt Options) ([]Figure8Point, *stats.Table, error) {
	intervals := []uint64{50, 20, 10, 5, 2}
	var points []Figure8Point
	t := stats.NewTable("Figure 8: sampling-rate trade-off (SPECjbb detection phase)",
		"Capture rate", "Overhead", "Tracking cycles")
	for _, n := range intervals {
		p, err := figure8Point(ctx, n, opt)
		if err != nil {
			return nil, nil, err
		}
		points = append(points, p)
		t.AddRow(
			fmt.Sprintf("%.0f%% (1 in %d)", p.RatePercent, n),
			fmt.Sprintf("%.2f%%", p.OverheadPercent),
			fmt.Sprintf("%d", p.TrackingCycles),
		)
	}
	return points, t, nil
}

func figure8Point(ctx context.Context, interval uint64, opt Options) (Figure8Point, error) {
	spec, err := BuildWorkload(JBB, opt.Seed)
	if err != nil {
		return Figure8Point{}, err
	}
	mcfg := sim.DefaultConfig()
	mcfg.Engine = opt.Engine
	mcfg.Topo = opt.Topo
	mcfg.Policy = sched.PolicyClustered
	mcfg.QuantumCycles = opt.QuantumCycles
	mcfg.Seed = opt.Seed
	m, err := sim.NewMachine(mcfg)
	if err != nil {
		return Figure8Point{}, err
	}
	if err := spec.Install(m); err != nil {
		return Figure8Point{}, err
	}
	cfg := ControlledEngineConfig(opt.Seed)
	cfg.SamplingInterval = interval
	cfg.SamplingJitter = 0 // hold the rate exactly for the sweep
	eng, err := core.New(m, cfg)
	if err != nil {
		return Figure8Point{}, err
	}
	if err := eng.Install(); err != nil {
		return Figure8Point{}, err
	}
	if err := m.RunRoundsCtx(ctx, opt.WarmRounds); err != nil {
		return Figure8Point{}, err
	}
	m.ResetMetrics()
	eng.ForceDetection()
	for r := 0; r < 200*opt.EngineRounds && eng.Phase() == core.PhaseDetecting; r += 20 {
		if err := m.RunRoundsCtx(ctx, 20); err != nil {
			return Figure8Point{}, err
		}
	}
	if eng.Phase() == core.PhaseDetecting {
		return Figure8Point{}, fmt.Errorf("experiments: detection at interval %d never finished", interval)
	}
	b := m.Breakdown()
	return Figure8Point{
		RatePercent:     100.0 / float64(interval),
		OverheadPercent: 100 * stats.Ratio(float64(m.OverheadCycles()), float64(b.Cycles)),
		TrackingCycles:  eng.LastDetectionCycles(),
	}, nil
}

// SpatialPoint is one row of the Section 6.4 spatial sensitivity study.
type SpatialPoint struct {
	Entries     int
	Clusters    int
	BigClusters int // clusters of at least 2 threads
	Purity      float64
	RandIndex   float64
}

// SpatialSensitivity reproduces Section 6.4: varying the shMap size (128,
// 256, 512 entries) must leave cluster identification essentially
// unchanged.
func SpatialSensitivity(ctx context.Context, opt Options) ([]SpatialPoint, *stats.Table, error) {
	sizes := []int{128, 256, 512}
	var points []SpatialPoint
	t := stats.NewTable("Section 6.4: spatial sampling sensitivity (SPECjbb)",
		"shMap entries", "clusters", ">=2-thread clusters", "purity", "rand index")
	for _, n := range sizes {
		p, err := spatialPoint(ctx, n, opt)
		if err != nil {
			return nil, nil, err
		}
		points = append(points, p)
		t.AddRowf(n, p.Clusters, p.BigClusters, p.Purity, p.RandIndex)
	}
	return points, t, nil
}

func spatialPoint(ctx context.Context, entries int, opt Options) (SpatialPoint, error) {
	spec, err := BuildWorkload(JBB, opt.Seed)
	if err != nil {
		return SpatialPoint{}, err
	}
	mcfg := sim.DefaultConfig()
	mcfg.Engine = opt.Engine
	mcfg.Topo = opt.Topo
	mcfg.Policy = sched.PolicyClustered
	mcfg.QuantumCycles = opt.QuantumCycles
	mcfg.Seed = opt.Seed
	m, err := sim.NewMachine(mcfg)
	if err != nil {
		return SpatialPoint{}, err
	}
	if err := spec.Install(m); err != nil {
		return SpatialPoint{}, err
	}
	cfg := ControlledEngineConfig(opt.Seed)
	cfg.ShMapEntries = entries
	cfg.FilterQuota = entries / 4
	eng, err := core.New(m, cfg)
	if err != nil {
		return SpatialPoint{}, err
	}
	if err := eng.Install(); err != nil {
		return SpatialPoint{}, err
	}
	if err := m.RunRoundsCtx(ctx, opt.WarmRounds); err != nil {
		return SpatialPoint{}, err
	}
	snap, err := forceDetectionAndWait(ctx, m, eng, 40*opt.EngineRounds)
	if err != nil {
		return SpatialPoint{}, fmt.Errorf("experiments: %d entries: %w", entries, err)
	}
	clusters := snap.clusters
	truth := make(map[clustering.ThreadKey]int)
	for _, th := range spec.Threads {
		truth[clustering.ThreadKey(th.ID)] = th.Partition
	}
	big := 0
	for _, c := range clusters {
		if c.Size() >= 2 {
			big++
		}
	}
	return SpatialPoint{
		Entries:     entries,
		Clusters:    len(clusters),
		BigClusters: big,
		Purity:      clustering.Purity(clusters, truth),
		RandIndex:   clustering.RandIndex(clusters, truth),
	}, nil
}

// SDARPurityResult validates the Section 5.2.1 composition.
type SDARPurityResult struct {
	// SamplesRead is how many overflow-triggered register reads happened.
	SamplesRead int
	// TrulyRemote is how many of those reads actually held the address of
	// a remote cache access (checked against simulator ground truth).
	TrulyRemote int
	// Purity is TrulyRemote / SamplesRead. The paper's microbenchmark
	// validation found "almost all" samples to be remote accesses.
	Purity float64
}

// SDARPurity reproduces the Section 5.2.1 validation: program the overflow
// exception on the remote-access event, read the continuous-sampling
// register (which the hardware updates on *every* L1D miss) from the
// handler, and measure what fraction of the sampled addresses were truly
// remote accesses. The synthetic microbenchmark supplies plenty of local
// misses (large private chunks) to stress the technique.
func SDARPurity(ctx context.Context, opt Options) (SDARPurityResult, error) {
	spec, err := BuildWorkload(Microbenchmark, opt.Seed)
	if err != nil {
		return SDARPurityResult{}, err
	}
	mcfg := sim.DefaultConfig()
	mcfg.Engine = opt.Engine
	mcfg.Topo = opt.Topo
	mcfg.Policy = sched.PolicyRoundRobin // scatter sharers: plenty of remote traffic
	mcfg.QuantumCycles = opt.QuantumCycles
	mcfg.Seed = opt.Seed
	m, err := sim.NewMachine(mcfg)
	if err != nil {
		return SDARPurityResult{}, err
	}
	if err := spec.Install(m); err != nil {
		return SDARPurityResult{}, err
	}
	var res SDARPurityResult
	for c := 0; c < opt.Topo.NumCPUs(); c++ {
		cpu := topology.CPUID(c)
		p := m.PMU(cpu)
		err := p.Program(0, pmu.EvRemoteAccess, 10, func(p *pmu.PMU) uint64 {
			s := p.ReadSDAR()
			if !s.Valid {
				return 0
			}
			res.SamplesRead++
			if s.SDARSourceForValidation().Remote() {
				res.TrulyRemote++
			}
			return 0
		})
		if err != nil {
			return SDARPurityResult{}, err
		}
	}
	if err := m.RunRoundsCtx(ctx, opt.WarmRounds+opt.MeasureRounds); err != nil {
		return SDARPurityResult{}, err
	}
	res.Purity = stats.Ratio(float64(res.TrulyRemote), float64(res.SamplesRead))
	return res, nil
}

// Table renders the SDAR purity result.
func (r SDARPurityResult) Table() *stats.Table {
	t := stats.NewTable("Section 5.2.1: sampled-address purity (microbenchmark)",
		"Samples read", "Truly remote", "Purity")
	t.AddRow(fmt.Sprintf("%d", r.SamplesRead), fmt.Sprintf("%d", r.TrulyRemote), stats.Pct(r.Purity))
	return t
}

// detectedShMaps runs one engine detection on a workload and returns the
// shMaps, ground truth and spec — shared setup for the ablation study.
func detectedShMaps(ctx context.Context, name string, opt Options) (map[clustering.ThreadKey]*clustering.ShMap, map[clustering.ThreadKey]int, *workloads.Spec, error) {
	spec, err := BuildWorkload(name, opt.Seed)
	if err != nil {
		return nil, nil, nil, err
	}
	mcfg := sim.DefaultConfig()
	mcfg.Engine = opt.Engine
	mcfg.Topo = opt.Topo
	mcfg.Policy = sched.PolicyClustered
	mcfg.QuantumCycles = opt.QuantumCycles
	mcfg.Seed = opt.Seed
	m, err := sim.NewMachine(mcfg)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := spec.Install(m); err != nil {
		return nil, nil, nil, err
	}
	eng, err := core.New(m, ControlledEngineConfig(opt.Seed))
	if err != nil {
		return nil, nil, nil, err
	}
	if err := eng.Install(); err != nil {
		return nil, nil, nil, err
	}
	if err := m.RunRoundsCtx(ctx, opt.WarmRounds); err != nil {
		return nil, nil, nil, err
	}
	snap, err := forceDetectionAndWait(ctx, m, eng, 40*opt.EngineRounds)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("experiments: %s: %w", name, err)
	}
	truth := make(map[clustering.ThreadKey]int)
	for _, th := range spec.Threads {
		truth[clustering.ThreadKey(th.ID)] = th.Partition
	}
	return snap.shmaps, truth, spec, nil
}
