package experiments

import (
	"context"
	"fmt"

	"threadcluster/internal/clustering"
	"threadcluster/internal/memory"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
	"threadcluster/internal/stats"
	"threadcluster/internal/workloads"
)

// PhaseChangeResult is the Section 4.1 adaptivity study's outcome.
type PhaseChangeResult struct {
	// Timeline samples the machine-wide remote-stall fraction per
	// observation window, across the whole run.
	Timeline stats.Series
	// BeforeShift is the remote fraction in the window just before the
	// workload's sharing pattern changes (after the first clustering has
	// settled).
	BeforeShift float64
	// PeakAfterShift is the worst windowed remote fraction after the
	// shift (the dissolved clusters thrash across chips again).
	PeakAfterShift float64
	// FinalFraction is the remote fraction at the end of the run, after
	// the engine has re-clustered.
	FinalFraction float64
	// Activations counts detection activations over the run; adapting to
	// the shift requires at least two.
	Activations uint64
	// SecondPhasePurity scores the final clustering against the second
	// phase's ground truth.
	SecondPhasePurity float64
}

// PhaseChange demonstrates the iterative re-clustering of Section 4.1:
// the microbenchmark's threads switch scoreboards mid-run, dissolving
// every detected cluster; the engine must notice the returning remote
// stalls, re-enter detection, and migrate the new clusters together.
func PhaseChange(ctx context.Context, opt Options) (PhaseChangeResult, error) {
	arena := memory.NewDefaultArena()
	wcfg := workloads.DefaultSyntheticConfig()
	wcfg.Seed = opt.Seed

	mcfg := sim.DefaultConfig()
	mcfg.Engine = opt.Engine
	mcfg.Topo = opt.Topo
	mcfg.Policy = sched.PolicyClustered
	mcfg.QuantumCycles = opt.QuantumCycles
	mcfg.Seed = opt.Seed
	m, err := sim.NewMachine(mcfg)
	if err != nil {
		return PhaseChangeResult{}, err
	}

	// Shift roughly in the middle of the run. Each thread executes about
	// quantum/avgCost references per round and holds a CPU half the time
	// (16 threads, 8 CPUs).
	totalRounds := opt.WarmRounds + 2*opt.EngineRounds + opt.MeasureRounds
	shiftRefs := uint64(totalRounds) * opt.QuantumCycles / 2 / 40
	spec, err := workloads.NewSyntheticWithPhaseChange(arena, wcfg, shiftRefs)
	if err != nil {
		return PhaseChangeResult{}, err
	}
	if err := spec.Install(m); err != nil {
		return PhaseChangeResult{}, err
	}
	eng, err := newScaledEngine(m, opt)
	if err != nil {
		return PhaseChangeResult{}, err
	}
	if err := eng.Install(); err != nil {
		return PhaseChangeResult{}, err
	}

	res := PhaseChangeResult{Timeline: stats.Series{Label: "remote-stall fraction"}}
	const window = 50 // rounds per observation window
	var lastCycles, lastRemote uint64
	shifted := false
	shiftRound := -1
	for round := 0; round < totalRounds; round += window {
		if err := m.RunRoundsCtx(ctx, window); err != nil {
			return res, err
		}
		b := m.Breakdown()
		frac := stats.Ratio(float64(b.RemoteStalls()-lastRemote), float64(b.Cycles-lastCycles))
		lastCycles, lastRemote = b.Cycles, b.RemoteStalls()
		res.Timeline.Add(float64(round+window), frac)

		if !shifted && m.Threads()[0].Insts > 0 {
			// Detect the shift by thread progress (refs ~ insts/11).
			if m.Threads()[0].Insts/11 >= shiftRefs {
				shifted = true
				shiftRound = round
				res.BeforeShift = frac
			}
		}
		if shifted && frac > res.PeakAfterShift {
			res.PeakAfterShift = frac
		}
	}
	if shiftRound < 0 {
		return res, fmt.Errorf("experiments: phase shift never happened; tune shiftRefs")
	}
	n := len(res.Timeline.Points)
	res.FinalFraction = res.Timeline.Points[n-1].Y
	res.Activations = eng.Activations()

	truth := make(map[clustering.ThreadKey]int)
	for id, p := range workloads.SecondPhaseTruth(wcfg) {
		truth[clustering.ThreadKey(id)] = p
	}
	res.SecondPhasePurity = clustering.Purity(eng.Clusters(), truth)
	return res, nil
}

// Table renders the phase-change study.
func (r PhaseChangeResult) Table() *stats.Table {
	t := stats.NewTable("Section 4.1: adaptation to a sharing phase change (microbenchmark)",
		"Quantity", "Value")
	t.AddRow("remote stalls before shift", stats.Pct(r.BeforeShift))
	t.AddRow("peak after shift", stats.Pct(r.PeakAfterShift))
	t.AddRow("after re-clustering", stats.Pct(r.FinalFraction))
	t.AddRow("detection activations", fmt.Sprintf("%d", r.Activations))
	t.AddRow("second-phase cluster purity", fmt.Sprintf("%.2f", r.SecondPhasePurity))
	return t
}
