package experiments

import (
	"context"
	"fmt"

	"threadcluster/internal/cache"
	"threadcluster/internal/core"
	"threadcluster/internal/memory"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
	"threadcluster/internal/stats"
	"threadcluster/internal/topology"
	"threadcluster/internal/workloads"
)

// NUMARow is one configuration of the Section 8 NUMA extension study.
type NUMARow struct {
	Config string
	// RemoteCacheFraction is remote-cache-access stalls / cycles.
	RemoteCacheFraction float64
	// RemoteMemoryFraction is remote-memory stalls / cycles.
	RemoteMemoryFraction float64
	// OpsPerMCycle is throughput.
	OpsPerMCycle float64
}

// NUMAResult carries the study's rows in comparison order.
type NUMAResult struct {
	Default    NUMARow // default Linux placement, no engine
	Clustered  NUMARow // engine on, NUMA-blind (base paper scheme)
	NUMAEngine NUMARow // engine on, Section 8 NUMA extension
}

// numaTopo is the machine for the study: four chips so a NUMA-blind
// cluster placement is right only a quarter of the time, making the
// data-affinity effect visible above placement luck.
func numaTopo() topology.Topology {
	return topology.Topology{Chips: 4, CoresPerChip: 2, ContextsPerCore: 2}
}

// numaStripe is the address stripe per node; each warehouse's arena fits
// comfortably inside one stripe.
const numaStripe = 1 << 32

// NUMA runs the Section 8 extension study: a four-chip machine whose
// memory controllers are per-chip, a SPECjbb configuration with one
// warehouse group per node (node-bound allocation), and working sets
// sized past the caches so memory fills matter. Compared are default
// placement, the base (NUMA-blind) clustering engine, and the engine
// with the Section 8 extension (remote-memory sampling + data-affinity
// aware cluster placement).
func NUMA(ctx context.Context, opt Options) (NUMAResult, *stats.Table, error) {
	var res NUMAResult
	var err error
	if res.Default, err = numaRun(ctx, opt, sched.PolicyDefault, false, false); err != nil {
		return res, nil, err
	}
	if res.Clustered, err = numaRun(ctx, opt, sched.PolicyClustered, true, false); err != nil {
		return res, nil, err
	}
	if res.NUMAEngine, err = numaRun(ctx, opt, sched.PolicyClustered, true, true); err != nil {
		return res, nil, err
	}

	t := stats.NewTable("Section 8 extension: thread clustering on a 4-node NUMA machine (SPECjbb)",
		"Configuration", "Remote-cache stalls", "Remote-memory stalls", "Throughput (ops/Mcycle)")
	for _, row := range []NUMARow{res.Default, res.Clustered, res.NUMAEngine} {
		t.AddRow(row.Config,
			stats.Pct(row.RemoteCacheFraction),
			stats.Pct(row.RemoteMemoryFraction),
			fmt.Sprintf("%.1f", row.OpsPerMCycle))
	}
	return res, t, nil
}

func numaRun(ctx context.Context, opt Options, policy sched.Policy, withEngine, numaEngine bool) (NUMARow, error) {
	topo := numaTopo()
	nodes := memory.StripedNodes{N: topo.Chips, Stripe: numaStripe}
	arenas, err := memory.NodeArenas(nodes)
	if err != nil {
		return NUMARow{}, err
	}

	wcfg := workloads.DefaultJBBConfig()
	wcfg.Warehouses = topo.Chips
	wcfg.ThreadsPerWarehouse = 4
	wcfg.InitialKeys = 12_000 // ~0.9MB of tree per warehouse: larger than the shrunk caches below
	wcfg.Seed = opt.Seed
	// Reverse the warehouse-to-node mapping (warehouse i lives on node
	// Chips-1-i). A NUMA-blind engine places equal-sized clusters on
	// chips in discovery order, which without this shuffle would line up
	// with the nodes by accident of symmetric numbering; reversing the
	// homes makes data affinity something only the NUMA-aware placement
	// can get right.
	homes := make([]*memory.Arena, len(arenas))
	for i := range arenas {
		homes[i] = arenas[len(arenas)-1-i]
	}
	spec, err := workloads.NewJBBOnNodes(homes, wcfg)
	if err != nil {
		return NUMARow{}, err
	}

	mcfg := sim.DefaultConfig()
	mcfg.Engine = opt.Engine
	mcfg.Topo = topo
	mcfg.Lat = topology.NUMALatencies()
	// Shrink the caches so steady-state capacity misses reach memory and
	// the memory's home node matters.
	mcfg.Caches = cache.HierarchyConfig{
		L1:        cache.Config{SizeBytes: 32 << 10, Ways: 4},
		L2:        cache.Config{SizeBytes: 256 << 10, Ways: 8},
		L3:        cache.Config{SizeBytes: 512 << 10, Ways: 8},
		Coherence: opt.Coherence,
	}
	mcfg.Policy = policy
	mcfg.QuantumCycles = opt.QuantumCycles
	mcfg.Seed = opt.Seed
	m, err := sim.NewMachine(mcfg)
	if err != nil {
		return rowErr(err)
	}
	m.Hierarchy().SetNUMA(nodes)
	if err := spec.Install(m); err != nil {
		return rowErr(err)
	}

	name := "default"
	if withEngine {
		ecfg, err := EngineConfigFor(opt)
		if err != nil {
			return rowErr(err)
		}
		if numaEngine {
			ecfg.NUMA = true
			ecfg.NodeOf = func(a memory.Addr) int { return nodes.NodeOf(a) }
			name = "clustered+numa (Section 8)"
		} else {
			name = "clustered (NUMA-blind)"
		}
		eng, err := core.New(m, ecfg)
		if err != nil {
			return rowErr(err)
		}
		if err := eng.Install(); err != nil {
			return rowErr(err)
		}
	}

	if err := m.RunRoundsCtx(ctx, opt.WarmRounds+opt.EngineRounds); err != nil {
		return rowErr(err)
	}
	m.ResetMetrics()
	if err := m.RunRoundsCtx(ctx, opt.MeasureRounds); err != nil {
		return rowErr(err)
	}
	b := m.Breakdown()
	row := NUMARow{
		Config:               name,
		RemoteCacheFraction:  b.RemoteFraction(),
		RemoteMemoryFraction: b.RemoteMemoryFraction(),
	}
	if b.Cycles > 0 {
		row.OpsPerMCycle = float64(m.TotalOps()) / (float64(b.Cycles) / 1e6)
	}
	return row, nil
}

// rowErr adapts an error to the numaRun signature.
func rowErr(err error) (NUMARow, error) { return NUMARow{}, err }
