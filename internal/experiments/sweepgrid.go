package experiments

import (
	"context"
	"fmt"
	"strings"

	"threadcluster/internal/core"
	"threadcluster/internal/metrics"
	"threadcluster/internal/pmu"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
	"threadcluster/internal/stats"
	"threadcluster/internal/sweep"
	"threadcluster/internal/topology"
)

// Topology names accepted by the sweep grid.
const (
	TopoOpenPower720 = "open720"
	TopoPower5_32    = "power5-32"
)

// ParseTopo resolves a topology name.
func ParseTopo(name string) (topology.Topology, error) {
	switch name {
	case TopoOpenPower720:
		return topology.OpenPower720(), nil
	case TopoPower5_32:
		return topology.Power5_32Way(), nil
	}
	return topology.Topology{}, fmt.Errorf("experiments: unknown topology %q", name)
}

// ParsePolicy resolves a placement-policy name (the Policy.String forms).
func ParsePolicy(name string) (sched.Policy, error) {
	for _, p := range []sched.Policy{
		sched.PolicyDefault, sched.PolicyRoundRobin,
		sched.PolicyHandOptimized, sched.PolicyClustered,
	} {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("experiments: unknown policy %q", name)
}

// GridSpec enumerates a configuration grid: every combination of
// topology x workload x policy, each run as one independent machine.
type GridSpec struct {
	Workloads []string
	Policies  []sched.Policy
	Topos     []string
	// BaseSeed derives each cell's seed. All policies of the same
	// (topology, workload) pair share a seed so their workload streams
	// are identical and policy effects are isolated; distinct pairs get
	// decorrelated seeds via sweep.DeriveSeed.
	BaseSeed int64
	// Opt carries the run lengths; Topo and Seed are overridden per cell.
	Opt Options
}

// GridCell is one configuration of the grid.
type GridCell struct {
	Workload string
	Policy   sched.Policy
	Topo     string
	Seed     int64
}

// Name renders the cell as "workload/policy/topo".
func (c GridCell) Name() string {
	return c.Workload + "/" + c.Policy.String() + "/" + c.Topo
}

// Cells expands the grid in deterministic order (topology-major, then
// workload, then policy).
func (g GridSpec) Cells() []GridCell {
	var cells []GridCell
	for ti, topo := range g.Topos {
		for wi, wl := range g.Workloads {
			seed := sweep.DeriveSeed(g.BaseSeed, ti*len(g.Workloads)+wi)
			for _, pol := range g.Policies {
				cells = append(cells, GridCell{Workload: wl, Policy: pol, Topo: topo, Seed: seed})
			}
		}
	}
	return cells
}

// Tasks compiles the grid into sweep tasks. Each task builds its own
// machine, measures RunWorkload's interval and returns the run's metrics
// snapshot; the returned cells parallel the tasks index-wise.
func (g GridSpec) Tasks() ([]GridCell, []sweep.Task, error) {
	cells := g.Cells()
	tasks := make([]sweep.Task, 0, len(cells))
	for _, cell := range cells {
		task, err := g.taskFor(cell)
		if err != nil {
			return nil, nil, err
		}
		tasks = append(tasks, task)
	}
	return cells, tasks, nil
}

// SubsetTasks compiles only the grid cells at the given full-grid
// indices, preserving each cell's full-grid identity: names and seeds
// are exactly what Tasks would assign at those positions, so a shard of
// the grid executed elsewhere produces the same per-cell snapshots the
// whole grid would. Indices must be strictly increasing and in range
// (see CheckSubset). This is the partition primitive the fleet
// coordinator shards jobs with.
func (g GridSpec) SubsetTasks(indices []int) ([]GridCell, []sweep.Task, error) {
	all := g.Cells()
	if err := CheckSubset(len(all), indices); err != nil {
		return nil, nil, err
	}
	cells := make([]GridCell, 0, len(indices))
	tasks := make([]sweep.Task, 0, len(indices))
	for _, idx := range indices {
		cell := all[idx]
		task, err := g.taskFor(cell)
		if err != nil {
			return nil, nil, err
		}
		cells = append(cells, cell)
		tasks = append(tasks, task)
	}
	return cells, tasks, nil
}

// CheckSubset validates a cell-index subset against a grid of n cells:
// indices must be strictly increasing (sorted, no duplicates) and every
// index must fall in [0, n).
func CheckSubset(n int, indices []int) error {
	for i, idx := range indices {
		if idx < 0 || idx >= n {
			return fmt.Errorf("experiments: cell index %d outside grid of %d cells", idx, n)
		}
		if i > 0 && idx <= indices[i-1] {
			return fmt.Errorf("experiments: cell indices not strictly increasing at %d (after %d)", idx, indices[i-1])
		}
	}
	return nil
}

// taskFor compiles one grid cell into its sweep task.
func (g GridSpec) taskFor(cell GridCell) (sweep.Task, error) {
	topo, err := ParseTopo(cell.Topo)
	if err != nil {
		return sweep.Task{}, err
	}
	if _, err := BuildWorkload(cell.Workload, cell.Seed); err != nil {
		return sweep.Task{}, err
	}
	return sweep.Task{
		Name: cell.Name(),
		Seed: cell.Seed,
		Run: func(ctx context.Context, seed int64) (metrics.Snapshot, error) {
			opt := g.Opt
			opt.Topo = topo
			opt.Seed = seed
			r, _, err := RunWorkload(ctx, cell.Workload, cell.Policy, cell.Policy == sched.PolicyClustered, opt)
			if err != nil {
				return metrics.Snapshot{}, err
			}
			return r.Metrics, nil
		},
	}, nil
}

// RunGrid executes the grid on the sweep pool and returns per-cell
// results (in cell order) plus the merged machine-wide snapshot. The
// per-cell results are byte-identical for any worker count: every cell's
// seed is fixed by the grid, not by scheduling.
func RunGrid(ctx context.Context, g GridSpec, workers int) ([]GridCell, []sweep.Result, metrics.Snapshot, error) {
	cells, tasks, err := g.Tasks()
	if err != nil {
		return nil, nil, metrics.Snapshot{}, err
	}
	results, err := sweep.Run(ctx, tasks, workers)
	if err != nil {
		return nil, nil, metrics.Snapshot{}, err
	}
	return cells, results, sweep.Merged(results), nil
}

// stallName is the label value of one remote stall series.
func stallName(ev pmu.Event) string { return ev.String() }

// GridTable renders one row per cell: the headline numbers a sweep is
// usually after, all pulled from the structured snapshots.
func GridTable(cells []GridCell, results []sweep.Result) *stats.Table {
	t := stats.NewTable("Sweep: policy x topology x workload",
		"Config", "Seed", "Cycles(M)", "CPI", "Remote%", "Ops/Mcycle", "Migrations", "Activations")
	for i, r := range results {
		cell := cells[i]
		if r.Err != nil {
			t.AddRow(cell.Name(), fmt.Sprint(cell.Seed), "error: "+r.Err.Error(), "", "", "", "", "")
			continue
		}
		s := r.Metrics
		cycles := s.Counter(sim.MetricPMUCycles, nil)
		insts := s.Counter(sim.MetricPMUInsts, nil)
		remote := s.Counter(sim.MetricPMUStalls, metrics.Labels{"event": stallName(pmu.EvStallRemoteL2)}) +
			s.Counter(sim.MetricPMUStalls, metrics.Labels{"event": stallName(pmu.EvStallRemoteL3)})
		ops := s.Counter(sim.MetricOps, nil)
		cpi, remPct, opsPerM := 0.0, 0.0, 0.0
		if insts > 0 {
			cpi = float64(cycles) / float64(insts)
		}
		if cycles > 0 {
			remPct = 100 * float64(remote) / float64(cycles)
			opsPerM = float64(ops) / (float64(cycles) / 1e6)
		}
		t.AddRow(cell.Name(), fmt.Sprint(cell.Seed),
			fmt.Sprintf("%.1f", float64(cycles)/1e6),
			fmt.Sprintf("%.3f", cpi),
			fmt.Sprintf("%.2f", remPct),
			fmt.Sprintf("%.1f", opsPerM),
			fmt.Sprint(s.Counter(sim.MetricSchedMigrations, nil)),
			fmt.Sprint(s.Counter(core.MetricActivations, nil)))
	}
	return t
}

// SplitList parses a comma-separated flag value, dropping empties.
func SplitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
