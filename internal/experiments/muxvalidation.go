package experiments

import (
	"context"
	"fmt"

	"threadcluster/internal/pmu"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
	"threadcluster/internal/stats"
	"threadcluster/internal/topology"
)

// MuxValidationResult compares the multiplexed stall-breakdown estimates
// against exact counts.
type MuxValidationResult struct {
	// Rows are per-category exact vs estimated fractions of cycles.
	Rows []MuxValidationRow
	// MaxErrorPts is the worst absolute error, in percentage points of
	// the CPI stack.
	MaxErrorPts float64
}

// MuxValidationRow is one stall category's comparison.
type MuxValidationRow struct {
	Event     pmu.Event
	ExactPct  float64
	MuxPct    float64
	AbsErrPts float64
}

// MuxValidation reproduces the methodological premise behind Figure 3:
// the stall breakdown is collected with fine-grained HPC multiplexing
// [Azimi et al. 2005] because the full CPI stack needs more events than
// the PMU has physical counters. The experiment monitors the complete
// breakdown through rotating counter groups (3 groups of at most 6
// events) on every CPU and compares the scaled estimates with exact
// counts — the estimates must track within a few percentage points for
// the figure (and the engine's activation rule) to be trustworthy.
func MuxValidation(ctx context.Context, opt Options) (MuxValidationResult, *stats.Table, error) {
	spec, err := BuildWorkload(Volano, opt.Seed)
	if err != nil {
		return MuxValidationResult{}, nil, err
	}
	mcfg := sim.DefaultConfig()
	mcfg.Engine = opt.Engine
	mcfg.Topo = opt.Topo
	mcfg.Policy = sched.PolicyDefault
	mcfg.QuantumCycles = opt.QuantumCycles
	mcfg.Seed = opt.Seed
	m, err := sim.NewMachine(mcfg)
	if err != nil {
		return MuxValidationResult{}, nil, err
	}
	if err := spec.Install(m); err != nil {
		return MuxValidationResult{}, nil, err
	}

	// Three multiplexer groups covering the full breakdown; each fits the
	// six physical counters.
	groups := [][]pmu.Event{
		{pmu.EvCycles, pmu.EvInstCompleted, pmu.EvCompletionCycles, pmu.EvL1DMiss},
		{pmu.EvStallL2, pmu.EvStallL3, pmu.EvStallRemoteL2, pmu.EvStallRemoteL3},
		{pmu.EvStallMemory, pmu.EvStallRemoteMemory, pmu.EvStallSMT, pmu.EvStallBranch, pmu.EvStallOther},
	}
	muxes := make([]*pmu.Multiplexer, m.Topology().NumCPUs())
	for c := range muxes {
		mux, err := pmu.NewMultiplexer(groups, 5_000)
		if err != nil {
			return MuxValidationResult{}, nil, err
		}
		muxes[c] = mux
		m.AttachMux(topology.CPUID(c), mux)
	}

	if err := m.RunRoundsCtx(ctx, opt.WarmRounds); err != nil {
		return MuxValidationResult{}, nil, err
	}
	m.ResetMetrics()
	for c := range muxes {
		muxes[c].Reset()
	}
	// Longer window: estimates need samples.
	if err := m.RunRoundsCtx(ctx, opt.MeasureRounds*3); err != nil {
		return MuxValidationResult{}, nil, err
	}

	exact := m.Breakdown()
	var est pmu.Breakdown
	for c := range muxes {
		est.Add(pmu.BreakdownFromMux(muxes[c]))
	}

	res := MuxValidationResult{}
	t := stats.NewTable("HPC multiplexing validation (VolanoMark, full CPI stack via 3 counter groups)",
		"Category", "Exact", "Multiplexed", "Error (pts)")
	add := func(ev pmu.Event, exactPct, muxPct float64) {
		row := MuxValidationRow{Event: ev, ExactPct: exactPct, MuxPct: muxPct,
			AbsErrPts: abs(exactPct - muxPct)}
		res.Rows = append(res.Rows, row)
		if row.AbsErrPts > res.MaxErrorPts {
			res.MaxErrorPts = row.AbsErrPts
		}
		t.AddRow(ev.String(),
			fmt.Sprintf("%.2f%%", exactPct),
			fmt.Sprintf("%.2f%%", muxPct),
			fmt.Sprintf("%.2f", row.AbsErrPts))
	}
	if exact.Cycles > 0 && est.Cycles > 0 {
		add(pmu.EvCompletionCycles,
			100*float64(exact.Completion)/float64(exact.Cycles),
			100*float64(est.Completion)/float64(est.Cycles))
		for _, ev := range pmu.StallEvents() {
			add(ev, 100*exact.Fraction(ev), 100*est.Fraction(ev))
		}
	}
	return res, t, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
