// Package experiments contains one harness per table and figure of the
// paper's evaluation (Section 6, plus the Section 7.4 scaling result and
// a Section 5.2.1 validation). Each harness builds the simulated machine,
// runs the workload under the placement policies being compared, and
// returns the same rows/series the paper reports.
//
// The simulations are scaled relative to the paper's hardware runs — the
// monitoring window, sample target and run lengths are divided down so a
// full experiment takes seconds, not minutes — but every scaling constant
// is in one place (ScaledEngineConfig and DefaultOptions) and documented
// in EXPERIMENTS.md. What must be preserved is the *shape* of each result:
// who wins, roughly by how much, and where the trade-off knees fall.
package experiments

import (
	"context"
	"fmt"

	"threadcluster/internal/cache"
	"threadcluster/internal/clustering"
	"threadcluster/internal/core"
	"threadcluster/internal/memory"
	"threadcluster/internal/metrics"
	"threadcluster/internal/pmu"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
	"threadcluster/internal/sweep"
	"threadcluster/internal/topology"
	"threadcluster/internal/workloads"
)

// Workload names accepted by the harnesses.
const (
	Microbenchmark = "microbenchmark"
	Volano         = "volano"
	JBB            = "specjbb"
	Rubis          = "rubis"
)

// AllWorkloads lists every buildable workload.
func AllWorkloads() []string { return []string{Microbenchmark, Volano, JBB, Rubis} }

// ServerWorkloads lists the three commercial workloads of Figures 6 and 7.
func ServerWorkloads() []string { return []string{Volano, JBB, Rubis} }

// Options are the common knobs of an experiment run.
type Options struct {
	// Topo is the machine shape (default: the OpenPower 720).
	Topo topology.Topology
	// Seed drives every source of randomness.
	Seed int64
	// QuantumCycles is the scheduling quantum.
	QuantumCycles uint64
	// WarmRounds run before measurement to fill caches and settle
	// placement.
	WarmRounds int
	// EngineRounds run additionally (before measurement) when the
	// clustering engine is attached, giving it time to detect and migrate.
	EngineRounds int
	// MeasureRounds is the measured interval.
	MeasureRounds int
	// Coherence selects the cache-coherence implementation (zero value:
	// the directory fast path). Per-access results are differentially
	// tested to be identical; note that multi-chip directory machines
	// additionally run the deferred slice-barrier execution model, so
	// switching to broadcast can shift multi-chip numbers (it forces the
	// serial immediate-coherence loop).
	Coherence cache.CoherenceMode
	// Engine selects the execution engine driving eligible rounds (zero
	// value: chip-parallel). Both engines are differentially tested to be
	// byte-identical; this is purely a speed/debugging knob.
	Engine sim.Engine
	// ClusterMode selects how the clustering engine turns each detection
	// into a partition: "" or "batch" is the paper's from-scratch one-pass;
	// "dense" and "sketch" attach the incremental clusterer (retained
	// vectors or fixed-size sketches) with the default drift detector, so
	// stable detections are absorbed as deltas instead of reclustered.
	ClusterMode string
}

// DefaultOptions returns the scaled defaults used by the CLI and benches.
func DefaultOptions() Options {
	return Options{
		Topo:          topology.OpenPower720(),
		Seed:          1,
		QuantumCycles: 20_000,
		WarmRounds:    200,
		EngineRounds:  2600,
		MeasureRounds: 400,
	}
}

// ScaledEngineConfig returns the paper's engine parameters scaled to the
// simulation:
//
//   - the 20%-per-billion-cycles activation rule becomes 5% per 200k
//     cycles (our workloads' remote-stall share sits in the 5-20% band
//     the paper targets, and windows must fit the shortened runs);
//   - the one-million-sample target becomes 40k samples, and the
//     similarity threshold scales with it: the dot product grows
//     quadratically in per-thread sample counts, so 40000 at 10^6 samples
//     corresponds to a few hundred at 4*10^4 (see EXPERIMENTS.md);
//   - the temporal sampling interval drops from 10 to 5, which the paper
//     itself allows — N is adjusted online "taking into account the
//     frequency of remote cache accesses and the runtime overhead".
func ScaledEngineConfig(seed int64) core.Config {
	cfg := core.DefaultConfig()
	cfg.MonitorWindow = 200_000
	cfg.ActivationFraction = 0.05
	cfg.TargetSamples = 40_000
	cfg.SamplingInterval = 5
	cfg.Clustering.Threshold = 500
	cfg.Seed = seed
	return cfg
}

// EngineConfigFor is ScaledEngineConfig with the Options' cluster mode
// applied: "batch" (or empty) leaves the from-scratch one-pass, "dense"
// and "sketch" attach the incremental clusterer in the matching
// representation.
func EngineConfigFor(opt Options) (core.Config, error) {
	cfg := ScaledEngineConfig(opt.Seed)
	if opt.ClusterMode == "" || opt.ClusterMode == "batch" {
		return cfg, nil
	}
	mode, err := clustering.ParseMode(opt.ClusterMode)
	if err != nil {
		return core.Config{}, fmt.Errorf("experiments: cluster mode: %w", err)
	}
	scfg := clustering.DefaultEngineConfig()
	scfg.Mode = mode
	cfg.Streaming = &scfg
	return cfg, nil
}

// newScaledEngine attaches a clustering engine with the scaled paper
// parameters — and the Options' cluster mode — to a machine.
func newScaledEngine(m *sim.Machine, opt Options) (*core.Engine, error) {
	cfg, err := EngineConfigFor(opt)
	if err != nil {
		return nil, err
	}
	return core.New(m, cfg)
}

// ControlledEngineConfig is ScaledEngineConfig with the activation
// threshold effectively disabled, for harnesses that drive the detection
// phase explicitly via ForceDetection (Figures 5 and 8, the spatial and
// ablation studies). Without this, a workload sharing heavily enough to
// self-activate during warm-up would start detection at an uncontrolled
// time.
func ControlledEngineConfig(seed int64) core.Config {
	cfg := ScaledEngineConfig(seed)
	cfg.ActivationFraction = 10 // never self-activate
	return cfg
}

// detectionSnapshot is the state of one completed detection phase,
// captured at clustering time (before the engine resets anything for a
// later re-activation).
type detectionSnapshot struct {
	clusters []clustering.Cluster
	shmaps   map[clustering.ThreadKey]*clustering.ShMap
}

// forceDetectionAndWait forces the engine into a fresh detection phase and
// runs the machine until that detection completes, returning a snapshot of
// the resulting clusters and shMaps. Using the OnClusters hook (fired at
// clustering time) avoids racing with a subsequent re-activation that
// would reset the shMaps.
func forceDetectionAndWait(ctx context.Context, m *sim.Machine, eng *core.Engine, maxRounds int) (*detectionSnapshot, error) {
	var snap *detectionSnapshot
	eng.OnClusters(func(clusters []clustering.Cluster) {
		if snap != nil {
			return // keep the first (forced) detection's result
		}
		s := &detectionSnapshot{
			clusters: append([]clustering.Cluster{}, clusters...),
			shmaps:   make(map[clustering.ThreadKey]*clustering.ShMap, len(eng.ShMaps())),
		}
		for k, v := range eng.ShMaps() {
			s.shmaps[k] = v.Clone()
		}
		snap = s
	})
	eng.ForceDetection()
	for r := 0; r < maxRounds && snap == nil; r += 20 {
		if err := m.RunRoundsCtx(ctx, 20); err != nil {
			return nil, err
		}
	}
	if snap == nil {
		return nil, fmt.Errorf("experiments: detection did not complete within %d rounds", maxRounds)
	}
	return snap, nil
}

// BuildWorkload constructs a workload spec by name on a fresh arena.
func BuildWorkload(name string, seed int64) (*workloads.Spec, error) {
	arena := memory.NewDefaultArena()
	switch name {
	case Microbenchmark:
		cfg := workloads.DefaultSyntheticConfig()
		cfg.Seed = seed
		return workloads.NewSynthetic(arena, cfg)
	case Volano:
		cfg := workloads.DefaultVolanoConfig()
		cfg.Seed = seed
		return workloads.NewVolano(arena, cfg)
	case JBB:
		cfg := workloads.DefaultJBBConfig()
		cfg.Seed = seed
		return workloads.NewJBB(arena, cfg)
	case Rubis:
		cfg := workloads.DefaultRubisConfig()
		cfg.Seed = seed
		return workloads.NewRubis(arena, cfg)
	}
	return nil, fmt.Errorf("experiments: unknown workload %q", name)
}

// RunMetrics is what one measured run yields.
type RunMetrics struct {
	Workload string
	Policy   sched.Policy
	// Breakdown is the machine-wide CPI stack over the measured interval.
	Breakdown pmu.Breakdown
	// RemoteStalls is the remote-access stall cycle count.
	RemoteStalls uint64
	// RemoteFraction is RemoteStalls / Cycles.
	RemoteFraction float64
	// Ops is application operations completed in the measured interval.
	Ops uint64
	// OpsPerMCycle is throughput normalized to a million machine cycles.
	OpsPerMCycle float64
	// Engine carries engine statistics when the engine was attached.
	Engine *EngineStats
	// Metrics is the machine's structured metrics delta over the measured
	// interval: per-source cache attribution, scheduler activity, the CPI
	// stack and (when attached) engine series.
	Metrics metrics.Snapshot
}

// EngineStats summarizes the clustering engine's work during a run.
type EngineStats struct {
	Activations     uint64
	Migrations      uint64
	Clusters        int
	SamplesRead     int
	SamplesAdmitted int
	DetectionCycles uint64
	OverheadCycles  uint64
}

// RunWorkload measures one workload under one policy, optionally with the
// clustering engine attached (policy should then be PolicyClustered).
func RunWorkload(ctx context.Context, name string, policy sched.Policy, withEngine bool, opt Options) (RunMetrics, *sim.Machine, error) {
	spec, err := BuildWorkload(name, opt.Seed)
	if err != nil {
		return RunMetrics{}, nil, err
	}
	mcfg := sim.DefaultConfig()
	mcfg.Engine = opt.Engine
	mcfg.Topo = opt.Topo
	mcfg.Policy = policy
	mcfg.QuantumCycles = opt.QuantumCycles
	mcfg.Seed = opt.Seed
	mcfg.Caches.Coherence = opt.Coherence
	m, err := sim.NewMachine(mcfg)
	if err != nil {
		return RunMetrics{}, nil, err
	}
	if err := spec.Install(m); err != nil {
		return RunMetrics{}, nil, err
	}
	var eng *core.Engine
	if withEngine {
		eng, err = newScaledEngine(m, opt)
		if err != nil {
			return RunMetrics{}, nil, err
		}
		if err := eng.Install(); err != nil {
			return RunMetrics{}, nil, err
		}
	}
	// Every policy warms for the same total rounds so that measurement
	// windows are time-aligned: the workloads' data structures grow as
	// they run (B-trees gain nodes), and comparing a young run against an
	// old one would confound placement effects with workload age.
	if err := m.RunRoundsCtx(ctx, opt.WarmRounds+opt.EngineRounds); err != nil {
		return RunMetrics{}, nil, err
	}
	m.ResetMetrics()
	base := m.SnapshotMetrics()
	if err := m.RunRoundsCtx(ctx, opt.MeasureRounds); err != nil {
		return RunMetrics{}, nil, err
	}

	b := m.Breakdown()
	res := RunMetrics{
		Workload:       name,
		Policy:         policy,
		Breakdown:      b,
		RemoteStalls:   b.RemoteStalls(),
		RemoteFraction: b.RemoteFraction(),
		Ops:            m.TotalOps(),
	}
	if b.Cycles > 0 {
		res.OpsPerMCycle = float64(res.Ops) / (float64(b.Cycles) / 1e6)
	}
	res.Metrics = m.SnapshotMetrics().Delta(base)
	if eng != nil {
		res.Engine = &EngineStats{
			Activations:     eng.Activations(),
			Migrations:      eng.MigrationsDone(),
			Clusters:        len(eng.Clusters()),
			SamplesRead:     eng.SamplesRead(),
			SamplesAdmitted: eng.SamplesAdmitted(),
			DetectionCycles: eng.LastDetectionCycles(),
			OverheadCycles:  m.OverheadCycles(),
		}
	}
	return res, m, nil
}

// PolicyRuns measures one workload under all four placement strategies of
// Section 5.4 and returns the metrics keyed by policy. The four runs are
// completely independent machines, so they execute on the sweep worker
// pool; each machine's simulation remains single-goroutine and
// deterministic.
func PolicyRuns(ctx context.Context, name string, opt Options) (map[sched.Policy]RunMetrics, error) {
	policies := []sched.Policy{
		sched.PolicyDefault, sched.PolicyRoundRobin,
		sched.PolicyHandOptimized, sched.PolicyClustered,
	}
	results, err := sweep.Map(ctx, len(policies), 0,
		func(ctx context.Context, i int) (RunMetrics, error) {
			pol := policies[i]
			withEngine := pol == sched.PolicyClustered
			r, _, err := RunWorkload(ctx, name, pol, withEngine, opt)
			return r, err
		})
	if err != nil {
		return nil, err
	}
	out := make(map[sched.Policy]RunMetrics, len(policies))
	for i, pol := range policies {
		out[pol] = results[i]
	}
	return out, nil
}
