package experiments

import (
	"context"
	"fmt"

	"threadcluster/internal/core"
	"threadcluster/internal/memory"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
	"threadcluster/internal/stats"
	"threadcluster/internal/workloads"
)

// multiprogOffset separates the second process's thread ids.
const multiprogOffset = 1000

// MultiprogResult is the multiprogrammed-environment study's outcome:
// two independent server processes (a VolanoMark chat server and a
// SPECjbb application server) time-share one machine — the "dynamic
// nature of multiprogrammed computing environments" the paper's
// introduction says manual clustering cannot handle.
type MultiprogResult struct {
	// DefaultRemoteFraction / ClusteredRemoteFraction are machine-wide.
	DefaultRemoteFraction   float64
	ClusteredRemoteFraction float64
	// Per-process throughput (ops in the measured interval).
	DefaultOps   [2]uint64
	ClusteredOps [2]uint64
	// CrossProcessClusters counts detected clusters containing threads of
	// both processes — must be zero (threads of different processes never
	// share memory).
	CrossProcessClusters int
	// Clusters is the engine's final cluster count.
	Clusters int
}

// Multiprogrammed runs the two-process study under default placement and
// under the engine with per-process shMap filters.
func Multiprogrammed(ctx context.Context, opt Options) (MultiprogResult, *stats.Table, error) {
	var res MultiprogResult

	run := func(withEngine bool) (float64, [2]uint64, *core.Engine, error) {
		m, specs, err := buildMultiprog(opt, withEngine)
		if err != nil {
			return 0, [2]uint64{}, nil, err
		}
		var eng *core.Engine
		if withEngine {
			ecfg := ScaledEngineConfig(opt.Seed)
			ecfg.ProcessOf = func(id sched.ThreadID) int {
				if int(id) >= multiprogOffset {
					return 1
				}
				return 0
			}
			if eng, err = core.New(m, ecfg); err != nil {
				return 0, [2]uint64{}, nil, err
			}
			if err := eng.Install(); err != nil {
				return 0, [2]uint64{}, nil, err
			}
		}
		if err := m.RunRoundsCtx(ctx, opt.WarmRounds+opt.EngineRounds); err != nil {
			return 0, [2]uint64{}, nil, err
		}
		m.ResetMetrics()
		if err := m.RunRoundsCtx(ctx, opt.MeasureRounds); err != nil {
			return 0, [2]uint64{}, nil, err
		}
		var ops [2]uint64
		for _, spec := range specs {
			for _, th := range spec.Threads {
				proc := 0
				if int(th.ID) >= multiprogOffset {
					proc = 1
				}
				ops[proc] += th.Ops
			}
		}
		return m.Breakdown().RemoteFraction(), ops, eng, nil
	}

	var err error
	if res.DefaultRemoteFraction, res.DefaultOps, _, err = run(false); err != nil {
		return res, nil, err
	}
	var eng *core.Engine
	if res.ClusteredRemoteFraction, res.ClusteredOps, eng, err = run(true); err != nil {
		return res, nil, err
	}
	res.Clusters = len(eng.Clusters())
	for _, c := range eng.Clusters() {
		procs := map[bool]bool{}
		for _, tk := range c.Members {
			procs[int(tk) >= multiprogOffset] = true
		}
		if len(procs) > 1 {
			res.CrossProcessClusters++
		}
	}

	t := stats.NewTable("Multiprogrammed study: VolanoMark + SPECjbb sharing one machine",
		"Configuration", "Remote stalls", "volano ops", "specjbb ops")
	t.AddRow("default", stats.Pct(res.DefaultRemoteFraction),
		fmt.Sprintf("%d", res.DefaultOps[0]), fmt.Sprintf("%d", res.DefaultOps[1]))
	t.AddRow("clustered", stats.Pct(res.ClusteredRemoteFraction),
		fmt.Sprintf("%d", res.ClusteredOps[0]), fmt.Sprintf("%d", res.ClusteredOps[1]))
	t.AddRow("cross-process clusters", fmt.Sprintf("%d", res.CrossProcessClusters), "-", "-")
	return res, t, nil
}

func buildMultiprog(opt Options, withEngine bool) (*sim.Machine, []*workloads.Spec, error) {
	// One arena for both processes: the arena is the machine's physical
	// address space, and the caches are physically indexed. Two specs on
	// one machine must therefore carve disjoint ranges out of the same
	// arena — two separate arenas would alias the same lines.
	arena := memory.NewDefaultArena()
	vcfg := workloads.DefaultVolanoConfig()
	vcfg.ClientsPerRoom = 4 // 16 threads, leave room for the second process
	vcfg.Seed = opt.Seed
	volano, err := workloads.NewVolano(arena, vcfg)
	if err != nil {
		return nil, nil, err
	}
	jcfg := workloads.DefaultJBBConfig()
	jcfg.Seed = opt.Seed + 1
	jbb, err := workloads.NewJBB(arena, jcfg)
	if err != nil {
		return nil, nil, err
	}
	jbb.Renumber(multiprogOffset)

	policy := sched.PolicyDefault
	if withEngine {
		policy = sched.PolicyClustered
	}
	mcfg := sim.DefaultConfig()
	mcfg.Engine = opt.Engine
	mcfg.Topo = opt.Topo
	mcfg.Policy = policy
	mcfg.QuantumCycles = opt.QuantumCycles
	mcfg.Seed = opt.Seed
	m, err := sim.NewMachine(mcfg)
	if err != nil {
		return nil, nil, err
	}
	if err := volano.Install(m); err != nil {
		return nil, nil, err
	}
	if err := jbb.Install(m); err != nil {
		return nil, nil, err
	}
	return m, []*workloads.Spec{volano, jbb}, nil
}
