package experiments

import (
	"context"
	"fmt"

	"threadcluster/internal/clustering"
	"threadcluster/internal/core"
	"threadcluster/internal/pagedetect"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
	"threadcluster/internal/stats"
)

// DetectorComparison is one row of the PMU-vs-page-protection study: the
// same workload observed by the paper's PMU sampling path and by the
// software-DSM page-protection baseline that Section 1 argues against.
type DetectorComparison struct {
	Workload string
	Approach string // "pmu" or "page"
	// Purity and RandIndex score the detected clusters against ground
	// truth.
	Purity    float64
	RandIndex float64
	// Clusters is the number of >= 2-thread clusters found.
	Clusters int
	// OverheadPercent is detection overhead as a share of all cycles
	// during the detection window.
	OverheadPercent float64
}

// PageVsPMU runs the Section 1 comparison: detection granularity and
// overhead of the PMU path (128-byte lines, hardware-sampled, filtered)
// versus page protection (4KB pages, fault per first touch per epoch).
// The expectation, straight from the paper's motivation: the PMU path
// cleanly separates sharing groups at a fraction of the overhead, while
// the page path suffers false sharing — sub-page structures coalesce and
// a shared allocator interleaves unrelated objects on the same pages.
func PageVsPMU(ctx context.Context, opt Options) ([]DetectorComparison, *stats.Table, error) {
	var rows []DetectorComparison
	for _, workload := range []string{Microbenchmark, JBB} {
		pmuRow, err := pmuDetectorRow(ctx, workload, opt)
		if err != nil {
			return nil, nil, err
		}
		pageRow, err := pageDetectorRow(ctx, workload, opt)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, pmuRow, pageRow)
	}
	t := stats.NewTable("Section 1 study: PMU sampling vs page-protection detection",
		"Workload", "Approach", ">=2-thread clusters", "Purity", "Rand index", "Overhead")
	for _, r := range rows {
		t.AddRow(r.Workload, r.Approach,
			fmt.Sprintf("%d", r.Clusters),
			fmt.Sprintf("%.3f", r.Purity),
			fmt.Sprintf("%.3f", r.RandIndex),
			fmt.Sprintf("%.2f%%", r.OverheadPercent))
	}
	return rows, t, nil
}

func pmuDetectorRow(ctx context.Context, workload string, opt Options) (DetectorComparison, error) {
	spec, err := BuildWorkload(workload, opt.Seed)
	if err != nil {
		return DetectorComparison{}, err
	}
	m, err := newScatterMachine(opt)
	if err != nil {
		return DetectorComparison{}, err
	}
	if err := spec.Install(m); err != nil {
		return DetectorComparison{}, err
	}
	eng, err := core.New(m, ControlledEngineConfig(opt.Seed))
	if err != nil {
		return DetectorComparison{}, err
	}
	if err := eng.Install(); err != nil {
		return DetectorComparison{}, err
	}
	if err := m.RunRoundsCtx(ctx, opt.WarmRounds); err != nil {
		return DetectorComparison{}, err
	}
	m.ResetMetrics()
	snap, err := forceDetectionAndWait(ctx, m, eng, 40*opt.EngineRounds)
	if err != nil {
		return DetectorComparison{}, fmt.Errorf("pmu path on %s: %w", workload, err)
	}
	b := m.Breakdown()
	return DetectorComparison{
		Workload:        workload,
		Approach:        "pmu",
		Purity:          clustering.Purity(snap.clusters, truthOf(spec)),
		RandIndex:       clustering.RandIndex(snap.clusters, truthOf(spec)),
		Clusters:        bigClusters(snap.clusters),
		OverheadPercent: 100 * stats.Ratio(float64(m.OverheadCycles()), float64(b.Cycles)),
	}, nil
}

func pageDetectorRow(ctx context.Context, workload string, opt Options) (DetectorComparison, error) {
	spec, err := BuildWorkload(workload, opt.Seed)
	if err != nil {
		return DetectorComparison{}, err
	}
	m, err := newScatterMachine(opt)
	if err != nil {
		return DetectorComparison{}, err
	}
	if err := spec.Install(m); err != nil {
		return DetectorComparison{}, err
	}
	det, err := pagedetect.New(pagedetect.DefaultConfig())
	if err != nil {
		return DetectorComparison{}, err
	}
	if err := m.RunRoundsCtx(ctx, opt.WarmRounds); err != nil {
		return DetectorComparison{}, err
	}
	m.ResetMetrics()
	det.Install(m)
	// Give the page path the same wall-clock budget the PMU path's
	// detection typically needs in these configurations.
	if err := m.RunRoundsCtx(ctx, opt.EngineRounds); err != nil {
		return DetectorComparison{}, err
	}
	det.Stop(m)

	clusters := det.Cluster(pagedetect.DefaultClusterConfig())
	b := m.Breakdown()
	return DetectorComparison{
		Workload:        workload,
		Approach:        "page",
		Purity:          clustering.Purity(clusters, truthOf(spec)),
		RandIndex:       clustering.RandIndex(clusters, truthOf(spec)),
		Clusters:        bigClusters(clusters),
		OverheadPercent: 100 * stats.Ratio(float64(m.OverheadCycles()), float64(b.Cycles)),
	}, nil
}

// newScatterMachine builds a machine whose placement scatters sharing
// groups (round-robin), so both detectors see plenty of cross-chip
// sharing to work with.
func newScatterMachine(opt Options) (*sim.Machine, error) {
	mcfg := sim.DefaultConfig()
	mcfg.Engine = opt.Engine
	mcfg.Topo = opt.Topo
	mcfg.Policy = sched.PolicyRoundRobin
	mcfg.QuantumCycles = opt.QuantumCycles
	mcfg.Seed = opt.Seed
	return sim.NewMachine(mcfg)
}

func truthOf(spec interface {
	Truth() map[int]int
}) map[clustering.ThreadKey]int {
	truth := make(map[clustering.ThreadKey]int)
	for id, p := range spec.Truth() {
		truth[clustering.ThreadKey(id)] = p
	}
	return truth
}

func bigClusters(clusters []clustering.Cluster) int {
	n := 0
	for _, c := range clusters {
		if c.Size() >= 2 {
			n++
		}
	}
	return n
}
