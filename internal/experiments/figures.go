package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"threadcluster/internal/cache"
	"threadcluster/internal/clustering"
	"threadcluster/internal/core"
	"threadcluster/internal/memory"
	"threadcluster/internal/pmu"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
	"threadcluster/internal/stats"
	"threadcluster/internal/sweep"
	"threadcluster/internal/workloads"
)

// Table1 reproduces Table 1: the IBM OpenPower 720 specification as the
// simulator is configured to model it.
func Table1() *stats.Table {
	topo := DefaultOptions().Topo
	caches := cache.Power5Config()
	t := stats.NewTable("Table 1: IBM OpenPower 720 specification", "Item", "Specification")
	t.AddRow("# of Chips", fmt.Sprintf("%d", topo.Chips))
	t.AddRow("# of Cores", fmt.Sprintf("%d per chip", topo.CoresPerChip))
	t.AddRow("CPU Cores", fmt.Sprintf("IBM Power5 (simulated), %d-way SMT", topo.ContextsPerCore))
	t.AddRow("L1 DCache", fmt.Sprintf("%dKB, %d-way associative, per core", caches.L1.SizeBytes>>10, caches.L1.Ways))
	t.AddRow("L2 Cache", fmt.Sprintf("%dMB, %d-way associative, per chip", caches.L2.SizeBytes>>20, caches.L2.Ways))
	t.AddRow("L3 Cache", fmt.Sprintf("%dMB, %d-way associative, per chip, off-chip", caches.L3.SizeBytes>>20, caches.L3.Ways))
	t.AddRow("Cache line", fmt.Sprintf("%dB", memory.LineSize))
	return t
}

// Figure1 reproduces the Figure 1 latency ladder, both as configured and
// as measured by probing the simulated hierarchy with controlled access
// sequences (a hit in each level, a cross-chip transfer, a memory fill).
func Figure1(opt Options) (*stats.Table, error) {
	lat := sim.DefaultConfig().Lat
	ccfg := cache.Power5Config()
	ccfg.Coherence = opt.Coherence
	h, err := cache.NewHierarchy(opt.Topo, lat, ccfg)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 1: memory-hierarchy access latencies (cycles)",
		"Source", "Configured", "Measured")

	next := memory.Addr(0x100000)
	alloc := func() memory.Addr { next += 64 * memory.LineSize; return next }

	// L1: access twice from CPU 0.
	a := alloc()
	h.Access(0, a, false)
	r := h.Access(0, a, false)
	t.AddRowf("L1 hit (same core)", lat.L1Hit, r.Cycles)

	// L2: fill from CPU 0, read from CPU 2 (other core, same chip).
	a = alloc()
	h.Access(0, a, false)
	r = h.Access(2, a, false)
	t.AddRowf("L2 hit (same chip)", lat.L2Hit, r.Cycles)

	// Remote L2: fill on chip 0, read from chip 1.
	a = alloc()
	h.Access(0, a, false)
	r = h.Access(4, a, false)
	t.AddRowf("Remote L2 (cross chip)", lat.RemoteL2, r.Cycles)

	// Memory: cold line.
	a = alloc()
	r = h.Access(0, a, false)
	t.AddRowf("Memory", lat.Memory, r.Cycles)

	t.AddRowf("L3 hit (same chip)", lat.L3Hit, "(victim-cache path)")
	t.AddRowf("Remote L3", lat.RemoteL3, "(victim-cache path)")
	return t, nil
}

// Figure3 reproduces the Figure 3 stall breakdown: the CPI stack of one
// workload under default scheduling, with data-cache stalls attributed to
// the source that satisfied each miss.
func Figure3(ctx context.Context, workload string, opt Options) (*stats.Table, pmu.Breakdown, error) {
	res, _, err := RunWorkload(ctx, workload, sched.PolicyDefault, false, opt)
	if err != nil {
		return nil, pmu.Breakdown{}, err
	}
	b := res.Breakdown
	t := stats.NewTable(
		fmt.Sprintf("Figure 3: stall breakdown for %s (CPI %.3f)", workload, b.CPI()),
		"Component", "Share of cycles")
	t.AddRow("completion", stats.Pct(stats.Ratio(float64(b.Completion), float64(b.Cycles))))
	for _, ev := range pmu.StallEvents() {
		t.AddRow(ev.String(), stats.Pct(b.Fraction(ev)))
	}
	t.AddRow("remote-total", stats.Pct(b.RemoteFraction()))
	return t, b, nil
}

// Figure5Result is the shMap visualization for one workload.
type Figure5Result struct {
	Workload string
	// Heatmap is the ASCII rendering: one row per thread, grouped by
	// detected cluster, globally shared columns removed.
	Heatmap string
	// Rows are the raw intensity rows behind the heatmap, and RowGroups
	// the per-cluster row counts (for the PNG renderer).
	Rows      [][]uint8
	RowGroups []int
	// Clusters is the detected clustering.
	Clusters []clustering.Cluster
	// Purity and RandIndex score the clustering against the workload's
	// ground-truth partition.
	Purity    float64
	RandIndex float64
}

// Figure5 reproduces Figure 5: for each of the four workloads, run the
// detection phase and render each thread's shMap as a gray-scale row,
// rows grouped by detected cluster, with globally shared entries removed
// "to simplify the picture". SPECjbb runs with 4 warehouses as in the
// paper's footnote 3.
func Figure5(ctx context.Context, opt Options) ([]Figure5Result, error) {
	names := AllWorkloads()
	return sweep.Map(ctx, len(names), 0,
		func(ctx context.Context, i int) (Figure5Result, error) {
			name := names[i]
			spec, err := buildFigure5Workload(name, opt.Seed)
			if err != nil {
				return Figure5Result{}, err
			}
			mcfg := sim.DefaultConfig()
			mcfg.Engine = opt.Engine
			mcfg.Topo = opt.Topo
			mcfg.Policy = sched.PolicyClustered
			mcfg.QuantumCycles = opt.QuantumCycles
			mcfg.Seed = opt.Seed
			m, err := sim.NewMachine(mcfg)
			if err != nil {
				return Figure5Result{}, err
			}
			if err := spec.Install(m); err != nil {
				return Figure5Result{}, err
			}
			eng, err := core.New(m, ControlledEngineConfig(opt.Seed))
			if err != nil {
				return Figure5Result{}, err
			}
			if err := eng.Install(); err != nil {
				return Figure5Result{}, err
			}
			if err := m.RunRoundsCtx(ctx, opt.WarmRounds); err != nil {
				return Figure5Result{}, err
			}
			snap, err := forceDetectionAndWait(ctx, m, eng, 40*opt.EngineRounds)
			if err != nil {
				return Figure5Result{}, fmt.Errorf("experiments: %s: %w", name, err)
			}
			return renderFigure5(name, snap, spec), nil
		})
}

func buildFigure5Workload(name string, seed int64) (*workloads.Spec, error) {
	if name == JBB {
		// Footnote 3: "For illustration purposes, SPECjbb was run with 4
		// warehouses."
		arena := memory.NewDefaultArena()
		cfg := workloads.DefaultJBBConfig()
		cfg.Warehouses = 4
		cfg.ThreadsPerWarehouse = 4
		cfg.Seed = seed
		return workloads.NewJBB(arena, cfg)
	}
	return BuildWorkload(name, seed)
}

func renderFigure5(name string, snap *detectionSnapshot, spec *workloads.Spec) Figure5Result {
	shmaps := snap.shmaps
	clusters := make([]clustering.Cluster, len(snap.clusters))
	copy(clusters, snap.clusters)
	clustering.SortBySize(clusters)

	shmapKeys := make([]clustering.ThreadKey, 0, len(shmaps))
	for tk := range shmaps {
		shmapKeys = append(shmapKeys, tk)
	}
	sort.Slice(shmapKeys, func(i, j int) bool { return shmapKeys[i] < shmapKeys[j] })
	entries := 0
	vecs := make([]*clustering.ShMap, 0, len(shmapKeys))
	for _, tk := range shmapKeys {
		m := shmaps[tk]
		vecs = append(vecs, m)
		if m.Len() > entries {
			entries = m.Len()
		}
	}
	mask := clustering.GlobalMask(vecs, entries, 0.5)

	var rows [][]uint8
	var labels []string
	var groups []int
	for ci, c := range clusters {
		members := append([]clustering.ThreadKey{}, c.Members...)
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		inGroup := 0
		for _, tk := range members {
			m, ok := shmaps[tk]
			if !ok {
				continue
			}
			row := make([]uint8, 0, entries)
			for e := 0; e < m.Len(); e++ {
				if mask[e] {
					continue // globally shared data removed, as in the figure
				}
				row = append(row, m.Get(e))
			}
			rows = append(rows, row)
			labels = append(labels, fmt.Sprintf("c%d/t%d", ci, tk))
			inGroup++
		}
		if inGroup > 0 {
			groups = append(groups, inGroup)
		}
	}

	truth := make(map[clustering.ThreadKey]int)
	for _, th := range spec.Threads {
		truth[clustering.ThreadKey(th.ID)] = th.Partition
	}
	return Figure5Result{
		Workload:  name,
		Heatmap:   stats.Heatmap(rows, labels),
		Rows:      rows,
		RowGroups: groups,
		Clusters:  clusters,
		Purity:    clustering.Purity(clusters, truth),
		RandIndex: clustering.RandIndex(clusters, truth),
	}
}

// String renders the Figure 5 result for the terminal.
func (r Figure5Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "-- Figure 5: shMap vectors for %s (%d clusters, purity %.2f, rand %.2f) --\n",
		r.Workload, len(r.Clusters), r.Purity, r.RandIndex)
	sb.WriteString(r.Heatmap)
	return sb.String()
}
