package experiments

import (
	"context"
	"fmt"

	"threadcluster/internal/memory"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
	"threadcluster/internal/stats"
	"threadcluster/internal/sweep"
	"threadcluster/internal/topology"
	"threadcluster/internal/workloads"
)

// ComparisonRow is one workload's results across the four placement
// strategies, normalized to default Linux scheduling as in Figures 6
// and 7.
type ComparisonRow struct {
	Workload string
	// Runs holds the raw metrics per policy.
	Runs map[sched.Policy]RunMetrics
	// RelativeStalls is remote-access stall cycles relative to default
	// (Figure 6; lower is better).
	RelativeStalls map[sched.Policy]float64
	// RelativePerf is application throughput relative to default
	// (Figure 7; higher is better).
	RelativePerf map[sched.Policy]float64
}

// comparisonPolicies is the display order of Figures 6 and 7.
func comparisonPolicies() []sched.Policy {
	return []sched.Policy{
		sched.PolicyDefault, sched.PolicyRoundRobin,
		sched.PolicyHandOptimized, sched.PolicyClustered,
	}
}

// Comparison runs Figures 6 and 7's underlying experiment for the given
// workloads. Workloads run on the sweep worker pool (each on its own
// machines).
func Comparison(ctx context.Context, names []string, opt Options) ([]ComparisonRow, error) {
	return sweep.Map(ctx, len(names), 0,
		func(ctx context.Context, i int) (ComparisonRow, error) {
			name := names[i]
			runs, err := PolicyRuns(ctx, name, opt)
			if err != nil {
				return ComparisonRow{}, err
			}
			def := runs[sched.PolicyDefault]
			row := ComparisonRow{
				Workload:       name,
				Runs:           runs,
				RelativeStalls: make(map[sched.Policy]float64, 4),
				RelativePerf:   make(map[sched.Policy]float64, 4),
			}
			for pol, r := range runs {
				row.RelativeStalls[pol] = stats.Ratio(float64(r.RemoteStalls), float64(def.RemoteStalls))
				row.RelativePerf[pol] = stats.Ratio(r.OpsPerMCycle, def.OpsPerMCycle)
			}
			return row, nil
		})
}

// Figure6 reproduces Figure 6: the impact of the scheduling schemes on
// stalls caused by remote cache accesses, relative to default Linux
// scheduling (1.00). The paper reports reductions of up to 70% from
// automatic clustering.
func Figure6(ctx context.Context, opt Options) (*stats.Table, []ComparisonRow, error) {
	rows, err := Comparison(ctx, ServerWorkloads(), opt)
	if err != nil {
		return nil, nil, err
	}
	t := stats.NewTable("Figure 6: remote-access stalls relative to default Linux",
		"Workload", "default", "round-robin", "hand-optimized", "clustered")
	for _, row := range rows {
		cells := []string{row.Workload}
		for _, pol := range comparisonPolicies() {
			cells = append(cells, fmt.Sprintf("%.2f", row.RelativeStalls[pol]))
		}
		t.AddRow(cells...)
	}
	return t, rows, nil
}

// Figure7 reproduces Figure 7: application-reported performance relative
// to default Linux scheduling (1.00). The paper reports gains of up to 7%;
// the simulated gains are larger because the simulated workloads have a
// larger remote-stall share of CPI than the paper's hardware runs, but the
// paper's own sanity relation holds — the gain approximately matches the
// share of cycles recovered from remote-access stalls.
func Figure7(ctx context.Context, opt Options) (*stats.Table, []ComparisonRow, error) {
	rows, err := Comparison(ctx, ServerWorkloads(), opt)
	if err != nil {
		return nil, nil, err
	}
	t := stats.NewTable("Figure 7: application performance relative to default Linux",
		"Workload", "default", "round-robin", "hand-optimized", "clustered")
	for _, row := range rows {
		cells := []string{row.Workload}
		for _, pol := range comparisonPolicies() {
			cells = append(cells, fmt.Sprintf("%.3f", row.RelativePerf[pol]))
		}
		t.AddRow(cells...)
	}
	return t, rows, nil
}

// Scale32Result is the Section 7.4 scaling experiment outcome.
type Scale32Result struct {
	// HandOptGain is hand-optimized SPECjbb throughput over default on the
	// 32-way (8-chip) machine; the paper's preliminary result is ~14%,
	// double the 8-way machine's gain.
	HandOptGain float64
	// ClusteredGain is the automatic engine's gain on the same machine
	// (the measurement the paper says was still in progress).
	ClusteredGain float64
	// SmallMachineHandOptGain is the same workload's hand-optimized gain
	// on the 8-way machine, for the "greater impact at scale" comparison.
	SmallMachineHandOptGain float64
}

// Scale32 reproduces Section 7.4: thread clustering on a 32-way Power5
// multiprocessor consisting of 8 chips, using SPECjbb with one warehouse
// group per chip. The expectation is a larger gain than on the 8-way
// machine because a scattered thread's sharing partner is on another chip
// 7 times out of 8 rather than 1 time out of 2.
func Scale32(ctx context.Context, opt Options) (Scale32Result, error) {
	big := opt
	big.Topo = topology.Power5_32Way()

	buildBig := func(policy sched.Policy) (*sim.Machine, *workloads.Spec, error) {
		arena := memory.NewDefaultArena()
		cfg := workloads.DefaultJBBConfig()
		cfg.Warehouses = 8
		cfg.ThreadsPerWarehouse = 8
		cfg.Seed = big.Seed
		spec, err := workloads.NewJBB(arena, cfg)
		if err != nil {
			return nil, nil, err
		}
		mcfg := sim.DefaultConfig()
		mcfg.Engine = opt.Engine
		mcfg.Topo = big.Topo
		mcfg.Policy = policy
		mcfg.QuantumCycles = big.QuantumCycles
		mcfg.Seed = big.Seed
		m, err := sim.NewMachine(mcfg)
		if err != nil {
			return nil, nil, err
		}
		if err := spec.Install(m); err != nil {
			return nil, nil, err
		}
		return m, spec, nil
	}

	measure := func(ctx context.Context, policy sched.Policy, withEngine bool) (float64, error) {
		m, _, err := buildBig(policy)
		if err != nil {
			return 0, err
		}
		if withEngine {
			eng, err := newScaledEngine(m, big)
			if err != nil {
				return 0, err
			}
			if err := eng.Install(); err != nil {
				return 0, err
			}
		}
		if err := m.RunRoundsCtx(ctx, big.WarmRounds+big.EngineRounds); err != nil {
			return 0, err
		}
		m.ResetMetrics()
		if err := m.RunRoundsCtx(ctx, big.MeasureRounds); err != nil {
			return 0, err
		}
		b := m.Breakdown()
		return stats.Ratio(float64(m.TotalOps()), float64(b.Cycles)/1e6), nil
	}

	defPerf, err := measure(ctx, sched.PolicyDefault, false)
	if err != nil {
		return Scale32Result{}, err
	}
	hoPerf, err := measure(ctx, sched.PolicyHandOptimized, false)
	if err != nil {
		return Scale32Result{}, err
	}
	clPerf, err := measure(ctx, sched.PolicyClustered, true)
	if err != nil {
		return Scale32Result{}, err
	}

	// The 8-way comparison uses the standard jbb configuration.
	smallRuns, err := PolicyRuns(ctx, JBB, opt)
	if err != nil {
		return Scale32Result{}, err
	}
	smallDef := smallRuns[sched.PolicyDefault].OpsPerMCycle
	smallHO := smallRuns[sched.PolicyHandOptimized].OpsPerMCycle

	return Scale32Result{
		HandOptGain:             stats.Ratio(hoPerf, defPerf) - 1,
		ClusteredGain:           stats.Ratio(clPerf, defPerf) - 1,
		SmallMachineHandOptGain: stats.Ratio(smallHO, smallDef) - 1,
	}, nil
}

// Table renders the scaling result.
func (r Scale32Result) Table() *stats.Table {
	t := stats.NewTable("Section 7.4: SPECjbb gains over default Linux by machine size",
		"Configuration", "hand-optimized", "clustered")
	t.AddRow("8-way (2 chips)", stats.Pct(r.SmallMachineHandOptGain), "-")
	t.AddRow("32-way (8 chips)", stats.Pct(r.HandOptGain), stats.Pct(r.ClusteredGain))
	return t
}
