package experiments

import (
	"context"
	"fmt"
	"sort"

	"threadcluster/internal/memory"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
	"threadcluster/internal/stats"
	"threadcluster/internal/workloads"
)

// StagedResult is the chain-topology study's outcome.
type StagedResult struct {
	// DefaultRemote / ClusteredRemote are remote-stall fractions.
	DefaultRemote   float64
	ClusteredRemote float64
	// DefaultOps / ClusteredOps are events processed in the measured
	// interval.
	DefaultOps   uint64
	ClusteredOps uint64
	// StageChips maps each pipeline stage to the chips its threads ended
	// on (majority chip per stage, in stage order).
	StageChips []int
	// ContiguousCut reports whether the final placement is a contiguous
	// cut of the pipeline (adjacent stages grouped), the minimum-traffic
	// arrangement.
	ContiguousCut bool
}

// Staged runs the SEDA-style pipeline workload: sharing forms a chain
// (stage i shares a queue with stages i-1 and i+1) instead of disjoint
// groups, so the ideal 2-chip placement is a minimum cut — front half of
// the pipeline on one chip, back half on the other. The study checks that
// the clustering engine, built around disjoint sharing groups, still
// reduces cross-chip traffic on chain-structured sharing.
func Staged(ctx context.Context, opt Options) (StagedResult, *stats.Table, error) {
	run := func(withEngine bool) (float64, uint64, *sim.Machine, *workloads.Spec, error) {
		arena := memory.NewDefaultArena()
		wcfg := workloads.DefaultStagedConfig()
		wcfg.Seed = opt.Seed
		spec, err := workloads.NewStaged(arena, wcfg)
		if err != nil {
			return 0, 0, nil, nil, err
		}
		mcfg := sim.DefaultConfig()
		mcfg.Engine = opt.Engine
		mcfg.Topo = opt.Topo
		mcfg.Policy = sched.PolicyDefault
		if withEngine {
			mcfg.Policy = sched.PolicyClustered
		}
		mcfg.QuantumCycles = opt.QuantumCycles
		mcfg.Seed = opt.Seed
		m, err := sim.NewMachine(mcfg)
		if err != nil {
			return 0, 0, nil, nil, err
		}
		if err := spec.Install(m); err != nil {
			return 0, 0, nil, nil, err
		}
		if withEngine {
			eng, err := newScaledEngine(m, opt)
			if err != nil {
				return 0, 0, nil, nil, err
			}
			if err := eng.Install(); err != nil {
				return 0, 0, nil, nil, err
			}
		}
		if err := m.RunRoundsCtx(ctx, opt.WarmRounds+opt.EngineRounds); err != nil {
			return 0, 0, nil, nil, err
		}
		m.ResetMetrics()
		if err := m.RunRoundsCtx(ctx, opt.MeasureRounds); err != nil {
			return 0, 0, nil, nil, err
		}
		return m.Breakdown().RemoteFraction(), m.TotalOps(), m, spec, nil
	}

	var res StagedResult
	var err error
	if res.DefaultRemote, res.DefaultOps, _, _, err = run(false); err != nil {
		return res, nil, err
	}
	var m *sim.Machine
	var spec *workloads.Spec
	if res.ClusteredRemote, res.ClusteredOps, m, spec, err = run(true); err != nil {
		return res, nil, err
	}

	// Majority chip per stage, in stage order.
	wcfg := workloads.DefaultStagedConfig()
	res.StageChips = make([]int, wcfg.Stages)
	for stage := 0; stage < wcfg.Stages; stage++ {
		votes := map[int]int{}
		for _, th := range spec.Threads {
			if th.Partition != stage {
				continue
			}
			if chip, ok := m.Scheduler().ChipOf(th.ID); ok {
				votes[chip]++
			}
		}
		best, bestN := 0, -1
		chips := make([]int, 0, len(votes))
		for c := range votes {
			chips = append(chips, c)
		}
		sort.Ints(chips)
		for _, c := range chips {
			if votes[c] > bestN {
				best, bestN = c, votes[c]
			}
		}
		res.StageChips[stage] = best
	}
	// A contiguous cut changes chip at most Chips-1 times along the
	// pipeline.
	changes := 0
	for i := 1; i < len(res.StageChips); i++ {
		if res.StageChips[i] != res.StageChips[i-1] {
			changes++
		}
	}
	res.ContiguousCut = changes <= opt.Topo.Chips-1

	t := stats.NewTable("Chain-topology study: SEDA-style staged pipeline",
		"Configuration", "Remote stalls", "Events processed")
	t.AddRow("default", stats.Pct(res.DefaultRemote), fmt.Sprintf("%d", res.DefaultOps))
	t.AddRow("clustered", stats.Pct(res.ClusteredRemote), fmt.Sprintf("%d", res.ClusteredOps))
	t.AddRow("stage->chip", fmt.Sprintf("%v", res.StageChips),
		fmt.Sprintf("contiguous cut: %v", res.ContiguousCut))
	return res, t, nil
}
