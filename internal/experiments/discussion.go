package experiments

import (
	"context"
	"fmt"

	"threadcluster/internal/cache"
	"threadcluster/internal/memory"
	"threadcluster/internal/pmu"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
	"threadcluster/internal/stats"
	"threadcluster/internal/workloads"
)

// ContentionRow is one cell of the Section 7.1 local-cache-contention
// study.
type ContentionRow struct {
	Placement string
	L3        string
	// LocalMissFraction is the share of cycles stalled on local L2/L3 and
	// memory fills — the contention signal.
	LocalMissFraction float64
	// RemoteFraction is the cross-chip share.
	RemoteFraction float64
	// OpsPerMCycle is throughput.
	OpsPerMCycle float64
}

// Contention reproduces the Section 7.1 discussion: packing every sharing
// thread onto one chip maximizes sharing locality but overwhelms the
// chip's local caches when the aggregate working set does not fit, and it
// idles the rest of the machine. The engine's capacity rule ("if such an
// assignment causes an imbalance among chips, then we instead evenly
// assign the cluster's threads to each chip") avoids that. The paper also
// notes the big 36MB victim L3 absorbs most contention; shrinking it
// makes the effect bite, so both cache configurations are measured.
func Contention(ctx context.Context, opt Options) ([]ContentionRow, *stats.Table, error) {
	var rows []ContentionRow
	for _, l3 := range []struct {
		name string
		cfg  cache.HierarchyConfig
	}{
		{"36MB (Power5)", cache.Power5Config()},
		{"1MB (shrunk)", func() cache.HierarchyConfig {
			c := cache.Power5Config()
			c.L3 = cache.Config{SizeBytes: 1 << 20, Ways: 8}
			return c
		}()},
	} {
		for _, placement := range []string{"packed on one chip", "engine (balanced)"} {
			row, err := contentionRun(ctx, opt, placement, l3.cfg)
			if err != nil {
				return nil, nil, err
			}
			row.L3 = l3.name
			rows = append(rows, row)
		}
	}
	t := stats.NewTable("Section 7.1: local cache contention when co-locating one big sharing group",
		"L3", "Placement", "Local-miss stalls", "Remote stalls", "Throughput (ops/Mcycle)")
	for _, r := range rows {
		t.AddRow(r.L3, r.Placement,
			stats.Pct(r.LocalMissFraction), stats.Pct(r.RemoteFraction),
			fmt.Sprintf("%.1f", r.OpsPerMCycle))
	}
	return rows, t, nil
}

func contentionRun(ctx context.Context, opt Options, placement string, caches cache.HierarchyConfig) (ContentionRow, error) {
	arena := memory.NewDefaultArena()
	// ONE sharing group of 16 threads, each with a 384KB private set:
	// the aggregate footprint (6MB) dwarfs one chip's 2MB L2.
	wcfg := workloads.SyntheticConfig{
		Scoreboards:     1,
		ThreadsPerBoard: 16,
		ScoreboardBytes: 16 * memory.LineSize,
		PrivateBytes:    384 << 10,
		SharedRatio:     0.25,
		WriteRatio:      0.5,
		Seed:            opt.Seed,
	}
	spec, err := workloads.NewSynthetic(arena, wcfg)
	if err != nil {
		return ContentionRow{}, err
	}
	mcfg := sim.DefaultConfig()
	mcfg.Engine = opt.Engine
	mcfg.Topo = opt.Topo
	mcfg.Caches = caches
	mcfg.Caches.Coherence = opt.Coherence
	mcfg.Policy = sched.PolicyClustered
	mcfg.QuantumCycles = opt.QuantumCycles
	mcfg.Seed = opt.Seed
	m, err := sim.NewMachine(mcfg)
	if err != nil {
		return ContentionRow{}, err
	}
	if err := spec.Install(m); err != nil {
		return ContentionRow{}, err
	}

	switch placement {
	case "packed on one chip":
		// The naive reading of "co-locate all sharers": everything on
		// chip 0's four contexts.
		cpus := m.Topology().CPUsOfChip(0)
		for i, th := range spec.Threads {
			if err := m.Scheduler().Migrate(th.ID, cpus[i%len(cpus)]); err != nil {
				return ContentionRow{}, err
			}
			m.Scheduler().Pin(th.ID)
		}
	case "engine (balanced)":
		eng, err := newScaledEngine(m, opt)
		if err != nil {
			return ContentionRow{}, err
		}
		if err := eng.Install(); err != nil {
			return ContentionRow{}, err
		}
	}

	if err := m.RunRoundsCtx(ctx, opt.WarmRounds+opt.EngineRounds); err != nil {
		return ContentionRow{}, err
	}
	m.ResetMetrics()
	if err := m.RunRoundsCtx(ctx, opt.MeasureRounds); err != nil {
		return ContentionRow{}, err
	}
	b := m.Breakdown()
	local := b.Fraction(pmu.EvStallL2) + b.Fraction(pmu.EvStallL3) + b.Fraction(pmu.EvStallMemory)
	row := ContentionRow{
		Placement:         placement,
		LocalMissFraction: local,
		RemoteFraction:    b.RemoteFraction(),
	}
	if b.Cycles > 0 {
		row.OpsPerMCycle = float64(m.TotalOps()) / (float64(b.Cycles) / 1e6)
	}
	return row, nil
}

// MigrationCostResult is the Section 7.2 transient study's outcome.
type MigrationCostResult struct {
	// SteadyBefore is the windowed remote fraction before migration
	// (scattered placement).
	SteadyBefore float64
	// FirstWindowAfter is the remote fraction in the window right after
	// a mass migration: the cache/TLB reload burst.
	FirstWindowAfter float64
	// SteadyAfter is the settled remote fraction with clustered
	// placement.
	SteadyAfter float64
	// SettleWindows is how many observation windows the transient took to
	// fall within 1.5x of the settled level.
	SettleWindows int
	// Timeline is the full windowed trace around the migration.
	Timeline stats.Series
}

// MigrationCost reproduces the Section 7.2 discussion: thread migration
// costs cache-context and TLB reloading, visible as a one-time burst of
// misses, "amortized over the long thread execution time at the new
// location". The experiment scatters sharing groups, then migrates them
// into clusters at a known instant and watches the windowed remote-stall
// fraction spike and decay.
func MigrationCost(ctx context.Context, opt Options) (MigrationCostResult, error) {
	arena := memory.NewDefaultArena()
	wcfg := workloads.DefaultSyntheticConfig()
	wcfg.Seed = opt.Seed
	spec, err := workloads.NewSynthetic(arena, wcfg)
	if err != nil {
		return MigrationCostResult{}, err
	}
	mcfg := sim.DefaultConfig()
	mcfg.Engine = opt.Engine
	mcfg.Topo = opt.Topo
	mcfg.Policy = sched.PolicyRoundRobin // scatter, no balancing interference
	mcfg.QuantumCycles = opt.QuantumCycles
	mcfg.Seed = opt.Seed
	m, err := sim.NewMachine(mcfg)
	if err != nil {
		return MigrationCostResult{}, err
	}
	if err := spec.Install(m); err != nil {
		return MigrationCostResult{}, err
	}

	const window = 20
	res := MigrationCostResult{Timeline: stats.Series{Label: "remote-stall fraction"}}
	var lastCycles, lastRemote uint64
	observe := func(x float64) float64 {
		b := m.Breakdown()
		frac := stats.Ratio(float64(b.RemoteStalls()-lastRemote), float64(b.Cycles-lastCycles))
		lastCycles, lastRemote = b.Cycles, b.RemoteStalls()
		res.Timeline.Add(x, frac)
		return frac
	}

	// Scattered steady state.
	if err := m.RunRoundsCtx(ctx, opt.WarmRounds); err != nil {
		return MigrationCostResult{}, err
	}
	observe(0)
	for i := 0; i < 5; i++ {
		if err := m.RunRoundsCtx(ctx, window); err != nil {
			return MigrationCostResult{}, err
		}
		res.SteadyBefore = observe(float64((i + 1) * window))
	}

	// Mass migration: each scoreboard group to one chip (group g to chip
	// g % chips), random contexts within the chip — exactly what the
	// engine's migration phase does, but at a known instant.
	chips := m.Topology().Chips
	for _, th := range spec.Threads {
		chip := th.Partition % chips
		if err := m.Scheduler().Migrate(th.ID, m.Scheduler().RandomCPUOnChip(chip)); err != nil {
			return MigrationCostResult{}, err
		}
	}

	// Post-migration transient.
	fracs := make([]float64, 0, 30)
	for i := 0; i < 30; i++ {
		if err := m.RunRoundsCtx(ctx, window); err != nil {
			return MigrationCostResult{}, err
		}
		fracs = append(fracs, observe(float64((6+i)*window)))
	}
	res.FirstWindowAfter = fracs[0]
	res.SteadyAfter = fracs[len(fracs)-1]
	res.SettleWindows = len(fracs)
	for i, f := range fracs {
		if f <= res.SteadyAfter*1.5+0.005 {
			res.SettleWindows = i + 1
			break
		}
	}
	return res, nil
}

// Table renders the migration-cost study.
func (r MigrationCostResult) Table() *stats.Table {
	t := stats.NewTable("Section 7.2: migration cost transient (microbenchmark, mass migration)",
		"Quantity", "Value")
	t.AddRow("steady remote stalls before (scattered)", stats.Pct(r.SteadyBefore))
	t.AddRow("first window after migration", stats.Pct(r.FirstWindowAfter))
	t.AddRow("steady remote stalls after (clustered)", stats.Pct(r.SteadyAfter))
	t.AddRow("windows to settle", fmt.Sprintf("%d", r.SettleWindows))
	return t
}
