package clustering

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// makeGroups synthesizes shMaps for nGroups groups of groupSize threads:
// each group shares a disjoint band of entries with high counters, each
// thread adds its own low-level noise, and optionally a globally shared
// band touched by everyone.
func makeGroups(nGroups, groupSize, entries int, intensity uint8, withGlobal bool, seed int64) (map[ThreadKey]*ShMap, map[ThreadKey]int) {
	rng := rand.New(rand.NewSource(seed))
	shmaps := make(map[ThreadKey]*ShMap)
	truth := make(map[ThreadKey]int)
	band := entries / (nGroups + 1)
	for g := 0; g < nGroups; g++ {
		for t := 0; t < groupSize; t++ {
			id := ThreadKey(g*groupSize + t)
			m := NewShMap(entries)
			for e := g * band; e < (g+1)*band; e++ {
				for k := uint8(0); k < intensity; k++ {
					m.Increment(e)
				}
			}
			// Per-thread noise below the floor.
			for i := 0; i < 5; i++ {
				m.Increment(rng.Intn(entries))
			}
			if withGlobal {
				for e := nGroups * band; e < entries; e++ {
					for k := 0; k < 200; k++ {
						m.Increment(e)
					}
				}
			}
			shmaps[id] = m
			truth[id] = g
		}
	}
	return shmaps, truth
}

func TestOnePassRecoversGroups(t *testing.T) {
	shmaps, truth := makeGroups(4, 4, 256, 30, false, 1)
	clusters := DefaultConfig().Cluster(shmaps)
	if len(clusters) != 4 {
		t.Fatalf("found %d clusters, want 4", len(clusters))
	}
	if p := Purity(clusters, truth); p != 1.0 {
		t.Errorf("purity = %v, want 1.0", p)
	}
	if ri := RandIndex(clusters, truth); ri != 1.0 {
		t.Errorf("rand index = %v, want 1.0", ri)
	}
}

func TestOnePassIgnoresGloballySharedEntries(t *testing.T) {
	// With a strong global band and no masking, everything would collapse
	// into one cluster; the histogram mask must prevent that.
	shmaps, truth := makeGroups(2, 8, 256, 30, true, 2)
	clusters := DefaultConfig().Cluster(shmaps)
	if len(clusters) != 2 {
		t.Fatalf("found %d clusters, want 2 (global band must be masked)", len(clusters))
	}
	if p := Purity(clusters, truth); p != 1.0 {
		t.Errorf("purity = %v, want 1.0", p)
	}

	// Sanity: with masking disabled (fraction > 1 means never mask), the
	// global band dominates and merges the groups.
	cfg := DefaultConfig()
	cfg.GlobalFraction = 2.0
	merged := cfg.Cluster(shmaps)
	if len(merged) != 1 {
		t.Errorf("without masking expected 1 merged cluster, got %d", len(merged))
	}
}

func TestOnePassFloorSuppressesColdSharing(t *testing.T) {
	// Two threads overlapping only in sub-floor noise must not merge.
	a, b := NewShMap(64), NewShMap(64)
	for e := 0; e < 64; e++ {
		a.Increment(e)
		b.Increment(e) // both have value 1 everywhere: cold sharing
	}
	cfg := DefaultConfig()
	cfg.Threshold = 1 // even a tiny threshold; floor must zero the values
	clusters := cfg.Cluster(map[ThreadKey]*ShMap{1: a, 2: b})
	if len(clusters) != 2 {
		t.Errorf("cold sharing merged threads: %d clusters, want 2", len(clusters))
	}
}

func TestSimilarityThresholdScenarios(t *testing.T) {
	// Paper Section 4.4.1: one entry with both values > 200 crosses the
	// 40000 threshold; two entries with values > 145 also cross it.
	a, b := NewShMap(256), NewShMap(256)
	for i := 0; i < 201; i++ {
		a.Increment(0)
		b.Increment(0)
	}
	if got := DotProduct(a, b, DefaultFloor, nil); got < 40000 {
		t.Errorf("single entry >200: similarity = %v, want >= 40000", got)
	}
	c, d := NewShMap(256), NewShMap(256)
	for i := 0; i < 146; i++ {
		c.Increment(0)
		c.Increment(1)
		d.Increment(0)
		d.Increment(1)
	}
	if got := DotProduct(c, d, DefaultFloor, nil); got < 40000 {
		t.Errorf("two entries >145: similarity = %v, want >= 40000", got)
	}
	// Just below: a single pair of entries at 140 must not cross.
	e, f := NewShMap(256), NewShMap(256)
	for i := 0; i < 140; i++ {
		e.Increment(0)
		f.Increment(0)
	}
	if got := DotProduct(e, f, DefaultFloor, nil); got >= 40000 {
		t.Errorf("single entry at 140: similarity = %v, want < 40000", got)
	}
}

func TestDotProductSymmetricAndMasked(t *testing.T) {
	f := func(av, bv []uint8, maskBits uint8) bool {
		a, b := NewShMap(32), NewShMap(32)
		for i, v := range av {
			for k := uint8(0); k < v%64; k++ {
				a.Increment(i % 32)
			}
		}
		for i, v := range bv {
			for k := uint8(0); k < v%64; k++ {
				b.Increment(i % 32)
			}
		}
		mask := make([]bool, 32)
		for i := range mask {
			mask[i] = (maskBits>>(uint(i)%8))&1 == 1
		}
		s1 := DotProduct(a, b, DefaultFloor, mask)
		s2 := DotProduct(b, a, DefaultFloor, mask)
		if s1 != s2 {
			return false
		}
		// Fully masked similarity is zero.
		full := make([]bool, 32)
		for i := range full {
			full[i] = true
		}
		return DotProduct(a, b, DefaultFloor, full) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCosineProperties(t *testing.T) {
	a, b := NewShMap(16), NewShMap(16)
	for i := 0; i < 100; i++ {
		a.Increment(3)
		b.Increment(3)
	}
	if got := Cosine(a, a, DefaultFloor, nil); got < 0.999 || got > 1.001 {
		t.Errorf("cosine(self) = %v, want 1", got)
	}
	if got := Cosine(a, b, DefaultFloor, nil); got < 0.999 {
		t.Errorf("cosine of identical direction = %v, want 1", got)
	}
	empty := NewShMap(16)
	if got := Cosine(a, empty, DefaultFloor, nil); got != 0 {
		t.Errorf("cosine with empty vector = %v, want 0", got)
	}
}

func TestJaccardProperties(t *testing.T) {
	a, b := NewShMap(16), NewShMap(16)
	for i := 0; i < 10; i++ {
		a.Increment(0)
		a.Increment(1)
		b.Increment(1)
		b.Increment(2)
	}
	got := Jaccard(a, b, DefaultFloor, nil)
	if got != 1.0/3.0 {
		t.Errorf("jaccard = %v, want 1/3 (1 shared of 3 touched)", got)
	}
	if Jaccard(NewShMap(16), NewShMap(16), DefaultFloor, nil) != 0 {
		t.Error("jaccard of empty vectors should be 0")
	}
}

func TestGlobalMask(t *testing.T) {
	// 4 threads; entry 0 touched by all, entry 1 by exactly half, entry 2
	// by one.
	maps := make([]*ShMap, 4)
	for i := range maps {
		maps[i] = NewShMap(8)
		maps[i].Increment(0)
	}
	maps[0].Increment(1)
	maps[1].Increment(1)
	maps[2].Increment(2)
	mask := GlobalMask(maps, 8, 0.5)
	if !mask[0] {
		t.Error("entry touched by all threads must be masked")
	}
	if mask[1] {
		t.Error("entry touched by exactly half must NOT be masked (paper: 'more than half')")
	}
	if mask[2] {
		t.Error("entry touched by one thread must not be masked")
	}
}

func TestSortBySize(t *testing.T) {
	cs := []Cluster{
		{Rep: 5, Members: []ThreadKey{5}},
		{Rep: 1, Members: []ThreadKey{1, 2, 3}},
		{Rep: 4, Members: []ThreadKey{4, 6}},
		{Rep: 0, Members: []ThreadKey{0}},
	}
	SortBySize(cs)
	sizes := []int{cs[0].Size(), cs[1].Size(), cs[2].Size(), cs[3].Size()}
	if sizes[0] != 3 || sizes[1] != 2 || sizes[2] != 1 || sizes[3] != 1 {
		t.Errorf("sizes after sort = %v, want [3 2 1 1]", sizes)
	}
	if cs[2].Rep != 0 || cs[3].Rep != 5 {
		t.Error("ties must break by representative key")
	}
}

func TestAssignment(t *testing.T) {
	cs := []Cluster{
		{Rep: 1, Members: []ThreadKey{1, 2}},
		{Rep: 3, Members: []ThreadKey{3}},
	}
	a := Assignment(cs)
	if a[1] != 0 || a[2] != 0 || a[3] != 1 {
		t.Errorf("assignment = %v", a)
	}
}

func TestPurityAndRandIndexDegenerate(t *testing.T) {
	if Purity(nil, nil) != 0 {
		t.Error("purity of no clusters should be 0")
	}
	one := []Cluster{{Rep: 1, Members: []ThreadKey{1}}}
	if RandIndex(one, map[ThreadKey]int{1: 0}) != 1 {
		t.Error("rand index with a single thread should be 1")
	}
}

func TestClusterDeterminism(t *testing.T) {
	shmaps, _ := makeGroups(3, 5, 256, 25, true, 7)
	c1 := DefaultConfig().Cluster(shmaps)
	c2 := DefaultConfig().Cluster(shmaps)
	if len(c1) != len(c2) {
		t.Fatalf("nondeterministic cluster count: %d vs %d", len(c1), len(c2))
	}
	for i := range c1 {
		if c1[i].Rep != c2[i].Rep || c1[i].Size() != c2[i].Size() {
			t.Fatalf("cluster %d differs between runs", i)
		}
	}
}

// Property: every thread lands in exactly one cluster.
func TestClusterPartitionProperty(t *testing.T) {
	f := func(seed int64, gRaw, sRaw uint8) bool {
		nGroups := int(gRaw%4) + 1
		size := int(sRaw%5) + 1
		shmaps, _ := makeGroups(nGroups, size, 128, 20, seed%2 == 0, seed)
		clusters := DefaultConfig().Cluster(shmaps)
		seen := make(map[ThreadKey]int)
		for _, c := range clusters {
			for _, m := range c.Members {
				seen[m]++
			}
		}
		if len(seen) != len(shmaps) {
			return false
		}
		for _, n := range seen {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestKMeansRecoversGroups(t *testing.T) {
	shmaps, truth := makeGroups(4, 4, 256, 30, true, 3)
	clusters := KMeans(shmaps, 4, DefaultFloor, 0.5, 42, 50)
	if len(clusters) == 0 {
		t.Fatal("kmeans returned nothing")
	}
	if p := Purity(clusters, truth); p < 0.95 {
		t.Errorf("kmeans purity = %v, want >= 0.95", p)
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	if KMeans(nil, 3, DefaultFloor, 0.5, 1, 10) != nil {
		t.Error("kmeans of nothing should be nil")
	}
	shmaps, _ := makeGroups(1, 2, 64, 20, false, 1)
	// k larger than the thread count clamps.
	cs := KMeans(shmaps, 10, DefaultFloor, 0.5, 1, 10)
	total := 0
	for _, c := range cs {
		total += c.Size()
	}
	if total != 2 {
		t.Errorf("kmeans lost threads: %d placed, want 2", total)
	}
}

func TestHierarchicalRecoversGroups(t *testing.T) {
	shmaps, truth := makeGroups(3, 4, 256, 30, true, 5)
	clusters := Hierarchical(shmaps, DefaultConfig())
	if len(clusters) != 3 {
		t.Fatalf("hierarchical found %d clusters, want 3", len(clusters))
	}
	if p := Purity(clusters, truth); p != 1.0 {
		t.Errorf("hierarchical purity = %v, want 1.0", p)
	}
}

func TestHierarchicalEmpty(t *testing.T) {
	if Hierarchical(nil, DefaultConfig()) != nil {
		t.Error("hierarchical of nothing should be nil")
	}
}

func TestAlternativeMetricsInOnePass(t *testing.T) {
	shmaps, truth := makeGroups(2, 6, 256, 40, false, 9)
	for name, tc := range map[string]struct {
		metric    Metric
		threshold float64
	}{
		"cosine":  {Cosine, 0.5},
		"jaccard": {Jaccard, 0.3},
	} {
		cfg := DefaultConfig()
		cfg.Metric = tc.metric
		cfg.Threshold = tc.threshold
		clusters := cfg.Cluster(shmaps)
		if len(clusters) != 2 {
			t.Errorf("%s: %d clusters, want 2", name, len(clusters))
			continue
		}
		if p := Purity(clusters, truth); p != 1.0 {
			t.Errorf("%s purity = %v, want 1.0", name, p)
		}
	}
}
