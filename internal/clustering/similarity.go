package clustering

import "math"

// DefaultFloor is the paper's noise floor: entry values below 3 "may be
// incidental or due to cold sharing" and are treated as zero
// (Section 4.4.1).
const DefaultFloor uint8 = 3

// DefaultSimilarityThreshold is the paper's clustering threshold: two
// vectors whose dot product exceeds ~40000 belong to the same cluster —
// e.g. one shared entry with both counters above 200, or two entries above
// 145 (Section 4.4.1).
const DefaultSimilarityThreshold uint64 = 40000

// Metric computes a similarity score between two equally sized shMaps,
// applying the noise floor and the global-sharing mask (entries where
// mask[i] is true are ignored). Higher is more similar.
type Metric func(a, b *ShMap, floor uint8, mask []bool) float64

// floored returns the entry value with the noise floor applied.
func floored(v, floor uint8) uint64 {
	if v < floor {
		return 0
	}
	return uint64(v)
}

// DotProduct is the paper's similarity metric:
//
//	similarity(T1, T2) = sum_i T1[i]*T2[i]
//
// It only scores entries where both vectors are non-zero — i.e. lines on
// which *both* threads incurred remote accesses — and it weighs sharing
// intensity multiplicatively.
func DotProduct(a, b *ShMap, floor uint8, mask []bool) float64 {
	var sum uint64
	for i := 0; i < a.Len() && i < b.Len(); i++ {
		if mask != nil && mask[i] {
			continue
		}
		sum += floored(a.Get(i), floor) * floored(b.Get(i), floor)
	}
	return float64(sum)
}

// Cosine is an alternative metric (ablation, Section 8 future work): the
// dot product normalized by vector magnitudes, in [0,1]. It ignores
// intensity scale, which the paper's metric deliberately keeps.
func Cosine(a, b *ShMap, floor uint8, mask []bool) float64 {
	var dot, na, nb uint64
	for i := 0; i < a.Len() && i < b.Len(); i++ {
		if mask != nil && mask[i] {
			continue
		}
		va, vb := floored(a.Get(i), floor), floored(b.Get(i), floor)
		dot += va * vb
		na += va * va
		nb += vb * vb
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return float64(dot) / (math.Sqrt(float64(na)) * math.Sqrt(float64(nb)))
}

// Jaccard is a second alternative metric: the ratio of co-touched entries
// to touched entries, in [0,1]. It discards intensity entirely.
func Jaccard(a, b *ShMap, floor uint8, mask []bool) float64 {
	var inter, union int
	for i := 0; i < a.Len() && i < b.Len(); i++ {
		if mask != nil && mask[i] {
			continue
		}
		va, vb := floored(a.Get(i), floor) > 0, floored(b.Get(i), floor) > 0
		if va && vb {
			inter++
		}
		if va || vb {
			union++
		}
	}
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// GlobalMask builds the histogram of Section 4.4.2 and masks entries that
// are globally shared: an entry is masked when more than fraction of the
// threads have a non-zero value there ("more than half of the total number
// of threads" with fraction = 0.5). Masked entries carry process-wide
// state (locks, allocator metadata, JVM internals) and say nothing about
// cluster structure.
func GlobalMask(shmaps []*ShMap, entries int, fraction float64) []bool {
	mask := make([]bool, entries)
	if len(shmaps) == 0 {
		return mask
	}
	hist := make([]int, entries)
	for _, m := range shmaps {
		for i := 0; i < entries && i < m.Len(); i++ {
			if m.Get(i) > 0 {
				hist[i]++
			}
		}
	}
	limit := fraction * float64(len(shmaps))
	for i, h := range hist {
		if float64(h) > limit {
			mask[i] = true
		}
	}
	return mask
}
