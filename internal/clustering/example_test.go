package clustering_test

import (
	"fmt"

	"threadcluster/internal/clustering"
)

// Example demonstrates the full clustering pipeline on hand-built shMaps:
// two pairs of threads share two different cache-line groups, and every
// thread touches one globally shared entry that the histogram mask must
// discard.
func Example() {
	shmaps := make(map[clustering.ThreadKey]*clustering.ShMap)
	bump := func(m *clustering.ShMap, entry, times int) {
		for i := 0; i < times; i++ {
			m.Increment(entry)
		}
	}
	for tid := clustering.ThreadKey(0); tid < 4; tid++ {
		m := clustering.NewShMap(64)
		if tid < 2 {
			bump(m, 7, 200) // pair A shares entry 7
		} else {
			bump(m, 21, 200) // pair B shares entry 21
		}
		bump(m, 50, 200) // everyone hammers the global entry
		shmaps[tid] = m
	}

	cfg := clustering.DefaultConfig()
	clusters := cfg.Cluster(shmaps)
	for i, c := range clusters {
		fmt.Printf("cluster %d: threads %v\n", i, c.Members)
	}
	// Output:
	// cluster 0: threads [0 1]
	// cluster 1: threads [2 3]
}

// ExampleDotProduct shows the paper's similarity metric with its noise
// floor: entries below the floor are treated as zero.
func ExampleDotProduct() {
	a, b := clustering.NewShMap(8), clustering.NewShMap(8)
	for i := 0; i < 100; i++ {
		a.Increment(3)
		b.Increment(3)
	}
	a.Increment(5) // sub-floor noise on entry 5
	b.Increment(5)
	fmt.Println(clustering.DotProduct(a, b, clustering.DefaultFloor, nil))
	// Output: 10000
}

// ExampleFilter shows spatial sampling: first touch claims an entry
// immutably, matching lines pass, colliding lines are discarded.
func ExampleFilter() {
	f, _ := clustering.NewFilter(16, 0)
	idx, ok := f.Admit(1, 0x1000)
	fmt.Println("first touch admitted:", ok)
	idx2, ok2 := f.Admit(2, 0x1000)
	fmt.Println("same line, other thread:", ok2, idx == idx2)
	// Output:
	// first touch admitted: true
	// same line, other thread: true true
}
