package clustering

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"threadcluster/internal/errs"
	"threadcluster/internal/snapbin"
)

// streamShape parameterizes an event stream's shMap geometry, mirroring
// the simulator topologies the full-system differentials run on: open720
// (4 chips), the 32-way POWER5 (16 chips), and the NUMA open720 variant
// with a wider line space.
type streamShape struct {
	name    string
	entries int
	groups  int
	maxLive int
}

func diffShapes() []streamShape {
	return []streamShape{
		{name: "open720", entries: 256, groups: 4, maxLive: 64},
		{name: "power5-32way", entries: 256, groups: 16, maxLive: 128},
		{name: "open720-numa", entries: 512, groups: 8, maxLive: 96},
	}
}

// eventStream generates a randomized churn/migration stream over banded
// group vectors and mirrors the engine's intended contents so a batch
// clusterer can be run from scratch at any point.
type eventStream struct {
	rng     *rand.Rand
	shape   streamShape
	vecs    map[ThreadKey]*ShMap
	keys    []ThreadKey // ascending; kept in step with vecs
	nextKey ThreadKey
}

func newEventStream(shape streamShape, seed int64) *eventStream {
	return &eventStream{
		rng:   rand.New(rand.NewSource(seed)),
		shape: shape,
		vecs:  make(map[ThreadKey]*ShMap),
	}
}

// groupVector synthesizes a banded vector for one thread of group g, the
// makeGroups shape: a hot disjoint band plus sub-floor noise.
func (s *eventStream) groupVector(g int) *ShMap {
	m := NewShMap(s.shape.entries)
	band := s.shape.entries / (s.shape.groups + 1)
	for e := g * band; e < (g+1)*band; e++ {
		for k := 0; k < 25+s.rng.Intn(10); k++ {
			m.Increment(e)
		}
	}
	for i := 0; i < 5; i++ {
		m.Increment(s.rng.Intn(s.shape.entries))
	}
	return m
}

// liveKeys returns the live keys in ascending order, so that two streams
// with one seed pick identical victims regardless of map iteration order
// (the restore test replays a stream against two replicas). The slice is
// maintained incrementally: re-sorting 1e5 keys per event would dominate
// the scale test's runtime.
func (s *eventStream) liveKeys() []ThreadKey { return s.keys }

func (s *eventStream) addKey(k ThreadKey) { s.keys = append(s.keys, k) }

func (s *eventStream) dropKey(k ThreadKey) {
	i := sort.Search(len(s.keys), func(i int) bool { return s.keys[i] >= k })
	s.keys = append(s.keys[:i], s.keys[i+1:]...)
}

// step applies one random event to the engine and the mirror.
func (s *eventStream) step(t *testing.T, eng *Engine) {
	t.Helper()
	roll := s.rng.Intn(100)
	switch {
	case roll < 50 || len(s.vecs) < 2: // arrival
		if len(s.vecs) >= s.shape.maxLive {
			return
		}
		key := s.nextKey
		s.nextKey++
		m := s.groupVector(s.rng.Intn(s.shape.groups))
		s.vecs[key] = m
		s.addKey(key)
		if err := eng.ApplyChurn(ChurnEvent{Arrived: map[ThreadKey]*ShMap{key: m}}); err != nil {
			t.Fatalf("arrival of %d: %v", key, err)
		}
	case roll < 75: // sharing delta: re-draw the vector, often a new group
		keys := s.liveKeys()
		key := keys[s.rng.Intn(len(keys))]
		m := s.groupVector(s.rng.Intn(s.shape.groups))
		s.vecs[key] = m
		if err := eng.ApplyMigration(key, m); err != nil {
			t.Fatalf("migration of %d: %v", key, err)
		}
	default: // departure
		keys := s.liveKeys()
		key := keys[s.rng.Intn(len(keys))]
		delete(s.vecs, key)
		s.dropKey(key)
		if err := eng.ApplyChurn(ChurnEvent{Departed: []ThreadKey{key}}); err != nil {
			t.Fatalf("departure of %d: %v", key, err)
		}
	}
}

// batchClusters runs the from-scratch clusterer over the mirrored
// vectors in the engine's mode.
func batchClusters(eng *Engine, vecs map[ThreadKey]*ShMap) []Cluster {
	if eng.Mode() == ModeSketch {
		sketches := make(map[ThreadKey]*Sketch, len(vecs))
		for k, m := range vecs {
			sketches[k] = SketchShMap(m, eng.cfg.Clustering.Floor, eng.cfg.SketchRows, eng.cfg.SketchWidth)
		}
		return ClusterSketches(sketches, eng.cfg.SketchThreshold)
	}
	return eng.cfg.Clustering.Cluster(vecs)
}

func clustersEqual(a, b []Cluster) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Rep != b[i].Rep || len(a[i].Members) != len(b[i].Members) {
			return false
		}
		for j := range a[i].Members {
			if a[i].Members[j] != b[i].Members[j] {
				return false
			}
		}
	}
	return true
}

// checkPartition asserts every mirrored thread sits in exactly one
// cluster of the engine's rendering.
func checkPartition(t *testing.T, eng *Engine, vecs map[ThreadKey]*ShMap) {
	t.Helper()
	seen := make(map[ThreadKey]int)
	for _, c := range eng.Clusters() {
		for _, m := range c.Members {
			seen[m]++
		}
	}
	if len(seen) != len(vecs) {
		t.Fatalf("partition covers %d threads, mirror has %d", len(seen), len(vecs))
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("thread %d appears in %d clusters", k, n)
		}
		if _, ok := vecs[k]; !ok {
			t.Fatalf("partition contains departed thread %d", k)
		}
	}
}

// TestIncrementalMatchesBatch is the headline differential: replay
// randomized migration/churn event streams over the three topology
// shapes and several seeds, in both modes, and require the incremental
// partition to equal a from-scratch batch run at every drift-triggered
// recluster point (and at a forced recluster at stream end). The drift
// detector is tuned eager so streams trigger many reclusters; between
// them the partition must stay a valid cover of the live threads.
func TestIncrementalMatchesBatch(t *testing.T) {
	const events = 400
	for _, shape := range diffShapes() {
		for _, mode := range []Mode{ModeDense, ModeSketch} {
			for seed := int64(1); seed <= 3; seed++ {
				shape, mode, seed := shape, mode, seed
				t.Run(shape.name+"/"+mode.String(), func(t *testing.T) {
					t.Parallel()
					cfg := DefaultEngineConfig()
					cfg.Mode = mode
					cfg.DriftWindow = 16
					cfg.DriftThreshold = 0.02
					// The narrower bands of the 16-group shape score well
					// below the paper's 40000 (tuned for ~50-entry bands);
					// scale the join threshold to the geometry so streams
					// exercise real join/migrate dynamics at every shape.
					cfg.Clustering.Threshold = 4000
					eng, err := NewEngine(cfg)
					if err != nil {
						t.Fatal(err)
					}
					stream := newEventStream(shape, seed)
					last := eng.Reclusters()
					checked := 0
					for i := 0; i < events; i++ {
						stream.step(t, eng)
						checkPartition(t, eng, stream.vecs)
						if r := eng.Reclusters(); r != last {
							last = r
							checked++
							if got, want := eng.Clusters(), batchClusters(eng, stream.vecs); !clustersEqual(got, want) {
								t.Fatalf("event %d recluster %d: incremental %v != batch %v", i, r, got, want)
							}
						}
					}
					eng.ForceRecluster()
					if got, want := eng.Clusters(), batchClusters(eng, stream.vecs); !clustersEqual(got, want) {
						t.Fatalf("final recluster: incremental %v != batch %v", got, want)
					}
					if checked == 0 {
						t.Error("stream never triggered a drift recluster; detector tuning is broken")
					}
				})
			}
		}
	}
}

// Between reclusters the incremental one-pass applies the same join rule
// as the batch scan, so a stream of pure arrivals in ascending key order
// must match batch exactly at EVERY event, not only at recluster points.
func TestIncrementalArrivalsMatchBatchContinuously(t *testing.T) {
	cfg := DefaultEngineConfig()
	cfg.DriftThreshold = 2 // mean displacement is <= 1: never triggers
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stream := newEventStream(diffShapes()[0], 9)
	for i := 0; i < 60; i++ {
		key := stream.nextKey
		stream.nextKey++
		m := stream.groupVector(i % stream.shape.groups)
		stream.vecs[key] = m
		if err := eng.ApplyChurn(ChurnEvent{Arrived: map[ThreadKey]*ShMap{key: m}}); err != nil {
			t.Fatal(err)
		}
		if got, want := eng.Clusters(), batchClusters(eng, stream.vecs); !clustersEqual(got, want) {
			t.Fatalf("arrival %d: incremental %v != batch %v", i, got, want)
		}
	}
	if eng.Reclusters() != 0 {
		t.Errorf("reclusters = %d, want 0", eng.Reclusters())
	}
}

func TestIncrementalEventErrors(t *testing.T) {
	eng, err := NewEngine(DefaultEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := NewShMap(64)
	if err := eng.ApplyChurn(ChurnEvent{Arrived: map[ThreadKey]*ShMap{1: m}}); err != nil {
		t.Fatal(err)
	}
	if err := eng.ApplyChurn(ChurnEvent{Arrived: map[ThreadKey]*ShMap{1: m}}); !errors.Is(err, errs.ErrDuplicateThread) {
		t.Errorf("duplicate arrival: err = %v, want ErrDuplicateThread", err)
	}
	if err := eng.ApplyChurn(ChurnEvent{Departed: []ThreadKey{7}}); !errors.Is(err, errs.ErrUnknownThread) {
		t.Errorf("unknown departure: err = %v, want ErrUnknownThread", err)
	}
	if err := eng.ApplyMigration(7, m); !errors.Is(err, errs.ErrUnknownThread) {
		t.Errorf("unknown migration: err = %v, want ErrUnknownThread", err)
	}
	if _, err := NewEngine(EngineConfig{Mode: Mode(9)}); !errors.Is(err, errs.ErrBadConfig) {
		t.Errorf("bad mode: err = %v, want ErrBadConfig", err)
	}
}

func TestParseMode(t *testing.T) {
	for s, want := range map[string]Mode{"dense": ModeDense, "sketch": ModeSketch} {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), s)
		}
	}
	if _, err := ParseMode("fuzzy"); !errors.Is(err, errs.ErrBadConfig) {
		t.Errorf("ParseMode(fuzzy) err = %v, want ErrBadConfig", err)
	}
}

// Drift semantics: a stable population reports near-zero drift; moving
// every thread to new sharing patterns fills the window and fires a
// recluster.
func TestDriftDetectorFires(t *testing.T) {
	cfg := DefaultEngineConfig()
	cfg.DriftWindow = 8
	cfg.DriftThreshold = 0.1
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stream := newEventStream(diffShapes()[0], 4)
	arrive := make(map[ThreadKey]*ShMap)
	for i := 0; i < 16; i++ {
		arrive[ThreadKey(i)] = stream.groupVector(i % 2)
		stream.vecs[ThreadKey(i)] = arrive[ThreadKey(i)]
	}
	if err := eng.ApplyChurn(ChurnEvent{Arrived: arrive}); err != nil {
		t.Fatal(err)
	}
	base := eng.Reclusters()
	// Re-deliver identical vectors: drift stays ~0, no recluster.
	for i := 0; i < 16; i++ {
		if err := eng.ApplyMigration(ThreadKey(i), stream.vecs[ThreadKey(i)].Clone()); err != nil {
			t.Fatal(err)
		}
	}
	if eng.Reclusters() != base {
		t.Fatalf("identical re-deliveries triggered a recluster (drift %v)", eng.Drift())
	}
	// Move everyone to fresh groups: displacement accumulates, fires.
	for i := 0; i < 16; i++ {
		if err := eng.ApplyMigration(ThreadKey(i), stream.groupVector(2+i%2)); err != nil {
			t.Fatal(err)
		}
	}
	if eng.Reclusters() == base {
		t.Errorf("wholesale pattern change never fired the detector (drift %v)", eng.Drift())
	}
}

// TestIncrementalScale100k drives the engine to 1e5 threads and applies
// a mixed event tail, pinning that per-event work stays independent of
// the population (the wall-clock guard lives in BENCH_clustering.json;
// this is the functional half).
func TestIncrementalScale100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-thread stream is full-tier only")
	}
	for _, mode := range []Mode{ModeDense, ModeSketch} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			cfg := DefaultEngineConfig()
			cfg.Mode = mode
			cfg.DriftThreshold = 2 // never: a 100k-thread batch pass is the bench's job
			// 32 groups over 256 entries leave 7-entry bands; the minimum
			// same-group dot is 7*25*25 = 4375, so 4300 joins
			// deterministically and the cluster count stays at the group
			// count instead of exploding to O(threads).
			cfg.Clustering.Threshold = 4300
			eng, err := NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			shape := streamShape{name: "scale", entries: 256, groups: 32, maxLive: 1 << 20}
			stream := newEventStream(shape, 77)
			const n = 100_000
			for i := 0; i < n; i++ {
				key := stream.nextKey
				stream.nextKey++
				m := stream.groupVector(i % shape.groups)
				stream.vecs[key] = m
				stream.addKey(key)
				if err := eng.ApplyChurn(ChurnEvent{Arrived: map[ThreadKey]*ShMap{key: m}}); err != nil {
					t.Fatal(err)
				}
			}
			if eng.Len() != n {
				t.Fatalf("tracked %d threads, want %d", eng.Len(), n)
			}
			if c := len(eng.Clusters()); c != shape.groups {
				t.Errorf("found %d clusters, want %d", c, shape.groups)
			}
			for i := 0; i < 1000; i++ {
				stream.step(t, eng)
			}
			if got := int(eng.Events()); got != n+1000 {
				t.Errorf("events = %d, want %d", got, n+1000)
			}
		})
	}
}

// Snapshot round-trip: a streamed engine saves, restores into a fresh
// engine, re-saves byte-identically, and both continue identically.
func TestIncrementalStateRoundTrip(t *testing.T) {
	for _, mode := range []Mode{ModeDense, ModeSketch} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			cfg := DefaultEngineConfig()
			cfg.Mode = mode
			cfg.DriftWindow = 16
			cfg.DriftThreshold = 0.05
			eng, err := NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			stream := newEventStream(diffShapes()[1], 13)
			for i := 0; i < 150; i++ {
				stream.step(t, eng)
			}

			var enc snapbin.Enc
			eng.SaveState(&enc)
			restored, err := NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			d := snapbin.NewDec(enc.Bytes())
			if err := restored.RestoreState(d); err != nil {
				t.Fatal(err)
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			var enc2 snapbin.Enc
			restored.SaveState(&enc2)
			if string(enc2.Bytes()) != string(enc.Bytes()) {
				t.Fatal("re-saved state is not byte-identical")
			}
			if !clustersEqual(eng.Clusters(), restored.Clusters()) {
				t.Fatal("restored partition differs")
			}

			// Both replicas must evolve identically from here.
			streamA, streamB := newEventStream(diffShapes()[1], 99), newEventStream(diffShapes()[1], 99)
			streamA.vecs, streamA.keys, streamA.nextKey = stream.vecs, stream.keys, stream.nextKey
			streamB.vecs = make(map[ThreadKey]*ShMap, len(stream.vecs))
			for k, v := range stream.vecs {
				streamB.vecs[k] = v
			}
			streamB.keys = append([]ThreadKey(nil), stream.keys...)
			streamB.nextKey = stream.nextKey
			for i := 0; i < 80; i++ {
				streamA.step(t, eng)
				streamB.step(t, restored)
			}
			if !clustersEqual(eng.Clusters(), restored.Clusters()) {
				t.Fatal("replicas diverged after restore")
			}
			if eng.Reclusters() != restored.Reclusters() || eng.Events() != restored.Events() {
				t.Fatalf("counters diverged: %d/%d vs %d/%d",
					eng.Reclusters(), eng.Events(), restored.Reclusters(), restored.Events())
			}
		})
	}
}

func TestIncrementalRestoreErrors(t *testing.T) {
	cfg := DefaultEngineConfig()
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stream := newEventStream(diffShapes()[0], 3)
	for i := 0; i < 40; i++ {
		stream.step(t, eng)
	}
	var enc snapbin.Enc
	eng.SaveState(&enc)
	good := enc.Bytes()

	t.Run("mode mismatch", func(t *testing.T) {
		sk := cfg
		sk.Mode = ModeSketch
		r, _ := NewEngine(sk)
		if err := r.RestoreState(snapbin.NewDec(good)); !errors.Is(err, errs.ErrBadConfig) {
			t.Errorf("err = %v, want ErrBadConfig", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		r, _ := NewEngine(cfg)
		if err := r.RestoreState(snapbin.NewDec(good[:len(good)/2])); err == nil {
			t.Error("truncated state must fail")
		}
	})
	t.Run("unsorted threads", func(t *testing.T) {
		// Rebuild an encoding with two clusters claiming one thread by
		// corrupting a member key to duplicate another. Simplest reliable
		// corruption: flip the thread-count order byte region — here we
		// corrupt the first thread key to a huge value so ordering breaks.
		bad := append([]byte(nil), good...)
		// Layout: mode u8, entries u32, nThreads u32, then first key i64.
		for i := 9; i < 17; i++ {
			bad[i] = 0xFF
		}
		r, _ := NewEngine(cfg)
		if err := r.RestoreState(snapbin.NewDec(bad)); err == nil {
			t.Error("corrupted thread keys must fail")
		}
	})
}
