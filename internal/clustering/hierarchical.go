package clustering

import "sort"

// Hierarchical performs agglomerative average-linkage clustering over the
// shMap vectors — the other "full-blown" algorithm the paper defers to
// future work. Starting from singleton clusters, the two most similar
// clusters are merged repeatedly until no pair's average pairwise
// similarity reaches the threshold. Cost is O(T^3) similarity evaluations
// in this simple implementation, which is exactly why the paper's online
// engine does not use it; it exists as an offline quality baseline.
func Hierarchical(shmaps map[ThreadKey]*ShMap, cfg Config) []Cluster {
	metric := cfg.Metric
	if metric == nil {
		metric = DotProduct
	}
	keys := sortedKeys(shmaps)
	if len(keys) == 0 {
		return nil
	}
	entries := 0
	vecs := make([]*ShMap, 0, len(keys))
	for _, k := range keys {
		vecs = append(vecs, shmaps[k])
		if shmaps[k].Len() > entries {
			entries = shmaps[k].Len()
		}
	}
	mask := GlobalMask(vecs, entries, cfg.GlobalFraction)

	// Pairwise similarity matrix over threads.
	n := len(keys)
	sim := make([][]float64, n)
	for i := range sim {
		sim[i] = make([]float64, n)
		for j := range sim[i] {
			if i != j {
				sim[i][j] = metric(shmaps[keys[i]], shmaps[keys[j]], cfg.Floor, mask)
			}
		}
	}

	groups := make([][]int, n)
	for i := range groups {
		groups[i] = []int{i}
	}

	avgLink := func(a, b []int) float64 {
		var sum float64
		for _, i := range a {
			for _, j := range b {
				sum += sim[i][j]
			}
		}
		return sum / float64(len(a)*len(b))
	}

	for len(groups) > 1 {
		bi, bj, best := -1, -1, 0.0
		for i := 0; i < len(groups); i++ {
			for j := i + 1; j < len(groups); j++ {
				if s := avgLink(groups[i], groups[j]); s > best {
					bi, bj, best = i, j, s
				}
			}
		}
		if bi < 0 || best < cfg.Threshold {
			break
		}
		groups[bi] = append(groups[bi], groups[bj]...)
		groups = append(groups[:bj], groups[bj+1:]...)
	}

	var out []Cluster
	for _, g := range groups {
		members := make([]ThreadKey, 0, len(g))
		for _, i := range g {
			members = append(members, keys[i])
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		out = append(out, Cluster{Rep: members[0], Members: members})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rep < out[j].Rep })
	return out
}
