package clustering

import (
	"testing"

	"threadcluster/internal/snapbin"
)

// FuzzSketchEstimate pins the sketch against arbitrary counter rows:
//
//   - the deterministic sandwich of the Sketch doc comment — dense
//     Cosine(a,b) <= sketch Cosine, raw estimate <= Ceiling — must hold
//     for ANY pair of equal-length vectors, not just banded workloads;
//   - a save/restore round trip must be lossless and byte-stable;
//   - decoding corrupted bytes must never panic and must either fail
//     (snapbin.ErrCorrupt for validated invariants) or produce a sketch
//     that still satisfies the public invariants.
func FuzzSketchEstimate(f *testing.F) {
	f.Add([]byte{10, 0, 200, 3}, []byte{0, 10, 200}, uint8(3), false, uint16(0))
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255}, []byte{255}, uint8(0), false, uint16(3))
	f.Add([]byte{7, 7, 7}, []byte{7, 7, 7}, uint8(8), true, uint16(12))
	f.Add([]byte{}, []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint8(1), true, uint16(40))

	f.Fuzz(func(t *testing.T, av, bv []byte, floor uint8, corrupt bool, flip uint16) {
		const maxEntries = 2048
		if len(av) > maxEntries {
			av = av[:maxEntries]
		}
		if len(bv) > maxEntries {
			bv = bv[:maxEntries]
		}
		// The sandwich needs a common entry count (dense Cosine scores
		// only the common prefix); pad the shorter vector with zeros.
		n := len(av)
		if len(bv) > n {
			n = len(bv)
		}
		a := NewShMap(n + 1)
		b := NewShMap(n + 1)
		copy(a.counters, av)
		copy(b.counters, bv)

		// Narrow sketches force collisions, the interesting regime.
		sa := SketchShMap(a, floor, 2, 16)
		sb := SketchShMap(b, floor, 2, 16)
		dense := Cosine(a, b, floor, nil)
		est := sa.Cosine(sb)
		if est < dense-1e-9 {
			t.Fatalf("sketch underestimated: dense %v > estimate %v", dense, est)
		}
		if est < 0 || est > 1 {
			t.Fatalf("estimate %v outside [0,1]", est)
		}
		if ceiling := sa.Ceiling(sb); sa.cosineRaw(sb) > ceiling+1e-9 {
			t.Fatalf("raw estimate %v above ceiling %v", sa.cosineRaw(sb), ceiling)
		}
		if sa.Cosine(sb) != sb.Cosine(sa) {
			t.Fatal("estimator is not symmetric")
		}

		var enc snapbin.Enc
		sa.SaveState(&enc)
		buf := append([]byte(nil), enc.Bytes()...)
		if corrupt {
			buf[int(flip)%len(buf)]++
		}
		r := NewSketch(2, 16)
		err := r.RestoreState(snapbin.NewDec(buf))
		if !corrupt {
			if err != nil {
				t.Fatalf("round trip of valid state failed: %v", err)
			}
			var enc2 snapbin.Enc
			r.SaveState(&enc2)
			if string(enc2.Bytes()) != string(enc.Bytes()) {
				t.Fatal("re-saved state is not byte-identical")
			}
			if got := r.Cosine(sb); got != est {
				t.Fatalf("restored sketch scores %v, original %v", got, est)
			}
			return
		}
		if err != nil {
			return // rejected, as malformed input should be
		}
		// The flip happened to survive validation; the public invariants
		// must still hold (the estimator stays safe to use).
		if r.Inflation() < 1-1e-9 {
			t.Fatalf("corrupted-but-accepted sketch has inflation %v < 1", r.Inflation())
		}
		if c := r.Cosine(r); !r.Empty() && c != 1 {
			t.Fatalf("corrupted-but-accepted sketch self-cosine %v != 1", c)
		}
	})
}
