package clustering

import (
	"testing"
	"testing/quick"

	"threadcluster/internal/memory"
)

func TestNewShMapDefaults(t *testing.T) {
	m := NewShMap(0)
	if m.Len() != DefaultEntries {
		t.Errorf("default size = %d, want %d", m.Len(), DefaultEntries)
	}
	m = NewShMap(128)
	if m.Len() != 128 {
		t.Errorf("size = %d, want 128", m.Len())
	}
}

func TestShMapIncrementSaturates(t *testing.T) {
	m := NewShMap(8)
	for i := 0; i < 1000; i++ {
		m.Increment(3)
	}
	if got := m.Get(3); got != CounterMax {
		t.Errorf("saturated counter = %d, want %d", got, CounterMax)
	}
	if got := m.Get(2); got != 0 {
		t.Errorf("untouched counter = %d, want 0", got)
	}
	if m.NonZero() != 1 {
		t.Errorf("NonZero = %d, want 1", m.NonZero())
	}
	if m.Total() != CounterMax {
		t.Errorf("Total = %d, want %d", m.Total(), CounterMax)
	}
}

func TestShMapResetAndClone(t *testing.T) {
	m := NewShMap(8)
	m.Increment(1)
	m.Increment(1)
	c := m.Clone()
	m.Reset()
	if m.NonZero() != 0 {
		t.Error("Reset should zero everything")
	}
	if c.Get(1) != 2 {
		t.Error("Clone should be independent of the original")
	}
}

// Property: saturating counters are monotone and bounded.
func TestShMapCounterBounds(t *testing.T) {
	f := func(incs []uint8) bool {
		m := NewShMap(4)
		var prev uint8
		for _, x := range incs {
			m.Increment(int(x) % 4)
			v := m.Get(int(x) % 4)
			if v > CounterMax {
				return false
			}
			_ = prev
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Regression: Row used to return the internal counter slice, letting the
// Figure 5 renderer (or any caller) mutate clustering state behind the
// engine's back. It must copy.
func TestRowDoesNotAliasState(t *testing.T) {
	m := NewShMap(8)
	m.Increment(2)
	m.Increment(2)
	row := m.Row()
	if row[2] != 2 {
		t.Fatalf("Row()[2] = %d, want 2", row[2])
	}
	row[2] = 99
	if got := m.Get(2); got != 2 {
		t.Errorf("mutating Row's result changed the shMap: Get(2) = %d, want 2", got)
	}
	m.Increment(2)
	if row[2] != 99 {
		t.Error("shMap mutation leaked into a previously returned row")
	}
}

func TestAppendRowExtendsDst(t *testing.T) {
	m := NewShMap(4)
	m.Increment(0)
	buf := make([]uint8, 0, 16)
	buf = m.AppendRow(buf)
	buf = m.AppendRow(buf)
	if len(buf) != 8 || buf[0] != 1 || buf[4] != 1 {
		t.Errorf("AppendRow twice = %v, want two concatenated rows", buf)
	}
	buf[0] = 77
	if m.Get(0) != 1 {
		t.Error("mutating AppendRow's result changed the shMap")
	}
}

func TestHashLineInRangeAndDeterministic(t *testing.T) {
	f := func(a uint64, nRaw uint8) bool {
		n := int(nRaw%200) + 1
		h1 := HashLine(memory.Addr(a), n)
		h2 := HashLine(memory.Addr(a), n)
		return h1 == h2 && h1 >= 0 && h1 < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashLineIgnoresOffsetWithinLine(t *testing.T) {
	base := memory.Addr(0x12340080)
	for off := memory.Addr(0); off < memory.LineSize; off++ {
		if HashLine(memory.LineOf(base+off), 256) != HashLine(memory.LineOf(base), 256) {
			t.Fatal("same line should hash identically regardless of offset")
		}
	}
}

func TestHashLineSpreads(t *testing.T) {
	// Sequential lines (the common layout of a real data structure) must
	// spread across entries, not pile onto a few.
	const n = 256
	seen := make(map[int]bool)
	for i := uint64(0); i < 1000; i++ {
		seen[HashLine(memory.Addr(i*memory.LineSize), n)] = true
	}
	if len(seen) < n/2 {
		t.Errorf("1000 sequential lines landed on only %d/%d entries", len(seen), n)
	}
}

func TestFilterFirstTouchImmutable(t *testing.T) {
	f, err := NewFilter(256, 0)
	if err != nil {
		t.Fatal(err)
	}
	lineA := memory.Addr(0x1000)
	idx, ok := f.Admit(1, lineA)
	if !ok {
		t.Fatal("first touch should claim the entry")
	}
	// The same line passes again, for any thread.
	if idx2, ok := f.Admit(2, lineA); !ok || idx2 != idx {
		t.Error("matching line should pass the filter for any thread")
	}
	// A different line hashing elsewhere is fine; find one colliding with
	// lineA's entry to verify rejection.
	var collider memory.Addr
	found := false
	for i := uint64(1); i < 100000; i++ {
		c := memory.Addr(i * memory.LineSize)
		if c != lineA && HashLine(c, 256) == idx {
			collider, found = c, true
			break
		}
	}
	if !found {
		t.Fatal("no collider found")
	}
	if _, ok := f.Admit(3, collider); ok {
		t.Error("collision with a claimed entry must be rejected (immutability)")
	}
	if got, ok := f.EntryLine(idx); !ok || got != lineA {
		t.Error("entry should still hold the first-touch line")
	}
}

func TestFilterQuota(t *testing.T) {
	f, _ := NewFilter(256, 2)
	claimed := 0
	for i := uint64(0); i < 64 && claimed < 5; i++ {
		if _, ok := f.Admit(7, memory.Addr(i*memory.LineSize*97)); ok {
			claimed++
		}
	}
	if got := f.OwnedBy(7); got != 2 {
		t.Errorf("thread claimed %d entries, quota is 2", got)
	}
	// Another thread can still claim fresh entries.
	if _, ok := f.Admit(8, memory.Addr(0x7f000000)); !ok {
		t.Error("other threads should not be blocked by thread 7's quota")
	}
}

func TestFilterStatsAndReset(t *testing.T) {
	f, _ := NewFilter(16, 0)
	f.Admit(1, 0x1000)
	f.Admit(1, 0x1000)
	if f.Admits() != 2 {
		t.Errorf("admits = %d, want 2", f.Admits())
	}
	if f.Claimed() != 1 {
		t.Errorf("claimed = %d, want 1", f.Claimed())
	}
	f.Reset()
	if f.Claimed() != 0 || f.Admits() != 0 || f.OwnedBy(1) != 0 {
		t.Error("Reset should clear all state")
	}
}

func TestFilterValidation(t *testing.T) {
	if _, err := NewFilter(0, 1); err == nil {
		t.Error("zero-size filter should fail")
	}
	if _, err := NewFilter(-5, 1); err == nil {
		t.Error("negative-size filter should fail")
	}
	f, _ := NewFilter(8, 100)
	if f.quota != 8 {
		t.Errorf("quota should clamp to size, got %d", f.quota)
	}
}

func TestFilterEntryLineBounds(t *testing.T) {
	f, _ := NewFilter(8, 0)
	if _, ok := f.EntryLine(-1); ok {
		t.Error("negative index should report absent")
	}
	if _, ok := f.EntryLine(8); ok {
		t.Error("out-of-range index should report absent")
	}
	if _, ok := f.EntryLine(0); ok {
		t.Error("unclaimed entry should report absent")
	}
}

// Property: the filter never admits two different lines into one entry.
func TestFilterNoAliasing(t *testing.T) {
	f := func(lines []uint32) bool {
		flt, err := NewFilter(32, 0)
		if err != nil {
			return false
		}
		entryLine := make(map[int]memory.Addr)
		for ti, l := range lines {
			line := memory.LineOf(memory.Addr(l))
			idx, ok := flt.Admit(ThreadKey(ti%4), line)
			if !ok {
				continue
			}
			if prev, seen := entryLine[idx]; seen && prev != line {
				return false
			}
			entryLine[idx] = line
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
