// Package clustering implements the sharing-detection data structures and
// clustering algorithms of Section 4 of the paper: shMap summary vectors
// of 8-bit saturating counters, the process-wide shMap filter that
// implements spatial sampling with immutable first-touch entries, the
// dot-product similarity metric with its small-value noise floor, the
// histogram-based removal of globally shared cache lines, and the one-pass
// representative clustering heuristic. K-means and agglomerative
// hierarchical clustering — the "full-blown algorithms" the paper defers
// to future work — are provided as comparison baselines, along with cosine
// and Jaccard alternative similarity metrics.
package clustering

import (
	"fmt"

	"threadcluster/internal/memory"
)

// DefaultEntries is the paper's shMap size: 256 entries (Section 4.3.1).
const DefaultEntries = 256

// CounterMax is the saturation point of one shMap entry (8-bit counters).
const CounterMax = 255

// ShMap is a per-thread summary vector: each entry is an 8-bit saturating
// counter of sampled remote cache accesses whose line hashed to that entry.
// "Each shMap shows which data items each thread is fetching from caches
// on remote chips." (Section 4.3)
type ShMap struct {
	counters []uint8
}

// NewShMap allocates a vector with n entries (DefaultEntries if n <= 0).
func NewShMap(n int) *ShMap {
	if n <= 0 {
		n = DefaultEntries
	}
	return &ShMap{counters: make([]uint8, n)}
}

// Len returns the number of entries.
func (m *ShMap) Len() int { return len(m.counters) }

// Increment bumps entry i, saturating at CounterMax.
func (m *ShMap) Increment(i int) {
	if m.counters[i] < CounterMax {
		m.counters[i]++
	}
}

// Get returns the value of entry i.
func (m *ShMap) Get(i int) uint8 { return m.counters[i] }

// NonZero returns how many entries have been touched at all.
func (m *ShMap) NonZero() int {
	n := 0
	for _, c := range m.counters {
		if c > 0 {
			n++
		}
	}
	return n
}

// Total returns the sum of all counters.
func (m *ShMap) Total() uint64 {
	var t uint64
	for _, c := range m.counters {
		t += uint64(c)
	}
	return t
}

// Reset zeroes every counter.
func (m *ShMap) Reset() {
	for i := range m.counters {
		m.counters[i] = 0
	}
}

// Clone returns a deep copy.
func (m *ShMap) Clone() *ShMap {
	c := make([]uint8, len(m.counters))
	copy(c, m.counters)
	return &ShMap{counters: c}
}

// Row returns a copy of the raw counters; the Figure 5 visualizer
// renders these as gray-scale rows. It never aliases the internal slice:
// handing out the live counters would let callers mutate clustering
// state behind the engine's back (TestRowDoesNotAliasState pins this).
func (m *ShMap) Row() []uint8 {
	out := make([]uint8, len(m.counters))
	copy(out, m.counters)
	return out
}

// AppendRow appends the counters to dst and returns the extended slice —
// the allocation-free variant of Row for render loops that reuse a
// buffer.
func (m *ShMap) AppendRow(dst []uint8) []uint8 { return append(dst, m.counters...) }

func (m *ShMap) String() string {
	return fmt.Sprintf("shMap{%d entries, %d nonzero, total %d}", m.Len(), m.NonZero(), m.Total())
}

// HashLine maps a cache-line address to a shMap/filter entry index in
// [0, n). The multiplicative (Fibonacci) hash spreads the dense, highly
// structured line indices of real data structures evenly across the small
// entry space; the paper only requires "a simple hash function"
// (Section 4.3.1).
func HashLine(line memory.Addr, n int) int {
	idx := memory.LineIndex(line)
	h := idx * 0x9E3779B97F4A7C15 // 2^64 / phi
	return int((h >> 32) % uint64(n))
}
