package clustering

import (
	"math"
	"math/rand"
	"sort"
)

// KMeans clusters shMap vectors into k groups with Lloyd's algorithm — one
// of the "standard machine learning algorithms" the paper rules out for
// online use because it needs k in advance and costs far more than the
// one-pass heuristic (Section 4.4.2). It is provided as an offline quality
// baseline for the ablation experiment.
//
// Globally shared entries are masked exactly as in the one-pass clusterer,
// the floor is applied, and vectors are treated as points in R^entries.
// The run is deterministic for a given seed.
func KMeans(shmaps map[ThreadKey]*ShMap, k int, floor uint8, globalFraction float64, seed int64, maxIter int) []Cluster {
	keys := sortedKeys(shmaps)
	if len(keys) == 0 || k <= 0 {
		return nil
	}
	if k > len(keys) {
		k = len(keys)
	}
	if maxIter <= 0 {
		maxIter = 50
	}
	entries := 0
	vecsIn := make([]*ShMap, 0, len(keys))
	for _, kk := range keys {
		vecsIn = append(vecsIn, shmaps[kk])
		if shmaps[kk].Len() > entries {
			entries = shmaps[kk].Len()
		}
	}
	mask := GlobalMask(vecsIn, entries, globalFraction)

	// Materialize floored, masked points.
	points := make([][]float64, len(keys))
	for i, kk := range keys {
		p := make([]float64, entries)
		m := shmaps[kk]
		for e := 0; e < entries && e < m.Len(); e++ {
			if mask[e] {
				continue
			}
			p[e] = float64(floored(m.Get(e), floor))
		}
		points[i] = p
	}

	// k-means++ style seeding for stability: first centroid is the point
	// with the largest mass, then farthest-point heuristic.
	rng := rand.New(rand.NewSource(seed))
	centroids := make([][]float64, 0, k)
	first := 0
	bestMass := -1.0
	for i, p := range points {
		m := 0.0
		for _, v := range p {
			m += v
		}
		if m > bestMass {
			bestMass, first = m, i
		}
	}
	centroids = append(centroids, cloneVec(points[first]))
	for len(centroids) < k {
		far, farDist := 0, -1.0
		for i, p := range points {
			d := math.MaxFloat64
			for _, c := range centroids {
				if dd := sqDist(p, c); dd < d {
					d = dd
				}
			}
			// Tiny jitter breaks exact ties deterministically per seed.
			d += rng.Float64() * 1e-9
			if d > farDist {
				far, farDist = i, d
			}
		}
		centroids = append(centroids, cloneVec(points[far]))
	}

	assign := make([]int, len(points))
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.MaxFloat64
			for ci, c := range centroids {
				if d := sqDist(p, c); d < bestD {
					best, bestD = ci, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids.
		counts := make([]int, k)
		sums := make([][]float64, k)
		for ci := range sums {
			sums[ci] = make([]float64, entries)
		}
		for i, p := range points {
			counts[assign[i]]++
			for e, v := range p {
				sums[assign[i]][e] += v
			}
		}
		for ci := range centroids {
			if counts[ci] == 0 {
				continue // keep the old centroid for empty clusters
			}
			for e := range sums[ci] {
				sums[ci][e] /= float64(counts[ci])
			}
			centroids[ci] = sums[ci]
		}
	}

	return groupsFromAssignment(keys, assign, k)
}

func sortedKeys(shmaps map[ThreadKey]*ShMap) []ThreadKey {
	keys := make([]ThreadKey, 0, len(shmaps))
	for k := range shmaps {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func cloneVec(v []float64) []float64 {
	c := make([]float64, len(v))
	copy(c, v)
	return c
}

func sqDist(a, b []float64) float64 {
	var d float64
	for i := range a {
		x := a[i] - b[i]
		d += x * x
	}
	return d
}

func groupsFromAssignment(keys []ThreadKey, assign []int, k int) []Cluster {
	byGroup := make(map[int][]ThreadKey)
	for i, g := range assign {
		byGroup[g] = append(byGroup[g], keys[i])
	}
	groups := make([]int, 0, len(byGroup))
	for g := range byGroup {
		groups = append(groups, g)
	}
	sort.Ints(groups)
	var out []Cluster
	for _, g := range groups {
		members := byGroup[g]
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		out = append(out, Cluster{Rep: members[0], Members: members})
	}
	return out
}
