package clustering

import (
	"fmt"

	"threadcluster/internal/memory"
)

// ThreadKey identifies a thread in the clustering layer. It mirrors
// sched.ThreadID without importing the scheduler, keeping this package a
// pure-algorithms leaf.
type ThreadKey int

// Filter is the process-wide shMap filter of Section 4.3.1: a vector of
// cache-line addresses with the same number of entries as each thread's
// shMap. It implements spatial sampling and removes aliasing:
//
//   - each entry is claimed, immutably, by the first sampled remote access
//     that hashes to it (first-touch initialization);
//   - a later sample passes the filter only if its line address equals the
//     claimed address — hash collisions are discarded rather than aliased;
//   - to stop one thread from starving the rest, each thread may claim at
//     most a quota of entries (the paper's per-thread limit).
type Filter struct {
	lines  []memory.Addr
	taken  []bool
	owner  []ThreadKey
	quota  int
	owned  map[ThreadKey]int
	admits uint64
	drops  uint64
}

// NewFilter builds a filter with n entries where each thread may claim at
// most quota of them. quota <= 0 means no per-thread limit.
func NewFilter(n, quota int) (*Filter, error) {
	if n <= 0 {
		return nil, fmt.Errorf("clustering: filter needs a positive entry count, got %d", n)
	}
	if quota <= 0 || quota > n {
		quota = n
	}
	return &Filter{
		lines: make([]memory.Addr, n),
		taken: make([]bool, n),
		owner: make([]ThreadKey, n),
		quota: quota,
		owned: make(map[ThreadKey]int),
	}, nil
}

// Len returns the number of entries.
func (f *Filter) Len() int { return len(f.lines) }

// Admit offers one sampled remote cache access to the filter. It returns
// the shMap entry index to increment and whether the sample passed.
func (f *Filter) Admit(tid ThreadKey, line memory.Addr) (int, bool) {
	line = memory.LineOf(line)
	idx := HashLine(line, len(f.lines))
	if !f.taken[idx] {
		if f.owned[tid] >= f.quota {
			f.drops++
			return 0, false
		}
		f.taken[idx] = true
		f.lines[idx] = line
		f.owner[idx] = tid
		f.owned[tid]++
		f.admits++
		return idx, true
	}
	if f.lines[idx] == line {
		f.admits++
		return idx, true
	}
	f.drops++
	return 0, false
}

// EntryLine returns the line claimed by entry i (0 if unclaimed).
func (f *Filter) EntryLine(i int) (memory.Addr, bool) {
	if i < 0 || i >= len(f.lines) || !f.taken[i] {
		return 0, false
	}
	return f.lines[i], true
}

// OwnedBy returns how many entries a thread has claimed.
func (f *Filter) OwnedBy(tid ThreadKey) int { return f.owned[tid] }

// Claimed returns how many entries are claimed in total.
func (f *Filter) Claimed() int {
	n := 0
	for _, t := range f.taken {
		if t {
			n++
		}
	}
	return n
}

// Admits and Drops return the filter's accept/reject counts.
func (f *Filter) Admits() uint64 { return f.admits }

// Drops returns how many samples the filter rejected (collisions and
// quota overruns).
func (f *Filter) Drops() uint64 { return f.drops }

// Reset clears all claims, e.g. when the engine re-enters the detection
// phase so "previously victimized threads obtain another chance"
// (Section 4.3.1).
func (f *Filter) Reset() {
	for i := range f.taken {
		f.taken[i] = false
		f.lines[i] = 0
		f.owner[i] = 0
	}
	f.owned = make(map[ThreadKey]int)
	f.admits, f.drops = 0, 0
}
