package clustering

import (
	"fmt"
	"sort"

	"threadcluster/internal/errs"
	"threadcluster/internal/snapbin"
)

// maxCentroidMass bounds a plausible centroid or baseline component
// (2^40 covers four billion saturated counters summed into one entry) so
// decode-time validation arithmetic cannot overflow.
const maxCentroidMass = 1 << 40

// SaveState appends the incremental engine's complete state in canonical
// order: mode tag, dense entry width, threads ascending with their
// retained vectors, clusters in creation order (representative, ascending
// members, drift baseline), the drift window oldest-first, and the event
// counters. The global-sharing histogram, centroids and the assignment
// index are derivable from the vectors and memberships and are rebuilt on
// restore rather than encoded.
func (e *Engine) SaveState(enc *snapbin.Enc) {
	enc.U8(uint8(e.cfg.Mode))
	enc.U32(uint32(e.entries))

	keys := e.Threads()
	enc.U32(uint32(len(keys)))
	for _, k := range keys {
		enc.I64(int64(k))
		if e.cfg.Mode == ModeSketch {
			e.sketches[k].SaveState(enc)
		} else {
			e.dense[k].SaveState(enc)
		}
	}

	enc.U32(uint32(len(e.clusters)))
	for _, lc := range e.clusters {
		enc.I64(int64(lc.rep))
		members := make([]ThreadKey, 0, len(lc.members))
		for k := range lc.members {
			members = append(members, k)
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		enc.U32(uint32(len(members)))
		for _, k := range members {
			enc.I64(int64(k))
		}
		enc.U32(uint32(len(lc.baseline)))
		for _, v := range lc.baseline {
			enc.U64(v)
		}
	}

	enc.U32(uint32(e.windowN))
	for i := 0; i < e.windowN; i++ {
		// Oldest first: when the ring is full the oldest sample sits at
		// windowNext, otherwise at 0.
		pos := i
		if e.windowN == len(e.window) {
			pos = (e.windowNext + i) % len(e.window)
		}
		enc.F64(e.window[pos])
	}
	enc.U64(e.events)
	enc.U64(e.reclusters)
}

// RestoreState replaces the engine's state with a state saved by
// SaveState. The engine must have been built with the same mode and
// sketch shape (ErrBadConfig otherwise); memberships are validated —
// ascending keys, every thread in exactly one cluster, representatives
// members of their own cluster, drift samples in range — so malformed
// bytes surface as snapbin.ErrCorrupt. The histogram, centroids and
// assignment index are rebuilt from the decoded vectors.
func (e *Engine) RestoreState(d *snapbin.Dec) error {
	mode := Mode(d.U8())
	entries := int(d.U32())
	if err := d.Err(); err != nil {
		return err
	}
	if mode != e.cfg.Mode {
		return fmt.Errorf("clustering: snapshot engine mode %v, built with %v: %w", mode, e.cfg.Mode, errs.ErrBadConfig)
	}
	if entries > 1<<20 {
		return fmt.Errorf("clustering: snapshot engine entry width %d implausible: %w", entries, snapbin.ErrCorrupt)
	}

	nThreads := d.Count(9) // key + at least a blob length per thread
	dense := make(map[ThreadKey]*ShMap, nThreads)
	sketches := make(map[ThreadKey]*Sketch, nThreads)
	prev := int64(-1 << 62)
	for i := 0; i < nThreads; i++ {
		k := d.I64()
		if d.Err() != nil {
			return d.Err()
		}
		if int64(k) <= prev {
			return fmt.Errorf("clustering: snapshot engine thread keys out of order at %d: %w", k, snapbin.ErrCorrupt)
		}
		prev = int64(k)
		if e.cfg.Mode == ModeSketch {
			s := NewSketch(e.cfg.SketchRows, e.cfg.SketchWidth)
			if err := s.RestoreState(d); err != nil {
				return err
			}
			sketches[ThreadKey(k)] = s
		} else {
			b := d.Blob()
			if d.Err() != nil {
				return d.Err()
			}
			if len(b) > entries {
				return fmt.Errorf("clustering: snapshot engine thread %d vector has %d entries, width %d: %w",
					k, len(b), entries, snapbin.ErrCorrupt)
			}
			m := NewShMap(len(b))
			copy(m.counters, b)
			dense[ThreadKey(k)] = m
		}
	}

	nClusters := d.Count(16)
	clusters := make([]*liveCluster, 0, nClusters)
	assign := make(map[ThreadKey]*liveCluster, nThreads)
	for i := 0; i < nClusters; i++ {
		rep := ThreadKey(d.I64())
		nMembers := d.Count(8)
		lc := &liveCluster{rep: rep, members: make(map[ThreadKey]struct{}, nMembers)}
		repSeen := false
		prevM := int64(-1 << 62)
		for j := 0; j < nMembers; j++ {
			k := ThreadKey(d.I64())
			if d.Err() != nil {
				return d.Err()
			}
			if int64(k) <= prevM {
				return fmt.Errorf("clustering: snapshot engine cluster %d members out of order at %d: %w",
					i, k, snapbin.ErrCorrupt)
			}
			prevM = int64(k)
			tracked := false
			if e.cfg.Mode == ModeSketch {
				_, tracked = sketches[k]
			} else {
				_, tracked = dense[k]
			}
			if !tracked {
				return fmt.Errorf("clustering: snapshot engine cluster %d member %d has no vector: %w",
					i, k, snapbin.ErrCorrupt)
			}
			if _, dup := assign[k]; dup {
				return fmt.Errorf("clustering: snapshot engine thread %d in two clusters: %w", k, snapbin.ErrCorrupt)
			}
			assign[k] = lc
			lc.members[k] = struct{}{}
			if k == rep {
				repSeen = true
			}
		}
		if !repSeen {
			return fmt.Errorf("clustering: snapshot engine cluster %d rep %d not a member: %w",
				i, rep, snapbin.ErrCorrupt)
		}
		nBase := d.Count(8)
		lc.baseline = make([]uint64, nBase)
		for j := 0; j < nBase; j++ {
			v := d.U64()
			if d.Err() == nil && v > maxCentroidMass {
				return fmt.Errorf("clustering: snapshot engine cluster %d baseline component implausible: %w",
					i, snapbin.ErrCorrupt)
			}
			lc.baseline[j] = v
		}
		clusters = append(clusters, lc)
	}
	if len(assign) != nThreads {
		return fmt.Errorf("clustering: snapshot engine has %d threads but clusters cover %d: %w",
			nThreads, len(assign), snapbin.ErrCorrupt)
	}

	windowN := d.Count(8)
	if windowN > len(e.window) {
		return fmt.Errorf("clustering: snapshot engine drift window has %d samples, capacity %d: %w",
			windowN, len(e.window), snapbin.ErrCorrupt)
	}
	samples := make([]float64, windowN)
	for i := range samples {
		v := d.F64()
		if d.Err() == nil && (v < 0 || v > 1) {
			return fmt.Errorf("clustering: snapshot engine drift sample %g out of range: %w", v, snapbin.ErrCorrupt)
		}
		samples[i] = v
	}
	events := d.U64()
	reclusters := d.U64()
	if err := d.Err(); err != nil {
		return err
	}

	e.entries = entries
	e.dense = dense
	e.sketches = sketches
	e.clusters = clusters
	e.assign = assign
	e.hist = make([]int, entries)
	if e.cfg.Mode == ModeDense {
		for _, k := range e.Threads() {
			m := dense[k]
			for i := 0; i < m.Len(); i++ {
				if m.Get(i) > 0 {
					e.hist[i]++
				}
			}
		}
	}
	for _, lc := range clusters {
		lc.centroid = make([]uint64, e.centroidLen())
		members := make([]ThreadKey, 0, len(lc.members))
		for k := range lc.members {
			members = append(members, k)
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		for _, k := range members {
			e.centroidAdd(lc, k)
		}
		if len(lc.baseline) > len(lc.centroid) {
			return fmt.Errorf("clustering: snapshot engine baseline wider than centroid (%d > %d): %w",
				len(lc.baseline), len(lc.centroid), snapbin.ErrCorrupt)
		}
	}
	for i := range e.window {
		e.window[i] = 0
	}
	copy(e.window, samples)
	e.windowN = windowN
	e.windowNext = windowN % len(e.window)
	e.events = events
	e.reclusters = reclusters
	return nil
}
