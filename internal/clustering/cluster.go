package clustering

import (
	"sort"
)

// Cluster is a group of threads detected to share data.
type Cluster struct {
	// Rep is the representative thread whose shMap stands for the cluster
	// (Section 4.4.2: any member can represent the cluster because
	// intra-cluster sharing is assumed symmetric).
	Rep ThreadKey
	// Members lists every thread in the cluster, including Rep, in
	// ascending ThreadKey order.
	Members []ThreadKey
}

// Size returns the number of member threads.
func (c Cluster) Size() int { return len(c.Members) }

// Config parameterizes the one-pass clusterer.
type Config struct {
	// Threshold is the similarity above which a thread joins a cluster
	// (paper: ~40000 for the dot-product metric).
	Threshold float64
	// Floor treats counter values below it as zero (paper: 3).
	Floor uint8
	// GlobalFraction masks entries touched by more than this fraction of
	// threads (paper: 0.5).
	GlobalFraction float64
	// Metric scores vector pairs; nil means DotProduct.
	Metric Metric
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{
		Threshold:      float64(DefaultSimilarityThreshold),
		Floor:          DefaultFloor,
		GlobalFraction: 0.5,
		Metric:         DotProduct,
	}
}

// Cluster runs the one-pass heuristic of Section 4.4.2 over the threads'
// shMaps: after masking globally shared entries, scan the threads once (in
// ascending key order, for determinism); each thread joins the best
// existing cluster whose representative it resembles above the threshold,
// or founds a new cluster and becomes its representative. Complexity is
// O(T*c) similarity computations for T threads and c clusters.
//
// Threads with empty (all-zero after flooring) shMaps suffer no remote
// accesses worth acting on; they come back as singleton clusters, which
// the migration policy treats as unclustered filler.
func (cfg Config) Cluster(shmaps map[ThreadKey]*ShMap) []Cluster {
	metric := cfg.Metric
	if metric == nil {
		metric = DotProduct
	}
	keys := make([]ThreadKey, 0, len(shmaps))
	entries := 0
	for k, m := range shmaps {
		keys = append(keys, k)
		if m.Len() > entries {
			entries = m.Len()
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	vecs := make([]*ShMap, 0, len(keys))
	for _, k := range keys {
		vecs = append(vecs, shmaps[k])
	}
	mask := GlobalMask(vecs, entries, cfg.GlobalFraction)

	var clusters []Cluster
	for _, k := range keys {
		m := shmaps[k]
		best, bestScore := -1, 0.0
		for ci := range clusters {
			score := metric(shmaps[clusters[ci].Rep], m, cfg.Floor, mask)
			if score >= cfg.Threshold && score > bestScore {
				best, bestScore = ci, score
			}
		}
		if best >= 0 {
			clusters[best].Members = append(clusters[best].Members, k)
		} else {
			clusters = append(clusters, Cluster{Rep: k, Members: []ThreadKey{k}})
		}
	}
	return clusters
}

// SortBySize orders clusters from largest to smallest (ties broken by
// representative key), the order the migration policy consumes them in
// (Section 4.5).
func SortBySize(clusters []Cluster) {
	sort.Slice(clusters, func(i, j int) bool {
		if clusters[i].Size() != clusters[j].Size() {
			return clusters[i].Size() > clusters[j].Size()
		}
		return clusters[i].Rep < clusters[j].Rep
	})
}

// Assignment maps each thread to the index of its cluster.
func Assignment(clusters []Cluster) map[ThreadKey]int {
	a := make(map[ThreadKey]int)
	for ci, c := range clusters {
		for _, t := range c.Members {
			a[t] = ci
		}
	}
	return a
}

// Purity measures cluster quality against a ground-truth partition: for
// each detected cluster, the fraction of members belonging to the
// cluster's majority truth label, weighted by cluster size. 1.0 means
// every detected cluster is homogeneous. Singleton clusters are trivially
// pure; callers who care should also check the cluster count.
func Purity(clusters []Cluster, truth map[ThreadKey]int) float64 {
	total, correct := 0, 0
	for _, c := range clusters {
		counts := make(map[int]int)
		for _, t := range c.Members {
			counts[truth[t]]++
		}
		max := 0
		for _, n := range counts {
			if n > max {
				max = n
			}
		}
		total += c.Size()
		correct += max
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// RandIndex computes the Rand index between the detected clustering and a
// ground-truth partition: the fraction of thread pairs on which the two
// agree (same-cluster vs different-cluster). 1.0 is perfect agreement.
func RandIndex(clusters []Cluster, truth map[ThreadKey]int) float64 {
	assign := Assignment(clusters)
	keys := make([]ThreadKey, 0, len(assign))
	for k := range assign {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	agree, pairs := 0, 0
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			sameDetected := assign[keys[i]] == assign[keys[j]]
			sameTruth := truth[keys[i]] == truth[keys[j]]
			if sameDetected == sameTruth {
				agree++
			}
			pairs++
		}
	}
	if pairs == 0 {
		return 1
	}
	return float64(agree) / float64(pairs)
}
