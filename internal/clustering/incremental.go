package clustering

import (
	"fmt"
	"math"
	"sort"

	"threadcluster/internal/errs"
)

// Mode selects the similarity representation the incremental engine
// retains per thread.
type Mode int

const (
	// ModeDense retains each thread's full shMap vector and scores with
	// the configured dense metric plus the global-sharing mask — exact,
	// O(entries) memory per thread. The batch path of the paper.
	ModeDense Mode = iota
	// ModeSketch retains a fixed-size Sketch per thread and scores with
	// the sketch cosine estimator — the scale path: memory and similarity
	// cost independent of the dense entry count, at the documented
	// estimation error.
	ModeSketch
)

func (m Mode) String() string {
	switch m {
	case ModeDense:
		return "dense"
	case ModeSketch:
		return "sketch"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode parses "dense" or "sketch".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "dense":
		return ModeDense, nil
	case "sketch":
		return ModeSketch, nil
	}
	return 0, fmt.Errorf("clustering: unknown mode %q (want dense|sketch): %w", s, errs.ErrBadConfig)
}

// EngineConfig parameterizes the incremental clusterer.
type EngineConfig struct {
	// Clustering carries the dense one-pass parameters (threshold, floor,
	// global fraction, metric). Full reclusters in ModeDense run exactly
	// this configuration's Cluster, so incremental results snap to the
	// batch partition at every recluster point.
	Clustering Config
	// Mode selects dense vectors or sketches (see Mode).
	Mode Mode
	// SketchRows/SketchWidth shape the per-thread sketches in ModeSketch
	// (defaults apply when <= 0).
	SketchRows, SketchWidth int
	// SketchThreshold is the cosine score above which a thread joins a
	// cluster in ModeSketch (the dense dot-product threshold does not
	// transfer: sketch cosine is scale-free). Default 0.6.
	SketchThreshold float64
	// DriftThreshold triggers a full recluster when the mean per-event
	// centroid displacement over the sliding window exceeds it. Lower is
	// more eager; a negative value with DriftWindow 1 reclusters on every
	// event (the differential tests use exactly that to pin incremental
	// == batch continuously). Default 0.25.
	DriftThreshold float64
	// DriftWindow is how many per-event displacement samples the
	// detector averages over; the window must fill before it can fire,
	// so the window length is also the minimum event distance between
	// reclusters. Default 64.
	DriftWindow int
}

// DefaultEngineConfig returns the paper's clustering parameters with the
// incremental defaults.
func DefaultEngineConfig() EngineConfig {
	return EngineConfig{
		Clustering:      DefaultConfig(),
		SketchThreshold: 0.6,
		DriftThreshold:  0.25,
		DriftWindow:     64,
	}
}

// liveCluster is one cluster under incremental maintenance.
type liveCluster struct {
	rep     ThreadKey
	members map[ThreadKey]struct{}
	// centroid is the running sum of the members' vectors — dense
	// counters in ModeDense, row-major folded buckets in ModeSketch —
	// and baseline is its value at the last recluster (or at founding).
	// Drift is the angle between the two.
	centroid []uint64
	baseline []uint64
}

// Engine clusters threads incrementally: instead of re-running the
// one-pass clusterer over every thread whenever anything changes
// (O(threads x clusters) similarity work — the paper's ~32 threads make
// that free, 1e5+ threads do not), it updates assignments per event:
//
//   - ApplyChurn handles thread arrival and departure;
//   - ApplyMigration handles a sharing-delta (a thread's vector changed),
//     migrating the thread between clusters when its similarity moved.
//
// Each event costs O(clusters + entries) similarity work — independent
// of the thread count (pinned by the BENCH_clustering.json sublinear
// guard). A sharing-drift detector watches per-cluster centroid
// displacement over a sliding window and triggers a full batch recluster
// only when the sharing pattern actually changes, after which the
// partition is exactly what Cluster would produce from scratch
// (TestIncrementalMatchesBatch pins this at every recluster point).
//
// The engine is not goroutine-safe; the clustering engine drives it from
// the simulation's single event loop.
type Engine struct {
	cfg EngineConfig

	dense    map[ThreadKey]*ShMap  // ModeDense: retained vectors (cloned on intake)
	sketches map[ThreadKey]*Sketch // ModeSketch: retained sketches
	entries  int                   // ModeDense: widest vector seen
	hist     []int                 // ModeDense: per-entry non-zero thread counts (incremental GlobalMask)

	clusters []*liveCluster // creation order — matches batch founding order after a recluster
	assign   map[ThreadKey]*liveCluster

	window     []float64 // drift ring buffer, oldest overwritten
	windowN    int       // valid samples in window
	windowNext int       // next write position
	events     uint64
	reclusters uint64
}

// NewEngine builds an incremental clusterer. Zero EngineConfig fields
// take the DefaultEngineConfig values.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if cfg.Mode != ModeDense && cfg.Mode != ModeSketch {
		return nil, fmt.Errorf("clustering: unknown mode %d: %w", int(cfg.Mode), errs.ErrBadConfig)
	}
	if cfg.Clustering.Metric == nil {
		cfg.Clustering.Metric = DotProduct
	}
	if cfg.SketchRows <= 0 {
		cfg.SketchRows = DefaultSketchRows
	}
	if cfg.SketchWidth <= 0 {
		cfg.SketchWidth = DefaultSketchWidth
	}
	if cfg.SketchThreshold == 0 {
		cfg.SketchThreshold = 0.6
	}
	if cfg.DriftThreshold == 0 {
		cfg.DriftThreshold = 0.25
	}
	if cfg.DriftWindow <= 0 {
		cfg.DriftWindow = 64
	}
	return &Engine{
		cfg:      cfg,
		dense:    make(map[ThreadKey]*ShMap),
		sketches: make(map[ThreadKey]*Sketch),
		assign:   make(map[ThreadKey]*liveCluster),
		window:   make([]float64, cfg.DriftWindow),
	}, nil
}

// Mode returns the engine's similarity representation.
func (e *Engine) Mode() Mode { return e.cfg.Mode }

// Len returns how many threads are tracked.
func (e *Engine) Len() int { return len(e.assign) }

// Events returns how many arrival/departure/delta events were applied.
func (e *Engine) Events() uint64 { return e.events }

// Reclusters returns how many drift-triggered (or forced) full batch
// reclusters have run.
func (e *Engine) Reclusters() uint64 { return e.reclusters }

// Drift returns the current windowed mean centroid displacement the
// detector compares against DriftThreshold (0 until the window fills).
func (e *Engine) Drift() float64 {
	if e.windowN < len(e.window) {
		return 0
	}
	sum := 0.0
	for _, d := range e.window {
		sum += d
	}
	return sum / float64(len(e.window))
}

// Threads returns the tracked thread keys in ascending order.
func (e *Engine) Threads() []ThreadKey {
	keys := make([]ThreadKey, 0, len(e.assign))
	for k := range e.assign {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Has reports whether the thread is tracked.
func (e *Engine) Has(key ThreadKey) bool { _, ok := e.assign[key]; return ok }

// Clusters renders the current partition: clusters in creation order
// (which is exactly the batch founding order right after a recluster),
// members ascending. The result is a value copy.
func (e *Engine) Clusters() []Cluster {
	out := make([]Cluster, 0, len(e.clusters))
	for _, lc := range e.clusters {
		members := make([]ThreadKey, 0, len(lc.members))
		for k := range lc.members {
			members = append(members, k)
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		out = append(out, Cluster{Rep: lc.rep, Members: members})
	}
	return out
}

// Assignment maps each tracked thread to its cluster's index in
// Clusters() order.
func (e *Engine) Assignment() map[ThreadKey]int {
	idx := make(map[*liveCluster]int, len(e.clusters))
	for i, lc := range e.clusters {
		idx[lc] = i
	}
	out := make(map[ThreadKey]int, len(e.assign))
	for k, lc := range e.assign {
		out[k] = idx[lc]
	}
	return out
}

// ChurnEvent is one batch of thread arrivals and departures.
type ChurnEvent struct {
	// Arrived maps new thread keys to their sharing vectors (the engine
	// clones or sketches them; callers keep ownership). A nil vector
	// means the thread arrived with no remote accesses yet.
	Arrived map[ThreadKey]*ShMap
	// Departed lists threads to drop.
	Departed []ThreadKey
}

// ApplyChurn applies thread arrival/departure events: departures are
// removed from their clusters (emptied clusters dissolve, departed
// representatives hand the role to the smallest remaining member), then
// arrivals are assigned by the one-pass rule — join the best existing
// cluster whose representative scores above the threshold, else found a
// new cluster. Departures process before arrivals, both in ascending key
// order, so an event is deterministic regardless of map iteration.
func (e *Engine) ApplyChurn(ev ChurnEvent) error {
	departed := append([]ThreadKey(nil), ev.Departed...)
	sort.Slice(departed, func(i, j int) bool { return departed[i] < departed[j] })
	for _, key := range departed {
		lc, ok := e.assign[key]
		if !ok {
			return fmt.Errorf("clustering: departure of untracked thread %d: %w", int(key), errs.ErrUnknownThread)
		}
		e.events++
		e.removeFromCluster(key, lc)
		e.dropVector(key)
		delete(e.assign, key)
		e.observeDrift(lc)
	}

	arrived := make([]ThreadKey, 0, len(ev.Arrived))
	for k := range ev.Arrived {
		arrived = append(arrived, k)
	}
	sort.Slice(arrived, func(i, j int) bool { return arrived[i] < arrived[j] })
	for _, key := range arrived {
		if _, ok := e.assign[key]; ok {
			return fmt.Errorf("clustering: arrival of already tracked thread %d: %w", int(key), errs.ErrDuplicateThread)
		}
		e.events++
		e.intakeVector(key, ev.Arrived[key])
		lc := e.assignThread(key)
		e.observeDrift(lc)
	}
	return nil
}

// ApplyMigration applies a sharing-delta event: thread key's vector
// changed (a fresh detection phase produced a new shMap). The engine
// updates the retained vector and, unless the thread is its cluster's
// representative, re-runs the assignment rule so the thread migrates to
// whichever cluster its new sharing pattern matches. Representatives
// stay put — they define their cluster's identity between reclusters,
// exactly as in the batch one-pass — but their delta still moves the
// centroid, so a representative whose pattern drifts away is caught by
// the drift detector rather than by per-event migration.
func (e *Engine) ApplyMigration(key ThreadKey, m *ShMap) error {
	lc, ok := e.assign[key]
	if !ok {
		return fmt.Errorf("clustering: sharing delta for untracked thread %d: %w", int(key), errs.ErrUnknownThread)
	}
	e.events++
	if lc.rep == key {
		e.centroidSub(lc, key)
		e.dropVector(key)
		e.intakeVector(key, m)
		e.centroidAdd(lc, key)
		e.observeDrift(lc)
		return nil
	}
	e.removeFromCluster(key, lc)
	e.dropVector(key)
	e.intakeVector(key, m)
	to := e.assignThread(key)
	if to != lc {
		e.observeDrift(lc)
	}
	e.observeDrift(to)
	return nil
}

// ForceRecluster runs a full batch recluster immediately, resetting the
// drift baselines and window.
func (e *Engine) ForceRecluster() { e.recluster() }

// intakeVector stores the thread's vector in the mode's representation.
func (e *Engine) intakeVector(key ThreadKey, m *ShMap) {
	if m == nil {
		m = NewShMap(e.entriesOrDefault())
	}
	if e.cfg.Mode == ModeSketch {
		e.sketches[key] = SketchShMap(m, e.cfg.Clustering.Floor, e.cfg.SketchRows, e.cfg.SketchWidth)
		return
	}
	if m.Len() > e.entries {
		e.entries = m.Len()
		grown := make([]int, e.entries)
		copy(grown, e.hist)
		e.hist = grown
	}
	e.dense[key] = m.Clone()
	for i := 0; i < m.Len(); i++ {
		if m.Get(i) > 0 {
			e.hist[i]++
		}
	}
}

func (e *Engine) entriesOrDefault() int {
	if e.entries > 0 {
		return e.entries
	}
	return DefaultEntries
}

// dropVector removes the thread's vector and its histogram contribution.
func (e *Engine) dropVector(key ThreadKey) {
	if e.cfg.Mode == ModeSketch {
		delete(e.sketches, key)
		return
	}
	m := e.dense[key]
	for i := 0; i < m.Len(); i++ {
		if m.Get(i) > 0 {
			e.hist[i]--
		}
	}
	delete(e.dense, key)
}

// mask materializes the global-sharing mask from the incremental
// histogram — identical to GlobalMask over the current vectors, in
// O(entries) instead of O(threads x entries).
func (e *Engine) mask() []bool {
	mask := make([]bool, e.entries)
	if len(e.dense) == 0 {
		return mask
	}
	limit := e.cfg.Clustering.GlobalFraction * float64(len(e.dense))
	for i, h := range e.hist {
		if float64(h) > limit {
			mask[i] = true
		}
	}
	return mask
}

// score rates thread key against a cluster representative.
func (e *Engine) score(rep, key ThreadKey, mask []bool) float64 {
	if e.cfg.Mode == ModeSketch {
		return e.sketches[rep].Cosine(e.sketches[key])
	}
	return e.cfg.Clustering.Metric(e.dense[rep], e.dense[key], e.cfg.Clustering.Floor, mask)
}

// threshold is the join threshold for the mode.
func (e *Engine) threshold() float64 {
	if e.cfg.Mode == ModeSketch {
		return e.cfg.SketchThreshold
	}
	return e.cfg.Clustering.Threshold
}

// assignThread runs the one-pass rule for one thread whose vector is
// already retained: join the best-scoring cluster at or above the
// threshold (first founded wins ties, as in the batch scan), else found
// a new cluster with the thread as representative.
func (e *Engine) assignThread(key ThreadKey) *liveCluster {
	var mask []bool
	if e.cfg.Mode == ModeDense {
		mask = e.mask()
	}
	threshold := e.threshold()
	var best *liveCluster
	bestScore := 0.0
	for _, lc := range e.clusters {
		score := e.score(lc.rep, key, mask)
		if score >= threshold && score > bestScore {
			best, bestScore = lc, score
		}
	}
	if best == nil {
		best = &liveCluster{
			rep:      key,
			members:  make(map[ThreadKey]struct{}),
			centroid: make([]uint64, e.centroidLen()),
		}
		e.clusters = append(e.clusters, best)
	}
	best.members[key] = struct{}{}
	e.assign[key] = best
	e.centroidAdd(best, key)
	if best.baseline == nil {
		// Founding: the baseline is the founding centroid, so a brand-new
		// cluster reports zero drift until its pattern moves.
		best.baseline = append([]uint64(nil), best.centroid...)
	}
	return best
}

// removeFromCluster detaches a member, dissolving emptied clusters and
// promoting the smallest remaining member when the representative left.
func (e *Engine) removeFromCluster(key ThreadKey, lc *liveCluster) {
	e.centroidSub(lc, key)
	delete(lc.members, key)
	if len(lc.members) == 0 {
		for i, c := range e.clusters {
			if c == lc {
				e.clusters = append(e.clusters[:i], e.clusters[i+1:]...)
				break
			}
		}
		return
	}
	if lc.rep == key {
		next := ThreadKey(math.MaxInt64)
		for k := range lc.members {
			if k < next {
				next = k
			}
		}
		lc.rep = next
	}
}

// centroidLen is the length of centroid vectors in the current mode.
func (e *Engine) centroidLen() int {
	if e.cfg.Mode == ModeSketch {
		return e.cfg.SketchRows * e.cfg.SketchWidth
	}
	return e.entries
}

// centroidAdd folds thread key's vector into the cluster centroid.
func (e *Engine) centroidAdd(lc *liveCluster, key ThreadKey) { e.centroidAddSub(lc, key, true) }

// centroidSub removes thread key's vector from the cluster centroid.
func (e *Engine) centroidSub(lc *liveCluster, key ThreadKey) { e.centroidAddSub(lc, key, false) }

func (e *Engine) centroidAddSub(lc *liveCluster, key ThreadKey, add bool) {
	if e.cfg.Mode == ModeSketch {
		s := e.sketches[key]
		for i, b := range s.buckets {
			if add {
				lc.centroid[i] += uint64(b)
			} else {
				lc.centroid[i] -= uint64(b)
			}
		}
		return
	}
	m := e.dense[key]
	if m.Len() > len(lc.centroid) {
		grown := make([]uint64, m.Len())
		copy(grown, lc.centroid)
		lc.centroid = grown
	}
	for i := 0; i < m.Len(); i++ {
		if add {
			lc.centroid[i] += uint64(m.Get(i))
		} else {
			lc.centroid[i] -= uint64(m.Get(i))
		}
	}
}

// observeDrift pushes the cluster's centroid displacement — the cosine
// distance between the current centroid and the baseline captured at the
// last recluster — into the sliding window, then reclusters when the
// windowed mean exceeds the threshold. A dissolved cluster (nil or
// empty) contributes a full displacement of 1: its pattern is gone.
func (e *Engine) observeDrift(lc *liveCluster) {
	d := 1.0
	if lc != nil && len(lc.members) > 0 {
		// Rounding can push the cosine a hair past 1; keep the sample in
		// [0, 1] so snapshot validation stays exact.
		d = math.Max(0, 1-cosU64(lc.centroid, lc.baseline))
	}
	e.window[e.windowNext] = d
	e.windowNext = (e.windowNext + 1) % len(e.window)
	if e.windowN < len(e.window) {
		e.windowN++
	}
	if e.windowN == len(e.window) && e.Drift() > e.cfg.DriftThreshold {
		e.recluster()
	}
}

// cosU64 is the cosine of two non-negative integer vectors (0 when
// either is all-zero); lengths may differ, the shorter is zero-padded.
func cosU64(a, b []uint64) float64 {
	var dot, na, nb float64
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		var va, vb float64
		if i < len(a) {
			va = float64(a[i])
		}
		if i < len(b) {
			vb = float64(b[i])
		}
		dot += va * vb
		na += va * va
		nb += vb * vb
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// recluster runs the batch one-pass over the retained vectors, replacing
// the incremental partition with exactly what Cluster (or
// ClusterSketches in sketch mode) produces from scratch, and resets the
// drift baselines and window.
func (e *Engine) recluster() {
	var batch []Cluster
	if e.cfg.Mode == ModeSketch {
		batch = ClusterSketches(e.sketches, e.cfg.SketchThreshold)
	} else {
		batch = e.cfg.Clustering.Cluster(e.dense)
	}
	e.clusters = e.clusters[:0]
	for _, c := range batch {
		lc := &liveCluster{
			rep:      c.Rep,
			members:  make(map[ThreadKey]struct{}, len(c.Members)),
			centroid: make([]uint64, e.centroidLen()),
		}
		for _, k := range c.Members {
			lc.members[k] = struct{}{}
			e.assign[k] = lc
			e.centroidAdd(lc, k)
		}
		lc.baseline = append([]uint64(nil), lc.centroid...)
		e.clusters = append(e.clusters, lc)
	}
	for i := range e.window {
		e.window[i] = 0
	}
	e.windowN, e.windowNext = 0, 0
	e.reclusters++
}

// ClusterSketches runs the one-pass heuristic over sketches with the
// cosine estimator: scan threads in ascending key order; each joins the
// best existing cluster whose representative's sketch cosine reaches the
// threshold, or founds a new cluster. The sketch analogue of
// Config.Cluster (no global mask: entry identity is folded away, and the
// scale-free cosine is far less sensitive to globally shared entries
// than the dot product — see DESIGN.md section 10).
func ClusterSketches(sketches map[ThreadKey]*Sketch, threshold float64) []Cluster {
	keys := make([]ThreadKey, 0, len(sketches))
	for k := range sketches {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var clusters []Cluster
	for _, k := range keys {
		s := sketches[k]
		best, bestScore := -1, 0.0
		for ci := range clusters {
			score := sketches[clusters[ci].Rep].Cosine(s)
			if score >= threshold && score > bestScore {
				best, bestScore = ci, score
			}
		}
		if best >= 0 {
			clusters[best].Members = append(clusters[best].Members, k)
		} else {
			clusters = append(clusters, Cluster{Rep: k, Members: []ThreadKey{k}})
		}
	}
	return clusters
}
