package clustering

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"threadcluster/internal/errs"
	"threadcluster/internal/snapbin"
)

// shMapFromBytes builds a vector whose counters are the given bytes.
func shMapFromBytes(b []uint8) *ShMap {
	m := NewShMap(len(b))
	copy(m.counters, b)
	return m
}

func TestSketchShapeDefaults(t *testing.T) {
	s := NewSketch(0, 0)
	if s.Rows() != DefaultSketchRows || s.Width() != DefaultSketchWidth {
		t.Errorf("default shape = %dx%d, want %dx%d", s.Rows(), s.Width(), DefaultSketchRows, DefaultSketchWidth)
	}
	if !s.Empty() || s.L1() != 0 || s.NonZero() != 0 {
		t.Error("fresh sketch should be empty")
	}
}

func TestSketchExactScalars(t *testing.T) {
	m := NewShMap(64)
	for i := 0; i < 10; i++ {
		m.Increment(7) // 10: above floor
	}
	for i := 0; i < 4; i++ {
		m.Increment(12) // 4: above floor
	}
	m.Increment(20) // 1: floored away
	s := SketchShMap(m, DefaultFloor, 0, 0)
	if s.L1() != 14 || s.NonZero() != 2 || s.l2sq != 100+16 {
		t.Errorf("scalars = l1 %d nnz %d l2sq %d, want 14/2/116", s.L1(), s.NonZero(), s.l2sq)
	}
	var mass uint64
	for _, b := range s.buckets[:s.width] {
		mass += uint64(b)
	}
	if mass != s.L1() {
		t.Errorf("row 0 mass = %d, want l1 %d", mass, s.L1())
	}
}

func TestSketchSelfCosineIsOne(t *testing.T) {
	m := NewShMap(256)
	for e := 0; e < 50; e++ {
		for k := 0; k < 30; k++ {
			m.Increment(e)
		}
	}
	s := SketchShMap(m, DefaultFloor, 0, 0)
	if got := s.Cosine(s); got != 1 {
		t.Errorf("self cosine = %v, want exactly 1 (raw >= 1, capped)", got)
	}
	if lam := s.Inflation(); lam < 1 {
		t.Errorf("inflation = %v, want >= 1 (collisions only add mass)", lam)
	}
}

func TestSketchEmptyAndMismatchScoreZero(t *testing.T) {
	m := NewShMap(64)
	for i := 0; i < 10; i++ {
		m.Increment(3)
	}
	s := SketchShMap(m, DefaultFloor, 2, 64)
	empty := NewSketch(2, 64)
	if got := s.Cosine(empty); got != 0 {
		t.Errorf("cosine with empty = %v, want 0", got)
	}
	other := SketchShMap(m, DefaultFloor, 2, 32)
	if s.Cosine(other) != 0 || s.Jaccard(other) != 0 {
		t.Error("sketches of different shapes must be incomparable (score 0)")
	}
	if empty.Inflation() != 1 {
		t.Errorf("empty inflation = %v, want 1", empty.Inflation())
	}
}

// The deterministic sandwich: for arbitrary counter rows of a common
// entry count, dense Cosine <= sketch Cosine, and the raw estimate
// <= the per-row Cauchy-Schwarz Ceiling.
func TestSketchCosineBound(t *testing.T) {
	f := func(av, bv []uint8, floorRaw uint8) bool {
		floor := floorRaw % 8
		n := len(av)
		if len(bv) > n {
			n = len(bv)
		}
		a, b := shMapFromBytes(append(av, make([]uint8, n-len(av))...)), shMapFromBytes(append(bv, make([]uint8, n-len(bv))...))
		sa := SketchShMap(a, floor, 2, 16) // narrow width: force collisions
		sb := SketchShMap(b, floor, 2, 16)
		dense := Cosine(a, b, floor, nil)
		est := sa.Cosine(sb)
		if est < dense-1e-9 {
			return false
		}
		return sa.cosineRaw(sb) <= sa.Ceiling(sb)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Measured estimation error on shMap-shaped vectors (banded groups, the
// worst case being disjoint bands whose true cosine is 0): the figures
// documented on Sketch must hold with margin.
func TestSketchCosineStatisticalError(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var errsAbs []float64
	for trial := 0; trial < 300; trial++ {
		a, b := NewShMap(256), NewShMap(256)
		// Two bands of ~50 entries; overlapping half the time.
		startA := rng.Intn(200)
		startB := rng.Intn(200)
		if trial%2 == 0 {
			startB = startA + rng.Intn(30) // partial overlap
		}
		for e := 0; e < 50; e++ {
			for k := 0; k < 20+rng.Intn(30); k++ {
				a.Increment((startA + e) % 256)
			}
			for k := 0; k < 20+rng.Intn(30); k++ {
				b.Increment((startB + e) % 256)
			}
		}
		sa := SketchShMap(a, DefaultFloor, 0, 0)
		sb := SketchShMap(b, DefaultFloor, 0, 0)
		dense := Cosine(a, b, DefaultFloor, nil)
		errsAbs = append(errsAbs, math.Abs(sa.Cosine(sb)-dense))
	}
	sort.Float64s(errsAbs)
	mean := 0.0
	for _, e := range errsAbs {
		mean += e
	}
	mean /= float64(len(errsAbs))
	p99 := errsAbs[len(errsAbs)*99/100]
	t.Logf("sketch cosine abs error: mean %.4f p99 %.4f max %.4f", mean, p99, errsAbs[len(errsAbs)-1])
	if mean > 0.2 {
		t.Errorf("mean abs error = %.4f, documented bound 0.2", mean)
	}
	if p99 > 0.35 {
		t.Errorf("p99 abs error = %.4f, documented bound 0.35", p99)
	}
}

// The sketch one-pass must recover the same banded groups the dense
// one-pass does, at the default sketch threshold.
func TestClusterSketchesRecoversGroups(t *testing.T) {
	shmaps, truth := makeGroups(4, 4, 256, 30, false, 21)
	sketches := make(map[ThreadKey]*Sketch, len(shmaps))
	for k, m := range shmaps {
		sketches[k] = SketchShMap(m, DefaultFloor, 0, 0)
	}
	clusters := ClusterSketches(sketches, 0.6)
	if len(clusters) != 4 {
		t.Fatalf("found %d clusters, want 4", len(clusters))
	}
	if p := Purity(clusters, truth); p != 1.0 {
		t.Errorf("purity = %v, want 1.0", p)
	}
}

func TestSketchJaccardTracksDense(t *testing.T) {
	a, b := NewShMap(64), NewShMap(64)
	for i := 0; i < 10; i++ {
		a.Increment(0)
		a.Increment(1)
		b.Increment(1)
		b.Increment(2)
	}
	sa := SketchShMap(a, DefaultFloor, 2, 64)
	sb := SketchShMap(b, DefaultFloor, 2, 64)
	// At nnz 2 and width 64 collisions are absent for these entries, so
	// the folded support ratio is the dense one.
	if got, want := sa.Jaccard(sb), Jaccard(a, b, DefaultFloor, nil); got != want {
		t.Errorf("sketch jaccard = %v, dense = %v", got, want)
	}
}

func TestSketchStateRoundTrip(t *testing.T) {
	m := NewShMap(256)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		m.Increment(rng.Intn(256))
	}
	s := SketchShMap(m, DefaultFloor, 0, 0)
	var enc snapbin.Enc
	s.SaveState(&enc)

	r := NewSketch(0, 0)
	d := snapbin.NewDec(enc.Bytes())
	if err := r.RestoreState(d); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if r.L1() != s.L1() || r.NonZero() != s.NonZero() || r.l2sq != s.l2sq {
		t.Error("restored scalars differ")
	}
	if got := r.Cosine(s); got != 1 {
		t.Errorf("restored sketch cosine vs original = %v, want 1", got)
	}
	// Byte-identity on re-save.
	var enc2 snapbin.Enc
	r.SaveState(&enc2)
	if string(enc2.Bytes()) != string(enc.Bytes()) {
		t.Error("re-saved state is not byte-identical")
	}
}

func TestSketchRestoreErrors(t *testing.T) {
	m := NewShMap(64)
	for i := 0; i < 20; i++ {
		m.Increment(i)
		m.Increment(i)
		m.Increment(i)
	}
	s := SketchShMap(m, DefaultFloor, 2, 32)
	var enc snapbin.Enc
	s.SaveState(&enc)
	good := enc.Bytes()

	t.Run("shape mismatch", func(t *testing.T) {
		r := NewSketch(2, 64)
		err := r.RestoreState(snapbin.NewDec(good))
		if !errors.Is(err, errs.ErrBadConfig) {
			t.Errorf("err = %v, want ErrBadConfig", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		r := NewSketch(2, 32)
		if err := r.RestoreState(snapbin.NewDec(good[:len(good)-5])); err == nil {
			t.Error("truncated state must fail")
		}
	})
	t.Run("corrupt bucket", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[8]++ // first bucket of row 0: row sum no longer matches l1
		r := NewSketch(2, 32)
		err := r.RestoreState(snapbin.NewDec(bad))
		if !errors.Is(err, snapbin.ErrCorrupt) {
			t.Errorf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("corrupt scalars", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[len(bad)-20]++ // l1 low byte: no row's bucket sum matches anymore
		r := NewSketch(2, 32)
		err := r.RestoreState(snapbin.NewDec(bad))
		if !errors.Is(err, snapbin.ErrCorrupt) {
			t.Errorf("err = %v, want ErrCorrupt", err)
		}
	})
}
