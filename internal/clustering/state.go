package clustering

import (
	"fmt"

	"threadcluster/internal/errs"
	"threadcluster/internal/memory"
	"threadcluster/internal/snapbin"
)

// SaveState appends the vector's counters to the encoder.
func (m *ShMap) SaveState(e *snapbin.Enc) {
	e.Blob(m.counters)
}

// RestoreState overwrites the counters with a state saved by SaveState.
// The vector must have been built with the same entry count.
func (m *ShMap) RestoreState(d *snapbin.Dec) error {
	b := d.Blob()
	if err := d.Err(); err != nil {
		return err
	}
	if len(b) != len(m.counters) {
		return fmt.Errorf("clustering: snapshot shMap has %d entries, built with %d: %w",
			len(b), len(m.counters), errs.ErrBadConfig)
	}
	copy(m.counters, b)
	return nil
}

// SaveState appends the filter's complete mutable state: every claimed
// entry (in ascending entry order — the canonical order) with its line
// and owning thread, plus the accept/reject counters. The per-thread
// ownership counts are derivable from the entries and are not encoded.
func (f *Filter) SaveState(e *snapbin.Enc) {
	e.U32(uint32(len(f.lines)))
	claimed := 0
	for _, t := range f.taken {
		if t {
			claimed++
		}
	}
	e.U32(uint32(claimed))
	for i := range f.taken {
		if !f.taken[i] {
			continue
		}
		e.U32(uint32(i))
		e.U64(uint64(f.lines[i]))
		e.I64(int64(f.owner[i]))
	}
	e.U64(f.admits)
	e.U64(f.drops)
}

// RestoreState overwrites the filter's state with a state saved by
// SaveState. The filter must have been built with the same entry count
// and quota; each restored claim is validated to hash to its entry, and
// the per-thread ownership counts are rebuilt.
func (f *Filter) RestoreState(d *snapbin.Dec) error {
	if n := int(d.U32()); d.Err() == nil && n != len(f.lines) {
		return fmt.Errorf("clustering: snapshot filter has %d entries, built with %d: %w",
			n, len(f.lines), errs.ErrBadConfig)
	}
	claimed := d.Count(20)
	lines := make([]memory.Addr, len(f.lines))
	taken := make([]bool, len(f.lines))
	owner := make([]ThreadKey, len(f.lines))
	owned := make(map[ThreadKey]int)
	prev := -1
	for i := 0; i < claimed; i++ {
		idx := int(d.U32())
		line := memory.Addr(d.U64())
		tid := ThreadKey(d.I64())
		if d.Err() != nil {
			return d.Err()
		}
		if idx <= prev || idx >= len(f.lines) {
			return fmt.Errorf("clustering: snapshot filter entry index %d out of order: %w", idx, snapbin.ErrCorrupt)
		}
		prev = idx
		if line != memory.LineOf(line) || HashLine(line, len(f.lines)) != idx {
			return fmt.Errorf("clustering: snapshot filter line %#x does not hash to entry %d: %w",
				uint64(line), idx, snapbin.ErrCorrupt)
		}
		taken[idx] = true
		lines[idx] = line
		owner[idx] = tid
		owned[tid]++
	}
	admits := d.U64()
	drops := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	for tid, n := range owned {
		if n > f.quota {
			return fmt.Errorf("clustering: snapshot filter thread %d claims %d entries over quota %d: %w",
				int(tid), n, f.quota, snapbin.ErrCorrupt)
		}
	}
	f.lines = lines
	f.taken = taken
	f.owner = owner
	f.owned = owned
	f.admits = admits
	f.drops = drops
	return nil
}
