package clustering

import (
	"fmt"

	"threadcluster/internal/errs"
	"threadcluster/internal/memory"
	"threadcluster/internal/snapbin"
)

// SaveState appends the vector's counters to the encoder.
func (m *ShMap) SaveState(e *snapbin.Enc) {
	e.Blob(m.counters)
}

// RestoreState overwrites the counters with a state saved by SaveState.
// The vector must have been built with the same entry count.
func (m *ShMap) RestoreState(d *snapbin.Dec) error {
	b := d.Blob()
	if err := d.Err(); err != nil {
		return err
	}
	if len(b) != len(m.counters) {
		return fmt.Errorf("clustering: snapshot shMap has %d entries, built with %d: %w",
			len(b), len(m.counters), errs.ErrBadConfig)
	}
	copy(m.counters, b)
	return nil
}

// SaveState appends the sketch's complete state: shape, buckets in
// row-major order, and the exact scalars.
func (s *Sketch) SaveState(e *snapbin.Enc) {
	e.U32(uint32(s.rows))
	e.U32(uint32(s.width))
	for _, b := range s.buckets {
		e.U32(b)
	}
	e.U64(s.l1)
	e.U64(s.l2sq)
	e.U32(s.nnz)
}

// RestoreState overwrites the sketch with a state saved by SaveState.
// The sketch must have been built with the same shape (ErrBadConfig
// otherwise). The decoded state is cross-validated against the
// invariants every SketchShMap-built sketch satisfies — each row's
// buckets sum to the L1 mass, the folded L2 never undershoots the exact
// L2, integer entries give l2sq >= l1 (elementwise v^2 >= v) while the
// CounterMax saturation gives l2sq <= CounterMax*l1, and no row has more
// non-zero buckets than the vector has non-zero entries — so malformed
// bytes surface as snapbin.ErrCorrupt instead of silently skewing
// similarity scores.
func (s *Sketch) RestoreState(d *snapbin.Dec) error {
	rows := int(d.U32())
	width := int(d.U32())
	if err := d.Err(); err != nil {
		return err
	}
	if rows != s.rows || width != s.width {
		return fmt.Errorf("clustering: snapshot sketch is %dx%d, built with %dx%d: %w",
			rows, width, s.rows, s.width, errs.ErrBadConfig)
	}
	buckets := make([]uint32, rows*width)
	for i := range buckets {
		buckets[i] = d.U32()
	}
	l1 := d.U64()
	l2sq := d.U64()
	nnz := d.U32()
	if err := d.Err(); err != nil {
		return err
	}
	// maxSketchMass bounds the plausible total mass (2^40 covers a
	// 4-billion-entry vector of saturated counters) so the overflow-free
	// range of the arithmetic checks below is never left.
	const maxSketchMass = 1 << 40
	if l1 > maxSketchMass || (l1 == 0) != (nnz == 0) || uint64(nnz) > l1 || l2sq < l1 || l2sq > CounterMax*l1 {
		return fmt.Errorf("clustering: snapshot sketch scalars l1=%d l2sq=%d nnz=%d inconsistent: %w",
			l1, l2sq, nnz, snapbin.ErrCorrupt)
	}
	for r := 0; r < rows; r++ {
		var sum, sumsq uint64
		nzb := uint32(0)
		for w := 0; w < width; w++ {
			v := uint64(buckets[r*width+w])
			sum += v
			sumsq += v * v
			if v > 0 {
				nzb++
			}
		}
		if sum != l1 || sumsq < l2sq || nzb > nnz {
			return fmt.Errorf("clustering: snapshot sketch row %d violates fold invariants: %w",
				r, snapbin.ErrCorrupt)
		}
	}
	s.buckets = buckets
	s.l1 = l1
	s.l2sq = l2sq
	s.nnz = nnz
	return nil
}

// SaveState appends the filter's complete mutable state: every claimed
// entry (in ascending entry order — the canonical order) with its line
// and owning thread, plus the accept/reject counters. The per-thread
// ownership counts are derivable from the entries and are not encoded.
func (f *Filter) SaveState(e *snapbin.Enc) {
	e.U32(uint32(len(f.lines)))
	claimed := 0
	for _, t := range f.taken {
		if t {
			claimed++
		}
	}
	e.U32(uint32(claimed))
	for i := range f.taken {
		if !f.taken[i] {
			continue
		}
		e.U32(uint32(i))
		e.U64(uint64(f.lines[i]))
		e.I64(int64(f.owner[i]))
	}
	e.U64(f.admits)
	e.U64(f.drops)
}

// RestoreState overwrites the filter's state with a state saved by
// SaveState. The filter must have been built with the same entry count
// and quota; each restored claim is validated to hash to its entry, and
// the per-thread ownership counts are rebuilt.
func (f *Filter) RestoreState(d *snapbin.Dec) error {
	if n := int(d.U32()); d.Err() == nil && n != len(f.lines) {
		return fmt.Errorf("clustering: snapshot filter has %d entries, built with %d: %w",
			n, len(f.lines), errs.ErrBadConfig)
	}
	claimed := d.Count(20)
	lines := make([]memory.Addr, len(f.lines))
	taken := make([]bool, len(f.lines))
	owner := make([]ThreadKey, len(f.lines))
	owned := make(map[ThreadKey]int)
	prev := -1
	for i := 0; i < claimed; i++ {
		idx := int(d.U32())
		line := memory.Addr(d.U64())
		tid := ThreadKey(d.I64())
		if d.Err() != nil {
			return d.Err()
		}
		if idx <= prev || idx >= len(f.lines) {
			return fmt.Errorf("clustering: snapshot filter entry index %d out of order: %w", idx, snapbin.ErrCorrupt)
		}
		prev = idx
		if line != memory.LineOf(line) || HashLine(line, len(f.lines)) != idx {
			return fmt.Errorf("clustering: snapshot filter line %#x does not hash to entry %d: %w",
				uint64(line), idx, snapbin.ErrCorrupt)
		}
		taken[idx] = true
		lines[idx] = line
		owner[idx] = tid
		owned[tid]++
	}
	admits := d.U64()
	drops := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	for tid, n := range owned {
		if n > f.quota {
			return fmt.Errorf("clustering: snapshot filter thread %d claims %d entries over quota %d: %w",
				int(tid), n, f.quota, snapbin.ErrCorrupt)
		}
	}
	f.lines = lines
	f.taken = taken
	f.owner = owner
	f.owned = owned
	f.admits = admits
	f.drops = drops
	return nil
}
