package clustering

import (
	"fmt"
	"math"
)

// Sketch parameters. The summary size is fixed by rows*width regardless
// of the dense entry count, and a similarity evaluation touches
// rows*width buckets instead of every dense entry — the win appears as
// shMaps grow past the paper's 256 entries toward the wide filters the
// ROADMAP's at-scale deployments need. The default width must stay well
// above the typical non-zero entry count (~50 for banded shMap
// workloads): folding is additive, so a width comparable to the support
// would pile disjoint vectors into the same buckets and score strangers
// as siblings.
const (
	// DefaultSketchRows is the number of independently hashed fold rows.
	DefaultSketchRows = 2
	// DefaultSketchWidth is the bucket count per row.
	DefaultSketchWidth = 256
)

// Sketch is a fixed-size, count-min-style summary of one thread's shMap,
// the scale path for clustering 1e5+ threads where retaining every dense
// vector and comparing them pairwise is too expensive. Each of `rows`
// rows folds the floored dense vector into `width` buckets with an
// independent hash (bucket = sum of the entries landing there), and the
// exact L1 mass, L2 mass and non-zero count of the floored vector ride
// along.
//
// # Error bound
//
// For the paper's counters — non-negative saturating integers — folding
// can only merge mass, never cancel it, which yields a deterministic
// one-sided sandwich that holds for ARBITRARY counter rows of a common
// entry count (it is pinned by FuzzSketchEstimate, not just sampled):
//
//	Cosine(a, b)  <=  a.Cosine(b)  <=  min(1, a.Ceiling(b))
//
// where Cosine(a, b) is the dense cosine of the floored vectors and
// Ceiling is the minimum over rows of λ_{a,r}·λ_{b,r}, with λ_{v,r} =
// row r's folded L2 norm divided by the exact L2 norm (the vector's
// per-row collision inflation; 1 when no two non-zero entries of v share
// a bucket in that row — Inflation reports the row minimum as a
// single-vector diagnostic, but the product of two Inflations is NOT a
// valid bound when the two vectors' best rows differ). The estimate
// never underestimates: every intra-bucket collision adds a non-negative
// cross term to the folded dot product while the denominator uses the
// exact norms. The upper bound follows from Cauchy-Schwarz per row, and
// the minimum over rows bounds the minimum-dot row. (The lower bound
// needs a common entry count because the dense Cosine scores only the
// common prefix of unequal vectors, while a sketch always folds its whole
// vector; the engine compares shMaps of one configured width, where the
// caveat is vacuous.)
//
// The expected overestimate for vectors with nnz non-zero entries at
// random positions is O(nnz_a·nnz_b/width) collision pairs per row,
// minimized over rows, so the relative error scales roughly as
// nnz/width. At the defaults on banded shMap workloads (nnz ~ 50, the
// worst case being disjoint bands whose true cosine is 0) the measured
// mean absolute error stays under 0.2 and the p99 under 0.35
// (TestSketchCosineStatisticalError) — well below the 0.6 join threshold
// that separates same-group scores of ~1.0 from stranger scores. Widen
// the sketch for denser maps: keep width at least 5x the typical
// non-zero count.
//
// A Sketch is built from a dense vector once (SketchShMap) and is
// immutable afterwards; the incremental engine keeps one per thread and
// discards the dense vector.
type Sketch struct {
	rows, width int
	buckets     []uint32 // rows*width, row-major
	l1          uint64   // exact L1 mass of the floored dense vector
	l2sq        uint64   // exact sum of squared floored entries
	nnz         uint32   // exact count of non-zero floored entries
}

// NewSketch returns an empty sketch with the given shape (defaults apply
// when rows or width is <= 0).
func NewSketch(rows, width int) *Sketch {
	if rows <= 0 {
		rows = DefaultSketchRows
	}
	if width <= 0 {
		width = DefaultSketchWidth
	}
	return &Sketch{rows: rows, width: width, buckets: make([]uint32, rows*width)}
}

// SketchShMap folds a dense shMap into a fresh sketch, applying the noise
// floor at build time (the sketch cannot re-floor later: entry identity
// is gone).
func SketchShMap(m *ShMap, floor uint8, rows, width int) *Sketch {
	s := NewSketch(rows, width)
	for i := 0; i < m.Len(); i++ {
		v := floored(m.Get(i), floor)
		if v == 0 {
			continue
		}
		s.l1 += v
		s.l2sq += v * v
		s.nnz++
		for r := 0; r < s.rows; r++ {
			s.buckets[r*s.width+sketchBucket(i, r, s.width)] += uint32(v)
		}
	}
	return s
}

// sketchBucket maps dense entry i to a bucket of row r: a SplitMix64
// finalizer over the entry index salted per row, so rows are
// independently hashed (the count-min trick that lets the minimum over
// rows shed most collision inflation).
func sketchBucket(i, r, width int) int {
	h := uint64(i)*0x9E3779B97F4A7C15 + uint64(r+1)*0xBF58476D1CE4E5B9
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return int(h % uint64(width))
}

// Rows and Width return the sketch shape.
func (s *Sketch) Rows() int { return s.rows }

// Width returns the bucket count per row.
func (s *Sketch) Width() int { return s.width }

// L1 returns the exact L1 mass of the floored dense vector.
func (s *Sketch) L1() uint64 { return s.l1 }

// NonZero returns the exact non-zero entry count of the floored vector.
func (s *Sketch) NonZero() int { return int(s.nnz) }

// Empty reports whether the floored vector was all zeros.
func (s *Sketch) Empty() bool { return s.l1 == 0 }

// rowInflation returns λ_{s,r} = ||folded row r||_2 / ||dense||_2, the
// factor by which intra-vector bucket collisions inflated this vector's
// norm in row r (1 when every non-zero entry got its own bucket there).
func (s *Sketch) rowInflation(r int) float64 {
	var fl2 float64
	for w := 0; w < s.width; w++ {
		v := float64(s.buckets[r*s.width+w])
		fl2 += v * v
	}
	return math.Sqrt(fl2 / float64(s.l2sq))
}

// Inflation returns min over rows of λ_{s,r} — a single-vector
// diagnostic of how collision-inflated the sketch is (1 is
// collision-free). For the two-vector estimate ceiling use Ceiling: the
// product of two Inflations is not a valid bound when the two vectors'
// minimizing rows differ.
func (s *Sketch) Inflation() float64 {
	if s.l2sq == 0 {
		return 1
	}
	best := math.Inf(1)
	for r := 0; r < s.rows; r++ {
		if lam := s.rowInflation(r); lam < best {
			best = lam
		}
	}
	return best
}

// Ceiling returns min over rows of λ_{s,r}·λ_{o,r}, the documented
// deterministic upper bound on the raw cosine estimate (Cauchy-Schwarz
// applied to each row's folded vectors). 1 for incomparable shapes or
// empty sketches, where the estimate itself is 0.
func (s *Sketch) Ceiling(o *Sketch) float64 {
	if s.rows != o.rows || s.width != o.width || s.l2sq == 0 || o.l2sq == 0 {
		return 1
	}
	best := math.Inf(1)
	for r := 0; r < s.rows; r++ {
		if c := s.rowInflation(r) * o.rowInflation(r); c < best {
			best = c
		}
	}
	return best
}

// Cosine estimates the dense cosine similarity of the two floored
// vectors, in [0, 1]: the minimum over rows of the folded dot product,
// normalized by the exact norms and capped at 1. Guaranteed never below
// the dense cosine (see the type comment for the full bound). Sketches
// of different shapes are incomparable and score 0.
func (s *Sketch) Cosine(o *Sketch) float64 {
	raw := s.cosineRaw(o)
	if raw > 1 {
		return 1
	}
	return raw
}

// cosineRaw is the uncapped estimator: min over rows of
// foldedDot/(||a||·||b||). It can exceed 1 when collisions inflate the
// folded dot past the norm product; the cap in Cosine clamps it for
// scoring while the tests pin the raw value against the Ceiling bound.
func (s *Sketch) cosineRaw(o *Sketch) float64 {
	if s.rows != o.rows || s.width != o.width || s.l2sq == 0 || o.l2sq == 0 {
		return 0
	}
	best := math.Inf(1)
	for r := 0; r < s.rows; r++ {
		var dot float64
		for w := 0; w < s.width; w++ {
			dot += float64(s.buckets[r*s.width+w]) * float64(o.buckets[r*s.width+w])
		}
		if dot < best {
			best = dot
		}
	}
	return best / (math.Sqrt(float64(s.l2sq)) * math.Sqrt(float64(o.l2sq)))
}

// Jaccard estimates the dense Jaccard similarity from folded supports:
// the minimum over rows of |both non-zero| / |either non-zero| over
// buckets. Collisions shrink both supports, so unlike Cosine this
// estimator carries no one-sided guarantee; it tracks the dense value
// closely at shMap occupancies (nnz well below width it is exact) and is
// provided for metric ablations, not for the scale path's scoring.
func (s *Sketch) Jaccard(o *Sketch) float64 {
	if s.rows != o.rows || s.width != o.width {
		return 0
	}
	best := math.Inf(1)
	for r := 0; r < s.rows; r++ {
		inter, union := 0, 0
		for w := 0; w < s.width; w++ {
			a := s.buckets[r*s.width+w] > 0
			b := o.buckets[r*s.width+w] > 0
			if a && b {
				inter++
			}
			if a || b {
				union++
			}
		}
		var j float64
		if union > 0 {
			j = float64(inter) / float64(union)
		}
		if j < best {
			best = j
		}
	}
	return best
}

func (s *Sketch) String() string {
	return fmt.Sprintf("sketch{%dx%d, l1 %d, %d nonzero}", s.rows, s.width, s.l1, s.nnz)
}
