package clustering

import (
	"testing"

	"threadcluster/internal/memory"
)

func benchShMaps(nThreads int) map[ThreadKey]*ShMap {
	shmaps, _ := makeGroupsBench(4, nThreads/4, 256, 40)
	return shmaps
}

func makeGroupsBench(nGroups, groupSize, entries int, intensity uint8) (map[ThreadKey]*ShMap, map[ThreadKey]int) {
	shmaps := make(map[ThreadKey]*ShMap)
	truth := make(map[ThreadKey]int)
	band := entries / (nGroups + 1)
	for g := 0; g < nGroups; g++ {
		for t := 0; t < groupSize; t++ {
			id := ThreadKey(g*groupSize + t)
			m := NewShMap(entries)
			for e := g * band; e < (g+1)*band; e++ {
				for k := uint8(0); k < intensity; k++ {
					m.Increment(e)
				}
			}
			shmaps[id] = m
			truth[id] = g
		}
	}
	return shmaps, truth
}

func BenchmarkDotProduct(b *testing.B) {
	shmaps := benchShMaps(8)
	a, c := shmaps[0], shmaps[1]
	mask := make([]bool, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DotProduct(a, c, DefaultFloor, mask)
	}
}

func BenchmarkOnePassCluster16(b *testing.B) {
	shmaps := benchShMaps(16)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Cluster(shmaps)
	}
}

func BenchmarkOnePassCluster128(b *testing.B) {
	shmaps := benchShMaps(128)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Cluster(shmaps)
	}
}

func BenchmarkKMeans16(b *testing.B) {
	shmaps := benchShMaps(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KMeans(shmaps, 4, DefaultFloor, 0.5, 1, 50)
	}
}

func BenchmarkHierarchical16(b *testing.B) {
	shmaps := benchShMaps(16)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Hierarchical(shmaps, cfg)
	}
}

func BenchmarkFilterAdmit(b *testing.B) {
	f, err := NewFilter(256, 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Admit(ThreadKey(i%16), memory.Addr(uint64(i%512)*memory.LineSize))
	}
}

func BenchmarkHashLine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		HashLine(memory.Addr(uint64(i)*memory.LineSize), 256)
	}
}

// makeInterleavedBench is makeGroupsBench with group-interleaved keys
// (group of key k is k % nGroups). Populating an incremental engine in
// ascending key order then keeps every band at a steady 1/nGroups of the
// live threads; contiguous per-group blocks would make each band look
// globally shared (100% of live threads) while its group arrives, and
// the global-sharing mask would rightly suppress it.
func makeInterleavedBench(nGroups, groupSize, entries int, intensity uint8) map[ThreadKey]*ShMap {
	shmaps := make(map[ThreadKey]*ShMap, nGroups*groupSize)
	band := entries / (nGroups + 1)
	for g := 0; g < nGroups; g++ {
		for t := 0; t < groupSize; t++ {
			m := NewShMap(entries)
			for e := g * band; e < (g+1)*band; e++ {
				for k := uint8(0); k < intensity; k++ {
					m.Increment(e)
				}
			}
			shmaps[ThreadKey(t*nGroups+g)] = m
		}
	}
	return shmaps
}

// benchIncrementalEvent measures the per-event cost of the incremental
// clusterer at population n: an engine holding n threads in four sharing
// groups absorbs sharing-delta events. Each event re-scores one thread
// against the cluster representatives, so the cost is bounded by cluster
// count and vector/sketch size — not by n. BENCH_clustering.json guards
// that: the 100k-thread per-event cost may be at most 8x the 1k one.
// Intensity stays low (8) so populating 100k threads is fast; the
// threshold scales down with it (51-entry band, 51*8*8 = 3264 in-group).
func benchIncrementalEvent(b *testing.B, mode Mode, n int) {
	const nGroups = 4
	shmaps := makeInterleavedBench(nGroups, n/nGroups, 256, 8)
	cfg := DefaultEngineConfig()
	cfg.Mode = mode
	cfg.Clustering.Threshold = 2000
	eng, err := NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.ApplyChurn(ChurnEvent{Arrived: shmaps}); err != nil {
		b.Fatal(err)
	}
	keys := eng.Threads()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		if err := eng.ApplyMigration(k, shmaps[k]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIncrementalEventDense1k(b *testing.B)    { benchIncrementalEvent(b, ModeDense, 1_000) }
func BenchmarkIncrementalEventDense100k(b *testing.B)  { benchIncrementalEvent(b, ModeDense, 100_000) }
func BenchmarkIncrementalEventSketch1k(b *testing.B)   { benchIncrementalEvent(b, ModeSketch, 1_000) }
func BenchmarkIncrementalEventSketch100k(b *testing.B) { benchIncrementalEvent(b, ModeSketch, 100_000) }
