package clustering

import (
	"testing"

	"threadcluster/internal/memory"
)

func benchShMaps(nThreads int) map[ThreadKey]*ShMap {
	shmaps, _ := makeGroupsBench(4, nThreads/4, 256, 40)
	return shmaps
}

func makeGroupsBench(nGroups, groupSize, entries int, intensity uint8) (map[ThreadKey]*ShMap, map[ThreadKey]int) {
	shmaps := make(map[ThreadKey]*ShMap)
	truth := make(map[ThreadKey]int)
	band := entries / (nGroups + 1)
	for g := 0; g < nGroups; g++ {
		for t := 0; t < groupSize; t++ {
			id := ThreadKey(g*groupSize + t)
			m := NewShMap(entries)
			for e := g * band; e < (g+1)*band; e++ {
				for k := uint8(0); k < intensity; k++ {
					m.Increment(e)
				}
			}
			shmaps[id] = m
			truth[id] = g
		}
	}
	return shmaps, truth
}

func BenchmarkDotProduct(b *testing.B) {
	shmaps := benchShMaps(8)
	a, c := shmaps[0], shmaps[1]
	mask := make([]bool, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DotProduct(a, c, DefaultFloor, mask)
	}
}

func BenchmarkOnePassCluster16(b *testing.B) {
	shmaps := benchShMaps(16)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Cluster(shmaps)
	}
}

func BenchmarkOnePassCluster128(b *testing.B) {
	shmaps := benchShMaps(128)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Cluster(shmaps)
	}
}

func BenchmarkKMeans16(b *testing.B) {
	shmaps := benchShMaps(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KMeans(shmaps, 4, DefaultFloor, 0.5, 1, 50)
	}
}

func BenchmarkHierarchical16(b *testing.B) {
	shmaps := benchShMaps(16)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Hierarchical(shmaps, cfg)
	}
}

func BenchmarkFilterAdmit(b *testing.B) {
	f, err := NewFilter(256, 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Admit(ThreadKey(i%16), memory.Addr(uint64(i%512)*memory.LineSize))
	}
}

func BenchmarkHashLine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		HashLine(memory.Addr(uint64(i)*memory.LineSize), 256)
	}
}
