// Package snapbin is the canonical binary codec every snapshotable
// component encodes its state with. The format is deliberately dumb:
// little-endian fixed-width integers and length-prefixed byte strings,
// no compression, no reflection, no alignment padding. Canonical means
// there is exactly one encoding for a given logical state — encoders
// must therefore iterate any hash-table-backed state in a sorted order —
// which is what makes the snapshot digest stable across engines,
// GOMAXPROCS and host architectures.
//
// The decoder is written to survive arbitrary bytes (it backs a fuzz
// target): every read bounds-checks against the remaining input, and
// length prefixes are validated against the bytes actually present
// before any allocation, so a hostile length cannot balloon memory.
// Errors are sticky: after the first failure every subsequent read
// returns zero values and Err reports the original failure.
package snapbin

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrCorrupt reports undecodable input: a truncated buffer, a length
// prefix pointing past the end, or trailing garbage.
var ErrCorrupt = errors.New("corrupt snapshot encoding")

// Enc accumulates a canonical encoding.
type Enc struct {
	buf []byte
}

// Bytes returns the encoded bytes accumulated so far.
func (e *Enc) Bytes() []byte { return e.buf }

// Len returns the current encoded length.
func (e *Enc) Len() int { return len(e.buf) }

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a boolean as one byte (0 or 1).
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U16 appends a little-endian uint16.
func (e *Enc) U16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }

// U32 appends a little-endian uint32.
func (e *Enc) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a little-endian uint64.
func (e *Enc) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends a little-endian int64 (two's complement).
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// F64 appends a float64 as its IEEE 754 bit pattern.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Blob appends a length-prefixed byte string.
func (e *Enc) Blob(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Dec decodes a canonical encoding with sticky error semantics.
type Dec struct {
	b   []byte
	err error
}

// NewDec returns a decoder over b. The decoder never retains or mutates b
// beyond slicing it.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Err returns the first decoding failure, or nil.
func (d *Dec) Err() error { return d.err }

// Remaining returns how many undecoded bytes are left.
func (d *Dec) Remaining() int { return len(d.b) }

// Close verifies the input was consumed exactly.
func (d *Dec) Close() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		d.fail("trailing bytes", len(d.b))
	}
	return d.err
}

func (d *Dec) fail(what string, n int) {
	if d.err == nil {
		d.err = fmt.Errorf("snapbin: %s (%d bytes): %w", what, n, ErrCorrupt)
	}
}

func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.b) {
		d.fail("short input", n)
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a one-byte boolean; any value other than 0 or 1 is corrupt.
func (d *Dec) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("bad bool", 1)
		return false
	}
}

// U16 reads a little-endian uint16.
func (d *Dec) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (d *Dec) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Dec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// F64 reads a float64 bit pattern.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Blob reads a length-prefixed byte string. The returned slice aliases
// the input; callers that retain it must copy.
func (d *Dec) Blob() []byte {
	n := int(d.U32())
	return d.take(n)
}

// Str reads a length-prefixed string.
func (d *Dec) Str() string { return string(d.Blob()) }

// Count reads a u32 element count and validates it against the bytes
// remaining, given a minimum encoded size per element. This is the
// allocation guard: a decoder sizing a slice from Count can never
// allocate more than the input itself could justify.
func (d *Dec) Count(minElemBytes int) int {
	n := int(d.U32())
	if d.err != nil {
		return 0
	}
	if minElemBytes < 1 {
		minElemBytes = 1
	}
	if n < 0 || n > len(d.b)/minElemBytes {
		d.fail("implausible element count", n)
		return 0
	}
	return n
}
